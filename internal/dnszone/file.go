package dnszone

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"dpsadopt/internal/dnswire"
)

// This file implements a textual zone format: one record per line,
//
//	owner TTL IN TYPE rdata...
//
// with '#' or ';' comments and a leading "$ORIGIN name" directive. It is a
// deliberately small subset of RFC 1035 master-file syntax — enough for the
// measurement pipeline's Stage I to "download" zone snapshots as files and
// for the demo server to load zones from disk.

// WriteText serialises the zone. Records are emitted in sorted owner order
// with the SOA first, matching how registry zone files are distributed.
func (z *Zone) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin); err != nil {
		return err
	}
	if soa, ok := z.SOA(); ok {
		if _, err := fmt.Fprintln(bw, soa.String()); err != nil {
			return err
		}
	}
	for _, name := range z.Names() {
		z.mu.RLock()
		byType := z.records[name]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		var lines []string
		for _, t := range types {
			for _, rr := range byType[t] {
				if t == dnswire.TypeSOA && name == z.Origin {
					continue // already written first
				}
				lines = append(lines, rr.String())
			}
		}
		z.mu.RUnlock()
		for _, l := range lines {
			if _, err := fmt.Fprintln(bw, l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Text returns the zone serialised as a string.
func (z *Zone) Text() string {
	var sb strings.Builder
	_ = z.WriteText(&sb)
	return sb.String()
}

// ParseText reads a zone in the format produced by WriteText. If origin is
// empty, a $ORIGIN directive must appear before the first record.
func ParseText(r io.Reader, origin string) (*Zone, error) {
	var z *Zone
	if origin != "" {
		var err error
		if z, err = New(origin); err != nil {
			return nil, err
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "$ORIGIN" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnszone: line %d: bad $ORIGIN", lineNo)
			}
			nz, err := New(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dnszone: line %d: %w", lineNo, err)
			}
			if z != nil && z.Len() > 0 {
				return nil, fmt.Errorf("dnszone: line %d: $ORIGIN after records", lineNo)
			}
			z = nz
			continue
		}
		if z == nil {
			return nil, fmt.Errorf("dnszone: line %d: record before $ORIGIN", lineNo)
		}
		rr, err := parseRecordLine(fields)
		if err != nil {
			return nil, fmt.Errorf("dnszone: line %d: %w", lineNo, err)
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("dnszone: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if z == nil {
		return nil, fmt.Errorf("dnszone: empty input and no origin")
	}
	return z, nil
}

func parseRecordLine(fields []string) (dnswire.RR, error) {
	var rr dnswire.RR
	if len(fields) < 5 {
		return rr, fmt.Errorf("need at least 5 fields, got %d", len(fields))
	}
	rr.Name = fields[0]
	ttl, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return rr, fmt.Errorf("bad TTL %q", fields[1])
	}
	rr.TTL = uint32(ttl)
	if !strings.EqualFold(fields[2], "IN") {
		return rr, fmt.Errorf("unsupported class %q", fields[2])
	}
	rr.Class = dnswire.ClassIN
	t, err := dnswire.ParseType(fields[3])
	if err != nil {
		return rr, err
	}
	rr.Type = t
	rd := fields[4:]
	switch t {
	case dnswire.TypeA:
		addr, err := netip.ParseAddr(rd[0])
		if err != nil || !addr.Is4() {
			return rr, fmt.Errorf("bad A address %q", rd[0])
		}
		rr.Data = dnswire.A{Addr: addr}
	case dnswire.TypeAAAA:
		addr, err := netip.ParseAddr(rd[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return rr, fmt.Errorf("bad AAAA address %q", rd[0])
		}
		rr.Data = dnswire.AAAA{Addr: addr}
	case dnswire.TypeCNAME:
		target, err := dnswire.CanonicalName(rd[0])
		if err != nil {
			return rr, err
		}
		rr.Data = dnswire.CNAME{Target: target}
	case dnswire.TypeNS:
		host, err := dnswire.CanonicalName(rd[0])
		if err != nil {
			return rr, err
		}
		rr.Data = dnswire.NS{Host: host}
	case dnswire.TypePTR:
		target, err := dnswire.CanonicalName(rd[0])
		if err != nil {
			return rr, err
		}
		rr.Data = dnswire.PTR{Target: target}
	case dnswire.TypeMX:
		if len(rd) != 2 {
			return rr, fmt.Errorf("MX needs preference and host")
		}
		pref, err := strconv.ParseUint(rd[0], 10, 16)
		if err != nil {
			return rr, fmt.Errorf("bad MX preference %q", rd[0])
		}
		host, err := dnswire.CanonicalName(rd[1])
		if err != nil {
			return rr, err
		}
		rr.Data = dnswire.MX{Preference: uint16(pref), Host: host}
	case dnswire.TypeSOA:
		if len(rd) != 7 {
			return rr, fmt.Errorf("SOA needs 7 fields, got %d", len(rd))
		}
		var s dnswire.SOA
		if s.MName, err = dnswire.CanonicalName(rd[0]); err != nil {
			return rr, err
		}
		if s.RName, err = dnswire.CanonicalName(rd[1]); err != nil {
			return rr, err
		}
		nums := [5]*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum}
		for i, p := range nums {
			v, err := strconv.ParseUint(rd[2+i], 10, 32)
			if err != nil {
				return rr, fmt.Errorf("bad SOA field %q", rd[2+i])
			}
			*p = uint32(v)
		}
		rr.Data = s
	case dnswire.TypeTXT:
		var t dnswire.TXT
		for _, s := range rd {
			unq, err := strconv.Unquote(s)
			if err != nil {
				return rr, fmt.Errorf("bad TXT string %q", s)
			}
			t.Strings = append(t.Strings, unq)
		}
		rr.Data = t
	default:
		return rr, fmt.Errorf("unsupported type %s in zone file", t)
	}
	return rr, nil
}
