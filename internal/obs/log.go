package obs

import (
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// level is the shared dynamic level for loggers built by NewLogger; quiet
// mode raises it so progress chatter disappears while warnings survive.
var level slog.LevelVar

// current holds the process logger returned by Logger.
var current atomic.Pointer[slog.Logger]

func init() {
	current.Store(NewLogger(os.Stderr, slog.LevelInfo, false))
}

// NewLogger builds a structured logger writing to w. json selects the
// JSON handler (one object per line, for log shippers) over the
// human-oriented text handler. The returned logger shares the package
// level, so SetQuiet/SetLevel apply to it.
func NewLogger(w io.Writer, lvl slog.Level, json bool) *slog.Logger {
	level.Set(lvl)
	opts := &slog.HandlerOptions{Level: &level}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// Logger returns the process logger. Instrumented packages and binaries
// log through it so -quiet and handler choices apply everywhere.
func Logger() *slog.Logger { return current.Load() }

// SetLogger replaces the process logger.
func SetLogger(l *slog.Logger) {
	if l != nil {
		current.Store(l)
	}
}

// SetLevel adjusts the dynamic level shared by loggers from NewLogger.
func SetLevel(lvl slog.Level) { level.Set(lvl) }

// SetQuiet suppresses Info/Debug output, keeping warnings and errors.
func SetQuiet() { level.Set(slog.LevelWarn) }
