package core

import (
	"slices"
	"time"

	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// DayDetections holds, for one (source, day) partition, every domain that
// references every provider, with the combination of reference kinds —
// the raw material for all the figures. Use is counted at the domain's
// second level: multiple references of the same kind collapse into one
// (§4.1 footnote).
//
// The engine is ID-native: domains stay dictionary IDs end to end, packed
// as one uint64 per detected (provider, domain) pair. String views
// (Uses, MergeAny, DomainName) materialize through the store dictionary
// only at the report/API edge. A DayDetections is immutable after
// DetectDay returns and safe for concurrent readers.
type DayDetections struct {
	Source string
	Day    simtime.Day
	// DomainsMeasured counts distinct domains with any stored row,
	// computed from the domain-ID column — exact even when a domain's
	// rows interleave across writer commits.
	DomainsMeasured int
	// Rows is the number of rows scanned.
	Rows int

	dict *store.Dict
	// packed holds one entry per detected (provider, domain) pair:
	// provider<<40 | domainID<<8 | methods, sorted ascending and
	// deduplicated, so provider p's detections are the contiguous span
	// packed[off[p]:off[p+1]] in ascending domain-ID order.
	packed []uint64
	off    []int32
	// anyCount is the distinct-domain union over all providers (§4.1's
	// "using at least one provider"), computed once at build so per-day
	// figure code never re-derives the set.
	anyCount int
}

func packUse(p int, id uint32, m Method) uint64 {
	return uint64(p)<<40 | uint64(id)<<8 | uint64(m)
}

// BatchSource is where detection reads its columnar partitions from:
// either a fully resident *store.Store or a streaming *store.Reader.
// AcquireBatch hands out one partition's columns plus a release func
// (a no-op for the resident store; for the Reader it returns the decoded
// columns to the buffer pool) — the batch is valid only until release.
// Missing partitions may surface as an empty batch (resident store) or
// an error (Reader, which knows its directory); corrupt partitions are
// always errors.
type BatchSource interface {
	SharedDict() (*store.Dict, error)
	AcquireBatch(source string, day simtime.Day) (store.RowBatch, func(), error)
}

// DetectDay scans one partition and classifies every row against the
// reference table, entirely in dictionary-ID space: ASN hits via the
// reference index, CNAME/NS hits via the per-dictionary SLD→provider
// cache (References.ForDict), no per-row string materialization.
func DetectDay(s *store.Store, source string, day simtime.Day, refs *References) *DayDetections {
	d, _, _, _ := detectSourceStaged(s, source, day, refs)
	return d
}

// DetectPartition is DetectDay over any BatchSource — the unit of
// streaming detection. Unlike DetectDay it can fail: a Reader surfaces
// missing or corrupt partitions as errors instead of silent empties.
func DetectPartition(src BatchSource, source string, day simtime.Day, refs *References) (*DayDetections, error) {
	d, _, _, err := detectSourceStaged(src, source, day, refs)
	return d, err
}

// detectSourceStaged is DetectPartition with per-stage wall timing: scan
// is the row classification loop (batch-scan), merge is finalize's sort
// / dedup / distinct-count pass (hit-merge). DetectRange feeds these
// into the detect_stage_seconds histograms; the two time.Now pairs are
// noise next to a partition's work. The batch is released only after
// finalize — finalize reads the batch's domain column.
func detectSourceStaged(src BatchSource, source string, day simtime.Day, refs *References) (d *DayDetections, scan, merge time.Duration, err error) {
	dict, err := src.SharedDict()
	if err != nil {
		return nil, 0, 0, err
	}
	np := refs.NumProviders()
	d = &DayDetections{Source: source, Day: day, dict: dict}
	b, release, err := src.AcquireBatch(source, day)
	if err != nil {
		return nil, 0, 0, err
	}
	defer release()
	n := b.Rows()
	if n == 0 {
		d.off = make([]int32, np+1)
		return d, 0, 0, nil
	}
	t0 := time.Now()
	d.Rows = n
	ids := refs.ForDict(d.dict)
	packed := make([]uint64, 0, 1024)
	for i := 0; i < n; i++ {
		dom := b.Domains[i]
		switch b.Kinds[i] {
		case store.KindWWWCNAME:
			if p, ok := ids.MatchCNAMEID(b.Strs[i]); ok {
				packed = append(packed, packUse(p, dom, RefCNAME))
			}
		case store.KindNS:
			if p, ok := ids.MatchNSID(b.Strs[i]); ok {
				packed = append(packed, packUse(p, dom, RefNS))
			}
		default: // address kinds
			for _, asn := range b.ASNs(i) {
				if p, ok := refs.MatchASN(asn); ok {
					packed = append(packed, packUse(p, dom, RefAS))
				}
			}
		}
	}
	t1 := time.Now()
	d.finalize(packed, np, b.Domains)
	return d, t1.Sub(t0), time.Since(t1), nil
}

// finalize sorts and dedups the packed hits, builds the per-provider
// offsets, and computes the two distinct-domain counts.
func (d *DayDetections) finalize(packed []uint64, np int, domains []uint32) {
	slices.Sort(packed)
	// Merge entries of the same (provider, domain), OR-ing the method
	// bits; equal pairs are adjacent after the sort.
	w := 0
	for r := 0; r < len(packed); {
		key := packed[r] &^ 0xff
		m := packed[r]
		for r++; r < len(packed) && packed[r]&^0xff == key; r++ {
			m |= packed[r]
		}
		packed[w] = key | m&0xff
		w++
	}
	d.packed = packed[:w]
	d.off = make([]int32, np+1)
	for _, v := range d.packed {
		d.off[int(v>>40)+1]++
	}
	for p := 0; p < np; p++ {
		d.off[p+1] += d.off[p]
	}
	// Distinct counts via a dict-sized bitset: one O(n) pass each, no
	// hashing. Dict IDs are dense, so the bitset is dictLen/8 bytes.
	words := make([]uint64, (d.dict.Len()+63)/64)
	prev := store.NoStr
	for _, id := range domains {
		if id == prev { // skip the common contiguous-run repeats cheaply
			continue
		}
		prev = id
		if wd, bit := id>>6, uint64(1)<<(id&63); words[wd]&bit == 0 {
			words[wd] |= bit
			d.DomainsMeasured++
		}
	}
	clear(words)
	for _, v := range d.packed {
		id := uint32(v >> 8)
		if wd, bit := id>>6, uint64(1)<<(id&63); words[wd]&bit == 0 {
			words[wd] |= bit
			d.anyCount++
		}
	}
}

// span returns provider p's packed detections.
func (d *DayDetections) span(p int) []uint64 { return d.packed[d.off[p]:d.off[p+1]] }

// NumProviders returns the provider count the detections were built for.
func (d *DayDetections) NumProviders() int { return len(d.off) - 1 }

// Count returns the number of domains using provider p by any reference.
func (d *DayDetections) Count(p int) int { return int(d.off[p+1] - d.off[p]) }

// CountMethod returns the number of domains whose references toward p
// include the given method bits.
func (d *DayDetections) CountMethod(p int, m Method) int {
	n := 0
	for _, v := range d.span(p) {
		if Method(v).Has(m) {
			n++
		}
	}
	return n
}

// CountAny returns the number of domains using at least one provider
// (precomputed at build; repeated calls are free).
func (d *DayDetections) CountAny() int { return d.anyCount }

// EachUse calls fn for every (domain ID, methods) pair toward provider
// p, in ascending domain-ID order. Resolve IDs with DomainName.
func (d *DayDetections) EachUse(p int, fn func(id uint32, m Method)) {
	for _, v := range d.span(p) {
		fn(uint32(v>>8), Method(v))
	}
}

// DomainName resolves a domain ID from EachUse against the store
// dictionary the detections were built over.
func (d *DayDetections) DomainName(id uint32) string { return d.dict.Str(id) }

// Uses materializes provider p's detections as domain name → methods:
// the string view for reports and tests. It allocates per call; hot
// paths should iterate EachUse instead.
func (d *DayDetections) Uses(p int) map[string]Method {
	out := make(map[string]Method, d.Count(p))
	d.EachUse(p, func(id uint32, m Method) { out[d.dict.Str(id)] = m })
	return out
}

// MergeAny folds the per-provider detections into dst: domain → union of
// methods over a set of detections (used to combine sources).
func (d *DayDetections) MergeAny(p int, dst map[string]Method) {
	d.EachUse(p, func(id uint32, m Method) { dst[d.dict.Str(id)] |= m })
}

// MergeAnyID is MergeAny in dictionary-ID space, for consumers sharing
// the detections' store dictionary.
func (d *DayDetections) MergeAnyID(p int, dst map[uint32]Method) {
	d.EachUse(p, func(id uint32, m Method) { dst[id] |= m })
}

// BaselineDetections is the result of DetectDayBaseline: the original
// string-keyed representation, kept as the reference the ID-native
// engine is cross-checked and benchmarked against.
type BaselineDetections struct {
	Source string
	Day    simtime.Day
	// Uses[p] maps domain name → reference methods toward provider p.
	Uses []map[string]Method
	// DomainsMeasured counts domain-run transitions — exact only while
	// every domain's rows are contiguous (the historical approximation;
	// DetectDay counts the ID set and is exact unconditionally).
	DomainsMeasured int
}

// DetectDayBaseline is the pre-ID-engine detection pass, string-keyed
// and one Dict.Str materialization per row. Retained verbatim so tests
// can demand DetectDay produce identical counts and the detect benchmark
// can quantify the de-stringing win; not for production use.
func DetectDayBaseline(s *store.Store, source string, day simtime.Day, refs *References) *BaselineDetections {
	d := &BaselineDetections{
		Source: source,
		Day:    day,
		Uses:   make([]map[string]Method, refs.NumProviders()),
	}
	for i := range d.Uses {
		d.Uses[i] = make(map[string]Method)
	}
	var lastDomain string
	s.ForEachRow(source, day, func(r store.Row) {
		if r.Domain != lastDomain {
			d.DomainsMeasured++
			lastDomain = r.Domain
		}
		switch r.Kind {
		case store.KindApexA, store.KindApexAAAA, store.KindWWWA, store.KindWWWAAAA:
			for _, asn := range r.ASNs {
				if p, ok := refs.MatchASN(asn); ok {
					d.Uses[p][r.Domain] |= RefAS
				}
			}
		case store.KindWWWCNAME:
			if p, ok := refs.MatchCNAME(r.Str); ok {
				d.Uses[p][r.Domain] |= RefCNAME
			}
		case store.KindNS:
			if p, ok := refs.MatchNS(r.Str); ok {
				d.Uses[p][r.Domain] |= RefNS
			}
		}
	})
	return d
}

// CountAny returns the number of domains using at least one provider
// (allocating a fresh union set per call, as the baseline always did).
func (d *BaselineDetections) CountAny() int {
	seen := make(map[string]bool)
	for _, uses := range d.Uses {
		for dom := range uses {
			seen[dom] = true
		}
	}
	return len(seen)
}
