package dnsclient

import (
	"fmt"
	"net/netip"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/transport"
)

// AXFR performs a zone transfer (RFC 5936, simplified) from the given
// server over a stream connection and returns the zone's records in
// transfer order (SOA first; the terminating repeated SOA is stripped).
// The transport must support streams.
func (r *Resolver) AXFR(server netip.AddrPort, zone string) ([]dnswire.RR, error) {
	origin, err := dnswire.CanonicalName(zone)
	if err != nil {
		return nil, err
	}
	sn, ok := r.net.(transport.StreamNetwork)
	if !ok {
		return nil, fmt.Errorf("dnsclient: transport has no stream support for AXFR")
	}
	conn, err := sn.DialStream(r.conn.LocalAddr().Addr(), server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(r.Timeout * 20))

	q := dnswire.NewQuery(uint16(r.rng.Uint32()), origin, dnswire.TypeAXFR)
	q.Flags.RecursionDesired = false
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		return nil, err
	}
	r.queries.Add(1)

	var records []dnswire.RR
	soaSeen := 0
	for soaSeen < 2 {
		msg, err := dnswire.ReadFramed(conn)
		if err != nil {
			return nil, fmt.Errorf("dnsclient: AXFR stream: %w", err)
		}
		resp, err := dnswire.Unpack(msg)
		if err != nil {
			return nil, err
		}
		if resp.ID != q.ID || !resp.Flags.Response {
			return nil, fmt.Errorf("dnsclient: AXFR response mismatch")
		}
		if resp.Flags.RCode != dnswire.RCodeNoError {
			return nil, fmt.Errorf("dnsclient: AXFR refused: %v", resp.Flags.RCode)
		}
		if len(resp.Answers) == 0 {
			return nil, fmt.Errorf("dnsclient: empty AXFR message")
		}
		for _, rr := range resp.Answers {
			if rr.Type == dnswire.TypeSOA && rr.Name == origin {
				soaSeen++
				if soaSeen == 2 {
					return records, nil
				}
			}
			records = append(records, rr)
		}
	}
	return records, nil
}
