package dnsserver

import (
	"errors"
	"net"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/transport"
)

// DNS over TCP (RFC 1035 §4.2.2): each message is preceded by a two-byte
// big-endian length. Clients fall back to TCP when a UDP response arrives
// truncated; over TCP the server never truncates.

// tcpIdleTimeout bounds how long a connection may sit between queries.
const tcpIdleTimeout = 5 * time.Second

// ServeStream accepts TCP connections and answers framed queries until
// the listener is closed. Each connection is handled in its own
// goroutine and can carry multiple queries.
func (s *Server) ServeStream(l transport.StreamListener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout))
		msg, err := dnswire.ReadFramed(conn)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(msg)
		if err != nil {
			return // garbage on a stream: drop the connection
		}
		if len(q.Questions) == 1 && q.Questions[0].Type == dnswire.TypeAXFR {
			if err := s.serveAXFR(conn, q); err != nil {
				return
			}
			continue
		}
		resp := s.Handle(q)
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(tcpIdleTimeout))
		if err := dnswire.WriteFramed(conn, wire); err != nil {
			return
		}
	}
}

// StartStream binds a TCP listener for srv at addr (when the network
// supports streams) and serves it in a goroutine. Returns nil, nil when
// the network has no stream support.
func StartStream(srv *Server, network transport.Network, addr string) (*RunningStream, error) {
	sn, ok := network.(transport.StreamNetwork)
	if !ok {
		return nil, nil
	}
	ap, err := parseListenAddr(addr)
	if err != nil {
		return nil, err
	}
	l, err := sn.ListenStream(ap)
	if err != nil {
		return nil, err
	}
	r := &RunningStream{listener: l, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = srv.ServeStream(l)
	}()
	return r, nil
}

// RunningStream wraps a serving TCP listener.
type RunningStream struct {
	listener transport.StreamListener
	done     chan struct{}
	err      error
}

// Stop closes the listener and waits briefly for the accept loop.
func (r *RunningStream) Stop() error {
	r.listener.Close()
	select {
	case <-r.done:
	case <-time.After(time.Second):
	}
	return r.err
}

// serveAXFR answers a zone-transfer query on a stream connection
// (RFC 5936, simplified): the zone's records are sent as a sequence of
// response messages, beginning with the SOA and ending with a repeated
// SOA. Transfers are only honoured for zones the server carries and only
// over TCP.
func (s *Server) serveAXFR(conn net.Conn, q *dnswire.Message) error {
	qname := q.Questions[0].Name
	z, ok := s.Zone(qname)
	if !ok {
		resp := q.Reply()
		resp.Flags.RCode = dnswire.RCodeRefused
		wire, err := resp.Pack()
		if err != nil {
			return err
		}
		return dnswire.WriteFramed(conn, wire)
	}
	records := z.AllRecords()
	if len(records) == 0 || records[0].Type != dnswire.TypeSOA {
		resp := q.Reply()
		resp.Flags.RCode = dnswire.RCodeServFail
		wire, err := resp.Pack()
		if err != nil {
			return err
		}
		return dnswire.WriteFramed(conn, wire)
	}
	// Close the sequence with the SOA again.
	records = append(records, records[0])
	const batch = 200
	for i := 0; i < len(records); i += batch {
		hi := i + batch
		if hi > len(records) {
			hi = len(records)
		}
		resp := q.Reply()
		resp.Flags.Authoritative = true
		resp.Answers = records[i:hi]
		wire, err := resp.Pack()
		if err != nil {
			return err
		}
		_ = conn.SetWriteDeadline(time.Now().Add(tcpIdleTimeout))
		if err := dnswire.WriteFramed(conn, wire); err != nil {
			return err
		}
	}
	return nil
}
