package analysis

import (
	"sort"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// This file implements §4.4.1: tracing the large per-provider anomalies to
// the third parties that cause them. A swing is a large day-over-day
// change in a provider's use count; attribution diffs the provider's
// domain sets on the two days and summarises what the joining (or
// leaving) domains share — their NS SLD, the paper's fingerprint for
// "Wix", "ENOM", "registrar-servers.com", and friends.

// Swing is one large day-over-day change.
type Swing struct {
	Provider int
	Day      simtime.Day // the later day of the pair
	Delta    int         // use count change from the previous day
}

// LargestSwings returns the topN biggest absolute day-over-day changes of
// provider p across the summed sources.
func (a *Aggregator) LargestSwings(sources []string, p, topN int) []Swing {
	days := a.Days(sources[0])
	var swings []Swing
	for i := 1; i < len(days); i++ {
		prev := a.SumProvider(sources, p, days[i-1])
		cur := a.SumProvider(sources, p, days[i])
		if d := cur - prev; d != 0 {
			swings = append(swings, Swing{Provider: p, Day: days[i], Delta: d})
		}
	}
	sort.Slice(swings, func(i, j int) bool { return abs(swings[i].Delta) > abs(swings[j].Delta) })
	if len(swings) > topN {
		swings = swings[:topN]
	}
	return swings
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SLDShare is one attribution row: a shared NS SLD and how many of the
// changed domains carry it.
type SLDShare struct {
	SLD     string
	Domains int
	// Fraction of the changed set bearing this SLD.
	Fraction float64
}

// Attribution explains one swing.
type Attribution struct {
	Swing Swing
	// Joined/Left are the sizes of the domain-set difference.
	Joined, Left int
	// Shared summarises the NS SLDs of the changed domains, largest
	// first.
	Shared []SLDShare
}

// Attribute diffs provider p's domain sets between day and the previous
// measured day and summarises the changed domains' NS SLDs.
func (a *Aggregator) Attribute(sources []string, p int, day simtime.Day) Attribution {
	days := a.Days(sources[0])
	att := Attribution{Swing: Swing{Provider: p, Day: day}}
	idx := -1
	for i, d := range days {
		if d == day {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return att
	}
	prevDay := days[idx-1]

	prev := make(map[string]bool)
	cur := make(map[string]bool)
	for _, src := range sources {
		dp := core.DetectDay(a.Store, src, prevDay, a.Refs)
		dp.EachUse(p, func(id uint32, _ core.Method) { prev[dp.DomainName(id)] = true })
		dc := core.DetectDay(a.Store, src, day, a.Refs)
		dc.EachUse(p, func(id uint32, _ core.Method) { cur[dc.DomainName(id)] = true })
	}
	changed := make(map[string]bool)
	for dom := range cur {
		if !prev[dom] {
			att.Joined++
			changed[dom] = true
		}
	}
	for dom := range prev {
		if !cur[dom] {
			att.Left++
			changed[dom] = true
		}
	}
	att.Swing.Delta = att.Joined - att.Left
	if len(changed) == 0 {
		return att
	}

	// Fingerprint the changed set by NS SLD. A domain that vanished has
	// its NS rows on the previous day.
	sldCount := make(map[string]int)
	counted := make(map[string]bool)
	for _, d := range []simtime.Day{day, prevDay} {
		for _, src := range sources {
			a.Store.ForEachRow(src, d, func(r store.Row) {
				if r.Kind != store.KindNS || !changed[r.Domain] || counted[r.Domain] {
					return
				}
				sldCount[core.SLD(r.Str)]++
				counted[r.Domain] = true
			})
		}
	}
	for sld, n := range sldCount {
		att.Shared = append(att.Shared, SLDShare{
			SLD:      sld,
			Domains:  n,
			Fraction: float64(n) / float64(len(changed)),
		})
	}
	sort.Slice(att.Shared, func(i, j int) bool { return att.Shared[i].Domains > att.Shared[j].Domains })
	return att
}
