// ondemand follows a single on-demand DPS customer through its attack
// episodes (§3.4): the domain's address flips between its own hosting and
// a DPS-announced address, and the analysis recovers the diversion
// intervals, classifies the use pattern, and summarises the provider's
// peak-duration distribution (Fig 8).
//
//	go run ./examples/ondemand
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	world, err := worldsim.New(worldsim.DefaultConfig(150_000))
	if err != nil {
		log.Fatal(err)
	}

	// Find an on-demand customer with early peaks, so a short measurement
	// window captures at least three.
	var target *worldsim.Domain
	for _, d := range world.Domains {
		if c := d.Cust; c != nil && c.OnDemand && len(c.Peaks) >= 3 &&
			c.Peaks[2].End < world.Cfg.Window.Start+180 {
			target = d
			break
		}
	}
	if target == nil {
		log.Fatal("no suitable on-demand customer")
	}
	provider := target.Cust.Provider
	refs := core.MustGroundTruth()
	fmt.Printf("%s is an on-demand %s customer (%s profile)\n\n",
		target.Name, refs.Providers[provider].Name, target.Cust.Profile)

	// Measure the first 180 days.
	st := store.New()
	pipeline := measure.New(world, st, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	window := simtime.Range{Start: world.Cfg.Window.Start, End: world.Cfg.Window.Start + 180}
	if err := pipeline.RunRange(context.Background(), window); err != nil {
		log.Fatal(err)
	}

	// Show the raw daily flips around the first peak.
	fmt.Println("daily state around the first episode:")
	first := target.Cust.Peaks[0]
	for day := first.Start - 2; day < first.End+2; day++ {
		s := world.StateFor(target, day)
		mark := "  "
		if target.Cust.ActiveOn(day) {
			mark = "=>"
		}
		fmt.Printf("  %s %s apex %v\n", mark, day, s.ApexA)
	}

	// Recover intervals and classification from measurements alone.
	agg := analysis.NewAggregator(refs, st, worldsim.GTLDs())
	if err := agg.Run(worldsim.GTLDs()); err != nil {
		log.Fatal(err)
	}
	ivs := agg.Intervals(provider, target.Name)
	fmt.Printf("\nrecovered diversion intervals (%d):\n", len(ivs))
	for _, iv := range ivs {
		fmt.Printf("  %s (%d days)\n", iv, iv.Len())
	}
	fmt.Printf("classification: %s\n", agg.Classify(provider, target.Name, window))

	// Fig 8 for this provider, over the measured window.
	stats := agg.OnDemandPeaks(provider, 3)
	fmt.Printf("\n%s on-demand set: %d domains, %d peaks, p80 = %d days\n",
		refs.Providers[provider].Name, stats.Domains, len(stats.Durations), stats.P(0.8))
	days, frac := stats.CDF()
	for i := range days {
		fmt.Printf("  P(d <= %3d) = %.2f |%s\n", days[i], frac[i], strings.Repeat("#", int(frac[i]*30)))
	}
}
