package chaos

import (
	"sync"
	"time"

	"dpsadopt/internal/dnsserver"
)

// serverBurst is the decision window for SERVFAIL injection: consecutive
// queries for the same name share one verdict, so failures arrive in
// bursts — the shape of a real authoritative incident — rather than as
// independent coin flips.
const serverBurst = 8

// ServerFaults is a deterministic dnsserver.FaultInjector: each query's
// fate is a hash of (seed, qname, per-qname sequence number), so a run
// replays identically for a given seed regardless of how queries
// interleave across servers and workers.
type ServerFaults struct {
	cfg  Config
	seed uint64

	mu   sync.Mutex
	seqs map[string]uint64
}

// NewServerFaults builds the scenario's server-side injector. Returns nil
// when the scenario has no server faults, so callers can install the
// result unconditionally.
func NewServerFaults(cfg Config, seed int64) *ServerFaults {
	if !cfg.ServerActive() {
		return nil
	}
	return &ServerFaults{cfg: cfg, seed: uint64(seed), seqs: make(map[string]uint64)}
}

// Per-fault decision streams for server faults, disjoint from the
// network-side streams.
const (
	streamServfail = iota + 16
	streamSlow
	streamTruncate
	streamServerDrop
)

// QueryFault implements dnsserver.FaultInjector. A nil *ServerFaults is
// a valid no-op injector, matching NewServerFaults's nil return for
// fault-free scenarios.
func (f *ServerFaults) QueryFault(qname string) (dnsserver.Fault, time.Duration) {
	if f == nil {
		return dnsserver.FaultNone, 0
	}
	f.mu.Lock()
	seq := f.seqs[qname]
	f.seqs[qname] = seq + 1
	f.mu.Unlock()
	base := mix2(mix2(f.seed, hashString(qname)), seq)
	if f.cfg.ServerDrop > 0 && unit(mix2(base, streamServerDrop)) < f.cfg.ServerDrop {
		mInjected.With("server_drop").Inc()
		return dnsserver.FaultDrop, 0
	}
	// SERVFAIL decisions are shared across a burst window of queries.
	if f.cfg.Servfail > 0 {
		burst := mix2(mix2(f.seed, hashString(qname)), seq/serverBurst)
		if unit(mix2(burst, streamServfail)) < f.cfg.Servfail {
			mInjected.With("servfail").Inc()
			return dnsserver.FaultServfail, 0
		}
	}
	if f.cfg.Truncate > 0 && unit(mix2(base, streamTruncate)) < f.cfg.Truncate {
		mInjected.With("truncate").Inc()
		return dnsserver.FaultTruncate, 0
	}
	if f.cfg.Slow > 0 && unit(mix2(base, streamSlow)) < f.cfg.Slow {
		mInjected.With("slow").Inc()
		return dnsserver.FaultSlow, f.cfg.SlowDelay
	}
	return dnsserver.FaultNone, 0
}
