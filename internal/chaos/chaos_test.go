package chaos

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/transport"
)

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, name := range names {
		cfg, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("Scenario(%q).Name = %q", name, cfg.Name)
		}
		if !cfg.Active() && !cfg.ServerActive() && !cfg.CoordActive() {
			t.Errorf("scenario %q injects nothing", name)
		}
		if cfg.Reorder > 0 && cfg.ReorderDelay == 0 {
			t.Errorf("scenario %q: Reorder without ReorderDelay default", name)
		}
		if cfg.Slow > 0 && cfg.SlowDelay == 0 {
			t.Errorf("scenario %q: Slow without SlowDelay default", name)
		}
	}
	if _, err := Scenario("no-such-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// collectSurvivors sends n sequence-stamped datagrams from a client to a
// port-53 listener through a chaos wrap and returns which sequence numbers
// arrived.
func collectSurvivors(t *testing.T, cfg Config, seed int64, memSeed int64, n int) map[uint32]int {
	t.Helper()
	net := Wrap(transport.NewMem(memSeed), cfg, seed)
	srvAddr := netip.MustParseAddrPort("10.0.0.1:53")
	srv, err := net.Listen(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := net.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < n; i++ {
		var p [4]byte
		binary.BigEndian.PutUint32(p[:], uint32(i))
		if err := cli.WriteTo(p[:], srvAddr); err != nil {
			t.Fatal(err)
		}
	}
	got := map[uint32]int{}
	buf := make([]byte, 16)
	for {
		m, _, err := srv.ReadFrom(buf, 50*time.Millisecond)
		if errors.Is(err, transport.ErrTimeout) {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		got[binary.BigEndian.Uint32(buf[:m])]++
	}
}

func TestLossDeterministicAcrossRuns(t *testing.T) {
	cfg, err := Scenario("flaky-10pct")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	a := collectSurvivors(t, cfg, 7, 1, n)
	b := collectSurvivors(t, cfg, 7, 2, n) // different inner transport seed
	if len(a) == n {
		t.Fatalf("no datagrams lost out of %d at 10%% loss", n)
	}
	if len(a) < n/2 {
		t.Fatalf("only %d/%d survived 10%% loss", len(a), n)
	}
	for i := uint32(0); i < n; i++ {
		if (a[i] > 0) != (b[i] > 0) {
			t.Fatalf("seq %d: fate differs between identically-seeded runs", i)
		}
	}
	c := collectSurvivors(t, cfg, 8, 1, n)
	same := true
	for i := uint32(0); i < n; i++ {
		if (a[i] > 0) != (c[i] > 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 7 and seed 8 injected identical loss patterns")
	}
}

func TestDuplicateDelivery(t *testing.T) {
	got := collectSurvivors(t, Config{Name: "dup", Duplicate: 1}, 3, 1, 50)
	for i := uint32(0); i < 50; i++ {
		if got[i] != 2 {
			t.Fatalf("seq %d delivered %d times, want 2", i, got[i])
		}
	}
}

func TestDelayedDeliveryArrives(t *testing.T) {
	cfg := Config{Name: "slowpath", Latency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond}
	got := collectSurvivors(t, cfg, 3, 1, 50)
	for i := uint32(0); i < 50; i++ {
		if got[i] != 1 {
			t.Fatalf("seq %d delivered %d times, want 1", i, got[i])
		}
	}
}

func TestBlackholeOnlyKillsServers(t *testing.T) {
	net := Wrap(transport.NewMem(1), Config{Name: "dead", DeadFraction: 1}, 9)
	srvAddr := netip.MustParseAddrPort("10.0.0.1:53")
	srv, err := net.Listen(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := net.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Client → server (port 53) vanishes silently.
	if err := cli.WriteTo([]byte("q"), srvAddr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, _, err := srv.ReadFrom(buf, 20*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("blackholed datagram was delivered (err=%v)", err)
	}
	// Server → client (ephemeral port) always routes.
	if err := srv.WriteTo([]byte("r"), cli.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.ReadFrom(buf, 100*time.Millisecond); err != nil {
		t.Fatalf("response to client port was dropped: %v", err)
	}
	// TCP to a dead server fails with ErrNoRoute.
	if _, err := net.DialStream(netip.MustParseAddr("10.9.0.1"), srvAddr); !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("DialStream to dead server: err = %v, want ErrNoRoute", err)
	}
	// Protect exempts the address on both protocols.
	net.Protect(srvAddr.Addr())
	if err := cli.WriteTo([]byte("q2"), srvAddr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.ReadFrom(buf, 100*time.Millisecond); err != nil {
		t.Fatalf("datagram to protected server was dropped: %v", err)
	}
}

func TestPerFlowDecisionsIndependentOfInterleaving(t *testing.T) {
	// Two destination flows written in different interleavings must see
	// identical per-flow fault patterns: decisions hash the per-flow
	// sequence number, not a shared PRNG.
	run := func(interleave bool) (map[uint32]int, map[uint32]int) {
		net := Wrap(transport.NewMem(1), Config{Name: "flaky", Loss: 0.3}, 11)
		aAddr := netip.MustParseAddrPort("10.0.0.1:53")
		bAddr := netip.MustParseAddrPort("10.0.0.2:53")
		sa, err := net.Listen(aAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer sa.Close()
		sb, err := net.Listen(bAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer sb.Close()
		cli, err := net.Dial(netip.MustParseAddr("10.9.0.1"))
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		const n = 200
		write := func(i int, to netip.AddrPort) {
			var p [4]byte
			binary.BigEndian.PutUint32(p[:], uint32(i))
			if err := cli.WriteTo(p[:], to); err != nil {
				t.Fatal(err)
			}
		}
		if interleave {
			for i := 0; i < n; i++ {
				write(i, aAddr)
				write(i, bAddr)
			}
		} else {
			for i := 0; i < n; i++ {
				write(i, bAddr)
			}
			for i := 0; i < n; i++ {
				write(i, aAddr)
			}
		}
		drain := func(c transport.Conn) map[uint32]int {
			got := map[uint32]int{}
			buf := make([]byte, 16)
			for {
				m, _, err := c.ReadFrom(buf, 50*time.Millisecond)
				if errors.Is(err, transport.ErrTimeout) {
					return got
				}
				if err != nil {
					t.Fatal(err)
				}
				got[binary.BigEndian.Uint32(buf[:m])]++
			}
		}
		return drain(sa), drain(sb)
	}
	a1, b1 := run(true)
	a2, b2 := run(false)
	for i := uint32(0); i < 200; i++ {
		if (a1[i] > 0) != (a2[i] > 0) || (b1[i] > 0) != (b2[i] > 0) {
			t.Fatalf("seq %d: fault decision changed with write interleaving", i)
		}
	}
}

func TestServerFaults(t *testing.T) {
	// A network-only scenario yields a nil injector, and the nil injector
	// is a safe no-op.
	if f := NewServerFaults(Config{Loss: 0.5}, 1); f != nil {
		t.Error("network-only config produced a server injector")
	}
	var nilF *ServerFaults
	if fa, _ := nilF.QueryFault("example.com"); fa != dnsserver.FaultNone {
		t.Errorf("nil injector fault = %v", fa)
	}
	// trunc-storm truncates every query.
	cfg, err := Scenario("trunc-storm")
	if err != nil {
		t.Fatal(err)
	}
	f := NewServerFaults(cfg, 5)
	for i := 0; i < 20; i++ {
		if fa, _ := f.QueryFault("example.com"); fa != dnsserver.FaultTruncate {
			t.Fatalf("query %d: fault = %v, want truncate", i, fa)
		}
	}
	// Same seed → identical fault sequence; different seed → different.
	seq := func(seed int64) []dnsserver.Fault {
		sf := NewServerFaults(Config{Name: "sf", Servfail: 0.3, Slow: 0.2, SlowDelay: time.Millisecond}, seed)
		out := make([]dnsserver.Fault, 100)
		for i := range out {
			out[i], _ = sf.QueryFault("www.example.com")
		}
		return out
	}
	a, b, c := seq(5), seq(5), seq(6)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: fault differs between identically-seeded injectors", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 5 and 6 produced identical fault sequences")
	}
	// Slow faults carry the configured delay.
	sf := NewServerFaults(Config{Name: "slow", Slow: 1, SlowDelay: 7 * time.Millisecond}, 1)
	if fa, d := sf.QueryFault("x.test"); fa != dnsserver.FaultSlow || d != 7*time.Millisecond {
		t.Errorf("slow fault = %v/%v", fa, d)
	}
}
