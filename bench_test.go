// Package dpsadopt's root benchmarks regenerate every table and figure of
// the paper's evaluation from a cached reproduction run, one benchmark
// per artifact (see DESIGN.md §4 for the experiment index). Ablation
// benchmarks for the design choices called out in DESIGN.md §5 live next
// to their subsystems (internal/pfx2as, internal/store, internal/dnswire,
// internal/analysis, internal/measure).
//
//	go test -bench=. -benchmem
package dpsadopt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsadopt/internal/api"
	"dpsadopt/internal/benchfmt"
	"dpsadopt/internal/chaos"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/core"
	"dpsadopt/internal/dnsclient"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/experiment"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/report"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

// benchRunner is a full-window run at 1:50000 scale, built once. Every
// artifact benchmark regenerates its table or figure from this run.
var (
	benchOnce   sync.Once
	benchShared *experiment.Runner
	benchErr    error
)

func runner(b *testing.B) *experiment.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchShared, benchErr = experiment.New(experiment.Config{Scale: 50_000, Workers: 4})
		if benchErr == nil {
			benchErr = benchShared.Run(context.Background())
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchShared
}

// quietDay is an anomaly-free day used for discovery benchmarks.
var quietDay = simtime.FromDate(2015, 7, 25)

func BenchmarkTable1DataSet(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Table1()
		if len(rows) == 0 {
			b.Fatal("empty table 1")
		}
		report.Table1(io.Discard, rows)
	}
}

func BenchmarkTable2Discovery(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table2(quietDay)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Discovered) != 9 {
			b.Fatal("missing providers")
		}
	}
}

func BenchmarkFigure2DailyUse(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Figure2()
		if len(s) != 4 {
			b.Fatal("series missing")
		}
	}
}

func BenchmarkFigure3Breakdown(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure3()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkFigure4Distribution(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := r.Figure4()
		if f.Namespace["com"] == 0 {
			b.Fatal("empty distribution")
		}
	}
}

func BenchmarkFigure5Growth(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := r.Figure5()
		if g.AdoptionGrowth() == 0 {
			b.Fatal("empty growth")
		}
	}
}

func BenchmarkFigure6NLAlexa(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := r.Figure6()
		if len(f.NL.Days) == 0 && len(f.Alexa.Days) == 0 {
			b.Fatal("empty fig 6")
		}
	}
}

func BenchmarkFigure7Flux(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure7()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkFigure8PeakCDF(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r.Figure8()
		if len(p) != 9 {
			b.Fatal("panels missing")
		}
	}
}

func BenchmarkAnomalyAttribution(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := r.Anomalies(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no anomalies")
		}
	}
}

// BenchmarkMeasureDay benchmarks one full measurement day (Stage I–III,
// direct fidelity) on a fresh store.
func BenchmarkMeasureDay(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := store.New()
		p := measure.New(r.World, tmp, measure.Config{Mode: measure.ModeDirect, Workers: 4})
		if err := p.RunDay(context.Background(), quietDay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDayWire benchmarks a wire-fidelity day on a small
// world: every query is a real DNS message through the in-memory network.
// Afterwards it snapshots the obs registry and persists the run's
// throughput and latency quantiles to results/BENCH_obs.json, giving
// future PRs a machine-readable perf trajectory to compare against.
func BenchmarkMeasureDayWire(b *testing.B) {
	w, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.Default()
	before := reg.Snapshot()
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := store.New()
		p := measure.New(w, tmp, measure.Config{Mode: measure.ModeWire, Workers: 8, Timeout: 500, Retries: 3})
		if err := p.RunDay(context.Background(), quietDay); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	writeObsBench(b, before, reg.Snapshot(), time.Since(start))
}

// writeObsBench emits results/BENCH_obs.json from two registry snapshots
// bracketing the benchmark loop. Counters are deltas (the registry is
// process-cumulative); quantiles are cumulative over the process, which
// is fine for a trajectory dominated by this benchmark's queries.
func writeObsBench(b *testing.B, before, after obs.Snapshot, elapsed time.Duration) {
	b.Helper()
	queries := after.Counter("dns_client_queries_total") - before.Counter("dns_client_queries_total")
	rows := after.Counter("store_rows_total") - before.Counter("store_rows_total")
	lat := after.Histogram("dns_client_query_seconds")
	doc := map[string]any{
		"bench":           "MeasureDayWire",
		"iterations":      b.N,
		"elapsed_seconds": elapsed.Seconds(),
		"queries":         queries,
		"queries_per_sec": float64(queries) / elapsed.Seconds(),
		"rows":            rows,
		"query_p50_s":     lat.P50,
		"query_p90_s":     lat.P90,
		"query_p99_s":     lat.P99,
		"packets_sent": after.Counter("transport_packets_sent_total") -
			before.Counter("transport_packets_sent_total"),
		"packets_dropped": after.Counter("transport_packets_dropped_total") -
			before.Counter("transport_packets_dropped_total"),
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Logf("BENCH_obs.json not written: %v", err)
		return
	}
	if err := os.WriteFile("results/BENCH_obs.json", append(raw, '\n'), 0o644); err != nil {
		b.Logf("BENCH_obs.json not written: %v", err)
		return
	}
	b.Logf("wrote results/BENCH_obs.json (%d queries, %.0f q/s, p99 %.3fms)",
		queries, float64(queries)/elapsed.Seconds(), lat.P99*1000)
}

// BenchmarkTraceOverhead quantifies what request-scoped tracing costs on
// the wire-fidelity day of BenchmarkMeasureDayWire, at three sampling
// rates: tracing disabled, the default 1% per-domain rate, and 100%.
// The sub-benchmark results are persisted to results/BENCH_trace.json
// with the overhead of each rate relative to off; the 1% rate is the
// one dpsmeasure defaults to and should stay within a few percent.
func BenchmarkTraceOverhead(b *testing.B) {
	w, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		b.Fatal(err)
	}
	secPerOp := map[string]float64{}
	runTraced := func(b *testing.B, tr *trace.Tracer, key string) {
		trace.SetDefault(tr)
		defer trace.SetDefault(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tmp := store.New()
			p := measure.New(w, tmp, measure.Config{Mode: measure.ModeWire, Workers: 8, Timeout: 500, Retries: 3})
			ctx, sp := tr.StartRoot(context.Background(), "experiment.day", trace.Str("day", quietDay.String()))
			if err := p.RunDay(ctx, quietDay); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
		b.StopTimer()
		secPerOp[key] = b.Elapsed().Seconds() / float64(b.N)
	}
	b.Run("off", func(b *testing.B) { runTraced(b, nil, "off") })
	b.Run("sample1pct", func(b *testing.B) {
		runTraced(b, trace.New(trace.Config{Sample: 0.01, Exporters: []trace.Exporter{trace.NewJSONL(io.Discard)}}), "sample1pct")
	})
	b.Run("sample100pct", func(b *testing.B) {
		runTraced(b, trace.New(trace.Config{Sample: 1, Exporters: []trace.Exporter{trace.NewJSONL(io.Discard)}}), "sample100pct")
	})
	writeTraceBench(b, secPerOp)
}

// writeTraceBench persists the tracing-overhead comparison, mirroring
// writeObsBench's role as a machine-readable perf trajectory.
func writeTraceBench(b *testing.B, secPerOp map[string]float64) {
	b.Helper()
	off, ok := secPerOp["off"]
	if !ok || off == 0 {
		b.Log("BENCH_trace.json not written: baseline missing")
		return
	}
	overhead := func(key string) float64 {
		return (secPerOp[key] - off) / off * 100
	}
	doc := map[string]any{
		"bench":                     "TraceOverhead",
		"day_seconds_off":           off,
		"day_seconds_sample1pct":    secPerOp["sample1pct"],
		"day_seconds_sample100pct":  secPerOp["sample100pct"],
		"overhead_pct_sample1pct":   overhead("sample1pct"),
		"overhead_pct_sample100pct": overhead("sample100pct"),
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Logf("BENCH_trace.json not written: %v", err)
		return
	}
	if err := os.WriteFile("results/BENCH_trace.json", append(raw, '\n'), 0o644); err != nil {
		b.Logf("BENCH_trace.json not written: %v", err)
		return
	}
	b.Logf("wrote results/BENCH_trace.json (1%% sampling overhead %.1f%%, 100%% overhead %.1f%%)",
		overhead("sample1pct"), overhead("sample100pct"))
}

// BenchmarkResolveUnderLoss measures what the hardened resolver pays as
// the network degrades: full iterative resolutions through a wire world
// at 0%, 1% and 10% injected packet loss (fixed chaos seed, backoff and
// retry budget at their defaults, timeout lowered so a lost datagram
// costs milliseconds). Per-rate cost and retransmission counts are
// persisted to results/BENCH_chaos.json as the robustness perf baseline.
func BenchmarkResolveUnderLoss(b *testing.B) {
	w, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 0, len(w.Domains))
	for _, d := range w.Domains {
		names = append(names, d.Name)
	}
	stats := map[string]lossStat{}
	cases := []struct {
		key  string
		loss float64
	}{
		{"loss_0pct", 0},
		{"loss_1pct", 0.01},
		{"loss_10pct", 0.10},
	}
	for _, c := range cases {
		b.Run(c.key, func(b *testing.B) {
			var network transport.Network = transport.NewMem(1)
			if c.loss > 0 {
				network = chaos.Wrap(network, chaos.Config{Loss: c.loss}, 7)
			}
			wire, err := w.BuildWire(quietDay, network)
			if err != nil {
				b.Fatal(err)
			}
			defer wire.Close()
			if cn, ok := network.(*chaos.Network); ok {
				for _, root := range wire.Roots {
					cn.Protect(root.Addr())
				}
			}
			r, err := dnsclient.NewResolver(network, netip.MustParseAddr("10.99.0.1"), wire.Roots, 7)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			r.Timeout = 20 * time.Millisecond
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Give-ups are counted, not fatal: at 10% loss a resolution
				// can legitimately exhaust its retry budget.
				_, _ = r.Resolve(context.Background(), names[i%len(names)], dnswire.TypeA)
			}
			b.StopTimer()
			stats[c.key] = lossStat{
				SecPerResolve: b.Elapsed().Seconds() / float64(b.N),
				Queries:       r.QueriesSent(),
				Timeouts:      r.TimeoutsSeen(),
				GiveUps:       r.GiveUps(),
			}
		})
	}
	writeChaosBench(b, stats)
}

// lossStat is one BenchmarkResolveUnderLoss sub-benchmark's outcome.
type lossStat struct {
	SecPerResolve float64 `json:"sec_per_resolve"`
	Queries       int64   `json:"queries"`
	Timeouts      int64   `json:"timeouts"`
	GiveUps       int64   `json:"give_ups"`
}

// writeChaosBench persists the loss-rate comparison, mirroring
// writeObsBench's role as a machine-readable perf trajectory.
func writeChaosBench(b *testing.B, stats map[string]lossStat) {
	b.Helper()
	clean, ok := stats["loss_0pct"]
	if !ok || clean.SecPerResolve == 0 {
		b.Log("BENCH_chaos.json not written: clean baseline missing")
		return
	}
	slowdown := func(key string) float64 {
		return stats[key].SecPerResolve / clean.SecPerResolve
	}
	doc := map[string]any{
		"bench":               "ResolveUnderLoss",
		"rates":               stats,
		"slowdown_x_1pct":     slowdown("loss_1pct"),
		"slowdown_x_10pct":    slowdown("loss_10pct"),
		"resolver_timeout_ms": 20,
		"fault_seed":          7,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Logf("BENCH_chaos.json not written: %v", err)
		return
	}
	if err := os.WriteFile("results/BENCH_chaos.json", append(raw, '\n'), 0o644); err != nil {
		b.Logf("BENCH_chaos.json not written: %v", err)
		return
	}
	b.Logf("wrote results/BENCH_chaos.json (1%% loss %.2fx, 10%% loss %.2fx vs clean)",
		slowdown("loss_1pct"), slowdown("loss_10pct"))
}

// apiBench holds the serving-layer benchmark fixture: a 12-day
// direct-mode measurement indexed once and shared by every sub-bench.
var (
	apiBenchOnce sync.Once
	apiBenchIdx  *api.Index
	apiBenchErr  error
)

func apiIndex(b *testing.B) *api.Index {
	b.Helper()
	apiBenchOnce.Do(func() {
		w, err := worldsim.New(worldsim.DefaultConfig(50_000))
		if err != nil {
			apiBenchErr = err
			return
		}
		s := store.New()
		p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
		for day := simtime.Day(0); day < 12; day++ {
			if err := p.RunDay(context.Background(), day); err != nil {
				apiBenchErr = err
				return
			}
		}
		apiBenchIdx = api.NewIndex(s, core.MustGroundTruth())
	})
	if apiBenchErr != nil {
		b.Fatal(apiBenchErr)
	}
	return apiBenchIdx
}

// apiBenchPaths builds the request population: every detected domain,
// every indexed day, every provider series, and /v1/stats.
func apiBenchPaths(b *testing.B, idx *api.Index) []string {
	b.Helper()
	var paths []string
	for _, dom := range idx.Domains() {
		paths = append(paths, "/v1/domain/"+dom)
	}
	if len(paths) == 0 {
		b.Fatal("bench world produced no detections")
	}
	for _, d := range idx.Days() {
		paths = append(paths, "/v1/day/"+d.String())
	}
	for _, p := range idx.Stats().Providers {
		paths = append(paths, "/v1/provider/"+url.PathEscape(p)+"/series")
	}
	return append(paths, "/v1/stats")
}

// BenchmarkAPIServe measures the serving layer's single-threaded request
// cost under two key distributions (Zipf-skewed, as production query
// logs are, and uniform as the adversarial cache-hostile case) with the
// response cache on and off, plus the query observatory's overhead on
// the cached /v1/domain hot path (acceptance: <= 5%). Results are
// persisted to results/BENCH_api.json with the cache's speedup per
// distribution and the observatory's overhead percentage.
func BenchmarkAPIServe(b *testing.B) {
	idx := apiIndex(b)
	paths := apiBenchPaths(b, idx)
	secPerOp := map[string]float64{}
	run := func(b *testing.B, key string, cfg api.Config, pick func(i int) string) {
		cfg.MaxInflight = 64
		srv := api.NewServer(idx, cfg)
		h := srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, pick(i), nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("%s: status %d", pick(i), rec.Code)
			}
		}
		b.StopTimer()
		secPerOp[key] = b.Elapsed().Seconds() / float64(b.N)
	}
	zipfPick := func() func(i int) string {
		z := rand.NewZipf(rand.New(rand.NewSource(1)), 1.2, 1, uint64(len(paths)-1))
		return func(int) string { return paths[z.Uint64()] }
	}
	uniformPick := func() func(i int) string {
		return func(i int) string { return paths[i%len(paths)] }
	}
	b.Run("zipf/cache", func(b *testing.B) { run(b, "zipf_cache", api.Config{CacheEntries: 4096}, zipfPick()) })
	b.Run("zipf/nocache", func(b *testing.B) { run(b, "zipf_nocache", api.Config{CacheEntries: -1}, zipfPick()) })
	b.Run("uniform/cache", func(b *testing.B) { run(b, "uniform_cache", api.Config{CacheEntries: 4096}, uniformPick()) })
	b.Run("uniform/nocache", func(b *testing.B) { run(b, "uniform_nocache", api.Config{CacheEntries: -1}, uniformPick()) })
	// Observatory overhead on the hot path: cached Zipf-skewed /v1/domain
	// traffic with the full recording pipeline (windowed histogram,
	// slowlog floor check, heavy-hitter sketch) on vs off. The two
	// servers are measured in alternating batches over the same request
	// sequence so clock-speed drift during the run cancels out of the
	// ratio — sequential sub-benchmarks proved noisier than the ~4%
	// effect being measured.
	var domains []string
	for _, p := range paths {
		if strings.HasPrefix(p, "/v1/domain/") {
			domains = append(domains, p)
		}
	}
	b.Run("domain/overhead", func(b *testing.B) {
		srvObs := api.NewServer(idx, api.Config{CacheEntries: 4096, MaxInflight: 64})
		srvOff := api.NewServer(idx, api.Config{CacheEntries: 4096, MaxInflight: 64, ObservatoryOff: true})
		hObs, hOff := srvObs.Handler(), srvOff.Handler()
		z := rand.NewZipf(rand.New(rand.NewSource(2)), 1.2, 1, uint64(len(domains)-1))
		serve := func(h http.Handler, batch []string) time.Duration {
			start := time.Now()
			for _, p := range batch {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("%s: status %d", p, rec.Code)
				}
			}
			return time.Since(start)
		}
		const batchSize = 512
		batch := make([]string, 0, batchSize)
		var tObs, tOff time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += batchSize {
			n := batchSize
			if left := b.N - done; left < n {
				n = left
			}
			batch = batch[:0]
			for i := 0; i < n; i++ {
				batch = append(batch, domains[z.Uint64()])
			}
			tObs += serve(hObs, batch)
			tOff += serve(hOff, batch)
		}
		b.StopTimer()
		secPerOp["domain_obs"] = tObs.Seconds() / float64(b.N)
		secPerOp["domain_noobs"] = tOff.Seconds() / float64(b.N)
		overhead := (tObs.Seconds() - tOff.Seconds()) / tOff.Seconds() * 100
		b.ReportMetric(overhead, "overhead_%")
	})
	writeAPIBench(b, secPerOp, len(paths))
}

// writeAPIBench persists the serving benchmark, mirroring writeObsBench's
// role as a machine-readable perf trajectory.
func writeAPIBench(b *testing.B, secPerOp map[string]float64, keys int) {
	b.Helper()
	if secPerOp["zipf_cache"] == 0 || secPerOp["zipf_nocache"] == 0 {
		b.Log("BENCH_api.json not written: sub-benchmarks missing")
		return
	}
	qps := func(key string) float64 { return 1 / secPerOp[key] }
	doc := map[string]any{
		"bench":                   "APIServe",
		"request_keys":            keys,
		"qps_zipf_cache":          qps("zipf_cache"),
		"qps_zipf_nocache":        qps("zipf_nocache"),
		"qps_uniform_cache":       qps("uniform_cache"),
		"qps_uniform_nocache":     qps("uniform_nocache"),
		"cache_speedup_zipf_x":    secPerOp["zipf_nocache"] / secPerOp["zipf_cache"],
		"cache_speedup_uniform_x": secPerOp["uniform_nocache"] / secPerOp["uniform_cache"],
	}
	if secPerOp["domain_noobs"] > 0 {
		doc["qps_domain_observatory"] = qps("domain_obs")
		doc["qps_domain_no_observatory"] = qps("domain_noobs")
		doc["window_overhead_pct_domain"] = (secPerOp["domain_obs"] - secPerOp["domain_noobs"]) /
			secPerOp["domain_noobs"] * 100
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Logf("BENCH_api.json not written: %v", err)
		return
	}
	if err := os.WriteFile("results/BENCH_api.json", append(raw, '\n'), 0o644); err != nil {
		b.Logf("BENCH_api.json not written: %v", err)
		return
	}
	b.Logf("wrote results/BENCH_api.json (zipf: %.0f q/s cached, %.1fx speedup)",
		qps("zipf_cache"), secPerOp["zipf_nocache"]/secPerOp["zipf_cache"])
	if ov, ok := doc["window_overhead_pct_domain"].(float64); ok {
		b.Logf("observatory overhead on cached /v1/domain: %.2f%%", ov)
	}
}

// detectBench collects the numbers both detection benchmarks produce so
// writeDetectBench can persist them together. Whichever benchmark runs
// last writes the file; fields a skipped benchmark never filled stay
// zero. The cmd/dpsbench harness writes the same benchfmt schema from a
// full GOMAXPROCS sweep — these benchmarks only cover the current
// GOMAXPROCS.
var detectBench struct {
	dayEngine *benchfmt.DayEngine
	sweep     []benchfmt.DetectCell
}

// benchLoop runs fn b.N times and reports wall nanoseconds and heap
// allocations per op (sub-benchmark results are not readable in-process,
// so the JSON capture measures directly).
func benchLoop(b *testing.B, fn func()) (nsPerOp, allocsPerOp float64) {
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fn()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	n := float64(b.N)
	return float64(elapsed.Nanoseconds()) / n, float64(ms1.Mallocs-ms0.Mallocs) / n
}

// BenchmarkDetectDay benchmarks the §3.3 detection scan over one stored
// day of .com: the ID-native engine against the retained string-keyed
// baseline it replaced.
func BenchmarkDetectDay(b *testing.B) {
	r := runner(b)
	tmp, err := r.MaterializeDay(quietDay)
	if err != nil {
		b.Fatal(err)
	}
	refs := core.MustGroundTruth()
	de := &benchfmt.DayEngine{}
	b.Run("id", func(b *testing.B) {
		de.IDNsOp, de.IDAllocsOp = benchLoop(b, func() {
			det := core.DetectDay(tmp, "com", quietDay, refs)
			if det.DomainsMeasured == 0 {
				b.Fatal("nothing measured")
			}
		})
	})
	b.Run("baseline", func(b *testing.B) {
		de.BaselineNsOp, de.BaselineAllocsOp = benchLoop(b, func() {
			det := core.DetectDayBaseline(tmp, "com", quietDay, refs)
			if det.DomainsMeasured == 0 {
				b.Fatal("nothing measured")
			}
		})
	})
	if de.IDNsOp > 0 {
		de.SpeedupX = de.BaselineNsOp / de.IDNsOp
	}
	if de.IDAllocsOp > 0 {
		de.AllocsRatioX = de.BaselineAllocsOp / de.IDAllocsOp
	}
	detectBench.dayEngine = de
	writeDetectBench(b)
}

// BenchmarkDetectRange benchmarks the day-sharded fan-out over a
// multi-day, all-source store at several worker counts.
func BenchmarkDetectRange(b *testing.B) {
	r := runner(b)
	tmp := store.New()
	p := measure.New(r.World, tmp, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	const benchDays = 4
	for i := 0; i < benchDays; i++ {
		if err := p.RunDay(context.Background(), quietDay+simtime.Day(i)); err != nil {
			b.Fatal(err)
		}
	}
	refs := core.MustGroundTruth()
	parts := core.Partitions(tmp)
	counts := []int{1, 2, 4}
	if gp := runtime.GOMAXPROCS(0); gp != 1 && gp != 2 && gp != 4 {
		counts = append(counts, gp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var agg core.RangeStats
			var ms0, ms1 runtime.MemStats
			b.ReportAllocs()
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dets, st := core.DetectRangeStats(context.Background(), tmp, parts, refs, workers)
				if len(dets) == 0 || dets[0] == nil {
					b.Fatal("no detections")
				}
				agg.Add(st)
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			cell := benchfmt.DetectCell{
				Gomaxprocs:       runtime.GOMAXPROCS(0),
				Workers:          agg.Workers,
				Iters:            b.N,
				Partitions:       len(parts),
				Rows:             agg.Rows / int64(b.N),
				WallSeconds:      agg.Wall.Seconds(),
				PartitionsPerSec: agg.PartitionsPerSec(),
				Utilization:      agg.Utilization(),
				ScanSeconds:      agg.Scan.Seconds(),
				MergeSeconds:     agg.Merge.Seconds(),
				QueueWaitSeconds: agg.QueueWait.Seconds(),
				BarrierSeconds:   agg.Barrier.Seconds(),
			}
			if agg.Partitions > 0 {
				cell.AllocsPerPartition = float64(ms1.Mallocs-ms0.Mallocs) / float64(agg.Partitions)
			}
			if cell.WallSeconds > 0 {
				cell.RowsPerSec = float64(agg.Rows) / cell.WallSeconds
			}
			// The harness reruns the closure while calibrating b.N; keep
			// only the final (longest) run per cell.
			for i := range detectBench.sweep {
				if detectBench.sweep[i].Gomaxprocs == cell.Gomaxprocs &&
					detectBench.sweep[i].Workers == cell.Workers {
					detectBench.sweep[i] = cell
					return
				}
			}
			detectBench.sweep = append(detectBench.sweep, cell)
		})
	}
	writeDetectBench(b)
}

// writeDetectBench persists the detection engine numbers the README perf
// note and DESIGN.md §9–§10 quote, in the same row-per-cell schema the
// cmd/dpsbench sweep harness writes.
func writeDetectBench(b *testing.B) {
	doc := &benchfmt.DetectDoc{
		Bench:     "detect",
		Schema:    benchfmt.DetectSchema,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Source:    "go test -bench",
		World:     "shared 1:50000 runner world, 4 quiet days",
		DayEngine: detectBench.dayEngine,
		Sweep:     detectBench.sweep,
	}
	doc.FillEfficiency()
	if err := doc.Write("results/BENCH_detect.json"); err != nil {
		b.Logf("BENCH_detect.json not written: %v", err)
		return
	}
	if de := doc.DayEngine; de != nil && de.BaselineNsOp > 0 {
		b.Logf("wrote results/BENCH_detect.json (%.1fx faster, %.0fx fewer allocs than baseline)",
			de.SpeedupX, de.AllocsRatioX)
	} else {
		b.Logf("wrote results/BENCH_detect.json (%d sweep cells)", len(doc.Sweep))
	}
}

// BenchmarkFollowApply is the live-follower headroom benchmark: folding
// one freshly committed day into an 11-day serving index via the delta
// path (core.DetectDay on the new partitions + api.Index.Apply) against
// the full rebuild (api.NewIndex over the combined store) that the
// follower replaces. The acceptance floor is 10x: a day must land at
// least an order of magnitude cheaper than a cold rebuild, or live
// serving degenerates into periodic restarts. Both costs and the ratio
// are persisted to results/BENCH_follow.json (schema follow/v1).
func BenchmarkFollowApply(b *testing.B) {
	w, err := worldsim.New(worldsim.DefaultConfig(50_000))
	if err != nil {
		b.Fatal(err)
	}
	const baseDays = 60
	base := store.New()
	p := measure.New(w, base, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	for day := simtime.Day(0); day < baseDays; day++ {
		if err := p.RunDay(context.Background(), day); err != nil {
			b.Fatal(err)
		}
	}
	// The new day arrives as its own self-contained store, exactly the
	// shape of a coordinator spool (or the tail of a grown dataset).
	deltaStore := store.New()
	pd := measure.New(w, deltaStore, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	if err := pd.RunDay(context.Background(), baseDays); err != nil {
		b.Fatal(err)
	}
	refs := core.MustGroundTruth()
	combined := store.New()
	combined.Absorb(base)
	combined.Absorb(deltaStore)
	deltaParts := core.Partitions(deltaStore)
	baseIdx := api.NewIndex(base, refs)

	doc := &benchfmt.FollowDoc{
		NumCPU:          runtime.NumCPU(),
		GoVersion:       runtime.Version(),
		World:           fmt.Sprintf("synthetic scale=1:50000 days=%d+1", baseDays),
		BaseDays:        baseDays,
		BasePartitions:  len(core.Partitions(base)),
		DeltaPartitions: len(deltaParts),
	}
	b.Run("delta", func(b *testing.B) {
		doc.ApplyNsOp, doc.ApplyAllocsOp = benchLoop(b, func() {
			ups := make([]api.PartitionUpdate, 0, len(deltaParts))
			for _, part := range deltaParts {
				ups = append(ups, api.PartitionUpdate{
					Source: part.Source,
					Day:    part.Day,
					Det:    core.DetectDay(deltaStore, part.Source, part.Day, refs),
				})
			}
			next, delta := baseIdx.Apply(ups)
			if len(next.Days()) != baseDays+1 || delta == nil {
				b.Fatal("delta apply did not extend the index")
			}
			doc.DomainsTouched = len(delta.Domains)
		})
	})
	b.Run("rebuild", func(b *testing.B) {
		doc.RebuildNsOp, doc.RebuildAllocsOp = benchLoop(b, func() {
			idx := api.NewIndex(combined, refs)
			if len(idx.Days()) != baseDays+1 {
				b.Fatal("rebuild missing the new day")
			}
		})
	})
	doc.FillSpeedup()
	if err := doc.Write("results/BENCH_follow.json"); err != nil {
		b.Logf("BENCH_follow.json not written: %v", err)
		return
	}
	b.ReportMetric(doc.SpeedupX, "speedup_x")
	b.Logf("wrote results/BENCH_follow.json (delta %.2fms vs rebuild %.2fms: %.1fx, floor 10x)",
		doc.ApplyNsOp/1e6, doc.RebuildNsOp/1e6, doc.SpeedupX)
	if doc.SpeedupX < 10 {
		b.Errorf("delta apply only %.1fx faster than rebuild, want >= 10x", doc.SpeedupX)
	}
}

// BenchmarkWorldDay benchmarks computing one day of world state (every
// domain's DNS configuration plus the day's RIB).
func BenchmarkWorldDay(b *testing.B) {
	r := runner(b)
	w := r.World
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rib := w.RIBForDay(quietDay)
		if rib.Len() == 0 {
			b.Fatal("empty RIB")
		}
		for _, d := range w.Domains {
			_ = w.StateFor(d, quietDay)
		}
	}
}

// BenchmarkCoordinator drives the same (source, day) partition set
// through the internal/coord plane fault-free and under the seeded
// worker-crash scenario: one cell per phase with exactly-once
// accounting, end-to-end slowdown, and the re-lease latency abandoned
// partitions waited before another worker adopted them. Both cells are
// persisted to results/BENCH_coord.json (schema coord/v1) as the
// coordination robustness baseline.
func BenchmarkCoordinator(b *testing.B) {
	world, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		b.Fatal(err)
	}
	const coordDays = 3
	probe := measure.New(world, store.New(), measure.Config{Mode: measure.ModeDirect, Workers: 1})
	var parts []coord.Partition
	for d := 0; d < coordDays; d++ {
		day := world.Cfg.Window.Start + simtime.Day(d)
		for _, src := range probe.DaySources(day) {
			parts = append(parts, coord.Partition{Source: src, Day: day})
		}
	}
	work := func(ctx context.Context, p coord.Partition, attempt int) (*store.Store, error) {
		s := store.New()
		pipe := measure.New(world, s, measure.Config{Mode: measure.ModeDirect, Workers: 1})
		if err := pipe.RunPartition(ctx, p.Source, p.Day); err != nil {
			return nil, err
		}
		return s, nil
	}

	const (
		coordWorkers   = 3
		coordLeaseTTL  = 150 * time.Millisecond
		coordHeartbeat = 30 * time.Millisecond
	)
	phases := []struct {
		key      string
		scenario string
		seed     uint64
	}{
		{"clean", "", 0},
		{"worker_crash", "worker-crash", 11},
	}
	cells := map[string]benchfmt.CoordCell{}
	for _, ph := range phases {
		b.Run(ph.key, func(b *testing.B) {
			var cell benchfmt.CoordCell
			for i := 0; i < b.N; i++ {
				cell = runCoordPhase(b, parts, work, ph.scenario, ph.seed,
					coordWorkers, coordLeaseTTL, coordHeartbeat)
			}
			b.ReportMetric(cell.PartitionsPerSec, "partitions/s")
			if cell.ReleaseCount > 0 {
				b.ReportMetric(cell.ReleaseMeanSecs*1000, "release-ms")
			}
			cells[ph.key] = cell
		})
	}
	writeCoordBench(b, cells, coordDays, coordLeaseTTL, coordHeartbeat)
}

// runCoordPhase runs one full coordinated pass over parts and reduces
// it to a benchfmt.CoordCell, diffing the process-wide coord metrics
// around the run to isolate this phase's lease-recovery numbers.
func runCoordPhase(b *testing.B, parts []coord.Partition, work coord.WorkFunc,
	scenario string, seed uint64, workers int, ttl, heartbeat time.Duration) benchfmt.CoordCell {
	b.Helper()
	var faults *chaos.CoordFaults
	if scenario != "" {
		sc, err := chaos.Scenario(scenario)
		if err != nil {
			b.Fatal(err)
		}
		faults = chaos.NewCoordFaults(sc, seed)
	}
	cfg := coord.Config{
		Dir:            b.TempDir(),
		Workers:        workers,
		LeaseTTL:       ttl,
		HeartbeatEvery: heartbeat,
		MaxAttempts:    10,
		RetryBackoff:   5 * time.Millisecond,
		Work:           work,
		Faults:         faults,
		Seed:           seed,
	}
	before := obs.Default().Snapshot()
	start := time.Now()
	var c *coord.Coordinator
	restarts := 0
	for {
		var err error
		c, err = coord.New(cfg, parts)
		if err != nil {
			b.Fatal(err)
		}
		err = c.Run(context.Background())
		if errors.Is(err, coord.ErrRestart) {
			restarts++
			continue
		}
		if err != nil {
			b.Fatalf("Run(%q): %v", scenario, err)
		}
		break
	}
	wall := time.Since(start)
	after := obs.Default().Snapshot()
	stats := c.Stats()
	if stats.Committed != len(parts) {
		b.Fatalf("phase %q committed %d of %d partitions", scenario, stats.Committed, len(parts))
	}
	retried := 0
	for _, row := range c.Ledger() {
		if row.Attempts > 1 {
			retried++
		}
	}
	_, damaged, err := c.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	relBefore := before.Histogram("coord_release_latency_seconds")
	relAfter := after.Histogram("coord_release_latency_seconds")
	relCount := int64(relAfter.Count) - int64(relBefore.Count)
	relMean := 0.0
	if relCount > 0 {
		relMean = (relAfter.Sum - relBefore.Sum) / float64(relCount)
	}
	counterDelta := func(name string) int64 {
		return after.Counter(name) - before.Counter(name)
	}
	return benchfmt.CoordCell{
		Scenario:          scenario,
		Workers:           workers,
		Seed:              seed,
		Partitions:        len(parts),
		Committed:         stats.Committed,
		Retried:           retried,
		Restarts:          restarts,
		WallSeconds:       wall.Seconds(),
		PartitionsPerSec:  float64(stats.Committed) / wall.Seconds(),
		ReleaseCount:      relCount,
		ReleaseMeanSecs:   relMean,
		RecoveredSpools:   counterDelta("coord_recovered_spools_total"),
		DupCommits:        counterDelta("coord_dup_commits_total"),
		FencedCommits:     counterDelta("coord_fenced_commits_total"),
		JournalReplays:    counterDelta("coord_journal_replays_total"),
		ReplayedRequeues:  counterDelta("coord_replay_requeues_total"),
		QuarantinedSpools: len(damaged),
	}
}

// writeCoordBench persists the clean/worker-crash comparison, mirroring
// writeChaosBench's role as a machine-readable robustness trajectory.
func writeCoordBench(b *testing.B, cells map[string]benchfmt.CoordCell, days int, ttl, heartbeat time.Duration) {
	b.Helper()
	clean, haveClean := cells["clean"]
	crash, haveCrash := cells["worker_crash"]
	if !haveClean || !haveCrash {
		b.Log("BENCH_coord.json not written: a phase was filtered out")
		return
	}
	doc := &benchfmt.CoordDoc{
		NumCPU:           runtime.NumCPU(),
		GoVersion:        runtime.Version(),
		World:            fmt.Sprintf("synthetic scale=1:400000 days=%d", days),
		LeaseTTLSeconds:  ttl.Seconds(),
		HeartbeatSeconds: heartbeat.Seconds(),
		Cells:            []benchfmt.CoordCell{clean, crash},
	}
	doc.FillSlowdown()
	if err := doc.Write("results/BENCH_coord.json"); err != nil {
		b.Logf("BENCH_coord.json not written: %v", err)
		return
	}
	b.Logf("wrote results/BENCH_coord.json (worker-crash %.2fx slower, %d retried, re-lease mean %.0fms)",
		crash.SlowdownX, crash.Retried, crash.ReleaseMeanSecs*1000)
}
