#!/bin/sh
# End-to-end smoke test of the serving layer: measure a tiny world, save
# the .dpsa, start dpsapi on it, exercise every /v1 route with real HTTP,
# assert the response cache is counter-visibly working, and verify the
# server drains cleanly on SIGTERM. Mirrors the CI `api` job; run locally
# with `make api`.
set -eu
cd "$(dirname "$0")/.."

PORT="${DPSAPI_PORT:-18079}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/dpsmeasure" ./cmd/dpsmeasure
go build -o "$WORK/dpsapi" ./cmd/dpsapi

echo "== measure tiny dataset"
"$WORK/dpsmeasure" -scale 50000 -days 3 -quiet -out "$WORK/smoke.dpsa"

echo "== start dpsapi on :$PORT"
"$WORK/dpsapi" -data "$WORK/smoke.dpsa" -addr "127.0.0.1:$PORT" -quiet &
SRV_PID=$!

BASE="http://127.0.0.1:$PORT"
i=0
until curl -sf "$BASE/v1/stats" >"$WORK/stats.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "api_smoke: server never became ready" >&2
        exit 1
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "api_smoke: server died" >&2; exit 1; }
    sleep 0.2
done
echo "-- /v1/stats: $(cat "$WORK/stats.json")"

# Pull a known-good domain, provider, and day out of the stats body.
# (Single-level JSON; sed keeps the script dependency-free.)
DOMAIN="$(sed -n 's/.*"example_domain":"\([^"]*\)".*/\1/p' "$WORK/stats.json")"
PROVIDER="$(sed -n 's/.*"providers":\["\([^"]*\)".*/\1/p' "$WORK/stats.json")"
DAY="$(sed -n 's/.*"first_day":"\([^"]*\)".*/\1/p' "$WORK/stats.json")"
[ -n "$DOMAIN" ] || { echo "api_smoke: no example_domain in stats (no detections?)" >&2; exit 1; }
[ -n "$PROVIDER" ] || { echo "api_smoke: no providers in stats" >&2; exit 1; }
[ -n "$DAY" ] || { echo "api_smoke: no first_day in stats" >&2; exit 1; }
# URL-encode spaces in provider names ("F5 Networks", "Level 3").
PROVIDER_ENC="$(printf '%s' "$PROVIDER" | sed 's/ /%20/g')"

echo "== exercise routes (domain=$DOMAIN provider=$PROVIDER day=$DAY)"
curl -sf "$BASE/v1/domain/$DOMAIN" >"$WORK/domain.json"
grep -q '"providers"' "$WORK/domain.json" || { echo "api_smoke: bad domain body" >&2; exit 1; }
curl -sf "$BASE/v1/provider/$PROVIDER_ENC/series" >"$WORK/series.json"
grep -q '"raw"' "$WORK/series.json" || { echo "api_smoke: bad series body" >&2; exit 1; }
curl -sf "$BASE/v1/day/$DAY" >"$WORK/day.json"
grep -q '"domains_measured"' "$WORK/day.json" || { echo "api_smoke: bad day body" >&2; exit 1; }

echo "== error paths"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/domain/never-seen.example")" = "404" ] ||
    { echo "api_smoke: expected 404 for unknown domain" >&2; exit 1; }
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/day/not-a-date")" = "400" ] ||
    { echo "api_smoke: expected 400 for bad date" >&2; exit 1; }

echo "== cache hit on repeat request"
curl -sf "$BASE/v1/domain/$DOMAIN" >/dev/null
HITS="$(curl -sf "$BASE/metrics" | sed -n 's/^api_cache_hits_total \([0-9.]*\)$/\1/p')"
case "$HITS" in
'' | 0) echo "api_smoke: api_cache_hits_total = '$HITS', want >= 1" >&2; exit 1 ;;
esac
echo "-- api_cache_hits_total = $HITS"

echo "== query observatory debug endpoints"
curl -sf "$BASE/debug/slo" >"$WORK/slo.json"
grep -q '"objectives"' "$WORK/slo.json" || { echo "api_smoke: /debug/slo missing objectives" >&2; exit 1; }
grep -q '"burn_rate"' "$WORK/slo.json" || { echo "api_smoke: /debug/slo missing burn rates" >&2; exit 1; }
curl -sf "$BASE/debug/slowlog" >"$WORK/slowlog.json"
grep -q '"route": "domain"' "$WORK/slowlog.json" ||
    { echo "api_smoke: /debug/slowlog empty for the domain route after traffic" >&2; exit 1; }
curl -sf "$BASE/debug/topk" >"$WORK/topk.json"
grep -q "\"key\": \"$DOMAIN\"" "$WORK/topk.json" ||
    { echo "api_smoke: /debug/topk missing queried domain $DOMAIN" >&2; exit 1; }
curl -sf "$BASE/v1/stats" >"$WORK/stats2.json"
grep -q '"observatory"' "$WORK/stats2.json" ||
    { echo "api_smoke: /v1/stats missing observatory digest" >&2; exit 1; }
# When SMOKE_ARTIFACTS names a directory (CI does), keep the scorecard
# so the run's SLO posture is inspectable after the fact.
if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    cp "$WORK/slo.json" "$SMOKE_ARTIFACTS/slo-scorecard.json"
    echo "-- scorecard saved to $SMOKE_ARTIFACTS/slo-scorecard.json"
fi

echo "== graceful drain on SIGTERM"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "api_smoke: server did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.2
done
STATUS=0
wait "$SRV_PID" || STATUS=$?
SRV_PID=""
[ "$STATUS" -eq 0 ] || { echo "api_smoke: server exit status $STATUS after drain" >&2; exit 1; }

echo "api_smoke: OK"
