package coord

import "dpsadopt/internal/obs"

// Coordination-plane metrics. The fencing/duplicate counters are the
// interesting ones under chaos: fenced commits prove stale workers were
// locked out, dup commits prove replayed acks were absorbed, and the
// re-lease latency histogram bounds how long an abandoned partition
// waited before another worker picked it up.
var (
	mLeases = obs.Default().Counter("coord_leases_total",
		"partition leases granted to workers")
	mCommits = obs.Default().Counter("coord_commits_total",
		"partitions durably committed (journal fsync'd before ack)")
	mDupCommits = obs.Default().Counter("coord_dup_commits_total",
		"replayed commit acks absorbed as no-ops")
	mFencedCommits = obs.Default().Counter("coord_fenced_commits_total",
		"commits rejected because the lease had been fenced off")
	mLeaseExpiries = obs.Default().Counter("coord_lease_expiries_total",
		"leases expired by the supervisor after missed heartbeats")
	mRequeues = obs.Default().Counter("coord_requeues_total",
		"partitions returned to the pending queue (expiry or worker error)")
	mFailures = obs.Default().Counter("coord_failures_total",
		"partitions failed permanently after MaxAttempts")
	mRecoveredSpools = obs.Default().Counter("coord_recovered_spools_total",
		"intact spool files adopted without re-measuring (crash-after-save recovery)")
	mRestarts = obs.Default().Counter("coord_restarts_total",
		"coordinator restarts (chaos-injected crashes after commit)")
	mJournalReplays = obs.Default().Counter("coord_journal_replays_total",
		"journal replays performed at coordinator start")
	mJournalRecords = obs.Default().Counter("coord_journal_records_replayed_total",
		"journal records applied during replay")
	mJournalTornTails = obs.Default().Counter("coord_journal_torn_tails_total",
		"torn journal tails truncated during replay")
	mReplayRequeues = obs.Default().Counter("coord_replay_requeues_total",
		"partitions found leased in the journal and requeued on replay")
	mPartitions = obs.Default().Gauge("coord_partitions",
		"partitions tracked in the coordinator ledger")
	mPending = obs.Default().Gauge("coord_pending_partitions",
		"partitions waiting to be leased")
	mWorkers = obs.Default().Gauge("coord_workers",
		"workers currently running under the coordinator")
	mReleaseLatency = obs.Default().Histogram("coord_release_latency_seconds",
		"delay between a lease expiring and the partition being re-leased", nil)
)
