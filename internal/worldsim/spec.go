// Package worldsim generates the synthetic Internet against which the
// measurement pipeline runs: TLD namespaces evolving daily, nine DPS
// providers with the exact reference identities of the paper's Table 2,
// hosting/registrar/parking third parties with the scripted diversion
// events of §4.4.1, and the BGP announcements that make prefix-to-AS
// supplementation meaningful.
//
// All magnitudes in the specifications below are at *paper scale* (the
// real Internet); Config.Scale divides them for simulation. At the default
// scale of 1000, the 1.76M-domain Wix peak becomes 1760 domains, and every
// ratio in every figure is preserved.
package worldsim

import "dpsadopt/internal/bgp"

// Profile describes how a customer domain uses its DPS — which of the
// paper's reference combinations (§3.3) it produces.
type Profile int

// Customer profiles.
const (
	// ProfileA: address records point at a DPS-assigned IP. Produces an
	// AS reference only.
	ProfileA Profile = iota
	// ProfileCNAME: www is an alias into a DPS-owned zone and the apex
	// address is a DPS cloud IP. Produces CNAME + AS references.
	ProfileCNAME
	// ProfileNSProxied: the zone is delegated to the DPS and addresses
	// route to the DPS cloud. Produces NS + AS references.
	ProfileNSProxied
	// ProfileNSOnly: the zone is delegated to the DPS (e.g. a managed-DNS
	// service) but addresses stay on the customer's own hosting. Produces
	// an NS reference only.
	ProfileNSOnly
	// ProfileBGP: records never change; the covering prefix is announced
	// by the DPS (always or during attacks). Produces an AS reference.
	ProfileBGP
)

var profileNames = [...]string{"A", "CNAME", "NS-proxied", "NS-only", "BGP"}

// String names the profile.
func (p Profile) String() string {
	if int(p) < len(profileNames) {
		return profileNames[p]
	}
	return "?"
}

// ASSpec is one autonomous system of a provider or operator.
type ASSpec struct {
	ASN  bgp.ASN
	Name string // AS-to-name registry entry; must contain the holder name
}

// ProviderSpec is the ground truth for one DPS provider: its Table 2
// identity plus the adoption-model parameters that shape Figures 3–8.
type ProviderSpec struct {
	Name string
	// ASes are the provider's autonomous systems (Table 2, column 2).
	ASes []ASSpec
	// CNAMESLDs are second-level domains appearing in customer CNAME
	// expansions (Table 2, column 3). Empty when unsupported.
	CNAMESLDs []string
	// NSSLDs are second-level domains of the provider's authoritative
	// name servers (Table 2, column 4). Empty when unsupported.
	NSSLDs []string

	// Adoption model (paper-scale counts; divided by Config.Scale).
	// Always-on direct customers at the start and end of the window, per
	// profile. Linear subscription growth in between.
	AlwaysOn []ProfileCount
	// OnDemand is the number of direct customers showing ≥3 diversion
	// peaks over the window (Fig 8 population).
	OnDemand int
	// OnDemandP80Days is the 80th percentile of peak durations (Fig 8).
	OnDemandP80Days int
	// ChurnFrac is the fraction of always-on customers that unsubscribe
	// during the window (they contribute to last-seen outflux, Fig 7).
	ChurnFrac float64
}

// ProfileCount is a start→end always-on population for one profile.
type ProfileCount struct {
	Profile    Profile
	Start, End int
}

// Provider indices, fixed by alphabetical order as in the paper's Table 2.
const (
	Akamai = iota
	CenturyLink
	CloudFlare
	DOSarrest
	F5
	Incapsula
	Level3
	Neustar
	Verisign
	NumProviders
)

// ProviderSpecs is the Table 2 ground truth plus adoption parameters.
// Counts were chosen so the smoothed quiet-day totals reproduce the
// paper's shapes: combined growth ≈1.24×, CloudFlare NS share ≈75%,
// Incapsula NS share ≈0.02%, Verisign's NS line above its AS line for the
// first eleven months, etc. EXPERIMENTS.md records measured vs paper.
var ProviderSpecs = [NumProviders]ProviderSpec{
	Akamai: {
		Name: "Akamai",
		ASes: []ASSpec{
			{20940, "AKAMAI-ASN1 - Akamai International B.V."},
			{16625, "AKAMAI-AS - Akamai Technologies, Inc."},
			// Prolexic's AS name predates the acquisition and does not
			// mention Akamai: the discovery procedure must recover it
			// from SLD co-occurrence, not from the AS-name seed (§3.3,
			// "find any ASNs we may have missed in the first step").
			{32787, "PROLEXIC-TECHNOLOGIES-DDOS - Prolexic Technologies, Inc."},
		},
		CNAMESLDs: []string{"akamaiedge.net", "edgekey.net", "edgesuite.net", "akamai.net"},
		NSSLDs:    []string{"akam.net", "akamai.net", "akamaiedge.net"},
		AlwaysOn: []ProfileCount{
			{ProfileCNAME, 550_000, 590_000},
			{ProfileNSProxied, 65_000, 70_000},
			{ProfileA, 35_000, 40_000},
		},
		OnDemand:        30_000,
		OnDemandP80Days: 10,
		ChurnFrac:       0.05,
	},
	CenturyLink: {
		Name: "CenturyLink",
		ASes: []ASSpec{
			{209, "CENTURYLINK-US-LEGACY-QWEST - CenturyLink Communications, LLC"},
			{3561, "CENTURYLINK-LEGACY-SAVVIS - CenturyLink (Savvis)"},
		},
		NSSLDs: []string{"savvis.net", "savvisdirect.net", "qwest.net", "centurytel.net", "centurylink.net"},
		AlwaysOn: []ProfileCount{
			{ProfileNSOnly, 30_000, 28_000},
			{ProfileBGP, 55_000, 35_000},
		},
		OnDemand:        15_000,
		OnDemandP80Days: 6,
		ChurnFrac:       0.15,
	},
	CloudFlare: {
		Name: "CloudFlare",
		ASes: []ASSpec{
			{13335, "CLOUDFLARENET - CloudFlare, Inc."},
		},
		CNAMESLDs: []string{"cloudflare.net"},
		NSSLDs:    []string{"cloudflare.com"},
		AlwaysOn: []ProfileCount{
			{ProfileNSProxied, 1_350_000, 2_050_000},
			{ProfileA, 360_000, 520_000},
			{ProfileCNAME, 90_000, 130_000},
		},
		OnDemand:        60_000,
		OnDemandP80Days: 31,
		ChurnFrac:       0.04,
	},
	DOSarrest: {
		Name: "DOSarrest",
		ASes: []ASSpec{
			{19324, "DOSARREST - DOSarrest Internet Security LTD"},
		},
		AlwaysOn: []ProfileCount{
			{ProfileA, 120_000, 280_000},
		},
		OnDemand:        20_000,
		OnDemandP80Days: 27,
		ChurnFrac:       0.03,
	},
	F5: {
		Name: "F5 Networks",
		ASes: []ASSpec{
			{55002, "DEFENSE-NET - F5 Networks (Defense.Net, Inc)"},
		},
		AlwaysOn: []ProfileCount{
			{ProfileA, 60_000, 70_000},
		},
		OnDemand:        10_000,
		OnDemandP80Days: 79,
		ChurnFrac:       0.05,
	},
	Incapsula: {
		Name: "Incapsula",
		ASes: []ASSpec{
			{19551, "INCAPSULA - Incapsula Inc"},
		},
		CNAMESLDs: []string{"incapdns.net"},
		NSSLDs:    []string{"incapsecuredns.net"},
		AlwaysOn: []ProfileCount{
			{ProfileCNAME, 115_000, 290_000},
			{ProfileA, 5_000, 10_000},
			{ProfileNSProxied, 30, 60}, // "only about 0.02% of domains use delegation"
		},
		OnDemand:        40_000,
		OnDemandP80Days: 11,
		ChurnFrac:       0.04,
	},
	Level3: {
		Name: "Level 3",
		ASes: []ASSpec{
			{3549, "LVLT-3549 - Level 3 Communications, Inc. (GBLX)"},
			{3356, "LEVEL3 - Level 3 Communications, Inc."},
			{11213, "LEVEL3-11213 - Level 3 Communications (DDoS Mitigation)"},
			{10753, "LVLT-10753 - Level 3 Communications, Inc."},
		},
		NSSLDs: []string{"l3.net", "level3.net"},
		AlwaysOn: []ProfileCount{
			{ProfileNSOnly, 25_000, 26_000},
			{ProfileBGP, 30_000, 36_000},
		},
		OnDemand:        12_000,
		OnDemandP80Days: 4,
		ChurnFrac:       0.06,
	},
	Neustar: {
		Name: "Neustar",
		ASes: []ASSpec{
			{7786, "NEUSTAR-AS6 - Neustar, Inc. (SiteProtect)"},
			{12008, "NEUSTAR-AS1 - Neustar, Inc. (UltraDNS)"},
			{19905, "NEUSTAR-AS3 - Neustar, Inc."},
		},
		CNAMESLDs: []string{"ultradns.net"},
		NSSLDs:    []string{"ultradns.com", "ultradns.biz"},
		AlwaysOn: []ProfileCount{
			{ProfileCNAME, 40_000, 44_000},
			{ProfileNSOnly, 50_000, 52_000},
			{ProfileBGP, 30_000, 40_000},
		},
		OnDemand:        80_000,
		OnDemandP80Days: 4, // hybrid always-on: traffic not continuously diverted
		ChurnFrac:       0.05,
	},
	Verisign: {
		Name: "Verisign",
		ASes: []ASSpec{
			{26415, "VERISIGN-INC - VeriSign Infrastructure & Operations"},
			{30060, "VERISIGN-ILG1 - VeriSign Global Registry Services"},
		},
		NSSLDs: []string{"verisigndns.com"},
		AlwaysOn: []ProfileCount{
			// Managed DNS (delegation without diversion) exceeds the
			// diverting population during the first eleven months.
			{ProfileNSOnly, 300_000, 330_000},
			{ProfileBGP, 150_000, 380_000},
		},
		OnDemand:        25_000,
		OnDemandP80Days: 16,
		ChurnFrac:       0.05,
	},
}

// SupportsCNAME reports whether the provider offers CNAME redirection.
func (s *ProviderSpec) SupportsCNAME() bool { return len(s.CNAMESLDs) > 0 }

// SupportsNS reports whether the provider offers zone delegation.
func (s *ProviderSpec) SupportsNS() bool { return len(s.NSSLDs) > 0 }
