package api

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dpsadopt/internal/store"
)

// TestNewIndexReaderParity: the index built out-of-core through a
// streaming Reader is indistinguishable from the one built over a fully
// loaded store — same internals, same public views.
func TestNewIndexReaderParity(t *testing.T) {
	s, refs := fixtureStore(t)
	want := NewIndex(s, refs)

	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := NewIndexReader(r, refs)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, want, got)
}

// TestNewIndexReaderDegraded: a dataset with one unreadable partition
// builds degraded, not dead — NewIndexReader reports the skipped
// partition via *IndexBuildError and the index still serves every
// readable day.
func TestNewIndexReaderDegraded(t *testing.T) {
	s, refs := fixtureStore(t)
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	dir, err := store.Directory(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := dir[1]
	off, length := victim.Extent()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+length/2] ^= 0xA5
	bad := filepath.Join(t.TempDir(), "bad.dpsa")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := store.Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idx, err := NewIndexReader(r, refs)
	var ibe *IndexBuildError
	if !errors.As(err, &ibe) {
		t.Fatalf("err = %v, want *IndexBuildError", err)
	}
	if len(ibe.Failed) != 1 || ibe.Failed[0].Source != victim.Source || ibe.Failed[0].Day != victim.Day {
		t.Fatalf("Failed = %+v, want the corrupted partition %s/%s", ibe.Failed, victim.Source, victim.Day)
	}
	if idx == nil {
		t.Fatal("degraded build returned nil index")
	}
	if idx.partitions != len(dir)-1 {
		t.Fatalf("partitions = %d, want %d", idx.partitions, len(dir)-1)
	}
	// The readable days still answer: compare against an index built on
	// the intact days only.
	days := idx.Days()
	if len(days) == 0 {
		t.Fatal("degraded index serves no days")
	}
	for _, d := range days {
		if d == victim.Day {
			continue // day survives only if another source covers it
		}
		if _, ok := idx.Day(d); !ok {
			t.Fatalf("readable day %s missing from degraded index", d)
		}
	}
}
