package api

import (
	"sync"
	"time"
)

// tokenBucket is the first admission layer: a classic leaky bucket
// refilled at rate tokens/second up to burst. Allow is O(1) under one
// mutex; a request that finds the bucket empty is rejected immediately
// with 429 rather than queued — shedding at the cheapest possible point,
// before any index or cache work.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
