// Command dpsmeasure runs the active DNS measurement pipeline by itself —
// the paper's Figure 1 system — and reports what it collected, without
// the downstream analysis. It demonstrates both fidelity modes: the
// default in-process derivation and, with -mode wire, full resolution of
// every query through authoritative servers over the in-memory network.
//
// Usage:
//
//	dpsmeasure [-scale 100000] [-days 3] [-mode direct|wire] [-workers N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale   = flag.Int("scale", 100_000, "world scale divisor")
		days    = flag.Int("days", 3, "days to measure")
		mode    = flag.String("mode", "direct", "direct or wire")
		workers = flag.Int("workers", 4, "measurement workers")
		verbose = flag.Bool("v", false, "print sample rows")
		out     = flag.String("out", "", "write the dataset to this .dpsa file")
	)
	flag.Parse()

	cfg := measure.Config{Workers: *workers}
	switch *mode {
	case "direct":
		cfg.Mode = measure.ModeDirect
	case "wire":
		cfg.Mode = measure.ModeWire
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	w, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("world: %s\n", w.Stats())

	s := store.New()
	p := measure.New(w, s, cfg)
	start := time.Now()
	for d := 0; d < *days; d++ {
		day := w.Cfg.Window.Start + simtime.Day(d)
		t0 := time.Now()
		if err := p.RunDay(day); err != nil {
			fatal(err)
		}
		fmt.Printf("day %s measured in %s\n", day, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("total: %s, %d wire queries sent\n", time.Since(start).Round(time.Millisecond), p.QueriesSent())

	fmt.Printf("\n%-8s %6s %10s %12s %12s\n", "source", "days", "#SLDs", "#DPs", "size")
	for _, src := range s.Sources() {
		st := s.SourceStats(src)
		fmt.Printf("%-8s %6d %10d %12d %11dB\n", src, st.Days, st.UniqueSLDs, st.DataPoints, st.CompressedBytes)
	}

	if *out != "" {
		if err := s.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("dataset written to %s\n", *out)
	}

	if *verbose {
		day := w.Cfg.Window.Start
		fmt.Printf("\nsample rows (com, %s):\n", day)
		n := 0
		s.ForEachRow("com", day, func(r store.Row) {
			if n >= 12 {
				return
			}
			n++
			if r.Str != "" {
				fmt.Printf("  %-20s %-10s %s\n", r.Domain, r.Kind, r.Str)
			} else {
				fmt.Printf("  %-20s %-10s %-15s AS%v\n", r.Domain, r.Kind, r.Addr, r.ASNs)
			}
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsmeasure:", err)
	os.Exit(1)
}
