package core

import (
	"fmt"
	"net/netip"
	"sort"

	"dpsadopt/internal/bgp"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// This file implements the reference-discovery procedure of §3.3:
//
//	"We take the ASNs of a DPS as starting point [from AS-to-name data].
//	 Then we find all the domain names that reference these ASNs and
//	 analyze frequently occurring SLDs in CNAME and NS records. The SLDs
//	 obtained in this manner are used to find any ASNs we may have missed
//	 in the first step, or to remove ASNs that do not belong to the
//	 mitigation infrastructure of a DPS."
//
// Where the authors applied judgment (pruning third-party SLDs such as
// registrars' name-server domains), this implementation applies two
// automatic filters: a *specificity* filter (most domains bearing the SLD
// must route to the provider) and an *active probe* (the SLD's own apex
// must be hosted in the provider's address space — how a managed-DNS
// service like verisigndns.com identifies itself even though its
// customers' addresses stay elsewhere).

// Prober resolves the apex address of a candidate SLD (an active
// measurement outside the daily pipeline).
type Prober func(sld string) (netip.Addr, bool)

// DiscoveryConfig tunes the §3.3 procedure.
type DiscoveryConfig struct {
	// MinSupport is the minimum number of provider-routed domains that
	// must bear an SLD before it is considered (default 3).
	MinSupport int
	// MinSpecificity is the minimum fraction of all domains bearing the
	// SLD that must route to the provider (default 0.9) for the SLD to
	// qualify without a probe.
	MinSpecificity float64
	// MinASCohesion is the minimum fraction of a candidate missed ASN's
	// domains that must bear a qualified SLD (default 0.8).
	MinASCohesion float64
	// MinASSupport is the minimum number of domains at a candidate
	// missed ASN (default 3).
	MinASSupport int
}

func (c *DiscoveryConfig) defaults() {
	if c.MinSupport == 0 {
		c.MinSupport = 3
	}
	if c.MinSpecificity == 0 {
		c.MinSpecificity = 0.9
	}
	if c.MinASCohesion == 0 {
		c.MinASCohesion = 0.8
	}
	if c.MinASSupport == 0 {
		c.MinASSupport = 3
	}
}

// domainAgg aggregates one domain's references for a day.
type domainAgg struct {
	asns   map[uint32]bool
	cnames map[string]bool // SLDs
	nss    map[string]bool // SLDs
}

// Discover reconstructs one provider's reference row from a day of
// measurements. sources are the store partitions to scan (typically the
// gTLDs); table is the day's pfx2as snapshot for probe classification.
func Discover(s *store.Store, sources []string, day simtime.Day, reg *bgp.Registry, providerName string, table pfx2as.Table, probe Prober, cfg DiscoveryConfig) (ProviderRefs, error) {
	cfg.defaults()
	out := ProviderRefs{Name: providerName}

	// Step 1: seed ASNs from AS-to-name data.
	seeds := make(map[uint32]bool)
	for _, asn := range reg.FindByName(providerName) {
		seeds[uint32(asn)] = true
	}
	if len(seeds) == 0 {
		return out, fmt.Errorf("core: no ASes named %q in registry", providerName)
	}

	// One pass: aggregate per-domain references across sources.
	domains := make(map[string]*domainAgg)
	for _, src := range sources {
		s.ForEachRow(src, day, func(r store.Row) {
			agg := domains[r.Domain]
			if agg == nil {
				agg = &domainAgg{asns: map[uint32]bool{}, cnames: map[string]bool{}, nss: map[string]bool{}}
				domains[r.Domain] = agg
			}
			switch r.Kind {
			case store.KindApexA, store.KindApexAAAA, store.KindWWWA, store.KindWWWAAAA:
				for _, a := range r.ASNs {
					agg.asns[a] = true
				}
			case store.KindWWWCNAME:
				agg.cnames[SLD(r.Str)] = true
			case store.KindNS:
				agg.nss[SLD(r.Str)] = true
			}
		})
	}

	// Step 2: count SLD support among seed-referencing domains, and total
	// bearers for specificity.
	type counts struct{ support, total int }
	cnameCounts := map[string]*counts{}
	nsCounts := map[string]*counts{}
	bump := func(m map[string]*counts, sld string, ref bool) {
		c := m[sld]
		if c == nil {
			c = &counts{}
			m[sld] = c
		}
		c.total++
		if ref {
			c.support++
		}
	}
	for _, agg := range domains {
		ref := false
		for a := range agg.asns {
			if seeds[a] {
				ref = true
				break
			}
		}
		for sld := range agg.cnames {
			bump(cnameCounts, sld, ref)
		}
		for sld := range agg.nss {
			bump(nsCounts, sld, ref)
		}
	}

	// Step 3: qualify SLDs by specificity or probe. The probe path makes
	// no demand on seed-AS support: an NS-only managed-DNS service's
	// customers never route to the provider, yet the service SLD itself
	// is hosted there.
	qualify := func(m map[string]*counts) []string {
		var out []string
		for sld, c := range m {
			if c.total < cfg.MinSupport {
				continue
			}
			if c.support >= cfg.MinSupport && float64(c.support)/float64(c.total) >= cfg.MinSpecificity {
				out = append(out, sld)
				continue
			}
			if probe != nil {
				if addr, ok := probe(sld); ok {
					if origins, ok := table.Lookup(addr); ok {
						for _, o := range origins {
							if seeds[o] {
								out = append(out, sld)
								break
							}
						}
					}
				}
			}
		}
		sort.Strings(out)
		return out
	}
	out.CNAMESLDs = qualify(cnameCounts)
	out.NSSLDs = qualify(nsCounts)

	qualified := map[string]bool{}
	for _, sld := range out.CNAMESLDs {
		qualified["c:"+sld] = true
	}
	for _, sld := range out.NSSLDs {
		qualified["n:"+sld] = true
	}

	// Step 4a: find missed ASNs — origin ASes whose domain population
	// overwhelmingly bears the provider's qualified SLDs.
	perASN := map[uint32]*counts{}
	for _, agg := range domains {
		bears := false
		for sld := range agg.cnames {
			if qualified["c:"+sld] {
				bears = true
			}
		}
		for sld := range agg.nss {
			if qualified["n:"+sld] {
				bears = true
			}
		}
		for a := range agg.asns {
			c := perASN[a]
			if c == nil {
				c = &counts{}
				perASN[a] = c
			}
			c.total++
			if bears {
				c.support++
			}
		}
	}
	for a, c := range perASN {
		if seeds[a] || c.total < cfg.MinASSupport {
			continue
		}
		if float64(c.support)/float64(c.total) >= cfg.MinASCohesion {
			seeds[a] = true
		}
	}

	// Step 4b: prune seed ASNs that no measured domain references and
	// that host none of the qualified SLDs — ASes that match the holder
	// name but are not mitigation infrastructure.
	probeOrigins := map[uint32]bool{}
	if probe != nil {
		for _, sld := range append(append([]string(nil), out.CNAMESLDs...), out.NSSLDs...) {
			if addr, ok := probe(sld); ok {
				if origins, ok := table.Lookup(addr); ok {
					for _, o := range origins {
						probeOrigins[o] = true
					}
				}
			}
		}
	}
	for a := range seeds {
		c := perASN[a]
		if (c == nil || c.total == 0) && !probeOrigins[a] {
			delete(seeds, a)
		}
	}

	for a := range seeds {
		out.ASNs = append(out.ASNs, a)
	}
	out.normalize()
	return out, nil
}

// DiscoverAll runs Discover for a list of provider names and assembles a
// References table.
func DiscoverAll(s *store.Store, sources []string, day simtime.Day, reg *bgp.Registry, names []string, table pfx2as.Table, probe Prober, cfg DiscoveryConfig) (*References, error) {
	rows := make([]ProviderRefs, 0, len(names))
	for _, name := range names {
		row, err := Discover(s, sources, day, reg, name, table, probe, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return NewReferences(rows)
}
