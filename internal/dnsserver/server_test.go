package dnsserver

import (
	"net/netip"
	"testing"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

func testZone() *dnszone.Zone {
	z := dnszone.MustNew("examp.le")
	z.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeSOA, TTL: 3600, Data: dnswire.SOA{
		MName: "ns.registr.ar", RName: "hostmaster.examp.le", Serial: 1,
		Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeNS, TTL: 3600, Data: dnswire.NS{Host: "ns.registr.ar"}})
	z.MustAdd(dnswire.RR{Name: "www.examp.le", Type: dnswire.TypeA, TTL: 300, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.0.1")}})
	return z
}

func TestHandlePositive(t *testing.T) {
	s := New()
	s.AddZone(testZone())
	q := dnswire.NewQuery(1, "www.examp.le", dnswire.TypeA)
	r := s.Handle(q)
	if r.Flags.RCode != dnswire.RCodeNoError || !r.Flags.Authoritative || !r.Flags.Response {
		t.Fatalf("bad response: %+v", r.Flags)
	}
	if len(r.Answers) != 1 || r.Answers[0].Data.String() != "10.0.0.1" {
		t.Errorf("answers = %v", r.Answers)
	}
	if r.ID != 1 {
		t.Errorf("ID = %d", r.ID)
	}
	if s.Queries() != 1 {
		t.Errorf("Queries = %d", s.Queries())
	}
}

func TestHandleRefusesForeign(t *testing.T) {
	s := New()
	s.AddZone(testZone())
	r := s.Handle(dnswire.NewQuery(2, "other.test", dnswire.TypeA))
	if r.Flags.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", r.Flags.RCode)
	}
}

func TestHandleMalformed(t *testing.T) {
	s := New()
	s.AddZone(testZone())
	// A "query" that is itself a response.
	q := dnswire.NewQuery(3, "www.examp.le", dnswire.TypeA)
	q.Flags.Response = true
	if r := s.Handle(q); r.Flags.RCode != dnswire.RCodeFormErr {
		t.Errorf("response-as-query rcode = %v", r.Flags.RCode)
	}
	// No questions.
	if r := s.Handle(&dnswire.Message{ID: 4}); r.Flags.RCode != dnswire.RCodeFormErr {
		t.Errorf("no-question rcode = %v", r.Flags.RCode)
	}
	// Unsupported opcode.
	q2 := dnswire.NewQuery(5, "www.examp.le", dnswire.TypeA)
	q2.Flags.OpCode = dnswire.OpStatus
	if r := s.Handle(q2); r.Flags.RCode != dnswire.RCodeNotImp {
		t.Errorf("status opcode rcode = %v", r.Flags.RCode)
	}
}

func TestLongestSuffixZoneSelection(t *testing.T) {
	s := New()
	parent := dnszone.MustNew("le")
	parent.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.elsewhere.test"}})
	s.AddZone(parent)
	s.AddZone(testZone())
	r := s.Handle(dnswire.NewQuery(6, "www.examp.le", dnswire.TypeA))
	if !r.Flags.Authoritative || len(r.Answers) != 1 {
		t.Errorf("expected child-zone authoritative answer, got %+v", r)
	}
	// A name under "le" but not under the "examp.le" cut is answered by
	// the parent zone: an authoritative NXDOMAIN.
	r = s.Handle(dnswire.NewQuery(7, "www.examp2.le", dnswire.TypeA))
	if !r.Flags.Authoritative || r.Flags.RCode != dnswire.RCodeNXDomain {
		t.Errorf("parent zone answer: AA=%v rcode=%v", r.Flags.Authoritative, r.Flags.RCode)
	}
	// A name under the cut gets a referral (not authoritative) when asked
	// of the parent... but this server also carries the child, so the
	// child answers. Remove the child to see the referral.
	s.RemoveZone("examp.le")
	r = s.Handle(dnswire.NewQuery(8, "www.examp.le", dnswire.TypeA))
	if r.Flags.Authoritative || len(r.Authority) != 1 || r.Authority[0].Type != dnswire.TypeNS {
		t.Errorf("expected referral from parent, got %+v", r)
	}
}

func TestZoneManagement(t *testing.T) {
	s := New()
	z := testZone()
	s.AddZone(z)
	if got, ok := s.Zone("EXAMP.LE."); !ok || got != z {
		t.Error("Zone lookup failed")
	}
	if s.ZoneCount() != 1 {
		t.Errorf("ZoneCount = %d", s.ZoneCount())
	}
	s.RemoveZone("examp.le")
	if s.ZoneCount() != 0 {
		t.Error("RemoveZone failed")
	}
	r := s.Handle(dnswire.NewQuery(8, "www.examp.le", dnswire.TypeA))
	if r.Flags.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode after removal = %v", r.Flags.RCode)
	}
}

func TestTruncation(t *testing.T) {
	s := New()
	z := dnszone.MustNew("big.test")
	// 60 A records: ~60*16 bytes of answer, beyond 512.
	for i := 0; i < 60; i++ {
		z.MustAdd(dnswire.RR{Name: "big.test", Type: dnswire.TypeA, TTL: 1,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i % 256)})}})
	}
	s.AddZone(z)
	q := dnswire.NewQuery(9, "big.test", dnswire.TypeA)
	resp := s.Handle(q)
	wire, err := packWithLimit(resp, maxPayload(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > dnswire.MaxUDPPayload {
		t.Fatalf("wire = %d bytes", len(wire))
	}
	m, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Flags.Truncated || len(m.Answers) != 0 {
		t.Errorf("expected truncated empty response, got TC=%v answers=%d", m.Flags.Truncated, len(m.Answers))
	}
	// With EDNS0 advertising 4096, the full response fits.
	q.Extra = append(q.Extra, dnswire.RR{Name: ".", Type: dnswire.TypeOPT, Class: dnswire.Class(4096), Data: dnswire.OPT{}})
	wire, err = packWithLimit(resp, maxPayload(q))
	if err != nil {
		t.Fatal(err)
	}
	m, err = dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flags.Truncated || len(m.Answers) != 60 {
		t.Errorf("EDNS response TC=%v answers=%d", m.Flags.Truncated, len(m.Answers))
	}
}

func exchange(t *testing.T, net transport.Network, client netip.Addr, server netip.AddrPort, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	c, err := net.Dial(client)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTo(wire, server); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, transport.MTU)
	n, _, err := c.ReadFrom(buf, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServeOverMemNetwork(t *testing.T) {
	net := transport.NewMem(1)
	s := New()
	s.AddZone(testZone())
	run, err := Start(s, net, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	resp := exchange(t, net, netip.MustParseAddr("10.9.0.1"), netip.MustParseAddrPort("10.0.0.1:53"), dnswire.NewQuery(11, "www.examp.le", dnswire.TypeA))
	if len(resp.Answers) != 1 || resp.Answers[0].Data.String() != "10.0.0.1" {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestServeOverUDP(t *testing.T) {
	var net transport.UDP
	s := New()
	s.AddZone(testZone())
	run, err := Start(s, net, "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	defer run.Stop()
	addr := run.conn.LocalAddr()
	resp := exchange(t, net, netip.MustParseAddr("127.0.0.1"), addr, dnswire.NewQuery(12, "www.examp.le", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestServeIgnoresGarbage(t *testing.T) {
	net := transport.NewMem(1)
	s := New()
	s.AddZone(testZone())
	run, err := Start(s, net, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	c, _ := net.Dial(netip.MustParseAddr("10.9.0.1"))
	defer c.Close()
	// Garbage first; the server must survive and answer the next query.
	_ = c.WriteTo([]byte{1, 2, 3}, netip.MustParseAddrPort("10.0.0.1:53"))
	resp := exchange(t, net, netip.MustParseAddr("10.9.0.2"), netip.MustParseAddrPort("10.0.0.1:53"), dnswire.NewQuery(13, "examp.le", dnswire.TypeSOA))
	if resp.Flags.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", resp.Flags.RCode)
	}
}

func TestParseListenAddr(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"10.0.0.1", "10.0.0.1:53", false},
		{"10.0.0.1:5353", "10.0.0.1:5353", false},
		{"127.0.0.1:0", "127.0.0.1:0", false},
		{"nonsense", "", true},
	}
	for _, c := range cases {
		got, err := parseListenAddr(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseListenAddr(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || got.String() != c.want {
			t.Errorf("parseListenAddr(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestServeConcurrent(t *testing.T) {
	net := transport.NewMem(21)
	s := New()
	s.AddZone(testZone())
	s.SetConcurrency(8)
	run, err := Start(s, net, "10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	done := make(chan bool, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			for j := 0; j < 30; j++ {
				resp := exchange(t, net, netip.AddrFrom4([4]byte{10, 9, 1, byte(i)}), netip.MustParseAddrPort("10.0.0.9:53"), dnswire.NewQuery(uint16(i*100+j), "www.examp.le", dnswire.TypeA))
				if len(resp.Answers) != 1 {
					done <- false
					return
				}
			}
			done <- true
		}(i)
	}
	for i := 0; i < 16; i++ {
		if !<-done {
			t.Fatal("concurrent exchange failed")
		}
	}
	if s.Queries() != 16*30 {
		t.Errorf("Queries = %d", s.Queries())
	}
}
