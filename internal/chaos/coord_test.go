package chaos

import (
	"sort"
	"testing"
)

func TestScenarioNamesSorted(t *testing.T) {
	names := ScenarioNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ScenarioNames() not sorted: %v", names)
	}
	// The coordination-plane scenarios are registered.
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"worker-crash", "worker-stall", "dup-commit", "coord-restart", "torn-write", "coord-havoc"} {
		if !have[want] {
			t.Errorf("scenario %q not registered", want)
		}
		cfg, err := Scenario(want)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.CoordActive() {
			t.Errorf("scenario %q has no coordination faults", want)
		}
	}
}

func TestCoordFaultsNilSafe(t *testing.T) {
	if f := NewCoordFaults(Config{Loss: 0.5}, 1); f != nil {
		t.Error("network-only config produced a coord injector")
	}
	var f *CoordFaults
	if f.CrashBeforeSave("com", 0, 0) || f.CrashAfterSave("com", 0, 0) ||
		f.WorkerStall("com", 0, 0) || f.DupCommit("com", 0, 0) ||
		f.CoordRestart("com", 0, 0) {
		t.Error("nil injector made a fault decision")
	}
	if _, torn := f.TornWrite("com", 0); torn {
		t.Error("nil injector tore a write")
	}
}

func TestCoordFaultsDeterministic(t *testing.T) {
	cfg, err := Scenario("coord-havoc")
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		source  string
		day     int64
		attempt int
	}
	sample := func(seed uint64) map[key][5]bool {
		f := NewCoordFaults(cfg, seed)
		out := map[key][5]bool{}
		for _, src := range []string{"com", "net", "nl"} {
			for day := int64(0); day < 20; day++ {
				for attempt := 0; attempt < 3; attempt++ {
					out[key{src, day, attempt}] = [5]bool{
						f.CrashBeforeSave(src, day, attempt),
						f.CrashAfterSave(src, day, attempt),
						f.WorkerStall(src, day, attempt),
						f.DupCommit(src, day, attempt),
						f.CoordRestart(src, day, attempt),
					}
				}
			}
		}
		return out
	}
	a, b, c := sample(7), sample(7), sample(8)
	anyFault, differ := false, false
	for k, va := range a {
		if va != b[k] {
			t.Fatalf("%+v: decision differs between identically-seeded injectors", k)
		}
		if va != c[k] {
			differ = true
		}
		for _, bit := range va {
			anyFault = anyFault || bit
		}
	}
	if !anyFault {
		t.Error("coord-havoc injected no faults across 180 work items")
	}
	if !differ {
		t.Error("seeds 7 and 8 produced identical fault schedules")
	}
	// Decisions vary with the attempt number, so a retried partition is
	// not doomed to fail forever.
	varies := false
	for _, src := range []string{"com", "net", "nl"} {
		for day := int64(0); day < 20; day++ {
			if a[key{src, day, 0}] != a[key{src, day, 1}] {
				varies = true
			}
		}
	}
	if !varies {
		t.Error("fault decisions never vary with attempt number")
	}
}

func TestTornWriteFraction(t *testing.T) {
	cfg, err := Scenario("torn-write")
	if err != nil {
		t.Fatal(err)
	}
	f := NewCoordFaults(cfg, 3)
	torn, whole := 0, 0
	for day := int64(0); day < 100; day++ {
		frac, ok := f.TornWrite("com", day)
		if !ok {
			whole++
			continue
		}
		torn++
		if frac <= 0 || frac >= 1 {
			t.Fatalf("day %d: torn fraction %v outside (0,1)", day, frac)
		}
		// Same decision on re-ask: torn-at-rest damage is a property of
		// the partition, not of when it is inspected.
		frac2, ok2 := f.TornWrite("com", day)
		if !ok2 || frac2 != frac {
			t.Fatalf("day %d: torn decision not stable (%v/%v vs %v/%v)", day, frac, ok, frac2, ok2)
		}
	}
	if torn == 0 || whole == 0 {
		t.Fatalf("torn-write at 0.5 produced torn=%d whole=%d over 100 days", torn, whole)
	}
}
