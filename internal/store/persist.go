package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dpsadopt/internal/simtime"
)

// On-disk format: a flate-free framed binary archive (the columns are
// already dictionary-encoded; callers can compress the file externally).
//
//	magic "DPSA" | version u32
//	dict: count u32, then per string: len u16 + bytes
//	partitions: count u32, then per partition:
//	  source len u16 + bytes | day i64 | rows u32 | v6 count u32 |
//	  asnVals count u32 | columns in order (domains, kinds, addrs,
//	  addrs6, strs, asnOff, asnVals)
//
// All integers are little-endian.

const (
	persistMagic   = "DPSA"
	persistVersion = 2
)

// Save writes the store to path atomically (via a temp file + rename).
func (s *Store) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := s.encode(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(bufio.NewReaderSize(f, 1<<20))
}

func (s *Store) encode(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := writeU32(w, persistVersion); err != nil {
		return err
	}
	// Dictionary.
	s.dict.mu.RLock()
	strs := s.dict.strs
	if err := writeU32(w, uint32(len(strs))); err != nil {
		s.dict.mu.RUnlock()
		return err
	}
	for _, str := range strs {
		if err := writeStr(w, str); err != nil {
			s.dict.mu.RUnlock()
			return err
		}
	}
	s.dict.mu.RUnlock()
	// Partitions.
	nParts := 0
	for _, days := range s.blocks {
		nParts += len(days)
	}
	if err := writeU32(w, uint32(nParts)); err != nil {
		return err
	}
	for source, days := range s.blocks {
		for day, b := range days {
			if err := writeStr(w, source); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, int64(day)); err != nil {
				return err
			}
			if err := writeU32(w, uint32(b.rows())); err != nil {
				return err
			}
			if err := writeU32(w, uint32(len(b.addrs6))); err != nil {
				return err
			}
			if err := writeU32(w, uint32(len(b.asnVals))); err != nil {
				return err
			}
			if err := writeU32s(w, b.domains); err != nil {
				return err
			}
			kinds := make([]byte, len(b.kinds))
			for i, k := range b.kinds {
				kinds[i] = byte(k)
			}
			if _, err := w.Write(kinds); err != nil {
				return err
			}
			if err := writeU32s(w, b.addrs); err != nil {
				return err
			}
			for _, a := range b.addrs6 {
				if _, err := w.Write(a[:]); err != nil {
					return err
				}
			}
			if err := writeU32s(w, b.strs); err != nil {
				return err
			}
			if err := writeU32s(w, b.asnOff); err != nil {
				return err
			}
			if err := writeU32s(w, b.asnVals); err != nil {
				return err
			}
		}
	}
	return nil
}

// maxPersistCount bounds per-section element counts on load.
const maxPersistCount = 1 << 30

func decode(r io.Reader) (*Store, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != persistMagic {
		return nil, fmt.Errorf("store: not a dataset file")
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	s := New()
	nStrs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nStrs > maxPersistCount {
		return nil, fmt.Errorf("store: dictionary too large")
	}
	for i := uint32(0); i < nStrs; i++ {
		str, err := readStr(r)
		if err != nil {
			return nil, err
		}
		s.dict.ID(str)
	}
	nParts, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nParts; i++ {
		source, err := readStr(r)
		if err != nil {
			return nil, err
		}
		var day int64
		if err := binary.Read(r, binary.LittleEndian, &day); err != nil {
			return nil, err
		}
		rows, err := readU32(r)
		if err != nil {
			return nil, err
		}
		nV6, err := readU32(r)
		if err != nil {
			return nil, err
		}
		nASN, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if rows > maxPersistCount || nV6 > rows || nASN > maxPersistCount {
			return nil, fmt.Errorf("store: corrupt partition header")
		}
		b := &dayBlock{}
		if b.domains, err = readU32s(r, rows); err != nil {
			return nil, err
		}
		kinds := make([]byte, rows)
		if _, err := io.ReadFull(r, kinds); err != nil {
			return nil, err
		}
		b.kinds = make([]Kind, rows)
		for j, k := range kinds {
			if Kind(k) >= numKinds {
				return nil, fmt.Errorf("store: bad kind %d", k)
			}
			b.kinds[j] = Kind(k)
		}
		if b.addrs, err = readU32s(r, rows); err != nil {
			return nil, err
		}
		b.addrs6 = make([][16]byte, nV6)
		for j := range b.addrs6 {
			if _, err := io.ReadFull(r, b.addrs6[j][:]); err != nil {
				return nil, err
			}
		}
		if b.strs, err = readU32s(r, rows); err != nil {
			return nil, err
		}
		if b.asnOff, err = readU32s(r, rows); err != nil {
			return nil, err
		}
		if b.asnVals, err = readU32s(r, nASN); err != nil {
			return nil, err
		}
		if err := validateBlock(b, s.dict.Len()); err != nil {
			return nil, err
		}
		days := s.blocks[source]
		if days == nil {
			days = make(map[simtime.Day]*dayBlock)
			s.blocks[source] = days
		}
		days[simtime.Day(day)] = b
		mPartitions.Inc()
		mResidentRows.Add(float64(b.rows()))
	}
	return s, nil
}

// validateBlock checks cross-column invariants of a loaded partition so a
// corrupt file cannot cause out-of-range panics later.
func validateBlock(b *dayBlock, dictLen int) error {
	for i := range b.domains {
		if int(b.domains[i]) >= dictLen {
			return fmt.Errorf("store: domain id out of range")
		}
		if b.strs[i] != ^uint32(0) && int(b.strs[i]) >= dictLen {
			return fmt.Errorf("store: string id out of range")
		}
		if isV6Kind(b.kinds[i]) && int(b.addrs[i]) >= len(b.addrs6) {
			return fmt.Errorf("store: v6 index out of range")
		}
		if int(b.asnOff[i]) > len(b.asnVals) {
			return fmt.Errorf("store: ASN offset out of range")
		}
		if i > 0 && b.asnOff[i] < b.asnOff[i-1] {
			return fmt.Errorf("store: ASN offsets not monotone")
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	_, err := w.Write(buf)
	return err
}

func readU32s(r io.Reader, n uint32) ([]uint32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

func writeStr(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("store: string too long")
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(b[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
