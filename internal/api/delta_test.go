package api

import (
	"reflect"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// synthPart builds one (source, day) partition as a self-contained
// store with its own dictionary — exactly the shape of a coordinator
// spool — with deterministic detections that exercise method changes,
// gaps, multi-source overlap, and unprotected domains:
//
//   - alpha.com: provider0 CNAME every day except day 2 (a gap), NS
//     added from day 3 on (a method change mid-history).
//   - beta.com: provider0 AS every day except day 2, constant methods —
//     with day 2 unindexed its run packs straight across the hole.
//   - gamma.com: CloudFlare NS from day 1 on.
//   - shared.com: provider0 CNAME in "com", CloudFlare NS in "net" —
//     same-day merges union across sources.
//   - only-<src>.com: detected only in that source.
//   - quiet.com: measured, never protected.
func synthPart(t *testing.T, refs *core.References, src string, day simtime.Day) *store.Store {
	t.Helper()
	p0 := refs.Providers[0]
	cf, ok := refs.ProviderIndex("CloudFlare")
	if !ok {
		t.Fatal("no CloudFlare in ground truth")
	}
	pcf := refs.Providers[cf]

	s := store.New()
	w := s.NewWriter(src, day)
	if day != 2 {
		w.AddStr("alpha.com", store.KindWWWCNAME, "www.alpha.com."+p0.CNAMESLDs[0])
	}
	if day >= 3 {
		w.AddStr("alpha.com", store.KindNS, "ns1."+p0.NSSLDs[0])
	}
	if day != 2 {
		w.AddAddr("beta.com", store.KindApexA, mustAddr("192.0.2.7"), []uint32{p0.ASNs[0]})
	}
	if day >= 1 {
		w.AddStr("gamma.com", store.KindNS, "ada.ns."+pcf.NSSLDs[0])
	}
	if src == "com" {
		w.AddStr("shared.com", store.KindWWWCNAME, "www.shared.com."+p0.CNAMESLDs[0])
	} else {
		w.AddStr("shared.com", store.KindNS, "ben.ns."+pcf.NSSLDs[0])
	}
	w.AddStr("only-"+src+".com", store.KindWWWCNAME, "cdn."+p0.CNAMESLDs[0])
	w.AddAddr("quiet.com", store.KindApexA, mustAddr("198.51.100.9"), nil)
	w.Commit()
	return s
}

type partKey struct {
	src string
	day simtime.Day
}

// buildBoth materializes the same partitions two ways: folded into one
// store (the full-rebuild reference) and as per-partition spools with
// their detections (the delta path).
func buildBoth(t *testing.T, refs *core.References, parts []partKey) (*store.Store, []PartitionUpdate) {
	t.Helper()
	all := store.New()
	ups := make([]PartitionUpdate, 0, len(parts))
	for _, pk := range parts {
		spool := synthPart(t, refs, pk.src, pk.day)
		all.Absorb(spool)
		ups = append(ups, PartitionUpdate{
			Source: pk.src,
			Day:    pk.day,
			Det:    core.DetectDay(spool, pk.src, pk.day, refs),
		})
	}
	return all, ups
}

// assertIndexEqual demands the applied index is indistinguishable from
// a full rebuild: identical internal columns and interval packing, and
// identical public views.
func assertIndexEqual(t *testing.T, want, got *Index) {
	t.Helper()
	if !reflect.DeepEqual(want.days, got.days) {
		t.Fatalf("days: want %v got %v", want.days, got.days)
	}
	if !reflect.DeepEqual(want.sources, got.sources) {
		t.Fatalf("sources: want %v got %v", want.sources, got.sources)
	}
	if !reflect.DeepEqual(want.measured, got.measured) {
		t.Fatalf("measured: want %v got %v", want.measured, got.measured)
	}
	if !reflect.DeepEqual(want.anyUse, got.anyUse) {
		t.Fatalf("anyUse: want %v got %v", want.anyUse, got.anyUse)
	}
	if !reflect.DeepEqual(want.series, got.series) {
		t.Fatalf("series: want %v got %v", want.series, got.series)
	}
	if !reflect.DeepEqual(want.smoothed, got.smoothed) {
		t.Fatalf("smoothed differ")
	}
	if want.partitions != got.partitions {
		t.Fatalf("partitions: want %d got %d", want.partitions, got.partitions)
	}
	if len(want.domains) != len(got.domains) {
		t.Fatalf("domain count: want %d got %d", len(want.domains), len(got.domains))
	}
	for dom, wivs := range want.domains {
		if givs, ok := got.domains[dom]; !ok || !reflect.DeepEqual(wivs, givs) {
			t.Fatalf("domain %s intervals: want %+v got %+v", dom, wivs, got.domains[dom])
		}
	}
	// Public views agree too (belt and braces over the internals).
	for _, dom := range want.Domains() {
		wh, _ := want.Domain(dom)
		gh, ok := got.Domain(dom)
		if !ok || !reflect.DeepEqual(wh, gh) {
			t.Fatalf("Domain(%s): want %+v got %+v", dom, wh, gh)
		}
	}
	for i := range want.refs.Providers {
		ws, _ := want.Series(want.refs.Providers[i].Name)
		gs, _ := got.Series(want.refs.Providers[i].Name)
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("Series(%s): want %+v got %+v", want.refs.Providers[i].Name, ws, gs)
		}
	}
	for _, d := range want.Days() {
		wd, _ := want.Day(d)
		gd, ok := got.Day(d)
		if !ok || !reflect.DeepEqual(wd, gd) {
			t.Fatalf("Day(%v): want %+v got %+v", d, wd, gd)
		}
	}
}

// applyCase builds a base index from base partitions, applies the rest
// as one delta batch, and checks the result against a full rebuild over
// everything.
func applyCase(t *testing.T, base, added []partKey) (*Index, *Index, *Delta) {
	t.Helper()
	refs := core.MustGroundTruth()
	baseStore, _ := buildBoth(t, refs, base)
	fullStore, _ := buildBoth(t, refs, append(append([]partKey{}, base...), added...))
	_, ups := buildBoth(t, refs, added)

	old := NewIndex(baseStore, refs)
	got, delta := old.Apply(ups)
	want := NewIndex(fullStore, refs)
	assertIndexEqual(t, want, got)
	if delta == nil || delta.Epoch != old.Epoch()+1 || got.Epoch() != delta.Epoch {
		t.Fatalf("epoch: delta %+v, old %d, got %d", delta, old.Epoch(), got.Epoch())
	}
	if delta.Applied != len(added) {
		t.Fatalf("delta.Applied = %d, want %d", delta.Applied, len(added))
	}
	return old, got, delta
}

func TestApplyPureAppend(t *testing.T) {
	base := []partKey{{"com", 0}, {"com", 1}, {"com", 2}}
	old, _, delta := applyCase(t, base, []partKey{{"com", 3}})
	if !reflect.DeepEqual(delta.Days, []simtime.Day{3}) || !reflect.DeepEqual(delta.NewDays, []simtime.Day{3}) {
		t.Fatalf("delta days = %+v", delta)
	}
	// alpha gains its NS method on day 3, beta misses odd days.
	for _, dom := range []string{"alpha.com", "gamma.com", "shared.com", "only-com.com"} {
		if !delta.Domains[dom] {
			t.Errorf("delta misses %s", dom)
		}
	}
	if delta.Domains["quiet.com"] {
		t.Error("unprotected domain marked touched")
	}
	// The old index is untouched: day 3 must still be unknown to it.
	if _, ok := old.Day(3); ok {
		t.Fatal("Apply mutated the receiver")
	}
}

func TestApplyNewSourceExistingDay(t *testing.T) {
	base := []partKey{{"com", 0}, {"com", 1}}
	_, _, delta := applyCase(t, base, []partKey{{"net", 1}})
	if len(delta.NewDays) != 0 || !reflect.DeepEqual(delta.Days, []simtime.Day{1}) {
		t.Fatalf("delta days = %+v", delta)
	}
}

func TestApplyBackfillDay(t *testing.T) {
	// beta.com is detected on days 0, 1 and 3 with constant methods
	// (day 2 is its gap): with days {0,1,3} indexed those pack into one
	// run [0..3], and backfilling day 2 must split it even though day 2
	// brings beta no detection at all.
	base := []partKey{{"com", 0}, {"com", 1}, {"com", 3}}
	_, got, delta := applyCase(t, base, []partKey{{"com", 2}})
	if !delta.Domains["beta.com"] {
		t.Fatal("spanning domain not repacked")
	}
	h, _ := got.Domain("beta.com")
	// Detected on 0, 1, 3 but not 2.
	if h.Days != 3 {
		t.Fatalf("beta days = %d, want 3 (%+v)", h.Days, h)
	}
	if n := len(h.Providers[0].Intervals); n != 2 {
		t.Fatalf("beta intervals = %d, want 2 (%+v)", n, h)
	}
}

func TestApplyMixedBatch(t *testing.T) {
	base := []partKey{{"com", 0}, {"com", 1}, {"com", 4}}
	applyCase(t, base, []partKey{
		{"com", 2}, // backfill
		{"net", 1}, // new source, existing day
		{"com", 5}, // pure append
		{"net", 5}, // second source on the appended day
	})
}

func TestApplyFromEmptyIndexConverges(t *testing.T) {
	// The -follow cold start: an empty index catches up partition by
	// partition and must land exactly where a batch build would.
	refs := core.MustGroundTruth()
	parts := []partKey{{"com", 0}, {"net", 0}, {"com", 1}, {"com", 2}, {"net", 2}}
	fullStore, ups := buildBoth(t, refs, parts)

	idx := NewIndex(store.New(), refs)
	for i, u := range ups {
		next, delta := idx.Apply([]PartitionUpdate{u})
		if delta.Epoch != uint64(i+1) {
			t.Fatalf("epoch after %d applies = %d", i+1, delta.Epoch)
		}
		idx = next
	}
	assertIndexEqual(t, NewIndex(fullStore, refs), idx)
}

func TestApplyEmptyBatch(t *testing.T) {
	refs := core.MustGroundTruth()
	baseStore, _ := buildBoth(t, refs, []partKey{{"com", 0}})
	idx := NewIndex(baseStore, refs)
	next, delta := idx.Apply(nil)
	if next != idx || delta != nil {
		t.Fatalf("empty batch: next=%p idx=%p delta=%+v", next, idx, delta)
	}
}
