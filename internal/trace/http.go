package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// traceSummary is the list view of one trace on /debug/traces.
type traceSummary struct {
	ID       string    `json:"id"`
	Root     string    `json:"root"`
	Start    time.Time `json:"start"`
	Duration string    `json:"duration"`
	Spans    int       `json:"spans"`
}

// spanView is the detail view of one span.
type spanView struct {
	Span     string `json:"span"`
	Parent   string `json:"parent,omitempty"`
	Name     string `json:"name"`
	Start    string `json:"start"`
	Duration string `json:"duration"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Handler serves the tracer's ring of recent traces as JSON:
//
//	GET /debug/traces           summaries, newest first (?n= limits)
//	GET /debug/traces?id=<hex>  every span of one trace, start order
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if t == nil {
			http.Error(w, `{"error":"tracing disabled"}`, http.StatusNotFound)
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			serveTrace(w, enc, t, id)
			return
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		recent := t.Ring().Recent(n)
		out := make([]traceSummary, 0, len(recent))
		for _, tr := range recent {
			root := tr.Root()
			out = append(out, traceSummary{
				ID:       tr.ID.String(),
				Root:     root.Name,
				Start:    root.Start,
				Duration: root.Duration.Round(time.Microsecond).String(),
				Spans:    len(tr.Spans),
			})
		}
		_ = enc.Encode(out)
	})
}

func serveTrace(w http.ResponseWriter, enc *json.Encoder, t *Tracer, id string) {
	want, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		http.Error(w, `{"error":"bad trace id"}`, http.StatusBadRequest)
		return
	}
	for _, tr := range t.Ring().Recent(0) {
		if tr.ID != TraceID(want) {
			continue
		}
		spans := append([]SpanRecord(nil), tr.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		out := make([]spanView, 0, len(spans))
		for _, sp := range spans {
			v := spanView{
				Span:     sp.ID.String(),
				Name:     sp.Name,
				Start:    sp.Start.Format(time.RFC3339Nano),
				Duration: sp.Duration.Round(time.Microsecond).String(),
				Attrs:    sp.Attrs,
			}
			if sp.Parent != 0 {
				v.Parent = sp.Parent.String()
			}
			out = append(out, v)
		}
		_ = enc.Encode(struct {
			ID    string     `json:"id"`
			Spans []spanView `json:"spans"`
		}{ID: tr.ID.String(), Spans: out})
		return
	}
	http.Error(w, `{"error":"trace not in ring"}`, http.StatusNotFound)
}
