// Command benchdiff compares two results/BENCH_*.json files and reports
// per-metric deltas, flagging regressions beyond a threshold. It is the
// comparison half of the perf-trajectory loop: the root benchmarks write
// machine-readable numbers, benchdiff tells you whether a change moved
// them.
//
// Both files are flattened to dotted numeric paths (nested objects and
// arrays included, so the detect sweep's row-per-cell schema works), and
// each shared path is classified by name: throughput-like metrics
// (qps_*, *_per_sec, speedup, utilization, efficiency) regress when they
// drop; cost-like metrics (ns/op, allocs, seconds, overhead, slowdown)
// regress when they rise. Paths present in only one file are listed but
// never flagged. The exit status is advisory (0) unless -strict is set,
// so a noisy laptop run cannot fail CI; regressions print as WARN lines
// either way.
//
// Usage:
//
//	benchdiff [-threshold 20] [-strict] [-all] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 20, "regression percentage that triggers a WARN")
		strict    = flag.Bool("strict", false, "exit 1 when any metric regresses past -threshold")
		all       = flag.Bool("all", false, "print every shared metric, not just changed ones")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-strict] [-all] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, err := loadFlat(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newM, err := loadFlat(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	paths := make([]string, 0, len(oldM))
	for p := range oldM {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	regressions := 0
	for _, p := range paths {
		ov := oldM[p]
		nv, ok := newM[p]
		if !ok {
			fmt.Printf("GONE  %-44s old=%s\n", p, num(ov))
			continue
		}
		delta := pctChange(ov, nv)
		dir := direction(p)
		regressed := false
		switch dir {
		case lowerBetter:
			regressed = delta > *threshold
		case higherBetter:
			regressed = delta < -*threshold
		}
		switch {
		case regressed:
			regressions++
			fmt.Printf("WARN  %-44s old=%-14s new=%-14s %+.1f%% (%s regressed > %.0f%%)\n",
				p, num(ov), num(nv), delta, dirName(dir), *threshold)
		case *all || math.Abs(delta) > 0.5:
			tag := "  ok"
			if dir == neutral {
				tag = "info"
			}
			fmt.Printf("%s  %-44s old=%-14s new=%-14s %+.1f%%\n", tag, p, num(ov), num(nv), delta)
		}
	}
	newOnly := make([]string, 0)
	for p := range newM {
		if _, ok := oldM[p]; !ok {
			newOnly = append(newOnly, p)
		}
	}
	sort.Strings(newOnly)
	for _, p := range newOnly {
		fmt.Printf("NEW   %-44s new=%s\n", p, num(newM[p]))
	}

	if regressions > 0 {
		fmt.Printf("benchdiff: %d metric(s) regressed more than %.0f%%\n", regressions, *threshold)
		if *strict {
			os.Exit(1)
		}
	} else {
		fmt.Println("benchdiff: no regressions past threshold")
	}
}

// loadFlat reads a JSON document and flattens every numeric leaf to a
// dotted path ("rates.loss_1pct.queries", "sweep.2.rows_per_sec").
func loadFlat(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			flatten(join(prefix, k), child, out)
		}
	case []any:
		for i, child := range t {
			flatten(join(prefix, fmt.Sprintf("%d", i)), child, out)
		}
	case float64:
		out[prefix] = t
	case bool:
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

type metricDir int

const (
	neutral metricDir = iota
	lowerBetter
	higherBetter
)

// direction classifies a metric path by its name. Lower-is-better
// substrings are checked first so "overhead_pct" and "sec_per_resolve"
// are not misread as throughput; genuinely directionless metrics
// (counts, iterations, configuration echoes) stay neutral and are never
// flagged.
func direction(path string) metricDir {
	p := strings.ToLower(path)
	if strings.HasSuffix(p, "_s") || strings.HasSuffix(p, "_ms") {
		return lowerBetter // unit-suffixed latencies: query_p99_s, timeout_ms
	}
	for _, s := range []string{
		"ns_op", "ns_per_op", "allocs", "overhead", "slowdown",
		"seconds", "sec_per", "pause",
	} {
		if strings.Contains(p, s) {
			return lowerBetter
		}
	}
	for _, s := range []string{
		"qps", "per_sec", "speedup", "utilization", "efficiency",
	} {
		if strings.Contains(p, s) {
			return higherBetter
		}
	}
	return neutral
}

func dirName(d metricDir) string {
	switch d {
	case lowerBetter:
		return "cost"
	case higherBetter:
		return "throughput"
	}
	return "neutral"
}

func pctChange(before, after float64) float64 {
	if before == 0 {
		if after == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (after - before) / math.Abs(before) * 100
}

func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6g", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
