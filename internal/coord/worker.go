package coord

// The worker loop: acquire a lease, heartbeat it, measure the
// partition, save the spool durably, commit. Chaos hooks model every
// crash window of that sequence — a worker that "crashes" simply
// abandons the partition without telling the coordinator (its lease
// expires and the partition is re-leased), exactly like a killed
// process whose replacement picks up the queue.

import (
	"context"
	"fmt"
	"os"
	"time"

	"dpsadopt/internal/obs"
	"dpsadopt/internal/store"
)

func (c *Coordinator) runWorker(ctx context.Context, id int) {
	log := obs.Logger().With("worker", id)
	for {
		p, leaseID, attempt, ok := c.acquire(ctx)
		if !ok {
			return
		}
		c.runPartition(ctx, log, p, leaseID, attempt)
	}
}

func (c *Coordinator) runPartition(ctx context.Context, log interface {
	Debug(string, ...any)
	Warn(string, ...any)
}, p Partition, leaseID uint64, attempt int) {
	faults := c.cfg.Faults
	day := int64(p.Day)
	fatt := attempt - 1 // fault decisions are keyed 0-based

	// Chaos: the worker freezes past the lease TTL before doing any
	// work. No heartbeats flow, the supervisor re-leases the partition,
	// and when this worker wakes up its commit must be fenced off.
	stalled := faults.WorkerStall(p.Source, day, fatt)
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	var hbDone chan struct{}
	if stalled {
		select {
		case <-time.After(c.cfg.LeaseTTL + 4*c.cfg.HeartbeatEvery):
		case <-ctx.Done():
			return
		}
	} else {
		// Heartbeat until the partition is resolved; a fenced heartbeat
		// cancels the in-flight work.
		hbDone = make(chan struct{})
		go func() {
			tick := time.NewTicker(c.cfg.HeartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-workCtx.Done():
					close(hbDone)
					return
				case <-tick.C:
					if err := c.Heartbeat(p, leaseID); err != nil {
						cancelWork()
						close(hbDone)
						return
					}
				}
			}
		}()
		defer func() {
			cancelWork()
			<-hbDone
		}()
	}

	spool := c.SpoolPath(p)

	// Crash-after-save recovery: a previous attempt may have died
	// between saving its spool and acking the commit. If an intact
	// spool is already on disk, adopt it instead of re-measuring.
	if attempt > 1 {
		if _, err := os.Stat(spool); err == nil {
			if store.Verify(spool) == nil {
				mRecoveredSpools.Inc()
				log.Debug("recovered intact spool", "partition", p.String(), "attempt", attempt)
				if err := c.Commit(p, leaseID, spool); err != nil {
					log.Warn("recovered-spool commit rejected", "partition", p.String(), "err", err)
				}
				return
			}
			// Damaged leftover: remeasure over it (Save is atomic, the
			// old bytes are replaced wholesale).
		}
	}

	st, err := c.cfg.Work(workCtx, p, attempt)
	if err != nil {
		if workCtx.Err() != nil {
			// Fenced or cancelled mid-measure: the partition has
			// already moved on; nothing to report.
			return
		}
		c.Release(p, leaseID, fmt.Errorf("measure: %w", err))
		return
	}

	// Chaos: crash before the spool hits disk — all work lost.
	if faults.CrashBeforeSave(p.Source, day, fatt) {
		log.Debug("chaos: worker crash before save", "partition", p.String(), "attempt", attempt)
		return
	}

	if err := st.Save(spool); err != nil {
		c.Release(p, leaseID, fmt.Errorf("save spool: %w", err))
		return
	}

	// Chaos: crash after the durable save but before the commit ack —
	// the exactly-once window. The lease expires; the next attempt
	// finds the intact spool and commits it without re-measuring.
	if faults.CrashAfterSave(p.Source, day, fatt) {
		log.Debug("chaos: worker crash after save", "partition", p.String(), "attempt", attempt)
		return
	}

	if err := c.Commit(p, leaseID, spool); err != nil {
		// ErrLeaseLost: a stale commit was correctly fenced; the
		// partition belongs to someone else now. ErrRestart: the
		// coordinator is gone. Either way, abandon.
		log.Debug("commit rejected", "partition", p.String(), "attempt", attempt, "err", err)
		return
	}

	// Chaos: replay the commit ack — a retried RPC. Must be a no-op.
	if faults.DupCommit(p.Source, day, fatt) {
		if err := c.Commit(p, leaseID, spool); err != nil {
			log.Warn("duplicate commit not absorbed", "partition", p.String(), "err", err)
		}
	}
}
