// Command dpsdata inspects measurement dataset files written by
// cmd/dpsmeasure -out (the .dpsa binary archive): per-source statistics,
// row dumps, per-day DPS detection counts, and grep-style filtering.
//
// Usage:
//
//	dpsdata -data FILE                  # Table 1-style statistics
//	dpsdata -data FILE -info            # directory-only dataset summary
//	dpsdata -data FILE -dump com/0      # dump a partition (source/dayIndex)
//	dpsdata -data FILE -detect          # per-day per-provider counts
//	dpsdata -data FILE -grep cloudflare # rows whose strings match
//	dpsdata -data FILE -domain x.com    # one domain's full detection history
//	dpsdata -ledger DIR                 # a dpscoord directory's partition ledger
//
// -info, -dump, -detect, and -domain run out-of-core on the streaming
// store.Reader: -info answers from the partition directory without
// decoding anything, -dump preads and decodes exactly the requested day
// block, -detect streams partitions through detection one at a time,
// and -domain builds the internal/api read index via the streaming
// path — none of them holds the whole archive resident. -grep and the
// default statistics table still need every row and load fully.
// -ledger replays a coordination journal read-only (safe while a
// coordinator is live) and verifies each committed spool's CRCs, so
// operators see at a glance which partitions are committed, retrying,
// failed — and whether their spools are intact.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dpsadopt/internal/api"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

func main() {
	var (
		data   = flag.String("data", "", "dataset file (.dpsa)")
		info   = flag.Bool("info", false, "print a directory-only dataset summary (no partition decoded)")
		dump   = flag.String("dump", "", "partition to dump as source/day (day = index into the source's day list)")
		detect = flag.Bool("detect", false, "run Table 2 detection per stored day")
		grep   = flag.String("grep", "", "print rows whose NS/CNAME strings contain this substring")
		domain = flag.String("domain", "", "print this domain's full detection history")
		limit  = flag.Int("limit", 20, "max rows for -dump/-grep")
		ledger = flag.String("ledger", "", "print a dpscoord coordination directory's partition ledger")
	)
	flag.Parse()
	if *ledger != "" {
		if err := printLedger(*ledger); err != nil {
			fatal(err)
		}
		return
	}
	if *data == "" {
		fmt.Fprintln(os.Stderr, "dpsdata: -data FILE required")
		os.Exit(2)
	}

	// Streaming modes: everything that doesn't need every row resident
	// goes through the out-of-core Reader.
	if *info || *dump != "" || *detect || *domain != "" {
		r, err := store.Open(*data)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		switch {
		case *info:
			printInfo(r)
		case *domain != "":
			printDomainHistory(r, strings.ToLower(strings.TrimSuffix(*domain, ".")))
		case *dump != "":
			err = dumpPartition(r, *dump, *limit)
		case *detect:
			err = detectStreaming(r)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	s, err := store.Load(*data)
	var partial *store.PartialLoadError
	if errors.As(err, &partial) {
		fmt.Fprintf(os.Stderr, "dpsdata: warning: %v; continuing with salvaged partitions\n", partial)
	} else if err != nil {
		fatal(err)
	}

	switch {
	case *grep != "":
		n := 0
		for _, src := range s.Sources() {
			for _, day := range s.Days(src) {
				s.ForEachRow(src, day, func(r store.Row) {
					if n >= *limit || !strings.Contains(r.Str, *grep) {
						return
					}
					n++
					fmt.Printf("%s %s: ", src, day)
					printRow(r)
				})
			}
		}
	default:
		fmt.Printf("%-8s %6s %10s %12s %14s\n", "source", "days", "#SLDs", "#DPs", "size(flate)")
		for _, src := range s.Sources() {
			st := s.SourceStats(src)
			fmt.Printf("%-8s %6d %10d %12d %13dB\n", src, st.Days, st.UniqueSLDs, st.DataPoints, st.CompressedBytes)
		}
	}
}

// printLedger replays a coordination journal read-only and renders each
// partition's state, attempts, and — for committed partitions — whether
// its spool still passes CRC verification. Unlike the coordinator's own
// replay this never truncates a torn tail, so it is safe against a
// directory a live coordinator is writing.
func printLedger(dir string) error {
	recs, err := coord.NewJournalReader(dir).Next()
	if err != nil {
		return err
	}
	if recs == nil {
		return fmt.Errorf("no journal under %s", dir)
	}
	rows := coord.ReplayLedger(recs)
	fmt.Printf("%-10s %-12s %-10s %8s  %s\n", "source", "day", "state", "attempts", "spool")
	var committed, intact int
	for _, r := range rows {
		note := "-"
		if r.State == coord.StateCommitted {
			committed++
			// The journal may record a path relative to the coordinator's
			// working directory; prefer the layout-derived location.
			spool := filepath.Join(dir, "spool", r.Source+"."+r.Day+".dpsa")
			if _, serr := os.Stat(spool); serr != nil && r.Spool != "" {
				spool = r.Spool
			}
			if verr := store.Verify(spool); verr != nil {
				note = fmt.Sprintf("DAMAGED %s: %v", spool, verr)
			} else {
				intact++
				note = "ok " + spool
			}
		} else if r.Err != "" {
			note = r.Err
		}
		fmt.Printf("%-10s %-12s %-10s %8d  %s\n", r.Source, r.Day, r.State, r.Attempts, note)
	}
	fmt.Printf("%d partitions: %d committed (%d spools intact)\n", len(rows), committed, intact)
	if intact < committed {
		return fmt.Errorf("%d committed spool(s) fail verification", committed-intact)
	}
	return nil
}

// printInfo renders the Reader's directory-only summary: everything an
// operator wants to know about a dataset file before paying for a
// single partition decode.
func printInfo(r *store.Reader) {
	in := r.Info()
	fmt.Printf("%-16s %s\n", "path", in.Path)
	fmt.Printf("%-16s v%d\n", "format", in.Version)
	fmt.Printf("%-16s %d bytes (%d in partitions)\n", "size", in.FileBytes, in.PartitionBytes)
	fmt.Printf("%-16s %v\n", "sources", in.Sources)
	if in.Partitions > 0 {
		fmt.Printf("%-16s %s .. %s\n", "days", in.FirstDay, in.LastDay)
	}
	fmt.Printf("%-16s %d (%d rows)\n", "partitions", in.Partitions, in.Rows)
	crc := "none (pre-v4 format)"
	if in.CRCPartitions {
		crc = "per-partition + dictionary + directory (v4)"
	}
	fmt.Printf("%-16s %s\n", "crc coverage", crc)
	dir := "yes (streaming reads)"
	if !in.Directory {
		dir = "no (v2 legacy: sequential full decode)"
	}
	fmt.Printf("%-16s %s\n", "directory", dir)
}

// dumpPartition resolves source/dayIndex against the Reader's directory
// and decodes exactly that partition.
func dumpPartition(r *store.Reader, spec string, limit int) error {
	source, day, err := resolvePartition(r, spec)
	if err != nil {
		return err
	}
	dict, err := r.SharedDict()
	if err != nil {
		return err
	}
	b, release, err := r.AcquireBatch(source, day)
	if err != nil {
		return err
	}
	defer release()
	n := b.Rows()
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		printRow(b.Row(i, dict))
	}
	return nil
}

// detectStreaming runs Table 2 detection one partition at a time:
// acquire → detect → release, never holding more than one decoded day.
func detectStreaming(r *store.Reader) error {
	refs := core.MustGroundTruth()
	for _, pt := range core.ReaderPartitions(r) {
		det, err := core.DetectPartition(r, pt.Source, pt.Day, refs)
		if err != nil {
			return err
		}
		fmt.Printf("%s %s: measured=%d any=%d", pt.Source, pt.Day, det.DomainsMeasured, det.CountAny())
		for p := range refs.Providers {
			if c := det.Count(p); c > 0 {
				fmt.Printf(" %s=%d", refs.Providers[p].Name, c)
			}
		}
		fmt.Println()
	}
	return nil
}

// resolvePartition parses source/dayIndex against the Reader's
// directory listing.
func resolvePartition(r *store.Reader, spec string) (string, simtime.Day, error) {
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("dpsdata: -dump wants source/dayIndex")
	}
	var days []simtime.Day
	for _, ent := range r.Partitions() {
		if ent.Source == parts[0] {
			days = append(days, ent.Day)
		}
	}
	if len(days) == 0 {
		return "", 0, fmt.Errorf("dpsdata: no data for source %q", parts[0])
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil || idx < 0 || idx >= len(days) {
		return "", 0, fmt.Errorf("dpsdata: day index out of range [0,%d)", len(days))
	}
	return parts[0], days[idx], nil
}

// printDomainHistory renders one domain's detection record from the
// internal/api read index, built out-of-core via the streaming Reader —
// the structured replacement for grepping rows.
func printDomainHistory(r *store.Reader, name string) {
	idx, err := api.NewIndexReader(r, core.MustGroundTruth())
	var ibe *api.IndexBuildError
	if errors.As(err, &ibe) {
		fmt.Fprintf(os.Stderr, "dpsdata: warning: %v; continuing with readable partitions\n", ibe)
	} else if err != nil {
		fatal(err)
	}
	h, ok := idx.Domain(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dpsdata: no DPS references recorded for %q\n", name)
		os.Exit(1)
	}
	fmt.Printf("%s: detected on %d day(s), %s .. %s\n", h.Domain, h.Days, h.FirstSeen, h.LastSeen)
	for _, p := range h.Providers {
		fmt.Printf("  %-12s via %-11s %s .. %s (%d days, peak run %d)\n",
			p.Provider, p.Methods, p.FirstSeen, p.LastSeen, p.Days, p.PeakRun)
		for _, iv := range p.Intervals {
			fmt.Printf("    %s .. %s  %-11s %d day(s)\n", iv.From, iv.To, iv.Methods, iv.Days)
		}
	}
}

func printRow(r store.Row) {
	if r.Str != "" {
		fmt.Printf("%-24s %-10s %s\n", r.Domain, r.Kind, r.Str)
	} else {
		fmt.Printf("%-24s %-10s %-18v AS%v\n", r.Domain, r.Kind, r.Addr, r.ASNs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsdata:", err)
	os.Exit(1)
}
