package core

import (
	"context"
	"net/netip"

	"dpsadopt/internal/bgp"
	"reflect"
	"strings"
	"testing"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func TestSLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"foo.incapdns.net", "incapdns.net"},
		{"a.b.edgekey.net", "edgekey.net"},
		{"kate.ns.cloudflare.com", "cloudflare.com"},
		{"example.com", "example.com"},
		{"com", "com"},
		{"www.example.co.uk", "example.co.uk"},
		{"example.co.uk", "example.co.uk"},
		{"co.uk", "co.uk"},
		{"deep.sub.domain.example.org", "example.org"},
		// Edge cases: empty input, the root, single labels, and names in
		// canonical absolute form (trailing root dot).
		{"", ""},
		{".", ""},
		{"localhost", "localhost"},
		{"com.", "com"},
		{"example.com.", "example.com"},
		{"www.example.com.", "example.com"},
		{"www.example.co.uk.", "example.co.uk"},
		{"co.uk.", "co.uk"},
		{".com", ".com"}, // degenerate empty leading label, below a TLD
	}
	for _, c := range cases {
		if got := SLD(c.in); got != c.want {
			t.Errorf("SLD(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSLDDoesNotAllocate(t *testing.T) {
	names := []string{"a.b.c.edgekey.net", "www.example.co.uk.", "example.com", "com"}
	allocs := testing.AllocsPerRun(100, func() {
		for _, n := range names {
			_ = SLD(n)
		}
	})
	if allocs != 0 {
		t.Errorf("SLD allocates %.1f times per batch, want 0", allocs)
	}
}

func TestMethodString(t *testing.T) {
	if (RefAS | RefNS).String() != "AS+NS" {
		t.Errorf("got %q", (RefAS | RefNS).String())
	}
	if Method(0).String() != "none" {
		t.Error("zero method")
	}
	if !(RefAS | RefCNAME).Has(RefAS) || (RefAS).Has(RefCNAME) {
		t.Error("Has wrong")
	}
}

func TestReferencesIndexes(t *testing.T) {
	refs := MustGroundTruth()
	if refs.NumProviders() != worldsim.NumProviders {
		t.Fatalf("providers = %d", refs.NumProviders())
	}
	if p, ok := refs.MatchASN(13335); !ok || refs.Providers[p].Name != "CloudFlare" {
		t.Error("ASN 13335 not CloudFlare")
	}
	if p, ok := refs.MatchCNAME("foo.incapdns.net"); !ok || refs.Providers[p].Name != "Incapsula" {
		t.Error("incapdns.net not Incapsula")
	}
	if p, ok := refs.MatchNS("kate.ns.cloudflare.com"); !ok || refs.Providers[p].Name != "CloudFlare" {
		t.Error("cloudflare.com NS not CloudFlare")
	}
	if _, ok := refs.MatchNS("ns1.hostco3.net"); ok {
		t.Error("hoster NS matched a provider")
	}
	if _, ok := refs.MatchASN(14618); ok {
		t.Error("AWS matched a provider")
	}
}

func TestNewReferencesRejectsCollisions(t *testing.T) {
	_, err := NewReferences([]ProviderRefs{
		{Name: "A", ASNs: []uint32{1}},
		{Name: "B", ASNs: []uint32{1}},
	})
	if err == nil {
		t.Error("duplicate ASN accepted")
	}
	_, err = NewReferences([]ProviderRefs{
		{Name: "A", NSSLDs: []string{"x.net"}},
		{Name: "B", NSSLDs: []string{"x.net"}},
	})
	if err == nil {
		t.Error("duplicate NS SLD accepted")
	}
}

// measuredWorld builds a world and measures a few days into a store.
var (
	cachedWorld *worldsim.World
	cachedStore *store.Store
)

// quietDay (2015-07-25) has no third-party episode in flight — the
// discovery procedure assumes it runs on a day without large anomalies
// (the paper's analysis separated always-on from on-demand the same way).
var quietDay = simtime.FromDate(2015, 7, 25)

// testDays: the quiet day plus the Wix March 2015 peak.
var testDays = []simtime.Day{quietDay, simtime.FromDate(2015, 3, 5)}

func measuredWorld(t testing.TB) (*worldsim.World, *store.Store) {
	t.Helper()
	if cachedWorld != nil {
		return cachedWorld, cachedStore
	}
	w, err := worldsim.New(worldsim.DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	s := store.New()
	p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	for _, d := range testDays {
		if err := p.RunDay(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	cachedWorld, cachedStore = w, s
	return w, s
}

func dayTable(t testing.TB, w *worldsim.World, day simtime.Day) pfx2as.Table {
	t.Helper()
	entries, err := pfx2as.Parse(strings.NewReader(w.RIBForDay(day).Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	return pfx2as.NewWalk(entries)
}

func TestDetectDayFindsCustomers(t *testing.T) {
	w, s := measuredWorld(t)
	refs := MustGroundTruth()
	day := quietDay
	cf, _ := refs.ProviderIndex("CloudFlare")
	det := DetectDay(s, "com", day, refs)
	if det.Count(cf) == 0 {
		t.Fatal("no CloudFlare domains detected in .com")
	}
	// Cross-check against the world's ground truth for .com.
	want := 0
	rib := w.RIBForDay(day)
	for _, d := range w.Domains {
		if d.TLD != "com" || !d.Life.Contains(day) {
			continue
		}
		st := w.StateFor(d, day)
		if !st.Exists || st.Unmeasurable {
			continue
		}
		if usesProvider(w, rib, d, day, worldsim.CloudFlare) {
			want++
		}
	}
	if det.Count(cf) != want {
		t.Errorf("CloudFlare .com count = %d, ground truth %d", det.Count(cf), want)
	}
	if det.DomainsMeasured == 0 {
		t.Error("DomainsMeasured = 0")
	}
}

// usesProvider recomputes expected detection from world state.
func usesProvider(w *worldsim.World, rib *bgp.RIB, d *worldsim.Domain, day simtime.Day, provider int) bool {
	st := w.StateFor(d, day)
	refs := MustGroundTruth()
	for _, a := range append(append([]netip.Addr{}, st.ApexA...), st.WWWA...) {
		if origins, _, ok := rib.Origins(a); ok {
			for _, o := range origins {
				if p, ok := refs.MatchASN(uint32(o)); ok && p == provider {
					return true
				}
			}
		}
	}
	if st.WWWCNAME != "" {
		if p, ok := refs.MatchCNAME(st.WWWCNAME); ok && p == provider {
			return true
		}
	}
	for _, ns := range st.NSHosts {
		if p, ok := refs.MatchNS(ns); ok && p == provider {
			return true
		}
	}
	return false
}

func TestDetectMethodCombinations(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	day := quietDay
	// CloudFlare: most customers are NS-delegated AND routed (NS+AS); the
	// NS share must be large (≈75% per §4.3).
	cf, _ := refs.ProviderIndex("CloudFlare")
	det := DetectDay(s, "com", day, refs)
	total := det.Count(cf)
	ns := det.CountMethod(cf, RefNS)
	if total == 0 {
		t.Fatal("no CloudFlare detections")
	}
	frac := float64(ns) / float64(total)
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("CloudFlare NS share = %.2f (%d/%d), want ≈0.75", frac, ns, total)
	}
	// Verisign NS-only customers: NS reference without AS reference.
	vs, _ := refs.ProviderIndex("Verisign")
	nsOnly := 0
	for _, m := range det.Uses(vs) {
		if m.Has(RefNS) && !m.Has(RefAS) {
			nsOnly++
		}
	}
	if nsOnly == 0 {
		t.Error("no Verisign NS-only (managed DNS) domains detected")
	}
}

func TestDetectWixPeak(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	inc, _ := refs.ProviderIndex("Incapsula")
	quiet := DetectDay(s, "com", quietDay, refs)
	peak := DetectDay(s, "com", simtime.FromDate(2015, 3, 5), refs)
	if peak.Count(inc) <= quiet.Count(inc)*3 {
		t.Errorf("Incapsula peak %d vs quiet %d: anomaly missing", peak.Count(inc), quiet.Count(inc))
	}
	// Wix peak domains reference Incapsula by AS only (no CNAME, no NS).
	asOnly := 0
	for _, m := range peak.Uses(inc) {
		if m == RefAS {
			asOnly++
		}
	}
	if asOnly == 0 {
		t.Error("no AS-only Incapsula references at the Wix peak")
	}
}

func TestDiscoveryRecoversTable2(t *testing.T) {
	w, s := measuredWorld(t)
	day := quietDay
	table := dayTable(t, w, day)
	probe := func(sld string) (netip.Addr, bool) { return w.ProbeApex(sld, day) }
	truth := MustGroundTruth()

	for i := range truth.Providers {
		want := truth.Providers[i]
		got, err := Discover(s, worldsim.GTLDs(), day, w.Registry, want.Name, table, probe, DiscoveryConfig{MinSupport: 1, MinASSupport: 1})
		if err != nil {
			t.Errorf("%s: %v", want.Name, err)
			continue
		}
		if !reflect.DeepEqual(got.ASNs, want.ASNs) {
			t.Errorf("%s ASNs = %v, want %v", want.Name, got.ASNs, want.ASNs)
		}
		if !reflect.DeepEqual(got.CNAMESLDs, want.CNAMESLDs) {
			t.Errorf("%s CNAME SLDs = %v, want %v", want.Name, got.CNAMESLDs, want.CNAMESLDs)
		}
		if !reflect.DeepEqual(got.NSSLDs, want.NSSLDs) {
			t.Errorf("%s NS SLDs = %v, want %v", want.Name, got.NSSLDs, want.NSSLDs)
		}
	}
}

func TestDiscoverUnknownProvider(t *testing.T) {
	w, s := measuredWorld(t)
	table := dayTable(t, w, quietDay)
	_, err := Discover(s, worldsim.GTLDs(), quietDay, w.Registry, "NoSuchProvider", table, nil, DiscoveryConfig{})
	if err == nil {
		t.Error("unknown provider accepted")
	}
}

// TestDetectDayMatchesBaseline demands the ID-native engine reproduce
// the string-keyed reference implementation exactly — same measured
// count, same any-provider count, and the same domain → methods map for
// every provider on every (source, day) partition of the measured world.
func TestDetectDayMatchesBaseline(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	checked := 0
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			id := DetectDay(s, src, day, refs)
			base := DetectDayBaseline(s, src, day, refs)
			if id.DomainsMeasured != base.DomainsMeasured {
				t.Errorf("%s %s: DomainsMeasured = %d, baseline %d",
					src, day, id.DomainsMeasured, base.DomainsMeasured)
			}
			if id.CountAny() != base.CountAny() {
				t.Errorf("%s %s: CountAny = %d, baseline %d", src, day, id.CountAny(), base.CountAny())
			}
			for p := range refs.Providers {
				got := id.Uses(p)
				want := base.Uses[p]
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s %s %s: uses diverge (got %d, want %d domains)",
						src, day, refs.Providers[p].Name, len(got), len(want))
				}
				if id.Count(p) != len(want) {
					t.Errorf("%s %s %s: Count = %d, want %d", src, day, refs.Providers[p].Name, id.Count(p), len(want))
				}
				if len(want) > 0 {
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no provider had detections; agreement proves nothing")
	}
}

// TestDomainsMeasuredInterleaved is the regression test for the
// transition-counting bug: when a domain's rows arrive through separate
// writer commits with another domain in between, its rows interleave in
// the block and run transitions overcount. The ID-set count must stay
// exact.
func TestDomainsMeasuredInterleaved(t *testing.T) {
	s := store.New()
	day := simtime.Day(3)
	w1 := s.NewWriter("com", day)
	w1.AddStr("alpha.com", store.KindNS, "ns1.hoster.net")
	w1.Commit()
	w2 := s.NewWriter("com", day)
	w2.AddStr("beta.com", store.KindNS, "ns1.hoster.net")
	w2.Commit()
	// alpha.com's remaining rows land after beta.com's: interleaved runs.
	w3 := s.NewWriter("com", day)
	w3.AddStr("alpha.com", store.KindNS, "ns2.hoster.net")
	w3.Commit()

	refs := MustGroundTruth()
	det := DetectDay(s, "com", day, refs)
	if det.DomainsMeasured != 2 {
		t.Errorf("DomainsMeasured = %d, want 2 (interleaved runs must not double-count)", det.DomainsMeasured)
	}
	// Document what the baseline approximation does on the same block:
	// three runs, so it overcounts — which is exactly why DetectDay
	// switched to the ID set.
	base := DetectDayBaseline(s, "com", day, refs)
	if base.DomainsMeasured != 3 {
		t.Errorf("baseline DomainsMeasured = %d, want 3 (run transitions)", base.DomainsMeasured)
	}
}

// TestDetectDayMergesInterleavedMethods checks that a domain whose
// references toward one provider are split across interleaved commits
// still collapses to a single entry with the union of methods.
func TestDetectDayMergesInterleavedMethods(t *testing.T) {
	s := store.New()
	day := simtime.Day(5)
	w1 := s.NewWriter("com", day)
	w1.AddStr("split.com", store.KindNS, "kate.ns.cloudflare.com")
	w1.Commit()
	w2 := s.NewWriter("com", day)
	w2.AddStr("other.com", store.KindNS, "ns9.hoster.net")
	w2.Commit()
	w3 := s.NewWriter("com", day)
	w3.AddAddr("split.com", store.KindApexA, netip.MustParseAddr("104.16.0.9"), []uint32{13335})
	w3.Commit()

	refs := MustGroundTruth()
	cf, _ := refs.ProviderIndex("CloudFlare")
	det := DetectDay(s, "com", day, refs)
	if det.Count(cf) != 1 {
		t.Fatalf("CloudFlare count = %d, want 1", det.Count(cf))
	}
	uses := det.Uses(cf)
	if m := uses["split.com"]; m != RefNS|RefAS {
		t.Errorf("split.com methods = %v, want NS+AS", m)
	}
	if det.CountAny() != 1 {
		t.Errorf("CountAny = %d, want 1", det.CountAny())
	}
}

// TestDetectRangeMatchesSequential runs the bounded worker pool over
// every partition of the measured world and demands result parity (and
// input-order results) with sequential DetectDay.
func TestDetectRangeMatchesSequential(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	parts := Partitions(s)
	if len(parts) < 2 {
		t.Fatalf("measured world has %d partitions; want several", len(parts))
	}
	for _, workers := range []int{1, 3, 16} {
		dets := DetectRange(context.Background(), s, parts, refs, workers)
		if len(dets) != len(parts) {
			t.Fatalf("workers=%d: %d results for %d partitions", workers, len(dets), len(parts))
		}
		for i, det := range dets {
			if det == nil {
				t.Fatalf("workers=%d: nil detection for %v", workers, parts[i])
			}
			if det.Source != parts[i].Source || det.Day != parts[i].Day {
				t.Fatalf("workers=%d: result %d is (%s, %s), want %v",
					workers, i, det.Source, det.Day, parts[i])
			}
			seq := DetectDay(s, parts[i].Source, parts[i].Day, refs)
			if det.DomainsMeasured != seq.DomainsMeasured || det.CountAny() != seq.CountAny() {
				t.Errorf("workers=%d %v: measured/any = %d/%d, want %d/%d", workers, parts[i],
					det.DomainsMeasured, det.CountAny(), seq.DomainsMeasured, seq.CountAny())
			}
			for p := range refs.Providers {
				if det.Count(p) != seq.Count(p) {
					t.Errorf("workers=%d %v p=%d: count %d, want %d",
						workers, parts[i], p, det.Count(p), seq.Count(p))
				}
			}
		}
	}
}

// TestDetectRangeCancelled: a pre-cancelled context yields nil slots
// rather than blocking.
func TestDetectRangeCancelled(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dets := DetectRange(ctx, s, Partitions(s), refs, 2)
	for _, det := range dets {
		if det != nil {
			t.Fatal("cancelled DetectRange still produced detections")
		}
	}
}

// TestEachUseOrdered: EachUse yields ascending domain IDs (the packed
// span invariant downstream merges rely on).
func TestEachUseOrdered(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	det := DetectDay(s, "com", quietDay, refs)
	for p := range refs.Providers {
		last := -1
		det.EachUse(p, func(id uint32, m Method) {
			if int(id) <= last {
				t.Fatalf("provider %d: EachUse out of order (%d after %d)", p, id, last)
			}
			if m == 0 {
				t.Fatalf("provider %d: empty method bits for id %d", p, id)
			}
			last = int(id)
		})
	}
}
