package core

import "dpsadopt/internal/worldsim"

// GroundTruth builds the reference table directly from the simulation's
// provider specifications — the Table 2 the discovery procedure should
// reconstruct, and the table the long-horizon experiments use for
// detection.
func GroundTruth() (*References, error) {
	rows := make([]ProviderRefs, 0, worldsim.NumProviders)
	for i := range worldsim.ProviderSpecs {
		spec := &worldsim.ProviderSpecs[i]
		row := ProviderRefs{Name: spec.Name}
		for _, as := range spec.ASes {
			row.ASNs = append(row.ASNs, uint32(as.ASN))
		}
		row.CNAMESLDs = append(row.CNAMESLDs, spec.CNAMESLDs...)
		row.NSSLDs = append(row.NSSLDs, spec.NSSLDs...)
		rows = append(rows, row)
	}
	return NewReferences(rows)
}

// MustGroundTruth panics on table construction failure (the specs are
// static, so failure is a programming error).
func MustGroundTruth() *References {
	r, err := GroundTruth()
	if err != nil {
		panic(err)
	}
	return r
}
