package dnsserver

import "dpsadopt/internal/obs"

// Process-wide authoritative-server metrics; one simulated Internet runs
// thousands of Server instances, all feeding the same series.
var (
	mQueries = obs.Default().Counter("dns_server_queries_total",
		"queries handled (including refused ones); rate() gives QPS")
	mInflight = obs.Default().Gauge("dns_server_inflight",
		"datagrams currently being decoded and answered")
	mMalformed = obs.Default().Counter("dns_server_malformed_total",
		"datagrams that failed DNS wire decoding and were dropped")
	mTruncated = obs.Default().Counter("dns_server_truncated_total",
		"responses truncated to the advertised UDP payload limit")
)
