#!/bin/sh
# Smoke test of the dpsbench scaling sweep: run a tiny 2-cell sweep on a
# small generated world, assert the result JSON is well-formed and carries
# the sweep/v2 row-per-cell schema, and check the per-cell fields the
# scaling analysis depends on are present and non-degenerate. Mirrors the
# CI `benchscale-smoke` job; run locally with `make benchscale-smoke`.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/dpsbench" ./cmd/dpsbench

echo "== tiny sweep (2 cells)"
"$WORK/dpsbench" -scale 400000 -days 2 -gomaxprocs 1 -workers 1,2 \
    -mintime 200ms -out "$WORK/bench.json" \
    -profiles "$WORK/profiles" -prof-mutex 2 -quiet

OUT="$WORK/bench.json"
[ -s "$OUT" ] || { echo "benchscale_smoke: no output written" >&2; exit 1; }

# Schema markers (grep keeps the script dependency-free — no jq/python
# in the base image; the JSON was produced by encoding/json, so field
# presence is the meaningful check).
grep -q '"schema": "sweep/v2"' "$OUT" || { echo "benchscale_smoke: missing sweep/v2 schema marker" >&2; exit 1; }
grep -q '"bench": "detect"' "$OUT" || { echo "benchscale_smoke: wrong bench name" >&2; exit 1; }

echo "== schema fields"
for field in num_cpu go_version day_engine sweep gomaxprocs workers \
    partitions_per_sec utilization scan_seconds merge_seconds \
    queue_wait_seconds barrier_seconds allocs_per_partition gc_share \
    efficiency_per_core; do
    grep -q "\"$field\"" "$OUT" || { echo "benchscale_smoke: missing field $field" >&2; exit 1; }
done

# Two sweep cells requested, two recorded.
CELLS="$(grep -c '"gomaxprocs": 1' "$OUT")"
[ "$CELLS" = "2" ] || { echo "benchscale_smoke: expected 2 sweep cells, got $CELLS" >&2; exit 1; }

# Throughput must be non-degenerate: every cell classified partitions.
if grep -q '"partitions_per_sec": 0,' "$OUT"; then
    echo "benchscale_smoke: a cell recorded zero throughput" >&2
    exit 1
fi

# The mutex profile was requested, so it must exist and be non-empty.
[ -s "$WORK/profiles/mutex.pprof" ] || { echo "benchscale_smoke: mutex.pprof missing" >&2; exit 1; }
[ -s "$WORK/profiles/cpu_g1_w1.pprof" ] || { echo "benchscale_smoke: per-cell CPU profile missing" >&2; exit 1; }

echo "-- $(grep -o '"partitions_per_sec": [0-9.]*' "$OUT" | head -2 | tr '\n' ' ')"
echo "benchscale_smoke: OK"
