// Package dnszone models authoritative DNS zone data: RRsets keyed by owner
// name and type, with RFC 1034 lookup semantics (CNAME chains, delegation
// referrals, NODATA vs NXDOMAIN) and a textual zone-file format.
//
// Zones are the unit served by internal/dnsserver and the unit generated
// per day per TLD by the world simulator. A Zone is safe for concurrent
// readers with a single writer holding its lock through the provided
// mutation methods.
package dnszone

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dpsadopt/internal/dnswire"
)

// DefaultTTL is applied by convenience constructors when the caller does
// not care about cache lifetimes (the measurement system re-queries daily).
const DefaultTTL = 3600

// maxCNAMEChain bounds in-zone CNAME chasing during a single lookup.
const maxCNAMEChain = 8

// Zone holds the authoritative data for one DNS zone.
type Zone struct {
	// Origin is the canonical apex name of the zone, e.g. "com" or
	// "examp.le".
	Origin string

	mu      sync.RWMutex
	records map[string]map[dnswire.Type][]dnswire.RR
	// cuts caches the set of delegation points (names below the apex
	// owning NS records). Maintained on mutation.
	cuts map[string]bool
}

// New creates an empty zone rooted at origin (canonicalised).
func New(origin string) (*Zone, error) {
	o, err := dnswire.CanonicalName(origin)
	if err != nil {
		return nil, fmt.Errorf("dnszone: bad origin: %w", err)
	}
	return &Zone{
		Origin:  o,
		records: make(map[string]map[dnswire.Type][]dnswire.RR),
		cuts:    make(map[string]bool),
	}, nil
}

// MustNew is New for trusted origins; it panics on error.
func MustNew(origin string) *Zone {
	z, err := New(origin)
	if err != nil {
		panic(err)
	}
	return z
}

// Add inserts a record. The owner must be at or below the zone origin.
// Duplicate records (same owner, type, and rendered RDATA) are ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	name, err := dnswire.CanonicalName(rr.Name)
	if err != nil {
		return err
	}
	if !dnswire.IsSubdomain(name, z.Origin) {
		return fmt.Errorf("dnszone: %s is out of zone %s", name, z.Origin)
	}
	rr.Name = name
	if rr.Class == 0 {
		rr.Class = dnswire.ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[name]
	if byType == nil {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.records[name] = byType
	}
	for _, have := range byType[rr.Type] {
		if have.Data.String() == rr.Data.String() {
			return nil
		}
	}
	byType[rr.Type] = append(byType[rr.Type], rr)
	if rr.Type == dnswire.TypeNS && name != z.Origin {
		z.cuts[name] = true
	}
	return nil
}

// MustAdd is Add for programmatically generated records; panics on error.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// SetRRSet replaces the whole RRset (owner, type) with the given records,
// all of which must share the owner and type.
func (z *Zone) SetRRSet(owner string, t dnswire.Type, rrs []dnswire.RR) error {
	name, err := dnswire.CanonicalName(owner)
	if err != nil {
		return err
	}
	if !dnswire.IsSubdomain(name, z.Origin) {
		return fmt.Errorf("dnszone: %s is out of zone %s", name, z.Origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.removeLocked(name, t)
	if len(rrs) == 0 {
		return nil
	}
	byType := z.records[name]
	if byType == nil {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.records[name] = byType
	}
	for _, rr := range rrs {
		rr.Name = name
		rr.Type = t
		if rr.Class == 0 {
			rr.Class = dnswire.ClassIN
		}
		byType[t] = append(byType[t], rr)
	}
	if t == dnswire.TypeNS && name != z.Origin {
		z.cuts[name] = true
	}
	return nil
}

// Remove deletes the RRset (owner, type). Removing a nonexistent set is a
// no-op.
func (z *Zone) Remove(owner string, t dnswire.Type) {
	name, err := dnswire.CanonicalName(owner)
	if err != nil {
		return
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.removeLocked(name, t)
}

func (z *Zone) removeLocked(name string, t dnswire.Type) {
	byType := z.records[name]
	if byType == nil {
		return
	}
	delete(byType, t)
	if len(byType) == 0 {
		delete(z.records, name)
	}
	if t == dnswire.TypeNS && name != z.Origin {
		delete(z.cuts, name)
	}
}

// RemoveName deletes every record owned by name.
func (z *Zone) RemoveName(owner string) {
	name, err := dnswire.CanonicalName(owner)
	if err != nil {
		return
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.records, name)
	delete(z.cuts, name)
}

// Get returns a copy of the RRset (owner, type), or nil.
func (z *Zone) Get(owner string, t dnswire.Type) []dnswire.RR {
	name, err := dnswire.CanonicalName(owner)
	if err != nil {
		return nil
	}
	z.mu.RLock()
	defer z.mu.RUnlock()
	rrs := z.records[name][t]
	if len(rrs) == 0 {
		return nil
	}
	return append([]dnswire.RR(nil), rrs...)
}

// HasName reports whether any record is owned by name.
func (z *Zone) HasName(owner string) bool {
	name, err := dnswire.CanonicalName(owner)
	if err != nil {
		return false
	}
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records[name]) > 0
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.records {
		for _, rrs := range byType {
			n += len(rrs)
		}
	}
	return n
}

// SOA returns the zone's SOA record, if present.
func (z *Zone) SOA() (dnswire.RR, bool) {
	rrs := z.Get(z.Origin, dnswire.TypeSOA)
	if len(rrs) == 0 {
		return dnswire.RR{}, false
	}
	return rrs[0], true
}

// Result is the outcome of an authoritative lookup.
type Result struct {
	RCode         dnswire.RCode
	Authoritative bool
	// Answer carries the answer-section records, including any in-zone
	// CNAME chain in chain order.
	Answer []dnswire.RR
	// Authority carries NS records (delegation or apex) or the SOA for
	// negative answers.
	Authority []dnswire.RR
	// Additional carries glue addresses for names in Authority.
	Additional []dnswire.RR
	// Delegated reports that the result is a referral below a zone cut.
	Delegated bool
}

// Lookup answers qname/qtype from the zone following RFC 1034 §4.3.2:
// referral at delegation points, CNAME chains within the zone, NODATA
// versus NXDOMAIN distinction. Out-of-zone names yield REFUSED.
func (z *Zone) Lookup(qname string, qtype dnswire.Type) Result {
	name, err := dnswire.CanonicalName(qname)
	if err != nil {
		return Result{RCode: dnswire.RCodeFormErr}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	if !dnswire.IsSubdomain(name, z.Origin) {
		return Result{RCode: dnswire.RCodeRefused}
	}

	// Check for a zone cut strictly between the apex and qname.
	if cut, ok := z.cutAboveLocked(name); ok {
		res := Result{RCode: dnswire.RCodeNoError, Delegated: true}
		res.Authority = append(res.Authority, z.records[cut][dnswire.TypeNS]...)
		res.Additional = z.glueLocked(res.Authority)
		return res
	}

	res := Result{Authoritative: true}
	cur := name
	for hop := 0; ; hop++ {
		byType := z.records[cur]
		synthesized := ""
		if byType == nil {
			// RFC 1034 §4.3.3 wildcard synthesis: the closest matching
			// "*" label below the apex covers names that do not exist,
			// provided no closer encloser exists.
			if wc, owner := z.wildcardLocked(cur); wc != nil {
				byType = wc
				synthesized = owner
			}
		}
		if byType == nil {
			if len(res.Answer) == 0 {
				res.RCode = dnswire.RCodeNXDomain
			}
			res.Authority = z.negativeAuthorityLocked()
			return res
		}
		_ = synthesized
		// CNAME takes precedence unless the query asks for the CNAME
		// itself (or ANY).
		if cn, ok := byType[dnswire.TypeCNAME]; ok && qtype != dnswire.TypeCNAME && qtype != dnswire.TypeANY {
			res.Answer = append(res.Answer, cn...)
			target := cn[0].Data.(dnswire.CNAME).Target
			if !dnswire.IsSubdomain(target, z.Origin) || hop >= maxCNAMEChain {
				// Chain leaves the zone; the resolver continues it.
				res.Authority = z.apexNSLocked()
				return res
			}
			cur = target
			continue
		}
		var rrs []dnswire.RR
		if qtype == dnswire.TypeANY {
			for _, set := range byType {
				rrs = append(rrs, set...)
			}
			sort.Slice(rrs, func(i, j int) bool { return rrs[i].Type < rrs[j].Type })
		} else {
			rrs = byType[qtype]
		}
		if len(rrs) == 0 {
			// NODATA: the name exists but not with this type.
			res.Authority = z.negativeAuthorityLocked()
			return res
		}
		if synthesized != "" {
			// Wildcard answers take the query name as owner.
			renamed := make([]dnswire.RR, len(rrs))
			for i, rr := range rrs {
				rr.Name = cur
				renamed[i] = rr
			}
			rrs = renamed
		}
		res.Answer = append(res.Answer, rrs...)
		res.Authority = z.apexNSLocked()
		res.Additional = z.glueLocked(res.Authority)
		return res
	}
}

// wildcardLocked finds the record set of the closest covering wildcard
// for a nonexistent name, per RFC 1034 §4.3.3: try "*.<ancestor>" from
// the name's parent upward, stopping at the apex; a wildcard only applies
// when the would-be closer name does not exist.
func (z *Zone) wildcardLocked(name string) (map[dnswire.Type][]dnswire.RR, string) {
	for anc := dnswire.Parent(name); dnswire.IsSubdomain(anc, z.Origin) && anc != "."; anc = dnswire.Parent(anc) {
		owner := "*." + anc
		if byType := z.records[owner]; byType != nil {
			return byType, owner
		}
		// If the ancestor itself exists, the wildcard search stops: an
		// existing closer encloser without a wildcard means NXDOMAIN.
		if len(z.records[anc]) > 0 {
			return nil, ""
		}
		if anc == z.Origin {
			break
		}
	}
	return nil, ""
}

// cutAboveLocked finds the highest delegation point strictly between the
// apex and name (inclusive of name itself only for queries below it; a
// query *at* the cut for its NS set is still a referral per RFC 1034, and
// we treat it as such).
func (z *Zone) cutAboveLocked(name string) (string, bool) {
	if len(z.cuts) == 0 || name == z.Origin {
		return "", false
	}
	// Walk ancestors from just below the apex down to name.
	labels := dnswire.Labels(name)
	originLabels := dnswire.CountLabels(z.Origin)
	for i := len(labels) - originLabels - 1; i >= 0; i-- {
		candidate := strings.Join(labels[i:], ".")
		if z.cuts[candidate] {
			return candidate, true
		}
	}
	return "", false
}

func (z *Zone) apexNSLocked() []dnswire.RR {
	return append([]dnswire.RR(nil), z.records[z.Origin][dnswire.TypeNS]...)
}

func (z *Zone) negativeAuthorityLocked() []dnswire.RR {
	if soa := z.records[z.Origin][dnswire.TypeSOA]; len(soa) > 0 {
		return append([]dnswire.RR(nil), soa...)
	}
	return nil
}

// glueLocked collects in-zone A/AAAA records for NS hosts in rrs.
func (z *Zone) glueLocked(rrs []dnswire.RR) []dnswire.RR {
	var glue []dnswire.RR
	for _, rr := range rrs {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		if byType := z.records[ns.Host]; byType != nil {
			glue = append(glue, byType[dnswire.TypeA]...)
			glue = append(glue, byType[dnswire.TypeAAAA]...)
		}
	}
	return glue
}

// Clone returns a deep-enough copy of the zone (records are value types)
// usable as an immutable daily snapshot.
func (z *Zone) Clone() *Zone {
	z.mu.RLock()
	defer z.mu.RUnlock()
	c := &Zone{
		Origin:  z.Origin,
		records: make(map[string]map[dnswire.Type][]dnswire.RR, len(z.records)),
		cuts:    make(map[string]bool, len(z.cuts)),
	}
	for name, byType := range z.records {
		nb := make(map[dnswire.Type][]dnswire.RR, len(byType))
		for t, rrs := range byType {
			nb[t] = append([]dnswire.RR(nil), rrs...)
		}
		c.records[name] = nb
	}
	for k := range z.cuts {
		c.cuts[k] = true
	}
	return c
}

// AllRecords returns every record in the zone, SOA first, the rest in
// sorted owner/type order — the sequence a zone transfer emits.
func (z *Zone) AllRecords() []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnswire.RR, 0, 64)
	if soa := z.records[z.Origin][dnswire.TypeSOA]; len(soa) > 0 {
		out = append(out, soa[0])
	}
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		byType := z.records[n]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			for _, rr := range byType[t] {
				if t == dnswire.TypeSOA && n == z.Origin {
					continue // already emitted first
				}
				out = append(out, rr)
			}
		}
	}
	return out
}
