package coord

// The work ledger is an append-only JSONL journal: one record per state
// transition (add, lease, commit, requeue, fail), each carrying a
// monotonically increasing sequence number. Records that must survive a
// coordinator crash — commits and permanent failures — are fsync'd
// before the transition is acknowledged; cheap transitions (leases,
// requeues) are buffered by the OS and reconstructed conservatively on
// replay (a leased partition whose fate is unknown is simply requeued).
//
// Replay tolerates a torn tail: if the coordinator died mid-append, the
// final line is partial or fails to parse, and the journal truncates
// itself back to the last intact record instead of refusing to start.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Journal record types.
const (
	recAdd     = "add"     // partition registered in the ledger
	recLease   = "lease"   // partition leased to a worker
	recCommit  = "commit"  // partition durably committed (fsync'd)
	recRequeue = "requeue" // lease abandoned/expired, partition pending again
	recFail    = "fail"    // partition failed permanently (fsync'd)
)

type record struct {
	Seq     uint64 `json:"seq"`
	Type    string `json:"type"`
	Source  string `json:"source"`
	Day     int    `json:"day"`
	Lease   uint64 `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Spool   string `json:"spool,omitempty"`
	Err     string `json:"err,omitempty"`
}

type journal struct {
	f    *os.File
	seq  uint64 // last sequence number written
	path string
}

// scanJournal parses the intact prefix of journal bytes, expecting the
// first record to carry sequence startSeq+1. good is the byte offset
// just past the last intact record; torn reports whether a partial or
// unparseable final line (or a sequence discontinuity) stopped the scan
// early. Shared by the coordinator's replay (which truncates the torn
// tail) and the read-only JournalReader feed (which must not).
func scanJournal(data []byte, startSeq uint64) (recs []record, good int, torn bool) {
	seq := startSeq
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return recs, good, true // partial final line: append died mid-write
		}
		line := data[off : off+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Seq != seq+1 {
			// Unparseable or out-of-sequence: everything from here on is
			// the torn tail of a crashed append.
			return recs, good, true
		}
		seq = rec.Seq
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	return recs, good, false
}

// openJournal opens (or creates) the journal at path, replays its
// records, and truncates any torn tail. It returns the journal ready
// for appending plus the intact records in order.
func openJournal(path string) (*journal, []record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("coord: read journal: %w", err)
	}

	recs, good, torn := scanJournal(data, 0)
	var seq uint64
	if len(recs) > 0 {
		seq = recs[len(recs)-1].Seq
	}
	if torn {
		mJournalTornTails.Inc()
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, nil, fmt.Errorf("coord: truncate torn journal tail: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("coord: open journal: %w", err)
	}
	return &journal{f: f, seq: seq, path: path}, recs, nil
}

// append writes one record, stamping the next sequence number. When
// sync is true the record is fsync'd before append returns — the
// caller must not acknowledge the transition until then.
func (j *journal) append(rec record, sync bool) error {
	j.seq++
	rec.Seq = j.seq
	buf := bufio.NewWriter(j.f)
	enc := json.NewEncoder(buf)
	if err := enc.Encode(&rec); err != nil {
		return fmt.Errorf("coord: journal append: %w", err)
	}
	if err := buf.Flush(); err != nil {
		return fmt.Errorf("coord: journal append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("coord: journal fsync: %w", err)
		}
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }
