package store

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"dpsadopt/internal/simtime"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("example.com")
	b := d.ID("other.com")
	if a == b {
		t.Fatal("distinct strings share ID")
	}
	if d.ID("example.com") != a {
		t.Fatal("re-intern changed ID")
	}
	if d.Str(a) != "example.com" || d.Str(b) != "other.com" {
		t.Fatal("Str mismatch")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestWriteAndRead(t *testing.T) {
	s := New()
	w := s.NewWriter("com", 5)
	w.AddAddr("foo.com", KindApexA, addr("10.0.0.1"), []uint32{13335})
	w.AddStr("foo.com", KindNS, "kate.ns.cloudflare.com")
	w.AddStr("foo.com", KindWWWCNAME, "foo.cloudflare.net")
	w.AddAddr("bar.com", KindApexA, addr("10.9.9.9"), nil)
	w.Commit()

	var rows []Row
	s.ForEachRow("com", 5, func(r Row) {
		r.ASNs = append([]uint32(nil), r.ASNs...)
		rows = append(rows, r)
	})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Domain != "foo.com" || rows[0].Addr != addr("10.0.0.1") || !reflect.DeepEqual(rows[0].ASNs, []uint32{13335}) {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].Str != "kate.ns.cloudflare.com" || rows[1].Kind != KindNS {
		t.Errorf("row1 = %+v", rows[1])
	}
	if rows[2].Kind != KindWWWCNAME || rows[2].Str != "foo.cloudflare.net" {
		t.Errorf("row2 = %+v", rows[2])
	}
	if rows[3].Domain != "bar.com" || len(rows[3].ASNs) != 0 {
		t.Errorf("row3 = %+v", rows[3])
	}
}

func TestCommitMergesPartitions(t *testing.T) {
	s := New()
	w1 := s.NewWriter("com", 1)
	w1.AddAddr("a.com", KindApexA, addr("1.1.1.1"), []uint32{1})
	w1.Commit()
	w2 := s.NewWriter("com", 1)
	w2.AddAddr("b.com", KindApexA, addr("2.2.2.2"), []uint32{2, 3})
	w2.Commit()

	var got [][]uint32
	s.ForEachRow("com", 1, func(r Row) {
		got = append(got, append([]uint32(nil), r.ASNs...))
	})
	want := [][]uint32{{1}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ASNs after merge = %v, want %v", got, want)
	}
}

func TestWriterReusableAfterCommit(t *testing.T) {
	s := New()
	w := s.NewWriter("org", 9)
	w.AddStr("x.org", KindNS, "ns1.t.example")
	w.Commit()
	if w.Rows() != 0 {
		t.Error("writer not reset")
	}
	w.AddStr("y.org", KindNS, "ns2.t.example")
	w.Commit()
	n := 0
	s.ForEachRow("org", 9, func(Row) { n++ })
	if n != 2 {
		t.Errorf("rows = %d", n)
	}
}

func TestSourcesAndDays(t *testing.T) {
	s := New()
	for _, src := range []string{"net", "com", "alexa"} {
		for _, d := range []simtime.Day{3, 1, 2} {
			w := s.NewWriter(src, d)
			w.AddStr("x."+src, KindNS, "ns.example")
			w.Commit()
		}
	}
	if got := s.Sources(); !reflect.DeepEqual(got, []string{"alexa", "com", "net"}) {
		t.Errorf("Sources = %v", got)
	}
	if got := s.Days("com"); !reflect.DeepEqual(got, []simtime.Day{1, 2, 3}) {
		t.Errorf("Days = %v", got)
	}
	if got := s.Days("missing"); len(got) != 0 {
		t.Errorf("Days(missing) = %v", got)
	}
}

func TestSourceStats(t *testing.T) {
	s := New()
	for day := simtime.Day(0); day < 10; day++ {
		w := s.NewWriter("com", day)
		for i := 0; i < 100; i++ {
			name := "dom" + string(rune('a'+i%26)) + ".com"
			w.AddAddr(name, KindApexA, addr("10.0.0.1"), []uint32{13335})
			w.AddStr(name, KindNS, "ns1.hostco.net")
		}
		w.Commit()
	}
	st := s.SourceStats("com")
	if st.Days != 10 {
		t.Errorf("Days = %d", st.Days)
	}
	if st.DataPoints != 2000 {
		t.Errorf("DataPoints = %d", st.DataPoints)
	}
	if st.UniqueSLDs != 26 {
		t.Errorf("UniqueSLDs = %d", st.UniqueSLDs)
	}
	if st.CompressedBytes <= 0 {
		t.Error("no compressed size")
	}
	// Columnar + flate should crush this highly repetitive data well
	// below the raw encoding (~13 bytes/row plus ASN column).
	if st.CompressedBytes > st.DataPoints*8 {
		t.Errorf("compression ineffective: %d bytes for %d rows", st.CompressedBytes, st.DataPoints)
	}
}

func TestEmptyPartitionIsSilent(t *testing.T) {
	s := New()
	called := false
	s.ForEachRow("com", 1, func(Row) { called = true })
	if called {
		t.Error("callback on empty partition")
	}
	w := s.NewWriter("com", 1)
	w.Commit() // empty commit is a no-op
	if len(s.Days("com")) != 0 {
		t.Error("empty commit created a partition")
	}
}

func TestIPv6Rows(t *testing.T) {
	s := New()
	w := s.NewWriter("com", 2)
	v6 := addr("2001:db8::1")
	w.AddAddr("six.com", KindApexAAAA, v6, []uint32{13335})
	w.AddAddr("four.com", KindApexA, addr("10.0.0.1"), []uint32{100})
	w.AddAddr("six.com", KindWWWAAAA, addr("2001:db8::2"), nil)
	w.Commit()
	// A second writer commit exercises v6 index rebasing.
	w2 := s.NewWriter("com", 2)
	w2.AddAddr("more.com", KindApexAAAA, addr("2001:db8::3"), nil)
	w2.Commit()

	var got []Row
	s.ForEachRow("com", 2, func(r Row) { got = append(got, r) })
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Addr != v6 {
		t.Errorf("row0 addr = %v", got[0].Addr)
	}
	if got[1].Addr != addr("10.0.0.1") {
		t.Errorf("row1 addr = %v", got[1].Addr)
	}
	if got[2].Addr != addr("2001:db8::2") || got[3].Addr != addr("2001:db8::3") {
		t.Errorf("v6 rows = %v, %v", got[2].Addr, got[3].Addr)
	}
}

// TestForEachRowIDAgreesWithForEachRow builds a randomized store —
// several interleaved writer commits with a mix of address, CNAME, NS,
// IPv4 and IPv6 rows — and demands that the ID-space iterator resolve to
// exactly the presentation rows, in the same order.
func TestForEachRowIDAgreesWithForEachRow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	day := simtime.Day(7)
	kinds := []Kind{KindApexA, KindApexAAAA, KindWWWA, KindWWWAAAA, KindWWWCNAME, KindNS}
	total := 0
	for commit := 0; commit < 4; commit++ {
		w := s.NewWriter("com", day)
		for i := 0; i < 200; i++ {
			// A small domain pool so the same domain recurs across
			// commits (the interleaving DetectDay has to survive).
			dom := fmt.Sprintf("dom%02d.com", rng.Intn(40))
			k := kinds[rng.Intn(len(kinds))]
			switch k {
			case KindWWWCNAME, KindNS:
				w.AddStr(dom, k, fmt.Sprintf("target%03d.example.net", rng.Intn(100)))
			case KindApexAAAA, KindWWWAAAA:
				a := netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, byte(rng.Intn(256)), byte(rng.Intn(256))})
				w.AddAddr(dom, k, a, randASNs(rng))
			default:
				a := netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
				w.AddAddr(dom, k, a, randASNs(rng))
			}
			total++
		}
		w.Commit()
	}

	var want []Row
	s.ForEachRow("com", day, func(r Row) {
		r.ASNs = append([]uint32(nil), r.ASNs...)
		want = append(want, r)
	})
	if len(want) != total {
		t.Fatalf("ForEachRow yielded %d rows, want %d", len(want), total)
	}

	dict := s.Dict()
	i := 0
	s.ForEachRowID("com", day, func(r RowID) {
		w := want[i]
		if dict.Str(r.Domain) != w.Domain || r.Kind != w.Kind {
			t.Fatalf("row %d: (%s, %v) vs (%s, %v)", i, dict.Str(r.Domain), r.Kind, w.Domain, w.Kind)
		}
		if r.Str == NoStr {
			if w.Str != "" {
				t.Fatalf("row %d: ID form has no string, presentation has %q", i, w.Str)
			}
		} else if got := dict.Str(r.Str); got != w.Str {
			t.Fatalf("row %d: Str %q vs %q", i, got, w.Str)
		}
		if !reflect.DeepEqual(append([]uint32{}, r.ASNs...), append([]uint32{}, w.ASNs...)) {
			t.Fatalf("row %d: ASNs %v vs %v", i, r.ASNs, w.ASNs)
		}
		i++
	})
	if i != total {
		t.Fatalf("ForEachRowID yielded %d rows, want %d", i, total)
	}

	// The batch view resolves addresses identically (both families).
	b, ok := s.RowBatch("com", day)
	if !ok || b.Rows() != total {
		t.Fatalf("RowBatch: ok=%v rows=%d", ok, b.Rows())
	}
	for j := 0; j < b.Rows(); j++ {
		if r := b.Row(j, dict); r.Addr != want[j].Addr {
			t.Fatalf("row %d: Addr %v vs %v", j, r.Addr, want[j].Addr)
		}
	}
}

func randASNs(rng *rand.Rand) []uint32 {
	n := rng.Intn(3)
	asns := make([]uint32, n)
	for i := range asns {
		asns[i] = uint32(rng.Intn(64000)) + 1
	}
	return asns
}
