package transport

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestMemRoundTrip(t *testing.T) {
	n := NewMem(1)
	srv, err := n.Listen(ap("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.WriteTo([]byte("ping"), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, from, err := srv.ReadFrom(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "ping" || from != cli.LocalAddr() {
		t.Errorf("got %q from %v", buf[:nr], from)
	}
	if err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	nr, from, err = cli.ReadFrom(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "pong" || from != srv.LocalAddr() {
		t.Errorf("got %q from %v", buf[:nr], from)
	}
	if sent, dropped := n.Stats(); sent != 2 || dropped != 0 {
		t.Errorf("stats = %d sent, %d dropped", sent, dropped)
	}
}

func TestMemTimeout(t *testing.T) {
	n := NewMem(1)
	c, err := n.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, err = c.ReadFrom(make([]byte, 16), 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("returned before timeout")
	}
}

func TestMemWriteToNowhere(t *testing.T) {
	n := NewMem(1)
	c, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
	defer c.Close()
	if err := c.WriteTo([]byte("x"), ap("10.0.0.99:53")); err != nil {
		t.Errorf("write to absent listener should vanish silently, got %v", err)
	}
}

func TestMemAddrInUse(t *testing.T) {
	n := NewMem(1)
	a := ap("10.0.0.1:53")
	c1, err := n.Listen(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(a); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("second listen err = %v", err)
	}
	c1.Close()
	c2, err := n.Listen(a)
	if err != nil {
		t.Errorf("listen after close: %v", err)
	}
	c2.Close()
}

func TestMemCloseUnblocksReader(t *testing.T) {
	n := NewMem(1)
	c, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.ReadFrom(make([]byte, 16), 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader not unblocked by Close")
	}
}

func TestMemLossIsApplied(t *testing.T) {
	n := NewMem(42)
	n.SetLoss(0.5)
	srv, _ := n.Listen(ap("10.0.0.1:53"))
	defer srv.Close()
	cli, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
	defer cli.Close()
	const total = 400
	for i := 0; i < total; i++ {
		if err := cli.WriteTo([]byte{byte(i)}, srv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	sent, dropped := n.Stats()
	if sent+dropped != total {
		t.Fatalf("sent+dropped = %d", sent+dropped)
	}
	if dropped < total/4 || dropped > 3*total/4 {
		t.Errorf("dropped = %d of %d, expected near half", dropped, total)
	}
}

func TestMemLossDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		n := NewMem(7)
		n.SetLoss(0.3)
		srv, _ := n.Listen(ap("10.0.0.1:53"))
		defer srv.Close()
		cli, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
		defer cli.Close()
		for i := 0; i < 100; i++ {
			_ = cli.WriteTo([]byte{1}, srv.LocalAddr())
		}
		return n.Stats()
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("runs differ: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
}

func TestMemDelay(t *testing.T) {
	n := NewMem(1)
	n.SetDelay(30 * time.Millisecond)
	srv, _ := n.Listen(ap("10.0.0.1:53"))
	defer srv.Close()
	cli, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
	defer cli.Close()
	start := time.Now()
	_ = cli.WriteTo([]byte("x"), srv.LocalAddr())
	_, _, err := srv.ReadFrom(make([]byte, 16), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", el)
	}
}

func TestMemMTU(t *testing.T) {
	n := NewMem(1)
	cli, _ := n.Dial(netip.MustParseAddr("10.9.0.1"))
	defer cli.Close()
	if err := cli.WriteTo(make([]byte, MTU+1), ap("10.0.0.1:53")); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("oversize write err = %v", err)
	}
}

func TestMemEphemeralPortsUnique(t *testing.T) {
	n := NewMem(1)
	local := netip.MustParseAddr("10.9.0.1")
	seen := make(map[netip.AddrPort]bool)
	for i := 0; i < 100; i++ {
		c, err := n.Dial(local)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if seen[c.LocalAddr()] {
			t.Fatalf("duplicate ephemeral %v", c.LocalAddr())
		}
		seen[c.LocalAddr()] = true
	}
}

func TestMemConcurrent(t *testing.T) {
	n := NewMem(1)
	srv, _ := n.Listen(ap("10.0.0.1:53"))
	defer srv.Close()
	// Echo server.
	go func() {
		buf := make([]byte, 64)
		for {
			nr, from, err := srv.ReadFrom(buf, 0)
			if err != nil {
				return
			}
			_ = srv.WriteTo(buf[:nr], from)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := n.Dial(netip.MustParseAddr("10.9.0.2"))
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			buf := make([]byte, 64)
			for j := 0; j < 50; j++ {
				msg := []byte{byte(i), byte(j)}
				if err := cli.WriteTo(msg, srv.LocalAddr()); err != nil {
					t.Error(err)
					return
				}
				nr, _, err := cli.ReadFrom(buf, time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				if nr != 2 || buf[0] != byte(i) || buf[1] != byte(j) {
					t.Errorf("echo mismatch: %v", buf[:nr])
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestUDPRoundTrip(t *testing.T) {
	var n UDP
	srv, err := n.Listen(ap("127.0.0.1:0"))
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	defer srv.Close()
	cli, err := n.Dial(netip.MustParseAddr("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.WriteTo([]byte("ping"), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, from, err := srv.ReadFrom(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "ping" {
		t.Errorf("got %q", buf[:nr])
	}
	if err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	if nr, _, err = cli.ReadFrom(buf, time.Second); err != nil || string(buf[:nr]) != "pong" {
		t.Errorf("reply: %q, %v", buf[:nr], err)
	}
}

func TestUDPTimeout(t *testing.T) {
	var n UDP
	cli, err := n.Dial(netip.MustParseAddr("127.0.0.1"))
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	defer cli.Close()
	if _, _, err := cli.ReadFrom(make([]byte, 16), 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestMappedUDPRoundTrip(t *testing.T) {
	m := NewMappedUDP()
	simAddr := ap("10.0.0.1:53")
	srv, err := m.Listen(simAddr)
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	defer srv.Close()
	if srv.LocalAddr() != simAddr {
		t.Errorf("LocalAddr = %v", srv.LocalAddr())
	}
	cli, err := m.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.WriteTo([]byte("ping"), simAddr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, from, err := srv.ReadFrom(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Errorf("payload = %q", buf[:n])
	}
	if from != cli.LocalAddr() {
		t.Errorf("translated source = %v, want %v", from, cli.LocalAddr())
	}
	if err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	if n, from, err = cli.ReadFrom(buf, time.Second); err != nil || string(buf[:n]) != "pong" || from != simAddr {
		t.Errorf("reply = %q from %v, %v", buf[:n], from, err)
	}
}

func TestMappedUDPToNowhere(t *testing.T) {
	m := NewMappedUDP()
	cli, err := m.Dial(netip.MustParseAddr("10.9.0.1"))
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	defer cli.Close()
	if err := cli.WriteTo([]byte("x"), ap("10.0.0.250:53")); err != nil {
		t.Errorf("unmapped destination should drop silently: %v", err)
	}
	if _, _, err := cli.ReadFrom(make([]byte, 8), 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v", err)
	}
}

func TestMappedUDPReleaseOnClose(t *testing.T) {
	m := NewMappedUDP()
	simAddr := ap("10.0.0.2:53")
	c1, err := m.Listen(simAddr)
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	if _, err := m.Listen(simAddr); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate listen err = %v", err)
	}
	c1.Close()
	c2, err := m.Listen(simAddr)
	if err != nil {
		t.Errorf("listen after close: %v", err)
	} else {
		c2.Close()
	}
}
