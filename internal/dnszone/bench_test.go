package dnszone

import (
	"fmt"
	"net/netip"
	"testing"

	"dpsadopt/internal/dnswire"
)

// bigZone builds a TLD-shaped zone: n delegations with glue.
func bigZone(b *testing.B, n int) *Zone {
	b.Helper()
	z := MustNew("com")
	z.MustAdd(dnswire.RR{Name: "com", Type: dnswire.TypeSOA, TTL: 3600, Data: dnswire.SOA{
		MName: "a.gtld-servers.net", RName: "hostmaster.com", Serial: 1,
	}})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dom%06d.com", i)
		host := fmt.Sprintf("ns1.dom%06d.com", i)
		z.MustAdd(dnswire.RR{Name: name, Type: dnswire.TypeNS, TTL: 3600, Data: dnswire.NS{Host: host}})
		z.MustAdd(dnswire.RR{Name: host, Type: dnswire.TypeA, TTL: 3600,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})}})
	}
	return z
}

func BenchmarkZoneReferral(b *testing.B) {
	z := bigZone(b, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("www.dom%06d.com", i%50_000), dnswire.TypeA)
		if !res.Delegated {
			b.Fatal("expected referral")
		}
	}
}

func BenchmarkZoneNXDomain(b *testing.B) {
	z := bigZone(b, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := z.Lookup("no-such-name.com", dnswire.TypeA)
		if res.RCode != dnswire.RCodeNXDomain {
			b.Fatal("expected NXDOMAIN")
		}
	}
}

func BenchmarkZoneAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z := MustNew("com")
		for j := 0; j < 1000; j++ {
			z.MustAdd(dnswire.RR{
				Name: fmt.Sprintf("dom%d.com", j), Type: dnswire.TypeNS, TTL: 1,
				Data: dnswire.NS{Host: "ns.example.net"},
			})
		}
	}
}
