package obs

import (
	"sort"
	"sync"
)

// DefaultTopK is the default number of keys a TopK sketch tracks.
const DefaultTopK = 64

// TopK is a SpaceSaving heavy-hitter sketch (Metwally, Agrawal, El
// Abbadi 2005): it tracks at most k keys in O(k) memory over an
// unbounded key stream. When a new key arrives with the sketch full, it
// takes over the minimum-count entry, inheriting its count plus one and
// recording that count as the entry's maximum overcount.
//
// Guarantees (with N total offers): every reported count is an upper
// bound on the true count; the overcount of any entry is at most its
// recorded MaxOvercount, itself at most N/k; and any key whose true
// count exceeds N/k is guaranteed to be tracked. For the Zipf-like
// query mixes the API serves, the head of the distribution is therefore
// exact or near-exact while the memory stays constant.
//
// Entries live in flat parallel slices with a key->slot index; a
// takeover rewrites a slot in place, so the steady-state tail (untracked
// key evicts the minimum) allocates nothing and scans a contiguous
// count array rather than chasing pointers. This sits on the serving
// hot path, so those constants matter.
type TopK struct {
	mu     sync.Mutex
	k      int
	total  uint64
	idx    map[string]int
	keys   []string
	counts []uint64
	overs  []uint64
}

// TopKEntry is one reported heavy hitter.
type TopKEntry struct {
	Key string `json:"key"`
	// Count is the estimated count — an upper bound on the true count.
	Count uint64 `json:"count"`
	// MaxOvercount bounds Count's overestimate: true count >= Count -
	// MaxOvercount.
	MaxOvercount uint64 `json:"max_overcount"`
}

// NewTopK creates a sketch tracking at most k keys (<=0 uses
// DefaultTopK).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultTopK
	}
	return &TopK{
		k:      k,
		idx:    make(map[string]int, k),
		keys:   make([]string, 0, k),
		counts: make([]uint64, 0, k),
		overs:  make([]uint64, 0, k),
	}
}

// K returns the sketch capacity.
func (t *TopK) K() int { return t.k }

// Offer counts one occurrence of key.
func (t *TopK) Offer(key string) { t.OfferN(key, 1) }

// OfferN counts n occurrences of key.
func (t *TopK) OfferN(key string, n uint64) {
	if n == 0 || key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total += n
	if i, ok := t.idx[key]; ok {
		t.counts[i] += n
		return
	}
	if len(t.keys) < t.k {
		t.idx[key] = len(t.keys)
		t.keys = append(t.keys, key)
		t.counts = append(t.counts, n)
		t.overs = append(t.overs, 0)
		return
	}
	// SpaceSaving takeover: the new key replaces the minimum-count
	// entry, inheriting its count as the worst-case overestimate.
	// Ties break toward the lexicographically smallest key so the
	// sketch is deterministic under identical streams.
	min := 0
	for i := 1; i < len(t.counts); i++ {
		if t.counts[i] < t.counts[min] ||
			(t.counts[i] == t.counts[min] && t.keys[i] < t.keys[min]) {
			min = i
		}
	}
	delete(t.idx, t.keys[min])
	t.idx[key] = min
	t.keys[min] = key
	t.overs[min] = t.counts[min]
	t.counts[min] += n
}

// Total returns the number of offers seen (exact).
func (t *TopK) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ErrorBound returns the sketch-wide overcount bound N/k: no reported
// count exceeds its true count by more than this.
func (t *TopK) ErrorBound() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total / uint64(t.k)
}

// Top returns the n highest-count entries, count descending with key
// ascending as the deterministic tie-break.
func (t *TopK) Top(n int) []TopKEntry {
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.keys))
	for i, key := range t.keys {
		out = append(out, TopKEntry{Key: key, Count: t.counts[i], MaxOvercount: t.overs[i]})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
