package benchfmt

import (
	"bufio"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"strings"
	"time"
)

// MeasureBuild runs one index-build path under the peak-memory sampler
// and returns its ScalePath: heap peak is the high-water delta of LIVE
// heap bytes over the pre-build baseline, RSS peak is the max VmRSS the
// kernel reports while the build runs (best effort: 0 without procfs).
// PartitionsPerSec is left for the caller, which knows the partition
// count.
//
// Live bytes come from /gc/heap/live:bytes, which the runtime updates
// at each GC mark termination: unlike heap-objects accounting it never
// counts dead-but-unswept garbage, so lazy sweeping cannot inflate the
// reading. GC is tightened during the build so marks happen often
// enough for the sampler to see the true high-water mark, and a final
// forced GC captures a build that ends at its peak. Both paths run
// under the same setting, so the throughput comparison stays fair.
//
// The reading is still an estimate — allocations made while a mark is
// running count as live even when they die young, and live peaks
// between two marks go unseen — and it is sensitive to the process's
// GC pacing history, so measure in as fresh a process state as
// practical: one cell per run (dpsbench) or one cell per subprocess
// (the root scale benchmarks). Back-to-back measurements in a loop in
// one process drift by integer factors.
func MeasureBuild(build func() error) (ScalePath, error) {
	var p ScalePath
	oldGC := debug.SetGCPercent(20)
	defer debug.SetGCPercent(oldGC)
	runtime.GC()
	debug.FreeOSMemory()
	base := liveHeapBytes()
	stop := make(chan struct{})
	done := make(chan struct{})
	ready := make(chan struct{})
	var peakHeap, peakRSS uint64
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		close(ready)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if h := liveHeapBytes(); h > base && h-base > peakHeap {
					peakHeap = h - base
				}
				if r := vmRSSBytes(); r > peakRSS {
					peakRSS = r
				}
			}
		}
	}()
	<-ready
	start := time.Now()
	err := build()
	p.BuildSeconds = time.Since(start).Seconds()
	close(stop)
	<-done
	if err != nil {
		return p, err
	}
	// The final state counts too: live:bytes is only refreshed at mark
	// termination, so a build that ends at its peak may not have been
	// marked since. One more GC makes the end state visible.
	runtime.GC()
	if h := liveHeapBytes(); h > base && h-base > peakHeap {
		peakHeap = h - base
	}
	if r := vmRSSBytes(); r > peakRSS {
		peakRSS = r
	}
	p.PeakHeapBytes = peakHeap
	p.PeakRSSBytes = peakRSS
	return p, nil
}

// liveHeapBytes reads the runtime's live heap estimate as of the last
// completed GC mark.
func liveHeapBytes() uint64 {
	samples := []metrics.Sample{{Name: "/gc/heap/live:bytes"}}
	metrics.Read(samples)
	return samples[0].Value.Uint64()
}

// vmRSSBytes reads the process resident set from /proc/self/status
// (best effort: 0 on platforms without procfs).
func vmRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
