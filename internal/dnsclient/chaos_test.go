package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

// nsWorld builds a root delegating "f.test" to nsCount name servers (with
// glue), each its own Server instance so tests can count per-server query
// load. Servers whose index is in dead are not started: datagrams to them
// vanish, like a dead host. The zone holds names x0.f.test .. x29.f.test.
func nsWorld(t *testing.T, network transport.Network, nsCount int, dead map[int]bool) (roots []netip.AddrPort, nsAddrs []netip.AddrPort, srvs []*dnsserver.Server) {
	t.Helper()
	z := dnszone.MustNew("f.test")
	z.MustAdd(dnswire.RR{Name: "f.test", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{MName: "ns0.f.test", RName: "h.f.test", Serial: 1}})
	root := dnszone.MustNew(".")
	for i := 0; i < nsCount; i++ {
		host := fmt.Sprintf("ns%d.f.test", i)
		addr := netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		z.MustAdd(dnswire.RR{Name: "f.test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: host}})
		root.MustAdd(dnswire.RR{Name: "f.test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: host}})
		root.MustAdd(dnswire.RR{Name: host, Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: addr}})
		nsAddrs = append(nsAddrs, netip.AddrPortFrom(addr, transport.DNSPort))
	}
	for i := 0; i < 30; i++ {
		z.MustAdd(dnswire.RR{Name: fmt.Sprintf("x%d.f.test", i), Type: dnswire.TypeA, TTL: 1,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, 1, 0, byte(i)})}})
	}
	rootSrv := dnsserver.New()
	rootSrv.AddZone(root)
	run, err := dnsserver.Start(rootSrv, network, "10.0.0.100")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { run.Stop() })
	srvs = append(srvs, rootSrv)
	for i := 0; i < nsCount; i++ {
		srv := dnsserver.New()
		srv.AddZone(z)
		srvs = append(srvs, srv)
		if dead[i] {
			continue
		}
		run, err := dnsserver.Start(srv, network, nsAddrs[i].Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { run.Stop() })
	}
	return []netip.AddrPort{netip.MustParseAddrPort("10.0.0.100:53")}, nsAddrs, srvs
}

// TestTCPFallbackUnderTruncStorm proves the RFC 1035 §4.2.2 retry path
// survives chaos: every UDP answer is forcibly truncated and 5% of
// datagrams are lost, so resolution only completes if the TCP fallback
// works end to end.
func TestTCPFallbackUnderTruncStorm(t *testing.T) {
	cfg, err := chaos.Scenario("trunc-storm")
	if err != nil {
		t.Fatal(err)
	}
	network := chaos.Wrap(transport.NewMem(41), cfg, 7)
	roots, records := bigWorld(t, network)
	// Server-side forced truncation on the authoritative servers: the
	// network wrapper supplies the datagram loss.
	// (bigWorld's servers are reached via the stream listeners it starts.)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.10"), roots, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Backoff = time.Millisecond // keep retransmission sleeps test-fast
	res, err := r.Resolve(context.Background(), "many.big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Addrs()); got != records {
		t.Errorf("addresses = %d, want %d (TCP fallback should deliver all)", got, records)
	}
}

// TestTCPFallbackUnderServerTruncation drives truncation from the server
// side (FaultTruncate via the injector) rather than by answer size, with
// loss on top, against the multi-NS world.
func TestTCPFallbackUnderServerTruncation(t *testing.T) {
	cfg := chaos.Config{Name: "trunc", Loss: 0.05, Truncate: 1}
	network := chaos.Wrap(transport.NewMem(42), cfg, 9)
	roots, nsAddrs, srvs := nsWorld(t, network, 2, nil)
	inj := chaos.NewServerFaults(cfg, 9)
	for _, srv := range srvs {
		srv.SetFaults(inj)
	}
	// Streams for the TCP retry: the injector only affects UDP.
	for i, srv := range srvs {
		addr := "10.0.0.100"
		if i > 0 {
			addr = nsAddrs[i-1].Addr().String()
		}
		stream, err := dnsserver.StartStream(srv, network, addr)
		if err != nil {
			t.Fatal(err)
		}
		if stream != nil {
			t.Cleanup(func() { stream.Stop() })
		}
	}
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.11"), roots, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Backoff = time.Millisecond
	res, err := r.Resolve(context.Background(), "x3.f.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addrs()) != 1 {
		t.Errorf("addrs = %v, want one", res.Addrs())
	}
}

// TestRotationSpreadsLoad checks retry fairness: with three healthy name
// servers, successive resolutions must not all land on the first NS —
// the starting server rotates per resolution.
func TestRotationSpreadsLoad(t *testing.T) {
	network := transport.NewMem(43)
	roots, _, srvs := nsWorld(t, network, 3, nil)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.12"), roots, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := r.Resolve(context.Background(), fmt.Sprintf("x%d.f.test", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for i, srv := range srvs[1:] {
		q := srv.Queries()
		total += q
		if q == 0 {
			t.Errorf("ns%d answered no queries: rotation is not spreading load", i)
		}
	}
	if total < n {
		t.Errorf("zone servers answered %d queries, want >= %d", total, n)
	}
}

// TestHealthDeprioritizesDeadServer: with one of two name servers dead,
// the resolver must stop burning a timeout on it once its health score
// drops, so steady-state resolutions cost one query.
func TestHealthDeprioritizesDeadServer(t *testing.T) {
	network := transport.NewMem(44)
	roots, nsAddrs, _ := nsWorld(t, network, 2, map[int]bool{1: true})
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.13"), roots, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Timeout = 20 * time.Millisecond
	r.Backoff = 0 // immediate retries: this test measures ordering, not pacing
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := r.Resolve(context.Background(), fmt.Sprintf("x%d.f.test", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
		if i == n-5 {
			r.queries.Store(0) // count only the steady-state tail
		}
	}
	if got := r.QueriesSent(); got != 4 {
		t.Errorf("steady-state resolutions sent %d queries, want 4 (1 each): dead server still being tried first", got)
	}
	if dead, live := r.ServerScore(nsAddrs[1]), r.ServerScore(nsAddrs[0]); dead >= unhealthyScore || live < 0.9 {
		t.Errorf("scores: dead=%v live=%v", dead, live)
	}
	if r.TimeoutsSeen() == 0 {
		t.Error("no timeouts recorded against the dead server")
	}
}

// TestRetryBudgetFailsFast: under total loss a resolution must stop after
// the per-resolution retry budget, not after Retries × referral steps.
func TestRetryBudgetFailsFast(t *testing.T) {
	network := chaos.Wrap(transport.NewMem(45), chaos.Config{Name: "void", Loss: 1}, 7)
	roots, _, _ := nsWorld(t, network, 2, nil)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.14"), roots, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Timeout = 5 * time.Millisecond
	r.Backoff = time.Millisecond
	r.MaxBackoff = 2 * time.Millisecond
	r.Retries = 100 // the budget, not the per-exchange cap, must bound work
	r.RetryBudget = 3
	res, err := r.Resolve(context.Background(), "x0.f.test", dnswire.TypeA)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res.Queries != r.RetryBudget+1 {
		t.Errorf("queries = %d, want %d (initial + budget)", res.Queries, r.RetryBudget+1)
	}
	if res.Timeouts != res.Queries {
		t.Errorf("timeouts = %d, want %d", res.Timeouts, res.Queries)
	}
	if r.GiveUps() != 1 || r.Resolutions() != 1 {
		t.Errorf("giveups = %d, resolutions = %d", r.GiveUps(), r.Resolutions())
	}
}

// TestResolveUnderFlakyLoss: the flaky-1pct scenario must be fully
// absorbed by retransmission — every resolution still succeeds.
func TestResolveUnderFlakyLoss(t *testing.T) {
	cfg, err := chaos.Scenario("flaky-1pct")
	if err != nil {
		t.Fatal(err)
	}
	network := chaos.Wrap(transport.NewMem(46), cfg, 7)
	roots, _, _ := nsWorld(t, network, 3, nil)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.15"), roots, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Timeout = 50 * time.Millisecond
	r.Backoff = time.Millisecond
	for i := 0; i < 30; i++ {
		res, err := r.Resolve(context.Background(), fmt.Sprintf("x%d.f.test", i), dnswire.TypeA)
		if err != nil {
			t.Fatalf("x%d: %v", i, err)
		}
		if len(res.Addrs()) != 1 {
			t.Fatalf("x%d: addrs = %v", i, res.Addrs())
		}
	}
}
