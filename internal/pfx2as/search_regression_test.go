package pfx2as

import (
	"net/netip"
	"reflect"
	"testing"
)

// TestSearchSharedZeroStart is a regression test for a Search.Lookup
// termination bug: with several prefixes sharing network address 0, the
// backward scan used to stop at the first non-covering start-0 entry
// (e.g. 0.0.0.0/24) without examining the coarser covering 0.0.0.0/8
// sorted before it. Found by TestImplementationsAgree under a random
// seed (-437688259875120756).
func TestSearchSharedZeroStart(t *testing.T) {
	entries := []Entry{
		{Prefix: netip.MustParsePrefix("0.0.0.0/8"), Origins: Origins{987}},
		{Prefix: netip.MustParsePrefix("0.0.0.0/24"), Origins: Origins{1}},
		{Prefix: netip.MustParsePrefix("0.200.0.0/16"), Origins: Origins{2}},
	}
	s := NewSearch(entries)
	for _, c := range []struct {
		addr string
		want Origins
	}{
		{"0.241.125.126", Origins{987}}, // covered only by the /8
		{"0.0.0.5", Origins{1}},         // most specific: the /24
		{"0.200.9.9", Origins{2}},       // the /16
	} {
		got, ok := s.Lookup(netip.MustParseAddr(c.addr))
		if !ok || !reflect.DeepEqual(got, c.want) {
			t.Errorf("Search.Lookup(%s) = %v, %v; want %v, true", c.addr, got, ok, c.want)
		}
	}
	if _, ok := s.Lookup(netip.MustParseAddr("1.0.0.1")); ok {
		t.Error("uncovered address reported covered")
	}
}
