// Package simtime provides the virtual calendar of the simulation: a Day
// is a number of days since the measurement epoch (2015-03-01, the first
// day of the paper's data set). Daily snapshots, event schedules, and
// analysis windows are all expressed in Days.
package simtime

import (
	"fmt"
	"time"
)

// Epoch is the calendar date of Day 0.
var Epoch = time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)

// Day is a day index relative to Epoch. Negative values are valid (days
// before the measurement started).
type Day int

// Date converts a Day to its calendar date (UTC midnight).
func (d Day) Date() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// String renders ISO 8601, e.g. "2015-03-05".
func (d Day) String() string { return d.Date().Format("2006-01-02") }

// FromDate converts a calendar date to a Day, truncating to UTC midnight.
func FromDate(year int, month time.Month, day int) Day {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Day(t.Sub(Epoch) / (24 * time.Hour))
}

// Parse converts "2006-01-02" to a Day.
func Parse(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("simtime: %w", err)
	}
	return FromDate(t.Year(), t.Month(), t.Day()), nil
}

// Range is a half-open interval of days [Start, End).
type Range struct {
	Start, End Day
}

// Contains reports whether d falls inside the range.
func (r Range) Contains(d Day) bool { return d >= r.Start && d < r.End }

// Len returns the number of days in the range.
func (r Range) Len() int {
	if r.End <= r.Start {
		return 0
	}
	return int(r.End - r.Start)
}

// String renders "[2015-03-01, 2015-03-05)".
func (r Range) String() string { return fmt.Sprintf("[%s, %s)", r.Start, r.End) }
