package dnsclient

import (
	"context"
	"net/netip"
	"testing"

	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

// testWorld wires a miniature DNS hierarchy modelled on the paper's
// Section 2 examples:
//
//	root (.)            at 10.0.0.100
//	"le" and "ar" TLDs  at 10.0.1.1
//	examp.le            at 10.0.2.1 (customer zone, www CNAME → foob.ar)
//	foob.ar             at 10.0.3.1 (the DPS zone)
type testWorld struct {
	net   *transport.Mem
	roots []netip.AddrPort
	stops []*dnsserver.Running
}

func newTestWorld(t testing.TB) *testWorld {
	t.Helper()
	w := &testWorld{net: transport.NewMem(99)}

	root := dnszone.MustNew(".")
	root.MustAdd(dnswire.RR{Name: "le", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.tld.test"}})
	root.MustAdd(dnswire.RR{Name: "ar", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.tld.test"}})
	root.MustAdd(dnswire.RR{Name: "test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.tld.test"}})
	root.MustAdd(dnswire.RR{Name: "ns.tld.test", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.1.1")}})

	tld := dnsserver.New()
	le := dnszone.MustNew("le")
	le.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.registr.ar"}})
	// Glueless: ns.registr.ar must be resolved via the "ar" TLD.
	tld.AddZone(le)
	ar := dnszone.MustNew("ar")
	ar.MustAdd(dnswire.RR{Name: "registr.ar", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.self.registr.ar"}})
	ar.MustAdd(dnswire.RR{Name: "ns.self.registr.ar", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.2.1")}})
	ar.MustAdd(dnswire.RR{Name: "foob.ar", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.foob.ar"}})
	ar.MustAdd(dnswire.RR{Name: "ns.foob.ar", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.3.1")}})
	tld.AddZone(ar)
	testTLD := dnszone.MustNew("test")
	testTLD.MustAdd(dnswire.RR{Name: "ns.tld.test", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.1.1")}})
	tld.AddZone(testTLD)

	registrar := dnsserver.New()
	reg := dnszone.MustNew("registr.ar")
	reg.MustAdd(dnswire.RR{Name: "ns.registr.ar", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.2.1")}})
	registrar.AddZone(reg)
	examp := dnszone.MustNew("examp.le")
	examp.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{MName: "ns.registr.ar", RName: "h.examp.le", Serial: 1}})
	examp.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.registr.ar"}})
	examp.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")}})
	examp.MustAdd(dnswire.RR{Name: "www.examp.le", Type: dnswire.TypeCNAME, TTL: 1, Data: dnswire.CNAME{Target: "foob.ar"}})
	registrar.AddZone(examp)

	dps := dnsserver.New()
	foob := dnszone.MustNew("foob.ar")
	foob.MustAdd(dnswire.RR{Name: "foob.ar", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{MName: "ns.foob.ar", RName: "h.foob.ar", Serial: 1}})
	foob.MustAdd(dnswire.RR{Name: "foob.ar", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.foob.ar"}})
	foob.MustAdd(dnswire.RR{Name: "foob.ar", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.3.100")}})
	dps.AddZone(foob)

	rootSrv := dnsserver.New()
	rootSrv.AddZone(root)

	for _, s := range []struct {
		srv  *dnsserver.Server
		addr string
	}{
		{rootSrv, "10.0.0.100"},
		{tld, "10.0.1.1"},
		{registrar, "10.0.2.1"},
		{dps, "10.0.3.1"},
	} {
		run, err := dnsserver.Start(s.srv, w.net, s.addr)
		if err != nil {
			t.Fatal(err)
		}
		w.stops = append(w.stops, run)
	}
	t.Cleanup(func() {
		for _, r := range w.stops {
			_ = r.Stop()
		}
	})
	w.roots = []netip.AddrPort{netip.MustParseAddrPort("10.0.0.100:53")}
	return w
}

func (w *testWorld) resolver(t testing.TB) *Resolver {
	t.Helper()
	r, err := NewResolver(w.net, netip.MustParseAddr("10.9.0.1"), w.roots, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestResolveApexA(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", res.RCode)
	}
	addrs := res.Addrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestResolveCNAMEAcrossZones(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "www.examp.le", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	cn := res.CNAMEs()
	if len(cn) != 1 || cn[0] != "foob.ar" {
		t.Fatalf("CNAMEs = %v (records %v)", cn, res.Records)
	}
	addrs := res.Addrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("10.0.3.100") {
		t.Errorf("addrs = %v", addrs)
	}
	// Full expansion: CNAME then A, in order.
	if len(res.Records) != 2 || res.Records[0].Type != dnswire.TypeCNAME || res.Records[1].Type != dnswire.TypeA {
		t.Errorf("records = %v", res.Records)
	}
}

func TestResolveGluelessNS(t *testing.T) {
	// examp.le's NS (ns.registr.ar) has no glue in the "le" zone; the
	// resolver must resolve it through the "ar" TLD first.
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addrs()) != 1 {
		t.Errorf("addrs = %v", res.Addrs())
	}
}

func TestResolveNXDomain(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "missing.examp.le", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestResolveNoData(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || len(res.Records) != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestResolveNSRecords(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	res, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %v", res.Records)
	}
	if ns, ok := res.Records[0].Data.(dnswire.NS); !ok || ns.Host != "ns.registr.ar" {
		t.Errorf("NS = %v", res.Records[0])
	}
}

func TestReferralCacheReused(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	if _, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	first := r.QueriesSent()
	if _, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeNS); err != nil {
		t.Fatal(err)
	}
	second := r.QueriesSent() - first
	if second != 1 {
		t.Errorf("second resolution used %d queries, want 1 (cache)", second)
	}
	r.FlushCache()
	if _, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	third := r.QueriesSent() - first - second
	if third <= 1 {
		t.Errorf("post-flush resolution used %d queries, expected full walk", third)
	}
}

func TestResolveSurvivesLoss(t *testing.T) {
	w := newTestWorld(t)
	w.net.SetLoss(0.2)
	r := w.resolver(t)
	r.Retries = 6
	r.Timeout = 25e6 // 25ms: the in-memory network delivers instantly
	ok := 0
	for i := 0; i < 10; i++ {
		r.FlushCache()
		res, err := r.Resolve(context.Background(), "www.examp.le", dnswire.TypeA)
		if err == nil && len(res.Addrs()) == 1 {
			ok++
		}
	}
	if ok < 8 {
		t.Errorf("only %d/10 resolutions succeeded under 20%% loss", ok)
	}
}

func TestResolveDeadServer(t *testing.T) {
	net := transport.NewMem(1)
	r, err := NewResolver(net, netip.MustParseAddr("10.9.0.1"), []netip.AddrPort{netip.MustParseAddrPort("10.0.0.200:53")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Timeout = 20e6 // 20ms
	r.Retries = 1
	if _, err := r.Resolve(context.Background(), "anything.test", dnswire.TypeA); err == nil {
		t.Error("expected error from dead root")
	}
}

func TestCNAMELoopAcrossZonesBounded(t *testing.T) {
	net := transport.NewMem(1)
	srv := dnsserver.New()
	root := dnszone.MustNew(".")
	root.MustAdd(dnswire.RR{Name: "test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.test"}})
	root.MustAdd(dnswire.RR{Name: "ns.test", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.0.1")}})
	srvRoot := dnsserver.New()
	srvRoot.AddZone(root)
	a := dnszone.MustNew("a.test")
	a.MustAdd(dnswire.RR{Name: "a.test", Type: dnswire.TypeCNAME, TTL: 1, Data: dnswire.CNAME{Target: "b.test"}})
	b := dnszone.MustNew("b.test")
	b.MustAdd(dnswire.RR{Name: "b.test", Type: dnswire.TypeCNAME, TTL: 1, Data: dnswire.CNAME{Target: "a.test"}})
	tz := dnszone.MustNew("test")
	srv.AddZone(a)
	srv.AddZone(b)
	srv.AddZone(tz)
	r1, err := dnsserver.Start(srvRoot, net, "10.0.0.100")
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	r2, err := dnsserver.Start(srv, net, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()
	res, err := NewResolver(net, netip.MustParseAddr("10.9.0.1"), []netip.AddrPort{netip.MustParseAddrPort("10.0.0.100:53")}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	out, err := res.Resolve(context.Background(), "a.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.CNAMEs()) == 0 {
		t.Error("expected partial CNAME chain")
	}
	if len(out.Records) > 2*(maxCNAMEHops+1) {
		t.Errorf("unbounded chain: %d records", len(out.Records))
	}
}
