// Package dnsserver implements an authoritative DNS server over the
// transport abstraction. One Server instance can be authoritative for many
// zones (a real DPS or hoster name server hosts millions); queries are
// routed to the zone with the longest matching origin suffix.
//
// The server is intentionally a pure responder: it answers from zone data
// via dnszone.Lookup, sets AA, returns referrals below zone cuts, and
// truncates oversized UDP responses with the TC bit, mirroring the
// behaviour the paper's measurement infrastructure observes from real
// authoritative servers.
package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
)

// Fault is a server-side fault a FaultInjector can order for one query.
type Fault int

// Server-side fault kinds.
const (
	// FaultNone answers normally.
	FaultNone Fault = iota
	// FaultServfail answers SERVFAIL without consulting zone data.
	FaultServfail
	// FaultSlow answers correctly but only after the injector's delay.
	FaultSlow
	// FaultTruncate forces TC on the UDP answer with cleared sections,
	// pushing the client to the RFC 1035 §4.2.2 TCP retry. TCP answers
	// are never truncated.
	FaultTruncate
	// FaultDrop reads the query and answers nothing.
	FaultDrop
)

var faultNames = [...]string{"none", "servfail", "slow", "truncate", "drop"}

// String names the fault.
func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "unknown"
}

// FaultInjector decides a fault for each incoming query. Implementations
// must be safe for concurrent use; internal/chaos provides a seeded,
// deterministic one. The returned delay is only meaningful for FaultSlow.
type FaultInjector interface {
	QueryFault(qname string) (Fault, time.Duration)
}

// Server answers authoritative DNS queries for a set of zones.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*dnszone.Zone

	// concurrency is the Serve worker-pool size (see SetConcurrency).
	concurrency int

	// faults, when set, is consulted for every UDP query (see SetFaults).
	faults atomic.Pointer[faultBox]

	// Queries counts handled queries (including refused ones).
	queries atomic.Int64
	// received counts datagrams read off the socket, before decode or
	// fault injection — Stop's drain guarantee is Received() == handled.
	received atomic.Int64
}

// faultBox wraps the injector so a nil interface can be stored atomically.
type faultBox struct{ fi FaultInjector }

// New creates an empty server.
func New() *Server {
	return &Server{zones: make(map[string]*dnszone.Zone)}
}

// AddZone makes the server authoritative for z, replacing any zone with
// the same origin.
func (s *Server) AddZone(z *dnszone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// RemoveZone drops authority for the zone rooted at origin.
func (s *Server) RemoveZone(origin string) {
	o, err := dnswire.CanonicalName(origin)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, o)
}

// Zone returns the zone with the given origin, if the server carries it.
func (s *Server) Zone(origin string) (*dnszone.Zone, bool) {
	o, err := dnswire.CanonicalName(origin)
	if err != nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[o]
	return z, ok
}

// ZoneCount returns the number of zones served.
func (s *Server) ZoneCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.zones)
}

// Queries returns the number of queries handled so far.
func (s *Server) Queries() int64 { return s.queries.Load() }

// Received returns the number of datagrams read off the server's sockets,
// whether or not they decoded to a query. After Stop drains, every
// received well-formed query has been handled.
func (s *Server) Received() int64 { return s.received.Load() }

// SetFaults installs (or, with nil, removes) a fault injector consulted
// for every UDP query. Safe to call while serving.
func (s *Server) SetFaults(fi FaultInjector) {
	if fi == nil {
		s.faults.Store(nil)
		return
	}
	s.faults.Store(&faultBox{fi: fi})
}

// faultFor consults the installed injector, if any.
func (s *Server) faultFor(qname string) (Fault, time.Duration) {
	if box := s.faults.Load(); box != nil {
		return box.fi.QueryFault(qname)
	}
	return FaultNone, 0
}

// findZone returns the zone whose origin is the longest suffix of qname.
func (s *Server) findZone(qname string) *dnszone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Walk from the full name toward the root, so the most specific zone
	// wins (a server can host both "examp.le" and "le").
	for cand := qname; ; cand = dnswire.Parent(cand) {
		if z, ok := s.zones[cand]; ok {
			return z
		}
		if cand == "." {
			return nil
		}
	}
}

// Handle answers a single query message. It never returns nil: malformed
// or unsupported queries produce FORMERR/NOTIMP/REFUSED responses.
func (s *Server) Handle(q *dnswire.Message) *dnswire.Message {
	s.queries.Add(1)
	mQueries.Inc()
	resp := q.Reply()
	if q.Flags.Response || len(q.Questions) != 1 {
		resp.Flags.RCode = dnswire.RCodeFormErr
		return resp
	}
	if q.Flags.OpCode != dnswire.OpQuery {
		resp.Flags.RCode = dnswire.RCodeNotImp
		return resp
	}
	question := q.Questions[0]
	qname, err := dnswire.CanonicalName(question.Name)
	if err != nil || question.Class != dnswire.ClassIN {
		resp.Flags.RCode = dnswire.RCodeFormErr
		return resp
	}
	z := s.findZone(qname)
	if z == nil {
		resp.Flags.RCode = dnswire.RCodeRefused
		return resp
	}
	res := z.Lookup(qname, question.Type)
	resp.Flags.RCode = res.RCode
	resp.Flags.Authoritative = res.Authoritative
	resp.Answers = res.Answer
	resp.Authority = res.Authority
	resp.Extra = res.Additional
	return resp
}

// maxPayload returns the response size limit advertised by the query's
// EDNS0 OPT record, or the classic 512-byte default.
func maxPayload(q *dnswire.Message) int {
	for _, rr := range q.Extra {
		if rr.Type == dnswire.TypeOPT {
			if size := int(rr.Class); size > dnswire.MaxUDPPayload {
				if size > transport.MTU {
					return transport.MTU
				}
				return size
			}
			return dnswire.MaxUDPPayload
		}
	}
	return dnswire.MaxUDPPayload
}

// packWithLimit packs resp, truncating it (clearing sections and setting
// TC) if it exceeds limit bytes.
func packWithLimit(resp *dnswire.Message, limit int) ([]byte, error) {
	wire, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	if len(wire) <= limit {
		return wire, nil
	}
	mTruncated.Inc()
	trunc := *resp
	trunc.Flags.Truncated = true
	trunc.Answers = nil
	trunc.Authority = nil
	trunc.Extra = nil
	return trunc.Pack()
}

// Concurrency is the number of goroutines handling queries per Serve
// loop; 1 (the default when unset) handles queries inline. Set before
// Serve starts.
func (s *Server) SetConcurrency(n int) {
	if n > 0 {
		s.concurrency = n
	}
}

// Serve reads queries from conn and writes responses until conn is closed.
// It is typically run in its own goroutine per simulated server address.
// With SetConcurrency(n>1), decoding and answering happen in a worker
// pool while the loop keeps reading. When the conn closes, Serve drains:
// every datagram already read is still decoded and answered (the answers
// to a closed conn are discarded by the transport, but handling completes
// — queries are never abandoned mid-flight), and Serve returns only after
// all workers have exited.
func (s *Server) Serve(conn transport.Conn) error {
	workers := s.concurrency
	if workers <= 1 {
		return s.serveInline(conn)
	}
	type job struct {
		data []byte
		from netip.AddrPort
	}
	jobs := make(chan job, workers*2)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.answer(conn, j.data, j.from)
			}
		}()
	}
	buf := make([]byte, transport.MTU)
	var err error
	for {
		var n int
		var from netip.AddrPort
		n, from, err = conn.ReadFrom(buf, 0)
		if err != nil {
			break
		}
		s.received.Add(1)
		jobs <- job{data: append([]byte(nil), buf[:n]...), from: from}
	}
	close(jobs)
	wg.Wait()
	if err == transport.ErrClosed {
		return nil
	}
	return fmt.Errorf("dnsserver: read: %w", err)
}

func (s *Server) serveInline(conn transport.Conn) error {
	buf := make([]byte, transport.MTU)
	for {
		n, from, err := conn.ReadFrom(buf, 0)
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		s.received.Add(1)
		s.answer(conn, buf[:n], from)
	}
}

// answer decodes, handles, and responds to one datagram; malformed input
// is dropped as real servers do. When a process tracer is installed
// (trace.SetDefault) the query is recorded as a `dnsserver.handle` root
// span, sampled by qname with the same deterministic hash the client
// side uses, so server-side traces exist for the same sampled names.
// When a fault injector is installed, its verdict is applied here —
// before zone lookup for drops, after it for truncation — and recorded
// as a `chaos` span attribute so injected faults are visible in traces.
func (s *Server) answer(conn transport.Conn, data []byte, from netip.AddrPort) {
	mInflight.Inc()
	defer mInflight.Dec()
	q, err := dnswire.Unpack(data)
	if err != nil {
		mMalformed.Inc()
		return
	}
	var qname string
	if len(q.Questions) == 1 {
		if qn, err := dnswire.CanonicalName(q.Questions[0].Name); err == nil {
			qname = qn
		}
	}
	var sp *trace.Span
	if tr := trace.Default(); tr != nil && qname != "" && tr.SampleName(qname) {
		_, sp = tr.StartRoot(context.Background(), "dnsserver.handle",
			trace.Str("qname", qname),
			trace.Str("qtype", q.Questions[0].Type.String()),
			trace.Str("client", from.String()))
	}
	fault, delay := FaultNone, time.Duration(0)
	if qname != "" {
		fault, delay = s.faultFor(qname)
	}
	if fault != FaultNone {
		sp.SetAttr(trace.Str("chaos", fault.String()))
	}
	switch fault {
	case FaultDrop:
		sp.End()
		return
	case FaultSlow:
		time.Sleep(delay)
	}
	var resp *dnswire.Message
	if fault == FaultServfail {
		s.queries.Add(1)
		mQueries.Inc()
		resp = q.Reply()
		resp.Flags.RCode = dnswire.RCodeServFail
	} else {
		resp = s.Handle(q)
	}
	if fault == FaultTruncate {
		resp.Flags.Truncated = true
		resp.Answers, resp.Authority, resp.Extra = nil, nil, nil
		mTruncated.Inc()
	}
	sp.SetAttr(trace.Str("rcode", resp.Flags.RCode.String()))
	wire, err := packWithLimit(resp, maxPayload(q))
	if err != nil {
		sp.End()
		return
	}
	_ = conn.WriteTo(wire, from)
	sp.End()
}

// Running wraps a Server bound to an address with lifecycle management.
type Running struct {
	Server *Server
	conn   transport.Conn
	done   chan struct{}
	err    error
}

// Start binds srv at addr on the network and serves it in a goroutine.
func Start(srv *Server, net transport.Network, addr string) (*Running, error) {
	conn, err := listen(net, addr)
	if err != nil {
		return nil, err
	}
	r := &Running{Server: srv, conn: conn, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = srv.Serve(conn)
	}()
	return r, nil
}

// drainTimeout bounds how long Stop waits for in-flight queries. It is a
// deadlock backstop, not a drop policy: a drain that needs this long
// means a handler is wedged, and Stop reports it as an error instead of
// silently abandoning goroutines.
const drainTimeout = 30 * time.Second

// Stop closes the listener and waits for the serve loop — including all
// worker goroutines and their queued queries — to drain completely.
func (r *Running) Stop() error {
	r.conn.Close()
	select {
	case <-r.done:
	case <-time.After(drainTimeout):
		return fmt.Errorf("dnsserver: stop: drain timed out after %v with queries in flight", drainTimeout)
	}
	return r.err
}

func listen(net transport.Network, addr string) (transport.Conn, error) {
	ap, err := parseListenAddr(addr)
	if err != nil {
		return nil, err
	}
	return net.Listen(ap)
}
