// Package transport abstracts the datagram network between the measurement
// system's resolvers and the simulated Internet's authoritative name
// servers.
//
// Two implementations are provided: an in-memory switched network (Mem)
// with optional loss and latency for large-scale deterministic simulation,
// and an adapter over real UDP sockets (UDP) so the same server and
// resolver code can be exercised over the loopback interface.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"
)

// DNSPort is the well-known DNS port used by simulated servers.
const DNSPort = 53

// Errors returned by transport operations.
var (
	ErrClosed       = errors.New("transport: connection closed")
	ErrTimeout      = errors.New("transport: read timeout")
	ErrAddrInUse    = errors.New("transport: address in use")
	ErrNoRoute      = errors.New("transport: no listener at destination")
	ErrPayloadSize  = errors.New("transport: payload exceeds MTU")
	ErrNoEphemerals = errors.New("transport: ephemeral ports exhausted")
)

// MTU is the largest datagram the in-memory network will carry; it mirrors
// a jumbo EDNS0 payload so measurement responses are never fragmented.
const MTU = 4096

// Conn is a minimal datagram endpoint.
type Conn interface {
	// WriteTo sends one datagram to the given address.
	WriteTo(p []byte, to netip.AddrPort) error
	// ReadFrom blocks until a datagram arrives or the timeout elapses,
	// copying it into buf. A zero timeout blocks indefinitely.
	ReadFrom(buf []byte, timeout time.Duration) (int, netip.AddrPort, error)
	// LocalAddr returns the bound address.
	LocalAddr() netip.AddrPort
	// Close releases the endpoint. Blocked readers return ErrClosed.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// Listen binds a Conn at a fixed address (e.g. a name server at
	// ip:53).
	Listen(addr netip.AddrPort) (Conn, error)
	// Dial binds a Conn at an ephemeral port on the given local IP, for
	// client use.
	Dial(local netip.Addr) (Conn, error)
}

// Mem is a deterministic in-memory datagram network.
//
// The zero value is not usable; create one with NewMem. Loss and latency
// are applied per datagram using the network's seeded PRNG, so a run is
// reproducible for a given seed.
type Mem struct {
	mu        sync.Mutex
	conns     map[netip.AddrPort]*memConn
	rng       *rand.Rand
	loss      float64
	delay     time.Duration
	nextEphem uint16
	// Stats counts datagrams carried and dropped, for the ablation bench.
	sent    int64
	dropped int64
	// streamTab lazily holds the in-memory stream listeners (stream.go).
	streamTab *memStreams
}

// NewMem creates an in-memory network. seed makes loss decisions
// reproducible.
func NewMem(seed int64) *Mem {
	return &Mem{
		conns:     make(map[netip.AddrPort]*memConn),
		rng:       rand.New(rand.NewSource(seed)),
		nextEphem: 32768,
	}
}

// SetLoss sets the independent per-datagram drop probability in [0,1).
func (n *Mem) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = p
}

// SetDelay sets a fixed one-way delivery delay.
func (n *Mem) SetDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = d
}

// Stats returns the number of datagrams delivered and dropped so far.
func (n *Mem) Stats() (sent, dropped int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped
}

// Listen implements Network.
func (n *Mem) Listen(addr netip.AddrPort) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.conns[addr]; ok {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, addr)
	}
	c := newMemConn(n, addr)
	n.conns[addr] = c
	return c, nil
}

// Dial implements Network.
func (n *Mem) Dial(local netip.Addr) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for tries := 0; tries < 65536; tries++ {
		port := n.nextEphem
		n.nextEphem++
		if n.nextEphem == 0 {
			n.nextEphem = 32768
		}
		addr := netip.AddrPortFrom(local, port)
		if _, ok := n.conns[addr]; ok {
			continue
		}
		c := newMemConn(n, addr)
		n.conns[addr] = c
		return c, nil
	}
	return nil, ErrNoEphemerals
}

type datagram struct {
	from    netip.AddrPort
	payload []byte
}

type memConn struct {
	net   *Mem
	addr  netip.AddrPort
	queue chan datagram
	done  chan struct{}
	once  sync.Once
}

func newMemConn(n *Mem, addr netip.AddrPort) *memConn {
	return &memConn{
		net:   n,
		addr:  addr,
		queue: make(chan datagram, 1024),
		done:  make(chan struct{}),
	}
}

func (c *memConn) LocalAddr() netip.AddrPort { return c.addr }

func (c *memConn) WriteTo(p []byte, to netip.AddrPort) error {
	if len(p) > MTU {
		return ErrPayloadSize
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	n := c.net
	n.mu.Lock()
	dst, ok := n.conns[to]
	drop := ok && n.loss > 0 && n.rng.Float64() < n.loss
	delay := n.delay
	if drop {
		n.dropped++
	} else if ok {
		n.sent++
	}
	n.mu.Unlock()
	if drop {
		mPacketsDropped.Inc()
	}
	if !ok {
		// Mirror UDP: a datagram to nowhere vanishes silently; the
		// caller discovers it via timeout. Return nil.
		return nil
	}
	if drop {
		return nil
	}
	d := datagram{from: c.addr, payload: append([]byte(nil), p...)}
	deliver := func() {
		select {
		case dst.queue <- d:
			mPacketsSent.Inc()
			mBytesSent.Add(int64(len(d.payload)))
		case <-dst.done:
		default:
			// Queue overflow: drop, like a kernel socket buffer.
			n.mu.Lock()
			n.dropped++
			n.sent--
			n.mu.Unlock()
			mPacketsDropped.Inc()
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

func (c *memConn) ReadFrom(buf []byte, timeout time.Duration) (int, netip.AddrPort, error) {
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case d := <-c.queue:
		n := copy(buf, d.payload)
		return n, d.from, nil
	case <-c.done:
		return 0, netip.AddrPort{}, ErrClosed
	case <-timeoutCh:
		return 0, netip.AddrPort{}, ErrTimeout
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.net.mu.Lock()
		delete(c.net.conns, c.addr)
		c.net.mu.Unlock()
	})
	return nil
}

// UDP is a Network backed by real UDP sockets; addresses are used as-is, so
// tests and demos bind to 127.0.0.0/8.
type UDP struct{}

// Listen implements Network.
func (UDP) Listen(addr netip.AddrPort) (Conn, error) {
	uc, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(addr))
	if err != nil {
		return nil, err
	}
	return &udpConn{c: uc}, nil
}

// Dial implements Network.
func (UDP) Dial(local netip.Addr) (Conn, error) {
	uc, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(netip.AddrPortFrom(local, 0)))
	if err != nil {
		return nil, err
	}
	return &udpConn{c: uc}, nil
}

type udpConn struct {
	c *net.UDPConn
}

func (u *udpConn) LocalAddr() netip.AddrPort {
	return u.c.LocalAddr().(*net.UDPAddr).AddrPort()
}

func (u *udpConn) WriteTo(p []byte, to netip.AddrPort) error {
	_, err := u.c.WriteToUDPAddrPort(p, to)
	if err != nil {
		mPacketsDropped.Inc()
		return err
	}
	mPacketsSent.Inc()
	mBytesSent.Add(int64(len(p)))
	return nil
}

func (u *udpConn) ReadFrom(buf []byte, timeout time.Duration) (int, netip.AddrPort, error) {
	if timeout > 0 {
		if err := u.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, netip.AddrPort{}, err
		}
	} else {
		if err := u.c.SetReadDeadline(time.Time{}); err != nil {
			return 0, netip.AddrPort{}, err
		}
	}
	n, ap, err := u.c.ReadFromUDPAddrPort(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, netip.AddrPort{}, ErrTimeout
		}
		if errors.Is(err, net.ErrClosed) {
			return 0, netip.AddrPort{}, ErrClosed
		}
		return 0, netip.AddrPort{}, err
	}
	return n, ap, nil
}

func (u *udpConn) Close() error { return u.c.Close() }
