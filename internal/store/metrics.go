package store

import "dpsadopt/internal/obs"

// Stage III storage metrics. Rows are counted at Commit (the append
// path), partitions and resident rows track the streaming runner's
// measure-fold-drop cycle.
var (
	mRows = obs.Default().Counter("store_rows_total",
		"rows committed across all stores; rate() gives the append rate")
	mCommits = obs.Default().Counter("store_commits_total",
		"writer batches merged into a store")
	mPartitions = obs.Default().Gauge("store_partitions",
		"(source, day) partitions currently resident in memory")
	mResidentRows = obs.Default().Gauge("store_resident_rows",
		"rows currently resident across partitions (falls when days are dropped)")
	// Crash-safety counters for the v4 checksummed format: CRC failures
	// count detected torn writes / corruption at rest, quarantines count
	// partitions (or whole spool files) moved aside by salvaging loads.
	mCRCFailures = obs.Default().Counter("store_crc_failures_total",
		"partition/dictionary/directory checksum mismatches detected at load")
	mQuarantined = obs.Default().Counter("store_quarantined_partitions_total",
		"damaged partitions moved into quarantine/ by salvaging loads")
)
