package worldsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/simtime"
)

// This file produces the registry-operator view of a TLD: the daily zone
// file the paper's Stage I downloads ("the system downloads updated zone
// files daily from registry operators", §3.1). Registry zone files carry
// delegations (NS records) and glue — not the delegated zones' contents —
// so the measurement pipeline derives its domain lists from the NS owner
// names, exactly as OpenINTEL does.

// WriteZoneFile writes the TLD's registry zone file for one day.
func (w *World) WriteZoneFile(tld string, day simtime.Day, out io.Writer) error {
	model, ok := w.TLDs[tld]
	if !ok {
		return fmt.Errorf("worldsim: no TLD %q", tld)
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	fmt.Fprintf(bw, "$ORIGIN %s\n", tld)
	fmt.Fprintf(bw, "%s 86400 IN SOA a.gtld-servers.net nstld.%s %d 1800 900 604800 86400\n", tld, tld, uint32(day)+1)
	_ = model
	var err error
	for _, d := range w.Domains {
		if d.TLD != tld || !d.Life.Contains(day) {
			continue
		}
		st := w.StateFor(d, day)
		if !st.Exists {
			continue
		}
		hosts := st.NSHosts
		if st.Unmeasurable {
			// The registry still lists the delegation; only the name
			// servers are down. Use the operator's configured hosts.
			hosts = w.Operators[d.Operator].NSHosts
		}
		for _, ns := range hosts {
			if _, werr := fmt.Fprintf(bw, "%s 86400 IN NS %s\n", d.Name, ns); werr != nil {
				err = werr
			}
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ZoneFileDomains parses a registry zone file and returns the unique
// second-level domain names it delegates — Stage I's domain list.
func ZoneFileDomains(r io.Reader) (origin string, domains []string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	seen := make(map[string]bool)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "$ORIGIN" {
			if len(fields) != 2 {
				return "", nil, fmt.Errorf("worldsim: bad $ORIGIN line")
			}
			origin = fields[1]
			continue
		}
		if len(fields) < 4 || !strings.EqualFold(fields[3], "NS") {
			continue
		}
		name, cerr := dnswire.CanonicalName(fields[0])
		if cerr != nil {
			return "", nil, cerr
		}
		if name == origin || seen[name] {
			continue
		}
		// Only direct children of the origin are delegations of SLDs.
		if dnswire.Parent(name) != origin {
			continue
		}
		seen[name] = true
		domains = append(domains, name)
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	if origin == "" {
		return "", nil, fmt.Errorf("worldsim: zone file without $ORIGIN")
	}
	return origin, domains, nil
}
