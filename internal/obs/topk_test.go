package obs

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTopKSkewedWorkload checks the SpaceSaving guarantees against exact
// counts on a synthetic Zipf-like workload: estimates are upper bounds,
// the per-entry overcount bound holds and never exceeds total/k, and
// every key with true count above total/k is tracked.
func TestTopKSkewedWorkload(t *testing.T) {
	const k = 16
	sketch := NewTopK(k)
	exact := make(map[string]uint64)

	// 1/rank frequency over 200 keys, offered in seeded-shuffled order
	// so heavy hitters interleave with the long tail.
	var stream []string
	for rank := 1; rank <= 200; rank++ {
		key := fmt.Sprintf("key%03d", rank)
		for i := 0; i < 2000/rank; i++ {
			stream = append(stream, key)
		}
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, key := range stream {
		sketch.Offer(key)
		exact[key]++
	}

	total := sketch.Total()
	if total != uint64(len(stream)) {
		t.Fatalf("total = %d, want %d", total, len(stream))
	}
	bound := sketch.ErrorBound()
	if bound != total/uint64(k) {
		t.Fatalf("error bound = %d, want %d", bound, total/uint64(k))
	}

	entries := sketch.Top(0)
	if len(entries) != k {
		t.Fatalf("tracked %d keys, want %d", len(entries), k)
	}
	tracked := make(map[string]TopKEntry, len(entries))
	for _, e := range entries {
		tracked[e.Key] = e
		truth := exact[e.Key]
		if e.Count < truth {
			t.Fatalf("%s: estimate %d below true count %d", e.Key, e.Count, truth)
		}
		if e.Count-truth > e.MaxOvercount {
			t.Fatalf("%s: overcount %d exceeds recorded bound %d", e.Key, e.Count-truth, e.MaxOvercount)
		}
		if e.MaxOvercount > bound {
			t.Fatalf("%s: recorded bound %d exceeds sketch-wide bound %d", e.Key, e.MaxOvercount, bound)
		}
	}
	for key, truth := range exact {
		if truth > bound {
			if _, ok := tracked[key]; !ok {
				t.Fatalf("heavy hitter %s (true %d > bound %d) not tracked", key, truth, bound)
			}
		}
	}
}

func TestTopKSmallStreamExact(t *testing.T) {
	sketch := NewTopK(8)
	for i := 0; i < 5; i++ {
		sketch.Offer("a")
	}
	sketch.Offer("b")
	sketch.OfferN("c", 3)
	top := sketch.Top(2)
	if len(top) != 2 || top[0].Key != "a" || top[0].Count != 5 || top[0].MaxOvercount != 0 {
		t.Fatalf("top = %+v", top)
	}
	if top[1].Key != "c" || top[1].Count != 3 {
		t.Fatalf("top = %+v", top)
	}
	// Under capacity every count is exact.
	if sketch.ErrorBound() != 9/8 {
		t.Fatalf("error bound = %d", sketch.ErrorBound())
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	sketch := NewTopK(4)
	for _, key := range []string{"b", "a", "d", "c"} {
		sketch.Offer(key)
	}
	top := sketch.Top(0)
	for i, want := range []string{"a", "b", "c", "d"} {
		if top[i].Key != want {
			t.Fatalf("tie-break order = %+v", top)
		}
	}
	// Eviction at equal counts removes the lexicographically smallest,
	// deterministically.
	sketch.Offer("e")
	top = sketch.Top(0)
	if top[0].Key != "e" || top[0].Count != 2 || top[0].MaxOvercount != 1 {
		t.Fatalf("takeover entry = %+v", top)
	}
}

func TestTopKIgnoresEmpty(t *testing.T) {
	sketch := NewTopK(4)
	sketch.Offer("")
	sketch.OfferN("x", 0)
	if sketch.Total() != 0 || len(sketch.Top(0)) != 0 {
		t.Fatalf("empty/zero offers counted")
	}
}
