// Command dnsserve materialises one day of the simulated Internet as real
// DNS servers over kernel UDP sockets (loopback, NAT-translated), prints
// the root server address, and serves until interrupted. Point the
// repository's resolver — or any custom client built on
// internal/dnsclient — at the printed root to browse the simulated
// namespace; with -resolve it performs a demonstration lookup itself.
//
// Fault injection: -fault-scenario degrades the served namespace with a
// named chaos scenario — response loss, duplication and delay on the
// network path, plus SERVFAIL bursts, slow responses and truncation on
// the authoritative servers themselves — so resolver hardening can be
// exercised against live kernel-socket traffic. -fault-seed pins the
// pattern; root servers are never blackholed.
//
// Usage:
//
//	dnsserve [-scale 400000] [-date 2015-03-05] [-resolve www.DOMAIN]
//	         [-fault-scenario dead-ns] [-fault-seed 7] [-metrics-addr :9091]
//	         [-prof-mutex 5] [-prof-block 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/dnsclient"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale       = flag.Int("scale", 400_000, "world scale divisor (keep coarse: every domain gets a zone)")
		date        = flag.String("date", "2015-03-05", "day to serve")
		resolve     = flag.String("resolve", "", "name to resolve as a demonstration, then keep serving")
		axfr        = flag.String("axfr", "", "zone to transfer (AXFR over TCP) as a demonstration")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")

		faultScenario = flag.String("fault-scenario", "",
			"chaos scenario degrading the served namespace ("+strings.Join(chaos.ScenarioNames(), ", ")+"); empty = fault-free")
		faultSeed = flag.Int64("fault-seed", 0, "seed pinning the fault pattern")

		profMutex = flag.Int("prof-mutex", 0, "mutex profiling fraction (runtime.SetMutexProfileFraction; 0 = off); served at /debug/pprof/mutex and /debug/contention")
		profBlock = flag.Int("prof-block", 0, "block profiling rate in ns (runtime.SetBlockProfileRate; 0 = off); served at /debug/pprof/block and /debug/contention")
	)
	flag.Parse()
	obs.SetContentionProfiling(*profMutex, *profBlock)

	if *metricsAddr != "" {
		rc := obs.StartRuntimeCollector(obs.Default(), 0)
		defer rc.Close()
		srv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		obs.Logger().Info("metrics listening", "addr", srv.Addr,
			"endpoints", "/metrics /debug/vars /debug/pprof/ /debug/contention")
	}

	day, err := simtime.Parse(*date)
	if err != nil {
		fatal(err)
	}
	w, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("world: %s\n", w.Stats())

	var network transport.Network = transport.NewMappedUDP()
	var faultCfg chaos.Config
	if *faultScenario != "" {
		faultCfg, err = chaos.Scenario(*faultScenario)
		if err != nil {
			fatal(err)
		}
		if faultCfg.Active() {
			network = chaos.Wrap(network, faultCfg, *faultSeed)
		}
	}
	wire, err := w.BuildWire(day, network)
	if err != nil {
		fatal(err)
	}
	defer wire.Close()
	if *faultScenario != "" {
		if cn, ok := network.(*chaos.Network); ok {
			// Keep the namespace reachable at its first hop: a blackholed
			// root would make every lookup fail identically.
			for _, root := range wire.Roots {
				cn.Protect(root.Addr())
			}
		}
		if faultCfg.ServerActive() {
			wire.SetFaults(chaos.NewServerFaults(faultCfg, *faultSeed))
		}
		fmt.Printf("fault injection armed: scenario %s, seed %d\n", *faultScenario, *faultSeed)
	}
	fmt.Printf("serving %s; simulated root at %v (NAT over loopback UDP)\n", day, wire.Roots[0])

	if *resolve != "" {
		r, err := dnsclient.NewResolver(network, netip.MustParseAddr("10.250.0.1"), wire.Roots, 1)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		for _, qt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeNS} {
			res, err := r.Resolve(context.Background(), strings.ToLower(*resolve), qt)
			if err != nil {
				fmt.Printf("resolve %s %s: %v\n", *resolve, qt, err)
				continue
			}
			fmt.Printf(";; %s %s -> %s, %d records\n", *resolve, qt, res.RCode, len(res.Records))
			for _, rr := range res.Records {
				fmt.Println("  ", rr)
			}
		}
	}

	if *axfr != "" {
		r, err := dnsclient.NewResolver(network, netip.MustParseAddr("10.250.0.2"), wire.Roots, 2)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		// Find the TLD server: resolve the zone's NS, then its address.
		res, err := r.Resolve(context.Background(), strings.ToLower(*axfr), dnswire.TypeNS)
		if err != nil || len(res.Records) == 0 {
			fmt.Printf("axfr: cannot find NS for %s: %v\n", *axfr, err)
		} else if ns, ok := res.Records[0].Data.(dnswire.NS); ok {
			addrRes, err := r.Resolve(context.Background(), ns.Host, dnswire.TypeA)
			if err != nil || len(addrRes.Addrs()) == 0 {
				fmt.Printf("axfr: cannot resolve %s: %v\n", ns.Host, err)
			} else {
				server := netip.AddrPortFrom(addrRes.Addrs()[0], transport.DNSPort)
				records, err := r.AXFR(server, *axfr)
				if err != nil {
					fmt.Printf("axfr %s: %v\n", *axfr, err)
				} else {
					fmt.Printf(";; AXFR %s from %v: %d records\n", *axfr, server, len(records))
					for i, rr := range records {
						if i >= 8 {
							fmt.Printf("   ... %d more\n", len(records)-8)
							break
						}
						fmt.Println("  ", rr)
					}
				}
			}
		}
	}

	fmt.Println("press Ctrl-C to stop")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsserve:", err)
	os.Exit(1)
}
