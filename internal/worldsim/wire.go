package worldsim

import (
	"fmt"
	"net/netip"

	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/transport"
)

// Wire is a one-day materialisation of the world as real DNS
// infrastructure: authoritative servers bound on a transport network,
// serving actual zones, resolvable from the returned root addresses. It is
// the full-fidelity counterpart of StateFor, used by correctness tests,
// the live examples, and the measurement pipeline's wire mode.
type Wire struct {
	Network transport.Network
	Roots   []netip.AddrPort
	Day     simtime.Day

	running []*dnsserver.Running
	streams []*dnsserver.RunningStream
}

// SetFaults installs a fault injector (e.g. chaos.ServerFaults) on every
// authoritative server of the day's infrastructure — root, registry,
// hoster, provider and operator servers alike — so a chaos scenario
// degrades the whole simulated Internet, not a single zone.
func (wi *Wire) SetFaults(fi dnsserver.FaultInjector) {
	seen := map[*dnsserver.Server]bool{}
	for _, r := range wi.running {
		if !seen[r.Server] {
			seen[r.Server] = true
			r.Server.SetFaults(fi)
		}
	}
}

// Close stops all servers.
func (wi *Wire) Close() {
	for _, r := range wi.running {
		_ = r.Stop()
	}
	for _, r := range wi.streams {
		_ = r.Stop()
	}
	wi.running = nil
	wi.streams = nil
}

// Well-known infrastructure addresses of the simulation.
var (
	rootServerAddr = netip.MustParseAddr("198.41.0.4")
	tldServerAddr  = netip.MustParseAddr("192.5.6.30")
)

// BuildWire constructs the day's DNS infrastructure on the given network.
// Only use at small world scales: every registered domain gets a zone.
func (w *World) BuildWire(day simtime.Day, network transport.Network) (*Wire, error) {
	wi := &Wire{
		Network: network,
		Day:     day,
		Roots:   []netip.AddrPort{netip.AddrPortFrom(rootServerAddr, transport.DNSPort)},
	}

	// nsHostAddr maps every infrastructure NS host name to its address,
	// for glue records.
	nsHostAddr := map[string]netip.Addr{
		"a.gtld-servers.net": tldServerAddr,
	}
	// hostServer maps an NS host name to the server that carries the
	// zones delegated to it.
	hostServer := map[string]*dnsserver.Server{}

	hosterSrvs := make([]*dnsserver.Server, len(w.Hosters))
	for i, h := range w.Hosters {
		hosterSrvs[i] = dnsserver.New()
		for j, host := range h.NSHosts {
			nsHostAddr[host] = h.NSAddrs[j]
			hostServer[host] = hosterSrvs[i]
		}
	}
	provSrvs := make([]*dnsserver.Server, NumProviders)
	for i, p := range w.Providers {
		provSrvs[i] = dnsserver.New()
		for j, host := range p.NSHosts {
			nsHostAddr[host] = p.NSAddrs[j]
			hostServer[host] = provSrvs[i]
		}
	}
	opSrvs := make([]*dnsserver.Server, NumOperators)
	extraSrvs := map[string]*dnsserver.Server{} // baseline CNAME SLD servers (AWS)
	extraAddrs := map[string]netip.Addr{}
	for i, op := range w.Operators {
		opSrvs[i] = dnsserver.New()
		for j, host := range op.NSHosts {
			nsHostAddr[host] = op.NSAddrs[j]
			hostServer[host] = opSrvs[i]
		}
		if sld := op.Spec.BaselineCNAMESLD; sld != "" && extraSrvs[sld] == nil {
			srv := dnsserver.New()
			host := "ns1." + sld
			addr := mustNth(op.BaselineBlock, 5)
			nsHostAddr[host] = addr
			hostServer[host] = srv
			extraSrvs[sld] = srv
			extraAddrs[sld] = addr
		}
	}

	// Root and TLD zones.
	rootZone := dnszone.MustNew(".")
	rootZone.MustAdd(rr(".", dnswire.TypeSOA, dnswire.SOA{MName: "a.root-servers.net", RName: "nstld.verisign-grs.com", Serial: uint32(day) + 1}))
	tldZones := map[string]*dnszone.Zone{}
	tldSrv := dnsserver.New()
	for tld := range w.TLDs {
		z := dnszone.MustNew(tld)
		z.MustAdd(rr(tld, dnswire.TypeSOA, dnswire.SOA{MName: "a.gtld-servers.net", RName: "hostmaster." + tld, Serial: uint32(day) + 1}))
		z.MustAdd(rr(tld, dnswire.TypeNS, dnswire.NS{Host: "a.gtld-servers.net"}))
		tldZones[tld] = z
		tldSrv.AddZone(z)
		rootZone.MustAdd(rr(tld, dnswire.TypeNS, dnswire.NS{Host: "a.gtld-servers.net"}))
	}
	rootZone.MustAdd(rr("a.gtld-servers.net", dnswire.TypeA, dnswire.A{Addr: tldServerAddr}))
	rootSrv := dnsserver.New()
	rootSrv.AddZone(rootZone)
	// The registry servers' own zone, so a.gtld-servers.net resolves.
	gtldZone := dnszone.MustNew("gtld-servers.net")
	gtldZone.MustAdd(rr("gtld-servers.net", dnswire.TypeSOA, dnswire.SOA{MName: "a.gtld-servers.net", RName: "registry.gtld-servers.net", Serial: uint32(day) + 1}))
	gtldZone.MustAdd(rr("gtld-servers.net", dnswire.TypeNS, dnswire.NS{Host: "a.gtld-servers.net"}))
	gtldZone.MustAdd(rr("a.gtld-servers.net", dnswire.TypeA, dnswire.A{Addr: tldServerAddr}))
	tldSrv.AddZone(gtldZone)

	// delegate registers an SLD in its TLD zone with glue where needed.
	// Infrastructure SLDs can live in TLDs outside the measured set
	// (ultradns.biz); those TLD zones are created on demand.
	delegate := func(name string, nsHosts []string) error {
		tld := dnswire.Parent(name)
		z, ok := tldZones[tld]
		if !ok {
			z = dnszone.MustNew(tld)
			z.MustAdd(rr(tld, dnswire.TypeSOA, dnswire.SOA{MName: "a.gtld-servers.net", RName: "hostmaster." + tld, Serial: uint32(day) + 1}))
			z.MustAdd(rr(tld, dnswire.TypeNS, dnswire.NS{Host: "a.gtld-servers.net"}))
			tldZones[tld] = z
			tldSrv.AddZone(z)
			rootZone.MustAdd(rr(tld, dnswire.TypeNS, dnswire.NS{Host: "a.gtld-servers.net"}))
		}
		for _, host := range nsHosts {
			z.MustAdd(rr(name, dnswire.TypeNS, dnswire.NS{Host: host}))
			if dnswire.IsSubdomain(host, tld) {
				if a, ok := nsHostAddr[host]; ok {
					z.MustAdd(rr(host, dnswire.TypeA, dnswire.A{Addr: a}))
				}
			}
		}
		return nil
	}

	// infraZone creates a self-contained SLD zone (SOA, NS, NS-host As,
	// and an apex address so the discovery probe resolves over the wire).
	infraZone := func(origin string, nsHosts []string, extra ...dnswire.RR) *dnszone.Zone {
		z := dnszone.MustNew(origin)
		z.MustAdd(rr(origin, dnswire.TypeSOA, dnswire.SOA{MName: nsHosts[0], RName: "hostmaster." + origin, Serial: uint32(day) + 1}))
		if apex, ok := w.infraApex[origin]; ok {
			z.MustAdd(rr(origin, dnswire.TypeA, dnswire.A{Addr: apex}))
		}
		for _, h := range nsHosts {
			z.MustAdd(rr(origin, dnswire.TypeNS, dnswire.NS{Host: h}))
			if dnswire.IsSubdomain(h, origin) {
				if a, ok := nsHostAddr[h]; ok {
					z.MustAdd(rr(h, dnswire.TypeA, dnswire.A{Addr: a}))
				}
			}
		}
		for _, e := range extra {
			z.MustAdd(e)
		}
		return z
	}

	if err := delegate("gtld-servers.net", []string{"a.gtld-servers.net"}); err != nil {
		return nil, err
	}

	// Hoster infrastructure zones.
	for i, h := range w.Hosters {
		origin := dnswire.Parent(h.NSHosts[0])
		z := infraZone(origin, h.NSHosts)
		hosterSrvs[i].AddZone(z)
		if err := delegate(origin, h.NSHosts); err != nil {
			return nil, err
		}
	}
	// Provider SLD zones: NS SLDs and CNAME SLDs.
	cnameZones := map[string]*dnszone.Zone{} // SLD → zone for CNAME targets
	for i, p := range w.Providers {
		if len(p.NSHosts) > 0 {
			slds := map[string]bool{}
			for _, h := range p.NSHosts {
				slds[sldOf(h)] = true
			}
			for sld := range slds {
				z := infraZone(sld, p.NSHosts)
				provSrvs[i].AddZone(z)
				if err := delegate(sld, p.NSHosts); err != nil {
					return nil, err
				}
			}
		}
		for _, sld := range p.Spec.CNAMESLDs {
			hosts := p.NSHosts
			if len(hosts) == 0 {
				hosts = []string{"ns1." + sld}
				nsHostAddr[hosts[0]] = p.NSAddrs[0]
			}
			z := infraZone(sld, hosts)
			provSrvs[i].AddZone(z)
			cnameZones[sld] = z
			if err := delegate(sld, hosts); err != nil {
				return nil, err
			}
		}
	}
	// Operator infrastructure zones.
	outage := map[int]bool{}
	for i, op := range w.Operators {
		for _, d := range op.Spec.DNSOutages {
			if d == day {
				outage[i] = true
			}
		}
		if op.Spec.NSSLD != "" {
			z := infraZone(op.Spec.NSSLD, op.NSHosts)
			opSrvs[i].AddZone(z)
			if err := delegate(op.Spec.NSSLD, op.NSHosts); err != nil {
				return nil, err
			}
		}
		if sld := op.Spec.BaselineCNAMESLD; sld != "" {
			host := "ns1." + sld
			z := infraZone(sld, []string{host})
			extraSrvs[sld].AddZone(z)
			cnameZones[sld] = z
			if err := delegate(sld, []string{host}); err != nil {
				return nil, err
			}
		}
	}

	// Customer domain zones.
	for _, d := range w.Domains {
		st := w.StateFor(d, day)
		if !st.Exists {
			continue
		}
		if err := delegate(d.Name, st.NSHosts); err != nil {
			return nil, err
		}
		if st.Unmeasurable {
			continue // the owning server is down; delegation dangles
		}
		srv := hostServer[st.NSHosts[0]]
		if srv == nil {
			return nil, fmt.Errorf("worldsim: no server for NS host %s of %s", st.NSHosts[0], d.Name)
		}
		z := dnszone.MustNew(d.Name)
		z.MustAdd(rr(d.Name, dnswire.TypeSOA, dnswire.SOA{MName: st.NSHosts[0], RName: "hostmaster." + d.Name, Serial: uint32(day) + 1}))
		for _, h := range st.NSHosts {
			z.MustAdd(rr(d.Name, dnswire.TypeNS, dnswire.NS{Host: h}))
		}
		for _, a := range st.ApexA {
			z.MustAdd(rr(d.Name, dnswire.TypeA, dnswire.A{Addr: a}))
		}
		for _, a := range st.ApexAAAA {
			z.MustAdd(rr(d.Name, dnswire.TypeAAAA, dnswire.AAAA{Addr: a}))
		}
		www := "www." + d.Name
		if st.WWWCNAME != "" {
			z.MustAdd(rr(www, dnswire.TypeCNAME, dnswire.CNAME{Target: st.WWWCNAME}))
			// The expansion's address records live in the target SLD's
			// zone.
			if cz := cnameZones[sldOf(st.WWWCNAME)]; cz != nil {
				for _, a := range st.WWWA {
					cz.MustAdd(rr(st.WWWCNAME, dnswire.TypeA, dnswire.A{Addr: a}))
				}
				for _, a := range st.WWWAAAA {
					cz.MustAdd(rr(st.WWWCNAME, dnswire.TypeAAAA, dnswire.AAAA{Addr: a}))
				}
			}
		} else {
			for _, a := range st.WWWA {
				z.MustAdd(rr(www, dnswire.TypeA, dnswire.A{Addr: a}))
			}
			for _, a := range st.WWWAAAA {
				z.MustAdd(rr(www, dnswire.TypeAAAA, dnswire.AAAA{Addr: a}))
			}
		}
		srv.AddZone(z)
	}

	// Bind everything: UDP always, plus TCP when the transport supports
	// streams (so truncated responses can be retried per RFC 1035).
	start := func(srv *dnsserver.Server, addr netip.Addr) error {
		run, err := dnsserver.Start(srv, network, addr.String())
		if err != nil {
			return err
		}
		wi.running = append(wi.running, run)
		if stream, err := dnsserver.StartStream(srv, network, addr.String()); err == nil && stream != nil {
			wi.streams = append(wi.streams, stream)
		}
		return nil
	}
	if err := start(rootSrv, rootServerAddr); err != nil {
		wi.Close()
		return nil, err
	}
	if err := start(tldSrv, tldServerAddr); err != nil {
		wi.Close()
		return nil, err
	}
	for i, h := range w.Hosters {
		for _, a := range h.NSAddrs {
			if err := start(hosterSrvs[i], a); err != nil {
				wi.Close()
				return nil, err
			}
		}
	}
	for i, p := range w.Providers {
		for j, a := range p.NSAddrs {
			_ = j
			if err := start(provSrvs[i], a); err != nil {
				wi.Close()
				return nil, err
			}
		}
	}
	for i, op := range w.Operators {
		if outage[i] {
			continue // servers down: queries will time out
		}
		for _, a := range op.NSAddrs {
			if err := start(opSrvs[i], a); err != nil {
				wi.Close()
				return nil, err
			}
		}
	}
	for sld, srv := range extraSrvs {
		if err := start(srv, extraAddrs[sld]); err != nil {
			wi.Close()
			return nil, err
		}
	}
	return wi, nil
}

// sldOf returns the last two labels of a name ("x.y.edgekey.net" →
// "edgekey.net"). All synthetic infrastructure SLDs are two labels.
func sldOf(name string) string {
	labels := dnswire.Labels(name)
	if len(labels) <= 2 {
		return name
	}
	return labels[len(labels)-2] + "." + labels[len(labels)-1]
}

func rr(name string, t dnswire.Type, data dnswire.RData) dnswire.RR {
	return dnswire.RR{Name: name, Type: t, Class: dnswire.ClassIN, TTL: dnszone.DefaultTTL, Data: data}
}
