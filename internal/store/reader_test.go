package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dpsadopt/internal/simtime"
)

// readerRows materializes one partition through the streaming path, in
// the same shape rowsOf produces from a resident store.
func readerRows(t *testing.T, r *Reader, source string, day simtime.Day) []Row {
	t.Helper()
	dict, err := r.SharedDict()
	if err != nil {
		t.Fatal(err)
	}
	b, release, err := r.AcquireBatch(source, day)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var out []Row
	for i := 0; i < b.Rows(); i++ {
		row := b.Row(i, dict)
		row.ASNs = append([]uint32(nil), row.ASNs...)
		out = append(out, row)
	}
	return out
}

func TestReaderRoundTrip(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() < 3 {
		t.Fatalf("version = %d, want current", r.Version())
	}
	// Directory listing matches the store's partitions, in (source, day)
	// order.
	var want []PartitionKey
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			want = append(want, PartitionKey{Source: src, Day: day})
		}
	}
	if got := r.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	// Every partition decodes to exactly the original rows — Load is the
	// parity oracle.
	for _, k := range want {
		if w, h := rowsOf(s, k.Source, k.Day), readerRows(t, r, k.Source, k.Day); !reflect.DeepEqual(w, h) {
			t.Fatalf("%s streaming rows differ:\nwant %+v\ngot  %+v", k, w, h)
		}
	}
	// Info answers from the directory alone.
	in := r.Info()
	if !in.Directory || !in.CRCPartitions {
		t.Fatalf("Info() = %+v, want directory+CRC on a current file", in)
	}
	if in.Partitions != len(want) {
		t.Fatalf("Info().Partitions = %d, want %d", in.Partitions, len(want))
	}
	if !reflect.DeepEqual(in.Sources, s.Sources()) {
		t.Fatalf("Info().Sources = %v", in.Sources)
	}
	var rows int64
	for _, k := range want {
		rows += int64(len(rowsOf(s, k.Source, k.Day)))
	}
	if in.Rows != rows {
		t.Fatalf("Info().Rows = %d, want %d", in.Rows, rows)
	}
	if in.FirstDay != 0 || in.LastDay != 10 {
		t.Fatalf("Info() day range %v..%v", in.FirstDay, in.LastDay)
	}
	if in.FileBytes <= in.PartitionBytes || in.PartitionBytes <= 0 {
		t.Fatalf("Info() sizes: file=%d partitions=%d", in.FileBytes, in.PartitionBytes)
	}
	// A key absent from the directory is a plain error, not a panic or
	// an empty batch.
	if _, _, err := r.AcquireBatch("com", 99); err == nil {
		t.Fatal("missing partition acquired without error")
	}
}

// TestReaderV2Fallback: version 2 files have no directory
// (ErrNoDirectory territory), so Open falls back to one sequential full
// decode and still serves every partition.
func TestReaderV2Fallback(t *testing.T) {
	s := populatedStore()
	path := legacyV2File(t, s)
	if _, err := Directory(path); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("fixture is not a directoryless file: %v", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 2 {
		t.Fatalf("version = %d, want 2", r.Version())
	}
	in := r.Info()
	if in.Directory || in.CRCPartitions {
		t.Fatalf("Info() = %+v, want no directory / no CRCs on v2", in)
	}
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			if w, h := rowsOf(s, src, day), readerRows(t, r, src, day); !reflect.DeepEqual(w, h) {
				t.Fatalf("%s/%s v2 fallback rows differ", src, day)
			}
		}
	}
}

// TestReaderCorruptPartition: a bit-flipped partition surfaces as a
// *CorruptPartitionError from AcquireBatch — never corrupt rows — and
// the read-only path quarantines nothing on disk. Other partitions stay
// readable.
func TestReaderCorruptPartition(t *testing.T) {
	s := populatedStore()
	_, lay := saveWithLayout(t, s)
	victim := lay.parts[1]
	mut := append([]byte(nil), lay.data...)
	mut[victim.offset+victim.length/2] ^= 0xA5
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dpsa")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, release, err := r.AcquireBatch(victim.Source, victim.Day)
	var ce *CorruptPartitionError
	if !errors.As(err, &ce) {
		release()
		t.Fatalf("err = %v, want *CorruptPartitionError", err)
	}
	if ce.Source != victim.Source || ce.Day != victim.Day {
		t.Fatalf("error names %s/%s, want %s/%s", ce.Source, ce.Day, victim.Source, victim.Day)
	}
	// Streaming reads never move files aside: quarantine is Load's job.
	if _, err := os.Stat(filepath.Join(dir, "quarantine")); !os.IsNotExist(err) {
		t.Fatal("streaming read created a quarantine directory")
	}
	ok := lay.parts[0]
	if w, h := rowsOf(s, ok.Source, ok.Day), readerRows(t, r, ok.Source, ok.Day); !reflect.DeepEqual(w, h) {
		t.Fatal("intact partition unreadable next to a corrupt one")
	}
}

// TestReaderCacheAndEviction exercises the decoded-partition LRU: a
// re-acquire hits the cache, eviction keeps residency at the cap, and a
// pinned block survives eviction pressure until released.
func TestReaderCacheAndEviction(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCachePartitions(1)
	keys := r.Keys()

	b1, rel1, err := r.AcquireBatch(keys[0].Source, keys[0].Day)
	if err != nil {
		t.Fatal(err)
	}
	// Same key again: served from cache — the same backing arrays.
	b2, rel2, err := r.AcquireBatch(keys[0].Source, keys[0].Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Domains) > 0 && &b1.Domains[0] != &b2.Domains[0] {
		t.Fatal("re-acquire decoded a fresh copy instead of hitting the cache")
	}
	// While keys[0] is pinned twice, acquiring a second partition must
	// not evict it (pinned blocks are unevictable) — residency may
	// exceed the cap temporarily.
	b3, rel3, err := r.AcquireBatch(keys[1].Source, keys[1].Day)
	if err != nil {
		t.Fatal(err)
	}
	_ = b3
	r.mu.Lock()
	if _, ok := r.cache[keys[0]]; !ok {
		r.mu.Unlock()
		t.Fatal("pinned partition evicted")
	}
	over := len(r.cache)
	r.mu.Unlock()
	if over != 2 {
		t.Fatalf("cache holds %d blocks, want 2 (both pinned)", over)
	}
	rel1()
	rel2()
	rel3()
	// All pins released: eviction trims back to capacity 1.
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache holds %d blocks after release, want 1", n)
	}
}

// TestReaderConcurrentAcquire hammers one Reader from many goroutines
// under -race: every (goroutine, partition) read must match the oracle,
// and in-flight deduplication must not deadlock or double-decode into
// torn state.
func TestReaderConcurrentAcquire(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCachePartitions(2) // force eviction churn
	keys := r.Keys()
	want := make(map[PartitionKey][]Row)
	for _, k := range keys {
		want[k] = rowsOf(s, k.Source, k.Day)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := keys[(g+i)%len(keys)]
				rows := func() []Row {
					dict, err := r.SharedDict()
					if err != nil {
						errc <- err
						return nil
					}
					b, release, err := r.AcquireBatch(k.Source, k.Day)
					if err != nil {
						errc <- err
						return nil
					}
					defer release()
					var out []Row
					for i := 0; i < b.Rows(); i++ {
						row := b.Row(i, dict)
						row.ASNs = append([]uint32(nil), row.ASNs...)
						out = append(out, row)
					}
					return out
				}()
				if rows != nil && !reflect.DeepEqual(rows, want[k]) {
					errc <- fmt.Errorf("goroutine %d: %s rows diverged", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
