package obs

import (
	"io"
	"sync"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	if lo, hi := h.Quantile(-5), h.Quantile(5); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Fatalf("out-of-range q not clamped: %v/%v", lo, hi)
	}
	// Everything beyond the last bound saturates there.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}

// TestHistogramObserveNSnapshotRace runs bulk writers against registry
// snapshots and Prometheus rendering under the race detector, then
// checks nothing was lost.
func TestHistogramObserveNSnapshotRace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("race_hist_seconds", "race test", nil)

	const workers = 8
	const perWorker = 2000
	const batch = 3
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					reg.Snapshot()
					reg.WritePrometheus(io.Discard)
					h.Quantile(0.99)
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for i := 0; i < workers; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for j := 0; j < perWorker; j++ {
				h.ObserveN(0.001*float64(i+1), batch)
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := h.Count(); got != workers*perWorker*batch {
		t.Fatalf("count = %d, want %d", got, workers*perWorker*batch)
	}
	snap := reg.Snapshot().Histogram("race_hist_seconds")
	if snap.Count != workers*perWorker*batch {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
	if snap.P99 == 0 {
		t.Fatalf("p99 = 0 on populated histogram")
	}
}

func TestHistogramObserveNZero(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveN(1, 0)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("ObserveN(_, 0) recorded something: count %d sum %v", h.Count(), h.Sum())
	}
}
