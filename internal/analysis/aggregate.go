// Package analysis computes the paper's results (§4) from stored
// measurements: daily use counts and method breakdowns per provider and
// TLD (Figs 2–4), anomaly-cleaned growth trends (Figs 5–6), per-provider
// first-seen/last-seen flux (Fig 7), and on-demand peak-duration
// distributions (Fig 8, §3.4).
package analysis

import (
	"context"
	"fmt"
	"sort"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// DayCounts are the per-(source, day) aggregates every figure consumes.
type DayCounts struct {
	// Measured is the number of domains with any stored data point.
	Measured int
	// Any is the number of domains using at least one provider.
	Any int
	// PerProvider[p] counts domains with any reference to provider p.
	PerProvider []int
	// PerMethod[p] counts domains per reference kind toward provider p,
	// indexed AS, CNAME, NS.
	PerMethod [][3]int
}

// presence tracks one domain's detection intervals for one provider.
type presence struct {
	intervals []simtime.Range
}

func (p *presence) add(day simtime.Day) {
	n := len(p.intervals)
	if n > 0 && p.intervals[n-1].End == day {
		p.intervals[n-1].End = day + 1
		return
	}
	p.intervals = append(p.intervals, simtime.Range{Start: day, End: day + 1})
}

// Aggregator folds per-day detections into the aggregates. Feed days in
// ascending order per source via AddDay (or use Run).
type Aggregator struct {
	Refs  *core.References
	Store *store.Store
	// Workers bounds the detection fan-out of Run (0 = GOMAXPROCS).
	Workers int

	counts map[string]map[simtime.Day]*DayCounts
	// trackers[p] maps domain → presence, across the tracked sources
	// (the gTLDs by default; each domain lives in exactly one TLD).
	trackers []map[string]*presence
	// trackSources marks sources that feed interval tracking.
	trackSources map[string]bool
	lastDay      map[string]simtime.Day
	detectStats  core.RangeStats
	// degraded marks days committed with excess measurement failures;
	// the growth pipeline interpolates across them (see degraded.go).
	degraded map[simtime.Day]bool
}

// NewAggregator creates an aggregator; trackSources name the partitions
// whose detections feed the flux and peak analyses (pass the gTLDs).
func NewAggregator(refs *core.References, s *store.Store, trackSources []string) *Aggregator {
	a := &Aggregator{
		Refs:         refs,
		Store:        s,
		counts:       make(map[string]map[simtime.Day]*DayCounts),
		trackers:     make([]map[string]*presence, refs.NumProviders()),
		trackSources: make(map[string]bool),
		lastDay:      make(map[string]simtime.Day),
	}
	for i := range a.trackers {
		a.trackers[i] = make(map[string]*presence)
	}
	for _, s := range trackSources {
		a.trackSources[s] = true
	}
	return a
}

// AddDay detects and folds one (source, day) partition.
func (a *Aggregator) AddDay(source string, day simtime.Day) error {
	return a.AddDetections(core.DetectDay(a.Store, source, day, a.Refs))
}

// AddDetections folds one partition's precomputed detections — the hook
// DetectRange callers use to fan detection out across partitions and
// fold the results back in day order. Folding itself is not safe for
// concurrent use; call it from one goroutine.
func (a *Aggregator) AddDetections(det *core.DayDetections) error {
	source, day := det.Source, det.Day
	if last, ok := a.lastDay[source]; ok && day <= last {
		return fmt.Errorf("analysis: %s day %s added out of order (last %s)", source, day, last)
	}
	a.lastDay[source] = day
	dc := &DayCounts{
		Measured:    det.DomainsMeasured,
		Any:         det.CountAny(),
		PerProvider: make([]int, a.Refs.NumProviders()),
		PerMethod:   make([][3]int, a.Refs.NumProviders()),
	}
	track := a.trackSources[source]
	for p := range dc.PerProvider {
		dc.PerProvider[p] = det.Count(p)
		det.EachUse(p, func(id uint32, m core.Method) {
			if m.Has(core.RefAS) {
				dc.PerMethod[p][0]++
			}
			if m.Has(core.RefCNAME) {
				dc.PerMethod[p][1]++
			}
			if m.Has(core.RefNS) {
				dc.PerMethod[p][2]++
			}
			if track {
				dom := det.DomainName(id)
				pr := a.trackers[p][dom]
				if pr == nil {
					pr = &presence{}
					a.trackers[p][dom] = pr
				}
				pr.add(day)
			}
		})
	}
	days := a.counts[source]
	if days == nil {
		days = make(map[simtime.Day]*DayCounts)
		a.counts[source] = days
	}
	days[day] = dc
	return nil
}

// Run folds every stored day of the given sources, detecting all
// partitions in parallel (bounded by Workers) and folding the results in
// day order.
func (a *Aggregator) Run(sources []string) error {
	var parts []core.Partition
	for _, src := range sources {
		for _, day := range a.Store.Days(src) {
			parts = append(parts, core.Partition{Source: src, Day: day})
		}
	}
	dets, rst := core.DetectRangeStats(context.Background(), a.Store, parts, a.Refs, a.Workers)
	a.detectStats.Add(rst)
	for _, det := range dets {
		if err := a.AddDetections(det); err != nil {
			return err
		}
	}
	return nil
}

// DetectStats returns the stage-timing summary accumulated over Run
// calls (zero if detection was fed through AddDay/AddDetections).
func (a *Aggregator) DetectStats() core.RangeStats { return a.detectStats }

// Days returns the aggregated days for a source, sorted.
func (a *Aggregator) Days(source string) []simtime.Day {
	days := a.counts[source]
	out := make([]simtime.Day, 0, len(days))
	for d := range days {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts returns the aggregates of one (source, day), or nil.
func (a *Aggregator) Counts(source string, day simtime.Day) *DayCounts {
	return a.counts[source][day]
}

// SumAny returns the total DPS-using domains across sources on a day
// (sources must partition domains, as the TLDs do).
func (a *Aggregator) SumAny(sources []string, day simtime.Day) int {
	n := 0
	for _, src := range sources {
		if dc := a.counts[src][day]; dc != nil {
			n += dc.Any
		}
	}
	return n
}

// SumProvider is SumAny for one provider.
func (a *Aggregator) SumProvider(sources []string, p int, day simtime.Day) int {
	n := 0
	for _, src := range sources {
		if dc := a.counts[src][day]; dc != nil {
			n += dc.PerProvider[p]
		}
	}
	return n
}

// SumMethod sums one provider's method counter (0=AS, 1=CNAME, 2=NS).
func (a *Aggregator) SumMethod(sources []string, p, method int, day simtime.Day) int {
	n := 0
	for _, src := range sources {
		if dc := a.counts[src][day]; dc != nil {
			n += dc.PerMethod[p][method]
		}
	}
	return n
}

// SumMeasured sums the measured-domain denominators.
func (a *Aggregator) SumMeasured(sources []string, day simtime.Day) int {
	n := 0
	for _, src := range sources {
		if dc := a.counts[src][day]; dc != nil {
			n += dc.Measured
		}
	}
	return n
}

// Distribution computes Fig 4: the average share of each source in the
// measured namespace and in the DPS-using population.
func (a *Aggregator) Distribution(sources []string) (namespace, dpsUse map[string]float64) {
	namespace = make(map[string]float64)
	dpsUse = make(map[string]float64)
	var nsTotal, dpsTotal float64
	for _, src := range sources {
		for _, dc := range a.counts[src] {
			namespace[src] += float64(dc.Measured)
			dpsUse[src] += float64(dc.Any)
			nsTotal += float64(dc.Measured)
			dpsTotal += float64(dc.Any)
		}
	}
	for _, src := range sources {
		if nsTotal > 0 {
			namespace[src] /= nsTotal
		}
		if dpsTotal > 0 {
			dpsUse[src] /= dpsTotal
		}
	}
	return namespace, dpsUse
}

// UseClass is the §3.4 classification of how a domain uses a provider.
type UseClass int

// Use classes.
const (
	// ClassNotSeen: never detected.
	ClassNotSeen UseClass = iota
	// ClassAlwaysOn: one gap-free detection interval.
	ClassAlwaysOn
	// ClassSingle: one bounded interval — indistinguishable between a
	// short-lived always-on customer and a single on-demand episode
	// (§4.4.3).
	ClassSingle
	// ClassOnDemand: at least three detection peaks.
	ClassOnDemand
	// ClassIntermittent: two peaks.
	ClassIntermittent
)

var classNames = [...]string{"not-seen", "always-on", "single", "on-demand", "intermittent"}

// String names the class.
func (c UseClass) String() string { return classNames[c] }

// Classify labels domain's use of provider p, given the measurement
// window (to distinguish always-on from a bounded single interval).
func (a *Aggregator) Classify(p int, domain string, window simtime.Range) UseClass {
	pr := a.trackers[p][domain]
	if pr == nil || len(pr.intervals) == 0 {
		return ClassNotSeen
	}
	switch n := len(pr.intervals); {
	case n >= 3:
		return ClassOnDemand
	case n == 2:
		return ClassIntermittent
	default:
		iv := pr.intervals[0]
		if iv.Start <= window.Start && iv.End >= window.End {
			return ClassAlwaysOn
		}
		return ClassSingle
	}
}

// Intervals exposes a domain's detection intervals for provider p.
func (a *Aggregator) Intervals(p int, domain string) []simtime.Range {
	pr := a.trackers[p][domain]
	if pr == nil {
		return nil
	}
	return pr.intervals
}

// FluxBin is one Fig 7 window: domains first seen and last seen in it.
type FluxBin struct {
	Start simtime.Day
	In    int
	Out   int
}

// Delta is In - Out.
func (b FluxBin) Delta() int { return b.In - b.Out }

// Flux computes Fig 7 for one provider: first-seen/last-seen deltas in
// binDays-wide windows. Domains already present on the first measured day
// do not count as influx, and domains still present on the last day do
// not count as outflux — first/last sightings at the window boundaries
// are artifacts of the finite measurement, not adoption events.
func (a *Aggregator) Flux(p int, window simtime.Range, binDays int) []FluxBin {
	if binDays <= 0 {
		binDays = 14
	}
	nBins := (window.Len() + binDays - 1) / binDays
	bins := make([]FluxBin, nBins)
	for i := range bins {
		bins[i].Start = window.Start + simtime.Day(i*binDays)
	}
	for _, pr := range a.trackers[p] {
		first := pr.intervals[0].Start
		last := pr.intervals[len(pr.intervals)-1].End - 1
		if first > window.Start {
			if i := int(first-window.Start) / binDays; i >= 0 && i < nBins {
				bins[i].In++
			}
		}
		if last < window.End-1 {
			if i := int(last-window.Start) / binDays; i >= 0 && i < nBins {
				bins[i].Out++
			}
		}
	}
	return bins
}

// PeakStats is the Fig 8 material for one provider.
type PeakStats struct {
	// Domains is the size of the estimated on-demand set (≥ minPeaks
	// detection peaks).
	Domains int
	// Durations holds every peak length in days, sorted ascending.
	Durations []int
}

// P returns the q-quantile (0..1) of the peak durations, in days.
func (s PeakStats) P(q float64) int {
	if len(s.Durations) == 0 {
		return 0
	}
	i := int(q * float64(len(s.Durations)))
	if i >= len(s.Durations) {
		i = len(s.Durations) - 1
	}
	return s.Durations[i]
}

// CDF returns (duration, cumulative fraction) pairs for plotting.
func (s PeakStats) CDF() (days []int, frac []float64) {
	n := len(s.Durations)
	for i := 0; i < n; {
		j := i
		for j < n && s.Durations[j] == s.Durations[i] {
			j++
		}
		days = append(days, s.Durations[i])
		frac = append(frac, float64(j)/float64(n))
		i = j
	}
	return days, frac
}

// OnDemandPeaks estimates the on-demand set of provider p (domains with
// at least minPeaks peaks, §4.4.3 uses 3) and collects peak durations.
func (a *Aggregator) OnDemandPeaks(p, minPeaks int) PeakStats {
	var st PeakStats
	for _, pr := range a.trackers[p] {
		if len(pr.intervals) < minPeaks {
			continue
		}
		st.Domains++
		for _, iv := range pr.intervals {
			st.Durations = append(st.Durations, iv.Len())
		}
	}
	sort.Ints(st.Durations)
	return st
}

// Detected returns every domain ever detected using provider p across the
// tracked sources.
func (a *Aggregator) Detected(p int) []string {
	out := make([]string, 0, len(a.trackers[p]))
	for dom := range a.trackers[p] {
		out = append(out, dom)
	}
	sort.Strings(out)
	return out
}
