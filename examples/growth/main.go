// growth reproduces the paper's headline result (Fig 5) at small scale in
// about half a minute: DPS adoption grows ≈1.24× over 550 days while the
// namespace expands only ≈1.09×, once the third-party anomalies are
// cleaned out of the trend. The example also prints what the raw series
// looked like before cleaning, to show what the smoothing removes.
//
//	go run ./examples/growth
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"dpsadopt/internal/experiment"
	"dpsadopt/internal/report"
)

func main() {
	r, err := experiment.New(experiment.Config{Scale: 25_000, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("world:", r.World.Stats())
	fmt.Println("measuring 550 days; this takes a moment...")
	if err := r.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Raw combined series: the anomalies dominate.
	series := r.Figure2()
	comb := series[len(series)-1]
	maxV, maxI := 0.0, 0
	for i, v := range comb.Vals {
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	fmt.Printf("\nraw daily use: %0.f on day one, largest anomaly %0.f on %s\n",
		comb.Vals[0], maxV, comb.Days[maxI])

	// The cleaned trend (Fig 5).
	fmt.Println()
	report.Growth(os.Stdout, "Figure 5 (scaled): growth of DPS use vs namespace expansion", r.Figure5(), 12)

	// And the per-provider drivers the paper calls out (§4.2).
	fmt.Println("\nper-provider adoption growth (smoothed):")
	for p := range r.Refs.Providers {
		g := r.Agg.ProviderGrowth([]string{"com", "net", "org"}, p)
		bar := int((g.AdoptionGrowth() - 0.8) * 50)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  %-12s %.3fx |%s\n", r.Refs.Providers[p].Name, g.AdoptionGrowth(), strings.Repeat("#", bar))
	}
}
