package pfx2as

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dpsadopt/internal/bgp"
)

const sampleData = `# comment line
10.0.0.0	8	100
10.1.0.0	16	200
10.1.2.0	24	300
203.0.113.0	24	19551_55002
198.51.100.0	24	26415,21740
2001:db8::	32	64500
`

func parseSample(t *testing.T) []Entry {
	t.Helper()
	entries, err := Parse(strings.NewReader(sampleData))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestParse(t *testing.T) {
	entries := parseSample(t)
	if len(entries) != 6 {
		t.Fatalf("parsed %d entries", len(entries))
	}
	if entries[3].Origins == nil || !reflect.DeepEqual(entries[3].Origins, Origins{19551, 55002}) {
		t.Errorf("MOAS origins = %v", entries[3].Origins)
	}
	if !reflect.DeepEqual(entries[4].Origins, Origins{26415, 21740}) {
		t.Errorf("comma origins = %v", entries[4].Origins)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"10.0.0.0 8",              // missing origins
		"10.0.0.0 99 100",         // bad length
		"not-an-ip 8 100",         // bad prefix
		"10.0.0.0 8 not-an-asn",   // bad ASN
		"10.0.0.0 8 100 extra ok", // too many fields
	}
	for i, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("case %d accepted: %q", i, line)
		}
	}
}

func tables(entries []Entry) map[string]Table {
	return map[string]Table{
		"walk":   NewWalk(entries),
		"scan":   NewScan(entries),
		"search": NewSearch(entries),
	}
}

func TestLookupMostSpecific(t *testing.T) {
	entries := parseSample(t)
	cases := []struct {
		addr string
		want Origins
		ok   bool
	}{
		{"10.1.2.3", Origins{300}, true},
		{"10.1.0.1", Origins{200}, true},
		{"10.77.0.1", Origins{100}, true},
		{"203.0.113.200", Origins{19551, 55002}, true},
		{"192.168.1.1", nil, false},
		{"2001:db8::1", Origins{64500}, true},
		{"2001:db9::1", nil, false},
	}
	for name, tbl := range tables(entries) {
		for _, c := range cases {
			got, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
			if ok != c.ok || (c.ok && !reflect.DeepEqual(got, c.want)) {
				t.Errorf("%s.Lookup(%s) = %v, %v; want %v, %v", name, c.addr, got, ok, c.want, c.ok)
			}
		}
		if tbl.Len() != 6 {
			t.Errorf("%s.Len = %d", name, tbl.Len())
		}
	}
}

// TestImplementationsAgree cross-checks the three lookup structures on a
// randomly generated RIB: a property the ablation benches rely on.
func TestImplementationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var entries []Entry
		for i, n := 0, 20+r.Intn(60); i < n; i++ {
			bits := 8 + r.Intn(17)
			a := netip.AddrFrom4([4]byte{byte(r.Intn(32)), byte(r.Intn(256)), byte(r.Intn(256)), 0})
			entries = append(entries, Entry{
				Prefix:  netip.PrefixFrom(a, bits).Masked(),
				Origins: Origins{uint32(1 + r.Intn(1000))},
			})
		}
		walk, scan, search := NewWalk(entries), NewScan(entries), NewSearch(entries)
		for i := 0; i < 200; i++ {
			a := netip.AddrFrom4([4]byte{byte(r.Intn(32)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			ow, okw := walk.Lookup(a)
			os, oks := scan.Lookup(a)
			ob, okb := search.Lookup(a)
			if okw != oks || oks != okb {
				t.Logf("seed %d addr %v: ok %v/%v/%v", seed, a, okw, oks, okb)
				return false
			}
			if !okw {
				continue
			}
			// With duplicate prefixes the chosen origin set may differ
			// between scan (first wins) and walk (last wins); compare
			// only when unambiguous by using specificity.
			if !reflect.DeepEqual(ow, os) || !reflect.DeepEqual(os, ob) {
				// Accept if a duplicate prefix explains it.
				if !hasDuplicatePrefix(entries) {
					t.Logf("seed %d addr %v: origins %v/%v/%v", seed, a, ow, os, ob)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func hasDuplicatePrefix(entries []Entry) bool {
	seen := map[netip.Prefix]bool{}
	for _, e := range entries {
		if seen[e.Prefix] {
			return true
		}
		seen[e.Prefix] = true
	}
	return false
}

// TestRIBSnapshotRoundTrip feeds a bgp.RIB snapshot through Parse and
// checks lookups match the RIB's own view — the exact path the daily
// measurement pipeline takes.
func TestRIBSnapshotRoundTrip(t *testing.T) {
	rib := bgp.NewRIB()
	rib.Announce(netip.MustParsePrefix("10.0.0.0/8"), 100)
	rib.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200)
	rib.Announce(netip.MustParsePrefix("203.0.113.0/24"), 19551)
	rib.Announce(netip.MustParsePrefix("203.0.113.0/24"), 55002)

	entries, err := Parse(strings.NewReader(rib.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewWalk(entries)
	for _, a := range []string{"10.0.0.1", "10.1.2.3", "203.0.113.9"} {
		addr := netip.MustParseAddr(a)
		ribOrigins, _, ribOK := rib.Origins(addr)
		tblOrigins, tblOK := tbl.Lookup(addr)
		if ribOK != tblOK || len(ribOrigins) != len(tblOrigins) {
			t.Errorf("%s: rib %v/%v, table %v/%v", a, ribOrigins, ribOK, tblOrigins, tblOK)
			continue
		}
		for i := range ribOrigins {
			if uint32(ribOrigins[i]) != tblOrigins[i] {
				t.Errorf("%s: origin %d mismatch", a, i)
			}
		}
	}
}
