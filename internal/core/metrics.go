package core

import "dpsadopt/internal/obs"

// Detection-engine metrics. DetectRange is the shared parallel pass
// behind every figure, Table 1, and the dpsapi load-time index; these
// make its fan-out legible from /metrics while a build or run is in
// flight.
var (
	mDetectWorkers = obs.Default().Gauge("detect_workers",
		"goroutines currently inside DetectRange worker pools")
	mDetectPartitions = obs.Default().Counter("detect_partitions_total",
		"(source, day) partitions classified; rate() gives partitions/sec")
	mDetectRows = obs.Default().Counter("detect_rows_total",
		"rows classified against the reference table")
	mDetectSeconds = obs.Default().Histogram("detect_partition_seconds",
		"wall time to classify one partition", nil)
	mDetectRowRate = obs.Default().Histogram("detect_rows_per_second",
		"per-partition classification throughput (rows/sec)",
		[]float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8})
)
