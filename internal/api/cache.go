package api

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cached is one materialised response.
type cached struct {
	status int
	body   []byte
	// volatile marks a response that must not be cached because it
	// embeds live process state (/v1/stats carries uptime and RSS);
	// singleflight still coalesces concurrent misses.
	volatile bool
}

// cacheShard is one lock domain of the response cache: an LRU list plus
// its lookup map under a single mutex. Hits and misses both touch only
// this shard's lock, so concurrent requests for different keys contend
// only 1/shards of the time.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val cached
}

// shardedCache is a power-of-two-sharded LRU keyed by request key. Each
// served index generation is immutable, so entries never expire on
// their own — they fall off the cold end under capacity pressure, or
// are removed by sweep when a Publish invalidates the keys a delta
// touched. gen fences stale fills: a fill that began against an older
// index generation is rejected rather than resurrecting a swept key.
type shardedCache struct {
	shards []*cacheShard
	mask   uint64
	gen    atomic.Uint64
}

// newCache builds a cache holding ~entries responses across shards
// (shards is rounded up to a power of two).
func newCache(entries, shards int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := entries / n
	if per < 1 {
		per = 1
	}
	c := &shardedCache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

// fnv64a hashes the key for shard selection (inline to avoid the
// hash/fnv allocation on the hot path).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *shardedCache) shard(key string) *cacheShard {
	return c.shards[fnv64a(key)&c.mask]
}

// get returns the cached response and promotes it to most-recent.
func (c *shardedCache) get(key string) (cached, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return cached{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// generation returns the fence a fill must present to put. Read it
// before resolving the index the response is computed from.
func (c *shardedCache) generation() uint64 { return c.gen.Load() }

// put inserts (or refreshes) a response, evicting the coldest entry of
// the shard when full. gen is the generation observed when the fill
// began: if an invalidation bumped it since, the value may describe a
// replaced index and is dropped. The check happens under the shard
// lock, so it cannot race a concurrent sweep of the same key.
func (c *shardedCache) put(key string, val cached, gen uint64) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.gen.Load() != gen {
		mCacheStaleFills.Inc()
		return
	}
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		if back := s.ll.Back(); back != nil {
			s.ll.Remove(back)
			delete(s.items, back.Value.(*lruEntry).key)
			mCacheEvictions.Inc()
		}
	}
	s.items[key] = s.ll.PushFront(&lruEntry{key: key, val: val})
}

// sweep bumps the generation (fencing off in-flight fills that started
// against the previous index) and removes every resident entry the
// match function selects, returning how many were dropped.
func (c *shardedCache) sweep(match func(key string) bool) int {
	c.gen.Add(1)
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		var doomed []*list.Element
		for key, el := range s.items {
			if match(key) {
				doomed = append(doomed, el)
			}
		}
		for _, el := range doomed {
			s.ll.Remove(el)
			delete(s.items, el.Value.(*lruEntry).key)
			dropped++
		}
		s.mu.Unlock()
	}
	return dropped
}

// len reports the number of resident entries (test/diagnostic use).
func (c *shardedCache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
