package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fixtureStore builds a tiny dataset by hand: alpha.com uses the first
// provider (CNAME+NS) on days 0-2 with a method change on day 2,
// beta.com uses it via AS on day 0 only, gamma.com uses CloudFlare on
// days 1-2, and quiet.com never exhibits a reference.
func fixtureStore(t *testing.T) (*store.Store, *core.References) {
	t.Helper()
	refs := core.MustGroundTruth()
	p0 := refs.Providers[0] // Akamai: has ASNs, CNAME SLDs and NS SLDs
	cf, ok := refs.ProviderIndex("CloudFlare")
	if !ok {
		t.Fatal("no CloudFlare in ground truth")
	}
	pcf := refs.Providers[cf]

	s := store.New()
	for day := simtime.Day(0); day < 3; day++ {
		w := s.NewWriter("com", day)
		// alpha.com: CNAME on all days, NS only from day 2.
		w.AddStr("alpha.com", store.KindWWWCNAME, "www.alpha.com."+p0.CNAMESLDs[0])
		if day == 2 {
			w.AddStr("alpha.com", store.KindNS, "ns1."+p0.NSSLDs[0])
		}
		if day == 0 {
			w.AddAddr("beta.com", store.KindApexA, mustAddr("192.0.2.7"), []uint32{p0.ASNs[0]})
		}
		if day >= 1 {
			w.AddStr("gamma.com", store.KindNS, "ada.ns."+pcf.NSSLDs[0])
		}
		// quiet.com is measured but unprotected.
		w.AddAddr("quiet.com", store.KindApexA, mustAddr("198.51.100.9"), nil)
		w.Commit()
	}
	return s, refs
}

func fixtureServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, refs := fixtureStore(t)
	return NewServer(NewIndex(s, refs), cfg)
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func decodeAs[T any](t *testing.T, body string) T {
	t.Helper()
	var v T
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return v
}

func TestDomainRoute(t *testing.T) {
	srv := fixtureServer(t, Config{})
	code, body := get(t, srv.Handler(), "/v1/domain/alpha.com")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	h := decodeAs[DomainHistory](t, body)
	if h.Domain != "alpha.com" || h.Days != 3 {
		t.Fatalf("history = %+v", h)
	}
	if h.FirstSeen != simtime.Day(0).String() || h.LastSeen != simtime.Day(2).String() {
		t.Fatalf("window = %s..%s", h.FirstSeen, h.LastSeen)
	}
	if len(h.Providers) != 1 {
		t.Fatalf("providers = %+v", h.Providers)
	}
	p := h.Providers[0]
	if p.Provider != "Akamai" || p.Methods != "CNAME+NS" || p.Days != 3 {
		t.Fatalf("use = %+v", p)
	}
	// The method change on day 2 splits the history into two intervals.
	if len(p.Intervals) != 2 || p.Intervals[0].Methods != "CNAME" || p.Intervals[1].Methods != "CNAME+NS" {
		t.Fatalf("intervals = %+v", p.Intervals)
	}
	if p.PeakRun != 2 {
		t.Fatalf("peak run = %d", p.PeakRun)
	}

	// Uppercase and trailing-dot forms normalise to the same domain.
	if code, _ := get(t, srv.Handler(), "/v1/domain/ALPHA.com."); code != http.StatusOK {
		t.Fatalf("normalised lookup status = %d", code)
	}
}

func TestDomainRouteErrors(t *testing.T) {
	srv := fixtureServer(t, Config{})
	for path, want := range map[string]int{
		"/v1/domain/quiet.com":                   http.StatusNotFound, // measured, never protected
		"/v1/domain/nosuch.example":              http.StatusNotFound,
		"/v1/domain/" + strings.Repeat("x", 300): http.StatusBadRequest,
		"/v1/domain/bad%5Cname":                  http.StatusBadRequest,
		"/v1/nosuchroute":                        http.StatusNotFound, // mux-level, no API body
	} {
		code, body := get(t, srv.Handler(), path)
		if code != want {
			t.Errorf("%s: status = %d want %d (%s)", path, code, want, body)
		}
		// API-level failures carry the uniform {"error": ...} body.
		if strings.HasPrefix(path, "/v1/domain/") && !strings.Contains(body, `"error"`) {
			t.Errorf("%s: no error body: %s", path, body)
		}
	}
}

func TestSeriesRoute(t *testing.T) {
	srv := fixtureServer(t, Config{})
	code, body := get(t, srv.Handler(), "/v1/provider/cloudflare/series")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	s := decodeAs[ProviderSeries](t, body)
	if s.Provider != "CloudFlare" {
		t.Fatalf("provider = %q (case-insensitive match expected)", s.Provider)
	}
	if len(s.Raw) != 3 || len(s.Smoothed) != 3 || len(s.Days) != 3 {
		t.Fatalf("series lengths: %+v", s)
	}
	want := []int64{0, 1, 1} // gamma.com from day 1
	for i, v := range want {
		if s.Raw[i] != v {
			t.Fatalf("raw = %v, want %v", s.Raw, want)
		}
	}
	if code, _ := get(t, srv.Handler(), "/v1/provider/nonesuch/series"); code != http.StatusNotFound {
		t.Fatalf("unknown provider status = %d", code)
	}
	// Provider names with spaces work URL-encoded.
	if code, _ := get(t, srv.Handler(), "/v1/provider/F5%20Networks/series"); code != http.StatusOK {
		t.Fatalf("encoded provider status = %d", code)
	}
}

func TestDayRoute(t *testing.T) {
	srv := fixtureServer(t, Config{})
	code, body := get(t, srv.Handler(), "/v1/day/"+simtime.Day(0).String())
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	d := decodeAs[DayInfo](t, body)
	if d.Measured != 3 { // alpha, beta, quiet
		t.Fatalf("measured = %d", d.Measured)
	}
	if d.AnyUse != 2 || d.Providers["Akamai"] != 2 || d.Providers["CloudFlare"] != 0 {
		t.Fatalf("day info = %+v", d)
	}
	if code, _ := get(t, srv.Handler(), "/v1/day/not-a-date"); code != http.StatusBadRequest {
		t.Fatalf("bad date status = %d", code)
	}
	if code, _ := get(t, srv.Handler(), "/v1/day/1999-01-01"); code != http.StatusNotFound {
		t.Fatalf("absent day status = %d", code)
	}
}

func TestStatsRoute(t *testing.T) {
	srv := fixtureServer(t, Config{})
	code, body := get(t, srv.Handler(), "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	st := decodeAs[Stats](t, body)
	if st.DomainsDetected != 3 || st.DaysIndexed != 3 || st.ExampleDomain != "alpha.com" {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Providers) != 9 || len(st.Sources) != 1 || st.Sources[0] != "com" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimit429(t *testing.T) {
	srv := fixtureServer(t, Config{QPS: 0.001, Burst: 2})
	shed := 0
	for i := 0; i < 5; i++ {
		code, _ := get(t, srv.Handler(), "/v1/stats")
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	// Two burst tokens (plus at most a refill rounding), the rest shed.
	if shed < 2 {
		t.Fatalf("shed %d of 5, want >= 2", shed)
	}
}

// TestOverloadSheds503 drives the concurrency gate to saturation with a
// deliberately slow in-flight request and proves the waiting request is
// shed with 503 at its deadline while the occupant still completes.
func TestOverloadSheds503(t *testing.T) {
	srv := fixtureServer(t, Config{MaxInflight: 1, Timeout: 60 * time.Millisecond})
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	var slow atomic.Bool
	srv.testHook = func(string) {
		entered <- struct{}{}
		if slow.CompareAndSwap(true, false) {
			<-block
		}
	}
	slow.Store(true)

	type res struct {
		code int
	}
	results := make(chan res, 2)
	go func() {
		code, _ := get(t, srv.Handler(), "/v1/stats")
		results <- res{code}
	}()
	<-entered // the slow request holds the gate
	go func() {
		code, _ := get(t, srv.Handler(), "/v1/domain/alpha.com")
		results <- res{code}
	}()

	first := <-results // the waiter sheds at its 60ms deadline
	if first.code != http.StatusServiceUnavailable {
		t.Fatalf("waiting request status = %d, want 503", first.code)
	}
	close(block)
	second := <-results // the occupant finishes normally
	if second.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", second.code)
	}
}

// TestCoalescing proves N concurrent misses for one key run one index
// walk: the first request blocks inside the handler while the rest pile
// up, and on release everyone gets the same bytes from a single
// execution.
func TestCoalescing(t *testing.T) {
	s, refs := fixtureStore(t)
	srv := NewServer(NewIndex(s, refs), Config{MaxInflight: 64})
	var execs atomic.Int64
	block := make(chan struct{})
	first := make(chan struct{}, 1)
	srv.flightHook = func() {
		if execs.Add(1) == 1 {
			first <- struct{}{}
			<-block
		}
	}

	const n = 16
	coal0 := mCoalesced.Value()
	var wg sync.WaitGroup
	bodies := make([]string, n)
	codes := make([]int, n)
	launch := func(i int) {
		defer wg.Done()
		codes[i], bodies[i] = get(t, srv.Handler(), "/v1/domain/alpha.com")
	}
	wg.Add(1)
	go launch(0)
	<-first // leader is inside the index walk
	for i := 1; i < n; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Give the followers time to join the flight, then release.
	time.Sleep(100 * time.Millisecond)
	close(block)
	wg.Wait()

	for i := range bodies {
		if codes[i] != http.StatusOK || bodies[i] != bodies[0] {
			t.Fatalf("request %d: code %d, diverging body", i, codes[i])
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("index walks = %d, want 1 (coalescing failed)", got)
	}
	// Every follower either joined the flight or (if scheduled after the
	// leader finished) hit the cache; at least one must have coalesced
	// because the leader was provably blocked when it launched.
	if d := mCoalesced.Value() - coal0; d < 1 || d > n-1 {
		t.Fatalf("coalesced = %d, want 1..%d", d, n-1)
	}
}

// TestCacheHitPath asserts the second identical request is served from
// the cache (counter-visible) and that disabling the cache disables it.
func TestCacheHitPath(t *testing.T) {
	srv := fixtureServer(t, Config{})
	hits0, miss0 := mCacheHits.Value(), mCacheMisses.Value()
	if code, _ := get(t, srv.Handler(), "/v1/domain/alpha.com"); code != 200 {
		t.Fatal("first request failed")
	}
	if code, _ := get(t, srv.Handler(), "/v1/domain/alpha.com"); code != 200 {
		t.Fatal("second request failed")
	}
	if d := mCacheMisses.Value() - miss0; d != 1 {
		t.Fatalf("misses = %d, want 1", d)
	}
	if d := mCacheHits.Value() - hits0; d != 1 {
		t.Fatalf("hits = %d, want 1", d)
	}

	// 404s are cached too (immutable facts of the dataset)...
	get(t, srv.Handler(), "/v1/domain/nosuch.example")
	hits1 := mCacheHits.Value()
	get(t, srv.Handler(), "/v1/domain/nosuch.example")
	if mCacheHits.Value() != hits1+1 {
		t.Fatal("404 not served from cache")
	}

	// ...but a cache-disabled server never hits.
	off := fixtureServer(t, Config{CacheEntries: -1})
	hits2 := mCacheHits.Value()
	get(t, off.Handler(), "/v1/stats")
	get(t, off.Handler(), "/v1/stats")
	if mCacheHits.Value() != hits2 {
		t.Fatal("disabled cache produced hits")
	}
}

// TestConcurrentMixedKeys hammers the full stack from many goroutines
// under -race: every response must be valid and identical per key.
func TestConcurrentMixedKeys(t *testing.T) {
	srv := fixtureServer(t, Config{MaxInflight: 32, CacheEntries: 8})
	paths := []string{
		"/v1/domain/alpha.com",
		"/v1/domain/beta.com",
		"/v1/domain/gamma.com",
		"/v1/provider/Akamai/series",
		"/v1/day/" + simtime.Day(1).String(),
		"/v1/stats",
	}
	// /v1/stats embeds live process state (uptime, RSS) and the rolling
	// observatory digest, both volatile by design; strip them so the
	// comparison covers the dataset facts.
	stable := func(p, body string) string {
		if p != "/v1/stats" {
			return body
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Errorf("%s: invalid JSON: %v", p, err)
			return body
		}
		delete(m, "process")
		delete(m, "observatory")
		out, _ := json.Marshal(m)
		return string(out)
	}
	want := make(map[string]string)
	for _, p := range paths {
		code, body := get(t, srv.Handler(), p)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", p, code)
		}
		want[p] = stable(p, body)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := paths[(seed+i)%len(paths)]
				code, body := get(t, srv.Handler(), p)
				if code != http.StatusOK || stable(p, body) != want[p] {
					t.Errorf("%s: code %d, body diverged", p, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
