// Package report renders the reproduction's tables and figures as text
// (with simple ASCII charts) and as CSV, from the structures produced by
// internal/experiment. Every artifact of the paper's evaluation section
// has a renderer here; cmd/dpsreport wires them to flags.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/experiment"
	"dpsadopt/internal/simtime"
)

// Table1 renders the data-set statistics table.
func Table1(w io.Writer, rows []experiment.SourceStats) {
	fmt.Fprintf(w, "Table 1: data set\n")
	fmt.Fprintf(w, "%-8s %-12s %6s %10s %12s %12s\n", "Source", "start", "days", "#SLDs", "#DPs", "size")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %6d %10d %12d %12s\n",
			r.Source, r.FirstDay, r.Days, r.UniqueSLDs, r.DataPoints, byteSize(r.CompressedBytes))
	}
	var slds, dps, size int64
	for _, r := range rows {
		slds += int64(r.UniqueSLDs)
		dps += r.DataPoints
		size += r.CompressedBytes
	}
	fmt.Fprintf(w, "%-8s %-12s %6s %10d %12d %12s\n", "Total", "", "", slds, dps, byteSize(size))
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Table2 renders discovered vs ground-truth provider references.
func Table2(w io.Writer, res *experiment.Table2Result) {
	fmt.Fprintf(w, "Table 2: DPS provider references (discovered by the §3.3 procedure)\n")
	for i := range res.Discovered {
		mark := "EXACT"
		if !res.Exact[i] {
			mark = "PARTIAL"
		}
		fmt.Fprintf(w, "[%s]\n  discovered: %s\n  truth:      %s\n", mark, res.Discovered[i], res.Truth[i])
	}
}

// seriesChart renders a down-sampled ASCII chart of one or more series
// sharing a day axis.
func seriesChart(w io.Writer, days []simtime.Day, series map[string][]float64, order []string, samples int) {
	if len(days) == 0 {
		return
	}
	if samples <= 0 || samples > len(days) {
		samples = len(days)
	}
	maxV := 0.0
	for _, vals := range series {
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
	}
	step := float64(len(days)-1) / float64(samples-1)
	if samples == 1 {
		step = 0
	}
	const width = 50
	fmt.Fprintf(w, "%-12s", "date")
	for _, name := range order {
		fmt.Fprintf(w, " %12s", name)
	}
	fmt.Fprintln(w, "  (bar: "+order[len(order)-1]+")")
	for s := 0; s < samples; s++ {
		i := int(math.Round(float64(s) * step))
		if i >= len(days) {
			i = len(days) - 1
		}
		fmt.Fprintf(w, "%-12s", days[i])
		var last float64
		for _, name := range order {
			v := series[name][i]
			last = v
			fmt.Fprintf(w, " %12.0f", v)
		}
		bar := 0
		if maxV > 0 {
			bar = int(last / maxV * width)
		}
		fmt.Fprintf(w, "  |%s\n", strings.Repeat("#", bar))
	}
}

// Figure2 renders the per-TLD daily use series.
func Figure2(w io.Writer, series []experiment.Series, samples int) {
	fmt.Fprintln(w, "Figure 2: DPS use and zone breakdown (domains using any of the nine providers)")
	if len(series) == 0 {
		return
	}
	m := map[string][]float64{}
	var order []string
	for _, s := range series {
		m[s.Name] = s.Vals
		order = append(order, s.Name)
	}
	seriesChart(w, series[0].Days, m, order, samples)
}

// Figure3 renders the nine provider panels with method breakdowns.
func Figure3(w io.Writer, panels []experiment.Figure3Panel, samples int) {
	fmt.Fprintln(w, "Figure 3: DPS use per provider and protection method breakdown")
	for _, p := range panels {
		fmt.Fprintf(w, "\n-- %s --\n", p.Provider)
		seriesChart(w, p.Days, map[string][]float64{
			"total": p.Total, "AS": p.AS, "CNAME": p.CNAME, "NS": p.NS,
		}, []string{"total", "AS", "CNAME", "NS"}, samples)
	}
}

// Figure4 renders the namespace vs DPS-use distributions.
func Figure4(w io.Writer, res experiment.Figure4Result) {
	fmt.Fprintln(w, "Figure 4: DPS use and gTLD distribution over namespace")
	fmt.Fprintf(w, "%-6s %12s %12s\n", "zone", "namespace", "DPS use")
	for _, tld := range []string{"com", "net", "org"} {
		fmt.Fprintf(w, "%-6s %11.2f%% %11.2f%%\n", tld, res.Namespace[tld]*100, res.DPSUse[tld]*100)
	}
}

// Growth renders a Fig 5 / Fig 6 trend.
func Growth(w io.Writer, title string, g analysis.GrowthResult, samples int) {
	fmt.Fprintln(w, title)
	if len(g.Days) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	m := map[string][]float64{"expansion%": scale100(g.Expansion), "adoption%": scale100(g.Adoption)}
	order := []string{"expansion%", "adoption%"}
	if len(g.Expansion) == 0 {
		m = map[string][]float64{"adoption%": scale100(g.Adoption)}
		order = order[1:]
	}
	seriesChart(w, g.Days, m, order, samples)
	if len(g.Expansion) > 0 {
		fmt.Fprintf(w, "final: adoption %.3fx, expansion %.3fx\n", g.AdoptionGrowth(), g.ExpansionGrowth())
	} else {
		fmt.Fprintf(w, "final: adoption %.3fx\n", g.AdoptionGrowth())
	}
}

func scale100(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * 100
	}
	return out
}

// Figure7 renders the per-provider flux panels.
func Figure7(w io.Writer, panels []experiment.Figure7Panel) {
	fmt.Fprintln(w, "Figure 7: flux of DPS use per provider (2-week bins, first-seen/last-seen)")
	for _, p := range panels {
		fmt.Fprintf(w, "\n-- %s --\n", p.Provider)
		maxAbs := 1
		for _, b := range p.Bins {
			if a := abs(b.Delta()); a > maxAbs {
				maxAbs = a
			}
		}
		for _, b := range p.Bins {
			if b.In == 0 && b.Out == 0 {
				continue
			}
			bar := b.Delta() * 20 / maxAbs
			pad := strings.Repeat(" ", 20)
			var lhs, rhs string
			if bar >= 0 {
				lhs, rhs = pad, strings.Repeat("+", bar)
			} else {
				lhs = strings.Repeat(" ", 20+bar) + strings.Repeat("-", -bar)
			}
			fmt.Fprintf(w, "%-12s in=%-6d out=%-6d delta=%-7d %s|%s\n", b.Start, b.In, b.Out, b.Delta(), lhs, rhs)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Figure8 renders the peak-duration CDFs.
func Figure8(w io.Writer, panels []experiment.Figure8Panel) {
	fmt.Fprintln(w, "Figure 8: on-demand peak duration occurrences (domains with >=3 peaks)")
	for _, p := range panels {
		fmt.Fprintf(w, "\n-- %s -- (%d on-demand domains, %d peaks, p80 = %dd)\n",
			p.Provider, p.Stats.Domains, len(p.Stats.Durations), p.P80)
		days, frac := p.Stats.CDF()
		for i := range days {
			if i > 0 && i < len(days)-1 && frac[i] < 0.795 && days[i]%7 != 0 {
				continue // thin the listing
			}
			fmt.Fprintf(w, "  P(duration <= %3dd) = %.2f |%s\n", days[i], frac[i], strings.Repeat("#", int(frac[i]*40)))
		}
	}
}

// Classification renders the §3.4 use-class split per provider.
func Classification(w io.Writer, rows []experiment.ClassificationRow) {
	fmt.Fprintln(w, "Use classification per provider (§3.4: always-on vs on-demand)")
	fmt.Fprintf(w, "%-12s %10s %10s %8s %7s\n", "provider", "always-on", "on-demand", "single", "other")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %10d %8d %7d\n", r.Provider, r.AlwaysOn, r.OnDemand, r.Single, r.Other)
	}
}

// Anomalies renders the §4.4.1 attribution report.
func Anomalies(w io.Writer, reports []experiment.AnomalyReport) {
	fmt.Fprintln(w, "Third-party anomaly attribution (largest day-over-day swing per provider)")
	for _, r := range reports {
		att := r.Attribution
		fmt.Fprintf(w, "%-12s %s: %+d domains (%d joined, %d left)",
			r.Provider, att.Swing.Day, att.Swing.Delta, att.Joined, att.Left)
		if len(att.Shared) > 0 {
			fmt.Fprintf(w, " — %.0f%% share NS SLD %q", att.Shared[0].Fraction*100, att.Shared[0].SLD)
		}
		fmt.Fprintln(w)
	}
}

// SeriesCSV writes a day-indexed multi-column CSV.
func SeriesCSV(w io.Writer, days []simtime.Day, cols map[string][]float64, order []string) error {
	if _, err := fmt.Fprintf(w, "date,%s\n", strings.Join(order, ",")); err != nil {
		return err
	}
	for i, d := range days {
		row := make([]string, 0, len(order)+1)
		row = append(row, d.String())
		for _, name := range order {
			row = append(row, fmt.Sprintf("%g", cols[name][i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
