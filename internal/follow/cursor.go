package follow

import (
	"encoding/json"
	"os"
	"sort"

	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// The restart cursor is the follower's only durable state: the journal
// feed position plus a snapshot of which partitions it has applied,
// discovered, or permanently skipped. With it, a restarted follower
// resumes the feed where it stopped; without it (or when the snapshot no
// longer matches the journal on disk) the follower falls back to the
// pre-cursor behavior — replay from the start and dedupe.
//
// Correctness invariant: the saved journal offset is only restored when
// every partition the cursor claims applied is either re-seeded into the
// boot index or re-reachable through a recorded spool path. Otherwise a
// partition committed before the offset would be lost — neither in the
// index nor ever re-delivered by the feed — so the restore degrades to a
// full journal scan instead.

// cursorEntry is one partition in the cursor snapshot. Spool is set for
// coord-mode partitions folded from a spool file (the path the follower
// used), empty for seeded or dataset-mode partitions.
type cursorEntry struct {
	Source string      `json:"source"`
	Day    simtime.Day `json:"day"`
	Spool  string      `json:"spool,omitempty"`
}

func (e cursorEntry) key() store.PartitionKey {
	return store.PartitionKey{Source: e.Source, Day: e.Day}
}

// cursorFile is the on-disk format (JSON, written atomically).
type cursorFile struct {
	Mode          Mode          `json:"mode"`
	JournalOffset int64         `json:"journal_offset,omitempty"`
	JournalSeq    uint64        `json:"journal_seq,omitempty"`
	Applied       []cursorEntry `json:"applied,omitempty"`
	Pending       []cursorEntry `json:"pending,omitempty"`
	Skipped       []cursorEntry `json:"skipped,omitempty"`
}

// saveCursor snapshots the follower's feed position after an apply or
// skip. Best-effort: a failed save costs a restarted follower some
// re-reading, never correctness, so it is logged and swallowed.
func (f *Follower) saveCursor() {
	if f.cursorPath == "" {
		return
	}
	c := cursorFile{Mode: f.mode}
	if f.reader != nil {
		c.JournalOffset, c.JournalSeq = f.reader.Offset()
	}
	for k := range f.applied {
		c.Applied = append(c.Applied, cursorEntry{Source: k.Source, Day: k.Day, Spool: f.appliedSpool[k]})
	}
	for k, spool := range f.pending {
		c.Pending = append(c.Pending, cursorEntry{Source: k.Source, Day: k.Day, Spool: spool})
	}
	for k := range f.skipped {
		c.Skipped = append(c.Skipped, cursorEntry{Source: k.Source, Day: k.Day})
	}
	for _, ents := range [][]cursorEntry{c.Applied, c.Pending, c.Skipped} {
		sort.Slice(ents, func(i, j int) bool {
			if ents[i].Source != ents[j].Source {
				return ents[i].Source < ents[j].Source
			}
			return ents[i].Day < ents[j].Day
		})
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return
	}
	tmp := f.cursorPath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err == nil {
		err = os.Rename(tmp, f.cursorPath)
	}
	if err != nil {
		obs.Logger().Warn("follow: cursor save failed", "path", f.cursorPath, "err", err)
	}
}

// restoreCursor folds a previously saved cursor into a freshly booted
// follower (called once, from the first Poll, after Seed). Skipped
// partitions stay skipped in both modes. In coord mode, applied
// partitions absent from the boot seed are queued for re-detection from
// their recorded spools, pending discoveries are re-queued, and — only
// when nothing applied has become unreachable — the journal reader seeks
// to the saved offset so history before it is never re-read.
func (f *Follower) restoreCursor() {
	if f.cursorPath == "" {
		return
	}
	data, err := os.ReadFile(f.cursorPath)
	if err != nil {
		return // first boot: no cursor yet
	}
	log := obs.Logger().With("component", "follow", "cursor", f.cursorPath)
	var c cursorFile
	if err := json.Unmarshal(data, &c); err != nil || c.Mode != f.mode {
		log.Warn("ignoring unreadable or mode-mismatched cursor", "err", err)
		return
	}
	for _, e := range c.Skipped {
		f.skipped[e.key()] = true
	}
	if f.mode != ModeCoord {
		log.Info("cursor restored", "skipped", len(c.Skipped))
		return
	}
	seekable := true
	requeued := 0
	for _, e := range c.Applied {
		k := e.key()
		if f.applied[k] || f.skipped[k] {
			continue
		}
		if e.Spool == "" {
			// Applied by the previous instance but not in this boot's
			// index and not re-reachable: only a full journal scan can
			// re-deliver it.
			seekable = false
			continue
		}
		f.pending[k] = e.Spool
		requeued++
	}
	for _, e := range c.Pending {
		k := e.key()
		if !f.applied[k] && !f.skipped[k] {
			f.pending[k] = e.Spool
		}
	}
	sought := false
	if seekable && c.JournalOffset > 0 {
		// Resume validates the offset against the journal on disk; a
		// replaced or truncated journal fails validation and the reader
		// stays at the start (replay + dedupe, the safe fallback).
		sought = f.reader.Resume(c.JournalOffset, c.JournalSeq)
	}
	log.Info("cursor restored",
		"journal_offset", c.JournalOffset, "seek", sought,
		"requeued", requeued, "pending", len(c.Pending), "skipped", len(c.Skipped))
}
