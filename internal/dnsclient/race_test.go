package dnsclient

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dpsadopt/internal/dnswire"
)

// TestQueriesSentConcurrent exercises the query counter from both sides
// at once: one goroutine resolving (the Resolver itself is
// single-goroutine by contract) while a stats scraper polls QueriesSent.
// Run under -race this proves the counter is safe to read
// mid-resolution, which is exactly what the obs collector and
// dpsmeasure's progress logging do.
func TestQueriesSentConcurrent(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)

	var resolvers sync.WaitGroup
	resolvers.Add(1)
	go func() {
		defer resolvers.Done()
		for j := 0; j < 100; j++ {
			if _, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA); err != nil {
				t.Errorf("resolve: %v", err)
				return
			}
		}
	}()

	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		last := int64(0)
		for {
			select {
			case <-done:
				return
			default:
			}
			n := r.QueriesSent()
			if n < last {
				t.Error("QueriesSent went backwards")
				return
			}
			last = n
		}
	}()

	resolvers.Wait()
	close(done)
	poller.Wait()
	if r.QueriesSent() == 0 {
		t.Fatal("no queries counted")
	}
}

// TestResolveCancelled verifies a cancelled context aborts resolution
// before any further network exchange.
func TestResolveCancelled(t *testing.T) {
	w := newTestWorld(t)
	r := w.resolver(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Resolve(ctx, "examp.le", dnswire.TypeA); !errors.Is(err, context.Canceled) {
		t.Fatalf("Resolve on cancelled ctx = %v, want context.Canceled", err)
	}
}
