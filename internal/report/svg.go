package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dpsadopt/internal/simtime"
)

// A minimal SVG line-chart renderer, so the reproduction can emit actual
// figure files (results/*.svg) with nothing but the standard library.
// It draws a titled plot area with y-axis gridlines, month ticks on the
// x-axis, one polyline per series, and a legend.

// SVGSeries is one line of an SVG chart.
type SVGSeries struct {
	Name string
	Vals []float64
}

// svgPalette holds distinguishable stroke colors.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	svgW, svgH                 = 880, 420
	svgML, svgMR, svgMT, svgMB = 70, 20, 40, 50
)

// WriteSVGChart renders a day-indexed line chart.
func WriteSVGChart(w io.Writer, title string, days []simtime.Day, series []SVGSeries, logY bool) error {
	if len(days) == 0 || len(series) == 0 {
		return fmt.Errorf("report: empty chart %q", title)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Vals {
			if logY && v <= 0 {
				continue
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if math.IsInf(minV, 1) {
		minV, maxV = 0, 1
	}
	if !logY {
		minV = math.Min(minV, 0)
	}
	if maxV <= minV {
		maxV = minV + 1
	}

	plotW := float64(svgW - svgML - svgMR)
	plotH := float64(svgH - svgMT - svgMB)
	x := func(i int) float64 {
		if len(days) == 1 {
			return float64(svgML)
		}
		return float64(svgML) + plotW*float64(i)/float64(len(days)-1)
	}
	y := func(v float64) float64 {
		var f float64
		if logY {
			f = (math.Log10(v) - math.Log10(minV)) / (math.Log10(maxV) - math.Log10(minV))
		} else {
			f = (v - minV) / (maxV - minV)
		}
		return float64(svgMT) + plotH*(1-f)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, svgW, svgH)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, svgML, xmlEscape(title))

	// Y gridlines and labels.
	for i := 0; i <= 5; i++ {
		var v float64
		if logY {
			v = math.Pow(10, math.Log10(minV)+(math.Log10(maxV)-math.Log10(minV))*float64(i)/5)
		} else {
			v = minV + (maxV-minV)*float64(i)/5
		}
		yy := y(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, svgML, yy, svgW-svgMR, yy)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end" fill="#444">%s</text>`, svgML-6, yy+4, formatTick(v))
	}
	// X ticks: first of each quarter.
	for i, d := range days {
		t := d.Date()
		if t.Day() == 1 && (int(t.Month())-1)%3 == 0 {
			xx := x(i)
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`, xx, svgMT, xx, svgH-svgMB)
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle" fill="#444">%s</text>`, xx, svgH-svgMB+18, t.Format("Jan '06"))
		}
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, svgML, svgH-svgMB, svgW-svgMR, svgH-svgMB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, svgML, svgMT, svgML, svgH-svgMB)

	// Series.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts strings.Builder
		for i, v := range s.Vals {
			if i >= len(days) {
				break
			}
			if logY && v <= 0 {
				continue
			}
			fmt.Fprintf(&pts, "%.1f,%.1f ", x(i), y(v))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`, strings.TrimSpace(pts.String()), color)
		// Legend.
		lx := svgML + 12 + si*150
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`, lx, svgMT-8, lx+22, svgMT-8, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#222">%s</text>`, lx+28, svgMT-4, xmlEscape(s.Name))
	}
	sb.WriteString(`</svg>`)
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
