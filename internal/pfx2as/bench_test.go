package pfx2as

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
)

// Ablation: the per-prefix-length hash walk (the default) against the
// sorted-interval binary search and the naive linear scan, on a
// Routeviews-sized synthetic table (DESIGN.md §5).

func benchEntries(n int) []Entry {
	r := rand.New(rand.NewSource(7))
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		bits := []int{8, 12, 16, 20, 24}[r.Intn(5)]
		a := netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), 0})
		entries = append(entries, Entry{
			Prefix:  netip.PrefixFrom(a, bits).Masked(),
			Origins: Origins{uint32(1 + r.Intn(65000))},
		})
	}
	return entries
}

func benchAddrs(n int) []netip.Addr {
	r := rand.New(rand.NewSource(9))
	addrs := make([]netip.Addr, n)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
	}
	return addrs
}

func benchLookup(b *testing.B, tbl Table) {
	addrs := benchAddrs(1024)
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(addrs[i%len(addrs)]); ok {
			hits++
		}
	}
	_ = hits
}

func BenchmarkAblationPfx2asWalk(b *testing.B) {
	benchLookup(b, NewWalk(benchEntries(50_000)))
}

func BenchmarkAblationPfx2asSearch(b *testing.B) {
	benchLookup(b, NewSearch(benchEntries(50_000)))
}

func BenchmarkAblationPfx2asScan(b *testing.B) {
	benchLookup(b, NewScan(benchEntries(2_000))) // linear scan: smaller table or the bench never finishes
}

func BenchmarkPfx2asParse(b *testing.B) {
	entries := benchEntries(10_000)
	var text []byte
	for _, e := range entries {
		text = append(text, []byte(e.Prefix.Addr().String())...)
		text = append(text, '\t')
		text = appendInt(text, e.Prefix.Bits())
		text = append(text, '\t')
		text = appendInt(text, int(e.Origins[0]))
		text = append(text, '\n')
	}
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
