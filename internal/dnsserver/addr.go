package dnsserver

import (
	"fmt"
	"net/netip"
	"strings"

	"dpsadopt/internal/transport"
)

// parseListenAddr accepts "ip" (implying port 53) or "ip:port".
func parseListenAddr(addr string) (netip.AddrPort, error) {
	if strings.Contains(addr, ":") && !strings.Contains(addr, "]") {
		// Could be host:port or a bare IPv6 literal; try AddrPort first.
		if ap, err := netip.ParseAddrPort(addr); err == nil {
			return ap, nil
		}
	}
	if ap, err := netip.ParseAddrPort(addr); err == nil {
		return ap, nil
	}
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("dnsserver: bad listen address %q: %w", addr, err)
	}
	return netip.AddrPortFrom(a, transport.DNSPort), nil
}
