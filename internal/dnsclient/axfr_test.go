package dnsclient

import (
	"net/netip"
	"testing"

	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

// axfrWorld serves a TLD-like zone with many delegations over UDP + TCP.
func axfrWorld(t *testing.T, delegations int) (*transport.Mem, netip.AddrPort) {
	t.Helper()
	network := transport.NewMem(31)
	z := dnszone.MustNew("test")
	z.MustAdd(dnswire.RR{Name: "test", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{
		MName: "a.gtld-servers.net", RName: "nstld.test", Serial: 42,
	}})
	z.MustAdd(dnswire.RR{Name: "test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "a.gtld-servers.net"}})
	for i := 0; i < delegations; i++ {
		name := domainName(i)
		z.MustAdd(dnswire.RR{Name: name, Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns1.hostco.example"}})
		z.MustAdd(dnswire.RR{Name: name, Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns2.hostco.example"}})
	}
	srv := dnsserver.New()
	srv.AddZone(z)
	run, err := dnsserver.Start(srv, network, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { run.Stop() })
	stream, err := dnsserver.StartStream(srv, network, "10.0.0.1")
	if err != nil || stream == nil {
		t.Fatalf("stream start: %v", err)
	}
	t.Cleanup(func() { stream.Stop() })
	return network, netip.MustParseAddrPort("10.0.0.1:53")
}

func domainName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[i%26], letters[(i/26)%26], letters[(i/676)%26]}) + ".test"
}

func axfrResolver(t *testing.T, network *transport.Mem, server netip.AddrPort) *Resolver {
	t.Helper()
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.1"), []netip.AddrPort{server}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestAXFRTransfersWholeZone(t *testing.T) {
	const n = 500 // >1 batch of 200 records
	network, server := axfrWorld(t, n)
	r := axfrResolver(t, network, server)
	records, err := r.AXFR(server, "test")
	if err != nil {
		t.Fatal(err)
	}
	// SOA + apex NS + 2×n delegations.
	want := 2 + 2*n
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
	if records[0].Type != dnswire.TypeSOA {
		t.Error("transfer does not start with SOA")
	}
	// Derive the Stage I domain list from the transferred zone.
	seen := map[string]bool{}
	for _, rr := range records {
		if rr.Type == dnswire.TypeNS && rr.Name != "test" {
			seen[rr.Name] = true
		}
	}
	if len(seen) != n {
		t.Errorf("distinct delegations = %d, want %d", len(seen), n)
	}
}

func TestAXFRRefusedForForeignZone(t *testing.T) {
	network, server := axfrWorld(t, 5)
	r := axfrResolver(t, network, server)
	if _, err := r.AXFR(server, "other"); err == nil {
		t.Error("foreign zone transfer accepted")
	}
}

func TestAXFRNoStreamSupport(t *testing.T) {
	// A resolver whose transport lacks streams cannot AXFR. Use a plain
	// UDP-only wrapper around Mem.
	network, server := axfrWorld(t, 2)
	wrapped := datagramOnly{network}
	r, err := NewResolver(wrapped, netip.MustParseAddr("10.9.0.2"), []netip.AddrPort{server}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.AXFR(server, "test"); err == nil {
		t.Error("AXFR without stream support accepted")
	}
}

// datagramOnly hides the stream methods of a network.
type datagramOnly struct{ inner *transport.Mem }

func (d datagramOnly) Listen(a netip.AddrPort) (transport.Conn, error) { return d.inner.Listen(a) }
func (d datagramOnly) Dial(a netip.Addr) (transport.Conn, error)       { return d.inner.Dial(a) }
