// Package ipam provides small IP-address-management helpers used by the
// world simulator: carving subnets out of operator supernets and handing
// out host addresses inside a prefix. Everything is deterministic — the
// n-th allocation from a pool is always the same address — which keeps
// simulation runs reproducible.
package ipam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
)

// Errors returned by allocators.
var (
	ErrExhausted = errors.New("ipam: pool exhausted")
	ErrBadSize   = errors.New("ipam: requested size does not fit")
)

// addrToU64 maps an IPv4 address to an integer. Only IPv4 is supported by
// the arithmetic helpers; the simulator assigns IPv6 addresses through
// direct construction where needed.
func addrToU64(a netip.Addr) (uint64, error) {
	if !a.Is4() {
		return 0, fmt.Errorf("ipam: %v is not IPv4", a)
	}
	b := a.As4()
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]), nil
}

func u64ToAddr(v uint64) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// NthAddr returns the n-th address inside the IPv4 prefix (0-based),
// erroring if n is outside the prefix.
func NthAddr(p netip.Prefix, n uint64) (netip.Addr, error) {
	base, err := addrToU64(p.Masked().Addr())
	if err != nil {
		return netip.Addr{}, err
	}
	size := uint64(1) << (32 - p.Bits())
	if n >= size {
		return netip.Addr{}, fmt.Errorf("%w: index %d in %v", ErrExhausted, n, p)
	}
	return u64ToAddr(base + n), nil
}

// NthSubnet carves the n-th subnet of the given length out of the IPv4
// prefix (0-based).
func NthSubnet(p netip.Prefix, bits int, n uint64) (netip.Prefix, error) {
	if bits < p.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("%w: /%d out of %v", ErrBadSize, bits, p)
	}
	count := uint64(1) << (bits - p.Bits())
	if n >= count {
		return netip.Prefix{}, fmt.Errorf("%w: subnet %d of %d", ErrExhausted, n, count)
	}
	base, err := addrToU64(p.Masked().Addr())
	if err != nil {
		return netip.Prefix{}, err
	}
	step := uint64(1) << (32 - bits)
	return netip.PrefixFrom(u64ToAddr(base+n*step), bits), nil
}

// SubnetCount returns how many subnets of the given length fit in p.
func SubnetCount(p netip.Prefix, bits int) uint64 {
	if bits < p.Bits() || bits > 32 {
		return 0
	}
	return 1 << (bits - p.Bits())
}

// HostCount returns the number of addresses in an IPv4 prefix.
func HostCount(p netip.Prefix) uint64 {
	if !p.Addr().Is4() {
		return 0
	}
	return 1 << (32 - p.Bits())
}

// Pool deterministically hands out host addresses from an IPv4 prefix.
// The zero value is not usable; construct with NewPool.
type Pool struct {
	prefix netip.Prefix
	next   uint64
}

// NewPool creates an address pool over an IPv4 prefix.
func NewPool(p netip.Prefix) (*Pool, error) {
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("ipam: pool prefix %v is not IPv4", p)
	}
	return &Pool{prefix: p.Masked()}, nil
}

// MustPool is NewPool for trusted input; it panics on error.
func MustPool(s string) *Pool {
	p, err := NewPool(netip.MustParsePrefix(s))
	if err != nil {
		panic(err)
	}
	return p
}

// Prefix returns the pool's covering prefix.
func (p *Pool) Prefix() netip.Prefix { return p.prefix }

// Alloc returns the next unused address.
func (p *Pool) Alloc() (netip.Addr, error) {
	a, err := NthAddr(p.prefix, p.next)
	if err != nil {
		return netip.Addr{}, err
	}
	p.next++
	return a, nil
}

// AllocSubnet returns the next unused subnet of the given length, advancing
// the pool cursor past it. Mixing Alloc and AllocSubnet is supported: the
// subnet is aligned upward from the cursor.
func (p *Pool) AllocSubnet(bits int) (netip.Prefix, error) {
	if bits < p.prefix.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("%w: /%d from %v", ErrBadSize, bits, p.prefix)
	}
	step := uint64(1) << (32 - bits)
	// Align cursor to the subnet size.
	aligned := (p.next + step - 1) / step * step
	if aligned+step > HostCount(p.prefix) {
		return netip.Prefix{}, fmt.Errorf("%w: %v", ErrExhausted, p.prefix)
	}
	base, err := NthAddr(p.prefix, aligned)
	if err != nil {
		return netip.Prefix{}, err
	}
	p.next = aligned + step
	return netip.PrefixFrom(base, bits), nil
}

// Remaining returns how many individual addresses are left in the pool.
func (p *Pool) Remaining() uint64 { return HostCount(p.prefix) - p.next }

// MaskBitsFor returns the smallest prefix length whose block holds at
// least n addresses.
func MaskBitsFor(n uint64) int {
	if n <= 1 {
		return 32
	}
	return 32 - bits.Len64(n-1)
}

// Nth6Addr returns the n-th address inside an IPv6 prefix (0-based),
// supporting offsets within the low 64 bits.
func Nth6Addr(p netip.Prefix, n uint64) (netip.Addr, error) {
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		return netip.Addr{}, fmt.Errorf("ipam: %v is not IPv6", p)
	}
	if p.Bits() > 64 {
		return netip.Addr{}, fmt.Errorf("%w: v6 prefixes longer than /64", ErrBadSize)
	}
	b := p.Masked().Addr().As16()
	lo := binary.BigEndian.Uint64(b[8:])
	binary.BigEndian.PutUint64(b[8:], lo+n)
	return netip.AddrFrom16(b), nil
}

// Pool6 deterministically carves subnets out of an IPv6 prefix.
type Pool6 struct {
	prefix netip.Prefix
	next   uint64
}

// MustPool6 creates an IPv6 subnet pool; it panics on invalid input.
func MustPool6(s string) *Pool6 {
	p := netip.MustParsePrefix(s)
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		panic(fmt.Sprintf("ipam: %v is not IPv6", p))
	}
	return &Pool6{prefix: p.Masked()}
}

// AllocSubnet returns the next /bits subnet (bits must be in
// (p.Bits(), 64]; subnets are carved sequentially at the subnet stride).
func (p *Pool6) AllocSubnet(bits int) (netip.Prefix, error) {
	if bits <= p.prefix.Bits() || bits > 64 {
		return netip.Prefix{}, fmt.Errorf("%w: /%d from %v", ErrBadSize, bits, p.prefix)
	}
	count := uint64(1) << (bits - p.prefix.Bits())
	if p.next >= count {
		return netip.Prefix{}, fmt.Errorf("%w: %v", ErrExhausted, p.prefix)
	}
	b := p.prefix.Addr().As16()
	hi := binary.BigEndian.Uint64(b[:8])
	lo := binary.BigEndian.Uint64(b[8:])
	// Stride in the 128-bit space: 1 << (128 - bits).
	if bits <= 64 {
		hi += p.next << (64 - bits)
	} else {
		lo += p.next << (128 - bits)
	}
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	p.next++
	return netip.PrefixFrom(netip.AddrFrom16(b), bits), nil
}
