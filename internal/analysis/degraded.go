package analysis

import (
	"sort"

	"dpsadopt/internal/simtime"
)

// Degraded-day handling. The paper's crawl had partial measurement days —
// "measurement or data processing failures led to eight days of missing
// data" and visible dips like March 2016 in Fig 5 — and its growth
// analysis had to keep those artifacts from reading as adoption change.
// The experiment layer marks a day degraded when the wire failure rate
// exceeds its threshold; the growth pipeline then masks those days and
// bridges them by linear interpolation before smoothing, so a chaos-struck
// window cannot drag the trend down.

// MarkDegraded records that a day's measurement was committed in a
// degraded state (excess resolution failures). Safe to call repeatedly.
func (a *Aggregator) MarkDegraded(day simtime.Day) {
	if a.degraded == nil {
		a.degraded = make(map[simtime.Day]bool)
	}
	a.degraded[day] = true
}

// IsDegraded reports whether a day was committed degraded.
func (a *Aggregator) IsDegraded(day simtime.Day) bool { return a.degraded[day] }

// DegradedDays returns the degraded days, sorted.
func (a *Aggregator) DegradedDays() []simtime.Day {
	out := make([]simtime.Day, 0, len(a.degraded))
	for d := range a.degraded {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// degradedMask builds the per-index mask for a day series.
func (a *Aggregator) degradedMask(days []simtime.Day) []bool {
	if len(a.degraded) == 0 {
		return nil
	}
	mask := make([]bool, len(days))
	any := false
	for i, d := range days {
		if a.degraded[d] {
			mask[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return mask
}

// Interpolate returns vals with masked entries replaced by linear
// interpolation between the nearest unmasked neighbours. Masked runs at
// the edges clamp to the nearest unmasked value; an all-masked (or
// mask-less) series is returned as a copy.
func Interpolate(vals []float64, mask []bool) []float64 {
	out := append([]float64(nil), vals...)
	if len(mask) != len(vals) {
		return out
	}
	prev := -1 // last unmasked index seen
	for i := 0; i <= len(out); i++ {
		if i < len(out) && mask[i] {
			continue
		}
		if gap := i - prev - 1; gap > 0 {
			switch {
			case prev < 0 && i >= len(out):
				// Everything masked: nothing to bridge from.
			case prev < 0:
				for j := 0; j < i; j++ {
					out[j] = out[i]
				}
			case i >= len(out):
				for j := prev + 1; j < i; j++ {
					out[j] = out[prev]
				}
			default:
				step := (out[i] - out[prev]) / float64(i-prev)
				for j := prev + 1; j < i; j++ {
					out[j] = out[prev] + step*float64(j-prev)
				}
			}
		}
		prev = i
	}
	return out
}

// SmoothMasked applies the §4.2 smoothing pipeline with degraded days
// bridged first, so a masked trough neither survives the despike pass as
// a fake anomaly nor drags the median down.
func SmoothMasked(vals []float64, mask []bool) []float64 {
	return Smooth(Interpolate(vals, mask))
}
