package analysis

import (
	"math"
	"testing"

	"dpsadopt/internal/simtime"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestInterpolate(t *testing.T) {
	// Middle gap: linear bridge.
	got := Interpolate([]float64{10, 0, 0, 40}, []bool{false, true, true, false})
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("middle gap: got %v, want %v", got, want)
		}
	}
	// Leading and trailing gaps clamp to the nearest unmasked value.
	got = Interpolate([]float64{0, 0, 5, 0}, []bool{true, true, false, true})
	want = []float64{5, 5, 5, 5}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("edge gaps: got %v, want %v", got, want)
		}
	}
	// All masked or no mask: values unchanged.
	if got := Interpolate([]float64{1, 2}, []bool{true, true}); got[0] != 1 || got[1] != 2 {
		t.Errorf("all-masked: got %v", got)
	}
	if got := Interpolate([]float64{1, 2}, nil); got[0] != 1 || got[1] != 2 {
		t.Errorf("nil mask: got %v", got)
	}
	// Input must not be modified.
	in := []float64{10, 0, 40}
	Interpolate(in, []bool{false, true, false})
	if in[1] != 0 {
		t.Error("Interpolate modified its input")
	}
}

// TestSmoothMaskedRecoversTrend is the Fig 5 story in miniature: a steady
// growth series with a degraded window carved out. The despike pass alone
// repairs narrow dips, but a degraded stretch wider than ~30% of the
// despike window drags the rolling lower-quantile baseline down with it —
// exactly the failure the mask exists for. Masked smoothing bridges the
// stretch by interpolation and recovers the trend.
func TestSmoothMaskedRecoversTrend(t *testing.T) {
	const n = 400
	truth := make([]float64, n)
	vals := make([]float64, n)
	mask := make([]bool, n)
	for i := range truth {
		truth[i] = 1000 + 2*float64(i) // slow linear growth
		vals[i] = truth[i]
	}
	for i := 170; i < 230; i++ { // 60-day degraded stretch: counts collapse
		vals[i] = truth[i] * 0.3
		mask[i] = true
	}
	masked := SmoothMasked(vals, mask)
	unmasked := Smooth(vals)
	worstMasked, worstUnmasked := 0.0, 0.0
	for i := 150; i < 260; i++ {
		dm := math.Abs(masked[i]-truth[i]) / truth[i]
		du := math.Abs(unmasked[i]-truth[i]) / truth[i]
		if dm > worstMasked {
			worstMasked = dm
		}
		if du > worstUnmasked {
			worstUnmasked = du
		}
	}
	if worstMasked > 0.05 {
		t.Errorf("masked smoothing deviates %.1f%% from the true trend", worstMasked*100)
	}
	if worstUnmasked < 0.15 {
		t.Errorf("unmasked smoothing deviates only %.1f%%: the degraded dip should poison it (test setup broken?)", worstUnmasked*100)
	}
	// With nothing masked, SmoothMasked is exactly Smooth.
	a, b := SmoothMasked(truth, nil), Smooth(truth)
	for i := range a {
		if !almost(a[i], b[i]) {
			t.Fatal("SmoothMasked(nil mask) != Smooth")
		}
	}
}

func TestAggregatorDegradedDays(t *testing.T) {
	a := NewAggregator(oneProviderRefs(t), nil, nil)
	if a.IsDegraded(5) || len(a.DegradedDays()) != 0 {
		t.Fatal("fresh aggregator has degraded days")
	}
	a.MarkDegraded(9)
	a.MarkDegraded(3)
	a.MarkDegraded(9) // idempotent
	if !a.IsDegraded(9) || !a.IsDegraded(3) || a.IsDegraded(4) {
		t.Error("IsDegraded wrong")
	}
	got := a.DegradedDays()
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("DegradedDays = %v", got)
	}
	mask := a.degradedMask([]simtime.Day{2, 3, 4, 9})
	want := []bool{false, true, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
	if a.degradedMask([]simtime.Day{1, 2}) != nil {
		t.Error("mask with no degraded days should be nil")
	}
}
