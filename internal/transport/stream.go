package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Stream support: DNS falls back to TCP when a UDP response is truncated
// (RFC 1035 §4.2.2). StreamNetwork is implemented by all three transports:
// Mem uses in-process pipes, UDP uses kernel TCP sockets, and MappedUDP
// reuses its NAT table for TCP connections on the loopback.

// StreamListener accepts incoming stream connections at a fixed address.
type StreamListener interface {
	// Accept blocks for the next connection.
	Accept() (net.Conn, error)
	// Addr returns the (simulated) bound address.
	Addr() netip.AddrPort
	// Close stops the listener; blocked Accepts return ErrClosed.
	Close() error
}

// StreamNetwork creates stream endpoints alongside datagram ones.
type StreamNetwork interface {
	// ListenStream binds a listener at addr (a name server's TCP :53).
	ListenStream(addr netip.AddrPort) (StreamListener, error)
	// DialStream connects to a listener.
	DialStream(local netip.Addr, remote netip.AddrPort) (net.Conn, error)
}

// ---- Mem streams ----

// memStreams is lazily attached to a Mem network.
type memStreams struct {
	mu        sync.Mutex
	listeners map[netip.AddrPort]*memListener
}

func (n *Mem) streams() *memStreams {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.streamTab == nil {
		n.streamTab = &memStreams{listeners: make(map[netip.AddrPort]*memListener)}
	}
	return n.streamTab
}

// ListenStream implements StreamNetwork.
func (n *Mem) ListenStream(addr netip.AddrPort) (StreamListener, error) {
	st := n.streams()
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: stream %v", ErrAddrInUse, addr)
	}
	l := &memListener{
		addr:   addr,
		popst:  st,
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	st.listeners[addr] = l
	return l, nil
}

// DialStream implements StreamNetwork.
func (n *Mem) DialStream(_ netip.Addr, remote netip.AddrPort) (net.Conn, error) {
	st := n.streams()
	st.mu.Lock()
	l, ok := st.listeners[remote]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: stream %v", ErrNoRoute, remote)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, ErrClosed
	}
}

type memListener struct {
	addr   netip.AddrPort
	popst  *memStreams
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() netip.AddrPort { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.popst.mu.Lock()
		delete(l.popst.listeners, l.addr)
		l.popst.mu.Unlock()
	})
	return nil
}

// ---- real TCP streams (UDP network) ----

// ListenStream implements StreamNetwork over kernel TCP.
func (UDP) ListenStream(addr netip.AddrPort) (StreamListener, error) {
	tl, err := net.ListenTCP("tcp", net.TCPAddrFromAddrPort(addr))
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: tl, addr: tl.Addr().(*net.TCPAddr).AddrPort()}, nil
}

// DialStream implements StreamNetwork over kernel TCP.
func (UDP) DialStream(_ netip.Addr, remote netip.AddrPort) (net.Conn, error) {
	return net.DialTimeout("tcp", remote.String(), 2*time.Second)
}

type tcpListener struct {
	l    *net.TCPListener
	addr netip.AddrPort
}

func (t *tcpListener) Accept() (net.Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if ne, ok := err.(net.Error); ok && !ne.Timeout() {
			return nil, ErrClosed
		}
		return nil, err
	}
	return c, nil
}

func (t *tcpListener) Addr() netip.AddrPort { return t.addr }
func (t *tcpListener) Close() error         { return t.l.Close() }

// ---- MappedUDP streams: NAT-translated TCP on the loopback ----

// ListenStream implements StreamNetwork: a kernel TCP listener on
// loopback registered in the translation table under the simulated
// address's TCP slot.
func (m *MappedUDP) ListenStream(addr netip.AddrPort) (StreamListener, error) {
	tl, err := UDP{}.ListenStream(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, dup := m.simToRealTCP[addr]; dup {
		m.mu.Unlock()
		tl.Close()
		return nil, fmt.Errorf("%w: stream %v", ErrAddrInUse, addr)
	}
	m.simToRealTCP[addr] = tl.Addr()
	m.mu.Unlock()
	return &mappedListener{m: m, sim: addr, inner: tl}, nil
}

// DialStream implements StreamNetwork.
func (m *MappedUDP) DialStream(local netip.Addr, remote netip.AddrPort) (net.Conn, error) {
	m.mu.Lock()
	real, ok := m.simToRealTCP[remote]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: stream %v", ErrNoRoute, remote)
	}
	return UDP{}.DialStream(local, real)
}

type mappedListener struct {
	m     *MappedUDP
	sim   netip.AddrPort
	inner StreamListener
}

func (l *mappedListener) Accept() (net.Conn, error) { return l.inner.Accept() }
func (l *mappedListener) Addr() netip.AddrPort      { return l.sim }
func (l *mappedListener) Close() error {
	l.m.mu.Lock()
	delete(l.m.simToRealTCP, l.sim)
	l.m.mu.Unlock()
	return l.inner.Close()
}
