package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"net/netip"
	"testing"

	"dpsadopt/internal/simtime"
)

// Ablation: columnar vs row-interleaved block encoding, measured by
// compressed size and encode throughput (DESIGN.md §5). The columnar
// layout groups each field's bytes so flate sees long runs of repeating
// dictionary IDs; row-major interleaving destroys those runs.

func benchBlock(rows int) (*Store, simtime.Day) {
	s := New()
	w := s.NewWriter("com", 1)
	addr := netip.MustParseAddr("104.16.3.7")
	for i := 0; i < rows/3; i++ {
		name := fmt.Sprintf("dom%06d.com", i)
		w.AddAddr(name, KindApexA, addr, []uint32{13335})
		w.AddStr(name, KindNS, "kate.ns.cloudflare.com")
		w.AddStr(name, KindNS, "mike.ns.cloudflare.com")
	}
	w.Commit()
	return s, 1
}

// rowMajorEncode interleaves the same data row by row.
func rowMajorEncode(b *dayBlock) []byte {
	var buf bytes.Buffer
	var tmp [4]byte
	for i := range b.domains {
		binary.LittleEndian.PutUint32(tmp[:], b.domains[i])
		buf.Write(tmp[:])
		buf.WriteByte(byte(b.kinds[i]))
		binary.LittleEndian.PutUint32(tmp[:], b.addrs[i])
		buf.Write(tmp[:])
		binary.LittleEndian.PutUint32(tmp[:], b.strs[i])
		buf.Write(tmp[:])
		binary.LittleEndian.PutUint32(tmp[:], b.asnOff[i])
		buf.Write(tmp[:])
	}
	return buf.Bytes()
}

func compress(raw []byte) int64 {
	var out countWriter
	fw, _ := flate.NewWriter(&out, flate.BestSpeed)
	_, _ = fw.Write(raw)
	_ = fw.Close()
	return out.n
}

func blockOf(s *Store, day simtime.Day) *dayBlock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks["com"][day]
}

func BenchmarkAblationStoreLayoutColumnar(b *testing.B) {
	s, day := benchBlock(30_000)
	blk := blockOf(s, day)
	b.ReportAllocs()
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		size = compress(encodeBlock(blk))
	}
	b.ReportMetric(float64(size), "compressed-bytes")
}

func BenchmarkAblationStoreLayoutRowMajor(b *testing.B) {
	s, day := benchBlock(30_000)
	blk := blockOf(s, day)
	b.ReportAllocs()
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		size = compress(rowMajorEncode(blk))
	}
	b.ReportMetric(float64(size), "compressed-bytes")
}

func TestColumnarCompressesBetter(t *testing.T) {
	s, day := benchBlock(30_000)
	blk := blockOf(s, day)
	col := compress(encodeBlock(blk))
	row := compress(rowMajorEncode(blk))
	if col >= row {
		t.Errorf("columnar %d bytes >= row-major %d bytes", col, row)
	}
}

func BenchmarkStoreScan(b *testing.B) {
	s, day := benchBlock(30_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEachRow("com", day, func(Row) { n++ })
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	addr := netip.MustParseAddr("104.16.3.7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		w := s.NewWriter("com", 1)
		for j := 0; j < 1000; j++ {
			w.AddAddr("example.com", KindApexA, addr, []uint32{13335})
		}
		w.Commit()
	}
}

// Directory-lookup micro-benchmark: the follower resolves requested
// partitions against a dataset directory on every delta apply, so the
// per-lookup cost is keyed (map) rather than a linear scan. The scan
// variant is kept as the ablation baseline.

func benchDirectory(n int) []PartitionInfo {
	dir := make([]PartitionInfo, 0, n)
	for i := 0; i < n; i++ {
		dir = append(dir, PartitionInfo{
			Source: fmt.Sprintf("src%02d", i%16),
			Day:    simtime.Day(i / 16),
			Rows:   i,
		})
	}
	return dir
}

func BenchmarkDirectoryLookupKeyed(b *testing.B) {
	dir := benchDirectory(8192)
	byKey := IndexDirectory(dir)
	keys := make([]PartitionKey, len(dir))
	for i, ent := range dir {
		keys[i] = ent.Key()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ent, ok := byKey[keys[i%len(keys)]]
		if !ok || ent.Rows != i%len(keys) {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkDirectoryLookupScan(b *testing.B) {
	dir := benchDirectory(8192)
	keys := make([]PartitionKey, len(dir))
	for i, ent := range dir {
		keys[i] = ent.Key()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		found := false
		for j := range dir {
			if dir[j].Source == k.Source && dir[j].Day == k.Day {
				found = dir[j].Rows == i%len(keys)
				break
			}
		}
		if !found {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkStoreScanID is BenchmarkStoreScan in ID space: same rows, no
// per-row string materialization.
func BenchmarkStoreScanID(b *testing.B) {
	s, day := benchBlock(30_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEachRowID("com", day, func(RowID) { n++ })
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}
