// Package benchfmt defines the persisted benchmark result schemas under
// results/. Both producers of the detection benchmark — the dpsbench
// sweep harness and the root go-test benchmarks — write through this
// package, so results/BENCH_detect.json has exactly one shape regardless
// of which tool produced it.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// DetectSchema names the current BENCH_detect.json layout: one row per
// (gomaxprocs, workers) sweep cell instead of the flat v1 map.
const DetectSchema = "sweep/v2"

// DetectCell is one sweep cell: DetectRange run to steady state at a
// fixed GOMAXPROCS and worker count.
type DetectCell struct {
	Gomaxprocs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// Iters is how many full DetectRange passes the cell aggregated.
	Iters      int   `json:"iters"`
	Partitions int   `json:"partitions"`
	Rows       int64 `json:"rows"`

	WallSeconds      float64 `json:"wall_seconds"`
	PartitionsPerSec float64 `json:"partitions_per_sec"`
	RowsPerSec       float64 `json:"rows_per_sec"`

	// Utilization is busy/(workers×wall) from core.RangeStats; the stage
	// clocks below are summed over workers and iterations.
	Utilization      float64 `json:"utilization"`
	ScanSeconds      float64 `json:"scan_seconds"`
	MergeSeconds     float64 `json:"merge_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	BarrierSeconds   float64 `json:"barrier_seconds"`

	AllocsPerPartition float64 `json:"allocs_per_partition"`
	// GCShare is the fraction of the cell's total CPU the garbage
	// collector consumed (runtime/metrics /cpu/classes delta).
	GCShare float64 `json:"gc_share"`
	// EfficiencyPerCore is (pps / baseline pps) / min(gomaxprocs,
	// workers), baseline being the sweep's smallest cell — 1.0 means
	// perfect linear scaling from the baseline.
	EfficiencyPerCore float64 `json:"efficiency_per_core"`
}

// DayEngine compares the single-day ID-native scan against the retained
// string-keyed baseline (the DESIGN.md §7 ablation).
type DayEngine struct {
	IDNsOp           float64 `json:"id_ns_op"`
	IDAllocsOp       float64 `json:"id_allocs_op"`
	BaselineNsOp     float64 `json:"baseline_ns_op,omitempty"`
	BaselineAllocsOp float64 `json:"baseline_allocs_op,omitempty"`
	SpeedupX         float64 `json:"speedup_x,omitempty"`
	AllocsRatioX     float64 `json:"allocs_ratio_x,omitempty"`
}

// DetectDoc is results/BENCH_detect.json.
type DetectDoc struct {
	Bench     string `json:"bench"`  // always "detect"
	Schema    string `json:"schema"` // always DetectSchema
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// Source names the producer ("dpsbench" or "go test -bench").
	Source string `json:"source"`
	// World describes the measured dataset (synthetic scale/days or a
	// loaded .dpsa path).
	World     string       `json:"world"`
	DayEngine *DayEngine   `json:"day_engine,omitempty"`
	Sweep     []DetectCell `json:"sweep"`
}

// FillEfficiency computes every cell's EfficiencyPerCore against the
// sweep's baseline: the cell with the smallest (gomaxprocs, workers).
func (d *DetectDoc) FillEfficiency() {
	if len(d.Sweep) == 0 {
		return
	}
	base := d.Sweep[0]
	for _, c := range d.Sweep {
		if c.Gomaxprocs < base.Gomaxprocs ||
			(c.Gomaxprocs == base.Gomaxprocs && c.Workers < base.Workers) {
			base = c
		}
	}
	if base.PartitionsPerSec <= 0 {
		return
	}
	for i := range d.Sweep {
		c := &d.Sweep[i]
		cores := min(c.Gomaxprocs, c.Workers)
		if cores < 1 {
			cores = 1
		}
		c.EfficiencyPerCore = (c.PartitionsPerSec / base.PartitionsPerSec) / float64(cores)
	}
}

// CoordSchema names the current BENCH_coord.json layout: one cell per
// coordination scenario (clean baseline plus chaos phases) with
// exactly-once accounting and lease-recovery latency.
const CoordSchema = "coord/v1"

// CoordCell is one coordination benchmark phase: the same partition set
// driven through the internal/coord plane under one chaos scenario.
type CoordCell struct {
	// Scenario is "" for the fault-free baseline, otherwise a
	// chaos.Scenario name (e.g. "worker-crash").
	Scenario string `json:"scenario"`
	Workers  int    `json:"workers"`
	Seed     uint64 `json:"seed"`

	Partitions int `json:"partitions"`
	Committed  int `json:"committed"`
	// Retried counts partitions that burned more than one lease before
	// committing — the scenario's observable blast radius.
	Retried  int `json:"retried"`
	Restarts int `json:"restarts"`

	WallSeconds      float64 `json:"wall_seconds"`
	PartitionsPerSec float64 `json:"partitions_per_sec"`
	// SlowdownX is WallSeconds over the clean cell's WallSeconds (1.0
	// for the clean cell itself) — what the chaos costs end to end.
	SlowdownX float64 `json:"slowdown_x"`

	// ReleaseLatency tracks how long expired leases sat abandoned
	// before a new worker picked the partition up (coord
	// coord_release_latency_seconds deltas for this phase).
	ReleaseCount      int64   `json:"release_count"`
	ReleaseMeanSecs   float64 `json:"release_mean_seconds"`
	RecoveredSpools   int64   `json:"recovered_spools"`
	DupCommits        int64   `json:"dup_commits"`
	FencedCommits     int64   `json:"fenced_commits"`
	JournalReplays    int64   `json:"journal_replays"`
	ReplayedRequeues  int64   `json:"replay_requeues"`
	QuarantinedSpools int     `json:"quarantined_spools"`
}

// CoordDoc is results/BENCH_coord.json.
type CoordDoc struct {
	Bench     string `json:"bench"`  // always "coord"
	Schema    string `json:"schema"` // always CoordSchema
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// World describes the measured dataset (synthetic scale/days).
	World string `json:"world"`
	// LeaseTTLSeconds and HeartbeatSeconds pin the timing knobs the
	// latency numbers depend on.
	LeaseTTLSeconds  float64     `json:"lease_ttl_seconds"`
	HeartbeatSeconds float64     `json:"heartbeat_seconds"`
	Cells            []CoordCell `json:"cells"`
}

// FillSlowdown computes every cell's SlowdownX against the fault-free
// cell (Scenario == ""); without one the field stays zero.
func (d *CoordDoc) FillSlowdown() {
	var clean float64
	for _, c := range d.Cells {
		if c.Scenario == "" {
			clean = c.WallSeconds
			break
		}
	}
	if clean <= 0 {
		return
	}
	for i := range d.Cells {
		d.Cells[i].SlowdownX = d.Cells[i].WallSeconds / clean
	}
}

// Write persists the document as indented JSON, creating the parent
// directory if needed.
func (d *CoordDoc) Write(path string) error {
	if d.Bench == "" {
		d.Bench = "coord"
	}
	if d.Schema == "" {
		d.Schema = CoordSchema
	}
	return writeJSON(d, path)
}

// FollowSchema names the current BENCH_follow.json layout: the live
// follower's delta-apply cost against the full index rebuild it
// replaces, for a one-day catch-up batch.
const FollowSchema = "follow/v1"

// FollowDoc is results/BENCH_follow.json: what folding one day of new
// partitions into the serving index costs via api.Index.Apply (detect
// the new partitions + COW delta fold) versus rebuilding the whole
// index from the combined store. SpeedupX is the live-serving headroom:
// how many times faster a day lands via the delta path.
type FollowDoc struct {
	Bench     string `json:"bench"`  // always "follow"
	Schema    string `json:"schema"` // always FollowSchema
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// World describes the measured dataset (synthetic scale/days).
	World string `json:"world"`

	// BaseDays/BasePartitions describe the already-served index the
	// delta lands on; DeltaPartitions is the one-day batch size.
	BaseDays        int `json:"base_days"`
	BasePartitions  int `json:"base_partitions"`
	DeltaPartitions int `json:"delta_partitions"`
	// DomainsTouched is how many domains the delta invalidated — the
	// cache blast radius of one day.
	DomainsTouched int `json:"domains_touched"`

	ApplyNsOp       float64 `json:"apply_ns_op"`
	ApplyAllocsOp   float64 `json:"apply_allocs_op"`
	RebuildNsOp     float64 `json:"rebuild_ns_op"`
	RebuildAllocsOp float64 `json:"rebuild_allocs_op"`
	// SpeedupX is RebuildNsOp / ApplyNsOp (the acceptance floor is 10x).
	SpeedupX float64 `json:"speedup_x"`
}

// FillSpeedup computes SpeedupX from the two per-op costs.
func (d *FollowDoc) FillSpeedup() {
	if d.ApplyNsOp > 0 {
		d.SpeedupX = d.RebuildNsOp / d.ApplyNsOp
	}
}

// Write persists the document as indented JSON, creating the parent
// directory if needed.
func (d *FollowDoc) Write(path string) error {
	if d.Bench == "" {
		d.Bench = "follow"
	}
	if d.Schema == "" {
		d.Schema = FollowSchema
	}
	return writeJSON(d, path)
}

// ScaleSchema names the current BENCH_scale.json layout: one cell per
// swept world scale comparing the full-load index build (store.Load +
// api.NewIndex) against the out-of-core streaming build (store.Open +
// api.NewIndexReader) on the same dataset file.
const ScaleSchema = "scale/v1"

// ScalePath is one build path's cost at one scale: wall time, partition
// throughput, and peak memory while the build ran. PeakHeapBytes is the
// high-water delta of /memory/classes/heap/objects:bytes over the
// path's pre-run baseline (sampled by a ticker goroutine);
// PeakRSSBytes is the max /proc/self/status VmRSS observed, 0 where
// unavailable.
type ScalePath struct {
	BuildSeconds     float64 `json:"build_seconds"`
	PartitionsPerSec float64 `json:"partitions_per_sec"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	PeakRSSBytes     uint64  `json:"peak_rss_bytes,omitempty"`
}

// ScaleCell is one swept world scale: the dataset's size axes plus both
// build paths and their ratios. MemRatio is stream peak heap over full
// peak heap (the acceptance ceiling is 0.25 at the largest scale);
// ThroughputRatio is stream partitions/sec over full partitions/sec
// (floor 0.8). ParityOK records that the two builds produced identical
// day/domain/series views.
type ScaleCell struct {
	Scale      int   `json:"scale"`
	Days       int   `json:"days"`
	Partitions int   `json:"partitions"`
	Rows       int64 `json:"rows"`
	FileBytes  int64 `json:"file_bytes"`

	Full   ScalePath `json:"full"`
	Stream ScalePath `json:"stream"`

	MemRatio        float64 `json:"mem_ratio"`
	ThroughputRatio float64 `json:"throughput_ratio"`
	ParityOK        bool    `json:"parity_ok"`
}

// FillRatios computes the cell's stream-vs-full ratios.
func (c *ScaleCell) FillRatios() {
	if c.Full.PeakHeapBytes > 0 {
		c.MemRatio = float64(c.Stream.PeakHeapBytes) / float64(c.Full.PeakHeapBytes)
	}
	if c.Full.PartitionsPerSec > 0 {
		c.ThroughputRatio = c.Stream.PartitionsPerSec / c.Full.PartitionsPerSec
	}
}

// ScaleDoc is results/BENCH_scale.json.
type ScaleDoc struct {
	Bench     string `json:"bench"`  // always "scale"
	Schema    string `json:"schema"` // always ScaleSchema
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	// Source names the producer ("dpsbench" or "go test -bench").
	Source string      `json:"source"`
	Cells  []ScaleCell `json:"cells"`
	// Detect holds the raw-detection sweep (DetectRange over a resident
	// store vs DetectRangeSource over a streaming Reader, no index
	// fold), written by BenchmarkScaleDetect; empty in dpsbench output.
	Detect []ScaleCell `json:"detect,omitempty"`
}

// Write persists the document as indented JSON, creating the parent
// directory if needed.
func (d *ScaleDoc) Write(path string) error {
	if d.Bench == "" {
		d.Bench = "scale"
	}
	if d.Schema == "" {
		d.Schema = ScaleSchema
	}
	return writeJSON(d, path)
}

// Write persists the document as indented JSON, creating the parent
// directory if needed.
func (d *DetectDoc) Write(path string) error {
	if d.Bench == "" {
		d.Bench = "detect"
	}
	if d.Schema == "" {
		d.Schema = DetectSchema
	}
	return writeJSON(d, path)
}

func writeJSON(doc any, path string) error {
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("benchfmt: %w", err)
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
