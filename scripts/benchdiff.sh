#!/bin/sh
# Compare freshly-run serving, detection, coordination, follower, and
# out-of-core scale benchmarks against the committed
# results/BENCH_{api,detect,coord,follow,scale}.json,
# warning on any metric that regressed more than 20%. Advisory by default
# (exit 0 even on regressions; set BENCHDIFF_STRICT=1 to fail); set
# BENCHDIFF_SKIP_REGEN=1 to diff the working tree against HEAD without
# rerunning the benchmarks. Run via `make benchdiff`.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM

# Baseline: the committed copies at HEAD.
git show HEAD:results/BENCH_api.json >"$WORK/base_api.json" 2>/dev/null ||
    { echo "benchdiff: no committed results/BENCH_api.json at HEAD" >&2; exit 1; }
git show HEAD:results/BENCH_detect.json >"$WORK/base_detect.json" 2>/dev/null ||
    { echo "benchdiff: no committed results/BENCH_detect.json at HEAD" >&2; exit 1; }
git show HEAD:results/BENCH_coord.json >"$WORK/base_coord.json" 2>/dev/null ||
    { echo "benchdiff: no committed results/BENCH_coord.json at HEAD" >&2; exit 1; }
git show HEAD:results/BENCH_follow.json >"$WORK/base_follow.json" 2>/dev/null ||
    { echo "benchdiff: no committed results/BENCH_follow.json at HEAD" >&2; exit 1; }
git show HEAD:results/BENCH_scale.json >"$WORK/base_scale.json" 2>/dev/null ||
    { echo "benchdiff: no committed results/BENCH_scale.json at HEAD" >&2; exit 1; }

if [ "${BENCHDIFF_SKIP_REGEN:-0}" != "1" ]; then
    echo "== regenerate serving benchmark (results/BENCH_api.json)"
    go test -run '^$' -bench '^BenchmarkAPIServe$' .
    echo "== regenerate detection benchmark (results/BENCH_detect.json)"
    go test -run '^$' -bench '^BenchmarkDetect(Day|Range)$' .
    echo "== regenerate coordination benchmark (results/BENCH_coord.json)"
    go test -run '^$' -bench '^BenchmarkCoordinator$' .
    echo "== regenerate follower benchmark (results/BENCH_follow.json)"
    go test -run '^$' -bench '^BenchmarkFollowApply$' .
    echo "== regenerate out-of-core scale benchmark (results/BENCH_scale.json)"
    go test -run '^$' -bench '^BenchmarkScale(Load|Detect)$' .
fi

STRICT=""
[ "${BENCHDIFF_STRICT:-0}" = "1" ] && STRICT="-strict"

echo "== diff serving benchmark vs HEAD"
go run ./cmd/benchdiff $STRICT "$WORK/base_api.json" results/BENCH_api.json
echo "== diff detection benchmark vs HEAD"
go run ./cmd/benchdiff $STRICT "$WORK/base_detect.json" results/BENCH_detect.json
echo "== diff coordination benchmark vs HEAD"
go run ./cmd/benchdiff $STRICT "$WORK/base_coord.json" results/BENCH_coord.json
echo "== diff follower benchmark vs HEAD"
go run ./cmd/benchdiff $STRICT "$WORK/base_follow.json" results/BENCH_follow.json
echo "== diff out-of-core scale benchmark vs HEAD"
go run ./cmd/benchdiff $STRICT "$WORK/base_scale.json" results/BENCH_scale.json
