package coord

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// appendJournal opens the journal under dir, appends the records, and
// closes it — a miniature coordinator writing one transition at a time.
func appendJournal(t *testing.T, dir string, recs ...record) {
	t.Helper()
	j, _, err := openJournal(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.append(rec, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReaderIncremental(t *testing.T) {
	dir := t.TempDir()
	r := NewJournalReader(dir)

	// No journal yet: nothing to report, no error.
	if recs, err := r.Next(); err != nil || len(recs) != 0 {
		t.Fatalf("empty dir: recs=%v err=%v", recs, err)
	}

	appendJournal(t, dir,
		record{Type: recAdd, Source: "com", Day: 1},
		record{Type: recLease, Source: "com", Day: 1, Lease: 1, Attempt: 1},
	)
	recs, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != RecAdd || recs[1].Type != RecLease {
		t.Fatalf("first batch = %+v", recs)
	}
	if recs[1].Seq != 2 || recs[1].Source != "com" || int(recs[1].Day) != 1 {
		t.Fatalf("lease record = %+v", recs[1])
	}

	// Nothing new: empty again.
	if recs, err := r.Next(); err != nil || len(recs) != 0 {
		t.Fatalf("idle poll: recs=%v err=%v", recs, err)
	}

	// More appends arrive only in the next batch, continuing the seq.
	appendJournal(t, dir,
		record{Type: recCommit, Source: "com", Day: 1, Lease: 1, Attempt: 1, Spool: "spool/com.x.dpsa"},
	)
	recs, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCommit || recs[0].Seq != 3 || recs[0].Spool != "spool/com.x.dpsa" {
		t.Fatalf("second batch = %+v", recs)
	}
	if recs[0].Partition() != (Partition{Source: "com", Day: 1}) {
		t.Fatalf("partition = %v", recs[0].Partition())
	}
}

func TestJournalReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	appendJournal(t, dir, record{Type: recAdd, Source: "com", Day: 1})

	// A torn append: partial JSON with no trailing newline.
	path := JournalPath(dir)
	torn := []byte(`{"seq":2,"type":"commit","source":"com"`)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	r := NewJournalReader(dir)
	recs, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecAdd {
		t.Fatalf("torn read delivered %+v", recs)
	}
	// The reader is read-only: the torn tail is still on disk.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("JournalReader mutated the journal")
	}

	// Once the append completes, the record is delivered.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(",\"day\":1,\"spool\":\"s\"}\n")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCommit || recs[0].Seq != 2 {
		t.Fatalf("completed append delivered %+v", recs)
	}
}

func TestJournalReaderResetOnShrink(t *testing.T) {
	dir := t.TempDir()
	appendJournal(t, dir,
		record{Type: recAdd, Source: "com", Day: 1},
		record{Type: recAdd, Source: "com", Day: 2},
	)
	r := NewJournalReader(dir)
	if recs, err := r.Next(); err != nil || len(recs) != 2 {
		t.Fatalf("initial read: recs=%v err=%v", recs, err)
	}

	// The journal is replaced by a shorter fresh run (seq restarts at 1).
	if err := os.Remove(JournalPath(dir)); err != nil {
		t.Fatal(err)
	}
	appendJournal(t, dir, record{Type: recAdd, Source: "nl", Day: 7})
	recs, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Source != "nl" || recs[0].Seq != 1 {
		t.Fatalf("post-shrink read = %+v", recs)
	}
}

func TestReplayLedgerMatchesCoordinator(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "coord")
	parts := testParts([]string{"com", "nl"}, 3)
	c := runToCompletion(t, fastCfg(dir), parts)
	want := c.Ledger()

	recs, err := NewJournalReader(dir).Next()
	if err != nil {
		t.Fatal(err)
	}
	got := ReplayLedger(recs)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("ledger mismatch:\ncoordinator %+v\nreplay      %+v", want, got)
	}
}

func TestReplayLedgerStates(t *testing.T) {
	recs := []Record{
		{Seq: 1, Type: RecAdd, Source: "com", Day: 1},
		{Seq: 2, Type: RecAdd, Source: "com", Day: 2},
		{Seq: 3, Type: RecLease, Source: "com", Day: 1, Lease: 1, Attempt: 1},
		{Seq: 4, Type: RecLease, Source: "com", Day: 2, Lease: 2, Attempt: 1},
		{Seq: 5, Type: RecRequeue, Source: "com", Day: 2, Attempt: 1, Err: "lease expired"},
		{Seq: 6, Type: RecCommit, Source: "com", Day: 1, Lease: 1, Attempt: 1, Spool: "s1"},
		{Seq: 7, Type: RecLease, Source: "com", Day: 2, Lease: 3, Attempt: 2},
		{Seq: 8, Type: RecFail, Source: "com", Day: 2, Attempt: 2, Err: "boom"},
		{Seq: 9, Type: RecAdd, Source: "nl", Day: 1},
	}
	got := ReplayLedger(recs)
	want := []PartitionStatus{
		{Source: "com", Day: "2015-03-02", State: StateCommitted, Attempts: 1, Spool: "s1"},
		{Source: "com", Day: "2015-03-03", State: StateFailed, Attempts: 2, Err: "boom"},
		{Source: "nl", Day: "2015-03-02", State: StatePending},
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("ledger:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestJournalReaderResume: a position previously reported by Offset can
// be restored into a fresh reader (the follower restart cursor), and any
// cursor that does not exactly match the journal on disk is rejected —
// the reader stays at the start and replays.
func TestJournalReaderResume(t *testing.T) {
	dir := t.TempDir()
	appendJournal(t, dir,
		record{Type: recAdd, Source: "com", Day: 1},
		record{Type: recLease, Source: "com", Day: 1, Lease: 1, Attempt: 1},
		record{Type: recCommit, Source: "com", Day: 1, Lease: 1, Attempt: 1, Spool: "spool/a.dpsa"},
	)
	a := NewJournalReader(dir)
	if recs, err := a.Next(); err != nil || len(recs) != 3 {
		t.Fatalf("prime read: %v %v", recs, err)
	}
	off, seq := a.Offset()

	// Valid cursor: the fresh reader delivers only what comes after it.
	b := NewJournalReader(dir)
	if !b.Resume(off, seq) {
		t.Fatalf("Resume(%d, %d) rejected a valid cursor", off, seq)
	}
	appendJournal(t, dir, record{Type: recAdd, Source: "net", Day: 2})
	recs, err := b.Next()
	if err != nil || len(recs) != 1 || recs[0].Source != "net" || recs[0].Seq != seq+1 {
		t.Fatalf("post-resume read = %+v err=%v", recs, err)
	}

	// Offsets that do not land on a record boundary, wrong sequence
	// numbers, and zero values are all rejected.
	for _, bad := range []struct {
		off int64
		seq uint64
	}{{off - 1, seq}, {off + 1, seq}, {off, seq + 1}, {off, 0}, {0, seq}, {-1, seq}} {
		r := NewJournalReader(dir)
		if r.Resume(bad.off, bad.seq) {
			t.Fatalf("Resume(%d, %d) accepted a bogus cursor", bad.off, bad.seq)
		}
		if o, s := r.Offset(); o != 0 || s != 0 {
			t.Fatalf("rejected Resume moved the reader to (%d, %d)", o, s)
		}
	}

	// A journal replaced since the cursor was written (same dir, fresh
	// run, different records — here, different line lengths, so the old
	// offset no longer lands on a record boundary) fails validation; the
	// reader replays from the start instead of wedging mid-line. A
	// replacement whose bytes coincidentally align record-for-record can
	// pass positional validation — the follower's applied-set dedupe is
	// the backstop there.
	if err := os.Remove(JournalPath(dir)); err != nil {
		t.Fatal(err)
	}
	appendJournal(t, dir,
		record{Type: recAdd, Source: "example", Day: 9},
		record{Type: recLease, Source: "example", Day: 9, Lease: 1, Attempt: 1},
		record{Type: recCommit, Source: "example", Day: 9, Lease: 1, Attempt: 1, Spool: "spool/other-run.dpsa"},
		record{Type: recAdd, Source: "example", Day: 10},
	)
	c := NewJournalReader(dir)
	if c.Resume(off, seq) {
		t.Fatal("Resume accepted a cursor from a replaced journal")
	}
	if recs, err := c.Next(); err != nil || len(recs) != 4 {
		t.Fatalf("replay after rejected resume = %d recs, err=%v", len(recs), err)
	}

	// Truncated below the cursor: rejected.
	d := NewJournalReader(dir)
	data, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalPath(dir), data[:len(data)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	if d.Resume(int64(len(data)), 4) {
		t.Fatal("Resume accepted a cursor beyond EOF")
	}
}
