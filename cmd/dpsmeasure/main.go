// Command dpsmeasure runs the active DNS measurement pipeline by itself —
// the paper's Figure 1 system — and reports what it collected, without
// the downstream analysis. It demonstrates both fidelity modes: the
// default in-process derivation and, with -mode wire, full resolution of
// every query through authoritative servers over the in-memory network.
//
// Progress is reported through the structured logger (one summary line
// per day with row/query counts and latency quantiles); -quiet
// suppresses it. With -metrics-addr the process serves live
// Prometheus-text /metrics, expvar /debug/vars, and pprof profiles for
// the duration of the run, and stays up after the run finishes until
// interrupted so the final counters can be scraped.
//
// Usage:
//
//	dpsmeasure [-scale 100000] [-days 3] [-mode direct|wire] [-workers N]
//	           [-metrics-addr :9090] [-quiet] [-log-json] [-v]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale       = flag.Int("scale", 100_000, "world scale divisor")
		days        = flag.Int("days", 3, "days to measure")
		mode        = flag.String("mode", "direct", "direct or wire")
		workers     = flag.Int("workers", 4, "measurement workers")
		verbose     = flag.Bool("v", false, "print sample rows")
		out         = flag.String("out", "", "write the dataset to this .dpsa file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		quiet       = flag.Bool("quiet", false, "suppress progress logging (warnings still shown)")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON")
	)
	flag.Parse()

	if *logJSON {
		obs.SetLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, true))
	}
	if *quiet {
		obs.SetQuiet()
	}
	log := obs.Logger()

	cfg := measure.Config{Workers: *workers}
	switch *mode {
	case "direct":
		cfg.Mode = measure.ModeDirect
	case "wire":
		cfg.Mode = measure.ModeWire
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	reg := obs.Default()
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		log.Info("metrics listening", "addr", srv.Addr,
			"endpoints", "/metrics /debug/vars /debug/pprof/")
	}

	w, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	log.Info("world built", "stats", w.Stats())

	s := store.New()
	p := measure.New(w, s, cfg)
	start := time.Now()
	prev := reg.Snapshot()
	for d := 0; d < *days; d++ {
		day := w.Cfg.Window.Start + simtime.Day(d)
		t0 := time.Now()
		if err := p.RunDay(day); err != nil {
			fatal(err)
		}
		snap := reg.Snapshot()
		lat := snap.Histogram("dns_client_query_seconds")
		log.Info("day complete",
			"day", day.String(),
			"domains", snap.Counter("measure_domains_total")-prev.Counter("measure_domains_total"),
			"rows", snap.Counter("store_rows_total")-prev.Counter("store_rows_total"),
			"queries", snap.Counter("dns_client_queries_total")-prev.Counter("dns_client_queries_total"),
			"p50_ms", fmt.Sprintf("%.3f", lat.P50*1000),
			"p99_ms", fmt.Sprintf("%.3f", lat.P99*1000),
			"errors", snap.Counter("dns_client_errors_total")-prev.Counter("dns_client_errors_total"),
			"elapsed", time.Since(t0).Round(time.Millisecond).String(),
		)
		prev = snap
	}
	log.Info("run complete",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"wire_queries", p.QueriesSent(),
	)

	if !*quiet {
		fmt.Printf("\n%-8s %6s %10s %12s %12s\n", "source", "days", "#SLDs", "#DPs", "size")
		for _, src := range s.Sources() {
			st := s.SourceStats(src)
			fmt.Printf("%-8s %6d %10d %12d %11dB\n", src, st.Days, st.UniqueSLDs, st.DataPoints, st.CompressedBytes)
		}
	}

	if *out != "" {
		if err := s.Save(*out); err != nil {
			fatal(err)
		}
		log.Info("dataset written", "path", *out)
	}

	if *verbose && !*quiet {
		day := w.Cfg.Window.Start
		fmt.Printf("\nsample rows (com, %s):\n", day)
		n := 0
		s.ForEachRow("com", day, func(r store.Row) {
			if n >= 12 {
				return
			}
			n++
			if r.Str != "" {
				fmt.Printf("  %-20s %-10s %s\n", r.Domain, r.Kind, r.Str)
			} else {
				fmt.Printf("  %-20s %-10s %-15s AS%v\n", r.Domain, r.Kind, r.Addr, r.ASNs)
			}
		})
	}

	if *metricsAddr != "" {
		log.Info("run finished; still serving metrics, Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsmeasure:", err)
	os.Exit(1)
}
