// Package dnswire implements the DNS wire format (RFC 1035, with the AAAA
// record from RFC 3596 and minimal EDNS0 from RFC 6891) from scratch on top
// of the standard library.
//
// The package provides a Message type that packs to and unpacks from the
// binary format used on the wire, including name compression on encode and
// pointer-safe decompression on decode. It is the lowest layer of the
// reproduction's measurement stack: the authoritative server
// (internal/dnsserver) and the measuring resolver (internal/dnsclient)
// exchange []byte datagrams produced and consumed here.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2).
type Type uint16

// Resource record types used by the measurement system.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeAXFR  Type = 252
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeAXFR:  "AXFR",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for t ("A", "CNAME", ...).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a mnemonic ("A", "aaaa", ...) to a Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if equalFold(s, name) {
			return t, nil
		}
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class (RFC 1035 §3.2.4). Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the conventional mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// OpCode is a DNS operation code.
type OpCode uint8

// Operation codes.
const (
	OpQuery  OpCode = 0
	OpStatus OpCode = 2
)

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the conventional mnemonic for rc.
func (rc RCode) String() string {
	if s, ok := rcodeNames[rc]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// equalFold is an ASCII-only case-insensitive comparison. DNS names are
// ASCII; using the ASCII fold avoids Unicode case pitfalls.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		if lowerByte(a[i]) != lowerByte(b[i]) {
			return false
		}
	}
	return true
}

func lowerByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}
