package follow

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dpsadopt/internal/api"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// synthPart builds one (source, day) partition spool with deterministic
// detections: alpha.<src> on provider0 CNAME every day, gamma.<src> on
// CloudFlare NS from day 1, quiet.<src> measured but unprotected.
func synthPart(t *testing.T, refs *core.References, src string, day simtime.Day) *store.Store {
	t.Helper()
	p0 := refs.Providers[0]
	cf, ok := refs.ProviderIndex("CloudFlare")
	if !ok {
		t.Fatal("no CloudFlare in ground truth")
	}
	s := store.New()
	w := s.NewWriter(src, day)
	w.AddStr("alpha."+src, store.KindWWWCNAME, "www.alpha."+src+"."+p0.CNAMESLDs[0])
	if day >= 1 {
		w.AddStr("gamma."+src, store.KindNS, "ns."+refs.Providers[cf].NSSLDs[0])
	}
	w.AddAddr("quiet."+src, store.KindApexA, netip.MustParseAddr("198.51.100.9"), nil)
	w.Commit()
	return s
}

func synthWork(t *testing.T, refs *core.References) coord.WorkFunc {
	return func(_ context.Context, p coord.Partition, _ int) (*store.Store, error) {
		return synthPart(t, refs, p.Source, p.Day), nil
	}
}

// runCoordinator commits every partition into dir and returns the
// assembled reference store.
func runCoordinator(t *testing.T, dir string, refs *core.References, parts []coord.Partition) *store.Store {
	t.Helper()
	c, err := coord.New(coord.Config{
		Dir:            dir,
		Workers:        3,
		LeaseTTL:       time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
		MaxAttempts:    3,
		RetryBackoff:   5 * time.Millisecond,
		Work:           synthWork(t, refs),
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	assembled, damaged, err := c.Assemble()
	if err != nil || len(damaged) != 0 {
		t.Fatalf("assemble: %v (damaged %+v)", err, damaged)
	}
	return assembled
}

// drain polls the follower until the feed is exhausted.
func drain(t *testing.T, f *Follower) {
	t.Helper()
	for i := 0; i < 100; i++ {
		n, err := f.Poll(context.Background())
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if n == 0 && f.Status().Lag == 0 {
			return
		}
	}
	t.Fatalf("feed did not drain: %+v", f.Status())
}

// assertSameView demands two indexes are indistinguishable through the
// public query surface (the follower package cannot see api internals,
// and the serving contract is exactly these views).
func assertSameView(t *testing.T, want, got *api.Index) {
	t.Helper()
	if !reflect.DeepEqual(want.Days(), got.Days()) {
		t.Fatalf("days: want %v got %v", want.Days(), got.Days())
	}
	wd, gd := want.Domains(), got.Domains()
	if !reflect.DeepEqual(wd, gd) {
		t.Fatalf("domains: want %v got %v", wd, gd)
	}
	for _, dom := range wd {
		wh, _ := want.Domain(dom)
		gh, ok := got.Domain(dom)
		if !ok || !reflect.DeepEqual(wh, gh) {
			t.Fatalf("Domain(%s): want %+v got %+v", dom, wh, gh)
		}
	}
	for _, d := range want.Days() {
		wi, _ := want.Day(d)
		gi, ok := got.Day(d)
		if !ok || !reflect.DeepEqual(wi, gi) {
			t.Fatalf("Day(%v): want %+v got %+v", d, wi, gi)
		}
	}
}

func coordParts(sources []string, days int) []coord.Partition {
	var out []coord.Partition
	for _, src := range sources {
		for d := 0; d < days; d++ {
			out = append(out, coord.Partition{Source: src, Day: simtime.Day(d)})
		}
	}
	return out
}

// TestFollowCoordFeedConverges is the tentpole e2e: a real coordinator
// commits partitions, a follower tails its journal into a live
// api.Server starting from an empty index, and the served index ends up
// indistinguishable from a full rebuild over the assembled dataset.
func TestFollowCoordFeedConverges(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com", "net"}, 4)

	// The follower starts BEFORE the coordinator has produced anything:
	// empty-feed polls must be clean no-ops.
	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: dir, Refs: refs, Sink: srv, Workers: 2, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode() != ModeCoord {
		t.Fatalf("mode = %s, want coord", f.Mode())
	}
	srv.SetFreshnessFunc(f.Freshness)
	if n, err := f.Poll(context.Background()); n != 0 || err != nil {
		t.Fatalf("pre-birth poll: n=%d err=%v", n, err)
	}

	assembled := runCoordinator(t, dir, refs, parts)
	drain(t, f)

	assertSameView(t, api.NewIndex(assembled, refs), srv.Index())
	st := f.Status()
	if st.Applied != len(parts) || st.Skipped != 0 || st.Lag != 0 {
		t.Fatalf("status after drain: %+v", st)
	}
	// MaxBatch=3 over 8 partitions → at least 3 epochs, each published.
	if e := srv.Index().Epoch(); e < 3 {
		t.Fatalf("epoch = %d, want >= 3 (batched catch-up)", e)
	}
	fr := f.Freshness()
	if fr.Mode != "coord" || fr.Partitions != len(parts) || fr.Epoch != srv.Index().Epoch() {
		t.Fatalf("freshness: %+v", fr)
	}

	// Re-polling a drained feed applies nothing and keeps the epoch.
	e := srv.Index().Epoch()
	if n, err := f.Poll(context.Background()); n != 0 || err != nil {
		t.Fatalf("idle poll: n=%d err=%v", n, err)
	}
	if srv.Index().Epoch() != e {
		t.Fatal("idle poll published a new index")
	}
}

// TestFollowDatasetFeedGrows tails a .dpsa file that grows by atomic
// re-saves, including the empty-boot case (the file does not exist when
// the follower starts).
func TestFollowDatasetFeedGrows(t *testing.T) {
	refs := core.MustGroundTruth()
	path := filepath.Join(t.TempDir(), "data.dpsa")

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: path, Refs: refs, Sink: srv})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode() != ModeDataset {
		t.Fatalf("mode = %s, want dataset", f.Mode())
	}
	if n, err := f.Poll(context.Background()); n != 0 || err != nil {
		t.Fatalf("poll before file exists: n=%d err=%v", n, err)
	}

	// First save: two days of one source.
	all := store.New()
	for d := 0; d < 2; d++ {
		all.Absorb(synthPart(t, refs, "com", simtime.Day(d)))
	}
	if err := all.Save(path); err != nil {
		t.Fatal(err)
	}
	drain(t, f)
	assertSameView(t, api.NewIndex(all, refs), srv.Index())

	// Growth: a new day and a new source land in one re-save.
	all.Absorb(synthPart(t, refs, "com", 2))
	all.Absorb(synthPart(t, refs, "net", 2))
	if err := all.Save(path); err != nil {
		t.Fatal(err)
	}
	drain(t, f)
	assertSameView(t, api.NewIndex(all, refs), srv.Index())
	if st := f.Status(); st.Applied != 4 || st.Lag != 0 {
		t.Fatalf("status: %+v", st)
	}
}

// TestFollowSeedSkipsBootPartitions: a follower booted from an existing
// dataset must not re-apply the partitions already in the boot index.
func TestFollowSeedSkipsBootPartitions(t *testing.T) {
	refs := core.MustGroundTruth()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	all := store.New()
	all.Absorb(synthPart(t, refs, "com", 0))
	all.Absorb(synthPart(t, refs, "com", 1))
	if err := all.Save(path); err != nil {
		t.Fatal(err)
	}

	boot := api.NewIndex(all, refs)
	srv := api.NewServer(boot, api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: path, Refs: refs, Sink: srv})
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(Keys(all))

	// Nothing new: no publish, epoch stays 0.
	if n, err := f.Poll(context.Background()); n != 0 || err != nil {
		t.Fatalf("seeded poll: n=%d err=%v", n, err)
	}
	if srv.Index() != boot {
		t.Fatal("seeded poll replaced the boot index")
	}

	// One genuinely new day applies alone.
	all.Absorb(synthPart(t, refs, "com", 2))
	if err := all.Save(path); err != nil {
		t.Fatal(err)
	}
	drain(t, f)
	if st := f.Status(); st.Applied != 1 {
		t.Fatalf("applied = %d, want 1: %+v", st.Applied, st)
	}
	assertSameView(t, api.NewIndex(all, refs), srv.Index())
}

// TestFollowSkipsDamagedSpool: a committed spool torn at rest is
// skipped permanently — counted, excluded from lag — while every intact
// partition still applies and serves.
func TestFollowSkipsDamagedSpool(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com"}, 3)
	runCoordinator(t, dir, refs, parts)

	// Tear one committed spool mid-file (CRC must now fail).
	victim := filepath.Join(dir, "spool", fmt.Sprintf("com.%s.dpsa", simtime.Day(1)))
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: dir, Refs: refs, Sink: srv})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, f)

	st := f.Status()
	if st.Applied != 2 || st.Skipped != 1 || st.Lag != 0 {
		t.Fatalf("status: %+v", st)
	}
	want := store.New()
	want.Absorb(synthPart(t, refs, "com", 0))
	want.Absorb(synthPart(t, refs, "com", 2))
	assertSameView(t, api.NewIndex(want, refs), srv.Index())
	if f.Freshness().Skipped != 1 {
		t.Fatalf("freshness: %+v", f.Freshness())
	}

	// The skip is permanent: repairing the file later does not resurrect
	// it (commits are terminal; operators re-measure instead).
	if n, err := f.Poll(context.Background()); n != 0 || err != nil {
		t.Fatalf("post-skip poll: n=%d err=%v", n, err)
	}
}

// TestFollowRunLoop drives the production Run loop end to end under a
// live coordinator commit stream.
func TestFollowRunLoop(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com"}, 3)

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: dir, Refs: refs, Sink: srv, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	assembled := runCoordinator(t, dir, refs, parts)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Status()
		if st.Applied == len(parts) && st.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run loop did not converge: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("run returned %v", err)
	}
	assertSameView(t, api.NewIndex(assembled, refs), srv.Index())
}
