package dnsclient

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dpsadopt/internal/dnsserver"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

// bigWorld serves a zone whose answer exceeds any UDP payload: the
// resolver must detect TC and retry over TCP.
func bigWorld(t *testing.T, network transport.Network) (roots []netip.AddrPort, records int) {
	t.Helper()
	records = 400 // 400 A records ≈ 6.4 KB of RDATA: above the 4096 MTU
	z := dnszone.MustNew("big.test")
	z.MustAdd(dnswire.RR{Name: "big.test", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{MName: "ns.big.test", RName: "h.big.test", Serial: 1}})
	z.MustAdd(dnswire.RR{Name: "big.test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.big.test"}})
	for i := 0; i < records; i++ {
		z.MustAdd(dnswire.RR{Name: "many.big.test", Type: dnswire.TypeA, TTL: 1,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})}})
	}
	root := dnszone.MustNew(".")
	root.MustAdd(dnswire.RR{Name: "test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.big.test"}})
	root.MustAdd(dnswire.RR{Name: "ns.big.test", Type: dnswire.TypeA, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("10.0.0.1")}})

	rootSrv := dnsserver.New()
	rootSrv.AddZone(root)
	bigSrv := dnsserver.New()
	bigSrv.AddZone(z)
	tz := dnszone.MustNew("test")
	bigSrv.AddZone(tz)

	for _, s := range []struct {
		srv  *dnsserver.Server
		addr string
	}{{rootSrv, "10.0.0.100"}, {bigSrv, "10.0.0.1"}} {
		run, err := dnsserver.Start(s.srv, network, s.addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { run.Stop() })
		stream, err := dnsserver.StartStream(s.srv, network, s.addr)
		if err != nil {
			t.Fatal(err)
		}
		if stream != nil {
			t.Cleanup(func() { stream.Stop() })
		}
	}
	return []netip.AddrPort{netip.MustParseAddrPort("10.0.0.100:53")}, records
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	network := transport.NewMem(5)
	roots, records := bigWorld(t, network)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.1"), roots, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Resolve(context.Background(), "many.big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Addrs()); got != records {
		t.Errorf("addresses = %d, want %d (TCP fallback should deliver all)", got, records)
	}
}

func TestTCPFallbackSmallEDNS(t *testing.T) {
	// Even a modest answer truncates when the client advertises a small
	// payload; the TCP retry must still recover everything.
	network := transport.NewMem(6)
	roots, records := bigWorld(t, network)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.2"), roots, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.UDPSize = 512
	res, err := r.Resolve(context.Background(), "many.big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Addrs()); got != records {
		t.Errorf("addresses = %d, want %d", got, records)
	}
	// Small answers still travel UDP-only: resolve the NS set and check
	// no extra TCP queries were needed (queries counter sanity).
	before := r.QueriesSent()
	if _, err := r.Resolve(context.Background(), "big.test", dnswire.TypeNS); err != nil {
		t.Fatal(err)
	}
	if r.QueriesSent()-before != 1 {
		t.Errorf("NS resolution took %d queries, want 1", r.QueriesSent()-before)
	}
}

func TestTCPFallbackOverKernelSockets(t *testing.T) {
	network := transport.NewMappedUDP()
	roots, records := bigWorld(t, network)
	r, err := NewResolver(network, netip.MustParseAddr("10.9.0.3"), roots, 9)
	if err != nil {
		t.Skipf("cannot bind: %v", err)
	}
	defer r.Close()
	r.Timeout = time.Second
	res, err := r.Resolve(context.Background(), "many.big.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Addrs()); got != records {
		t.Errorf("addresses = %d, want %d", got, records)
	}
}

func TestServeStreamMultipleQueries(t *testing.T) {
	network := transport.NewMem(11)
	roots, _ := bigWorld(t, network)
	_ = roots
	sn := transport.StreamNetwork(network)
	conn, err := sn.DialStream(netip.MustParseAddr("10.9.0.4"), netip.MustParseAddrPort("10.0.0.1:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two sequential queries on one connection.
	for i := 0; i < 2; i++ {
		q := dnswire.NewQuery(uint16(100+i), "big.test", dnswire.TypeNS)
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := dnswire.WriteFramed(conn, wire); err != nil {
			t.Fatal(err)
		}
		msg, err := dnswire.ReadFramed(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dnswire.Unpack(msg)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(100+i) || len(resp.Answers) != 1 {
			t.Errorf("query %d: %+v", i, resp)
		}
	}
}

func TestStreamListenerAddrInUse(t *testing.T) {
	network := transport.NewMem(12)
	addr := netip.MustParseAddrPort("10.0.0.5:53")
	l1, err := network.ListenStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.ListenStream(addr); err == nil {
		t.Error("duplicate stream listen accepted")
	}
	l1.Close()
	l2, err := network.ListenStream(addr)
	if err != nil {
		t.Errorf("listen after close: %v", err)
	} else {
		l2.Close()
	}
	// Dial to a closed listener fails.
	if _, err := network.DialStream(netip.MustParseAddr("10.9.0.5"), netip.MustParseAddrPort("10.0.0.77:53")); err == nil {
		t.Error("dial to absent stream listener accepted")
	}
}
