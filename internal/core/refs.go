// Package core implements the paper's methodology (§3.3–§3.4): deriving
// DDoS-protection-service use from stored DNS measurements. Given the
// per-provider reference identities (AS numbers, CNAME second-level
// domains, NS second-level domains — Table 2), detection classifies every
// measured domain on every day by which references it exhibits; the
// discovery procedure reconstructs those identities from the measurement
// data itself, starting from AS-to-name seeds.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpsadopt/internal/store"
)

// Method is a bitmask of reference kinds a domain exhibits toward a
// provider (§3.3: ASN, CNAME, and NS references).
type Method uint8

// Reference kinds.
const (
	RefAS Method = 1 << iota
	RefCNAME
	RefNS
)

// Has reports whether all bits of m2 are set.
func (m Method) Has(m2 Method) bool { return m&m2 == m2 }

// String renders e.g. "AS+CNAME".
func (m Method) String() string {
	var parts []string
	if m.Has(RefAS) {
		parts = append(parts, "AS")
	}
	if m.Has(RefCNAME) {
		parts = append(parts, "CNAME")
	}
	if m.Has(RefNS) {
		parts = append(parts, "NS")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ProviderRefs is one provider's reference identity (a Table 2 row).
type ProviderRefs struct {
	Name      string
	ASNs      []uint32
	CNAMESLDs []string
	NSSLDs    []string
}

// normalize sorts the reference lists for stable comparison.
func (p *ProviderRefs) normalize() {
	sort.Slice(p.ASNs, func(i, j int) bool { return p.ASNs[i] < p.ASNs[j] })
	sort.Strings(p.CNAMESLDs)
	sort.Strings(p.NSSLDs)
}

// String renders the row in Table 2 shape.
func (p ProviderRefs) String() string {
	asns := make([]string, len(p.ASNs))
	for i, a := range p.ASNs {
		asns[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("%-12s AS:%s CNAME:%s NS:%s",
		p.Name, strings.Join(asns, ","), strings.Join(p.CNAMESLDs, ","), strings.Join(p.NSSLDs, ","))
}

// References is the full provider reference database with lookup indexes.
// It must not be copied after first use (the ID-matcher cache carries a
// mutex); share it by pointer, as every caller does.
type References struct {
	Providers []ProviderRefs

	byASN map[uint32]int
	// asnDense is a flat ASN→provider table covering the small ASNs
	// (the overwhelmingly common case), so the per-ASN probe in the
	// detection hot loop is an array load instead of a map hash;
	// noProvider marks unclaimed slots. ASNs beyond its length fall
	// back to byASN.
	asnDense []int16
	byCNAME  map[string]int
	byNS     map[string]int

	// matchers caches one IDMatcher per store dictionary, so repeated
	// DetectDay calls over the same store amortize every SLD extraction.
	matcherMu sync.Mutex
	matchers  map[*store.Dict]*IDMatcher
}

// NewReferences builds the indexes for a set of provider rows. Reference
// values must not collide across providers.
func NewReferences(provs []ProviderRefs) (*References, error) {
	r := &References{
		Providers: provs,
		byASN:     make(map[uint32]int),
		byCNAME:   make(map[string]int),
		byNS:      make(map[string]int),
	}
	for i := range r.Providers {
		r.Providers[i].normalize()
		p := &r.Providers[i]
		for _, a := range p.ASNs {
			if prev, dup := r.byASN[a]; dup && prev != i {
				return nil, fmt.Errorf("core: ASN %d claimed by %s and %s", a, r.Providers[prev].Name, p.Name)
			}
			r.byASN[a] = i
		}
		for _, s := range p.CNAMESLDs {
			if prev, dup := r.byCNAME[s]; dup && prev != i {
				return nil, fmt.Errorf("core: CNAME SLD %s claimed twice", s)
			}
			r.byCNAME[s] = i
		}
		for _, s := range p.NSSLDs {
			if prev, dup := r.byNS[s]; dup && prev != i {
				return nil, fmt.Errorf("core: NS SLD %s claimed twice", s)
			}
			r.byNS[s] = i
		}
	}
	// Densify: real origin-AS numbers are small, so one flat table
	// covers essentially every probe (capped so a stray 32-bit ASN
	// cannot balloon the allocation).
	const denseCap = 1 << 20
	maxASN := uint32(0)
	for a := range r.byASN {
		if a > maxASN {
			maxASN = a
		}
	}
	if len(r.byASN) > 0 && maxASN < denseCap {
		r.asnDense = make([]int16, maxASN+1)
		for i := range r.asnDense {
			r.asnDense[i] = noProvider
		}
		for a, p := range r.byASN {
			r.asnDense[a] = int16(p)
		}
	}
	return r, nil
}

// NumProviders returns the number of providers in the table.
func (r *References) NumProviders() int { return len(r.Providers) }

// ProviderIndex finds a provider by name.
func (r *References) ProviderIndex(name string) (int, bool) {
	for i := range r.Providers {
		if r.Providers[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// MatchASN returns the provider owning an origin AS.
func (r *References) MatchASN(asn uint32) (int, bool) {
	if int(asn) < len(r.asnDense) {
		p := r.asnDense[asn]
		return int(p), p >= 0
	}
	i, ok := r.byASN[asn]
	return i, ok
}

// MatchCNAME returns the provider owning a CNAME target's SLD.
func (r *References) MatchCNAME(target string) (int, bool) {
	i, ok := r.byCNAME[SLD(target)]
	return i, ok
}

// MatchNS returns the provider owning an NS host's SLD.
func (r *References) MatchNS(host string) (int, bool) {
	i, ok := r.byNS[SLD(host)]
	return i, ok
}

// IDMatcher resolves interned CNAME/NS values to providers by dictionary
// ID: the first lookup of an ID pays one Dict.Str + SLD extraction, every
// later one is a single integer map probe against a lock-free published
// snapshot (negative results are cached too — almost every NS host in a
// measurement resolves to no provider). Dictionary IDs are stable for the
// life of a store, so entries never invalidate. Safe for concurrent use
// by DetectRange workers.
type IDMatcher struct {
	refs *References
	dict *store.Dict

	mu    sync.Mutex // serializes cache misses and republication
	cname idCache
	ns    idCache
}

// idCache is a read-mostly ID→provider map: hits read the published
// snapshot with a single atomic pointer load and no lock. Misses go
// through IDMatcher.mu into the pending map, which is folded into a
// fresh snapshot once it outgrows a fraction of the published one —
// copy-on-write with geometric batching, so total copying stays linear
// in the number of distinct IDs while the read path stays lock-free.
type idCache struct {
	published atomic.Pointer[map[uint32]int16]
	pending   map[uint32]int16 // guarded by IDMatcher.mu
}

// noProvider is the cached negative lookup.
const noProvider = int16(-1)

// ForDict returns the ID matcher binding these references to a store
// dictionary, creating and caching it on first use.
func (r *References) ForDict(dict *store.Dict) *IDMatcher {
	r.matcherMu.Lock()
	defer r.matcherMu.Unlock()
	if r.matchers == nil {
		r.matchers = make(map[*store.Dict]*IDMatcher)
	}
	m := r.matchers[dict]
	if m == nil {
		m = &IDMatcher{refs: r, dict: dict}
		r.matchers[dict] = m
	}
	return m
}

// MatchCNAMEID returns the provider owning an interned CNAME target's
// SLD.
func (m *IDMatcher) MatchCNAMEID(id uint32) (int, bool) {
	if mp := m.cname.published.Load(); mp != nil {
		if p, ok := (*mp)[id]; ok {
			return int(p), p >= 0
		}
	}
	p := m.miss(id, &m.cname, m.refs.byCNAME)
	return int(p), p >= 0
}

// MatchNSID returns the provider owning an interned NS host's SLD.
func (m *IDMatcher) MatchNSID(id uint32) (int, bool) {
	if mp := m.ns.published.Load(); mp != nil {
		if p, ok := (*mp)[id]; ok {
			return int(p), p >= 0
		}
	}
	p := m.miss(id, &m.ns, m.refs.byNS)
	return int(p), p >= 0
}

// miss resolves an ID absent from the published snapshot: check pending
// under the lock, compute on a true miss, and republish when pending has
// grown enough to be worth folding in.
func (m *IDMatcher) miss(id uint32, c *idCache, index map[string]int) int16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The snapshot may have been republished while we waited.
	if mp := c.published.Load(); mp != nil {
		if p, ok := (*mp)[id]; ok {
			return p
		}
	}
	if p, ok := c.pending[id]; ok {
		return p
	}
	p := noProvider
	if i, hit := index[SLD(m.dict.Str(id))]; hit {
		p = int16(i)
	}
	if c.pending == nil {
		c.pending = make(map[uint32]int16)
	}
	c.pending[id] = p
	published := 0
	if mp := c.published.Load(); mp != nil {
		published = len(*mp)
	}
	if len(c.pending) >= 64+published/4 {
		next := make(map[uint32]int16, published+len(c.pending))
		if mp := c.published.Load(); mp != nil {
			for k, v := range *mp {
				next[k] = v
			}
		}
		for k, v := range c.pending {
			next[k] = v
		}
		c.published.Store(&next)
		c.pending = make(map[uint32]int16)
	}
	return p
}
