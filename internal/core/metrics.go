package core

import "dpsadopt/internal/obs"

// Detection-engine metrics. DetectRange is the shared parallel pass
// behind every figure, Table 1, and the dpsapi load-time index; these
// make its fan-out legible from /metrics while a build or run is in
// flight.
var (
	mDetectWorkers = obs.Default().Gauge("detect_workers",
		"goroutines currently inside DetectRange worker pools")
	mDetectPartitions = obs.Default().Counter("detect_partitions_total",
		"(source, day) partitions classified; rate() gives partitions/sec")
	mDetectRows = obs.Default().Counter("detect_rows_total",
		"rows classified against the reference table")
	mDetectSeconds = obs.Default().Histogram("detect_partition_seconds",
		"wall time to classify one partition", nil)
	mDetectRowRate = obs.Default().Histogram("detect_rows_per_second",
		"per-partition classification throughput (rows/sec)",
		[]float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8})
)

// Stage-resolved timing: where a DetectRange worker's time goes. Buckets
// reach down to 1µs because healthy queue waits are sub-microsecond and
// a partition's scan is tens to hundreds of µs at bench scales.
var (
	stageBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4,
		2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
	}
	mDetectStage = obs.Default().HistogramVec("detect_stage_seconds",
		"per-worker time by DetectRange stage (queue_wait, scan, merge, barrier)",
		"stage", stageBuckets)
	mStageQueueWait    = mDetectStage.With("queue_wait")
	mStageScan         = mDetectStage.With("scan")
	mStageMerge        = mDetectStage.With("merge")
	mStageBarrier      = mDetectStage.With("barrier")
	mDetectUtilization = obs.Default().Gauge("detect_worker_utilization",
		"busy fraction (scan+merge over pool capacity) of the last DetectRange call")
)
