package zones

import (
	"strings"
	"testing"

	"dpsadopt/internal/simtime"
)

func build(t *testing.T, cfg Config) *TLD {
	t.Helper()
	tld, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tld
}

func TestGrowthTargetsHit(t *testing.T) {
	cfg := Config{
		TLD:         "com",
		Window:      simtime.Range{Start: 0, End: 100},
		StartCount:  10000,
		EndCount:    11000,
		ChurnPerDay: 0.001,
		Seed:        1,
	}
	tld := build(t, cfg)
	if got := tld.ActiveCount(0); got != 10000 {
		t.Errorf("day 0 count = %d", got)
	}
	if got := tld.ActiveCount(99); got != 11000 {
		t.Errorf("day 99 count = %d", got)
	}
	// Growth should be roughly monotone day over day.
	prev := tld.ActiveCount(0)
	for d := simtime.Day(10); d < 100; d += 10 {
		cur := tld.ActiveCount(d)
		if cur < prev-20 {
			t.Errorf("population dropped: day %d %d -> %d", d, prev, cur)
		}
		prev = cur
	}
}

func TestChurnCreatesTurnover(t *testing.T) {
	cfg := Config{
		TLD:         "net",
		Window:      simtime.Range{Start: 0, End: 200},
		StartCount:  5000,
		EndCount:    5000,
		ChurnPerDay: 0.002, // 0.2%/day over 200 days ≈ 40% turnover
		Seed:        2,
	}
	tld := build(t, cfg)
	if tld.ObservedSLDs() <= 5000 {
		t.Errorf("no turnover: observed = %d", tld.ObservedSLDs())
	}
	// Observed should be ~5000 + 200*10 = ~7000.
	if tld.ObservedSLDs() < 6500 || tld.ObservedSLDs() > 7500 {
		t.Errorf("observed = %d, want ≈7000", tld.ObservedSLDs())
	}
	if got := tld.ActiveCount(199); got < 4950 || got > 5050 {
		t.Errorf("final count = %d, want ≈5000", got)
	}
}

func TestShrinkingTLD(t *testing.T) {
	cfg := Config{
		TLD:        "org",
		Window:     simtime.Range{Start: 0, End: 50},
		StartCount: 1000,
		EndCount:   900,
		Seed:       3,
	}
	tld := build(t, cfg)
	if got := tld.ActiveCount(49); got != 900 {
		t.Errorf("final = %d", got)
	}
}

func TestNamesUniqueAndValid(t *testing.T) {
	tld := build(t, Config{
		TLD: "com", Window: simtime.Range{Start: 0, End: 30},
		StartCount: 2000, EndCount: 2100, ChurnPerDay: 0.01, Seed: 4,
	})
	seen := make(map[string]bool, len(tld.Domains))
	for _, d := range tld.Domains {
		if seen[d.Name] {
			t.Fatalf("duplicate name %s", d.Name)
		}
		seen[d.Name] = true
		if !strings.HasSuffix(d.Name, ".com") {
			t.Fatalf("bad suffix: %s", d.Name)
		}
		if strings.Count(d.Name, ".") != 1 {
			t.Fatalf("not an SLD: %s", d.Name)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		TLD: "nl", Window: simtime.Range{Start: 366, End: 550},
		StartCount: 590, EndCount: 600, ChurnPerDay: 0.001, Seed: 42,
	}
	a := build(t, cfg)
	b := build(t, cfg)
	if a.ObservedSLDs() != b.ObservedSLDs() {
		t.Fatal("runs differ in size")
	}
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatalf("domain %d differs", i)
		}
	}
}

func TestForEachActive(t *testing.T) {
	tld := build(t, Config{
		TLD: "com", Window: simtime.Range{Start: 0, End: 10},
		StartCount: 100, EndCount: 110, Seed: 5,
	})
	n := 0
	tld.ForEachActive(5, func(i int, lt Lifetime) {
		if !lt.Active.Contains(5) {
			t.Fatal("inactive domain visited")
		}
		n++
	})
	if n != tld.ActiveCount(5) {
		t.Errorf("visited %d, ActiveCount %d", n, tld.ActiveCount(5))
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Build(Config{TLD: "x", Window: simtime.Range{Start: 5, End: 5}}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := Build(Config{TLD: "x", Window: simtime.Range{Start: 0, End: 5}, StartCount: -1}); err == nil {
		t.Error("negative count accepted")
	}
}
