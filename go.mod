module dpsadopt

go 1.22
