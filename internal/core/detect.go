package core

import (
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// DayDetections holds, for one (source, day) partition, every domain that
// references every provider, with the combination of reference kinds —
// the raw material for all the figures. Use is counted at the domain's
// second level: multiple references of the same kind collapse into one
// (§4.1 footnote).
type DayDetections struct {
	Source string
	Day    simtime.Day
	// Uses[p] maps domain name → reference methods toward provider p.
	Uses []map[string]Method
	// DomainsMeasured counts distinct domains with any stored row.
	DomainsMeasured int
}

// DetectDay scans one partition and classifies every row against the
// reference table.
func DetectDay(s *store.Store, source string, day simtime.Day, refs *References) *DayDetections {
	d := &DayDetections{
		Source: source,
		Day:    day,
		Uses:   make([]map[string]Method, refs.NumProviders()),
	}
	for i := range d.Uses {
		d.Uses[i] = make(map[string]Method)
	}
	var lastDomain string
	s.ForEachRow(source, day, func(r store.Row) {
		if r.Domain != lastDomain {
			// Rows are appended in per-domain runs; counting transitions
			// approximates the distinct count exactly because writers
			// emit all rows of a domain contiguously and domains are not
			// split across writers.
			d.DomainsMeasured++
			lastDomain = r.Domain
		}
		switch r.Kind {
		case store.KindApexA, store.KindApexAAAA, store.KindWWWA, store.KindWWWAAAA:
			for _, asn := range r.ASNs {
				if p, ok := refs.MatchASN(asn); ok {
					d.Uses[p][r.Domain] |= RefAS
				}
			}
		case store.KindWWWCNAME:
			if p, ok := refs.MatchCNAME(r.Str); ok {
				d.Uses[p][r.Domain] |= RefCNAME
			}
		case store.KindNS:
			if p, ok := refs.MatchNS(r.Str); ok {
				d.Uses[p][r.Domain] |= RefNS
			}
		}
	})
	return d
}

// Count returns the number of domains using provider p by any reference.
func (d *DayDetections) Count(p int) int { return len(d.Uses[p]) }

// CountMethod returns the number of domains whose references toward p
// include the given method bits.
func (d *DayDetections) CountMethod(p int, m Method) int {
	n := 0
	for _, got := range d.Uses[p] {
		if got.Has(m) {
			n++
		}
	}
	return n
}

// CountAny returns the number of domains using at least one provider.
func (d *DayDetections) CountAny() int {
	seen := make(map[string]bool)
	for _, uses := range d.Uses {
		for dom := range uses {
			seen[dom] = true
		}
	}
	return len(seen)
}

// MergeAny folds the per-provider maps into dst: domain → union of
// methods over a set of detections (used to combine sources).
func (d *DayDetections) MergeAny(p int, dst map[string]Method) {
	for dom, m := range d.Uses[p] {
		dst[dom] |= m
	}
}
