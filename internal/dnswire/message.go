package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by message packing and unpacking.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrTooManyRecords   = errors.New("dnswire: section count exceeds 4096")
	ErrMessageTooLarge  = errors.New("dnswire: packed message exceeds 65535 bytes")
)

// maxSectionRecords bounds per-section record counts on decode so that a
// hostile header cannot force large allocations.
const maxSectionRecords = 4096

// MaxUDPPayload is the classic DNS UDP payload limit; responses larger than
// the negotiated payload size are truncated with the TC bit set.
const MaxUDPPayload = 512

// Flags holds the header bit fields of a DNS message.
type Flags struct {
	Response           bool   // QR
	OpCode             OpCode // four-bit opcode
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	RCode              RCode  // four-bit response code
}

func (f Flags) pack() uint16 {
	var v uint16
	if f.Response {
		v |= 1 << 15
	}
	v |= uint16(f.OpCode&0xF) << 11
	if f.Authoritative {
		v |= 1 << 10
	}
	if f.Truncated {
		v |= 1 << 9
	}
	if f.RecursionDesired {
		v |= 1 << 8
	}
	if f.RecursionAvailable {
		v |= 1 << 7
	}
	v |= uint16(f.RCode & 0xF)
	return v
}

func unpackFlags(v uint16) Flags {
	return Flags{
		Response:           v&(1<<15) != 0,
		OpCode:             OpCode(v >> 11 & 0xF),
		Authoritative:      v&(1<<10) != 0,
		Truncated:          v&(1<<9) != 0,
		RecursionDesired:   v&(1<<8) != 0,
		RecursionAvailable: v&(1<<7) != 0,
		RCode:              RCode(v & 0xF),
	}
}

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation format.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record: an owner name plus typed RDATA.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file presentation format.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type, rr.Data)
}

// Message is a complete DNS message.
type Message struct {
	ID        uint16
	Flags     Flags
	Questions []Question
	Answers   []RR
	Authority []RR
	Extra     []RR
}

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		ID:    id,
		Flags: Flags{RecursionDesired: true},
		Questions: []Question{{
			Name:  name,
			Type:  qtype,
			Class: ClassIN,
		}},
	}
}

// Reply builds a response skeleton mirroring the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID: m.ID,
		Flags: Flags{
			Response:         true,
			OpCode:           m.Flags.OpCode,
			RecursionDesired: m.Flags.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(nil)
}

// AppendPack appends the wire encoding of the message to buf. Compression
// offsets are computed relative to the start of the appended message, so
// buf must be empty or the caller must only use the appended bytes as a
// standalone datagram starting at the original length of buf.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	base := len(buf)
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], m.ID)
	binary.BigEndian.PutUint16(hdr[2:], m.Flags.pack())
	for i, n := range []int{len(m.Questions), len(m.Answers), len(m.Authority), len(m.Extra)} {
		if n > maxSectionRecords {
			return nil, ErrTooManyRecords
		}
		binary.BigEndian.PutUint16(hdr[4+2*i:], uint16(n))
	}
	buf = append(buf, hdr[:]...)

	comp := compMap{base: base, off: make(map[string]int)}
	var err error
	for _, q := range m.Questions {
		if buf, err = comp.appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = be16(buf, uint16(q.Type))
		buf = be16(buf, uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Extra} {
		for _, rr := range sec {
			if buf, err = appendRR(buf, rr, &comp); err != nil {
				return nil, err
			}
		}
	}
	if len(buf)-base > 0xFFFF {
		return nil, ErrMessageTooLarge
	}
	return buf, nil
}

// compMap adapts the name compressor to messages packed at a nonzero buffer
// offset: pointers are stored relative to the message start.
type compMap struct {
	base int
	off  map[string]int
}

func (c *compMap) appendName(buf []byte, name string) ([]byte, error) {
	return appendName(buf, c.base, name, c.off)
}

func be16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func be32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendRR(buf []byte, rr RR, comp *compMap) ([]byte, error) {
	var err error
	if buf, err = comp.appendName(buf, rr.Name); err != nil {
		return nil, err
	}
	buf = be16(buf, uint16(rr.Type))
	buf = be16(buf, uint16(rr.Class))
	buf = be32(buf, rr.TTL)
	// Reserve RDLENGTH and backfill once the RDATA is encoded.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: record %s %s has nil RDATA", rr.Name, rr.Type)
	}
	if buf, err = rr.Data.appendRData(buf, comp); err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnswire: RDATA of %s exceeds 65535 bytes", rr.Name)
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a wire-format message.
func Unpack(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &Message{
		ID:    binary.BigEndian.Uint16(data[0:]),
		Flags: unpackFlags(binary.BigEndian.Uint16(data[2:])),
	}
	counts := [4]int{}
	for i := range counts {
		counts[i] = int(binary.BigEndian.Uint16(data[4+2*i:]))
		if counts[i] > maxSectionRecords {
			return nil, ErrTooManyRecords
		}
	}
	off := 12
	var err error
	for i := 0; i < counts[0]; i++ {
		var q Question
		if q.Name, off, err = unpackName(data, off); err != nil {
			return nil, err
		}
		if off+4 > len(data) {
			return nil, ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(data[off:]))
		q.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for sec, dst := range []*[]RR{&m.Answers, &m.Authority, &m.Extra} {
		for i := 0; i < counts[sec+1]; i++ {
			var rr RR
			if rr, off, err = unpackRR(data, off); err != nil {
				return nil, err
			}
			*dst = append(*dst, rr)
		}
	}
	return m, nil
}

func unpackRR(data []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	if rr.Name, off, err = unpackName(data, off); err != nil {
		return rr, 0, err
	}
	if off+10 > len(data) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Type = Type(binary.BigEndian.Uint16(data[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(data[off+4:])
	rdlen := int(binary.BigEndian.Uint16(data[off+8:]))
	off += 10
	if off+rdlen > len(data) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Data, err = unpackRData(rr.Type, data, off, rdlen)
	if err != nil {
		return rr, 0, err
	}
	return rr, off + rdlen, nil
}

// String renders the message in a dig-like multi-section format, which the
// examples use to show measurement responses.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d %s %s", m.ID, m.Flags.RCode, m.Flags.OpCode.flagString(m.Flags))
	sb.WriteByte('\n')
	if len(m.Questions) > 0 {
		sb.WriteString(";; QUESTION SECTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&sb, ";%s\n", q)
		}
	}
	for _, s := range []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Extra}} {
		if len(s.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s SECTION:\n", s.name)
		for _, rr := range s.rrs {
			sb.WriteString(rr.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func (o OpCode) flagString(f Flags) string {
	var parts []string
	if f.Response {
		parts = append(parts, "qr")
	}
	if f.Authoritative {
		parts = append(parts, "aa")
	}
	if f.Truncated {
		parts = append(parts, "tc")
	}
	if f.RecursionDesired {
		parts = append(parts, "rd")
	}
	if f.RecursionAvailable {
		parts = append(parts, "ra")
	}
	return strings.Join(parts, " ")
}
