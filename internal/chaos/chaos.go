// Package chaos is the deterministic fault-injection layer of the
// measurement system. The paper's 1.5-year crawl ran inside a misbehaving
// Internet — lost datagrams, dead nameservers, slow and truncating
// authoritatives, partial measurement days — and its pipeline had to
// detect and smooth the resulting anomalies (§4.2, Fig 5). This package
// lets the reproduction manufacture those conditions on demand: a
// transport.Network wrapper (Wrap) injects seeded, reproducible packet
// loss, duplication, reordering, latency and per-destination blackholes
// in front of any transport (Mem, UDP, MappedUDP), and ServerFaults gives
// authoritative servers SERVFAIL bursts, slow responses and forced
// truncation via the dnsserver.FaultInjector hook.
//
// Every fault decision is a pure function of (seed, flow, per-flow
// sequence number), never of wall-clock time or goroutine interleaving,
// so a run under chaos is reproducible: the same scenario and seed
// produce the same injected faults — and, for timing-independent faults
// (loss, blackholes, duplication, SERVFAIL, truncation), byte-identical
// failure accounting across runs regardless of worker scheduling.
//
// Scenarios bundle fault parameters under stable names (flaky-1pct,
// dead-ns, latency-spike, ...) so binaries can expose them as a single
// -fault-scenario flag.
package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Config describes one fault scenario: the datagram-level faults applied
// by the network wrapper and the query-level faults applied by
// authoritative servers. The zero value injects nothing.
type Config struct {
	// Name is the scenario name, for metrics and logs.
	Name string

	// --- network faults (applied by Wrap) ---

	// Loss is the independent per-datagram drop probability in [0,1).
	Loss float64
	// Duplicate is the probability a datagram is delivered twice.
	Duplicate float64
	// Reorder is the probability a datagram is held back and delivered
	// ReorderDelay later, letting a successor overtake it.
	Reorder float64
	// ReorderDelay is the hold-back applied to reordered datagrams
	// (default 2ms when Reorder > 0).
	ReorderDelay time.Duration
	// Latency is a fixed added one-way delivery delay.
	Latency time.Duration
	// Jitter is the maximum additional random delay on top of Latency.
	Jitter time.Duration
	// SpikeProb is the probability a datagram suffers SpikeDelay instead
	// of the normal Latency/Jitter — a tail-latency spike that can exceed
	// the resolver timeout and look like loss.
	SpikeProb float64
	// SpikeDelay is the delivery delay of spiked datagrams.
	SpikeDelay time.Duration
	// DeadFraction blackholes that fraction of destination IPs for the
	// whole run: every datagram to a dead address vanishes, simulating a
	// dead nameserver. Which addresses die is a deterministic function of
	// the seed.
	DeadFraction float64

	// --- server faults (applied by ServerFaults) ---

	// Servfail is the probability an authoritative answers SERVFAIL.
	// Decisions are made per burst window (serverBurst queries share one
	// decision), so failures arrive in bursts as real incidents do.
	Servfail float64
	// Slow is the probability a query is answered only after SlowDelay.
	Slow float64
	// SlowDelay is how long slow answers are delayed (default 100ms when
	// Slow > 0).
	SlowDelay time.Duration
	// Truncate is the probability a UDP answer is forcibly truncated
	// (TC set, sections cleared), pushing the client to TCP.
	Truncate float64
	// ServerDrop is the probability an authoritative silently ignores a
	// query (reads it, answers nothing).
	ServerDrop float64

	// --- coordination-plane faults (applied by CoordFaults) ---

	// CrashBeforeSave is the probability a worker dies after measuring a
	// partition but before its spool file hits disk — all work lost, the
	// lease expires, another worker redoes the partition.
	CrashBeforeSave float64
	// CrashAfterSave is the probability a worker dies after durably
	// saving its spool but before acking the commit — the dangerous
	// window where naive coordinators double-count. Recovery must find
	// the intact spool and commit it exactly once.
	CrashAfterSave float64
	// WorkerStall is the probability a worker freezes mid-partition for
	// longer than the lease TTL: the coordinator must re-lease the
	// partition, and when the stalled worker wakes up its stale commit
	// must be fenced off.
	WorkerStall float64
	// DupCommit is the probability a worker replays its commit ack — a
	// retried RPC in disguise. The second commit must be a no-op.
	DupCommit float64
	// CoordRestart is the probability the coordinator itself crashes
	// after a commit, forcing a journal replay that must requeue leased
	// partitions and skip committed ones.
	CoordRestart float64
	// TornWrite is the probability a committed spool file is torn at
	// rest (truncated to a random fraction) after the fact — silent
	// storage corruption the CRC layer must catch at assembly, feeding
	// the damaged partition into quarantine and the degraded-day ledger.
	TornWrite float64
}

// Active reports whether the config injects any network-level fault.
func (c Config) Active() bool {
	return c.Loss > 0 || c.Duplicate > 0 || c.Reorder > 0 || c.Latency > 0 ||
		c.Jitter > 0 || c.SpikeProb > 0 || c.DeadFraction > 0
}

// ServerActive reports whether the config injects any server-level fault.
func (c Config) ServerActive() bool {
	return c.Servfail > 0 || c.Slow > 0 || c.Truncate > 0 || c.ServerDrop > 0
}

// CoordActive reports whether the config injects any coordination-plane
// fault.
func (c Config) CoordActive() bool {
	return c.CrashBeforeSave > 0 || c.CrashAfterSave > 0 || c.WorkerStall > 0 ||
		c.DupCommit > 0 || c.CoordRestart > 0 || c.TornWrite > 0
}

// scenarios is the named-scenario registry. Keep parameters modest: a
// scenario models a bad day on the real Internet, not a severed cable —
// except dead-day, which models exactly that.
var scenarios = map[string]Config{
	"flaky-1pct": {
		Loss: 0.01,
	},
	"flaky-10pct": {
		Loss: 0.10,
	},
	"dead-ns": {
		// A quarter of the server population is unreachable: queries to
		// dead addresses always vanish, so resolution must route around
		// them via retries, rotation, and the client's circuit breaker.
		DeadFraction: 0.25,
	},
	"latency-spike": {
		Latency:    2 * time.Millisecond,
		Jitter:     3 * time.Millisecond,
		SpikeProb:  0.05,
		SpikeDelay: 600 * time.Millisecond, // beyond the default timeout
	},
	"dup-reorder": {
		Duplicate:    0.05,
		Reorder:      0.10,
		ReorderDelay: 2 * time.Millisecond,
	},
	"servfail-burst": {
		Servfail: 0.20,
	},
	"slow-server": {
		Slow:      0.15,
		SlowDelay: 100 * time.Millisecond,
	},
	"trunc-storm": {
		// Every UDP answer is truncated: resolution only completes if the
		// RFC 1035 §4.2.2 TCP retry path works, even with datagram loss
		// on top.
		Truncate: 1.0,
		Loss:     0.05,
	},
	"dead-day": {
		// A measurement day bad enough that it must be committed as
		// degraded: heavy loss plus server drops defeats the retry
		// budget for a visible share of resolutions.
		Loss:       0.45,
		ServerDrop: 0.20,
	},

	// --- coordination-plane scenarios ---

	"worker-crash": {
		// Workers die around the commit point: before the spool is
		// saved (work lost, partition re-leased) and in the
		// crash-after-save window (spool intact, must be committed
		// exactly once on recovery).
		CrashBeforeSave: 0.15,
		CrashAfterSave:  0.25,
	},
	"worker-stall": {
		// Workers freeze past the lease TTL; the coordinator re-leases
		// and the late commit from the original holder must be fenced.
		WorkerStall: 0.3,
	},
	"dup-commit": {
		// Commit acks are replayed; the second ack must be a no-op.
		DupCommit: 0.5,
	},
	"coord-restart": {
		// The coordinator crashes after commits and replays its
		// journal: committed partitions skipped, leased ones requeued.
		CoordRestart: 0.25,
	},
	"torn-write": {
		// Committed spool files are torn at rest; the CRC layer must
		// quarantine them at assembly and mark the day degraded.
		TornWrite: 0.5,
	},
	"coord-havoc": {
		// The whole coordination crash matrix at moderate rates in a
		// single run. Torn writes are kept separate (torn-write) so a
		// havoc run still assembles an undamaged dataset.
		CrashBeforeSave: 0.08,
		CrashAfterSave:  0.10,
		WorkerStall:     0.10,
		DupCommit:       0.15,
		CoordRestart:    0.10,
	},
}

// Scenario returns the named fault configuration.
func Scenario(name string) (Config, error) {
	c, ok := scenarios[name]
	if !ok {
		return Config{}, fmt.Errorf("chaos: unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	c.Name = name
	if c.Reorder > 0 && c.ReorderDelay == 0 {
		c.ReorderDelay = 2 * time.Millisecond
	}
	if c.Slow > 0 && c.SlowDelay == 0 {
		c.SlowDelay = 100 * time.Millisecond
	}
	return c, nil
}

// ScenarioNames lists the known scenarios, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---- deterministic decision hashing ----

// mix is splitmix64: a strong 64-bit finalizer used to derive independent
// decision streams from (seed, flow, sequence) tuples. Decisions must
// not consume from a shared PRNG — that would make them depend on
// goroutine interleaving — so every decision hashes its own coordinates.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix2 folds two words.
func mix2(a, b uint64) uint64 { return mix(mix(a) ^ b) }

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hashString folds a string (an address, a qname) into a word.
func hashString(s string) uint64 {
	// FNV-1a, inlined to keep the package dependency-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
