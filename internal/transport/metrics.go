package transport

import "dpsadopt/internal/obs"

// Process-wide transport metrics, registered on the default registry so
// every network instance (in-memory or UDP) feeds the same series.
var (
	mPacketsSent = obs.Default().Counter("transport_packets_sent_total",
		"datagrams delivered to a bound endpoint")
	mPacketsDropped = obs.Default().Counter("transport_packets_dropped_total",
		"datagrams dropped by loss simulation or queue overflow")
	mBytesSent = obs.Default().Counter("transport_bytes_sent_total",
		"payload bytes of delivered datagrams")
)
