// Package core implements the paper's methodology (§3.3–§3.4): deriving
// DDoS-protection-service use from stored DNS measurements. Given the
// per-provider reference identities (AS numbers, CNAME second-level
// domains, NS second-level domains — Table 2), detection classifies every
// measured domain on every day by which references it exhibits; the
// discovery procedure reconstructs those identities from the measurement
// data itself, starting from AS-to-name seeds.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpsadopt/internal/store"
)

// Method is a bitmask of reference kinds a domain exhibits toward a
// provider (§3.3: ASN, CNAME, and NS references).
type Method uint8

// Reference kinds.
const (
	RefAS Method = 1 << iota
	RefCNAME
	RefNS
)

// Has reports whether all bits of m2 are set.
func (m Method) Has(m2 Method) bool { return m&m2 == m2 }

// String renders e.g. "AS+CNAME".
func (m Method) String() string {
	var parts []string
	if m.Has(RefAS) {
		parts = append(parts, "AS")
	}
	if m.Has(RefCNAME) {
		parts = append(parts, "CNAME")
	}
	if m.Has(RefNS) {
		parts = append(parts, "NS")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ProviderRefs is one provider's reference identity (a Table 2 row).
type ProviderRefs struct {
	Name      string
	ASNs      []uint32
	CNAMESLDs []string
	NSSLDs    []string
}

// normalize sorts the reference lists for stable comparison.
func (p *ProviderRefs) normalize() {
	sort.Slice(p.ASNs, func(i, j int) bool { return p.ASNs[i] < p.ASNs[j] })
	sort.Strings(p.CNAMESLDs)
	sort.Strings(p.NSSLDs)
}

// String renders the row in Table 2 shape.
func (p ProviderRefs) String() string {
	asns := make([]string, len(p.ASNs))
	for i, a := range p.ASNs {
		asns[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("%-12s AS:%s CNAME:%s NS:%s",
		p.Name, strings.Join(asns, ","), strings.Join(p.CNAMESLDs, ","), strings.Join(p.NSSLDs, ","))
}

// References is the full provider reference database with lookup indexes.
// It must not be copied after first use (the ID-matcher cache carries a
// mutex); share it by pointer, as every caller does.
type References struct {
	Providers []ProviderRefs

	byASN map[uint32]int
	// asnDense is a flat ASN→provider table covering the small ASNs
	// (the overwhelmingly common case), so the per-ASN probe in the
	// detection hot loop is an array load instead of a map hash;
	// noProvider marks unclaimed slots. ASNs beyond its length fall
	// back to byASN.
	asnDense []int16
	byCNAME  map[string]int
	byNS     map[string]int

	// matchers caches one IDMatcher per store dictionary, so repeated
	// DetectDay calls over the same store amortize every SLD extraction.
	matcherMu sync.Mutex
	matchers  map[*store.Dict]*IDMatcher
}

// NewReferences builds the indexes for a set of provider rows. Reference
// values must not collide across providers.
func NewReferences(provs []ProviderRefs) (*References, error) {
	r := &References{
		Providers: provs,
		byASN:     make(map[uint32]int),
		byCNAME:   make(map[string]int),
		byNS:      make(map[string]int),
	}
	for i := range r.Providers {
		r.Providers[i].normalize()
		p := &r.Providers[i]
		for _, a := range p.ASNs {
			if prev, dup := r.byASN[a]; dup && prev != i {
				return nil, fmt.Errorf("core: ASN %d claimed by %s and %s", a, r.Providers[prev].Name, p.Name)
			}
			r.byASN[a] = i
		}
		for _, s := range p.CNAMESLDs {
			if prev, dup := r.byCNAME[s]; dup && prev != i {
				return nil, fmt.Errorf("core: CNAME SLD %s claimed twice", s)
			}
			r.byCNAME[s] = i
		}
		for _, s := range p.NSSLDs {
			if prev, dup := r.byNS[s]; dup && prev != i {
				return nil, fmt.Errorf("core: NS SLD %s claimed twice", s)
			}
			r.byNS[s] = i
		}
	}
	// Densify: real origin-AS numbers are small, so one flat table
	// covers essentially every probe (capped so a stray 32-bit ASN
	// cannot balloon the allocation).
	const denseCap = 1 << 20
	maxASN := uint32(0)
	for a := range r.byASN {
		if a > maxASN {
			maxASN = a
		}
	}
	if len(r.byASN) > 0 && maxASN < denseCap {
		r.asnDense = make([]int16, maxASN+1)
		for i := range r.asnDense {
			r.asnDense[i] = noProvider
		}
		for a, p := range r.byASN {
			r.asnDense[a] = int16(p)
		}
	}
	return r, nil
}

// NumProviders returns the number of providers in the table.
func (r *References) NumProviders() int { return len(r.Providers) }

// ProviderIndex finds a provider by name.
func (r *References) ProviderIndex(name string) (int, bool) {
	for i := range r.Providers {
		if r.Providers[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// MatchASN returns the provider owning an origin AS.
func (r *References) MatchASN(asn uint32) (int, bool) {
	if int(asn) < len(r.asnDense) {
		p := r.asnDense[asn]
		return int(p), p >= 0
	}
	i, ok := r.byASN[asn]
	return i, ok
}

// MatchCNAME returns the provider owning a CNAME target's SLD.
func (r *References) MatchCNAME(target string) (int, bool) {
	i, ok := r.byCNAME[SLD(target)]
	return i, ok
}

// MatchNS returns the provider owning an NS host's SLD.
func (r *References) MatchNS(host string) (int, bool) {
	i, ok := r.byNS[SLD(host)]
	return i, ok
}

// IDMatcher resolves interned CNAME/NS values to providers by dictionary
// ID: the first lookup of an ID pays one Dict.Str + SLD extraction, every
// later one is a single atomic array load (negative results are cached
// too — almost every NS host in a measurement resolves to no provider).
// Dictionary IDs are stable for the life of a store, so entries never
// invalidate. Safe for concurrent use by DetectRange workers.
type IDMatcher struct {
	refs *References
	dict *store.Dict

	mu    sync.Mutex // serializes table growth only
	cname idCache
	ns    idCache
}

// idCache is a dense ID→provider table exploiting the dictionary's
// sequential ID space: slot id holds 0 (unresolved) or the provider
// encoded as p+2, so the cached "no provider" answer (−1) becomes 1 and
// stays distinguishable from an untouched slot. Hits and misses alike
// are lock-free — a miss recomputes the answer and stores it with a
// plain atomic write. The answer is a pure function of the ID, so a
// racing store by another worker writes the same value; the mutex only
// serializes growing the table when an ID beyond its length appears.
// This replaced a copy-on-write map snapshot whose miss-path lock and
// geometric republishing dominated the mutex profile under DetectRange
// fan-out (see DESIGN.md §10).
type idCache struct {
	table atomic.Pointer[[]atomic.Int32]
}

// get returns the cached provider for an ID, if resolved.
func (c *idCache) get(id uint32) (int16, bool) {
	t := c.table.Load()
	if t == nil || int(id) >= len(*t) {
		return 0, false
	}
	v := (*t)[id].Load()
	if v == 0 {
		return 0, false
	}
	return int16(v - 2), true
}

// set records an answer, growing the table under mu when the ID is out
// of range. A store lost to a concurrent grow only costs a later
// recompute of the same value.
func (c *idCache) set(id uint32, p int16, mu *sync.Mutex, minLen int) {
	t := c.table.Load()
	if t == nil || int(id) >= len(*t) {
		mu.Lock()
		t = c.table.Load()
		if t == nil || int(id) >= len(*t) {
			n := max(minLen, int(id)+1)
			if t != nil {
				n = max(n, 2*len(*t))
			}
			next := make([]atomic.Int32, n)
			if t != nil {
				for i := range *t {
					next[i].Store((*t)[i].Load())
				}
			}
			c.table.Store(&next)
			t = &next
		}
		mu.Unlock()
	}
	(*t)[id].Store(int32(p) + 2)
}

// noProvider is the cached negative lookup.
const noProvider = int16(-1)

// ForDict returns the ID matcher binding these references to a store
// dictionary, creating and caching it on first use.
func (r *References) ForDict(dict *store.Dict) *IDMatcher {
	r.matcherMu.Lock()
	defer r.matcherMu.Unlock()
	if r.matchers == nil {
		r.matchers = make(map[*store.Dict]*IDMatcher)
	}
	m := r.matchers[dict]
	if m == nil {
		m = &IDMatcher{refs: r, dict: dict}
		r.matchers[dict] = m
	}
	return m
}

// MatchCNAMEID returns the provider owning an interned CNAME target's
// SLD.
func (m *IDMatcher) MatchCNAMEID(id uint32) (int, bool) {
	if p, ok := m.cname.get(id); ok {
		return int(p), p >= 0
	}
	p := m.miss(id, &m.cname, m.refs.byCNAME)
	return int(p), p >= 0
}

// MatchNSID returns the provider owning an interned NS host's SLD.
func (m *IDMatcher) MatchNSID(id uint32) (int, bool) {
	if p, ok := m.ns.get(id); ok {
		return int(p), p >= 0
	}
	p := m.miss(id, &m.ns, m.refs.byNS)
	return int(p), p >= 0
}

// miss resolves an unresolved ID — one Dict.Str + SLD extraction + index
// probe — and caches the answer, sizing a fresh table to the dictionary
// so steady state needs no further growth.
func (m *IDMatcher) miss(id uint32, c *idCache, index map[string]int) int16 {
	p := noProvider
	if i, hit := index[SLD(m.dict.Str(id))]; hit {
		p = int16(i)
	}
	c.set(id, p, &m.mu, m.dict.Len())
	return p
}
