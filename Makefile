# Developer entry points. `make check` is the tier-1 verification going
# forward: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test test-race bench benchdiff chaos api benchscale benchscale-smoke coord coord-smoke follow follow-smoke scale-smoke

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Every Benchmark* in the module, with allocation stats. The root
# artifact benchmarks persist their numbers to results/BENCH_*.json
# (detect, obs, trace, chaos, api); CI uploads those as an artifact.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Rerun the serving + detection benchmarks and diff their JSON against
# the committed copies at HEAD, warning on >20% regressions (advisory;
# BENCHDIFF_STRICT=1 to fail, BENCHDIFF_SKIP_REGEN=1 to diff only).
benchdiff:
	sh scripts/benchdiff.sh

# Fault-injection suite under the race detector: the chaos package's
# determinism proofs, server fault/drain tests, resolver hardening under
# loss, and the end-to-end degraded-day accounting + Fig 5 recovery
# integration tests. Seeds are fixed in the tests, so failures reproduce.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Degraded|Loss|Trunc|Rotation|Health|Breaker|Budget|Scenario|Interpolate|SmoothMasked|StopDrains' \
		./internal/chaos/ ./internal/dnsserver/ ./internal/dnsclient/ ./internal/analysis/ ./internal/experiment/ ./internal/coord/

# Coordination-plane suite under the race detector: lease fencing,
# journal replay/torn tails, exactly-once commits, the chaos scenario
# runs, and the coordinator-vs-RunDay integration identity, plus the
# crash-safe store tests the spool layer leans on.
coord:
	$(GO) test -race ./internal/coord/ ./internal/store/

# Real-process smoke of the coordination plane: dpscoord with 3 workers
# under worker-crash (exactly-once ledger assertion) and torn-write
# (CRC quarantine assertion). Mirrors the CI coord-smoke job.
coord-smoke:
	sh scripts/coord_smoke.sh

# Serving-layer suite: the api package's handler/cache/admission tests
# and the store partition-directory tests under the race detector, then
# a real-process smoke test (measure -> save -> dpsapi -> curl every
# route -> assert cache hits -> SIGTERM drain).
api:
	$(GO) test -race ./internal/api/ ./internal/store/
	sh scripts/api_smoke.sh

# Live-follower suite under the race detector: delta-apply equivalence,
# publish/invalidation precision, stale-fill fencing, journal tailing,
# and the follower e2e tests (coord feed, dataset feed, damaged-spool
# skip, seeded boot).
follow:
	$(GO) test -race ./internal/follow/ ./internal/api/ ./internal/coord/

# Real-process smoke of the live tier: dpsapi -follow boots empty,
# dpscoord commits days into the followed directory, every probe during
# catch-up must answer, the index converges (lag 0, last day queryable),
# and dpsdata -ledger agrees. Mirrors the CI follow-smoke job.
follow-smoke:
	sh scripts/follow_smoke.sh

# Full detection scaling sweep: GOMAXPROCS × workers over a generated
# world, one row per cell into results/BENCH_detect.json, pprof mutex
# profile + per-cell CPU profiles into results/profiles/. This is the
# scaling observatory's headline artifact (DESIGN.md §10).
benchscale:
	$(GO) run ./cmd/dpsbench -scale 50000 -days 4 \
		-gomaxprocs 1,2,4 -workers 1,2,4 -mintime 1s \
		-out results/BENCH_detect.json -profiles results/profiles -prof-mutex 2

# Tiny 2-cell sweep asserting dpsbench runs end to end and its JSON
# carries the sweep/v2 schema. Mirrors the CI benchscale-smoke job.
benchscale-smoke:
	sh scripts/benchscale_smoke.sh

# Out-of-core smoke: small dpsbench -scalesweep, asserting the scale/v1
# schema, streaming-vs-full index parity, a bounded streaming:full peak
# heap ratio, and an absolute streaming RSS ceiling. Mirrors the CI
# scale-smoke job.
scale-smoke:
	sh scripts/scale_smoke.sh
