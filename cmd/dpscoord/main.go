// Command dpscoord runs the measurement pipeline through the
// fault-tolerant coordination plane: a coordinator owns a durable work
// ledger of (source, day) partitions and leases them to N workers, each
// measuring one partition at a time into a checksummed spool file.
// Leases are fenced and expire on missed heartbeats, commits are
// idempotent and fsync-journaled, so every partition lands in the final
// dataset exactly once even under the coordination chaos scenarios
// (worker-crash, worker-stall, dup-commit, coord-restart, torn-write,
// coord-havoc; see -fault-scenario).
//
// A chaos-injected coordinator crash is survived in-process: the driver
// loop rebuilds the coordinator over the same directory and the journal
// replay requeues abandoned leases and skips committed partitions.
// After the run the committed spools are assembled into one dataset;
// spools torn at rest are caught by the store's CRC layer, moved into
// quarantine/, and reported as degraded instead of corrupting the
// output.
//
// SIGINT/SIGTERM cancel the run between partitions: the committed-so-far
// ledger is journaled and printed, and the process exits 130. A rerun
// over the same -dir resumes where the run stopped.
//
// Usage:
//
//	dpscoord [-scale 100000] [-days 3] [-workers 3] [-measure-workers 1]
//	         [-dir coordrun] [-out data.dpsa] [-ledger-out ledger.json]
//	         [-fault-scenario worker-crash] [-fault-seed 42]
//	         [-lease-ttl 1s] [-max-attempts 6] [-quiet] [-log-json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/coord"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		scale          = flag.Int("scale", 100_000, "world scale divisor")
		days           = flag.Int("days", 3, "days to measure")
		workers        = flag.Int("workers", 3, "coordination workers (leased partitions in flight)")
		measureWorkers = flag.Int("measure-workers", 1, "measurement workers inside each partition")
		dir            = flag.String("dir", "", "coordination directory for journal + spools (default: a temp dir)")
		out            = flag.String("out", "", "write the assembled dataset to this .dpsa file")
		ledgerOut      = flag.String("ledger-out", "", "write the final partition ledger to this JSON file")
		quiet          = flag.Bool("quiet", false, "suppress progress logging (warnings still shown)")
		logJSON        = flag.Bool("log-json", false, "emit structured logs as JSON")

		faultScenario = flag.String("fault-scenario", "",
			"chaos scenario ("+strings.Join(chaos.ScenarioNames(), ", ")+"); coordination faults apply here, empty = fault-free")
		faultSeed   = flag.Uint64("fault-seed", 0, "seed pinning the fault schedule; same scenario+seed = same faults")
		leaseTTL    = flag.Duration("lease-ttl", time.Second, "lease TTL without a heartbeat")
		maxAttempts = flag.Int("max-attempts", 6, "leases a partition may burn before failing permanently")
	)
	flag.Parse()

	if *logJSON {
		obs.SetLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, true))
	}
	if *quiet {
		obs.SetQuiet()
	}
	log := obs.Logger()

	var faults *chaos.CoordFaults
	if *faultScenario != "" {
		fc, err := chaos.Scenario(*faultScenario)
		if err != nil {
			fatal(err)
		}
		if !fc.CoordActive() {
			fatal(fmt.Errorf("scenario %q has no coordination-plane faults; dpscoord injects coordination chaos only (use dpsmeasure -mode wire for network/server faults)", *faultScenario))
		}
		faults = chaos.NewCoordFaults(fc, *faultSeed)
		log.Info("coordination fault injection armed", "scenario", *faultScenario, "seed", *faultSeed)
	}

	coordDir := *dir
	if coordDir == "" {
		td, err := os.MkdirTemp("", "dpscoord-*")
		if err != nil {
			fatal(err)
		}
		coordDir = td
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	world, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	log.Info("world built", "stats", world.Stats())

	// The partition axis: every (source, day) of the run window slice.
	probe := measure.New(world, store.New(), measure.Config{Mode: measure.ModeDirect, Workers: 1})
	var parts []coord.Partition
	for d := 0; d < *days; d++ {
		day := world.Cfg.Window.Start + simtime.Day(d)
		for _, src := range probe.DaySources(day) {
			parts = append(parts, coord.Partition{Source: src, Day: day})
		}
	}
	if len(parts) == 0 {
		fatal(fmt.Errorf("no (source, day) partitions in the first %d days", *days))
	}

	cfg := coord.Config{
		Dir:         coordDir,
		Workers:     *workers,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		Faults:      faults,
		Seed:        *faultSeed,
		Work: func(ctx context.Context, p coord.Partition, attempt int) (*store.Store, error) {
			s := store.New()
			pipe := measure.New(world, s, measure.Config{Mode: measure.ModeDirect, Workers: *measureWorkers})
			if err := pipe.RunPartition(ctx, p.Source, p.Day); err != nil {
				return nil, err
			}
			return s, nil
		},
	}

	// The driver loop: a chaos-injected coordinator crash surfaces as
	// ErrRestart; rebuilding over the same directory replays the journal.
	start := time.Now()
	var c *coord.Coordinator
	restarts := 0
	for {
		c, err = coord.New(cfg, parts)
		if err != nil {
			fatal(err)
		}
		err = c.Run(ctx)
		if errors.Is(err, coord.ErrRestart) {
			restarts++
			log.Warn("coordinator crashed (chaos); replaying journal", "restarts", restarts)
			continue
		}
		break
	}
	stats := c.Stats()
	log.Info("coordination run finished",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"partitions", stats.Partitions, "committed", stats.Committed,
		"failed", stats.Failed, "restarts", restarts)

	ledger := c.Ledger()
	if *ledgerOut != "" {
		data, merr := json.MarshalIndent(ledger, "", "  ")
		if merr != nil {
			fatal(merr)
		}
		if werr := os.WriteFile(*ledgerOut, append(data, '\n'), 0o644); werr != nil {
			fatal(werr)
		}
		log.Info("ledger written", "path", *ledgerOut)
	}

	interrupted := err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil)
	if interrupted {
		// The committed-so-far ledger is durable in the journal; print
		// it so the operator sees where the run stopped.
		printLedger(ledger)
		fmt.Printf("interrupted: %d/%d partitions committed; rerun with -dir %s to resume\n",
			stats.Committed, stats.Partitions, coordDir)
		os.Exit(130)
	}
	if err != nil {
		printLedger(ledger)
		fatal(err)
	}

	if stats.Committed == stats.Partitions {
		fmt.Printf("ledger complete: %d (source, day) partitions committed exactly once\n", stats.Committed)
	}

	assembled, damaged, err := c.Assemble()
	if err != nil {
		fatal(err)
	}
	for _, d := range damaged {
		log.Warn("spool torn at rest; partition quarantined and day degraded",
			"partition", d.Partition.String(), "quarantine", d.QuarantinePath, "err", d.Err)
	}
	if !*quiet {
		printLedger(ledger)
		if len(damaged) > 0 {
			fmt.Printf("\ndegraded partitions (torn at rest, quarantined under %s):\n", filepath.Dir(damaged[0].QuarantinePath))
			for _, d := range damaged {
				fmt.Printf("  %-20s %s\n", d.Partition.String(), d.Err)
			}
		}
	}

	rows := int64(0)
	for _, src := range assembled.Sources() {
		rows += assembled.SourceStats(src).DataPoints
	}
	fmt.Printf("dataset verified: %d partitions assembled, %d rows, %d quarantined\n",
		stats.Committed-len(damaged), rows, len(damaged))

	if *out != "" {
		if err := assembled.Save(*out); err != nil {
			fatal(err)
		}
		if err := store.Verify(*out); err != nil {
			fatal(fmt.Errorf("saved dataset failed verification: %w", err))
		}
		log.Info("dataset written", "path", *out)
	}
}

func printLedger(ledger []coord.PartitionStatus) {
	fmt.Printf("\n%-8s %-12s %-10s %9s  %s\n", "source", "day", "state", "attempts", "note")
	for _, row := range ledger {
		note := row.Err
		if row.State == coord.StateCommitted {
			note = ""
		}
		fmt.Printf("%-8s %-12s %-10s %9d  %s\n", row.Source, row.Day, row.State, row.Attempts, note)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpscoord:", err)
	os.Exit(1)
}
