package dnsclient

import "dpsadopt/internal/obs"

// Process-wide resolver metrics. The pipeline creates one Resolver per
// worker per day; registering on the default registry aggregates them
// into stable series across the whole run.
var (
	mQueries = obs.Default().Counter("dns_client_queries_total",
		"query datagrams sent (UDP and TCP)")
	mRetries = obs.Default().Counter("dns_client_retries_total",
		"query retransmissions after a lost or unanswered datagram")
	mTimeouts = obs.Default().Counter("dns_client_timeouts_total",
		"attempts that expired without a matching response")
	mTCPFallback = obs.Default().Counter("dns_client_tcp_fallback_total",
		"truncated UDP responses retried over TCP")
	mErrors = obs.Default().Counter("dns_client_errors_total",
		"resolutions that returned an error (retries exhausted, referral limit, ...)")
	mRCodes = obs.Default().CounterVec("dns_client_rcode_total",
		"responses by DNS RCODE", "rcode")
	mQueryLatency = obs.Default().Histogram("dns_client_query_seconds",
		"latency of one query exchange, send to matching response", nil)
	mBreakerOpen = obs.Default().Counter("dns_client_breaker_open_total",
		"per-server circuit breakers tripped by consecutive timeouts")
	mBreakerClose = obs.Default().Counter("dns_client_breaker_close_total",
		"per-server circuit breakers closed again by a successful exchange")
	mBudgetExhausted = obs.Default().Counter("dns_client_budget_exhausted_total",
		"resolutions abandoned because the per-resolution retry budget ran out")
)
