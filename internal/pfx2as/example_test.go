package pfx2as_test

import (
	"fmt"
	"net/netip"
	"strings"

	"dpsadopt/internal/pfx2as"
)

// Example shows the §3.2 supplementation path: parse a Routeviews-format
// snapshot and map an address to the origin AS of its most specific
// covering prefix.
func Example() {
	snapshot := `
10.0.0.0	8	64600
10.13.0.0	16	19551
203.0.113.0	24	19551_55002
`
	entries, _ := pfx2as.Parse(strings.NewReader(snapshot))
	table := pfx2as.NewWalk(entries)

	origins, _ := table.Lookup(netip.MustParseAddr("10.13.25.29"))
	fmt.Println("10.13.25.29 →", origins)
	origins, _ = table.Lookup(netip.MustParseAddr("203.0.113.9"))
	fmt.Println("203.0.113.9 →", origins, "(multi-origin)")
	_, ok := table.Lookup(netip.MustParseAddr("192.0.2.1"))
	fmt.Println("192.0.2.1 covered:", ok)
	// Output:
	// 10.13.25.29 → [19551]
	// 203.0.113.9 → [19551 55002] (multi-origin)
	// 192.0.2.1 covered: false
}
