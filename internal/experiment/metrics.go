package experiment

import "dpsadopt/internal/obs"

// Run-level progress metrics. A 550-day reproduction is a long-running
// job; these gauges make an in-flight run legible from /metrics without
// attaching a callback.
var (
	mDaysTotal = obs.Default().Gauge("experiment_days_total",
		"days in the configured run window")
	mDaysCompleted = obs.Default().Gauge("experiment_days_completed",
		"days measured and aggregated so far")
	mRowsSeen = obs.Default().Counter("experiment_rows_total",
		"rows folded into the aggregation across the run")
	mDetected = obs.Default().Gauge("experiment_detected_domains",
		"gTLD domains using any DPS on the most recent measured day")
	mDegradedDays = obs.Default().Counter("experiment_degraded_days_total",
		"wire days committed above the resolution failure threshold")
	mQueriesLost = obs.Default().Counter("experiment_queries_lost_total",
		"wire query attempts that expired unanswered, across the run")
	mFailureRate = obs.Default().Gauge("experiment_day_failure_rate",
		"resolution failure rate of the most recent measured day")
)
