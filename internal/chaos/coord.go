package chaos

// Coordination-plane fault decisions. Unlike the datagram layer, the
// unit of failure here is a (source, day, attempt) work item: whether a
// worker crashes before or after saving its spool, stalls past its
// lease, replays a commit, whether the coordinator restarts after a
// commit, and whether a committed spool file is torn at rest. Every
// decision is a pure hash of (seed, source, day, attempt, salt) — never
// a shared PRNG — so the same scenario and seed produce the same fault
// schedule regardless of how workers interleave, and a retried attempt
// (attempt+1) rolls fresh decisions instead of failing forever.

// Salts separating the per-attempt decision streams.
const (
	saltCrashBeforeSave = 0xc0de_0001
	saltCrashAfterSave  = 0xc0de_0002
	saltWorkerStall     = 0xc0de_0003
	saltDupCommit       = 0xc0de_0004
	saltCoordRestart    = 0xc0de_0005
	saltTornWrite       = 0xc0de_0006
	saltTornFrac        = 0xc0de_0007
)

// CoordFaults makes deterministic coordination-plane fault decisions
// for one run. A nil *CoordFaults injects nothing, so callers can hold
// one unconditionally.
type CoordFaults struct {
	cfg  Config
	seed uint64
}

// NewCoordFaults builds the decision-maker for a scenario. Returns nil
// (inject nothing) when the config has no coordination faults.
func NewCoordFaults(cfg Config, seed uint64) *CoordFaults {
	if !cfg.CoordActive() {
		return nil
	}
	return &CoordFaults{cfg: cfg, seed: seed}
}

// decide hashes one (source, day, attempt, salt) coordinate into [0,1).
func (c *CoordFaults) decide(source string, day int64, attempt int, salt uint64) float64 {
	h := mix2(c.seed, hashString(source))
	h = mix2(h, uint64(day))
	h = mix2(h, uint64(attempt))
	h = mix2(h, salt)
	return unit(h)
}

// CrashBeforeSave reports whether this attempt dies before its spool
// file is saved: all measured rows are lost and the lease must expire.
func (c *CoordFaults) CrashBeforeSave(source string, day int64, attempt int) bool {
	if c == nil || c.cfg.CrashBeforeSave <= 0 {
		return false
	}
	return c.decide(source, day, attempt, saltCrashBeforeSave) < c.cfg.CrashBeforeSave
}

// CrashAfterSave reports whether this attempt dies after durably saving
// its spool but before acking the commit — the exactly-once window.
func (c *CoordFaults) CrashAfterSave(source string, day int64, attempt int) bool {
	if c == nil || c.cfg.CrashAfterSave <= 0 {
		return false
	}
	return c.decide(source, day, attempt, saltCrashAfterSave) < c.cfg.CrashAfterSave
}

// WorkerStall reports whether this attempt freezes mid-partition for
// longer than the lease TTL, forcing a re-lease and fencing the
// stalled holder's eventual commit.
func (c *CoordFaults) WorkerStall(source string, day int64, attempt int) bool {
	if c == nil || c.cfg.WorkerStall <= 0 {
		return false
	}
	return c.decide(source, day, attempt, saltWorkerStall) < c.cfg.WorkerStall
}

// DupCommit reports whether this attempt replays its commit ack after
// the first one succeeds.
func (c *CoordFaults) DupCommit(source string, day int64, attempt int) bool {
	if c == nil || c.cfg.DupCommit <= 0 {
		return false
	}
	return c.decide(source, day, attempt, saltDupCommit) < c.cfg.DupCommit
}

// CoordRestart reports whether the coordinator crashes right after
// committing this partition, forcing a journal replay.
func (c *CoordFaults) CoordRestart(source string, day int64, attempt int) bool {
	if c == nil || c.cfg.CoordRestart <= 0 {
		return false
	}
	return c.decide(source, day, attempt, saltCoordRestart) < c.cfg.CoordRestart
}

// TornWrite reports whether this partition's committed spool file is
// torn at rest, and if so to what fraction of its length the file is
// truncated (in (0,1), never empty so the tear is a genuine torn tail
// rather than a missing file).
func (c *CoordFaults) TornWrite(source string, day int64) (frac float64, torn bool) {
	if c == nil || c.cfg.TornWrite <= 0 {
		return 0, false
	}
	// Torn-at-rest damage is a property of the partition, not of any
	// particular attempt: attempt 0 keys the decision.
	if c.decide(source, day, 0, saltTornWrite) >= c.cfg.TornWrite {
		return 0, false
	}
	f := c.decide(source, day, 0, saltTornFrac)
	// Clamp into (0.05, 0.95) so the tear neither empties the file nor
	// leaves it effectively whole.
	frac = 0.05 + 0.9*f
	return frac, true
}
