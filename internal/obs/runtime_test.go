package obs

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRuntimeCollectorRegisters asserts the collector's metric families
// land in the registry under their documented names with live values.
func TestRuntimeCollectorRegisters(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Hour) // loop effectively idle; constructor polls once
	defer c.Close()

	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"go_goroutines", "go_gomaxprocs", "go_heap_live_bytes",
		"go_heap_goal_bytes", "go_heap_objects", "go_gc_cycles_total",
		"go_gc_cpu_seconds_total", "go_cpu_seconds_total",
		"go_mutex_wait_seconds_total", "go_gc_pause_seconds",
		"go_sched_latency_seconds", "build_info",
		"process_num_cpu", "process_uptime_seconds",
		"process_start_time_seconds", "process_rss_bytes",
	} {
		if !names[want] {
			t.Errorf("collector did not register %q", want)
		}
	}

	snap := reg.Snapshot()
	if g := snap.Gauges["go_goroutines"]; g < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", g)
	}
	if g := snap.Gauges["go_gomaxprocs"]; g != float64(runtime.GOMAXPROCS(0)) {
		t.Errorf("go_gomaxprocs = %v, want %d", g, runtime.GOMAXPROCS(0))
	}
	if g := snap.Gauges["process_num_cpu"]; g != float64(runtime.NumCPU()) {
		t.Errorf("process_num_cpu = %v, want %d", g, runtime.NumCPU())
	}
	key := `build_info{goversion="` + runtime.Version() + `"}`
	if snap.Gauges[key] != 1 {
		t.Errorf("%s = %v, want 1", key, snap.Gauges[key])
	}
}

// TestRuntimeCollectorObservesGC forces GC cycles and checks the pause
// histogram accumulates observations across polls (the bucket-delta
// fold), not just the cumulative runtime totals.
func TestRuntimeCollectorObservesGC(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Hour)
	defer c.Close()
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	c.Poll()
	m, ok := reg.Lookup("go_gc_pause_seconds")
	if !ok {
		t.Fatal("go_gc_pause_seconds not registered")
	}
	if h := m.(*Histogram); h.Count() == 0 {
		t.Error("no GC pauses folded into go_gc_pause_seconds after runtime.GC")
	}
	if g := reg.Snapshot().Gauges["go_gc_cycles_total"]; g < 3 {
		t.Errorf("go_gc_cycles_total = %v, want >= 3", g)
	}
}

// TestRuntimeCollectorCloseStopsLoop proves Close terminates the poll
// loop: after Close returns, the poll count stays frozen. Close is also
// required to be idempotent.
func TestRuntimeCollectorCloseStopsLoop(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Polls() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Polls() < 3 {
		t.Fatal("poll loop never ran")
	}
	c.Close()
	n := c.Polls()
	time.Sleep(20 * time.Millisecond)
	if got := c.Polls(); got != n {
		t.Errorf("polls advanced after Close: %d -> %d", n, got)
	}
	c.Close() // idempotent
}

// TestObserveN checks the bulk observation path agrees with repeated
// Observe calls on count, sum, and bucket placement.
func TestObserveN(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.ObserveN(5, 3)
	a.ObserveN(0.5, 2)
	for i := 0; i < 3; i++ {
		b.Observe(5)
	}
	for i := 0; i < 2; i++ {
		b.Observe(0.5)
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Errorf("ObserveN mismatch: count %d vs %d, sum %v vs %v", a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	ac, bc := a.BucketCounts(), b.BucketCounts()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Errorf("bucket %d: %d vs %d", i, ac[i], bc[i])
		}
	}
	a.ObserveN(99, 0) // no-op
	if a.Count() != 5 {
		t.Errorf("ObserveN(_, 0) changed count to %d", a.Count())
	}
}

// TestContentionEndpoint enables mutex profiling, manufactures
// contention, and checks /debug/contention reports it as valid JSON with
// the configured rates.
func TestContentionEndpoint(t *testing.T) {
	SetContentionProfiling(1, -1)
	defer SetContentionProfiling(0, -1)

	// Hammer one mutex from several goroutines so the profiler has
	// something to sample.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				for j := 0; j < 100; j++ {
					_ = j
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	ContentionHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/contention?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var sum ContentionSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if sum.MutexFraction != 1 {
		t.Errorf("mutex_fraction = %d, want 1", sum.MutexFraction)
	}
	if len(sum.Mutex) > 5 {
		t.Errorf("asked for n=5, got %d sites", len(sum.Mutex))
	}
	for _, s := range sum.Mutex {
		if s.Site == "" || s.Count <= 0 {
			t.Errorf("malformed site: %+v", s)
		}
	}
	// The hammered mutex above should be visible at this sampling rate.
	found := false
	for _, s := range sum.Mutex {
		for _, fr := range s.Stack {
			if strings.Contains(fr, "TestContentionEndpoint") {
				found = true
			}
		}
	}
	if !found {
		t.Logf("contended test mutex not in top sites (scheduling-dependent); sites: %+v", sum.Mutex)
	}
}

// TestContentionEndpointOff checks the endpoint is safe to scrape with
// profiling disabled.
func TestContentionEndpointOff(t *testing.T) {
	SetContentionProfiling(0, 0)
	rec := httptest.NewRecorder()
	ContentionHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/contention", nil))
	var sum ContentionSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if sum.MutexFraction != 0 || sum.BlockRateNS != 0 {
		t.Errorf("rates not reported as off: %+v", sum)
	}
}
