package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
)

// Partition names one (source, day) detection unit.
type Partition struct {
	Source string
	Day    simtime.Day
}

// Partitions enumerates every stored (source, day) partition in
// (source, day) order — the natural input to DetectRange.
func Partitions(s *store.Store) []Partition {
	var out []Partition
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			out = append(out, Partition{Source: src, Day: day})
		}
	}
	return out
}

// ReaderPartitions enumerates a streaming Reader's partitions from its
// directory — same (source, day) order as Partitions over the loaded
// store, no partition decoded.
func ReaderPartitions(r *store.Reader) []Partition {
	keys := r.Keys()
	out := make([]Partition, len(keys))
	for i, k := range keys {
		out[i] = Partition{Source: k.Source, Day: k.Day}
	}
	return out
}

// PartitionFailure records one partition DetectRangeSource could not
// classify — unreadable or corrupt under a streaming Reader. The
// partition's result slot stays nil; the caller decides whether that is
// degraded service or a fatal dataset problem.
type PartitionFailure struct {
	Source string
	Day    simtime.Day
	Err    error
}

// RangeStats describes where one DetectRange call spent its time, per
// stage, summed across workers. It is the per-call counterpart of the
// detect_stage_seconds histograms: callers (experiment.Run,
// analysis.Aggregator.Run, api.NewIndex, cmd/dpsbench) use it to log and
// persist per-core efficiency instead of inferring it from wall time.
type RangeStats struct {
	Partitions int           // partitions classified
	Rows       int64         // rows scanned
	Workers    int           // pool size actually used
	Wall       time.Duration // call wall time

	// Per-stage time, summed over workers. Scan+Merge is productive
	// work; QueueWait is time between finishing one partition and
	// claiming the next; Barrier is time workers that ran out of work
	// spent waiting for the slowest worker (the input-order result
	// barrier).
	Scan      time.Duration
	Merge     time.Duration
	QueueWait time.Duration
	Barrier   time.Duration
}

// Add folds another call's stats in (callers accumulate per-day passes
// into a run total).
func (st *RangeStats) Add(o RangeStats) {
	st.Partitions += o.Partitions
	st.Rows += o.Rows
	if o.Workers > st.Workers {
		st.Workers = o.Workers
	}
	st.Wall += o.Wall
	st.Scan += o.Scan
	st.Merge += o.Merge
	st.QueueWait += o.QueueWait
	st.Barrier += o.Barrier
}

// Busy is the productive time summed over workers (scan + merge).
func (st RangeStats) Busy() time.Duration { return st.Scan + st.Merge }

// Utilization is the fraction of the pool's wall-clock capacity spent
// doing productive work: Busy / (Workers × Wall). 1.0 means every worker
// scanned or merged for the whole call; the gap is queue wait, the
// result barrier, and scheduler/GC time.
func (st RangeStats) Utilization() float64 {
	cap := float64(st.Workers) * st.Wall.Seconds()
	if cap <= 0 {
		return 0
	}
	return st.Busy().Seconds() / cap
}

// PartitionsPerSec is the call's aggregate throughput.
func (st RangeStats) PartitionsPerSec() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.Partitions) / st.Wall.Seconds()
}

// DetectRange classifies a set of partitions with a bounded worker pool
// and returns the detections in input order. Workers share the store,
// the references, and the per-dictionary ID matcher; partitions are
// independent, so throughput scales with the worker count until the
// memory bus saturates. workers <= 0 uses GOMAXPROCS. A cancelled
// context stops the pool early; unprocessed slots are nil.
//
// Every consumer of multi-partition detection — the streaming
// experiment runner, Aggregator.Run, the dpsapi index build — funnels
// through here, so the fan-out and its metrics live in one place.
func DetectRange(ctx context.Context, s *store.Store, parts []Partition, refs *References, workers int) []*DayDetections {
	out, _ := DetectRangeStats(ctx, s, parts, refs, workers)
	return out
}

// workerClock is one worker's private stage accounting, folded into
// RangeStats after the pool drains (no shared state on the hot path).
type workerClock struct {
	scan, merge, wait time.Duration
	finished          time.Time // when this worker ran out of work
	failed            []PartitionFailure
}

// DetectRangeStats is DetectRange returning the call's stage-timing
// summary alongside the detections. Over a resident *store.Store no
// partition can fail, so failures are discarded.
func DetectRangeStats(ctx context.Context, s *store.Store, parts []Partition, refs *References, workers int) ([]*DayDetections, RangeStats) {
	out, st, _ := DetectRangeSource(ctx, s, parts, refs, workers)
	return out, st
}

// DetectRangeSource classifies a set of partitions from any BatchSource
// with the same bounded pool as DetectRange: workers pull partitions,
// acquire → detect → release, so over a streaming *store.Reader the
// resident set is O(workers × largest partition) plus the Reader's small
// LRU — never the whole dataset. Partitions that fail to read (corrupt
// spool, torn range) come back in the failures slice with their result
// slot nil; everything else is unaffected.
func DetectRangeSource(ctx context.Context, src BatchSource, parts []Partition, refs *References, workers int) ([]*DayDetections, RangeStats, []PartitionFailure) {
	out := make([]*DayDetections, len(parts))
	if len(parts) == 0 {
		return out, RangeStats{}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	// Warm the matcher binding once so workers contend only on its
	// read-mostly internals, not on creation.
	if dict, err := src.SharedDict(); err == nil && dict != nil {
		refs.ForDict(dict)
	}
	mDetectWorkers.Add(float64(workers))
	defer mDetectWorkers.Add(-float64(workers))
	start := time.Now()
	clocks := make([]workerClock, workers)
	var rows atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(clk *workerClock) {
			defer wg.Done()
			for {
				tWait := time.Now()
				if ctx.Err() != nil {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					break
				}
				// Queue wait: the gap between being ready for work and
				// holding a claim. Near zero with the atomic cursor; a
				// regression here means work handoff became a bottleneck.
				wait := time.Since(tWait)
				clk.wait += wait
				mStageQueueWait.Observe(wait.Seconds())
				pt := parts[i]
				_, sp := trace.StartSpan(ctx, "core.detect",
					trace.Str("source", pt.Source), trace.Str("day", pt.Day.String()))
				det, scan, merge, err := detectSourceStaged(src, pt.Source, pt.Day, refs)
				if err != nil {
					clk.failed = append(clk.failed, PartitionFailure{Source: pt.Source, Day: pt.Day, Err: err})
					sp.SetAttr(trace.Str("error", err.Error()))
					sp.End()
					continue
				}
				clk.scan += scan
				clk.merge += merge
				elapsed := scan + merge
				rows.Add(int64(det.Rows))
				mDetectPartitions.Inc()
				mDetectRows.Add(int64(det.Rows))
				mDetectSeconds.Observe(elapsed.Seconds())
				mStageScan.Observe(scan.Seconds())
				mStageMerge.Observe(merge.Seconds())
				if elapsed > 0 {
					mDetectRowRate.Observe(float64(det.Rows) / elapsed.Seconds())
				}
				sp.SetAttr(trace.Int("rows", int64(det.Rows)),
					trace.Int("detected", int64(det.CountAny())),
					trace.Int("scan_us", scan.Microseconds()),
					trace.Int("merge_us", merge.Microseconds()))
				sp.End()
				out[i] = det
			}
			clk.finished = time.Now()
		}(&clocks[w])
	}
	wg.Wait()
	end := time.Now()

	st := RangeStats{Partitions: len(parts), Rows: rows.Load(), Workers: workers, Wall: end.Sub(start)}
	var failed []PartitionFailure
	for i := range clocks {
		clk := &clocks[i]
		failed = append(failed, clk.failed...)
		st.Scan += clk.scan
		st.Merge += clk.merge
		st.QueueWait += clk.wait
		// Barrier: this worker sat idle from its own exit until the
		// slowest worker let wg.Wait return — the cost of demanding
		// input-order results from a single call.
		if !clk.finished.IsZero() {
			barrier := end.Sub(clk.finished)
			st.Barrier += barrier
			mStageBarrier.Observe(barrier.Seconds())
		}
	}
	mDetectUtilization.Set(st.Utilization())
	st.Partitions -= len(failed)
	return out, st, failed
}
