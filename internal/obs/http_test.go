package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsRoundTrip serves a registry over httptest and asserts the
// scraped exposition is well-formed Prometheus text.
func TestMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("dns_client_queries_total", "query datagrams sent").Add(9)
	r.Gauge("dns_server_inflight", "queries being answered").Set(2)
	h := r.Histogram("dns_client_query_seconds", "exchange latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)

	ts := httptest.NewServer(NewMux(r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE dns_client_queries_total counter",
		"dns_client_queries_total 9",
		"# TYPE dns_server_inflight gauge",
		"dns_server_inflight 2",
		"# TYPE dns_client_query_seconds histogram",
		`dns_client_query_seconds_bucket{le="0.01"} 1`,
		`dns_client_query_seconds_bucket{le="+Inf"} 2`,
		"dns_client_query_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// expvar endpoint: valid JSON including the registry snapshot.
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(vars, &obj); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := obj["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	// pprof index and a real profile endpoint.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Errorf("goroutine profile: status %d, %d bytes", resp.StatusCode, len(prof))
	}
}

// TestServeLifecycle exercises the standalone Serve helper on an
// ephemeral port.
func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("missing metric in %q", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestShutdownDrains proves the graceful path: a scrape in flight when
// Shutdown is called completes with its body, and only then does the
// listener die.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	Handle("/debug/slowtest", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("drained ok"))
	}))
	defer func() {
		extraMu.Lock()
		delete(extraHandlers, "/debug/slowtest")
		extraMu.Unlock()
	}()

	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr + "/debug/slowtest")
		if err != nil {
			got <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{body: string(body)}
	}()
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// The in-flight request holds the drain open until released.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained ok" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
	if _, err := http.Get("http://" + s.Addr + "/metrics"); err == nil {
		t.Error("server still reachable after Shutdown")
	}
}
