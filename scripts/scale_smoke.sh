#!/bin/sh
# Smoke test of the out-of-core scale sweep: run a small 2-cell sweep
# (dpsbench -scalesweep), assert the result JSON carries the scale/v1
# schema, that the streaming index build stayed structurally identical
# to the full-load build (parity), and that its memory held a bounded
# fraction of the full-load peak under an absolute RSS ceiling. Mirrors
# the CI `scale-smoke` job; run locally with `make scale-smoke`.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/dpsbench" ./cmd/dpsbench

echo "== small scale sweep (2 cells)"
"$WORK/dpsbench" -scalesweep 40000,20000 -days 8 \
    -scale-out "$WORK/scale.json" -quiet

OUT="$WORK/scale.json"
[ -s "$OUT" ] || { echo "scale_smoke: no output written" >&2; exit 1; }

# Schema markers (grep keeps the script dependency-free — no jq/python
# in the base image; the JSON was produced by encoding/json, so field
# presence is the meaningful check).
grep -q '"schema": "scale/v1"' "$OUT" || { echo "scale_smoke: missing scale/v1 schema marker" >&2; exit 1; }
grep -q '"bench": "scale"' "$OUT" || { echo "scale_smoke: wrong bench name" >&2; exit 1; }

echo "== schema fields"
for field in num_cpu go_version cells scale days partitions rows file_bytes \
    full stream build_seconds partitions_per_sec peak_heap_bytes \
    peak_rss_bytes mem_ratio throughput_ratio parity_ok; do
    grep -q "\"$field\"" "$OUT" || { echo "scale_smoke: missing field $field" >&2; exit 1; }
done

# Two cells requested, two recorded.
CELLS="$(grep -c '"parity_ok"' "$OUT")"
[ "$CELLS" = "2" ] || { echo "scale_smoke: expected 2 cells, got $CELLS" >&2; exit 1; }

# The streaming index must serve exactly what the full-load index would.
if grep -q '"parity_ok": false' "$OUT"; then
    echo "scale_smoke: streaming index diverged from full-load index" >&2
    exit 1
fi

# Bounded memory: every streaming build must stay under half the
# full-load peak heap (the committed artifact holds <= 0.25 at real
# scales; 0.5 leaves smoke headroom for these tiny datasets, where the
# reader's fixed overheads weigh more) and under an absolute RSS
# ceiling far below what loading a real dataset would need.
grep -o '"mem_ratio": [0-9.]*' "$OUT" | awk -F': ' '
    $2 >= 0.5 { print "scale_smoke: streaming peak heap ratio " $2 " >= 0.5" > "/dev/stderr"; bad = 1 }
    END { exit bad }'

STREAM_RSS_CEILING=268435456 # 256 MiB
grep -A5 '"stream"' "$OUT" | grep -o '"peak_rss_bytes": [0-9]*' | awk -F': ' -v max="$STREAM_RSS_CEILING" '
    $2 >= max { print "scale_smoke: streaming peak RSS " $2 " >= " max > "/dev/stderr"; bad = 1 }
    END { exit bad }'

# Throughput must be non-degenerate: every cell built both indexes.
if grep -q '"partitions_per_sec": 0,' "$OUT"; then
    echo "scale_smoke: a cell recorded zero build throughput" >&2
    exit 1
fi

echo "-- $(grep -o '"mem_ratio": [0-9.]*' "$OUT" | tr '\n' ' ')"
echo "-- $(grep -o '"throughput_ratio": [0-9.]*' "$OUT" | tr '\n' ' ')"
echo "scale_smoke: OK"
