package api

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
)

// publishFixture builds a server over the base partitions with a
// walk-counting flight hook, plus the updates to publish later.
func publishFixture(t *testing.T, base, added []partKey) (*Server, []PartitionUpdate, *atomic.Int64) {
	t.Helper()
	refs := core.MustGroundTruth()
	baseStore, _ := buildBoth(t, refs, base)
	_, ups := buildBoth(t, refs, added)
	srv := NewServer(NewIndex(baseStore, refs), Config{ObservatoryOff: true})
	walks := &atomic.Int64{}
	srv.flightHook = func() { walks.Add(1) }
	return srv, ups, walks
}

// TestPublishInvalidationPrecision is the cache-precision contract:
// after publishing a delta for day D, every cached response touching D
// (or a touched domain, or any provider series) is recomputed, and
// every other cached response survives as a hit.
func TestPublishInvalidationPrecision(t *testing.T) {
	// Base: com days 0-2. Delta: day 3 from com AND net — so day 3 is
	// new, only-net.com flips 404→200, and day-0..2 aggregates are
	// untouched.
	srv, ups, walks := publishFixture(t,
		[]partKey{{"com", 0}, {"com", 1}, {"com", 2}},
		[]partKey{{"com", 3}, {"net", 3}})

	cases := []struct {
		name        string
		path        string
		invalidated bool
	}{
		{"touched domain", "/v1/domain/alpha.com", true},
		{"touched domain, unnormalized key", "/v1/domain/Alpha.COM.", true},
		{"touched 404 domain now detected", "/v1/domain/only-net.com", true},
		{"unprotected domain 404", "/v1/domain/quiet.com", false},
		{"unknown domain 404", "/v1/domain/nosuch.example", false},
		{"untouched day", "/v1/day/2015-03-01", false},
		{"untouched day (last old)", "/v1/day/2015-03-03", false},
		{"new day 404 now indexed", "/v1/day/2015-03-04", true},
		{"series (smoothing is global)", "/v1/provider/Akamai/series", true},
		{"series of other provider", "/v1/provider/CloudFlare/series", true},
	}

	// Warm every key, then prove each is a cache hit: a second round of
	// requests must not add index walks.
	before := make(map[string]string)
	for _, tc := range cases {
		_, body := get(t, srv.Handler(), tc.path)
		before[tc.path] = body
	}
	warmWalks := walks.Load()
	for _, tc := range cases {
		if _, body := get(t, srv.Handler(), tc.path); body != before[tc.path] {
			t.Fatalf("%s: unstable body before publish", tc.path)
		}
	}
	if walks.Load() != warmWalks {
		t.Fatalf("warm round walked the index: %d → %d", warmWalks, walks.Load())
	}

	next, delta := srv.Index().Apply(ups)
	srv.Publish(next, delta)

	for _, tc := range cases {
		w0 := walks.Load()
		_, body := get(t, srv.Handler(), tc.path)
		recomputed := walks.Load() > w0
		if recomputed != tc.invalidated {
			t.Errorf("%s (%s): recomputed=%v, want %v", tc.name, tc.path, recomputed, tc.invalidated)
		}
		if !tc.invalidated && body != before[tc.path] {
			t.Errorf("%s (%s): surviving entry changed body", tc.name, tc.path)
		}
	}

	// The transitions the delta promised actually happened.
	if code, body := get(t, srv.Handler(), "/v1/domain/only-net.com"); code != http.StatusOK || !strings.Contains(body, "only-net.com") {
		t.Fatalf("only-net.com after publish: %d %s", code, body)
	}
	if code, _ := get(t, srv.Handler(), "/v1/day/2015-03-04"); code != http.StatusOK {
		t.Fatalf("day 3 after publish: %d", code)
	}
	if code, _ := get(t, srv.Handler(), "/v1/domain/quiet.com"); code != http.StatusNotFound {
		t.Fatalf("quiet.com should remain 404: %d", code)
	}
}

// TestPublishFencesStaleFills pins the fill/invalidate race: a flight
// that began before a Publish must not install its response after the
// sweep, even though it read the old cache generation.
func TestPublishFencesStaleFills(t *testing.T) {
	srv, ups, walks := publishFixture(t,
		[]partKey{{"com", 0}, {"com", 1}},
		[]partKey{{"com", 2}})

	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.flightHook = func() {
		walks.Add(1)
		once.Do(func() {
			close(entered)
			<-hold
		})
	}

	// A leader starts resolving alpha.com and parks inside the flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, srv.Handler(), "/v1/domain/alpha.com")
	}()
	<-entered

	// The publish lands while the leader is in flight.
	next, delta := srv.Index().Apply(ups)
	srv.Publish(next, delta)
	close(hold)
	<-done

	// The leader's fill was fenced off: the next request must walk the
	// index again instead of hitting a resurrected entry.
	w0 := walks.Load()
	get(t, srv.Handler(), "/v1/domain/alpha.com")
	if walks.Load() == w0 {
		t.Fatal("stale flight resurrected a swept cache key")
	}
	// And now it caches normally again.
	w1 := walks.Load()
	get(t, srv.Handler(), "/v1/domain/alpha.com")
	if walks.Load() != w1 {
		t.Fatal("post-publish fill did not cache")
	}
}

// TestPublishUnderConcurrentLoad hammers all routes across several
// sequential publishes; -race makes this the swap/sweep memory-safety
// check, and the final state must reflect the last epoch.
func TestPublishUnderConcurrentLoad(t *testing.T) {
	refs := core.MustGroundTruth()
	baseStore, _ := buildBoth(t, refs, []partKey{{"com", 0}})
	srv := NewServer(NewIndex(baseStore, refs), Config{ObservatoryOff: true})

	paths := []string{
		"/v1/domain/alpha.com", "/v1/domain/gamma.com", "/v1/domain/quiet.com",
		"/v1/provider/Akamai/series", "/v1/day/2015-03-01", "/v1/stats",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				get(t, srv.Handler(), paths[(g+i)%len(paths)])
			}
		}(g)
	}

	for day := 1; day <= 4; day++ {
		_, ups := buildBoth(t, refs, []partKey{{"com", simtime.Day(day)}})
		next, delta := srv.Index().Apply(ups)
		srv.Publish(next, delta)
	}
	close(stop)
	wg.Wait()

	if got := srv.Index().Epoch(); got != 4 {
		t.Fatalf("final epoch = %d, want 4", got)
	}
	if _, ok := srv.Index().Day(4); !ok {
		t.Fatal("last published day missing")
	}
}
