package api

import "sync"

// flightCall is one in-progress response computation.
type flightCall struct {
	wg  sync.WaitGroup
	val cached
}

// flightGroup coalesces concurrent identical cache misses: the first
// request for a key runs the index walk, every other concurrent request
// for the same key waits on it and shares the result (the classic
// singleflight shape). With the cache in front of it, a thundering herd
// on a cold key costs exactly one walk.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key, or waits for an in-flight fn for the same key.
// shared reports whether this caller waited on another's computation.
func (g *flightGroup) do(key string, fn func() cached) (val cached, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val = fn()
	return c.val, false
}
