package transport

import (
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// MappedUDP carries the simulation's address space over real UDP sockets
// on the loopback interface: every simulated listener or client binds a
// kernel socket at 127.0.0.1:0, and a shared translation table rewrites
// destinations on send and sources on receive. DNS messages still carry
// simulated addresses (glue records, A answers); only the datagrams'
// outer addressing is translated — a NAT for the simulated Internet.
//
// This lets the live examples and cmd/dnsserve exercise the exact same
// server and resolver code over the kernel network stack.
type MappedUDP struct {
	mu sync.Mutex
	// simToReal maps a simulated address to the real bound socket addr.
	simToReal map[netip.AddrPort]netip.AddrPort
	// realToSim is the reverse mapping for source translation.
	realToSim map[netip.AddrPort]netip.AddrPort
	// simToRealTCP is the separate translation table for stream
	// listeners (stream.go).
	simToRealTCP map[netip.AddrPort]netip.AddrPort
}

// NewMappedUDP creates an empty translation domain.
func NewMappedUDP() *MappedUDP {
	return &MappedUDP{
		simToReal:    make(map[netip.AddrPort]netip.AddrPort),
		realToSim:    make(map[netip.AddrPort]netip.AddrPort),
		simToRealTCP: make(map[netip.AddrPort]netip.AddrPort),
	}
}

// Listen implements Network: binds a real loopback socket for the
// simulated address.
func (m *MappedUDP) Listen(addr netip.AddrPort) (Conn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.simToReal[addr]; ok {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, addr)
	}
	inner, err := UDP{}.Listen(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	real := inner.LocalAddr()
	m.simToReal[addr] = real
	m.realToSim[real] = addr
	return &mappedConn{net: m, inner: inner, sim: addr}, nil
}

// Dial implements Network: binds an ephemeral socket and registers it
// under a synthetic simulated port on the given local IP.
func (m *MappedUDP) Dial(local netip.Addr) (Conn, error) {
	inner, err := UDP{}.Listen(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	real := inner.LocalAddr()
	// Reuse the kernel-chosen port number for the simulated endpoint: it
	// is unique per real socket, so (local IP, port) is unique enough
	// for a single translation domain.
	sim := netip.AddrPortFrom(local, real.Port())
	m.mu.Lock()
	if _, dup := m.simToReal[sim]; dup {
		m.mu.Unlock()
		inner.Close()
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, sim)
	}
	m.simToReal[sim] = real
	m.realToSim[real] = sim
	m.mu.Unlock()
	return &mappedConn{net: m, inner: inner, sim: sim}, nil
}

func (m *MappedUDP) lookupReal(sim netip.AddrPort) (netip.AddrPort, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.simToReal[sim]
	return r, ok
}

func (m *MappedUDP) lookupSim(real netip.AddrPort) (netip.AddrPort, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.realToSim[real]
	return s, ok
}

func (m *MappedUDP) drop(sim, real netip.AddrPort) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.simToReal, sim)
	delete(m.realToSim, real)
}

type mappedConn struct {
	net   *MappedUDP
	inner Conn
	sim   netip.AddrPort
}

func (c *mappedConn) LocalAddr() netip.AddrPort { return c.sim }

func (c *mappedConn) WriteTo(p []byte, to netip.AddrPort) error {
	real, ok := c.net.lookupReal(to)
	if !ok {
		// Mirror UDP-to-nowhere: silently dropped.
		return nil
	}
	return c.inner.WriteTo(p, real)
}

func (c *mappedConn) ReadFrom(buf []byte, timeout time.Duration) (int, netip.AddrPort, error) {
	for {
		n, from, err := c.inner.ReadFrom(buf, timeout)
		if err != nil {
			return 0, netip.AddrPort{}, err
		}
		sim, ok := c.net.lookupSim(from)
		if !ok {
			continue // datagram from outside the translation domain
		}
		return n, sim, nil
	}
}

func (c *mappedConn) Close() error {
	c.net.drop(c.sim, c.inner.LocalAddr())
	return c.inner.Close()
}
