package worldsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"dpsadopt/internal/bgp"
	"dpsadopt/internal/ipam"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/zones"
)

// Config sizes the synthetic world. All *paper-scale* magnitudes (namespace
// sizes, cohort sizes, customer counts) are divided by Scale.
type Config struct {
	Seed  int64
	Scale int // divisor; 1000 reproduces the paper at 1:1000
	// Window is the gTLD measurement interval (the paper's 550 days).
	Window simtime.Range
	// NLWindow is the .nl / Alexa interval (the paper's final 184 days).
	NLWindow simtime.Range
	// GTLDStart/GTLDEnd are combined .com+.net+.org active-domain counts
	// (paper scale).
	GTLDStart, GTLDEnd int
	// NLStart/NLEnd are .nl counts (paper scale).
	NLStart, NLEnd int
	// AlexaSize is the popularity-list length (paper scale).
	AlexaSize int
	// ChurnPerDay is the namespace registration churn fraction.
	ChurnPerDay float64
}

// DefaultConfig reproduces the paper's data set at the given scale
// divisor (1000 recommended; tests use coarser scales).
func DefaultConfig(scale int) Config {
	return Config{
		Seed:        2016,
		Scale:       scale,
		Window:      simtime.Range{Start: 0, End: 550},                                         // 2015-03-01 .. 2016-09-01
		NLWindow:    simtime.Range{Start: simtime.FromDate(2016, 3, 1), End: simtime.Day(550)}, // 184 days
		GTLDStart:   140_000_000,
		GTLDEnd:     152_200_000,
		NLStart:     5_620_000,
		NLEnd:       5_721_000, // 1.8% expansion
		AlexaSize:   1_000_000,
		ChurnPerDay: 0.0002,
	}
}

// TLD shares of the gTLD namespace (Fig 4, left).
var gtldShare = map[string]float64{"com": 0.8247, "net": 0.1033, "org": 0.0721}

// DPS-use shares per gTLD (Fig 4, right) used to weight customer
// assignment.
var dpsShare = map[string]float64{"com": 0.8571, "net": 0.0822, "org": 0.0607}

// Customer is a direct DPS subscription attached to a domain.
type Customer struct {
	Provider int
	Profile  Profile
	// Sub is the subscription window; for always-on customers diversion
	// is active throughout it.
	Sub simtime.Range
	// OnDemand marks customers that divert only during Peaks.
	OnDemand bool
	// Peaks are the diversion episodes of on-demand customers.
	Peaks []simtime.Range
	// bgpPrefix is the customer's own /24, announced by the provider
	// while diverting (ProfileBGP only).
	bgpPrefix netip.Prefix
	// cloudSlot picks the customer's DPS-assigned address offset.
	cloudSlot int
	// seq is the customer's per-provider sequence number; it spreads
	// customers round-robin over the provider's ASes.
	seq int
}

// ActiveOn reports whether the customer diverts traffic on day (for
// ProfileNSOnly this means "is delegated", not "diverts").
func (c *Customer) ActiveOn(day simtime.Day) bool {
	if !c.Sub.Contains(day) {
		return false
	}
	if !c.OnDemand {
		return true
	}
	for _, p := range c.Peaks {
		if p.Contains(day) {
			return true
		}
	}
	return false
}

// Domain is one second-level domain in the simulated namespace.
type Domain struct {
	Name string
	TLD  string
	Life simtime.Range
	// Hoster indexes GenericHosters for baseline DNS/hosting.
	Hoster int
	// Operator is -1 or an index into OperatorSpecs; operator-controlled
	// domains take their DNS from the operator.
	Operator int
	// OpIdx is the domain's index within its operator cohort; episodes
	// affect OpIdx < scaled cohort size.
	OpIdx int
	// Cust is non-nil for direct DPS customers.
	Cust *Customer
	// hostSlot picks the domain's baseline address within its hoster or
	// operator block.
	hostSlot int
}

// providerInfra is the runtime network footprint of one DPS.
type providerInfra struct {
	Spec      *ProviderSpec
	Prefixes  []netip.Prefix // one per AS, announced by that AS
	Prefixes6 []netip.Prefix // IPv6 counterparts, same origin ASes
	// NSHosts are authoritative server host names (full names, within
	// the provider's NS SLDs).
	NSHosts []string
	NSAddrs []netip.Addr
	// clouds are the customer-facing address blocks, one per AS, so that
	// every provider AS is referenced by customer addresses (the paper's
	// Table 2 lists them all).
	clouds []netip.Prefix
}

// CloudAddr6 returns the seq-th customer's IPv6 cloud address.
func (p *providerInfra) CloudAddr6(seq, slot int) netip.Addr {
	pref := p.Prefixes6[seq%len(p.Prefixes6)]
	a, err := ipam.Nth6Addr(pref, uint64(0x1000+slot))
	if err != nil {
		panic(err)
	}
	return a
}

// CloudAddrAt returns the slot-th customer-facing address within the
// prefixIdx-th AS's cloud block.
func (p *providerInfra) CloudAddrAt(prefixIdx, slot int) netip.Addr {
	cloud := p.clouds[prefixIdx%len(p.clouds)]
	a, err := ipam.NthAddr(cloud, uint64(slot)%ipam.HostCount(cloud))
	if err != nil {
		panic(err)
	}
	return a
}

// CloudAddr returns the seq-th customer's cloud address: customers are
// spread round-robin over the provider's ASes so that every Table 2 AS
// is referenced by customer addresses.
func (p *providerInfra) CloudAddr(seq, slot int) netip.Addr {
	return p.CloudAddrAt(seq, slot)
}

// DivertASN returns the AS that announces the seq-th customer's /24
// while BGP diversion is active.
func (p *providerInfra) DivertASN(seq int) bgp.ASN {
	return p.Spec.ASes[seq%len(p.Spec.ASes)].ASN
}

// operatorInfra is the runtime footprint of a third party.
type operatorInfra struct {
	Spec *OperatorSpec
	// Prefix is the operator's own address space.
	Prefix netip.Prefix
	// DivertBlock holds cohort domain addresses (OpIdx-th address);
	// sub-ranges of it flip origin during BGP episodes.
	DivertBlock netip.Prefix
	// BaselineBlock holds baseline addresses when BaselineAS is set
	// (Wix's AWS block).
	BaselineBlock netip.Prefix
	NSHosts       []string
	NSAddrs       []netip.Addr
	cohort        int // scaled cohort size actually assigned
}

type hosterInfra struct {
	Spec    *GenericHoster
	Prefix  netip.Prefix
	Prefix6 netip.Prefix
	NSHosts []string
	NSAddrs []netip.Addr
}

// World is the fully generated simulation.
type World struct {
	Cfg       Config
	Registry  *bgp.Registry
	Providers [NumProviders]*providerInfra
	Operators [NumOperators]*operatorInfra
	Hosters   []*hosterInfra

	// TLDs maps "com"/"net"/"org"/"nl" to their namespace models.
	TLDs map[string]*zones.TLD
	// Domains holds every domain across all TLDs, in TLD-then-index
	// order. Parallel to the zones.TLD domain lists.
	Domains []*Domain
	byName  map[string]*Domain

	// infraApex maps infrastructure SLDs (provider/operator/hoster
	// service domains like cloudflare.com or sedoparking.com) to their
	// apex addresses, for the discovery procedure's active probes.
	infraApex map[string]netip.Addr

	// alexaCore and alexaPool implement the rotating popularity list.
	alexaCore []int // domain indices always on the list
	alexaPool []int // candidates for the rotating tail
	alexaTail int   // tail slots per day

	staticRoutes []bgp.Route
}

// scaled divides a paper-scale count by the configured scale, rounding to
// nearest with a minimum of 1 for positive inputs.
func (cfg Config) scaled(n int) int {
	if n <= 0 {
		return 0
	}
	v := (n + cfg.Scale/2) / cfg.Scale
	if v < 1 {
		v = 1
	}
	return v
}

// New generates a world. Generation is deterministic in cfg.Seed.
func New(cfg Config) (*World, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("worldsim: scale must be positive")
	}
	if cfg.Window.Len() == 0 {
		return nil, fmt.Errorf("worldsim: empty window")
	}
	w := &World{
		Cfg:       cfg,
		Registry:  bgp.NewRegistry(),
		TLDs:      make(map[string]*zones.TLD),
		byName:    make(map[string]*Domain),
		infraApex: make(map[string]netip.Addr),
	}
	w.buildInfra()
	if err := w.buildNamespaces(); err != nil {
		return nil, err
	}
	w.assignOperatorCohorts()
	w.assignCustomers()
	w.buildAlexa()
	return w, nil
}

// buildInfra allocates prefixes, NS hosts, and registry entries.
func (w *World) buildInfra() {
	provPool := ipam.MustPool("10.0.0.0/8")
	opPool := ipam.MustPool("172.16.0.0/12")
	hostPool := ipam.MustPool("100.64.0.0/10")
	// IPv6: providers and hosters are dual-stacked; /48s carved from the
	// documentation space, announced by the same origin ASes.
	provPool6 := ipam.MustPool6("2001:db8::/32")
	hostPool6 := ipam.MustPool6("2001:db8:8000::/33")

	cfNames := []string{"kate", "mike", "anna", "carl", "dana", "finn", "gina", "hugo"}
	for i := range ProviderSpecs {
		spec := &ProviderSpecs[i]
		infra := &providerInfra{Spec: spec}
		for _, as := range spec.ASes {
			w.Registry.Register(as.ASN, as.Name)
			p, err := provPool.AllocSubnet(16)
			if err != nil {
				panic(err)
			}
			infra.Prefixes = append(infra.Prefixes, p)
			w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: p, Origins: []bgp.ASN{as.ASN}})
			p6, err := provPool6.AllocSubnet(48)
			if err != nil {
				panic(err)
			}
			infra.Prefixes6 = append(infra.Prefixes6, p6)
			w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: p6, Origins: []bgp.ASN{as.ASN}})
		}
		// Cloud blocks: the second /20 of each AS prefix (the first /20
		// carries name-server and infrastructure addresses).
		for _, p := range infra.Prefixes {
			base, err := ipam.NthSubnet(p, 20, 1)
			if err != nil {
				panic(err)
			}
			infra.clouds = append(infra.clouds, base)
		}
		// NS hosts: CloudFlare gets its famous person-named servers; the
		// rest get ns1/ns2 per SLD.
		if i == CloudFlare {
			for _, n := range cfNames {
				infra.NSHosts = append(infra.NSHosts, n+".ns.cloudflare.com")
			}
		} else {
			for _, sld := range spec.NSSLDs {
				infra.NSHosts = append(infra.NSHosts, "ns1."+sld, "ns2."+sld)
			}
		}
		for j := range infra.NSHosts {
			a, err := ipam.NthAddr(infra.Prefixes[0], uint64(4096+j))
			if err != nil {
				panic(err)
			}
			infra.NSAddrs = append(infra.NSAddrs, a)
		}
		// The provider's service SLDs answer from its own space — the
		// signal the discovery procedure's probe step uses.
		for _, sld := range spec.NSSLDs {
			w.infraApex[sld] = infra.NSAddrs[0]
		}
		for k, sld := range spec.CNAMESLDs {
			a, err := ipam.NthAddr(infra.Prefixes[0], uint64(4200+k))
			if err != nil {
				panic(err)
			}
			w.infraApex[sld] = a
		}
		w.Providers[i] = infra
	}

	for i := range OperatorSpecs {
		spec := &OperatorSpecs[i]
		infra := &operatorInfra{Spec: spec}
		w.Registry.Register(spec.AS.ASN, spec.AS.Name)
		p, err := opPool.AllocSubnet(16)
		if err != nil {
			panic(err)
		}
		infra.Prefix = p
		w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: p, Origins: []bgp.ASN{spec.AS.ASN}})
		// Divert block: /18 inside the operator's own space... except it
		// must be origin-flippable independently, so it is a separate
		// prefix NOT statically announced; covering announcements are
		// emitted per day by RIBForDay.
		db, err := opPool.AllocSubnet(18)
		if err != nil {
			panic(err)
		}
		infra.DivertBlock = db
		if spec.BaselineAS != nil {
			w.Registry.Register(spec.BaselineAS.ASN, spec.BaselineAS.Name)
			bb, err := opPool.AllocSubnet(18)
			if err != nil {
				panic(err)
			}
			infra.BaselineBlock = bb
			w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: bb, Origins: []bgp.ASN{spec.BaselineAS.ASN}})
		}
		if spec.NSSLD != "" {
			infra.NSHosts = []string{"ns1." + spec.NSSLD, "ns2." + spec.NSSLD}
		}
		for j := range infra.NSHosts {
			a, err := ipam.NthAddr(infra.Prefix, uint64(10+j))
			if err != nil {
				panic(err)
			}
			infra.NSAddrs = append(infra.NSAddrs, a)
		}
		if spec.NSSLD != "" {
			w.infraApex[spec.NSSLD] = mustNth(infra.Prefix, 9)
		}
		if spec.BaselineCNAMESLD != "" {
			w.infraApex[spec.BaselineCNAMESLD] = mustNth(infra.BaselineBlock, 9)
		}
		w.Operators[i] = infra
	}

	for i := range GenericHosters {
		spec := &GenericHosters[i]
		w.Registry.Register(spec.AS.ASN, spec.AS.Name)
		p, err := hostPool.AllocSubnet(16)
		if err != nil {
			panic(err)
		}
		p6, err := hostPool6.AllocSubnet(48)
		if err != nil {
			panic(err)
		}
		sld := fmt.Sprintf("hostco%d.net", i)
		infra := &hosterInfra{
			Spec:    spec,
			Prefix:  p,
			Prefix6: p6,
			NSHosts: []string{"ns1." + sld, "ns2." + sld},
		}
		for j := range infra.NSHosts {
			a, err := ipam.NthAddr(p, uint64(10+j))
			if err != nil {
				panic(err)
			}
			infra.NSAddrs = append(infra.NSAddrs, a)
		}
		w.infraApex[sld] = mustNth(p, 9)
		w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: p, Origins: []bgp.ASN{spec.AS.ASN}})
		w.staticRoutes = append(w.staticRoutes, bgp.Route{Prefix: p6, Origins: []bgp.ASN{spec.AS.ASN}})
		w.Hosters = append(w.Hosters, infra)
	}
}

// ProbeApex actively resolves the apex address of an SLD outside the
// daily pipeline: the discovery procedure uses it to check where a
// candidate reference SLD itself is hosted. Registered customer domains
// resolve through their day state; infrastructure SLDs through the
// service-domain table. ok is false for unknown names.
func (w *World) ProbeApex(name string, day simtime.Day) (netip.Addr, bool) {
	if a, ok := w.infraApex[name]; ok {
		return a, true
	}
	if d, ok := w.byName[name]; ok {
		st := w.StateFor(d, day)
		if st.Exists && !st.Unmeasurable && len(st.ApexA) > 0 {
			return st.ApexA[0], true
		}
	}
	return netip.Addr{}, false
}

// buildNamespaces generates the TLD populations and Domain structs.
func (w *World) buildNamespaces() error {
	cfg := w.Cfg
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	order := []string{"com", "net", "org", "nl"}
	for _, tld := range order {
		var zc zones.Config
		switch tld {
		case "nl":
			if cfg.NLStart == 0 {
				continue
			}
			zc = zones.Config{
				TLD: tld, Window: cfg.NLWindow,
				StartCount: cfg.scaled(cfg.NLStart), EndCount: cfg.scaled(cfg.NLEnd),
				ChurnPerDay: cfg.ChurnPerDay, Seed: cfg.Seed + 4,
			}
		default:
			zc = zones.Config{
				TLD: tld, Window: cfg.Window,
				StartCount:  cfg.scaled(int(float64(cfg.GTLDStart) * gtldShare[tld])),
				EndCount:    cfg.scaled(int(float64(cfg.GTLDEnd) * gtldShare[tld])),
				ChurnPerDay: cfg.ChurnPerDay, Seed: cfg.Seed + simtime.Day(len(tld)).Date().Unix()%97,
			}
		}
		z, err := zones.Build(zc)
		if err != nil {
			return err
		}
		w.TLDs[tld] = z
		for i := range z.Domains {
			d := &Domain{
				Name:     z.Domains[i].Name,
				TLD:      tld,
				Life:     z.Domains[i].Active,
				Hoster:   rng.Intn(len(w.Hosters)),
				Operator: -1,
				hostSlot: rng.Intn(1 << 14),
			}
			w.Domains = append(w.Domains, d)
			w.byName[d.Name] = d
		}
	}
	return nil
}

// assignOperatorCohorts marks which domains each third party controls.
func (w *World) assignOperatorCohorts() {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x0b5e55ed))
	// Candidates: gTLD domains alive for the whole window (operators'
	// portfolios are stable), not yet taken.
	var candidates []*Domain
	for _, d := range w.Domains {
		if d.TLD != "nl" && d.Life.Start < w.Cfg.Window.Start && d.Life.End >= zones.Forever {
			candidates = append(candidates, d)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	next := 0
	for i := range w.Operators {
		infra := w.Operators[i]
		n := w.Cfg.scaled(infra.Spec.Domains)
		if next+n > len(candidates) {
			n = len(candidates) - next
		}
		infra.cohort = n
		for k := 0; k < n; k++ {
			d := candidates[next+k]
			d.Operator = i
			d.OpIdx = k
		}
		next += n
	}
}

// assignCustomers creates the direct DPS customer populations.
func (w *World) assignCustomers() {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0xc057))
	cfg := w.Cfg
	// Candidates: gTLD domains without an operator, queued per TLD.
	var pool []*Domain
	queues := map[string][]*Domain{}
	for _, d := range w.Domains {
		if d.Operator < 0 && d.TLD != "nl" {
			pool = append(pool, d)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for _, d := range pool {
		queues[d.TLD] = append(queues[d.TLD], d)
	}
	// deferred holds candidates rejected by an early-subscriber draw;
	// they remain available for growth subscribers.
	deferred := map[string][]*Domain{}
	take := func(wantTLD string, needEarly bool) *Domain {
		tlds := []string{wantTLD}
		if wantTLD == "" {
			tlds = GTLDs()
		}
		for _, tld := range tlds {
			for len(queues[tld]) > 0 {
				d := queues[tld][0]
				queues[tld] = queues[tld][1:]
				if d.Cust != nil {
					continue
				}
				// Early subscribers need a domain registered before the
				// window and not deleted during it; rejected candidates
				// stay available as a fallback for later draws.
				if needEarly && !(d.Life.Start < cfg.Window.Start && d.Life.End >= cfg.Window.End) {
					deferred[tld] = append(deferred[tld], d)
					continue
				}
				return d
			}
			if !needEarly {
				for len(deferred[tld]) > 0 {
					d := deferred[tld][0]
					deferred[tld] = deferred[tld][1:]
					if d.Cust == nil {
						return d
					}
				}
			}
		}
		return nil
	}
	// pickTLD draws a TLD according to the paper's DPS-use distribution.
	pickTLD := func() string {
		v := rng.Float64()
		switch {
		case v < dpsShare["com"]:
			return "com"
		case v < dpsShare["com"]+dpsShare["net"]:
			return "net"
		default:
			return "org"
		}
	}

	bgpPool := ipam.MustPool("192.0.0.0/8")
	seq := make([]int, NumProviders)
	newCustomer := func(pi int, profile Profile) *Customer {
		c := &Customer{
			Provider:  pi,
			Profile:   profile,
			Sub:       simtime.Range{Start: cfg.Window.Start - 1, End: zones.Forever},
			cloudSlot: rng.Intn(1 << 12),
			seq:       seq[pi],
		}
		seq[pi]++
		return c
	}

	for pi := range ProviderSpecs {
		spec := &ProviderSpecs[pi]
		for _, pc := range spec.AlwaysOn {
			start := cfg.scaled(pc.Start)
			end := cfg.scaled(pc.End)
			churn := int(spec.ChurnFrac * float64(start))
			total := end + churn
			growth := total - start
			for i := 0; i < total; i++ {
				needEarly := i < start
				d := take(pickTLD(), needEarly)
				if d == nil {
					d = take("", needEarly)
				}
				if d == nil {
					break
				}
				c := newCustomer(pi, pc.Profile)
				if i >= start {
					// Growth subscriber: linear arrival over the window.
					k := i - start
					frac := float64(k+1) / float64(growth+1)
					day := cfg.Window.Start + simtime.Day(frac*float64(cfg.Window.Len()-1))
					c.Sub.Start = day
				}
				if pc.Profile == ProfileBGP {
					p, err := bgpPool.AllocSubnet(24)
					if err == nil {
						c.bgpPrefix = p
					}
				}
				d.Cust = c
				w.clampToLife(d)
			}
			// Churn: the churn earliest subscribers leave at random days.
			churned := 0
			for _, d := range pool {
				if churned >= churn {
					break
				}
				if d.Cust != nil && d.Cust.Provider == pi && d.Cust.Profile == pc.Profile && d.Cust.Sub.Start < cfg.Window.Start {
					d.Cust.Sub.End = cfg.Window.Start + simtime.Day(rng.Intn(cfg.Window.Len()))
					churned++
				}
			}
		}
		// On-demand customers.
		q := durationQ(spec.OnDemandP80Days)
		for i, n := 0, cfg.scaled(spec.OnDemand); i < n; i++ {
			d := take(pickTLD(), false)
			if d == nil {
				d = take("", false)
			}
			if d == nil {
				break
			}
			profile := ProfileA
			if spec.SupportsCNAME() && rng.Intn(3) == 0 {
				profile = ProfileCNAME
			}
			if !spec.SupportsCNAME() && !spec.SupportsNS() {
				profile = ProfileA
			}
			if rng.Intn(4) == 0 {
				profile = ProfileBGP
			}
			c := newCustomer(pi, profile)
			c.OnDemand = true
			if profile == ProfileBGP {
				if p, err := bgpPool.AllocSubnet(24); err == nil {
					c.bgpPrefix = p
				} else {
					c.Profile = ProfileA
				}
			}
			peaks := 3 + rng.Intn(4)
			at := cfg.Window.Start + simtime.Day(rng.Intn(30))
			for k := 0; k < peaks && int(at) < int(cfg.Window.End); k++ {
				dur := drawDuration(rng, q)
				c.Peaks = append(c.Peaks, simtime.Range{Start: at, End: at + simtime.Day(dur)})
				gap := 10 + rng.Intn(120)
				at += simtime.Day(dur + gap)
			}
			d.Cust = c
			w.clampToLife(d)
		}
	}

	// .nl adoption: ≈1% of the zone, mostly CloudFlare, growing 10.5%
	// over the .nl window. The initial population must come from domains
	// already registered when the window opens; growth subscribers may be
	// newly registered names.
	var nlEarly, nlLate []*Domain
	for _, d := range w.Domains {
		if d.TLD != "nl" || d.Cust != nil {
			continue
		}
		if d.Life.Contains(cfg.NLWindow.Start) && d.Life.End >= cfg.NLWindow.End {
			nlEarly = append(nlEarly, d)
		} else {
			nlLate = append(nlLate, d)
		}
	}
	rng.Shuffle(len(nlEarly), func(i, j int) { nlEarly[i], nlEarly[j] = nlEarly[j], nlEarly[i] })
	rng.Shuffle(len(nlLate), func(i, j int) { nlLate[i], nlLate[j] = nlLate[j], nlLate[i] })
	nlPool := append(nlEarly, nlLate...)
	nlStart := cfg.scaled(cfg.NLStart) / 100
	nlEnd := nlStart + (nlStart*105+500)/1000 // +10.5%
	for i := 0; i < nlEnd && i < len(nlPool); i++ {
		d := nlPool[i]
		pi := CloudFlare
		if i%7 == 3 {
			pi = Incapsula
		}
		profile := ProfileNSProxied
		if pi == Incapsula {
			profile = ProfileCNAME
		}
		c := newCustomer(pi, profile)
		c.Sub.Start = cfg.NLWindow.Start - 1
		if i >= nlStart {
			k := i - nlStart
			frac := float64(k+1) / float64(nlEnd-nlStart+1)
			c.Sub.Start = cfg.NLWindow.Start + simtime.Day(frac*float64(cfg.NLWindow.Len()-1))
		}
		d.Cust = c
		w.clampToLife(d)
	}
}

// clampToLife trims a customer's subscription to the domain's lifetime.
func (w *World) clampToLife(d *Domain) {
	if d.Cust == nil {
		return
	}
	if d.Cust.Sub.Start < d.Life.Start {
		d.Cust.Sub.Start = d.Life.Start
	}
	if d.Cust.Sub.End > d.Life.End {
		d.Cust.Sub.End = d.Life.End
	}
}

// durationQ converts an 80th-percentile target into the geometric-
// distribution parameter q with P(D ≤ p80) = 0.8 (q is the daily
// continuation probability: q^p80 = 0.2).
func durationQ(p80 int) float64 {
	if p80 < 1 {
		p80 = 1
	}
	return math.Pow(0.2, 1.0/float64(p80))
}

// drawDuration samples a geometric duration (≥1 day) with parameter q.
func drawDuration(rng *rand.Rand, q float64) int {
	d := 1
	for rng.Float64() < q && d < 110 {
		d++
	}
	return d
}

// buildAlexa selects the popularity list: a fixed core plus a rotating
// tail, biased toward DPS-protected domains the way real top lists are.
func (w *World) buildAlexa() {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0xa1e8a))
	size := w.Cfg.scaled(w.Cfg.AlexaSize)
	if size <= 0 {
		return
	}
	coreN := size * 7 / 10
	w.alexaTail = size - coreN
	poolN := w.alexaTail * 5

	var customers, background []int
	for i, d := range w.Domains {
		if d.TLD == "nl" || d.Life.End < zones.Forever {
			continue
		}
		if d.Cust != nil && !d.Cust.OnDemand {
			customers = append(customers, i)
		} else if d.Operator < 0 {
			background = append(background, i)
		}
	}
	rng.Shuffle(len(customers), func(i, j int) { customers[i], customers[j] = customers[j], customers[i] })
	rng.Shuffle(len(background), func(i, j int) { background[i], background[j] = background[j], background[i] })

	// ~15% of the core is DPS-protected.
	dpsN := coreN * 15 / 100
	if dpsN > len(customers) {
		dpsN = len(customers)
	}
	w.alexaCore = append(w.alexaCore, customers[:dpsN]...)
	bgN := coreN - dpsN
	if bgN > len(background) {
		bgN = len(background)
	}
	w.alexaCore = append(w.alexaCore, background[:bgN]...)
	// Tail pool from the remaining background.
	rest := background[bgN:]
	if poolN > len(rest) {
		poolN = len(rest)
	}
	w.alexaPool = rest[:poolN]
	sort.Ints(w.alexaCore)
}

// AlexaList returns the domain indices on the popularity list for a day.
func (w *World) AlexaList(day simtime.Day) []int {
	out := append([]int(nil), w.alexaCore...)
	if len(w.alexaPool) == 0 || w.alexaTail == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(day)*2654435761))
	perm := rng.Perm(len(w.alexaPool))
	for i := 0; i < w.alexaTail && i < len(perm); i++ {
		out = append(out, w.alexaPool[perm[i]])
	}
	return out
}

// DomainByName looks a domain up by its SLD name.
func (w *World) DomainByName(name string) (*Domain, bool) {
	d, ok := w.byName[name]
	return d, ok
}

// GTLDs returns the measured generic TLD labels in order.
func GTLDs() []string { return []string{"com", "net", "org"} }
