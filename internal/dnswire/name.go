package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-handling rules for this package: a domain name is represented in Go
// as a lowercase dotted string without a trailing dot; the root zone is the
// one-character string ".". CanonicalName normalises external input into
// this form, and all comparisons in the measurement stack operate on
// canonical names.

// Limits from RFC 1035 §2.3.4.
const (
	maxLabelLen = 63
	maxNameLen  = 255 // total wire-format octets
)

// Errors returned by name validation and decoding.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrBadLabelByte   = errors.New("dnswire: invalid character in label")
	ErrPointerForward = errors.New("dnswire: compression pointer does not point backward")
)

// CanonicalName normalises a domain name: lowercases ASCII, strips a single
// trailing dot, and validates label lengths and characters. The root name
// is returned as ".".
func CanonicalName(name string) (string, error) {
	if name == "" || name == "." {
		return ".", nil
	}
	name = strings.TrimSuffix(name, ".")
	b := make([]byte, len(name))
	wire := 1 // terminal zero octet
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			l := i - start
			if l == 0 {
				return "", ErrEmptyLabel
			}
			if l > maxLabelLen {
				return "", ErrLabelTooLong
			}
			wire += 1 + l
			start = i + 1
			continue
		}
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', '0' <= c && c <= '9', c == '-', c == '_':
			b[i] = c
		case 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		case c == '*' && i == 0 && (i+1 == len(name) || name[i+1] == '.'):
			// Allow a leading "*" label (wildcard owner names appear in
			// zone files even though our lookup path does not expand them).
			b[i] = c
		default:
			return "", fmt.Errorf("%w: %q in %q", ErrBadLabelByte, c, name)
		}
	}
	// Dot positions were skipped by the per-label loop above; copy them in.
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			b[i] = '.'
		}
	}
	if wire > maxNameLen {
		return "", ErrNameTooLong
	}
	return string(b), nil
}

// MustCanonical is CanonicalName for trusted, programmatically built names;
// it panics on invalid input and is intended for tests and generators.
func MustCanonical(name string) string {
	c, err := CanonicalName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Labels splits a canonical name into its labels, most-significant last
// ("www.example.com" → ["www" "example" "com"]). The root name has no labels.
func Labels(name string) []string {
	if name == "." || name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in a canonical name.
func CountLabels(name string) int {
	if name == "." || name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// Parent returns the name with its leftmost label removed
// ("www.example.com" → "example.com"); the parent of a single-label name is
// the root ".".
func Parent(name string) string {
	if name == "." || name == "" {
		return "."
	}
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return "."
}

// IsSubdomain reports whether child is equal to or ends with a label
// boundary followed by parent. Both must be canonical. Every name is a
// subdomain of the root.
func IsSubdomain(child, parent string) bool {
	if parent == "." || parent == "" {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// appendName appends the wire encoding of a canonical name to buf. When
// comp is non-nil, suffixes already emitted into the message are replaced
// with compression pointers and newly emitted suffixes are recorded. base
// is the index in buf where the DNS message starts; compression offsets are
// message-relative.
func appendName(buf []byte, base int, name string, comp map[string]int) ([]byte, error) {
	if name == "" || name == "." {
		return append(buf, 0), nil
	}
	rest := name
	for rest != "" {
		if comp != nil {
			if off, ok := comp[rest]; ok && off <= 0x3FFF {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			if len(buf)-base <= 0x3FFF {
				comp[rest] = len(buf) - base
			}
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if label == "" {
			return nil, ErrEmptyLabel
		}
		if len(label) > maxLabelLen {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a (possibly compressed) name starting at off in msg.
// It returns the canonical name and the offset of the first byte after the
// name's in-place representation. Compression pointers must point strictly
// backward, which bounds the walk and rejects loops.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	next := -1 // offset after the name, set when the first pointer is taken
	ptrBudget := len(msg)
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if next < 0 {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, next, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			target := (c&0x3F)<<8 | int(msg[off+1])
			if target >= off {
				return "", 0, ErrPointerForward
			}
			if next < 0 {
				next = off + 2
			}
			off = target
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrTruncatedName
			}
			total += c + 1
			if total > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			for _, b := range msg[off+1 : off+1+c] {
				sb.WriteByte(lowerByte(b))
			}
			off += 1 + c
		}
	}
}
