package worldsim

import (
	"time"

	"dpsadopt/internal/simtime"
)

// OperatorKind classifies third parties that control DNS for many domains
// at once — the "big players" of §4.4.1.
type OperatorKind int

// Operator kinds.
const (
	KindHoster OperatorKind = iota
	KindRegistrar
	KindParker
	KindDomainer
	KindSaaS
)

// CohortEpisode is a scheduled diversion period applied to a whole cohort
// of an operator's domains.
type CohortEpisode struct {
	// Cohort selects which fraction of the operator's domains flip:
	// domains with index-in-operator < CohortSize are affected.
	CohortSize int // paper-scale count
	Window     simtime.Range
	Provider   int     // provider index
	Profile    Profile // how the diversion manifests
}

// OperatorSpec describes one third party.
type OperatorSpec struct {
	Name string
	Kind OperatorKind
	AS   ASSpec
	// NSSLD is the second-level domain of the operator's name servers
	// (e.g. Namecheap's registrarservers.com); empty means the operator
	// parks customers on generic hoster NS.
	NSSLD string
	// BaselineCNAMESLD, when set, makes the operator's domains normally
	// resolve through a CNAME into this SLD (Wix → amazonaws.com).
	BaselineCNAMESLD string
	// BaselineAS is the origin of the operator's normal address space
	// when it differs from the operator's own AS (Wix → AWS).
	BaselineAS *ASSpec
	// Domains is the number of SLDs the operator controls (paper scale).
	Domains int
	// AlwaysProvider, when ≥0, makes all the operator's domains always-on
	// customers of that provider (Sedo parking behind Akamai).
	AlwaysProvider int
	AlwaysProfile  Profile
	// AlwaysASIdx selects which of the provider's ASes originates the
	// operator's space (Fabulous routed to CenturyLink's AS3561, the
	// second CenturyLink AS).
	AlwaysASIdx int
	// AlwaysCohort bounds the always-on relationship to the first N
	// cohort domains (paper scale); 0 means the whole cohort. Partial
	// cohorts matter for reference discovery: only 716k of Sedo's parked
	// portfolio routed to Akamai, so sedoparking.com is not an Akamai
	// NS SLD.
	AlwaysCohort int
	// Episodes are the scripted §4.4.1 anomalies.
	Episodes []CohortEpisode
	// DNSOutages are days on which the operator's name servers fail and
	// its domains produce no measurements (the Sedo 2015-11-22 trough).
	DNSOutages []simtime.Day
}

// Operator indices.
const (
	OpWix = iota
	OpWixF5
	OpSiteMatrix
	OpENOM
	OpZOHO
	OpNamecheap
	OpSedo
	OpFabulous
	NumOperators
)

func day(y int, m time.Month, d int) simtime.Day { return simtime.FromDate(y, m, d) }

// OperatorSpecs encodes §4.4.1: each anomaly the paper traces, with its
// magnitude, date, provider, and mechanism.
var OperatorSpecs = [NumOperators]OperatorSpec{
	OpWix: {
		// "Wix causes repeated swings of millions of domain names"; Wix
		// domains normally route to Amazon AWS (AS14618) through an
		// amazonaws.com CNAME; during diversion Wix name servers answer A
		// records in Wix-owned prefixes announced by Incapsula.
		Name: "Wix", Kind: KindSaaS,
		AS:               ASSpec{58182, "WIX-AS - Wix.com Ltd."},
		NSSLD:            "wixdns.net",
		BaselineCNAMESLD: "amazonaws.com",
		BaselineAS:       &ASSpec{14618, "AMAZON-AES - Amazon.com, Inc."},
		Domains:          1_760_000,
		AlwaysProvider:   -1,
		Episodes: []CohortEpisode{
			// March 2015 peak: ≈1.1M names on 2015-03-05 (Fig 2).
			{1_100_000, simtime.Range{Start: day(2015, 3, 3), End: day(2015, 3, 8)}, Incapsula, ProfileA},
			// May–July 2015 plateau of the same names (Fig 7: "many of
			// the same domains were involved").
			{1_100_000, simtime.Range{Start: day(2015, 5, 4), End: day(2015, 7, 16)}, Incapsula, ProfileA},
			// Short repeated swings through late 2015.
			{900_000, simtime.Range{Start: day(2015, 9, 7), End: day(2015, 9, 18)}, Incapsula, ProfileA},
			{950_000, simtime.Range{Start: day(2015, 12, 1), End: day(2015, 12, 6)}, Incapsula, ProfileA},
			// April 2016 peak ①: 1.76M names.
			{1_760_000, simtime.Range{Start: day(2016, 4, 5), End: day(2016, 4, 19)}, Incapsula, ProfileA},
			{1_000_000, simtime.Range{Start: day(2016, 6, 20), End: day(2016, 6, 25)}, Incapsula, ProfileA},
		},
	},
	OpWixF5: {
		// "two Wix-owned prefixes switch back and forth from F5
		// Networks' AS55002 to Incapsula's AS19551" (⑥ & ⑦): this Wix
		// segment normally routes to F5 (counting toward F5's baseline)
		// and flips to Incapsula in March 2015, leaving an opposing
		// trough in F5.
		Name: "Wix-F5", Kind: KindSaaS,
		AS:             ASSpec{58183, "WIX-AS-EU - Wix.com Ltd. (EU)"},
		NSSLD:          "wixdns.net",
		Domains:        350_000,
		AlwaysProvider: F5,
		AlwaysProfile:  ProfileBGP,
		// The prefixes "switch back and forth" periodically; the swap
		// cadence shapes both F5's and Incapsula's Fig 8 distributions.
		Episodes: []CohortEpisode{
			{350_000, simtime.Range{Start: day(2015, 3, 3), End: day(2015, 3, 8)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2015, 5, 18), End: day(2015, 5, 25)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2015, 7, 27), End: day(2015, 8, 3)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2015, 10, 12), End: day(2015, 10, 23)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2015, 12, 21), End: day(2015, 12, 28)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2016, 2, 29), End: day(2016, 3, 7)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2016, 5, 16), End: day(2016, 5, 20)}, Incapsula, ProfileBGP},
			{350_000, simtime.Range{Start: day(2016, 7, 18), End: day(2016, 7, 26)}, Incapsula, ProfileBGP},
		},
	},
	OpSiteMatrix: {
		// June 2016 increase ②: ≈170k names traced to SiteMatrix, "an
		// opportunistic private equity fund around Internet domain
		// names" — a step up that stays.
		Name: "SiteMatrix", Kind: KindDomainer,
		AS:             ASSpec{64496, "SITEMATRIX - SiteMatrix Holdings"},
		NSSLD:          "sitematrixdns.com",
		Domains:        400_000,
		AlwaysProvider: -1,
		Episodes: []CohortEpisode{
			{170_000, simtime.Range{Start: day(2016, 6, 10), End: zonesForever}, Incapsula, ProfileA},
		},
	},
	OpENOM: {
		// "Most of Verisign's larger anomalies can be traced to ENOM (a
		// registrar) ... several ENOM-owned /24s route to Verisign
		// (AS26415) during diversion, and to ENOM (AS21740) normally."
		Name: "ENOM", Kind: KindRegistrar,
		AS:             ASSpec{21740, "ENOMAS1 - eNom, Incorporated"},
		NSSLD:          "name-services.com",
		Domains:        700_000,
		AlwaysProvider: -1,
		Episodes: []CohortEpisode{
			{700_000, simtime.Range{Start: day(2015, 4, 20), End: day(2015, 5, 2)}, Verisign, ProfileBGP},
			{550_000, simtime.Range{Start: day(2015, 8, 17), End: day(2015, 8, 24)}, Verisign, ProfileBGP},
			{700_000, simtime.Range{Start: day(2016, 1, 11), End: day(2016, 1, 27)}, Verisign, ProfileBGP},
		},
	},
	OpZOHO: {
		// "Similar for ZOHO, with two prefixes normally in AS2639."
		Name: "ZOHO", Kind: KindSaaS,
		AS:             ASSpec{2639, "ZOHO-AS - ZOHO Corporation"},
		NSSLD:          "zoho.com",
		Domains:        300_000,
		AlwaysProvider: -1,
		Episodes: []CohortEpisode{
			{300_000, simtime.Range{Start: day(2015, 6, 8), End: day(2015, 6, 18)}, Verisign, ProfileBGP},
			{300_000, simtime.Range{Start: day(2016, 5, 9), End: day(2016, 5, 20)}, Verisign, ProfileBGP},
		},
	},
	OpNamecheap: {
		// February 2016 anomaly ③: ≈247k Namecheap-hosted domains; "the
		// domains share a Namecheap NS SLD (registrar-servers.com) that
		// answers CloudFlare-announced addresses."
		Name: "Namecheap", Kind: KindRegistrar,
		AS:             ASSpec{22612, "NAMECHEAP-NET - Namecheap, Inc."},
		NSSLD:          "registrar-servers.com",
		Domains:        600_000,
		AlwaysProvider: -1,
		Episodes: []CohortEpisode{
			{247_000, simtime.Range{Start: day(2016, 2, 5), End: day(2016, 2, 27)}, CloudFlare, ProfileA},
		},
	},
	OpSedo: {
		// Trough ⑤ on 2015-11-22: ≈716k Sedo-parked domains (NS SLD
		// sedoparking.com) vanished from Akamai for one day due to a DNS
		// issue at Sedo.
		Name: "Sedo Domain Parking", Kind: KindParker,
		AS:             ASSpec{47846, "SEDO-AS - Sedo GmbH"},
		NSSLD:          "sedoparking.com",
		Domains:        1_500_000,
		AlwaysProvider: Akamai,
		AlwaysProfile:  ProfileA,
		AlwaysCohort:   716_000,
		DNSOutages:     []simtime.Day{day(2015, 11, 22)},
	},
	OpFabulous: {
		// Drop ④ in February 2016 for CenturyLink: "a Fabulous-owned
		// name server starts giving A answers for ≈355k domains that
		// previously routed to two prefixes announced by CenturyLink's
		// AS3561."
		Name: "Fabulous", Kind: KindDomainer,
		AS:             ASSpec{24940, "FABULOUS-AS - Fabulous.com Pty Ltd"},
		NSSLD:          "fabulous.com",
		Domains:        800_000,
		AlwaysProvider: CenturyLink,
		AlwaysProfile:  ProfileBGP,
		AlwaysASIdx:    1, // AS3561 (legacy Savvis)
		AlwaysCohort:   355_000,
		Episodes: []CohortEpisode{
			// Encoded as an episode of "non-use": handled specially — the
			// always-on relationship ends on this date.
			{355_000, simtime.Range{Start: day(2016, 2, 10), End: zonesForever}, -1, ProfileA},
		},
	},
}

// zonesForever mirrors zones.Forever without importing the package here.
const zonesForever simtime.Day = 1 << 30

// GenericHoster describes background hosting companies that serve the
// non-DPS majority of the namespace.
type GenericHoster struct {
	Name string
	AS   ASSpec
}

// GenericHosters is the pool of background hosting providers.
var GenericHosters = []GenericHoster{
	{"HostCo Alpha", ASSpec{64601, "HOSTCO-ALPHA - HostCo Alpha LLC"}},
	{"HostCo Beta", ASSpec{64602, "HOSTCO-BETA - HostCo Beta GmbH"}},
	{"HostCo Gamma", ASSpec{64603, "HOSTCO-GAMMA - HostCo Gamma BV"}},
	{"HostCo Delta", ASSpec{64604, "HOSTCO-DELTA - HostCo Delta Inc."}},
	{"HostCo Epsilon", ASSpec{64605, "HOSTCO-EPSILON - HostCo Epsilon SARL"}},
	{"HostCo Zeta", ASSpec{64606, "HOSTCO-ZETA - HostCo Zeta Ltd."}},
	{"HostCo Eta", ASSpec{64607, "HOSTCO-ETA - HostCo Eta Oy"}},
	{"HostCo Theta", ASSpec{64608, "HOSTCO-THETA - HostCo Theta Corp."}},
	{"HostCo Iota", ASSpec{64609, "HOSTCO-IOTA - HostCo Iota AB"}},
	{"HostCo Kappa", ASSpec{64610, "HOSTCO-KAPPA - HostCo Kappa KG"}},
}
