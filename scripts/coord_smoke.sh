#!/bin/sh
# End-to-end smoke test of the coordination plane: run dpscoord with 3
# workers under the seeded worker-crash scenario and assert every
# (source, day) partition committed exactly once; then run the torn-write
# scenario and assert the damaged spools were quarantined while the
# survivors still assembled. Mirrors the CI `coord-smoke` job; run
# locally with `make coord-smoke`.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM

SCALE="${COORD_SMOKE_SCALE:-200000}"
DAYS="${COORD_SMOKE_DAYS:-3}"

echo "== build"
go build -o "$WORK/dpscoord" ./cmd/dpscoord

echo "== worker-crash run (3 workers, seeded)"
"$WORK/dpscoord" -scale "$SCALE" -days "$DAYS" -workers 3 \
    -fault-scenario worker-crash -fault-seed 42 \
    -dir "$WORK/crashrun" -ledger-out "$WORK/ledger-crash.json" \
    -out "$WORK/crash.dpsa" -quiet >"$WORK/crash.out" 2>&1 ||
    { echo "coord_smoke: worker-crash run failed" >&2; cat "$WORK/crash.out" >&2; exit 1; }
cat "$WORK/crash.out"

grep -q "ledger complete" "$WORK/crash.out" ||
    { echo "coord_smoke: missing 'ledger complete' line" >&2; exit 1; }
grep -q "dataset verified" "$WORK/crash.out" ||
    { echo "coord_smoke: missing 'dataset verified' line" >&2; exit 1; }
grep -q ", 0 quarantined" "$WORK/crash.out" ||
    { echo "coord_smoke: worker-crash run quarantined spools (expected none)" >&2; exit 1; }

# Exactly-once, from the ledger itself: every row committed, no row
# absent, and the committed count matches the partition universe
# (sources x days). Single-level JSON, so sed keeps this dependency-free.
TOTAL="$(grep -c '"state"' "$WORK/ledger-crash.json")"
COMMITTED="$(grep -c '"state": "committed"' "$WORK/ledger-crash.json")"
echo "-- ledger: $COMMITTED/$TOTAL partitions committed"
[ "$TOTAL" -gt 0 ] || { echo "coord_smoke: empty ledger" >&2; exit 1; }
[ "$COMMITTED" = "$TOTAL" ] ||
    { echo "coord_smoke: $COMMITTED of $TOTAL partitions committed (lost work)" >&2; exit 1; }
grep -q "ledger complete: $TOTAL " "$WORK/crash.out" ||
    { echo "coord_smoke: stdout ledger count disagrees with ledger JSON" >&2; exit 1; }

# The chaos seed is fixed, so the scenario must actually bite: at least
# one partition needed more than one lease.
RETRIED="$(grep -c '"attempts": [2-9]' "$WORK/ledger-crash.json" || true)"
[ "$RETRIED" -gt 0 ] ||
    { echo "coord_smoke: no partition burned a retry under worker-crash (chaos not exercised)" >&2; exit 1; }
echo "-- $RETRIED partitions survived a worker crash and were re-leased"

echo "== torn-write run (spools torn at rest, CRC quarantine)"
"$WORK/dpscoord" -scale "$SCALE" -days "$DAYS" -workers 3 \
    -fault-scenario torn-write -fault-seed 7 \
    -dir "$WORK/tornrun" -ledger-out "$WORK/ledger-torn.json" \
    -quiet >"$WORK/torn.out" 2>&1 ||
    { echo "coord_smoke: torn-write run failed" >&2; cat "$WORK/torn.out" >&2; exit 1; }
cat "$WORK/torn.out"

grep -q "ledger complete" "$WORK/torn.out" ||
    { echo "coord_smoke: torn-write run did not commit every partition" >&2; exit 1; }
QUARANTINED="$(sed -n 's/.*dataset verified:.*, \([0-9][0-9]*\) quarantined.*/\1/p' "$WORK/torn.out")"
[ -n "$QUARANTINED" ] && [ "$QUARANTINED" -gt 0 ] ||
    { echo "coord_smoke: torn-write run quarantined nothing (expected damaged spools)" >&2; exit 1; }
ls "$WORK/tornrun/spool/quarantine/"*.dpsa >/dev/null 2>&1 ||
    { echo "coord_smoke: quarantine/ holds no spool files" >&2; exit 1; }
ls "$WORK/tornrun/spool/quarantine/"*.reason >/dev/null 2>&1 ||
    { echo "coord_smoke: quarantined spools carry no .reason files" >&2; exit 1; }
echo "-- $QUARANTINED torn spools quarantined, survivors assembled"

# When SMOKE_ARTIFACTS names a directory (CI does), keep both ledgers so
# the run's exactly-once evidence is inspectable after the fact.
if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    cp "$WORK/ledger-crash.json" "$SMOKE_ARTIFACTS/coord-ledger-worker-crash.json"
    cp "$WORK/ledger-torn.json" "$SMOKE_ARTIFACTS/coord-ledger-torn-write.json"
    echo "-- ledgers saved to $SMOKE_ARTIFACTS/"
fi

echo "coord_smoke: OK"
