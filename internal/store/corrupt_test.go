package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dpsadopt/internal/simtime"
)

// savedLayout describes a saved dataset's section boundaries, recovered
// through the same footer/directory parsing Load uses.
type savedLayout struct {
	data       []byte
	partsStart uint64
	dirOff     uint64
	parts      []PartitionInfo
}

func saveWithLayout(t *testing.T, s *Store) (string, savedLayout) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	version, err := readHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := readFooter(f, version)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := readDirectoryAt(f, meta)
	if err != nil {
		t.Fatal(err)
	}
	lay := savedLayout{data: data, dirOff: meta.dirOff, partsStart: meta.dirOff, parts: parts}
	for _, p := range parts {
		if p.offset < lay.partsStart {
			lay.partsStart = p.offset
		}
	}
	return path, lay
}

// allRows snapshots every partition's rows for equality comparison.
func allRows(s *Store) map[string][]Row {
	out := make(map[string][]Row)
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			out[fmt.Sprintf("%s/%s", src, day)] = rowsOf(s, src, day)
		}
	}
	return out
}

// TestSaveCrashMidStreamKeepsOldFile is the non-atomic-save regression
// test: a save that dies mid-stream (here: the encoder fails partway
// through the dictionary) must leave the previously saved file intact
// and loadable, with no temp residue that a later save would trip over.
func TestSaveCrashMidStreamKeepsOldFile(t *testing.T) {
	s := populatedStore()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// An over-long dict string makes encode fail after the header and
	// part of the dictionary have already been written — the moral
	// equivalent of kill -9 halfway through the stream.
	bad := populatedStore()
	bad.Dict().ID(strings.Repeat("x", 1<<16+1))
	if err := bad.Save(path); err == nil {
		t.Fatal("mid-stream save failure not reported")
	}

	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, now) {
		t.Fatal("old file damaged by failed save")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("old file no longer loads: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("failed save left temp residue %s", e.Name())
		}
	}

	// Crash residue from a kill -9 during a *previous* save (a stray
	// temp file) must not confuse loading or the next save.
	residue := filepath.Join(dir, "data.dpsa.tmp-crashed")
	if err := os.WriteFile(residue, orig[:len(orig)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("load with temp residue present: %v", err)
	}
	if err := s.Save(path); err != nil {
		t.Fatalf("save with temp residue present: %v", err)
	}
	if err := Verify(path); err != nil {
		t.Fatal(err)
	}
}

func TestVerify(t *testing.T) {
	s := populatedStore()
	path, lay := saveWithLayout(t, s)
	if err := Verify(path); err != nil {
		t.Fatalf("clean file: %v", err)
	}
	// A flipped byte inside the first partition fails verification.
	mut := append([]byte(nil), lay.data...)
	mut[lay.parts[0].offset+lay.parts[0].length/2] ^= 0x01
	bad := filepath.Join(t.TempDir(), "bad.dpsa")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(bad); err == nil {
		t.Fatal("flipped partition byte passed Verify")
	}
	// Truncation fails verification.
	trunc := filepath.Join(t.TempDir(), "trunc.dpsa")
	if err := os.WriteFile(trunc, lay.data[:len(lay.data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(trunc); err == nil {
		t.Fatal("truncated file passed Verify")
	}
}

// TestLoadSalvagesDamagedPartition: a torn/corrupt partition is
// quarantined with a descriptive error while the surviving partitions
// still load — the degrade-gracefully contract.
func TestLoadSalvagesDamagedPartition(t *testing.T) {
	s := populatedStore()
	_, lay := saveWithLayout(t, s)
	want := allRows(s)

	// Damage the second partition's bytes in place.
	victim := lay.parts[1]
	mut := append([]byte(nil), lay.data...)
	mut[victim.offset+victim.length/2] ^= 0xA5
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dpsa")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Load(bad)
	var pe *PartialLoadError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialLoadError", err)
	}
	if got == nil {
		t.Fatal("salvaging load returned nil store")
	}
	if len(pe.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want 1 entry", pe.Quarantined)
	}
	q := pe.Quarantined[0]
	if q.Source != victim.Source || q.Day != victim.Day {
		t.Fatalf("quarantined %s/%s, want %s/%s", q.Source, q.Day, victim.Source, victim.Day)
	}
	if !strings.Contains(q.Err, "checksum mismatch") {
		t.Fatalf("quarantine reason %q not descriptive", q.Err)
	}
	// The quarantine directory holds the partition bytes + reason.
	if q.Path == "" {
		t.Fatal("no quarantine file written")
	}
	raw, err := os.ReadFile(q.Path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(raw)) != victim.length {
		t.Fatalf("quarantine file holds %d bytes, want %d", len(raw), victim.length)
	}
	reason, err := os.ReadFile(q.Path + ".reason")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reason), "checksum mismatch") {
		t.Fatalf("reason file %q not descriptive", reason)
	}
	// Every surviving partition matches the original exactly.
	delete(want, fmt.Sprintf("%s/%s", victim.Source, victim.Day))
	if have := allRows(got); !reflect.DeepEqual(want, have) {
		t.Fatalf("surviving partitions differ:\nwant %v\ngot  %v", want, have)
	}

	// LoadPartition of the damaged partition reports the quarantine;
	// the other partitions still load individually.
	if _, err := LoadPartition(bad, victim.Source, victim.Day); err == nil {
		t.Fatal("damaged partition loaded without error")
	}
	ok := lay.parts[0]
	part, err := LoadPartition(bad, ok.Source, ok.Day)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := rowsOf(s, ok.Source, ok.Day), rowsOf(part, ok.Source, ok.Day); !reflect.DeepEqual(w, h) {
		t.Fatal("surviving partition rows differ via LoadPartition")
	}
}

func TestQuarantineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spool.dpsa")
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved, err := QuarantineFile(path, errors.New("checksum mismatch"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("damaged file still present after quarantine")
	}
	if filepath.Dir(moved) != filepath.Join(dir, "quarantine") {
		t.Fatalf("moved to %s", moved)
	}
	reason, err := os.ReadFile(moved + ".reason")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reason), "checksum mismatch") {
		t.Fatalf("reason = %q", reason)
	}
}

// TestCorruptLoadTable is the fuzz-style section-boundary table: the
// saved file is truncated, bit-flipped, and zero-filled at and around
// every section boundary (header end, dictionary end, each partition
// start/end, directory, footer), and Load/LoadPartition must never
// panic and never silently return wrong data — every mutation either
// fails with an error or yields exactly the original rows.
func TestCorruptLoadTable(t *testing.T) {
	s := populatedStore()
	_, lay := saveWithLayout(t, s)
	want := allRows(s)
	size := len(lay.data)

	boundaries := []int{0, 4, 8, int(lay.partsStart)}
	for _, p := range lay.parts {
		boundaries = append(boundaries, int(p.offset), int(p.offset+p.length))
	}
	boundaries = append(boundaries, int(lay.dirOff), size-int(footerSizeV4), size-4, size)
	sort.Ints(boundaries)

	check := func(t *testing.T, name string, mut []byte) {
		t.Helper()
		dir := t.TempDir()
		p := filepath.Join(dir, "mut.dpsa")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		// Load: error, or data indistinguishable from the original
		// (minus explicitly quarantined partitions).
		st, err := Load(p)
		if err == nil {
			if have := allRows(st); !reflect.DeepEqual(want, have) {
				t.Fatalf("%s: Load silently returned wrong data", name)
			}
		} else if st != nil {
			var pe *PartialLoadError
			if errors.As(err, &pe) {
				have := allRows(st)
				for key, rows := range have {
					if !reflect.DeepEqual(want[key], rows) {
						t.Fatalf("%s: salvaged partition %s has wrong rows", name, key)
					}
				}
			}
		}
		// LoadPartition: same contract per partition.
		for _, ent := range lay.parts {
			part, err := LoadPartition(p, ent.Source, ent.Day)
			if err != nil {
				continue
			}
			w := want[fmt.Sprintf("%s/%s", ent.Source, ent.Day)]
			if have := rowsOf(part, ent.Source, ent.Day); !reflect.DeepEqual(w, have) {
				t.Fatalf("%s: LoadPartition(%s/%s) silently returned wrong data", name, ent.Source, ent.Day)
			}
		}
		// Streaming Reader: Open may refuse the file outright; an open
		// that succeeds must serve each partition either as an error or
		// as exactly the original rows — never torn data, never a panic.
		r, err := Open(p)
		if err != nil {
			return
		}
		defer r.Close()
		dict, err := r.SharedDict()
		if err != nil {
			return
		}
		for _, k := range r.Keys() {
			b, release, err := r.AcquireBatch(k.Source, k.Day)
			if err != nil {
				continue
			}
			var have []Row
			for i := 0; i < b.Rows(); i++ {
				row := b.Row(i, dict)
				row.ASNs = append([]uint32(nil), row.ASNs...)
				have = append(have, row)
			}
			release()
			w := want[fmt.Sprintf("%s/%s", k.Source, k.Day)]
			if !reflect.DeepEqual(w, have) {
				t.Fatalf("%s: streaming read of %s silently returned wrong data", name, k)
			}
		}
	}

	for _, b := range boundaries {
		b := b
		t.Run(fmt.Sprintf("boundary%d", b), func(t *testing.T) {
			if b <= size {
				check(t, "truncate", append([]byte(nil), lay.data[:b]...))
			}
			for _, at := range []int{b - 1, b} {
				if at < 0 || at >= size {
					continue
				}
				mut := append([]byte(nil), lay.data...)
				mut[at] ^= 0x40
				check(t, fmt.Sprintf("bitflip@%d", at), mut)
			}
			if b < size {
				mut := append([]byte(nil), lay.data...)
				end := b + 8
				if end > size {
					end = size
				}
				for i := b; i < end; i++ {
					mut[i] = 0
				}
				check(t, fmt.Sprintf("zerofill@%d", b), mut)
			}
		})
	}
}

func TestAbsorb(t *testing.T) {
	s := populatedStore()
	dst := New()
	dst.Absorb(s)
	if !reflect.DeepEqual(allRows(s), allRows(dst)) {
		t.Fatal("absorbed rows differ from source")
	}
	// Absorbing a second, disjoint store adds its partitions alongside.
	other := New()
	w := other.NewWriter("org", simtime.Day(5))
	w.AddAddr("zed.org", KindApexA, addr("10.4.4.4"), []uint32{64500})
	w.Commit()
	dst.Absorb(other)
	if got := len(dst.Sources()); got != len(s.Sources())+1 {
		t.Fatalf("sources after second absorb = %v", dst.Sources())
	}
	if rows := rowsOf(dst, "org", 5); len(rows) != 1 || rows[0].Domain != "zed.org" {
		t.Fatalf("absorbed org rows = %+v", rows)
	}
}
