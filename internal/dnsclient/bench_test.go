package dnsclient

import (
	"context"
	"net/netip"
	"testing"

	"dpsadopt/internal/dnswire"
)

// BenchmarkResolveCached measures resolution with a warm referral cache
// (the steady state of a TLD sweep: one query per lookup).
func BenchmarkResolveCached(b *testing.B) {
	w := newTestWorld(b)
	r, err := NewResolver(w.net, netip.MustParseAddr("10.9.0.9"), w.roots, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Resolve(context.Background(), "examp.le", dnswire.TypeA)
		if err != nil || len(res.Addrs()) != 1 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkResolveColdChain measures a full cold walk with a cross-zone
// CNAME: root referral, two TLD referrals, glueless NS resolution, and
// the chase into the DPS zone.
func BenchmarkResolveColdChain(b *testing.B) {
	w := newTestWorld(b)
	r, err := NewResolver(w.net, netip.MustParseAddr("10.9.0.9"), w.roots, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FlushCache()
		res, err := r.Resolve(context.Background(), "www.examp.le", dnswire.TypeA)
		if err != nil || len(res.Addrs()) != 1 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}
