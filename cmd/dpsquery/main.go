// Command dpsquery inspects one domain of the simulated world on one day:
// its DNS state, the references it exhibits (per the paper's §3.3
// methodology), and the use classification over the whole window.
//
// Usage:
//
//	dpsquery -domain NAME [-date 2015-03-05] [-scale 100000]
//
// Run without -domain to list a few protected domains to try.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpsadopt/internal/core"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/worldsim"
)

func main() {
	var (
		domain = flag.String("domain", "", "domain to inspect")
		date   = flag.String("date", "2015-03-05", "day to inspect")
		scale  = flag.Int("scale", 100_000, "world scale divisor")
	)
	flag.Parse()

	w, err := worldsim.New(worldsim.DefaultConfig(*scale))
	if err != nil {
		fatal(err)
	}
	refs := core.MustGroundTruth()

	if *domain == "" {
		fmt.Println("no -domain given; some protected domains in this world:")
		n := 0
		for _, d := range w.Domains {
			if d.Cust != nil && n < 10 {
				fmt.Printf("  %-20s (%s customer)\n", d.Name, refs.Providers[d.Cust.Provider].Name)
				n++
			}
		}
		for i, op := range w.Operators {
			for _, d := range w.Domains {
				if d.Operator == i && d.OpIdx == 0 {
					fmt.Printf("  %-20s (%s cohort)\n", d.Name, op.Spec.Name)
					break
				}
			}
		}
		return
	}

	day, err := simtime.Parse(*date)
	if err != nil {
		fatal(err)
	}
	d, ok := w.DomainByName(strings.ToLower(*domain))
	if !ok {
		fatal(fmt.Errorf("domain %q not in this world (try a smaller -scale)", *domain))
	}
	st := w.StateFor(d, day)
	fmt.Printf("%s on %s:\n", d.Name, day)
	switch {
	case !st.Exists:
		fmt.Println("  not registered on this day")
		return
	case st.Unmeasurable:
		fmt.Println("  DNS outage at its operator: no measurement possible")
		return
	}
	entries, err := pfx2as.Parse(strings.NewReader(w.RIBForDay(day).Snapshot()))
	if err != nil {
		fatal(err)
	}
	table := pfx2as.NewWalk(entries)

	var methods [9]core.Method
	fmt.Println("  NS:", strings.Join(st.NSHosts, ", "))
	for _, ns := range st.NSHosts {
		if p, ok := refs.MatchNS(ns); ok {
			methods[p] |= core.RefNS
		}
	}
	for _, a := range st.ApexA {
		origins, _ := table.Lookup(a)
		fmt.Printf("  apex A: %v (origin %v)\n", a, origins)
		for _, o := range origins {
			if p, ok := refs.MatchASN(o); ok {
				methods[p] |= core.RefAS
			}
		}
	}
	if st.WWWCNAME != "" {
		fmt.Printf("  www CNAME: %s\n", st.WWWCNAME)
		if p, ok := refs.MatchCNAME(st.WWWCNAME); ok {
			methods[p] |= core.RefCNAME
		}
	}
	for _, a := range st.WWWA {
		origins, _ := table.Lookup(a)
		fmt.Printf("  www A: %v (origin %v)\n", a, origins)
		for _, o := range origins {
			if p, ok := refs.MatchASN(o); ok {
				methods[p] |= core.RefAS
			}
		}
	}
	detected := false
	for p, m := range methods {
		if m != 0 {
			detected = true
			fmt.Printf("  => uses %s via %s references\n", refs.Providers[p].Name, m)
		}
	}
	if !detected {
		fmt.Println("  => no DPS references on this day")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsquery:", err)
	os.Exit(1)
}
