package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Admission outcomes recorded per request.
const (
	AdmissionOK          = "ok"
	AdmissionRateLimited = "rate_limited"
	AdmissionShed        = "shed"
)

// ObservatoryConfig configures an Observatory. The zero value is usable:
// default windows, DefBuckets latency resolution, default slowlog/top-K
// sizes, wall clock, no registry exposition, and no objectives.
type ObservatoryConfig struct {
	// Clock injects a time source for deterministic tests; nil uses
	// time.Now.
	Clock Clock
	// Step and Span size the windowed rings (defaults:
	// DefaultWindowStep / SlowWindow).
	Step, Span time.Duration
	// LatencyBounds are the histogram bucket bounds in seconds (nil
	// uses DefBuckets).
	LatencyBounds []float64
	// SlowLogSize is the per-route slow-query retention (<=0 uses
	// DefaultSlowLogSize).
	SlowLogSize int
	// TopK is the heavy-hitter sketch capacity per dimension (<=0 uses
	// DefaultTopK).
	TopK int
	// SLOs are the objectives the scorecard evaluates, in report order.
	SLOs []Objective
	// WarnBurn and PageBurn are the status thresholds (<=0 uses
	// DefaultWarnBurn / DefaultPageBurn).
	WarnBurn, PageBurn float64
	// Registry, when set, exposes per-route windows (under
	// WindowMetricPrefix), slo_* gauges, and heavy-hitter gauges on
	// /metrics. Adoption is idempotent: if another observatory already
	// registered a route's window, this one records into the shared
	// series.
	Registry *Registry
	// WindowMetricPrefix names the per-route window series, e.g.
	// "api_request_window" yields api_request_window_seconds_<route>
	// and api_request_window_errors_<route>. Empty skips per-route
	// exposition even with a Registry.
	WindowMetricPrefix string
}

// RequestOutcome carries the per-request context the observatory records
// beyond route/latency/status.
type RequestOutcome struct {
	CacheHit  bool
	Coalesced bool
	Admission string // AdmissionOK when empty
	TraceID   string
	Detail    string // request detail for the slow log, e.g. the URI
}

// RouteWindows is the windowed telemetry of one route.
type RouteWindows struct {
	Latency *WindowedHistogram
	Errors  *WindowedCounter // 5xx responses

	// slow is the route's slow-log shard, cached here so RecordRequest
	// can run the floor check without a second route lookup.
	slow    *slowRouteLog
	slowCap int
}

// Observatory is the serving-tier query observatory: rolling windowed
// latency/error tracking per route, an SLO scorecard over those windows,
// a bounded slow-query log, and heavy-hitter sketches over query keys.
// All methods are safe for concurrent use and nil-receiver-safe, so
// callers can thread an optional *Observatory without guards.
type Observatory struct {
	cfg   ObservatoryConfig
	clock Clock
	// realClock is true when no clock was injected; RecordRequestAt may
	// then trust caller-supplied timestamps.
	realClock bool
	slowlog   *SlowLog

	mu     sync.RWMutex
	routes map[string]*RouteWindows
	topks  map[string]*TopK

	sloMu      sync.Mutex
	lastStatus map[string]string

	gBurn, gGoodRatio, gStatus *GaugeVec
	gTopTracked, gTopShare     *GaugeVec
}

// NewObservatory creates an observatory from cfg.
func NewObservatory(cfg ObservatoryConfig) *Observatory {
	realClock := cfg.Clock == nil
	if realClock {
		cfg.Clock = time.Now
	}
	if cfg.WarnBurn <= 0 {
		cfg.WarnBurn = DefaultWarnBurn
	}
	if cfg.PageBurn <= 0 {
		cfg.PageBurn = DefaultPageBurn
	}
	o := &Observatory{
		cfg:        cfg,
		clock:      cfg.Clock,
		realClock:  realClock,
		slowlog:    NewSlowLog(cfg.SlowLogSize),
		routes:     make(map[string]*RouteWindows),
		topks:      make(map[string]*TopK),
		lastStatus: make(map[string]string),
	}
	if reg := cfg.Registry; reg != nil {
		o.gBurn = reg.GaugeVec("slo_burn_rate", "error-budget burn rate per objective and window (label is objective:window)", "slo")
		o.gGoodRatio = reg.GaugeVec("slo_good_ratio", "good-events ratio per objective and window (label is objective:window)", "slo")
		o.gStatus = reg.GaugeVec("slo_status", "objective status: 0 ok, 1 warn, 2 breach", "slo")
		o.gTopTracked = reg.GaugeVec("heavy_hitter_tracked_keys", "keys tracked by the top-K sketch per dimension", "dim")
		o.gTopShare = reg.GaugeVec("heavy_hitter_top_share_pct", "estimated share of the top key per dimension, percent", "dim")
	}
	return o
}

// SlowLog returns the observatory's slow-query log.
func (o *Observatory) SlowLog() *SlowLog {
	if o == nil {
		return nil
	}
	return o.slowlog
}

// Route returns (creating on first use) the windowed telemetry for a
// route.
func (o *Observatory) Route(route string) *RouteWindows {
	o.mu.RLock()
	rw := o.routes[route]
	o.mu.RUnlock()
	if rw != nil {
		return rw
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if rw := o.routes[route]; rw != nil {
		return rw
	}
	lat := NewWindowedHistogram(o.cfg.LatencyBounds, o.cfg.Step, o.cfg.Span, o.clock)
	errs := NewWindowedCounter(o.cfg.Step, o.cfg.Span, o.clock)
	if o.cfg.Registry != nil && o.cfg.WindowMetricPrefix != "" {
		base := o.cfg.WindowMetricPrefix + "_"
		lat = o.cfg.Registry.RegisterWindowHistogram(base+"seconds_"+metricName(route),
			"rolling request latency of route "+route, lat)
		errs = o.cfg.Registry.RegisterWindowCounter(base+"errors_"+metricName(route),
			"rolling 5xx responses of route "+route, errs)
	}
	rw = &RouteWindows{
		Latency: lat, Errors: errs,
		slow: o.slowlog.route(route), slowCap: o.slowlog.perRoute,
	}
	o.routes[route] = rw
	return rw
}

// WouldRetain reports whether a request this slow would currently enter
// the slow-query log — a single atomic load, so hot paths can skip
// building RequestOutcome.Detail for requests the log will reject.
// Advisory: the floor can move between this check and RecordRequest.
func (o *Observatory) WouldRetain(route string, seconds float64) bool {
	if o == nil {
		return false
	}
	return o.Route(route).slow.aboveFloor(seconds)
}

// RecordRequest records one served request: latency into the route's
// windowed histogram, 5xx into its windowed error counter, and the
// request into the slow-query log.
func (o *Observatory) RecordRequest(route string, seconds float64, status int, out RequestOutcome) {
	if o == nil {
		return
	}
	o.RecordRequestAt(o.clock(), route, seconds, status, out)
}

// RecordRequestAt is RecordRequest reusing a wall-clock timestamp the
// caller already has (e.g. start.Add(elapsed)), saving a clock read per
// request. An observatory on an injected clock ignores the hint and
// keeps its own time, so deterministic tests stay deterministic.
func (o *Observatory) RecordRequestAt(now time.Time, route string, seconds float64, status int, out RequestOutcome) {
	if o == nil {
		return
	}
	if !o.realClock {
		now = o.clock()
	}
	rw := o.Route(route)
	rw.Latency.ObserveAt(now, seconds)
	if status >= 500 {
		rw.Errors.AddAt(now, 1)
	}
	// Steady-state fast path: one atomic floor load rejects requests
	// faster than the slowest retained entry before any struct is built.
	if !rw.slow.aboveFloor(seconds) {
		return
	}
	if out.Admission == "" {
		out.Admission = AdmissionOK
	}
	rw.slow.offer(SlowQuery{
		Route:     route,
		Detail:    out.Detail,
		Seconds:   seconds,
		Status:    status,
		CacheHit:  out.CacheHit,
		Coalesced: out.Coalesced,
		Admission: out.Admission,
		TraceID:   out.TraceID,
		At:        now.UTC(),
	}, rw.slowCap)
}

// Sketch returns (creating on first use) the heavy-hitter sketch for
// one dimension. Hot paths can cache the returned sketch and Offer keys
// directly, skipping the dimension lookup per request.
func (o *Observatory) Sketch(dim string) *TopK {
	if o == nil {
		return nil
	}
	o.mu.RLock()
	t := o.topks[dim]
	o.mu.RUnlock()
	if t == nil {
		o.mu.Lock()
		if t = o.topks[dim]; t == nil {
			t = NewTopK(o.cfg.TopK)
			o.topks[dim] = t
		}
		o.mu.Unlock()
	}
	return t
}

// RecordKey counts one occurrence of key in the named heavy-hitter
// dimension (e.g. "domain", "provider").
func (o *Observatory) RecordKey(dim, key string) {
	if o == nil || key == "" {
		return
	}
	o.Sketch(dim).Offer(key)
}

// TopKDim returns the sketch for one dimension (nil if never recorded).
func (o *Observatory) TopKDim(dim string) *TopK {
	if o == nil {
		return nil
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.topks[dim]
}

// Scorecard evaluates every objective as of the observatory clock. It is
// a pure read — no gauges move, no logs fire — so handlers and tests can
// call it freely.
func (o *Observatory) Scorecard() Scorecard {
	now := o.clock()
	sc := Scorecard{
		GeneratedAt: now.UTC().Format(time.RFC3339Nano),
		FastWindow:  FastWindow.String(),
		SlowWindow:  SlowWindow.String(),
		WarnBurn:    o.cfg.WarnBurn,
		PageBurn:    o.cfg.PageBurn,
		Objectives:  make([]ObjectiveScore, 0, len(o.cfg.SLOs)),
	}
	for _, obj := range o.cfg.SLOs {
		sc.Objectives = append(sc.Objectives, o.scoreObjective(obj, now))
	}
	return sc
}

func (o *Observatory) scoreObjective(obj Objective, now time.Time) ObjectiveScore {
	rw := o.Route(obj.Route)
	fastSnap := rw.Latency.MergedAt(now, FastWindow)
	slowSnap := rw.Latency.MergedAt(now, SlowWindow)
	score := ObjectiveScore{
		Objective: obj,
		P50FastS:  fastSnap.Quantile(0.50),
		P99FastS:  fastSnap.Quantile(0.99),
	}
	windowScore := func(label string, snap WindowSnapshot, window time.Duration) WindowScore {
		var bad uint64
		switch obj.Kind {
		case KindLatency:
			good, eff := snap.GoodCount(obj.LatencyThreshold)
			score.EffectiveThreshold = eff
			bad = snap.Count - good
		default: // availability
			bad = uint64(rw.Errors.TotalAt(now, window))
			if bad > snap.Count {
				bad = snap.Count
			}
		}
		return WindowScore{
			Window:    label,
			Total:     snap.Count,
			Bad:       bad,
			GoodRatio: goodRatio(bad, snap.Count),
			BurnRate:  burnRate(bad, snap.Count, obj.Target),
		}
	}
	score.Fast = windowScore("5m", fastSnap, FastWindow)
	score.Slow = windowScore("1h", slowSnap, SlowWindow)
	score.Status = statusFor(score.Fast, score.Slow, o.cfg.WarnBurn, o.cfg.PageBurn)
	return score
}

// Publish evaluates the scorecard, pushes it into the slo_* and
// heavy-hitter gauges, and emits a structured log event on every status
// transition (worsening logs at warn level, recovery at info). The
// evaluator loop calls this periodically; callers may also invoke it
// directly (e.g. right before shutdown).
func (o *Observatory) Publish() Scorecard {
	if o == nil {
		return Scorecard{}
	}
	sc := o.Scorecard()
	for _, obj := range sc.Objectives {
		if o.gBurn != nil {
			o.gBurn.With(obj.Name + ":5m").Set(obj.Fast.BurnRate)
			o.gBurn.With(obj.Name + ":1h").Set(obj.Slow.BurnRate)
			o.gGoodRatio.With(obj.Name + ":5m").Set(obj.Fast.GoodRatio)
			o.gGoodRatio.With(obj.Name + ":1h").Set(obj.Slow.GoodRatio)
			o.gStatus.With(obj.Name).Set(statusLevel(obj.Status))
		}
		o.logTransition(obj)
	}
	if o.gTopTracked != nil {
		o.mu.RLock()
		dims := make(map[string]*TopK, len(o.topks))
		for dim, t := range o.topks {
			dims[dim] = t
		}
		o.mu.RUnlock()
		for dim, t := range dims {
			top := t.Top(1)
			o.gTopTracked.With(dim).Set(float64(len(t.Top(0))))
			if total := t.Total(); total > 0 && len(top) > 0 {
				o.gTopShare.With(dim).Set(100 * float64(top[0].Count) / float64(total))
			}
		}
	}
	return sc
}

func (o *Observatory) logTransition(obj ObjectiveScore) {
	o.sloMu.Lock()
	last, seen := o.lastStatus[obj.Name]
	o.lastStatus[obj.Name] = obj.Status
	o.sloMu.Unlock()
	if (seen && last == obj.Status) || (!seen && obj.Status == "ok") {
		return
	}
	args := []any{
		"objective", obj.Name, "route", obj.Route,
		"from", last, "to", obj.Status,
		"burn_fast", obj.Fast.BurnRate, "burn_slow", obj.Slow.BurnRate,
	}
	if obj.Status == "ok" {
		Logger().Info("slo status recovered", args...)
	} else {
		Logger().Warn("slo status changed", args...)
	}
}

// StartEvaluator runs Publish every interval (<=0 uses 10s) until the
// returned stop function is called. Nil-safe: a nil observatory returns
// a no-op stop.
func (o *Observatory) StartEvaluator(interval time.Duration) (stop func()) {
	if o == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				o.Publish()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// RouteWindowSummary is one route's fast-window digest inside the
// /v1/stats observatory block.
type RouteWindowSummary struct {
	Requests5m uint64  `json:"requests_5m"`
	Rate5m     float64 `json:"rate_5m"`
	Errors5m   uint64  `json:"errors_5m"`
	P50MS5m    float64 `json:"p50_5m_ms"`
	P99MS5m    float64 `json:"p99_5m_ms"`
}

// ObservatorySummary is the digest embedded in /v1/stats: per-route
// fast-window traffic, objective statuses, and the head of each
// heavy-hitter dimension.
type ObservatorySummary struct {
	Routes    map[string]RouteWindowSummary `json:"routes"`
	SLOStatus map[string]string             `json:"slo_status"`
	TopK      map[string][]TopKEntry        `json:"top_k"`
}

// Summary builds the /v1/stats digest (nil receiver yields nil, so the
// JSON field is simply omitted).
func (o *Observatory) Summary() *ObservatorySummary {
	if o == nil {
		return nil
	}
	now := o.clock()
	sum := &ObservatorySummary{
		Routes:    make(map[string]RouteWindowSummary),
		SLOStatus: make(map[string]string),
		TopK:      make(map[string][]TopKEntry),
	}
	o.mu.RLock()
	routes := make(map[string]*RouteWindows, len(o.routes))
	for name, rw := range o.routes {
		routes[name] = rw
	}
	dims := make(map[string]*TopK, len(o.topks))
	for dim, t := range o.topks {
		dims[dim] = t
	}
	o.mu.RUnlock()
	for name, rw := range routes {
		s := rw.Latency.MergedAt(now, FastWindow)
		sum.Routes[name] = RouteWindowSummary{
			Requests5m: s.Count,
			Rate5m:     float64(s.Count) / FastWindow.Seconds(),
			Errors5m:   uint64(rw.Errors.TotalAt(now, FastWindow)),
			P50MS5m:    s.Quantile(0.50) * 1000,
			P99MS5m:    s.Quantile(0.99) * 1000,
		}
	}
	for _, obj := range o.cfg.SLOs {
		sum.SLOStatus[obj.Name] = o.scoreObjective(obj, now).Status
	}
	for dim, t := range dims {
		sum.TopK[dim] = t.Top(5)
	}
	return sum
}

// SLOHandler serves the scorecard at /debug/slo.
func (o *Observatory) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Scorecard())
	})
}

// SlowLogHandler serves the slow-query log at /debug/slowlog.
func (o *Observatory) SlowLogHandler() http.Handler { return o.slowlog.Handler() }

// topkReport is one dimension's /debug/topk block.
type topkReport struct {
	K          int         `json:"k"`
	Total      uint64      `json:"total"`
	ErrorBound uint64      `json:"error_bound"`
	Top        []TopKEntry `json:"top"`
}

// TopKHandler serves the heavy-hitter sketches at /debug/topk: one block
// per dimension; `?n=` caps entries (default 20).
func (o *Observatory) TopKHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		o.mu.RLock()
		dims := make([]string, 0, len(o.topks))
		sketches := make(map[string]*TopK, len(o.topks))
		for dim, t := range o.topks {
			dims = append(dims, dim)
			sketches[dim] = t
		}
		o.mu.RUnlock()
		sort.Strings(dims)
		resp := make(map[string]topkReport, len(dims))
		for _, dim := range dims {
			t := sketches[dim]
			resp[dim] = topkReport{K: t.K(), Total: t.Total(), ErrorBound: t.ErrorBound(), Top: t.Top(n)}
		}
		writeJSON(w, resp)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// metricName sanitizes a route name into a metric-name suffix.
func metricName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
