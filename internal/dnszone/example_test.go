package dnszone_test

import (
	"fmt"
	"net/netip"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
)

// ExampleZone_Lookup reproduces the paper's Section 2 "Canonical Name"
// diversion example: www.examp.le is an alias into the DPS-owned foob.ar
// zone.
func ExampleZone_Lookup() {
	z := dnszone.MustNew("examp.le")
	z.MustAdd(dnswire.RR{Name: "www.examp.le", Type: dnswire.TypeCNAME, TTL: 300,
		Data: dnswire.CNAME{Target: "foob.ar"}})

	res := z.Lookup("www.examp.le", dnswire.TypeA)
	fmt.Println(res.RCode, res.Authoritative)
	fmt.Println(res.Answer[0])
	// Output:
	// NOERROR true
	// www.examp.le 300 IN CNAME foob.ar
}

// ExampleZone_Lookup_delegation shows a registry-style referral below a
// zone cut, with glue.
func ExampleZone_Lookup_delegation() {
	com := dnszone.MustNew("com")
	com.MustAdd(dnswire.RR{Name: "examp.com", Type: dnswire.TypeNS, TTL: 3600,
		Data: dnswire.NS{Host: "ns1.examp.com"}})
	com.MustAdd(dnswire.RR{Name: "ns1.examp.com", Type: dnswire.TypeA, TTL: 3600,
		Data: dnswire.A{Addr: netip.MustParseAddr("10.0.0.53")}})

	res := com.Lookup("www.examp.com", dnswire.TypeA)
	fmt.Println("delegated:", res.Delegated)
	fmt.Println(res.Authority[0])
	fmt.Println(res.Additional[0])
	// Output:
	// delegated: true
	// examp.com 3600 IN NS ns1.examp.com
	// ns1.examp.com 3600 IN A 10.0.0.53
}
