package api

// Incremental index maintenance. A running dpsapi must fold a freshly
// committed (source, day) partition into its serving state without
// rebuilding the whole index: Apply takes the partition's already-run
// detections and produces a NEW Index sharing everything the delta does
// not touch (copy-on-write), plus a Delta describing exactly which
// days and domains changed so the response cache can be invalidated
// precisely. The old index stays fully readable throughout — in-flight
// requests finish against it — and the swap is a single pointer store.
//
// Three shapes of update exist, in decreasing frequency:
//
//   - pure append: the new day is after every indexed day (the daily
//     crawl case). Columns grow by one slot; only detected domains are
//     repacked.
//   - same-day merge: another source commits an already-indexed day.
//     Day counts grow by the genuinely new (domain, provider) pairs —
//     membership is checked against the old interval lists, mirroring
//     the "count once per day across sources" rule of the full build.
//   - backfill: a day lands between already-indexed days. Besides the
//     detected domains, every domain whose packed interval spans the
//     inserted day must be repacked (its run is no longer a run of
//     consecutive measured days), so this shape pays one scan over the
//     domain map.

import (
	"fmt"
	"sort"
	"time"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
)

// PartitionUpdate is one committed (source, day) partition's detection
// result, ready to fold into an index. Det must have been built with
// the same *core.References the index was, but may come from any store
// dictionary (the spool's own): Apply consumes it at the string edge.
type PartitionUpdate struct {
	Source string
	Day    simtime.Day
	Det    *core.DayDetections
}

// Delta reports what an Apply changed, for precise cache invalidation.
type Delta struct {
	Epoch   uint64          // the new index's epoch
	Applied int             // partitions folded in
	Days    []simtime.Day   // days whose aggregates changed, sorted
	NewDays []simtime.Day   // subset of Days not previously indexed
	Domains map[string]bool // domains whose histories changed (incl. repacked spanners)
}

// Apply folds a batch of partition updates into a new index, leaving
// the receiver untouched. The same (source, day) must not be applied
// twice — callers (the follower) dedupe against the journal. An empty
// batch returns the receiver unchanged with a nil delta.
func (x *Index) Apply(batch []PartitionUpdate) (*Index, *Delta) {
	if len(batch) == 0 {
		return x, nil
	}
	start := time.Now()
	np := x.refs.NumProviders()

	// Merge updates day by day at the string edge: each Det resolves
	// its own dictionary, exactly as the full build merges sources.
	byDay := make(map[simtime.Day][]map[string]core.Method)
	measuredAdd := make(map[simtime.Day]int64)
	srcSet := make(map[string]bool, len(x.sources))
	for _, s := range x.sources {
		srcSet[s] = true
	}
	for _, u := range batch {
		if u.Det.NumProviders() != np {
			panic(fmt.Sprintf("api: Apply update %s/%s built with %d providers, index has %d",
				u.Source, u.Day, u.Det.NumProviders(), np))
		}
		merged := byDay[u.Day]
		if merged == nil {
			merged = make([]map[string]core.Method, np)
			for p := range merged {
				merged[p] = make(map[string]core.Method)
			}
			byDay[u.Day] = merged
		}
		for p := 0; p < np; p++ {
			u.Det.MergeAny(p, merged[p])
		}
		measuredAdd[u.Day] += int64(u.Det.DomainsMeasured)
		srcSet[u.Source] = true
	}

	delta := &Delta{
		Epoch:   x.epoch + 1,
		Applied: len(batch),
		Domains: make(map[string]bool),
	}
	for d := range byDay {
		delta.Days = append(delta.Days, d)
		if _, ok := x.dayPos[d]; !ok {
			delta.NewDays = append(delta.NewDays, d)
		}
	}
	sort.Slice(delta.Days, func(i, j int) bool { return delta.Days[i] < delta.Days[j] })
	sort.Slice(delta.NewDays, func(i, j int) bool { return delta.NewDays[i] < delta.NewDays[j] })

	nd := &Index{
		refs:        x.refs,
		partitions:  x.partitions + len(batch),
		epoch:       x.epoch + 1,
		detectStats: x.detectStats,
	}
	nd.sources = make([]string, 0, len(srcSet))
	for s := range srcSet {
		nd.sources = append(nd.sources, s)
	}
	sort.Strings(nd.sources)

	// Day axis: splice new days in, remembering each new position's old
	// counterpart (-1 for inserted days) for the column copy below.
	if len(delta.NewDays) == 0 {
		nd.days, nd.dayPos = x.days, x.dayPos
	} else {
		nd.days = make([]simtime.Day, 0, len(x.days)+len(delta.NewDays))
		nd.days = append(nd.days, x.days...)
		nd.days = append(nd.days, delta.NewDays...)
		sort.Slice(nd.days, func(i, j int) bool { return nd.days[i] < nd.days[j] })
		nd.dayPos = make(map[simtime.Day]int, len(nd.days))
		for i, d := range nd.days {
			nd.dayPos[d] = i
		}
	}
	oldPosOf := make([]int, len(nd.days))
	for i, d := range nd.days {
		if op, ok := x.dayPos[d]; ok {
			oldPosOf[i] = op
		} else {
			oldPosOf[i] = -1
		}
	}
	copyCol := func(old []int64) []int64 {
		out := make([]int64, len(nd.days))
		for i, op := range oldPosOf {
			if op >= 0 {
				out[i] = old[op]
			}
		}
		return out
	}
	nd.measured = copyCol(x.measured)
	nd.anyUse = copyCol(x.anyUse)
	nd.series = make([][]int64, np)
	for p := 0; p < np; p++ {
		nd.series[p] = copyCol(x.series[p])
	}

	// Fold the day aggregates and collect per-domain new detections.
	// For an already-indexed day only genuinely new (domain, provider)
	// pairs bump the counts: the old interval list is the membership
	// oracle (every measured day inside a packed run is a detection).
	perDomain := make(map[string]map[simtime.Day][]core.Method)
	for day, merged := range byDay {
		di := nd.dayPos[day]
		dayIsNew := oldPosOf[di] < 0
		anyDom := make(map[string]bool)
		for p := 0; p < np; p++ {
			added := int64(0)
			for dom, m := range merged[p] {
				delta.Domains[dom] = true
				anyDom[dom] = true
				pd := perDomain[dom]
				if pd == nil {
					pd = make(map[simtime.Day][]core.Method)
					perDomain[dom] = pd
				}
				pm := pd[day]
				if pm == nil {
					pm = make([]core.Method, np)
					pd[day] = pm
				}
				pm[p] |= m
				if dayIsNew || !x.detectedOn(dom, p, day) {
					added++
				}
			}
			nd.series[p][di] += added
		}
		for dom := range anyDom {
			if dayIsNew || !x.detectedAnyOn(dom, day) {
				nd.anyUse[di]++
			}
		}
		nd.measured[di] += measuredAdd[day]
	}

	// A backfilled day severs the measured-day adjacency of every packed
	// run that spans it: those domains must repack even without new
	// detections (their histories now show a gap on the inserted day).
	var mid []int32
	if len(x.days) > 0 {
		for _, d := range delta.NewDays {
			if d > x.days[0] && d < x.days[len(x.days)-1] {
				mid = append(mid, int32(d))
			}
		}
	}
	if len(mid) > 0 {
		for dom, ivs := range x.domains {
			if delta.Domains[dom] {
				continue
			}
		scan:
			for _, iv := range ivs {
				for _, d := range mid {
					if iv.first < d && d < iv.last {
						delta.Domains[dom] = true
						break scan
					}
				}
			}
		}
	}

	// Copy-on-write domain map: untouched domains share their interval
	// slices with the old index; touched ones are exploded against the
	// OLD day axis, overlaid with the new detections, and repacked
	// against the NEW one. The daily-crawl case — every touched day new
	// and after the whole old axis — skips the O(history) explode: no
	// existing day's detections changed, so the old packing stays valid
	// and the new days extend a copy of it in O(intervals + new days).
	appendOnly := len(delta.Days) == len(delta.NewDays) &&
		(len(x.days) == 0 || delta.NewDays[0] > x.days[len(x.days)-1])
	nd.domains = make(map[string][]interval, len(x.domains)+len(delta.Domains))
	for dom, ivs := range x.domains {
		nd.domains[dom] = ivs
	}
	for dom := range delta.Domains {
		if appendOnly {
			nd.domains[dom] = x.appendDomain(dom, perDomain[dom], delta.NewDays)
		} else {
			nd.domains[dom] = x.repackDomain(nd, dom, perDomain[dom])
		}
	}

	// Smoothing is global over each provider's series, so it recomputes
	// wholesale — O(providers × days), trivial next to detection.
	nd.smoothed = make([][]float64, np)
	for p := 0; p < np; p++ {
		raw := make([]float64, len(nd.series[p]))
		for i, v := range nd.series[p] {
			raw[i] = float64(v)
		}
		nd.smoothed[p] = analysis.Smooth(raw)
	}

	nd.buildTime = time.Since(start)
	mIndexDomains.Set(float64(len(nd.domains)))
	mIndexDays.Set(float64(len(nd.days)))
	return nd, delta
}

// detectedOn reports whether the old index already counts (dom, p) as
// detected on day d. Valid only for indexed days: interval packing
// guarantees every measured day inside [first, last] is a detection.
func (x *Index) detectedOn(dom string, p int, d simtime.Day) bool {
	for _, iv := range x.domains[dom] {
		if int(iv.provider) == p && iv.first <= int32(d) && int32(d) <= iv.last {
			return true
		}
	}
	return false
}

// detectedAnyOn is detectedOn for "any provider".
func (x *Index) detectedAnyOn(dom string, d simtime.Day) bool {
	for _, iv := range x.domains[dom] {
		if iv.first <= int32(d) && int32(d) <= iv.last {
			return true
		}
	}
	return false
}

// appendDomain is repackDomain's append-only fast path: every touched
// day is new and after the old day axis, so the old packing is reused
// verbatim (copied — appendDetection may extend the last interval in
// place, and the old index must stay readable) and only the new tail is
// packed. prev threads through ALL new days, detections or not, so a
// skipped day severs runs exactly as the full build would.
func (x *Index) appendDomain(dom string, add map[simtime.Day][]core.Method, newDays []simtime.Day) []interval {
	old := x.domains[dom]
	ivs := make([]interval, len(old), len(old)+len(newDays))
	copy(ivs, old)
	prev := simtime.Day(-1 << 30)
	if len(x.days) > 0 {
		prev = x.days[len(x.days)-1]
	}
	np := x.refs.NumProviders()
	for _, day := range newDays {
		if pm := add[day]; pm != nil {
			for p := 0; p < np; p++ {
				if pm[p] != 0 {
					ivs = appendDetection(ivs, p, pm[p], day, prev)
				}
			}
		}
		prev = day
	}
	return ivs
}

// repackDomain rebuilds one domain's interval list: the old intervals
// are exploded into per-day detections against the old day axis, the
// new detections (nil for pure spanners) are OR-ed in, and the result
// is packed against the new day axis — byte-identical to what a full
// build over the union data would produce.
func (x *Index) repackDomain(nd *Index, dom string, add map[simtime.Day][]core.Method) []interval {
	np := x.refs.NumProviders()
	det := make(map[simtime.Day][]core.Method)
	for _, iv := range x.domains[dom] {
		for d := iv.first; d <= iv.last; d++ {
			day := simtime.Day(d)
			if _, ok := x.dayPos[day]; !ok {
				continue
			}
			pm := det[day]
			if pm == nil {
				pm = make([]core.Method, np)
				det[day] = pm
			}
			pm[iv.provider] |= iv.methods
		}
	}
	for day, apm := range add {
		pm := det[day]
		if pm == nil {
			pm = make([]core.Method, np)
			det[day] = pm
		}
		for p, m := range apm {
			pm[p] |= m
		}
	}

	var ivs []interval
	prev := simtime.Day(-1 << 30)
	for _, day := range nd.days {
		if pm := det[day]; pm != nil {
			for p := 0; p < np; p++ {
				if pm[p] != 0 {
					ivs = appendDetection(ivs, p, pm[p], day, prev)
				}
			}
		}
		prev = day
	}
	return ivs
}
