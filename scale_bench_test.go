package dpsadopt

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"slices"
	"strings"
	"sync"
	"testing"

	"dpsadopt/internal/api"
	"dpsadopt/internal/benchfmt"
	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

// The scale benchmarks are the out-of-core evidence the README and
// DESIGN.md §14 quote: BenchmarkScaleLoad compares the full-load index
// build (store.Load + api.NewIndex) against the streaming build
// (store.Open + api.NewIndexReader) over the same dataset files at a
// sweep of world scales; BenchmarkScaleDetect compares the raw
// detection pass (core.DetectRange resident vs core.DetectRangeSource
// streaming) without the index fold. Whichever runs last persists both
// sections to results/BENCH_scale.json (schema scale/v1), the artifact
// scripts/benchdiff.sh tracks. Acceptance at the largest scale (the
// smallest divisor): streaming peak heap <= 25% of full-load and
// throughput ratio >= 0.8.
//
// Each cell runs in a fresh subprocess (the test binary re-execs
// itself into TestScaleCellHelper): peak-heap sampling is sensitive to
// GC pacing history, so back-to-back measurements in one process drift
// by integer factors, while a pristine process gives repeatable
// readings. The parent keeps dataset generation and the ratio math.
var scaleBenchSweep = []struct{ scale, days int }{
	{50_000, 16},
	{16_000, 16},
	{6_000, 16},
}

var scaleBench struct {
	mu     sync.Mutex
	data   map[int]scaleFixture // keyed by scale divisor
	cells  []benchfmt.ScaleCell
	detect []benchfmt.ScaleCell
}

type scaleFixture struct {
	path      string
	parts     int
	rows      int64
	fileBytes int64
}

// scaleCellResult is what the helper subprocess reports back on stdout.
type scaleCellResult struct {
	Stream   benchfmt.ScalePath `json:"stream"`
	Full     benchfmt.ScalePath `json:"full"`
	ParityOK bool               `json:"parity_ok"`
}

const scaleCellMarker = "SCALECELL:"

// scaleDataset measures a world at the given scale into a saved dataset
// file, once per scale per process (both benchmarks sweep the same
// files).
func scaleDataset(b *testing.B, scale, days int) scaleFixture {
	b.Helper()
	scaleBench.mu.Lock()
	defer scaleBench.mu.Unlock()
	if fx, ok := scaleBench.data[scale]; ok {
		return fx
	}
	w, err := worldsim.New(worldsim.DefaultConfig(scale))
	if err != nil {
		b.Fatal(err)
	}
	s := store.New()
	p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	for d := simtime.Day(0); d < simtime.Day(days); d++ {
		if err := p.RunDay(context.Background(), d); err != nil {
			b.Fatal(err)
		}
	}
	dir, err := os.MkdirTemp("", "dpsadopt-scale")
	if err != nil {
		b.Fatal(err)
	}
	fx := scaleFixture{path: filepath.Join(dir, fmt.Sprintf("scale%d.dpsa", scale))}
	if err := s.Save(fx.path); err != nil {
		b.Fatal(err)
	}
	parts := core.Partitions(s)
	fx.parts = len(parts)
	for _, pt := range parts {
		if batch, ok := s.RowBatch(pt.Source, pt.Day); ok {
			fx.rows += int64(batch.Rows())
		}
	}
	fi, err := os.Stat(fx.path)
	if err != nil {
		b.Fatal(err)
	}
	fx.fileBytes = fi.Size()
	if scaleBench.data == nil {
		scaleBench.data = map[int]scaleFixture{}
	}
	scaleBench.data[scale] = fx
	return fx
}

// runScaleCell re-execs the test binary into TestScaleCellHelper with
// the dataset path and mode, and parses the cell it prints.
func runScaleCell(b *testing.B, fx scaleFixture, mode string) scaleCellResult {
	b.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestScaleCellHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"DPSADOPT_SCALE_CELL=1",
		"DPSADOPT_SCALE_PATH="+fx.path,
		"DPSADOPT_SCALE_MODE="+mode,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		b.Fatalf("scale cell subprocess (%s): %v\n%s", mode, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, scaleCellMarker) {
			continue
		}
		var res scaleCellResult
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, scaleCellMarker)), &res); err != nil {
			b.Fatalf("scale cell subprocess (%s): bad result line %q: %v", mode, line, err)
		}
		return res
	}
	b.Fatalf("scale cell subprocess (%s) produced no %s line:\n%s", mode, scaleCellMarker, out)
	return scaleCellResult{}
}

// TestScaleCellHelper is not a test: it is the measurement half of the
// scale benchmarks, run in a pristine subprocess so GC pacing history
// from other benchmarks cannot distort the peak-heap sampling. It
// measures the streaming path first (the full path's larger residual
// heap must not inflate the streaming RSS reading) and prints one
// SCALECELL: line.
func TestScaleCellHelper(t *testing.T) {
	if os.Getenv("DPSADOPT_SCALE_CELL") != "1" {
		t.Skip("subprocess helper for BenchmarkScaleLoad/BenchmarkScaleDetect")
	}
	path := os.Getenv("DPSADOPT_SCALE_PATH")
	refs := core.MustGroundTruth()
	var res scaleCellResult
	var err error
	switch mode := os.Getenv("DPSADOPT_SCALE_MODE"); mode {
	case "index":
		var streamIdx, fullIdx *api.Index
		res.Stream, err = benchfmt.MeasureBuild(func() error {
			r, err := store.Open(path)
			if err != nil {
				return err
			}
			defer r.Close()
			r.SetCachePartitions(1) // single-pass build: a deeper cache never hits
			streamIdx, err = api.NewIndexReader(r, refs)
			return err
		})
		if err != nil {
			t.Fatalf("streaming build: %v", err)
		}
		res.Full, err = benchfmt.MeasureBuild(func() error {
			full, err := store.Load(path)
			if err != nil {
				return err
			}
			fullIdx = api.NewIndex(full, refs)
			return nil
		})
		if err != nil {
			t.Fatalf("full build: %v", err)
		}
		res.ParityOK = sameIndexViewBench(streamIdx, fullIdx)
	case "detect":
		var streamDets, fullDets []*core.DayDetections
		res.Stream, err = benchfmt.MeasureBuild(func() error {
			r, err := store.Open(path)
			if err != nil {
				return err
			}
			defer r.Close()
			r.SetCachePartitions(1)
			var failed []core.PartitionFailure
			streamDets, _, failed = core.DetectRangeSource(context.Background(), r, core.ReaderPartitions(r), refs, 0)
			if len(failed) > 0 {
				return fmt.Errorf("%d partitions failed streaming detection", len(failed))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("streaming detection: %v", err)
		}
		res.Full, err = benchfmt.MeasureBuild(func() error {
			s, err := store.Load(path)
			if err != nil {
				return err
			}
			fullDets = core.DetectRange(context.Background(), s, core.Partitions(s), refs, 0)
			return nil
		})
		if err != nil {
			t.Fatalf("resident detection: %v", err)
		}
		res.ParityOK = sameDetections(refs, fullDets, streamDets)
	default:
		t.Fatalf("unknown DPSADOPT_SCALE_MODE %q", mode)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(scaleCellMarker + string(raw))
}

func BenchmarkScaleLoad(b *testing.B) {
	runScaleSweepBench(b, "index", &scaleBench.cells)
}

func BenchmarkScaleDetect(b *testing.B) {
	runScaleSweepBench(b, "detect", &scaleBench.detect)
}

// runScaleSweepBench drives one sub-benchmark per swept scale, each
// iteration measuring one fresh-subprocess cell, and persists the doc.
func runScaleSweepBench(b *testing.B, mode string, cells *[]benchfmt.ScaleCell) {
	for _, sw := range scaleBenchSweep {
		b.Run(fmt.Sprintf("scale=%d", sw.scale), func(b *testing.B) {
			fx := scaleDataset(b, sw.scale, sw.days)
			var cell benchfmt.ScaleCell
			for i := 0; i < b.N; i++ {
				res := runScaleCell(b, fx, mode)
				if !res.ParityOK {
					b.Fatalf("scale 1:%d (%s): streaming result diverged from in-memory result", sw.scale, mode)
				}
				cell = benchfmt.ScaleCell{
					Scale: sw.scale, Days: sw.days,
					Partitions: fx.parts, Rows: fx.rows, FileBytes: fx.fileBytes,
					Stream: res.Stream, Full: res.Full, ParityOK: true,
				}
				if cell.Stream.BuildSeconds > 0 {
					cell.Stream.PartitionsPerSec = float64(cell.Partitions) / cell.Stream.BuildSeconds
				}
				if cell.Full.BuildSeconds > 0 {
					cell.Full.PartitionsPerSec = float64(cell.Partitions) / cell.Full.BuildSeconds
				}
				cell.FillRatios()
			}
			b.ReportMetric(cell.MemRatio, "mem_ratio")
			b.ReportMetric(cell.ThroughputRatio, "throughput_ratio")
			upsertScaleCell(cells, cell)
		})
	}
	writeScaleBench(b)
}

// upsertScaleCell keeps one cell per scale (the harness reruns closures
// while calibrating b.N; the final run wins).
func upsertScaleCell(cells *[]benchfmt.ScaleCell, cell benchfmt.ScaleCell) {
	for i := range *cells {
		if (*cells)[i].Scale == cell.Scale {
			(*cells)[i] = cell
			return
		}
	}
	*cells = append(*cells, cell)
}

// sameIndexViewBench deep-compares the two indexes' served views (the
// same structural check cmd/dpsbench's sweep applies).
func sameIndexViewBench(a, b *api.Index) bool {
	if !slices.Equal(a.Days(), b.Days()) {
		return false
	}
	for _, d := range a.Days() {
		ai, aok := a.Day(d)
		bi, bok := b.Day(d)
		if aok != bok || !reflect.DeepEqual(ai, bi) {
			return false
		}
	}
	ad, bd := a.Domains(), b.Domains()
	if !slices.Equal(ad, bd) {
		return false
	}
	stride := 1
	if len(ad) > 2000 {
		stride = len(ad) / 2000
	}
	for i := 0; i < len(ad); i += stride {
		ah, aok := a.Domain(ad[i])
		bh, bok := b.Domain(ad[i])
		if aok != bok || !reflect.DeepEqual(ah, bh) {
			return false
		}
	}
	return true
}

// sameDetections compares two detection passes through the public
// counting surface: per-partition measured/row counts, per-provider
// distinct-domain counts, and the any-provider union.
func sameDetections(refs *core.References, want, got []*core.DayDetections) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		a, b := want[i], got[i]
		if (a == nil) != (b == nil) {
			return false
		}
		if a == nil {
			continue
		}
		if a.Source != b.Source || a.Day != b.Day ||
			a.DomainsMeasured != b.DomainsMeasured || a.Rows != b.Rows ||
			a.CountAny() != b.CountAny() {
			return false
		}
		for p := 0; p < refs.NumProviders(); p++ {
			if a.Count(p) != b.Count(p) {
				return false
			}
		}
	}
	return true
}

// writeScaleBench persists both sweeps; whichever benchmark runs last
// writes the file with everything collected so far.
func writeScaleBench(b *testing.B) {
	b.Helper()
	if len(scaleBench.cells) == 0 && len(scaleBench.detect) == 0 {
		return
	}
	doc := &benchfmt.ScaleDoc{
		Bench:     "scale",
		Schema:    benchfmt.ScaleSchema,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Source:    "go test -bench",
		Cells:     scaleBench.cells,
		Detect:    scaleBench.detect,
	}
	if err := doc.Write("results/BENCH_scale.json"); err != nil {
		b.Logf("BENCH_scale.json not written: %v", err)
		return
	}
	if n := len(doc.Cells); n > 0 {
		last := doc.Cells[n-1]
		b.Logf("wrote results/BENCH_scale.json (largest scale 1:%d: mem ratio %.3f, throughput ratio %.2f, parity %v)",
			last.Scale, last.MemRatio, last.ThroughputRatio, last.ParityOK)
	}
}
