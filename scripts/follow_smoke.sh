#!/bin/sh
# End-to-end smoke test of the live follower tier: start dpsapi with
# -follow on a not-yet-existing coordination directory (empty boot
# index), run dpscoord committing partitions into it while continuously
# probing the API, and assert (a) every probe during catch-up succeeded
# — the server never stops answering while days land — (b) the served
# index converges on every committed partition (freshness lag 0, last
# day queryable), (c) dpsdata -ledger agrees and every spool verifies,
# and (d) the server still drains cleanly on SIGTERM with an OK SLO
# scorecard. Mirrors the CI `follow-smoke` job; run locally with
# `make follow-smoke`.
set -eu
cd "$(dirname "$0")/.."

PORT="${DPSFOLLOW_PORT:-18083}"
SCALE="${FOLLOW_SMOKE_SCALE:-200000}"
DAYS="${FOLLOW_SMOKE_DAYS:-3}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/dpscoord" ./cmd/dpscoord
go build -o "$WORK/dpsapi" ./cmd/dpsapi
go build -o "$WORK/dpsdata" ./cmd/dpsdata

COORD_DIR="$WORK/coordrun"
BASE="http://127.0.0.1:$PORT"

echo "== start dpsapi -follow on :$PORT (feed directory does not exist yet)"
"$WORK/dpsapi" -follow "$COORD_DIR" -addr "127.0.0.1:$PORT" -poll 100ms -quiet &
SRV_PID=$!

i=0
until curl -sf "$BASE/v1/stats" >"$WORK/stats0.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "follow_smoke: server never became ready" >&2
        exit 1
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "follow_smoke: server died" >&2; exit 1; }
    sleep 0.2
done

# Empty boot: zero days served, but the freshness block is already there.
grep -q '"days_indexed":0' "$WORK/stats0.json" ||
    { echo "follow_smoke: empty boot should serve zero days" >&2; cat "$WORK/stats0.json" >&2; exit 1; }
grep -q '"freshness"' "$WORK/stats0.json" ||
    { echo "follow_smoke: stats missing freshness while following" >&2; exit 1; }
echo "-- empty boot OK: $(cat "$WORK/stats0.json" | head -c 200)..."

echo "== commit $DAYS days through dpscoord while probing the live API"
"$WORK/dpscoord" -scale "$SCALE" -days "$DAYS" -workers 3 \
    -dir "$COORD_DIR" -quiet >"$WORK/coord.out" 2>&1 &
COORD_PID=$!

# Availability under catch-up: every probe must answer 200 — the index
# swap is atomic, so there is no instant at which /v1/stats can fail.
PROBES=0
FAILED=0
while kill -0 "$COORD_PID" 2>/dev/null; do
    PROBES=$((PROBES + 1))
    curl -sf "$BASE/v1/stats" >/dev/null 2>&1 || FAILED=$((FAILED + 1))
    sleep 0.1
done
wait "$COORD_PID" || { echo "follow_smoke: dpscoord failed" >&2; cat "$WORK/coord.out" >&2; exit 1; }
echo "-- $PROBES probes during catch-up, $FAILED failed"
[ "$PROBES" -ge 1 ] || { echo "follow_smoke: no probes ran during catch-up" >&2; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "follow_smoke: $FAILED/$PROBES probes failed during catch-up" >&2; exit 1; }

echo "== wait for convergence (lag 0, every committed day indexed)"
i=0
until curl -sf "$BASE/v1/stats" 2>/dev/null | tee "$WORK/stats.json" |
    grep -q "\"days_indexed\":$DAYS"; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "follow_smoke: index never reached $DAYS days" >&2
        cat "$WORK/stats.json" >&2
        exit 1
    fi
    sleep 0.2
done
grep -q '"lag_partitions":0' "$WORK/stats.json" ||
    { echo "follow_smoke: converged stats still report lag" >&2; cat "$WORK/stats.json" >&2; exit 1; }
grep -q '"skipped_partitions":0' "$WORK/stats.json" ||
    { echo "follow_smoke: clean run skipped partitions" >&2; cat "$WORK/stats.json" >&2; exit 1; }
grep -q '"mode":"coord"' "$WORK/stats.json" ||
    { echo "follow_smoke: freshness mode is not coord" >&2; exit 1; }

# The newest committed day answers, and a detected domain's history is
# servable from the followed index.
LAST_DAY="$(sed -n 's/.*"last_day":"\([^"]*\)".*/\1/p' "$WORK/stats.json")"
DOMAIN="$(sed -n 's/.*"example_domain":"\([^"]*\)".*/\1/p' "$WORK/stats.json")"
[ -n "$LAST_DAY" ] || { echo "follow_smoke: no last_day in stats" >&2; exit 1; }
[ -n "$DOMAIN" ] || { echo "follow_smoke: no example_domain in stats (no detections?)" >&2; exit 1; }
echo "-- converged: last_day=$LAST_DAY domain=$DOMAIN"
curl -sf "$BASE/v1/day/$LAST_DAY" >"$WORK/day.json"
grep -q '"domains_measured"' "$WORK/day.json" || { echo "follow_smoke: bad day body" >&2; exit 1; }
curl -sf "$BASE/v1/domain/$DOMAIN" >"$WORK/domain.json"
grep -q '"providers"' "$WORK/domain.json" || { echo "follow_smoke: bad domain body" >&2; exit 1; }

echo "== follower metrics"
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
APPLIED="$(sed -n 's/^follow_partitions_applied_total \([0-9.]*\)$/\1/p' "$WORK/metrics.txt")"
case "$APPLIED" in
'' | 0) echo "follow_smoke: follow_partitions_applied_total = '$APPLIED', want >= 1" >&2; exit 1 ;;
esac
echo "-- follow_partitions_applied_total = $APPLIED"

echo "== dpsdata -ledger agrees with the served state"
"$WORK/dpsdata" -ledger "$COORD_DIR" >"$WORK/ledger.txt" ||
    { echo "follow_smoke: dpsdata -ledger failed" >&2; cat "$WORK/ledger.txt" >&2; exit 1; }
cat "$WORK/ledger.txt"
COMMITTED="$(sed -n 's/^[0-9]* partitions: \([0-9]*\) committed.*/\1/p' "$WORK/ledger.txt")"
[ -n "$COMMITTED" ] && [ "$COMMITTED" -ge "$DAYS" ] ||
    { echo "follow_smoke: ledger shows '$COMMITTED' committed partitions, want >= $DAYS" >&2; exit 1; }
grep -q "($COMMITTED spools intact)" "$WORK/ledger.txt" ||
    { echo "follow_smoke: not every committed spool verified" >&2; exit 1; }
[ "$COMMITTED" = "$APPLIED" ] ||
    { echo "follow_smoke: ledger committed=$COMMITTED but follower applied=$APPLIED" >&2; exit 1; }

echo "== SLO scorecard"
curl -sf "$BASE/debug/slo" >"$WORK/slo.json"
grep -q '"objectives"' "$WORK/slo.json" || { echo "follow_smoke: /debug/slo missing objectives" >&2; exit 1; }
if grep -q '"status": "breach"' "$WORK/slo.json"; then
    echo "follow_smoke: SLO breach during follow smoke" >&2
    cat "$WORK/slo.json" >&2
    exit 1
fi

# When SMOKE_ARTIFACTS names a directory (CI does), keep the converged
# stats, ledger, and scorecard so the run is inspectable after the fact.
if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    cp "$WORK/stats.json" "$SMOKE_ARTIFACTS/follow-stats.json"
    cp "$WORK/ledger.txt" "$SMOKE_ARTIFACTS/follow-ledger.txt"
    cp "$WORK/slo.json" "$SMOKE_ARTIFACTS/follow-slo.json"
    echo "-- artifacts saved to $SMOKE_ARTIFACTS/"
fi

echo "== graceful drain on SIGTERM"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "follow_smoke: server did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.2
done
STATUS=0
wait "$SRV_PID" || STATUS=$?
SRV_PID=""
[ "$STATUS" -eq 0 ] || { echo "follow_smoke: server exit status $STATUS after drain" >&2; exit 1; }

echo "follow_smoke: OK"
