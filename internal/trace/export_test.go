package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// nopCloser adapts a bytes.Buffer to io.WriteCloser for the Chrome exporter.
type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// buildTrace runs one three-level trace through a tracer wired to the
// given exporters and returns the root's trace ID.
func buildTrace(t *testing.T, exps ...Exporter) TraceID {
	t.Helper()
	tr := New(Config{Sample: 1, Exporters: exps})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day", Str("day", "100"))
	ctx2, stage := StartSpan(ctx, "measure.stage2", Str("source", "com"))
	_, leaf := StartSpan(ctx2, "transport.send", Int("attempt", 1))
	time.Sleep(time.Millisecond)
	leaf.End()
	stage.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return root.TraceID()
}

func TestJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	id := buildTrace(t, NewJSONL(&buf))

	var lines []jsonlSpan
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var sp jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %q not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, sp)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	byName := map[string]jsonlSpan{}
	for _, l := range lines {
		if l.Trace != id.String() {
			t.Errorf("span %s trace %q, want %q", l.Name, l.Trace, id)
		}
		byName[l.Name] = l
	}
	if byName["experiment.day"].Parent != "" {
		t.Error("root span has a parent in JSONL")
	}
	if byName["measure.stage2"].Parent != byName["experiment.day"].Span {
		t.Error("stage parent does not link to root span id")
	}
	if byName["transport.send"].Parent != byName["measure.stage2"].Span {
		t.Error("leaf parent does not link to stage span id")
	}
	if byName["transport.send"].DurUS < 900 {
		t.Errorf("leaf duration %.0fµs, slept 1ms", byName["transport.send"].DurUS)
	}
}

func TestChromeExport(t *testing.T) {
	var buf bytes.Buffer
	id := buildTrace(t, NewChrome(nopCloser{&buf}))

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome output not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Args["trace"] != id.String() {
			t.Errorf("event %s trace arg = %q, want %q", ev.Name, ev.Args["trace"], id)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %s has negative ts/dur", ev.Name)
		}
	}
	for _, want := range []string{"experiment.day", "measure.stage2", "transport.send"} {
		if !names[want] {
			t.Errorf("missing event %s", want)
		}
	}
	// All three nest, so they share one synthetic thread.
	for _, ev := range doc.TraceEvents {
		if ev.TID != doc.TraceEvents[0].TID {
			t.Errorf("nested spans split across tids: %+v", doc.TraceEvents)
		}
	}
}

func TestChromeLaneAssignment(t *testing.T) {
	c := &Chrome{}
	t0 := time.Unix(0, 0)
	// A parent covering [0,100), a child inside it, then an overlapping
	// span that neither nests nor is disjoint — it must move to lane 1.
	if got := c.assignLane(t0, t0.Add(100*time.Millisecond)); got != 0 {
		t.Fatalf("parent lane = %d", got)
	}
	if got := c.assignLane(t0.Add(10*time.Millisecond), t0.Add(40*time.Millisecond)); got != 0 {
		t.Fatalf("nested child lane = %d, want 0", got)
	}
	if got := c.assignLane(t0.Add(50*time.Millisecond), t0.Add(150*time.Millisecond)); got != 1 {
		t.Fatalf("overlapping span lane = %d, want 1", got)
	}
	// A span after everything closed reuses lane 0.
	if got := c.assignLane(t0.Add(200*time.Millisecond), t0.Add(210*time.Millisecond)); got != 0 {
		t.Fatalf("disjoint span lane = %d, want 0", got)
	}
}

func TestHandler(t *testing.T) {
	tr := New(Config{Sample: 1})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day", Str("day", "7"))
	_, child := StartSpan(ctx, "measure.stage2")
	child.End()
	root.End()
	h := Handler(tr)

	// List view.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(list) != 1 || list[0]["root"] != "experiment.day" || list[0]["spans"] != float64(2) {
		t.Fatalf("list = %+v", list)
	}

	// Detail view.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+root.TraceID().String(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "measure.stage2") {
		t.Errorf("detail view missing child span: %s", rec.Body)
	}

	// Errors.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=zzz", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=00000000000000ff", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil tracer status %d", rec.Code)
	}
}
