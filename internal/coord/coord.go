// Package coord is the fault-tolerant measurement coordination plane.
// The paper's crawl ran for 1.5 years across many vantage machines; any
// of them could crash, stall, or double-report a day. This package
// reproduces that operational layer in miniature: a coordinator owns a
// durable work ledger of (source, day) partitions and leases them to N
// workers, each running the measure→save path for one partition at a
// time. Leases carry fencing tokens and expire when heartbeats stop, so
// an abandoned partition is re-leased to another worker; commits are
// idempotent and journaled with fsync before they are acknowledged, so
// every partition lands in the final dataset exactly once even when a
// worker crashes after saving its spool but before acking, when a
// stalled worker's stale commit races a re-lease, when a commit ack is
// replayed, or when the coordinator itself dies and replays its journal.
//
// The work ledger is an append-only JSONL journal (journal.go). Worker
// output is spooled as one checksummed .dpsa file per partition;
// Assemble folds the committed spools into a single store, quarantining
// any spool torn at rest (store's CRC layer catches it) and reporting
// the damage so the day can be marked degraded rather than silently
// incomplete.
package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// Partition is the unit of leased work: one source's zone snapshot on
// one measurement day.
type Partition struct {
	Source string
	Day    simtime.Day
}

func (p Partition) String() string { return fmt.Sprintf("%s/%s", p.Source, p.Day) }

// WorkFunc measures one partition and returns its rows. attempt is
// 1-based; retried partitions see an increasing attempt number.
type WorkFunc func(ctx context.Context, p Partition, attempt int) (*store.Store, error)

// Config parameterises a coordinator.
type Config struct {
	// Dir is the coordination directory: journal.jsonl, spool/, and (on
	// damage) quarantine/ live under it. Required.
	Dir string
	// Workers is how many workers Run spawns (default 1).
	Workers int
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 1s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the worker heartbeat interval (default TTL/4).
	HeartbeatEvery time.Duration
	// MaxAttempts is how many leases a partition may consume before it
	// is failed permanently (default 6).
	MaxAttempts int
	// RetryBackoff is the base requeue delay after a worker error; it
	// doubles per attempt (default 25ms).
	RetryBackoff time.Duration
	// Work measures one partition. Required.
	Work WorkFunc
	// Faults injects coordination-plane chaos (nil: none).
	Faults *chaos.CoordFaults
	// Seed keys worker-side chaos decisions and is recorded for logs.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
}

// Sentinel errors of the commit protocol.
var (
	// ErrLeaseLost rejects an action whose lease was fenced off: the
	// holder stalled past the TTL and the partition was re-leased (or
	// already resolved). The stale worker must abandon the partition.
	ErrLeaseLost = errors.New("coord: lease lost (fenced)")
	// ErrRestart reports that the coordinator crashed (chaos-injected)
	// and must be rebuilt from its journal: construct a new Coordinator
	// over the same Dir and Run it again.
	ErrRestart = errors.New("coord: coordinator restart required")
	// ErrPartitionsFailed reports that some partitions exhausted
	// MaxAttempts; the ledger has the details.
	ErrPartitionsFailed = errors.New("coord: partitions failed permanently")
)

// Partition states in the ledger.
const (
	StatePending   = "pending"
	StateLeased    = "leased"
	StateCommitted = "committed"
	StateFailed    = "failed"
)

type partState struct {
	state        string
	leaseID      uint64
	expiry       time.Time
	expiredAt    time.Time // when the last lease expired (re-lease latency)
	attempts     int       // leases granted so far
	nextEligible time.Time // backoff gate for the next lease
	spool        string
	lastErr      string
}

// PartitionStatus is one ledger row, exported for -ledger-out dumps and
// exactly-once assertions in tests.
type PartitionStatus struct {
	Source   string `json:"source"`
	Day      string `json:"day"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Spool    string `json:"spool,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Stats summarises the ledger.
type Stats struct {
	Partitions int `json:"partitions"`
	Pending    int `json:"pending"`
	Leased     int `json:"leased"`
	Committed  int `json:"committed"`
	Failed     int `json:"failed"`
}

// DamagedPartition reports a committed spool found corrupt at assembly
// and moved into quarantine; its day must be marked degraded.
type DamagedPartition struct {
	Partition
	QuarantinePath string
	Err            string
}

// Coordinator owns the ledger and the lease state machine.
type Coordinator struct {
	cfg Config

	mu         sync.Mutex
	cond       *sync.Cond
	parts      map[Partition]*partState
	order      []Partition
	nextLease  uint64
	jr         *journal
	restarting bool
	runCtx     context.Context
}

// New builds a coordinator over cfg.Dir, creating the directory layout
// on first use and replaying the journal if one exists: committed and
// failed partitions keep their fate, leased partitions are requeued
// (their workers are gone). parts not yet in the journal are added.
func New(cfg Config, parts []Partition) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, errors.New("coord: Config.Dir required")
	}
	if cfg.Work == nil {
		return nil, errors.New("coord: Config.Work required")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "spool"), 0o755); err != nil {
		return nil, fmt.Errorf("coord: create spool dir: %w", err)
	}

	jr, recs, err := openJournal(filepath.Join(cfg.Dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:   cfg,
		parts: make(map[Partition]*partState),
		jr:    jr,
	}
	c.cond = sync.NewCond(&c.mu)

	if len(recs) > 0 {
		mJournalReplays.Inc()
	}
	for _, rec := range recs {
		mJournalRecords.Inc()
		p := Partition{Source: rec.Source, Day: simtime.Day(rec.Day)}
		st := c.parts[p]
		if st == nil {
			st = &partState{state: StatePending}
			c.parts[p] = st
			c.order = append(c.order, p)
		}
		switch rec.Type {
		case recAdd:
			// registration only
		case recLease:
			st.state = StateLeased
			st.leaseID = rec.Lease
			st.attempts = rec.Attempt
			if rec.Lease > c.nextLease {
				c.nextLease = rec.Lease
			}
		case recCommit:
			st.state = StateCommitted
			st.spool = rec.Spool
			st.lastErr = ""
		case recRequeue:
			st.state = StatePending
			st.leaseID = 0
		case recFail:
			st.state = StateFailed
			st.lastErr = rec.Err
		}
	}
	// A lease whose outcome never reached the journal belonged to a
	// worker that died with the previous coordinator: requeue it.
	for _, p := range c.order {
		st := c.parts[p]
		if st.state == StateLeased {
			st.state = StatePending
			st.leaseID = 0
			mReplayRequeues.Inc()
			if err := c.jr.append(record{Type: recRequeue, Source: p.Source, Day: int(p.Day)}, false); err != nil {
				return nil, err
			}
		}
	}
	// Register partitions the journal has not seen yet.
	for _, p := range parts {
		if c.parts[p] != nil {
			continue
		}
		c.parts[p] = &partState{state: StatePending}
		c.order = append(c.order, p)
		if err := c.jr.append(record{Type: recAdd, Source: p.Source, Day: int(p.Day)}, false); err != nil {
			return nil, err
		}
	}
	sort.Slice(c.order, func(i, j int) bool {
		a, b := c.order[i], c.order[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Day < b.Day
	})
	mPartitions.Set(float64(len(c.order)))
	return c, nil
}

// Close releases the journal handle. Run closes it on return; Close is
// for coordinators that were never run.
func (c *Coordinator) Close() error { return c.jr.close() }

// Run drives the partitions to completion with cfg.Workers workers.
// It returns nil when every partition is committed, ErrRestart when a
// chaos-injected coordinator crash requires a journal replay (rebuild
// with New over the same Dir and Run again), ctx.Err() on cancellation
// — committed-so-far state is journaled and durable in all cases — and
// ErrPartitionsFailed if any partition exhausted MaxAttempts.
func (c *Coordinator) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.runCtx = runCtx
	c.mu.Unlock()

	// The supervisor expires leases; a watcher unblocks acquire() on
	// cancellation.
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		c.supervise(runCtx)
	}()
	go func() {
		defer aux.Done()
		<-runCtx.Done()
		c.cond.Broadcast()
	}()

	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		mWorkers.Inc()
		go func(id int) {
			defer wg.Done()
			defer mWorkers.Dec()
			c.runWorker(runCtx, id)
		}(i)
	}
	wg.Wait()
	cancel()
	aux.Wait()
	c.jr.close()

	c.mu.Lock()
	restarting := c.restarting
	stats := c.statsLocked()
	c.mu.Unlock()
	switch {
	case restarting:
		mRestarts.Inc()
		return ErrRestart
	case ctx.Err() != nil:
		return ctx.Err()
	case stats.Failed > 0:
		return fmt.Errorf("%w: %d of %d", ErrPartitionsFailed, stats.Failed, stats.Partitions)
	default:
		return nil
	}
}

// supervise expires leases whose heartbeats stopped.
func (c *Coordinator) supervise(ctx context.Context) {
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			c.mu.Lock()
			woke := false
			for _, p := range c.order {
				st := c.parts[p]
				if st.state != StateLeased || now.Before(st.expiry) {
					continue
				}
				mLeaseExpiries.Inc()
				st.expiredAt = st.expiry
				c.requeueLocked(p, st, "lease expired (missed heartbeats)")
				woke = true
			}
			if woke {
				c.cond.Broadcast()
			} else {
				// Wake workers parked on a backoff gate that has elapsed.
				for _, p := range c.order {
					st := c.parts[p]
					if st.state == StatePending && !now.Before(st.nextEligible) {
						c.cond.Broadcast()
						break
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// requeueLocked moves a leased partition back to pending, or fails it
// permanently once MaxAttempts leases have been burned. Callers hold mu.
func (c *Coordinator) requeueLocked(p Partition, st *partState, cause string) {
	st.leaseID = 0
	st.lastErr = cause
	if st.attempts >= c.cfg.MaxAttempts {
		st.state = StateFailed
		mFailures.Inc()
		// Permanent fates are fsync'd like commits.
		_ = c.jr.append(record{Type: recFail, Source: p.Source, Day: int(p.Day), Attempt: st.attempts, Err: cause}, true)
		return
	}
	st.state = StatePending
	shift := uint(st.attempts - 1)
	if shift > 10 {
		shift = 10
	}
	st.nextEligible = time.Now().Add(c.cfg.RetryBackoff << shift)
	mRequeues.Inc()
	c.updatePendingLocked()
	_ = c.jr.append(record{Type: recRequeue, Source: p.Source, Day: int(p.Day), Attempt: st.attempts, Err: cause}, false)
}

// acquire blocks until a partition is available and leases it. ok is
// false when the run is over: context cancelled, restart triggered, or
// no partition can ever become available again.
func (c *Coordinator) acquire(ctx context.Context) (p Partition, leaseID uint64, attempt int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ctx.Err() != nil || c.restarting {
			return Partition{}, 0, 0, false
		}
		now := time.Now()
		live := false // any partition that could still need a worker
		for _, cand := range c.order {
			st := c.parts[cand]
			switch st.state {
			case StateCommitted, StateFailed:
				continue
			case StateLeased:
				live = true
				continue
			}
			live = true
			if now.Before(st.nextEligible) {
				continue
			}
			// Lease it.
			c.nextLease++
			st.state = StateLeased
			st.leaseID = c.nextLease
			st.attempts++
			st.expiry = now.Add(c.cfg.LeaseTTL)
			if !st.expiredAt.IsZero() {
				mReleaseLatency.Observe(now.Sub(st.expiredAt).Seconds())
				st.expiredAt = time.Time{}
			}
			mLeases.Inc()
			c.updatePendingLocked()
			_ = c.jr.append(record{Type: recLease, Source: cand.Source, Day: int(cand.Day), Lease: st.leaseID, Attempt: st.attempts}, false)
			return cand, st.leaseID, st.attempts, true
		}
		if !live {
			return Partition{}, 0, 0, false
		}
		c.cond.Wait()
	}
}

// Heartbeat extends a lease. ErrLeaseLost means the lease was fenced:
// the worker must abandon the partition immediately.
func (c *Coordinator) Heartbeat(p Partition, leaseID uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.restarting {
		return ErrRestart
	}
	st := c.parts[p]
	if st == nil || st.state != StateLeased || st.leaseID != leaseID {
		return ErrLeaseLost
	}
	st.expiry = time.Now().Add(c.cfg.LeaseTTL)
	return nil
}

// Commit durably records that a partition's spool file is complete.
// The journal record is fsync'd before Commit returns, so an ack the
// worker never sees (crash-after-save) cannot lose the commit. Commits
// are idempotent: re-committing a committed partition is a no-op, and a
// commit under a fenced lease is rejected with ErrLeaseLost.
func (c *Coordinator) Commit(p Partition, leaseID uint64, spool string) error {
	c.mu.Lock()
	st := c.parts[p]
	if st == nil {
		c.mu.Unlock()
		return fmt.Errorf("coord: commit of unknown partition %s", p)
	}
	if c.restarting {
		c.mu.Unlock()
		return ErrRestart
	}
	if st.state == StateCommitted {
		c.mu.Unlock()
		mDupCommits.Inc()
		return nil
	}
	if st.state != StateLeased || st.leaseID != leaseID {
		c.mu.Unlock()
		mFencedCommits.Inc()
		return ErrLeaseLost
	}
	if err := c.jr.append(record{Type: recCommit, Source: p.Source, Day: int(p.Day), Lease: leaseID, Attempt: st.attempts, Spool: spool}, true); err != nil {
		c.mu.Unlock()
		return err
	}
	st.state = StateCommitted
	st.spool = spool
	st.lastErr = ""
	mCommits.Inc()
	attempt := st.attempts
	c.updatePendingLocked()
	c.cond.Broadcast()
	c.mu.Unlock()

	// Chaos: the spool file is torn at rest after the commit — silent
	// storage corruption for the CRC layer to catch at assembly.
	if frac, torn := c.cfg.Faults.TornWrite(p.Source, int64(p.Day)); torn {
		tearFile(spool, frac)
	}
	// Chaos: the coordinator crashes right after this commit.
	if c.cfg.Faults.CoordRestart(p.Source, int64(p.Day), attempt-1) {
		c.triggerRestart()
	}
	return nil
}

// Release reports a worker-side failure for a leased partition, sending
// it back through requeue/backoff (or permanent failure). A fenced
// release is ignored: the partition already moved on.
func (c *Coordinator) Release(p Partition, leaseID uint64, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.parts[p]
	if st == nil || st.state != StateLeased || st.leaseID != leaseID {
		return
	}
	c.requeueLocked(p, st, cause.Error())
	c.cond.Broadcast()
}

// triggerRestart simulates a coordinator crash: all in-flight work is
// abandoned and Run returns ErrRestart. The journal is left exactly as
// a crash would leave it.
func (c *Coordinator) triggerRestart() {
	c.mu.Lock()
	c.restarting = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// tearFile truncates a file to frac of its length.
func tearFile(path string, frac float64) {
	fi, err := os.Stat(path)
	if err != nil {
		return
	}
	_ = os.Truncate(path, int64(float64(fi.Size())*frac))
}

func (c *Coordinator) updatePendingLocked() {
	n := 0
	for _, st := range c.parts {
		if st.state == StatePending {
			n++
		}
	}
	mPending.Set(float64(n))
}

// Ledger snapshots every partition's status, in (source, day) order.
func (c *Coordinator) Ledger() []PartitionStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PartitionStatus, 0, len(c.order))
	for _, p := range c.order {
		st := c.parts[p]
		out = append(out, PartitionStatus{
			Source:   p.Source,
			Day:      p.Day.String(),
			State:    st.state,
			Attempts: st.attempts,
			Spool:    st.spool,
			Err:      st.lastErr,
		})
	}
	return out
}

// Stats summarises the ledger.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

func (c *Coordinator) statsLocked() Stats {
	s := Stats{Partitions: len(c.order)}
	for _, st := range c.parts {
		switch st.state {
		case StatePending:
			s.Pending++
		case StateLeased:
			s.Leased++
		case StateCommitted:
			s.Committed++
		case StateFailed:
			s.Failed++
		}
	}
	return s
}

// SpoolPath is the spool file for a partition: one checksummed .dpsa
// per (source, day), attempt-independent so crash recovery can find an
// intact spool left by a dead worker.
func (c *Coordinator) SpoolPath(p Partition) string {
	return filepath.Join(c.cfg.Dir, "spool", fmt.Sprintf("%s.%s.dpsa", p.Source, p.Day))
}

// Assemble folds every committed spool into one store. Spools that fail
// CRC verification (torn at rest) are moved into quarantine/ and
// reported as damaged — their days must be marked degraded — rather
// than aborting the assembly.
func (c *Coordinator) Assemble() (*store.Store, []DamagedPartition, error) {
	c.mu.Lock()
	type item struct {
		p     Partition
		spool string
	}
	var items []item
	for _, p := range c.order {
		if st := c.parts[p]; st.state == StateCommitted {
			items = append(items, item{p, st.spool})
		}
	}
	c.mu.Unlock()

	out := store.New()
	var damaged []DamagedPartition
	for _, it := range items {
		if err := store.Verify(it.spool); err != nil {
			qpath, qerr := store.QuarantineFile(it.spool, err)
			if qerr != nil {
				return nil, nil, fmt.Errorf("coord: quarantine %s: %w", it.p, qerr)
			}
			damaged = append(damaged, DamagedPartition{Partition: it.p, QuarantinePath: qpath, Err: err.Error()})
			continue
		}
		part, err := store.Load(it.spool)
		if err != nil {
			return nil, nil, fmt.Errorf("coord: load verified spool %s: %w", it.p, err)
		}
		out.Absorb(part)
	}
	return out, damaged, nil
}
