package analysis

import (
	"math/rand"
	"net/netip"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/store"
)

// Ablation: median smoothing window width — narrow windows leak
// multi-day anomalies into the growth trend, wide windows lag genuine
// inflections (DESIGN.md §5). The benchmark reports leaked anomaly mass
// per window alongside runtime.

func anomalySeries() []float64 {
	r := rand.New(rand.NewSource(3))
	vals := make([]float64, 550)
	for i := range vals {
		vals[i] = 4000 + float64(i)*1.7 + r.Float64()*40 // trend + noise
		if i >= 100 && i < 105 {
			vals[i] += 1100 // 5-day anomaly
		}
		if i >= 300 && i < 312 {
			vals[i] += 1700 // 12-day anomaly
		}
	}
	return vals
}

// leakedMass sums the smoothed series' excursion above the clean trend.
func leakedMass(smoothed []float64) float64 {
	total := 0.0
	for i, v := range smoothed {
		trend := 4000 + float64(i)*1.7 + 20
		if d := v - trend; d > 60 {
			total += d
		}
	}
	return total
}

func benchWindow(b *testing.B, window int) {
	vals := anomalySeries()
	b.ReportAllocs()
	b.ResetTimer()
	var out []float64
	for i := 0; i < b.N; i++ {
		out = MedianWindow(Despike(vals, DefaultDespikeWindow, DefaultDespikeFraction), window)
	}
	b.ReportMetric(leakedMass(out), "leaked-mass")
}

func BenchmarkAblationSmoothingWindow7(b *testing.B)  { benchWindow(b, 7) }
func BenchmarkAblationSmoothingWindow21(b *testing.B) { benchWindow(b, 21) }
func BenchmarkAblationSmoothingWindow49(b *testing.B) { benchWindow(b, 49) }

// BenchmarkAblationSmoothingNoDespike shows what the narrow median alone
// leaves behind: the 12-day anomaly survives a 21-day window.
func BenchmarkAblationSmoothingNoDespike(b *testing.B) {
	vals := anomalySeries()
	b.ReportAllocs()
	var out []float64
	for i := 0; i < b.N; i++ {
		out = MedianWindow(vals, 21)
	}
	b.ReportMetric(leakedMass(out), "leaked-mass")
}

func TestDespikeBeatsPlainMedian(t *testing.T) {
	vals := anomalySeries()
	plain := leakedMass(MedianWindow(vals, 21))
	cleaned := leakedMass(Smooth(vals))
	if cleaned >= plain/4 {
		t.Errorf("despike ineffective: leaked %f vs plain %f", cleaned, plain)
	}
}

func BenchmarkAggregatorAddDay(b *testing.B) {
	refs := mustRefs(b)
	s := bigSynthStore(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAggregator(refs, s, []string{"com"})
		if err := a.AddDay("com", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func mustRefs(tb testing.TB) *core.References {
	refs, err := core.NewReferences([]core.ProviderRefs{{
		Name: "CloudFlare", ASNs: []uint32{13335},
		CNAMESLDs: []string{"cloudflare.net"}, NSSLDs: []string{"cloudflare.com"},
	}})
	if err != nil {
		tb.Fatal(err)
	}
	return refs
}

// bigSynthStore builds one day with n domains, 20% protected.
func bigSynthStore(n int) *store.Store {
	s := store.New()
	w := s.NewWriter("com", 1)
	cf := netip.MustParseAddr("104.16.0.1")
	bg := netip.MustParseAddr("100.64.0.1")
	for i := 0; i < n; i++ {
		name := domName(i)
		if i%5 == 0 {
			w.AddAddr(name, store.KindApexA, cf, []uint32{13335})
			w.AddStr(name, store.KindNS, "kate.ns.cloudflare.com")
		} else {
			w.AddAddr(name, store.KindApexA, bg, []uint32{64601})
			w.AddStr(name, store.KindNS, "ns1.hostco1.net")
		}
	}
	w.Commit()
	return s
}
