package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers a counter and a gauge from many
// goroutines; run under -race this also proves the wait-free paths.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test_level", "t")
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(0.5)
				g.Add(-0.25)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	want := float64(workers*per) * 0.25
	if got := g.Value(); math.Abs(got-want) > 1e-6 {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	c.Add(-5) // negative deltas must not move a counter
	if got := c.Value(); got != workers*per {
		t.Errorf("counter after negative Add = %d, want %d", got, workers*per)
	}
}

// TestHistogramConcurrent checks total counts and sums survive concurrent
// observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.5, 0.75, 1})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers) * per * 0.495 // mean of {0,.01,...,.99}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-3 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	var bucketTotal uint64
	for _, c := range h.BucketCounts() {
		bucketTotal += c
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket total %d != count %d", bucketTotal, h.Count())
	}
}

// TestQuantileAccuracy bounds the estimation error: with uniform
// observations the interpolated quantile must land within one bucket
// width of the true value.
func TestQuantileAccuracy(t *testing.T) {
	bounds := make([]float64, 20) // 0.05, 0.10, ... 1.00
	for i := range bounds {
		bounds[i] = float64(i+1) * 0.05
	}
	h := NewHistogram(bounds)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(float64(i) / n) // uniform on [0,1)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}, {0.1, 0.1},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("Quantile(%v) = %v, want %v ± 0.05", tc.q, got, tc.want)
		}
	}
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Observations beyond the last bound saturate at it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "ignored")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	if _, ok := r.Lookup("x_total"); !ok {
		t.Error("Lookup missed registered metric")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rcode_total", "per rcode", "rcode")
	v.With("NOERROR").Add(3)
	v.With("NXDOMAIN").Inc()
	if got := v.With("NOERROR").Value(); got != 3 {
		t.Errorf("NOERROR = %d", got)
	}
	hv := r.HistogramVec("stage_seconds", "per stage", "stage", []float64{1, 2})
	hv.With("resolution").Observe(0.5)
	if got := hv.With("resolution").Count(); got != 1 {
		t.Errorf("stage count = %d", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rcode_total{rcode="NOERROR"} 3`,
		`rcode_total{rcode="NXDOMAIN"} 1`,
		`stage_seconds_bucket{stage="resolution",le="1"} 1`,
		`stage_seconds_count{stage="resolution"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total", "").Add(42)
	r.Gauge("inflight", "").Set(7)
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	r.CounterVec("byrcode_total", "", "rcode").With("NOERROR").Inc()
	snap := r.Snapshot()
	if snap.Counter("q_total") != 42 {
		t.Errorf("snapshot counter = %d", snap.Counter("q_total"))
	}
	if snap.Gauges["inflight"] != 7 {
		t.Errorf("snapshot gauge = %v", snap.Gauges["inflight"])
	}
	if hs := snap.Histogram("lat_seconds"); hs.Count != 2 || hs.Sum != 0.55 {
		t.Errorf("snapshot histogram = %+v", hs)
	}
	if snap.Counter(`byrcode_total{rcode="NOERROR"}`) != 1 {
		t.Errorf("vec child missing from snapshot: %v", snap.Counters)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counter("q_total") != 42 {
		t.Error("JSON round-trip lost counter value")
	}
}

func TestLoggerQuiet(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, true)
	l.Info("visible", "k", 1)
	SetQuiet()
	defer SetLevel(slog.LevelInfo)
	l.Info("suppressed")
	l.Warn("warned")
	out := buf.String()
	if !strings.Contains(out, "visible") || !strings.Contains(out, "warned") {
		t.Errorf("expected visible+warned in %q", out)
	}
	if strings.Contains(out, "suppressed") {
		t.Errorf("quiet mode leaked info line: %q", out)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(out, "\n", 2)[0]), &obj); err != nil {
		t.Errorf("JSON handler emitted non-JSON line: %v", err)
	}
}
