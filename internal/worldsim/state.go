package worldsim

import (
	"fmt"
	"net/netip"

	"dpsadopt/internal/bgp"
	"dpsadopt/internal/ipam"
	"dpsadopt/internal/simtime"
)

// DomainState is the measurement-visible DNS configuration of one domain
// on one day: exactly the records the paper's pipeline queries (apex and
// www; A, AAAA, CNAME, NS).
type DomainState struct {
	// Exists is false when the domain is not registered on this day (it
	// does not appear in the zone file).
	Exists bool
	// Unmeasurable marks a DNS outage at the domain's operator: queries
	// time out and no data point is recorded (the Sedo 2015-11-22 case).
	Unmeasurable bool
	// NSHosts are the authoritative name server host names.
	NSHosts []string
	// ApexA are the A records at the domain apex.
	ApexA []netip.Addr
	// WWWCNAME is the CNAME target of the www label ("" when www has
	// address records instead).
	WWWCNAME string
	// WWWA are the A records behind www: either direct, or the expansion
	// of WWWCNAME (which the measuring resolver observes and stores).
	WWWA []netip.Addr
	// ApexAAAA and WWWAAAA carry the IPv6 records of dual-stacked
	// domains (about one in five; operator cohorts and BGP/NS-only
	// customers stay IPv4-only, as their address space is v4).
	ApexAAAA []netip.Addr
	WWWAAAA  []netip.Addr
}

// diversion describes what (if anything) redirects a domain's traffic on
// a given day.
type diversion struct {
	provider int
	profile  Profile
	// providerIPs: addresses come from the provider cloud (DNS-level
	// diversion); otherwise addresses stay in operator/customer space.
	providerIPs bool
}

// StateFor computes the DNS state of domain d on the given day.
func (w *World) StateFor(d *Domain, day simtime.Day) DomainState {
	if !d.Life.Contains(day) {
		return DomainState{}
	}
	st := DomainState{Exists: true}

	var op *operatorInfra
	if d.Operator >= 0 {
		op = w.Operators[d.Operator]
		for _, outage := range op.Spec.DNSOutages {
			if outage == day {
				st.Unmeasurable = true
				return st
			}
		}
	}

	div, delegatedNSOnly := w.diversionFor(d, day)

	// Name servers.
	switch {
	case div != nil && div.profile == ProfileNSProxied, delegatedNSOnly != nil:
		pi := w.Providers[w.nsProviderIndex(d, div, delegatedNSOnly)]
		st.NSHosts = pickTwo(pi.NSHosts, d.hostSlot)
	case op != nil && op.Spec.NSSLD != "":
		st.NSHosts = op.NSHosts
	default:
		st.NSHosts = w.Hosters[d.Hoster].NSHosts
	}

	// Addresses.
	baseA := w.baselineAddr(d, op)
	dual := w.dualStacked(d)
	switch {
	case div == nil:
		st.ApexA = []netip.Addr{baseA}
		if op != nil && op.Spec.BaselineCNAMESLD != "" {
			st.WWWCNAME = cnameTarget(d, op.Spec.BaselineCNAMESLD)
			st.WWWA = []netip.Addr{baseA}
		} else {
			st.WWWA = []netip.Addr{baseA}
		}
		if dual {
			a6 := w.baselineAddr6(d)
			st.ApexAAAA = []netip.Addr{a6}
			st.WWWAAAA = []netip.Addr{a6}
		}
	case div.profile == ProfileBGP:
		// Records unchanged; the covering prefix's origin flips (handled
		// by RIBForDay).
		st.ApexA = []netip.Addr{baseA}
		st.WWWA = []netip.Addr{baseA}
		if op != nil && op.Spec.BaselineCNAMESLD != "" {
			st.WWWCNAME = cnameTarget(d, op.Spec.BaselineCNAMESLD)
		}
	case div.profile == ProfileNSOnly:
		// Delegated to the DPS, addresses stay on own hosting.
		st.ApexA = []netip.Addr{baseA}
		st.WWWA = []netip.Addr{baseA}
	default:
		addr := w.divertedAddr(d, div, op)
		st.ApexA = []netip.Addr{addr}
		if div.profile == ProfileCNAME {
			spec := w.Providers[div.provider].Spec
			sld := spec.CNAMESLDs[d.hostSlot%len(spec.CNAMESLDs)]
			st.WWWCNAME = cnameTarget(d, sld)
		}
		st.WWWA = []netip.Addr{addr}
		if dual && div.providerIPs {
			c := d.Cust
			var a6 netip.Addr
			if c != nil {
				a6 = w.Providers[div.provider].CloudAddr6(c.seq, c.cloudSlot)
			} else {
				a6 = w.Providers[div.provider].CloudAddr6(0, 2048+d.OpIdx)
			}
			st.ApexAAAA = []netip.Addr{a6}
			st.WWWAAAA = []netip.Addr{a6}
		}
	}
	return st
}

// dualStacked reports whether the domain publishes AAAA records: a
// deterministic one-in-five share of hoster-hosted domains whose
// addresses live in dual-stacked space (operator cohorts and customer
// /24s are v4-only).
func (w *World) dualStacked(d *Domain) bool {
	if d.hostSlot%5 != 0 || d.Operator >= 0 {
		return false
	}
	if c := d.Cust; c != nil && (c.Profile == ProfileBGP || c.Profile == ProfileNSOnly) {
		return false
	}
	return true
}

// baselineAddr6 is the dual-stacked domain's normal IPv6 address, in its
// hoster's v6 space.
func (w *World) baselineAddr6(d *Domain) netip.Addr {
	a, err := ipam.Nth6Addr(w.Hosters[d.Hoster].Prefix6, uint64(1<<12+d.hostSlot))
	if err != nil {
		panic(err)
	}
	return a
}

// nsProviderIndex picks the provider whose name servers host the domain.
func (w *World) nsProviderIndex(d *Domain, div, nsOnly *diversion) int {
	if div != nil && div.profile == ProfileNSProxied {
		return div.provider
	}
	return nsOnly.provider
}

// diversionFor returns the active traffic diversion (nil when none) and,
// separately, an NS-only delegation that persists regardless of diversion
// (Verisign Managed DNS keeps the delegation even on quiet days).
func (w *World) diversionFor(d *Domain, day simtime.Day) (*diversion, *diversion) {
	// Direct customer first: direct subscriptions are not combined with
	// operator cohort behaviour (customers were drawn from non-operator
	// domains).
	if c := d.Cust; c != nil {
		if c.Profile == ProfileNSOnly {
			if c.Sub.Contains(day) {
				return nil, &diversion{provider: c.Provider, profile: ProfileNSOnly}
			}
			return nil, nil
		}
		if c.ActiveOn(day) {
			return &diversion{provider: c.Provider, profile: c.Profile, providerIPs: true}, nil
		}
		return nil, nil
	}
	if d.Operator < 0 {
		return nil, nil
	}
	op := w.Operators[d.Operator]
	spec := op.Spec
	// Scripted cohort episodes override the standing relationship.
	for i := range spec.Episodes {
		ep := &spec.Episodes[i]
		if !ep.Window.Contains(day) || d.OpIdx >= w.Cfg.scaled(ep.CohortSize) {
			continue
		}
		if ep.Provider < 0 {
			return nil, nil // relationship terminated (Fabulous)
		}
		return &diversion{provider: ep.Provider, profile: ep.Profile, providerIPs: episodeUsesProviderIPs(d.Operator, i)}, nil
	}
	if spec.AlwaysProvider >= 0 && d.OpIdx < w.alwaysCohortSize(op) {
		return &diversion{provider: spec.AlwaysProvider, profile: spec.AlwaysProfile, providerIPs: spec.AlwaysProfile != ProfileBGP}, nil
	}
	return nil, nil
}

// alwaysCohortSize returns the scaled number of cohort domains in the
// operator's standing provider relationship.
func (w *World) alwaysCohortSize(op *operatorInfra) int {
	n := op.Spec.AlwaysCohort
	if n == 0 {
		n = op.Spec.Domains
	}
	s := w.Cfg.scaled(n)
	if s > op.cohort {
		s = op.cohort
	}
	return s
}

// episodeUsesProviderIPs: Wix-style episodes answer addresses in operator-
// owned space that the provider announces; Namecheap/SiteMatrix-style
// episodes answer provider-owned addresses.
func episodeUsesProviderIPs(opIdx, epIdx int) bool {
	switch opIdx {
	case OpWix, OpWixF5:
		return false
	default:
		return true
	}
}

// baselineAddr is the domain's normal address.
func (w *World) baselineAddr(d *Domain, op *operatorInfra) netip.Addr {
	if c := d.Cust; c != nil && c.Profile == ProfileBGP && c.bgpPrefix.IsValid() {
		return mustNth(c.bgpPrefix, uint64(d.hostSlot)%ipam.HostCount(c.bgpPrefix))
	}
	if op != nil {
		if op.Spec.BaselineAS != nil {
			return mustNth(op.BaselineBlock, uint64(d.OpIdx)%ipam.HostCount(op.BaselineBlock))
		}
		// Operator cohort addresses live in the divert block so BGP
		// episodes cover exactly the cohort prefix range.
		return mustNth(op.DivertBlock, uint64(d.OpIdx)%ipam.HostCount(op.DivertBlock))
	}
	return mustNth(w.Hosters[d.Hoster].Prefix, uint64(1<<10+d.hostSlot))
}

// divertedAddr is the address answered while a DNS-level diversion is
// active.
func (w *World) divertedAddr(d *Domain, div *diversion, op *operatorInfra) netip.Addr {
	if div.providerIPs || op == nil {
		p := w.Providers[div.provider]
		if c := d.Cust; c != nil {
			return p.CloudAddr(c.seq, c.cloudSlot)
		}
		// Operator cohorts land in the provider's primary cloud (the
		// service they bought fronts there), keeping the provider's
		// secondary ASes cohesive for reference discovery.
		return p.CloudAddrAt(0, 2048+d.OpIdx)
	}
	// Operator-owned divert space (announced by the provider today).
	return mustNth(op.DivertBlock, uint64(d.OpIdx)%ipam.HostCount(op.DivertBlock))
}

func mustNth(p netip.Prefix, n uint64) netip.Addr {
	a, err := ipam.NthAddr(p, n)
	if err != nil {
		panic(err)
	}
	return a
}

// cnameTarget derives the customer-specific canonical name under sld.
func cnameTarget(d *Domain, sld string) string {
	label := d.Name
	if i := indexByte(label, '.'); i >= 0 {
		label = label[:i]
	}
	return label + "." + sld
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// pickTwo selects two NS hosts deterministically by slot.
func pickTwo(hosts []string, slot int) []string {
	if len(hosts) <= 2 {
		return hosts
	}
	i := slot % len(hosts)
	j := (slot + 1) % len(hosts)
	return []string{hosts[i], hosts[j]}
}

// RIBForDay builds the day's routing table: static infrastructure routes
// plus the dynamic announcements implementing BGP-based diversion.
func (w *World) RIBForDay(day simtime.Day) *bgp.RIB {
	rib := bgp.NewRIB()
	for _, r := range w.staticRoutes {
		for _, o := range r.Origins {
			rib.Announce(r.Prefix, o)
		}
	}
	// Operator divert blocks: per-day origin per cohort slice.
	for i, op := range w.Operators {
		w.announceOperatorBlock(rib, i, op, day)
	}
	// Direct BGP customers: the provider announces the customer /24
	// while diverting; otherwise the customer's hoster-of-record
	// announces it (the covering route).
	for _, d := range w.Domains {
		c := d.Cust
		if c == nil || c.Profile != ProfileBGP || !c.bgpPrefix.IsValid() {
			continue
		}
		if !d.Life.Contains(day) {
			continue
		}
		if c.ActiveOn(day) {
			rib.Announce(c.bgpPrefix, w.Providers[c.Provider].DivertASN(c.seq))
		} else {
			rib.Announce(c.bgpPrefix, w.Hosters[d.Hoster].Spec.AS.ASN)
		}
	}
	return rib
}

// announceOperatorBlock emits the divert-block announcements for one
// operator on one day: episode slices go to the episode's provider, the
// standing provider (if any) covers the rest, and the operator's own AS
// originates whatever remains.
func (w *World) announceOperatorBlock(rib *bgp.RIB, opIdx int, op *operatorInfra, day simtime.Day) {
	if op.cohort == 0 {
		return
	}
	spec := op.Spec
	// Determine, per cohort index range, today's origin. Episode windows
	// can overlap only in the Fabulous sense (termination); first match
	// wins, mirroring diversionFor.
	type slice struct {
		upto   int // exclusive cohort index bound
		origin bgp.ASN
	}
	ownOrigin := spec.AS.ASN
	alwaysOrigin := ownOrigin
	alwaysN := 0
	if spec.AlwaysProvider >= 0 {
		alwaysOrigin = w.Providers[spec.AlwaysProvider].Spec.ASes[spec.AlwaysASIdx].ASN
		alwaysN = w.alwaysCohortSize(op)
	}
	var cuts []slice
	for i := range spec.Episodes {
		ep := &spec.Episodes[i]
		if !ep.Window.Contains(day) {
			continue
		}
		n := w.Cfg.scaled(ep.CohortSize)
		if n > op.cohort {
			n = op.cohort
		}
		var origin bgp.ASN
		switch {
		case ep.Provider < 0:
			origin = spec.AS.ASN // relationship ended: back to own AS
		case ep.Profile == ProfileBGP || !episodeUsesProviderIPs(opIdx, i):
			origin = w.Providers[ep.Provider].Spec.ASes[0].ASN
		default:
			// DNS-level episode into provider IP space: the divert block
			// keeps its default origin.
			continue
		}
		cuts = append(cuts, slice{upto: n, origin: origin})
	}
	// Announce per-address-range blocks. The first matching episode wins
	// for overlapping ranges, so apply cuts in order, tracking covered
	// bound; the standing relationship then covers up to alwaysN, and the
	// operator's own AS originates the rest.
	covered := 0
	for _, c := range cuts {
		if c.upto <= covered {
			continue
		}
		announceRange(rib, op.DivertBlock, covered, c.upto, c.origin)
		covered = c.upto
	}
	if covered < alwaysN {
		announceRange(rib, op.DivertBlock, covered, alwaysN, alwaysOrigin)
		covered = alwaysN
	}
	if covered < int(ipam.HostCount(op.DivertBlock)) {
		announceRange(rib, op.DivertBlock, covered, int(ipam.HostCount(op.DivertBlock)), ownOrigin)
	}
}

// announceRange announces the address range [from, to) of block as a
// minimal set of CIDR prefixes originated by asn.
func announceRange(rib *bgp.RIB, block netip.Prefix, from, to int, asn bgp.ASN) {
	for from < to {
		// Largest power-of-two block aligned at 'from' and fitting.
		size := 1
		for from%(size*2) == 0 && from+size*2 <= to {
			size *= 2
		}
		base := mustNth(block, uint64(from))
		bits := ipam.MaskBitsFor(uint64(size))
		rib.Announce(netip.PrefixFrom(base, bits), asn)
		from += size
	}
}

// Stats summarises the generated world for logging and Table 1.
type Stats struct {
	DomainsTotal int
	ByTLD        map[string]int
	Customers    int
	OnDemand     int
}

// Stats computes summary counts.
func (w *World) Stats() Stats {
	s := Stats{ByTLD: make(map[string]int)}
	for _, d := range w.Domains {
		s.DomainsTotal++
		s.ByTLD[d.TLD]++
		if d.Cust != nil {
			s.Customers++
			if d.Cust.OnDemand {
				s.OnDemand++
			}
		}
	}
	return s
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("domains=%d com=%d net=%d org=%d nl=%d customers=%d ondemand=%d",
		s.DomainsTotal, s.ByTLD["com"], s.ByTLD["net"], s.ByTLD["org"], s.ByTLD["nl"], s.Customers, s.OnDemand)
}
