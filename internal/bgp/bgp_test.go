package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(13335, "CLOUDFLARENET - CloudFlare, Inc.")
	r.Register(19551, "INCAPSULA - Incapsula Inc")
	r.Register(20940, "AKAMAI-ASN1")
	r.Register(16625, "AKAMAI-AS")
	if got := r.Name(13335); !strings.Contains(got, "CloudFlare") {
		t.Errorf("Name = %q", got)
	}
	if got := r.FindByName("akamai"); !reflect.DeepEqual(got, []ASN{16625, 20940}) {
		t.Errorf("FindByName = %v", got)
	}
	if got := r.FindByName("nonexistent"); got != nil {
		t.Errorf("FindByName(miss) = %v", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
	if ASN(13335).String() != "AS13335" {
		t.Error("ASN.String wrong")
	}
}

func TestRIBMostSpecific(t *testing.T) {
	rib := NewRIB()
	rib.Announce(pfx("10.0.0.0/8"), 100)
	rib.Announce(pfx("10.1.0.0/16"), 200)
	rib.Announce(pfx("10.1.2.0/24"), 300)

	cases := []struct {
		addr string
		want ASN
	}{
		{"10.1.2.3", 300},
		{"10.1.9.9", 200},
		{"10.200.0.1", 100},
	}
	for _, c := range cases {
		origins, p, ok := rib.Origins(addr(c.addr))
		if !ok || len(origins) != 1 || origins[0] != c.want {
			t.Errorf("Origins(%s) = %v (%v), want %v", c.addr, origins, p, c.want)
		}
	}
	if _, _, ok := rib.Origins(addr("192.168.0.1")); ok {
		t.Error("uncovered address resolved")
	}
}

func TestRIBMOAS(t *testing.T) {
	rib := NewRIB()
	rib.Announce(pfx("203.0.113.0/24"), 19551)
	rib.Announce(pfx("203.0.113.0/24"), 55002)
	origins, _, ok := rib.Origins(addr("203.0.113.7"))
	if !ok || !reflect.DeepEqual(origins, []ASN{19551, 55002}) {
		t.Errorf("MOAS origins = %v", origins)
	}
}

func TestRIBWithdraw(t *testing.T) {
	rib := NewRIB()
	rib.Announce(pfx("10.0.0.0/8"), 100)
	rib.Announce(pfx("10.1.0.0/16"), 200)
	rib.Withdraw(pfx("10.1.0.0/16"), 200)
	origins, _, ok := rib.Origins(addr("10.1.0.1"))
	if !ok || origins[0] != 100 {
		t.Errorf("after withdraw: %v, %v", origins, ok)
	}
	if rib.Len() != 1 {
		t.Errorf("Len = %d", rib.Len())
	}
	// Withdrawing one MOAS origin keeps the other.
	rib.Announce(pfx("10.0.0.0/8"), 101)
	rib.Withdraw(pfx("10.0.0.0/8"), 100)
	origins, _, ok = rib.Origins(addr("10.2.3.4"))
	if !ok || len(origins) != 1 || origins[0] != 101 {
		t.Errorf("MOAS partial withdraw: %v", origins)
	}
	// Withdrawing a never-announced prefix is a no-op.
	rib.Withdraw(pfx("172.16.0.0/12"), 1)
}

func TestRIBOnDemandFlip(t *testing.T) {
	// The BGP-based on-demand diversion of §2.3/§3.4: the same address
	// resolves to the customer AS normally and the DPS AS during attack.
	rib := NewRIB()
	customer, dps := ASN(21740), ASN(26415) // ENOM, Verisign per §4.4.1
	p := pfx("198.51.100.0/24")
	rib.Announce(p, customer)
	a := addr("198.51.100.10")
	if o, _, _ := rib.Origins(a); o[0] != customer {
		t.Fatal("baseline origin wrong")
	}
	// Attack: DPS announces the same /24 (more specific not needed in the
	// simulation; the customer withdraws).
	rib.Withdraw(p, customer)
	rib.Announce(p, dps)
	if o, _, _ := rib.Origins(a); o[0] != dps {
		t.Fatal("diverted origin wrong")
	}
	rib.Withdraw(p, dps)
	rib.Announce(p, customer)
	if o, _, _ := rib.Origins(a); o[0] != customer {
		t.Fatal("restored origin wrong")
	}
}

func TestRIBIPv6(t *testing.T) {
	rib := NewRIB()
	rib.Announce(pfx("2001:db8::/32"), 64500)
	rib.Announce(pfx("2001:db8:1::/48"), 64501)
	origins, _, ok := rib.Origins(addr("2001:db8:1::5"))
	if !ok || origins[0] != 64501 {
		t.Errorf("v6 most-specific = %v", origins)
	}
	origins, _, ok = rib.Origins(addr("2001:db8:2::5"))
	if !ok || origins[0] != 64500 {
		t.Errorf("v6 covering = %v", origins)
	}
}

func TestSnapshotFormat(t *testing.T) {
	rib := NewRIB()
	rib.Announce(pfx("10.1.2.0/24"), 300)
	rib.Announce(pfx("10.0.0.0/8"), 100)
	rib.Announce(pfx("10.0.0.0/8"), 101)
	snap := rib.Snapshot()
	want1 := "10.0.0.0\t8\t100_101\n"
	want2 := "10.1.2.0\t24\t300\n"
	if !strings.Contains(snap, want1) || !strings.Contains(snap, want2) {
		t.Errorf("snapshot:\n%s", snap)
	}
	if len(rib.Routes()) != 2 {
		t.Errorf("Routes = %v", rib.Routes())
	}
}

// TestRIBMatchesBruteForce cross-checks the mask-walk lookup against a
// brute-force most-specific scan over Routes(), on random RIBs.
func TestRIBMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rib := NewRIB()
		for i, n := 0, 20+r.Intn(40); i < n; i++ {
			bits := 8 + r.Intn(17)
			a := netip.AddrFrom4([4]byte{byte(r.Intn(16)), byte(r.Intn(256)), byte(r.Intn(256)), 0})
			rib.Announce(netip.PrefixFrom(a, bits).Masked(), ASN(1+r.Intn(500)))
		}
		routes := rib.Routes()
		for i := 0; i < 100; i++ {
			a := netip.AddrFrom4([4]byte{byte(r.Intn(16)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			got, gotPfx, ok := rib.Origins(a)
			// Brute force.
			best := -1
			var wantPfx netip.Prefix
			var want []ASN
			for _, rt := range routes {
				if rt.Prefix.Contains(a) && rt.Prefix.Bits() > best {
					best = rt.Prefix.Bits()
					wantPfx = rt.Prefix
					want = rt.Origins
				}
			}
			if ok != (best >= 0) {
				t.Logf("seed %d addr %v: ok=%v want=%v", seed, a, ok, best >= 0)
				return false
			}
			if !ok {
				continue
			}
			if gotPfx != wantPfx || !reflect.DeepEqual(got, want) {
				t.Logf("seed %d addr %v: got %v/%v want %v/%v", seed, a, got, gotPfx, want, wantPfx)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
