package obs

// The SLO engine: declarative objectives over the windowed route metrics,
// scored as multiwindow error-budget burn rates (Google SRE-style: a
// fast 5m window catches new fires quickly, a slow 1h window keeps a
// brief spike from paging). Burn rate is the rate at which the error
// budget is being consumed: (bad/total) / (1 - target). Burn 1 means the
// budget exactly lasts the SLO period; the alerting thresholds below are
// the standard 14.4 (2% of a 30-day budget in one hour) and 3.

// ObjectiveKind selects what an objective measures.
type ObjectiveKind string

const (
	// KindAvailability scores non-5xx responses against a ratio target
	// (e.g. 0.999).
	KindAvailability ObjectiveKind = "availability"
	// KindLatency scores responses faster than LatencyThreshold against
	// a ratio target (e.g. 99% under 5ms).
	KindLatency ObjectiveKind = "latency"
)

// Default burn-rate thresholds for status classification.
const (
	DefaultWarnBurn = 3.0
	DefaultPageBurn = 14.4
)

// Objective is one declarative service-level objective on a route.
type Objective struct {
	Name  string        `json:"name"`
	Route string        `json:"route"`
	Kind  ObjectiveKind `json:"kind"`
	// Target is the good-events ratio the objective promises, in (0,1)
	// — e.g. 0.999 for three nines. Values >= 1 are clamped: a zero
	// error budget cannot define a finite burn rate.
	Target float64 `json:"target"`
	// LatencyThreshold (seconds) bounds a good request for KindLatency;
	// it snaps up to the nearest histogram bucket bound at evaluation.
	LatencyThreshold float64 `json:"latency_threshold_s,omitempty"`
}

// WindowScore is one objective evaluated over one window.
type WindowScore struct {
	Window    string  `json:"window"`
	Total     uint64  `json:"total"`
	Bad       uint64  `json:"bad"`
	GoodRatio float64 `json:"good_ratio"`
	BurnRate  float64 `json:"burn_rate"`
}

// ObjectiveScore is one objective's full multiwindow evaluation.
type ObjectiveScore struct {
	Objective
	// EffectiveThreshold is the bucket bound the latency threshold
	// snapped to (0 for availability objectives).
	EffectiveThreshold float64     `json:"effective_threshold_s,omitempty"`
	Fast               WindowScore `json:"fast"`
	Slow               WindowScore `json:"slow"`
	P50FastS           float64     `json:"p50_fast_s"`
	P99FastS           float64     `json:"p99_fast_s"`
	// Status is "ok", "warn", or "breach": breach when BOTH windows
	// burn above the page threshold, warn when both exceed the warn
	// threshold — requiring both windows is what stops a short spike
	// from flapping the status.
	Status string `json:"status"`
}

// Scorecard is the full SLO evaluation served at /debug/slo and logged
// as the final summary on drain.
type Scorecard struct {
	GeneratedAt string           `json:"generated_at"`
	FastWindow  string           `json:"fast_window"`
	SlowWindow  string           `json:"slow_window"`
	WarnBurn    float64          `json:"warn_burn"`
	PageBurn    float64          `json:"page_burn"`
	Objectives  []ObjectiveScore `json:"objectives"`
}

// CountStatus tallies objectives by status.
func (sc Scorecard) CountStatus() (ok, warn, breach int) {
	for _, o := range sc.Objectives {
		switch o.Status {
		case "warn":
			warn++
		case "breach":
			breach++
		default:
			ok++
		}
	}
	return
}

// Worst returns the objective with the highest effective (two-window
// minimum) burn rate, the one an operator should look at first.
func (sc Scorecard) Worst() (name string, burn float64) {
	for _, o := range sc.Objectives {
		b := min(o.Fast.BurnRate, o.Slow.BurnRate)
		if name == "" || b > burn {
			name, burn = o.Name, b
		}
	}
	return
}

// burnRate converts bad/total counts to an error-budget burn rate; zero
// traffic burns nothing.
func burnRate(bad, total uint64, target float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - clampTarget(target)
	return (float64(bad) / float64(total)) / budget
}

func clampTarget(target float64) float64 {
	const maxTarget = 0.9999999
	if target > maxTarget {
		return maxTarget
	}
	if target <= 0 {
		return 0.5
	}
	return target
}

func goodRatio(bad, total uint64) float64 {
	if total == 0 {
		return 1
	}
	return float64(total-bad) / float64(total)
}

func statusFor(fast, slow WindowScore, warnBurn, pageBurn float64) string {
	b := min(fast.BurnRate, slow.BurnRate)
	switch {
	case b >= pageBurn:
		return "breach"
	case b >= warnBurn:
		return "warn"
	default:
		return "ok"
	}
}

func statusLevel(status string) float64 {
	switch status {
	case "warn":
		return 1
	case "breach":
		return 2
	default:
		return 0
	}
}
