package core

import (
	"context"
	"net/netip"

	"dpsadopt/internal/bgp"
	"reflect"
	"strings"
	"testing"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func TestSLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"foo.incapdns.net", "incapdns.net"},
		{"a.b.edgekey.net", "edgekey.net"},
		{"kate.ns.cloudflare.com", "cloudflare.com"},
		{"example.com", "example.com"},
		{"com", "com"},
		{"www.example.co.uk", "example.co.uk"},
		{"example.co.uk", "example.co.uk"},
		{"co.uk", "co.uk"},
		{"deep.sub.domain.example.org", "example.org"},
	}
	for _, c := range cases {
		if got := SLD(c.in); got != c.want {
			t.Errorf("SLD(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if (RefAS | RefNS).String() != "AS+NS" {
		t.Errorf("got %q", (RefAS | RefNS).String())
	}
	if Method(0).String() != "none" {
		t.Error("zero method")
	}
	if !(RefAS | RefCNAME).Has(RefAS) || (RefAS).Has(RefCNAME) {
		t.Error("Has wrong")
	}
}

func TestReferencesIndexes(t *testing.T) {
	refs := MustGroundTruth()
	if refs.NumProviders() != worldsim.NumProviders {
		t.Fatalf("providers = %d", refs.NumProviders())
	}
	if p, ok := refs.MatchASN(13335); !ok || refs.Providers[p].Name != "CloudFlare" {
		t.Error("ASN 13335 not CloudFlare")
	}
	if p, ok := refs.MatchCNAME("foo.incapdns.net"); !ok || refs.Providers[p].Name != "Incapsula" {
		t.Error("incapdns.net not Incapsula")
	}
	if p, ok := refs.MatchNS("kate.ns.cloudflare.com"); !ok || refs.Providers[p].Name != "CloudFlare" {
		t.Error("cloudflare.com NS not CloudFlare")
	}
	if _, ok := refs.MatchNS("ns1.hostco3.net"); ok {
		t.Error("hoster NS matched a provider")
	}
	if _, ok := refs.MatchASN(14618); ok {
		t.Error("AWS matched a provider")
	}
}

func TestNewReferencesRejectsCollisions(t *testing.T) {
	_, err := NewReferences([]ProviderRefs{
		{Name: "A", ASNs: []uint32{1}},
		{Name: "B", ASNs: []uint32{1}},
	})
	if err == nil {
		t.Error("duplicate ASN accepted")
	}
	_, err = NewReferences([]ProviderRefs{
		{Name: "A", NSSLDs: []string{"x.net"}},
		{Name: "B", NSSLDs: []string{"x.net"}},
	})
	if err == nil {
		t.Error("duplicate NS SLD accepted")
	}
}

// measuredWorld builds a world and measures a few days into a store.
var (
	cachedWorld *worldsim.World
	cachedStore *store.Store
)

// quietDay (2015-07-25) has no third-party episode in flight — the
// discovery procedure assumes it runs on a day without large anomalies
// (the paper's analysis separated always-on from on-demand the same way).
var quietDay = simtime.FromDate(2015, 7, 25)

// testDays: the quiet day plus the Wix March 2015 peak.
var testDays = []simtime.Day{quietDay, simtime.FromDate(2015, 3, 5)}

func measuredWorld(t testing.TB) (*worldsim.World, *store.Store) {
	t.Helper()
	if cachedWorld != nil {
		return cachedWorld, cachedStore
	}
	w, err := worldsim.New(worldsim.DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	s := store.New()
	p := measure.New(w, s, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	for _, d := range testDays {
		if err := p.RunDay(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	cachedWorld, cachedStore = w, s
	return w, s
}

func dayTable(t testing.TB, w *worldsim.World, day simtime.Day) pfx2as.Table {
	t.Helper()
	entries, err := pfx2as.Parse(strings.NewReader(w.RIBForDay(day).Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	return pfx2as.NewWalk(entries)
}

func TestDetectDayFindsCustomers(t *testing.T) {
	w, s := measuredWorld(t)
	refs := MustGroundTruth()
	day := quietDay
	cf, _ := refs.ProviderIndex("CloudFlare")
	det := DetectDay(s, "com", day, refs)
	if det.Count(cf) == 0 {
		t.Fatal("no CloudFlare domains detected in .com")
	}
	// Cross-check against the world's ground truth for .com.
	want := 0
	rib := w.RIBForDay(day)
	for _, d := range w.Domains {
		if d.TLD != "com" || !d.Life.Contains(day) {
			continue
		}
		st := w.StateFor(d, day)
		if !st.Exists || st.Unmeasurable {
			continue
		}
		if usesProvider(w, rib, d, day, worldsim.CloudFlare) {
			want++
		}
	}
	if det.Count(cf) != want {
		t.Errorf("CloudFlare .com count = %d, ground truth %d", det.Count(cf), want)
	}
	if det.DomainsMeasured == 0 {
		t.Error("DomainsMeasured = 0")
	}
}

// usesProvider recomputes expected detection from world state.
func usesProvider(w *worldsim.World, rib *bgp.RIB, d *worldsim.Domain, day simtime.Day, provider int) bool {
	st := w.StateFor(d, day)
	refs := MustGroundTruth()
	for _, a := range append(append([]netip.Addr{}, st.ApexA...), st.WWWA...) {
		if origins, _, ok := rib.Origins(a); ok {
			for _, o := range origins {
				if p, ok := refs.MatchASN(uint32(o)); ok && p == provider {
					return true
				}
			}
		}
	}
	if st.WWWCNAME != "" {
		if p, ok := refs.MatchCNAME(st.WWWCNAME); ok && p == provider {
			return true
		}
	}
	for _, ns := range st.NSHosts {
		if p, ok := refs.MatchNS(ns); ok && p == provider {
			return true
		}
	}
	return false
}

func TestDetectMethodCombinations(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	day := quietDay
	// CloudFlare: most customers are NS-delegated AND routed (NS+AS); the
	// NS share must be large (≈75% per §4.3).
	cf, _ := refs.ProviderIndex("CloudFlare")
	det := DetectDay(s, "com", day, refs)
	total := det.Count(cf)
	ns := det.CountMethod(cf, RefNS)
	if total == 0 {
		t.Fatal("no CloudFlare detections")
	}
	frac := float64(ns) / float64(total)
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("CloudFlare NS share = %.2f (%d/%d), want ≈0.75", frac, ns, total)
	}
	// Verisign NS-only customers: NS reference without AS reference.
	vs, _ := refs.ProviderIndex("Verisign")
	nsOnly := 0
	for _, m := range det.Uses[vs] {
		if m.Has(RefNS) && !m.Has(RefAS) {
			nsOnly++
		}
	}
	if nsOnly == 0 {
		t.Error("no Verisign NS-only (managed DNS) domains detected")
	}
}

func TestDetectWixPeak(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	inc, _ := refs.ProviderIndex("Incapsula")
	quiet := DetectDay(s, "com", quietDay, refs)
	peak := DetectDay(s, "com", simtime.FromDate(2015, 3, 5), refs)
	if peak.Count(inc) <= quiet.Count(inc)*3 {
		t.Errorf("Incapsula peak %d vs quiet %d: anomaly missing", peak.Count(inc), quiet.Count(inc))
	}
	// Wix peak domains reference Incapsula by AS only (no CNAME, no NS).
	asOnly := 0
	for _, m := range peak.Uses[inc] {
		if m == RefAS {
			asOnly++
		}
	}
	if asOnly == 0 {
		t.Error("no AS-only Incapsula references at the Wix peak")
	}
}

func TestDiscoveryRecoversTable2(t *testing.T) {
	w, s := measuredWorld(t)
	day := quietDay
	table := dayTable(t, w, day)
	probe := func(sld string) (netip.Addr, bool) { return w.ProbeApex(sld, day) }
	truth := MustGroundTruth()

	for i := range truth.Providers {
		want := truth.Providers[i]
		got, err := Discover(s, worldsim.GTLDs(), day, w.Registry, want.Name, table, probe, DiscoveryConfig{MinSupport: 1, MinASSupport: 1})
		if err != nil {
			t.Errorf("%s: %v", want.Name, err)
			continue
		}
		if !reflect.DeepEqual(got.ASNs, want.ASNs) {
			t.Errorf("%s ASNs = %v, want %v", want.Name, got.ASNs, want.ASNs)
		}
		if !reflect.DeepEqual(got.CNAMESLDs, want.CNAMESLDs) {
			t.Errorf("%s CNAME SLDs = %v, want %v", want.Name, got.CNAMESLDs, want.CNAMESLDs)
		}
		if !reflect.DeepEqual(got.NSSLDs, want.NSSLDs) {
			t.Errorf("%s NS SLDs = %v, want %v", want.Name, got.NSSLDs, want.NSSLDs)
		}
	}
}

func TestDiscoverUnknownProvider(t *testing.T) {
	w, s := measuredWorld(t)
	table := dayTable(t, w, quietDay)
	_, err := Discover(s, worldsim.GTLDs(), quietDay, w.Registry, "NoSuchProvider", table, nil, DiscoveryConfig{})
	if err == nil {
		t.Error("unknown provider accepted")
	}
}
