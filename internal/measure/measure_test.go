package measure

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

// tinyWorld builds a very small world for wire-mode tests.
func tinyWorld(t testing.TB) *worldsim.World {
	t.Helper()
	cfg := worldsim.DefaultConfig(400_000) // ≈350 gTLD domains
	w, err := worldsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// midWorld is used for direct-mode pipeline tests.
func midWorld(t testing.TB) *worldsim.World {
	t.Helper()
	cfg := worldsim.DefaultConfig(50_000)
	w, err := worldsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDirectRunDay(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	p := New(w, s, Config{Mode: ModeDirect, Workers: 4})
	if err := p.RunDay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	srcs := s.Sources()
	if len(srcs) < 3 {
		t.Fatalf("sources = %v", srcs)
	}
	for _, tld := range worldsim.GTLDs() {
		n := 0
		s.ForEachRow(tld, 0, func(store.Row) { n++ })
		active := w.TLDs[tld].ActiveCount(0)
		// Every active domain yields ≥4 rows (apex A, www A or CNAME+A,
		// 2 NS).
		if n < active*3 {
			t.Errorf("%s: %d rows for %d domains", tld, n, active)
		}
	}
	// Day 0 is before the .nl/Alexa window.
	if len(s.Days(SourceAlexa)) != 0 || len(s.Days("nl")) != 0 {
		t.Error("alexa/nl measured before their window")
	}
}

func TestDirectAlexaAndNLWindows(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	p := New(w, s, Config{Mode: ModeDirect, Workers: 2})
	day := w.Cfg.NLWindow.Start
	if err := p.RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	if len(s.Days(SourceAlexa)) != 1 {
		t.Error("alexa not measured in window")
	}
	if len(s.Days("nl")) != 1 {
		t.Error("nl not measured in window")
	}
}

func TestASNSupplementation(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	p := New(w, s, Config{Mode: ModeDirect, Workers: 2})
	if err := p.RunDay(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	addrRows, withASN := 0, 0
	for _, tld := range worldsim.GTLDs() {
		s.ForEachRow(tld, 100, func(r store.Row) {
			if r.Kind == store.KindApexA {
				addrRows++
				if len(r.ASNs) > 0 {
					withASN++
				}
			}
		})
	}
	if addrRows == 0 {
		t.Fatal("no address rows")
	}
	if withASN != addrRows {
		t.Errorf("ASN coverage %d/%d; every simulated address should be routed", withASN, addrRows)
	}
}

// rowKey canonicalises a row for set comparison.
func rowKey(r store.Row) string {
	asns := append([]uint32(nil), r.ASNs...)
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return fmt.Sprintf("%s|%v|%v|%s|%v", r.Domain, r.Kind, r.Addr, r.Str, asns)
}

func collectRows(s *store.Store, source string, day simtime.Day) []string {
	var keys []string
	s.ForEachRow(source, day, func(r store.Row) { keys = append(keys, rowKey(r)) })
	sort.Strings(keys)
	return keys
}

// TestModesEquivalent is the core fidelity check: wire-mode measurement
// through real DNS messages produces exactly the rows the direct mode
// derives from the world model.
func TestModesEquivalent(t *testing.T) {
	w := tinyWorld(t)
	day := simtime.Day(100)

	direct := store.New()
	pd := New(w, direct, Config{Mode: ModeDirect, Workers: 2})
	if err := pd.RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	wireStore := store.New()
	pw := New(w, wireStore, Config{Mode: ModeWire, Workers: 4, Timeout: 250, Retries: 3})
	if err := pw.RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	if pw.QueriesSent() == 0 {
		t.Error("wire mode sent no queries")
	}
	for _, src := range direct.Sources() {
		want := collectRows(direct, src, day)
		got := collectRows(wireStore, src, day)
		if len(want) != len(got) {
			t.Errorf("%s: direct %d rows, wire %d rows", src, len(want), len(got))
			diffSample(t, want, got)
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s row %d:\ndirect %s\nwire   %s", src, i, want[i], got[i])
				break
			}
		}
	}
}

func diffSample(t *testing.T, want, got []string) {
	t.Helper()
	wset := map[string]bool{}
	for _, k := range want {
		wset[k] = true
	}
	gset := map[string]bool{}
	for _, k := range got {
		gset[k] = true
	}
	shown := 0
	for _, k := range want {
		if !gset[k] && shown < 5 {
			t.Logf("missing in wire: %s", k)
			shown++
		}
	}
	shown = 0
	for _, k := range got {
		if !wset[k] && shown < 5 {
			t.Logf("extra in wire: %s", k)
			shown++
		}
	}
}

func TestSedoOutageDropsRows(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	p := New(w, s, Config{Mode: ModeDirect, Workers: 2})
	outage := simtime.FromDate(2015, 11, 22)
	if err := p.RunDay(context.Background(), outage); err != nil {
		t.Fatal(err)
	}
	if err := p.RunDay(context.Background(), outage+1); err != nil {
		t.Fatal(err)
	}
	sedoRows := func(day simtime.Day) int {
		n := 0
		for _, tld := range worldsim.GTLDs() {
			s.ForEachRow(tld, day, func(r store.Row) {
				if strings.HasSuffix(r.Str, ".sedoparking.com") {
					n++
				}
			})
		}
		return n
	}
	if n := sedoRows(outage); n != 0 {
		t.Errorf("outage day has %d sedo rows", n)
	}
	if n := sedoRows(outage + 1); n == 0 {
		t.Error("no sedo rows the day after the outage")
	}
}

func TestRunRange(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	var days []simtime.Day
	p := New(w, s, Config{Mode: ModeDirect, Workers: 2, OnDay: func(d simtime.Day, rows int) {
		if rows <= 0 {
			t.Errorf("day %s: %d rows", d, rows)
		}
		days = append(days, d)
	}})
	if err := p.RunRange(context.Background(), simtime.Range{Start: 0, End: 3}); err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 {
		t.Errorf("OnDay calls = %d", len(days))
	}
	if got := s.Days("com"); len(got) != 3 {
		t.Errorf("com days = %v", got)
	}
}

// TestModesEquivalentOnOutageDay checks the two fidelity modes agree even
// when an operator's name servers are down: direct mode marks the domains
// unmeasurable, wire mode times out on them — either way, no rows.
func TestModesEquivalentOnOutageDay(t *testing.T) {
	w := tinyWorld(t)
	outage := simtime.FromDate(2015, 11, 22)

	direct := store.New()
	if err := New(w, direct, Config{Mode: ModeDirect, Workers: 2}).RunDay(context.Background(), outage); err != nil {
		t.Fatal(err)
	}
	wireStore := store.New()
	if err := New(w, wireStore, Config{Mode: ModeWire, Workers: 8, Timeout: 60, Retries: 1}).RunDay(context.Background(), outage); err != nil {
		t.Fatal(err)
	}
	for _, src := range direct.Sources() {
		want := collectRows(direct, src, outage)
		got := collectRows(wireStore, src, outage)
		if len(want) != len(got) {
			t.Errorf("%s: direct %d rows, wire %d rows", src, len(want), len(got))
			diffSample(t, want, got)
		}
	}
	// And the Sedo domains really are absent.
	for _, src := range direct.Sources() {
		direct.ForEachRow(src, outage, func(r store.Row) {
			if strings.HasSuffix(r.Str, ".sedoparking.com") {
				t.Errorf("sedo row present on outage day: %+v", r)
			}
		})
	}
}

// TestWireOverMappedUDP runs a wire-mode day over real kernel UDP sockets
// via the NAT-style mapped transport.
func TestWireOverMappedUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel sockets")
	}
	w := tinyWorld(t)
	day := simtime.Day(10)

	direct := store.New()
	if err := New(w, direct, Config{Mode: ModeDirect, Workers: 2}).RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	udp := store.New()
	cfg := Config{Mode: ModeWire, Workers: 8, Timeout: 400, Retries: 3,
		WireNetwork: func(simtime.Day) transport.Network { return transport.NewMappedUDP() }}
	if err := New(w, udp, cfg).RunDay(context.Background(), day); err != nil {
		t.Skipf("cannot run over UDP: %v", err)
	}
	for _, src := range direct.Sources() {
		want := collectRows(direct, src, day)
		got := collectRows(udp, src, day)
		if len(want) != len(got) {
			t.Errorf("%s: direct %d rows, udp-wire %d rows", src, len(want), len(got))
		}
	}
}

func TestAAAAMeasured(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	if err := New(w, s, Config{Mode: ModeDirect, Workers: 2}).RunDay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	v6 := 0
	for _, tld := range worldsim.GTLDs() {
		s.ForEachRow(tld, 0, func(r store.Row) {
			if r.Kind == store.KindApexAAAA || r.Kind == store.KindWWWAAAA {
				v6++
				if !r.Addr.Is6() || r.Addr.Is4In6() {
					t.Fatalf("AAAA row with non-v6 address: %v", r.Addr)
				}
				if len(r.ASNs) == 0 {
					t.Fatalf("AAAA row without origin AS: %+v", r)
				}
			}
		})
	}
	if v6 == 0 {
		t.Error("no AAAA rows measured")
	}
}

// TestStageIZoneFilesEquivalent checks the literal zone-file Stage I
// produces the same measurement rows as the direct domain-table listing.
func TestStageIZoneFilesEquivalent(t *testing.T) {
	w := midWorld(t)
	day := simtime.Day(20)

	plain := store.New()
	if err := New(w, plain, Config{Mode: ModeDirect, Workers: 2}).RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	viaZone := store.New()
	if err := New(w, viaZone, Config{Mode: ModeDirect, Workers: 2, StageIZoneFiles: true}).RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	for _, src := range plain.Sources() {
		want := collectRows(plain, src, day)
		got := collectRows(viaZone, src, day)
		if len(want) != len(got) {
			t.Errorf("%s: %d vs %d rows", src, len(want), len(got))
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s row %d differs", src, i)
				break
			}
		}
	}
}

// TestWireSurvivesPacketLoss injects 10% datagram loss: the resolvers'
// retries must still produce a (nearly) complete measurement.
func TestWireSurvivesPacketLoss(t *testing.T) {
	w := tinyWorld(t)
	day := simtime.Day(50)

	direct := store.New()
	if err := New(w, direct, Config{Mode: ModeDirect, Workers: 2}).RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	lossy := store.New()
	cfg := Config{Mode: ModeWire, Workers: 8, Timeout: 20, Retries: 8,
		WireNetwork: func(simtime.Day) transport.Network {
			n := transport.NewMem(99)
			n.SetLoss(0.10)
			return n
		}}
	if err := New(w, lossy, cfg).RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}
	for _, src := range direct.Sources() {
		want := len(collectRows(direct, src, day))
		got := len(collectRows(lossy, src, day))
		if got < want*95/100 {
			t.Errorf("%s: only %d/%d rows under 10%% loss", src, got, want)
		}
	}
}

// TestRunPartitionEquivalent: measuring a day partition by partition
// through the coordination plane's unit of work yields exactly the rows
// RunDay produces, and DaySources enumerates exactly the sources RunDay
// would populate.
func TestRunPartitionEquivalent(t *testing.T) {
	w := midWorld(t)
	day := w.Cfg.NLWindow.Start // nl + alexa + gTLDs all active

	whole := store.New()
	pd := New(w, whole, Config{Mode: ModeDirect, Workers: 4})
	if err := pd.RunDay(context.Background(), day); err != nil {
		t.Fatal(err)
	}

	parts := store.New()
	pp := New(w, parts, Config{Mode: ModeDirect, Workers: 4})
	sources := pp.DaySources(day)
	if len(sources) != len(whole.Sources()) {
		t.Fatalf("DaySources = %v, RunDay populated %v", sources, whole.Sources())
	}
	for _, src := range sources {
		if err := pp.RunPartition(context.Background(), src, day); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := parts.Sources(), whole.Sources(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sources = %v, want %v", got, want)
	}
	for _, src := range sources {
		want := collectRows(whole, src, day)
		got := collectRows(parts, src, day)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s/%s: partition rows differ from RunDay (%d vs %d rows)", src, day, len(got), len(want))
		}
	}
	// Unknown partitions are rejected.
	if err := pp.RunPartition(context.Background(), "no-such-source", day); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Cancellation is honoured before any work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pp.RunPartition(ctx, "com", day); err == nil {
		t.Fatal("cancelled partition ran")
	}
}
