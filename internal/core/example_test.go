package core_test

import (
	"fmt"

	"dpsadopt/internal/core"
)

// ExampleReferences shows how measured DNS data maps to provider
// references (§3.3): an origin AS, a CNAME expansion SLD, or an NS SLD.
func ExampleReferences() {
	refs := core.MustGroundTruth()

	if p, ok := refs.MatchASN(19551); ok {
		fmt.Println("AS19551 →", refs.Providers[p].Name)
	}
	if p, ok := refs.MatchCNAME("shop.example.incapdns.net"); ok {
		fmt.Println("CNAME →", refs.Providers[p].Name)
	}
	if p, ok := refs.MatchNS("kate.ns.cloudflare.com"); ok {
		fmt.Println("NS →", refs.Providers[p].Name)
	}
	_, ok := refs.MatchASN(14618) // Amazon is not a DPS
	fmt.Println("AS14618 is a DPS:", ok)
	// Output:
	// AS19551 → Incapsula
	// CNAME → Incapsula
	// NS → CloudFlare
	// AS14618 is a DPS: false
}

// ExampleSLD shows public-suffix-aware second-level-domain extraction.
func ExampleSLD() {
	fmt.Println(core.SLD("a1832.g.akamaiedge.net"))
	fmt.Println(core.SLD("www.example.co.uk"))
	// Output:
	// akamaiedge.net
	// example.co.uk
}

// ExampleMethod shows the reference-combination bitmask.
func ExampleMethod() {
	m := core.RefNS | core.RefAS
	fmt.Println(m)
	fmt.Println(m.Has(core.RefCNAME))
	// Output:
	// AS+NS
	// false
}
