// Package store holds measurement results the way the paper's cluster
// does (§3.5): partitioned per source (TLD or list) per day, in columnar
// form with dictionary encoding — name servers and CNAME targets repeat
// massively across domains, so interning them is what makes a 23 TiB
// archive (or its scaled-down counterpart) tractable.
//
// A row is one stored data point: (domain, record kind, value), where the
// value is an IPv4 address, an interned string (CNAME target or NS host),
// and optionally the supplemented origin-AS set (§3.2).
package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"dpsadopt/internal/simtime"
)

// Kind classifies a stored record.
type Kind uint8

// Record kinds: the query/label combinations the pipeline issues.
const (
	KindApexA Kind = iota
	KindApexAAAA
	KindWWWA
	KindWWWAAAA
	KindWWWCNAME
	KindNS
	numKinds
)

var kindNames = [numKinds]string{"apex/A", "apex/AAAA", "www/A", "www/AAAA", "www/CNAME", "NS"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Row is one data point in presentation form.
type Row struct {
	Domain string
	Kind   Kind
	// Addr is set for address kinds.
	Addr netip.Addr
	// Str is the CNAME target or NS host for string kinds.
	Str string
	// ASNs is the supplemented origin-AS set for address kinds (empty
	// when the address was not covered by any announced prefix).
	ASNs []uint32
}

// NoStr is the Strs-column sentinel marking an address row (no interned
// string value).
const NoStr = ^uint32(0)

// RowID is one data point in dictionary-ID form: the zero-materialization
// counterpart of Row. Consumers that stay in ID space (the detection
// engine) never pay a Dict.Str resolution per row.
type RowID struct {
	// Domain is the dict ID of the domain name.
	Domain uint32
	Kind   Kind
	// Addr is the IPv4 address as big-endian uint32; for IPv6 kinds it
	// is an index into the batch's Addrs6 column.
	Addr uint32
	// Str is the dict ID of the CNAME target or NS host; NoStr for
	// address rows.
	Str uint32
	// ASNs is the packed origin-AS view; must not be retained or
	// mutated.
	ASNs []uint32
}

// Dict interns strings (domain names, NS hosts, CNAME targets).
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// NewDict creates an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// ID interns s.
func (d *Dict) ID(s string) uint32 {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id = uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.ids[s] = id
	return id
}

// Str resolves an interned ID.
func (d *Dict) Str(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.strs[id]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}

// dayBlock is the columnar storage of one (source, day) partition.
type dayBlock struct {
	domains []uint32 // dict IDs
	kinds   []Kind
	// addrs holds IPv4 addresses as big-endian uint32; for IPv6 rows it
	// is an index into addrs6 (the row's kind disambiguates); 0 for
	// string kinds.
	addrs  []uint32
	addrs6 [][16]byte
	strs   []uint32 // dict IDs; ^0 for address kinds
	// asns is a packed adjacency: asnOff[i]..asnOff[i+1] index into
	// asnVals for row i.
	asnOff  []uint32
	asnVals []uint32
}

func (b *dayBlock) rows() int { return len(b.domains) }

// Store accumulates measurement rows.
type Store struct {
	mu     sync.RWMutex
	dict   *Dict
	blocks map[string]map[simtime.Day]*dayBlock
}

// New creates an empty store.
func New() *Store {
	return &Store{
		dict:   NewDict(),
		blocks: make(map[string]map[simtime.Day]*dayBlock),
	}
}

// Dict exposes the store's dictionary (shared with writers).
func (s *Store) Dict() *Dict { return s.dict }

// Writer batches appends into one (source, day) partition. It is not safe
// for concurrent use; create one per goroutine and Merge them, or guard
// externally.
type Writer struct {
	store  *Store
	source string
	day    simtime.Day
	block  dayBlock
}

// NewWriter opens a writer for one partition.
func (s *Store) NewWriter(source string, day simtime.Day) *Writer {
	return &Writer{store: s, source: source, day: day}
}

// AddAddr appends an address row (IPv4 or IPv6).
func (w *Writer) AddAddr(domain string, kind Kind, addr netip.Addr, asns []uint32) {
	b := &w.block
	b.domains = append(b.domains, w.store.dict.ID(domain))
	b.kinds = append(b.kinds, kind)
	if addr.Is4() {
		b.addrs = append(b.addrs, addrU32(addr))
	} else {
		b.addrs = append(b.addrs, uint32(len(b.addrs6)))
		b.addrs6 = append(b.addrs6, addr.As16())
	}
	b.strs = append(b.strs, NoStr)
	b.asnOff = append(b.asnOff, uint32(len(b.asnVals)))
	b.asnVals = append(b.asnVals, asns...)
}

// AddStr appends a string row (CNAME target or NS host).
func (w *Writer) AddStr(domain string, kind Kind, value string) {
	b := &w.block
	b.domains = append(b.domains, w.store.dict.ID(domain))
	b.kinds = append(b.kinds, kind)
	b.addrs = append(b.addrs, 0)
	b.strs = append(b.strs, w.store.dict.ID(value))
	b.asnOff = append(b.asnOff, uint32(len(b.asnVals)))
}

// Rows returns the number of buffered rows.
func (w *Writer) Rows() int { return w.block.rows() }

// Commit merges the writer's rows into the store. The writer is reset and
// may be reused for the same partition.
func (w *Writer) Commit() {
	if w.block.rows() == 0 {
		return
	}
	mRows.Add(int64(w.block.rows()))
	mResidentRows.Add(float64(w.block.rows()))
	mCommits.Inc()
	s := w.store
	s.mu.Lock()
	defer s.mu.Unlock()
	days := s.blocks[w.source]
	if days == nil {
		days = make(map[simtime.Day]*dayBlock)
		s.blocks[w.source] = days
	}
	dst := days[w.day]
	if dst == nil {
		mPartitions.Inc()
		blk := w.block
		days[w.day] = &blk
		w.block = dayBlock{}
		return
	}
	// Append, rebasing ASN and v6 offsets.
	base := uint32(len(dst.asnVals))
	base6 := uint32(len(dst.addrs6))
	dst.domains = append(dst.domains, w.block.domains...)
	dst.kinds = append(dst.kinds, w.block.kinds...)
	start := len(dst.addrs)
	dst.addrs = append(dst.addrs, w.block.addrs...)
	for i, k := range w.block.kinds {
		if isV6Kind(k) {
			dst.addrs[start+i] += base6
		}
	}
	dst.addrs6 = append(dst.addrs6, w.block.addrs6...)
	dst.strs = append(dst.strs, w.block.strs...)
	for _, off := range w.block.asnOff {
		dst.asnOff = append(dst.asnOff, off+base)
	}
	dst.asnVals = append(dst.asnVals, w.block.asnVals...)
	w.block = dayBlock{}
}

// Sources lists the sources with data, sorted.
func (s *Store) Sources() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.blocks))
	for src := range s.blocks {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// Days lists the measured days for a source, sorted.
func (s *Store) Days(source string) []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	days := s.blocks[source]
	out := make([]simtime.Day, 0, len(days))
	for d := range days {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RowBatch is a read-only columnar view of one (source, day) partition:
// the block's columns exposed directly, decoded once per partition
// instead of once per row. The exported slices are dictionary IDs (or
// packed addresses) — resolve them through the store's Dict only at the
// presentation edge. Callers must not mutate the columns, and must not
// use a batch concurrently with writers committing into the same
// partition.
type RowBatch struct {
	// Domains holds the dict ID of each row's domain.
	Domains []uint32
	// Kinds holds each row's record kind.
	Kinds []Kind
	// Addrs holds IPv4 addresses as big-endian uint32 (for IPv6 kinds an
	// index into Addrs6; 0 for string kinds).
	Addrs []uint32
	// Addrs6 is the IPv6 side table indexed through Addrs.
	Addrs6 [][16]byte
	// Strs holds the dict ID of each row's string value, NoStr for
	// address rows.
	Strs []uint32

	asnOff  []uint32
	asnVals []uint32
}

// Rows returns the number of rows in the batch.
func (b *RowBatch) Rows() int { return len(b.Domains) }

// ASNs returns row i's packed origin-AS view (nil when empty). The slice
// aliases the store's adjacency and must not be retained or mutated.
func (b *RowBatch) ASNs(i int) []uint32 {
	lo := b.asnOff[i]
	hi := uint32(len(b.asnVals))
	if i+1 < len(b.asnOff) {
		hi = b.asnOff[i+1]
	}
	if hi <= lo {
		return nil
	}
	return b.asnVals[lo:hi]
}

// Addr decodes row i's address (the zero Addr for string rows).
func (b *RowBatch) Addr(i int) netip.Addr {
	if b.Strs[i] != NoStr {
		return netip.Addr{}
	}
	if isV6Kind(b.Kinds[i]) {
		return netip.AddrFrom16(b.Addrs6[b.Addrs[i]])
	}
	return u32Addr(b.Addrs[i])
}

// Row materializes row i in presentation form, resolving IDs through
// dict (pass the store's Dict).
func (b *RowBatch) Row(i int, dict *Dict) Row {
	r := Row{
		Domain: dict.Str(b.Domains[i]),
		Kind:   b.Kinds[i],
	}
	if b.Strs[i] != NoStr {
		r.Str = dict.Str(b.Strs[i])
	} else {
		r.Addr = b.Addr(i)
		r.ASNs = b.ASNs(i)
	}
	return r
}

// RowBatch returns the columnar view of one partition, or false when the
// partition holds no rows.
func (s *Store) RowBatch(source string, day simtime.Day) (RowBatch, bool) {
	s.mu.RLock()
	b := s.blocks[source][day]
	s.mu.RUnlock()
	if b == nil {
		return RowBatch{}, false
	}
	return RowBatch{
		Domains: b.domains,
		Kinds:   b.kinds,
		Addrs:   b.addrs,
		Addrs6:  b.addrs6,
		Strs:    b.strs,
		asnOff:  b.asnOff,
		asnVals: b.asnVals,
	}, true
}

// ForEachRowID streams one partition's rows in dictionary-ID form: no
// string materialization, no per-row dict lock. The ASNs slice must not
// be retained. For the tightest loops, index a RowBatch directly.
func (s *Store) ForEachRowID(source string, day simtime.Day, fn func(RowID)) {
	b, ok := s.RowBatch(source, day)
	if !ok {
		return
	}
	for i, n := 0, b.Rows(); i < n; i++ {
		fn(RowID{
			Domain: b.Domains[i],
			Kind:   b.Kinds[i],
			Addr:   b.Addrs[i],
			Str:    b.Strs[i],
			ASNs:   b.ASNs(i),
		})
	}
}

// ForEachRow streams one partition's rows in presentation form — the
// compatibility wrapper over RowBatch. The Row passed to fn shares no
// mutable state with the store except the ASNs slice, which must not be
// retained.
func (s *Store) ForEachRow(source string, day simtime.Day, fn func(Row)) {
	b, ok := s.RowBatch(source, day)
	if !ok {
		return
	}
	for i, n := 0, b.Rows(); i < n; i++ {
		fn(b.Row(i, s.dict))
	}
}

// Absorb copies every partition of o into s, re-interning strings
// through s's dictionary. The coordinator's final assembly uses it to
// fold per-partition spool files into one dataset; absorbing the same
// partition twice duplicates its rows, so callers must dedupe at the
// (source, day) level (the coordinator's exactly-once ledger does).
func (s *Store) Absorb(o *Store) {
	for _, src := range o.Sources() {
		for _, day := range o.Days(src) {
			w := s.NewWriter(src, day)
			o.ForEachRow(src, day, func(r Row) {
				switch r.Kind {
				case KindWWWCNAME, KindNS:
					w.AddStr(r.Domain, r.Kind, r.Str)
				default:
					w.AddAddr(r.Domain, r.Kind, r.Addr, r.ASNs)
				}
			})
			w.Commit()
		}
	}
}

// Stats summarises a source for Table 1.
type Stats struct {
	Source     string
	Days       int
	UniqueSLDs int
	DataPoints int64
	// CompressedBytes is the flate-compressed size of the columnar
	// encoding (the Parquet-size analogue).
	CompressedBytes int64
}

// DropDay discards one partition. The full-horizon experiment runner
// streams: it measures a day, folds it into the analysis, accounts its
// statistics, and drops it — the 550-day archive never lives in memory at
// once (the paper used a Hadoop cluster for the same reason).
func (s *Store) DropDay(source string, day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if days := s.blocks[source]; days != nil {
		if b := days[day]; b != nil {
			mPartitions.Dec()
			mResidentRows.Add(-float64(b.rows()))
		}
		delete(days, day)
		if len(days) == 0 {
			delete(s.blocks, source)
		}
	}
}

// DayStats returns one partition's row count and compressed size, plus
// the distinct interned domain IDs seen (for streaming unique-SLD
// accounting).
func (s *Store) DayStats(source string, day simtime.Day) (rows int, compressed int64, domainIDs []uint32) {
	s.mu.RLock()
	b := s.blocks[source][day]
	s.mu.RUnlock()
	if b == nil {
		return 0, 0, nil
	}
	rows = b.rows()
	compressed = compressedSize(encodeBlock(b))
	seen := make(map[uint32]bool)
	for _, id := range b.domains {
		if !seen[id] {
			seen[id] = true
			domainIDs = append(domainIDs, id)
		}
	}
	return rows, compressed, domainIDs
}

// SourceStats computes Table 1 statistics for one source.
func (s *Store) SourceStats(source string) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Source: source}
	days := s.blocks[source]
	st.Days = len(days)
	seen := make(map[uint32]bool)
	var raw bytes.Buffer
	for _, b := range days {
		st.DataPoints += int64(b.rows())
		for _, id := range b.domains {
			seen[id] = true
		}
		raw.Write(encodeBlock(b))
	}
	st.UniqueSLDs = len(seen)
	st.CompressedBytes = compressedSize(raw.Bytes())
	return st
}

// encodeBlock serialises a block column-by-column (so flate sees the
// columnar redundancy, as Parquet would).
func encodeBlock(b *dayBlock) []byte {
	var buf bytes.Buffer
	var tmp [4]byte
	writeU32s := func(vals []uint32) {
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], v)
			buf.Write(tmp[:])
		}
	}
	writeU32s(b.domains)
	for _, k := range b.kinds {
		buf.WriteByte(byte(k))
	}
	writeU32s(b.addrs)
	for _, a := range b.addrs6 {
		buf.Write(a[:])
	}
	writeU32s(b.strs)
	writeU32s(b.asnOff)
	writeU32s(b.asnVals)
	return buf.Bytes()
}

func compressedSize(raw []byte) int64 {
	var out countWriter
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return 0
	}
	_, _ = fw.Write(raw)
	_ = fw.Close()
	return out.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// isV6Kind reports whether the row kind carries an IPv6 address.
func isV6Kind(k Kind) bool { return k == KindApexAAAA || k == KindWWWAAAA }

func addrU32(a netip.Addr) uint32 {
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

func u32Addr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}
