package api

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsadopt/internal/obs"
)

// stepClock is a hand-advanced time source for deterministic window
// tests.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock { return &stepClock{t: time.Unix(1_700_000_000, 0)} }

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// observedServer builds a fixture server whose observatory runs on an
// injected clock and a private registry, isolated from other tests.
func observedServer(t *testing.T, clk *stepClock, cfg Config) *Server {
	t.Helper()
	cfg.Observatory = obs.NewObservatory(obs.ObservatoryConfig{
		Clock: clk.Now,
		SLOs:  DefaultSLOs(),
	})
	return fixtureServer(t, cfg)
}

func TestRetryAfterOn429(t *testing.T) {
	srv := fixtureServer(t, Config{QPS: 0.5, Burst: 1})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/domain/alpha.com", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/domain/alpha.com", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatalf("429 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	// One token at 0.5/s is two seconds out; allow one second of slack
	// for refill between the two requests.
	if secs > 2 {
		t.Fatalf("Retry-After = %d, want <= 2 at rate 0.5", secs)
	}
}

func TestObservatoryRecordsRequests(t *testing.T) {
	clk := newStepClock()
	srv := observedServer(t, clk, Config{})
	h := srv.Handler()

	get(t, h, "/v1/domain/alpha.com")
	get(t, h, "/v1/domain/alpha.com") // cache hit
	get(t, h, "/v1/domain/gamma.com")
	get(t, h, "/v1/provider/Akamai/series")
	get(t, h, "/v1/domain/"+strings.Repeat("a", 300)) // 400, no heavy-hitter key

	o := srv.Observatory()
	snap := o.Route("domain").Latency.MergedAt(clk.Now(), obs.FastWindow)
	if snap.Count != 4 {
		t.Fatalf("domain window count = %d, want 4", snap.Count)
	}

	top := o.TopKDim("domain").Top(0)
	if len(top) != 2 || top[0].Key != "alpha.com" || top[0].Count != 2 {
		t.Fatalf("domain heavy hitters = %+v", top)
	}
	ptop := o.TopKDim("provider").Top(0)
	if len(ptop) != 1 || ptop[0].Key != "akamai" {
		t.Fatalf("provider heavy hitters = %+v", ptop)
	}

	entries := o.SlowLog().Entries("domain")
	if len(entries) != 4 {
		t.Fatalf("slowlog entries = %d, want 4", len(entries))
	}
	sawHit := false
	for _, e := range entries {
		if e.Admission != obs.AdmissionOK {
			t.Fatalf("admission = %q", e.Admission)
		}
		if e.CacheHit {
			sawHit = true
		}
	}
	if !sawHit {
		t.Fatalf("no cache-hit entry in slowlog: %+v", entries)
	}
}

func TestObservatoryWindowedP99Deterministic(t *testing.T) {
	clk := newStepClock()
	o := obs.NewObservatory(obs.ObservatoryConfig{Clock: clk.Now, SLOs: DefaultSLOs()})
	// Drive the observatory directly with synthetic latencies: the p99
	// over the fast window must be exactly the interpolated bucket
	// value, and advancing the clock must age it out.
	for i := 0; i < 99; i++ {
		o.RecordRequest("domain", 0.0008, 200, obs.RequestOutcome{})
	}
	o.RecordRequest("domain", 0.05, 200, obs.RequestOutcome{})

	snap := o.Route("domain").Latency.MergedAt(clk.Now(), obs.FastWindow)
	if got := snap.Quantile(0.99); got != 0.001 {
		t.Fatalf("windowed p99 = %v, want exactly 0.001", got)
	}
	sc := o.Scorecard()
	for _, obj := range sc.Objectives {
		if obj.Route == "domain" && obj.Kind == obs.KindLatency {
			if obj.Fast.Total != 100 || obj.Fast.Bad != 1 {
				t.Fatalf("latency objective fast = %+v", obj.Fast)
			}
		}
	}

	clk.Advance(6 * time.Minute)
	if got := o.Route("domain").Latency.MergedAt(clk.Now(), obs.FastWindow).Count; got != 0 {
		t.Fatalf("fast window after aging = %d, want 0", got)
	}
}

func TestDebugSLOEndpoint(t *testing.T) {
	clk := newStepClock()
	srv := observedServer(t, clk, Config{})
	h := srv.Handler()
	get(t, h, "/v1/domain/alpha.com")

	code, body := get(t, h, "/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: %d", code)
	}
	sc := decodeAs[obs.Scorecard](t, body)
	if len(sc.Objectives) != len(DefaultSLOs()) {
		t.Fatalf("objectives = %d, want %d", len(sc.Objectives), len(DefaultSLOs()))
	}
	for _, obj := range sc.Objectives {
		if obj.Status != "ok" {
			t.Fatalf("%s status = %q on healthy traffic", obj.Name, obj.Status)
		}
	}
}

func TestDebugSlowLogEndpoint(t *testing.T) {
	clk := newStepClock()
	srv := observedServer(t, clk, Config{})
	h := srv.Handler()
	get(t, h, "/v1/domain/alpha.com")
	get(t, h, "/v1/day/2016-02-01") // 404 still logged

	code, body := get(t, h, "/debug/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d", code)
	}
	resp := decodeAs[struct {
		PerRouteCapacity int                        `json:"per_route_capacity"`
		Routes           map[string][]obs.SlowQuery `json:"routes"`
	}](t, body)
	if resp.PerRouteCapacity != obs.DefaultSlowLogSize {
		t.Fatalf("capacity = %d", resp.PerRouteCapacity)
	}
	if len(resp.Routes["domain"]) != 1 || resp.Routes["domain"][0].Detail != "/v1/domain/alpha.com" {
		t.Fatalf("domain slowlog = %+v", resp.Routes["domain"])
	}
	if len(resp.Routes["day"]) != 1 || resp.Routes["day"][0].Status != http.StatusNotFound {
		t.Fatalf("day slowlog = %+v", resp.Routes["day"])
	}
}

func TestDebugTopKEndpoint(t *testing.T) {
	clk := newStepClock()
	srv := observedServer(t, clk, Config{})
	h := srv.Handler()
	get(t, h, "/v1/domain/alpha.com")
	get(t, h, "/v1/domain/alpha.com")
	get(t, h, "/v1/domain/beta.com")
	get(t, h, "/v1/provider/Akamai/series")

	code, body := get(t, h, "/debug/topk")
	if code != http.StatusOK {
		t.Fatalf("/debug/topk: %d", code)
	}
	resp := decodeAs[map[string]struct {
		K          int             `json:"k"`
		Total      uint64          `json:"total"`
		ErrorBound uint64          `json:"error_bound"`
		Top        []obs.TopKEntry `json:"top"`
	}](t, body)
	dom := resp["domain"]
	if dom.Total != 3 || len(dom.Top) != 2 || dom.Top[0].Key != "alpha.com" || dom.Top[0].Count != 2 {
		t.Fatalf("domain topk = %+v", dom)
	}
	if resp["provider"].Top[0].Key != "akamai" {
		t.Fatalf("provider topk = %+v", resp["provider"])
	}
}

func TestStatsEmbedsObservatory(t *testing.T) {
	clk := newStepClock()
	srv := observedServer(t, clk, Config{})
	h := srv.Handler()
	get(t, h, "/v1/domain/alpha.com")

	_, body := get(t, h, "/v1/stats")
	resp := decodeAs[StatsResponse](t, body)
	if resp.Observatory == nil {
		t.Fatalf("stats missing observatory digest")
	}
	if resp.Observatory.Routes["domain"].Requests5m != 1 {
		t.Fatalf("observatory route digest = %+v", resp.Observatory.Routes)
	}
	if len(resp.Observatory.SLOStatus) != len(DefaultSLOs()) {
		t.Fatalf("slo statuses = %+v", resp.Observatory.SLOStatus)
	}
}

func TestObservatoryOff(t *testing.T) {
	srv := fixtureServer(t, Config{ObservatoryOff: true})
	h := srv.Handler()
	if srv.Observatory() != nil {
		t.Fatalf("observatory present despite ObservatoryOff")
	}
	code, _ := get(t, h, "/v1/domain/alpha.com")
	if code != http.StatusOK {
		t.Fatalf("serving broken without observatory: %d", code)
	}
	if code, _ := get(t, h, "/debug/slo"); code != http.StatusNotFound {
		t.Fatalf("/debug/slo mounted despite ObservatoryOff: %d", code)
	}
	_, body := get(t, h, "/v1/stats")
	resp := decodeAs[StatsResponse](t, body)
	if resp.Observatory != nil {
		t.Fatalf("stats carries observatory despite ObservatoryOff")
	}
}
