package api

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	// One shard, capacity 2: deterministic eviction order.
	c := newCache(2, 1)
	body := func(s string) cached { return cached{status: http.StatusOK, body: []byte(s)} }
	c.put("a", body("A"), c.generation())
	c.put("b", body("B"), c.generation())
	// Touch "a" so "b" is the coldest, then overflow.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("c", body("C"), c.generation())
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Refreshing an existing key replaces the value without growing.
	c.put("a", body("A2"), c.generation())
	if v, _ := c.get("a"); string(v.body) != "A2" {
		t.Fatalf("refresh lost: %q", v.body)
	}
	if c.len() != 2 {
		t.Fatalf("len after refresh = %d", c.len())
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := newCache(100, 5) // rounds up to 8 shards
	if len(c.shards) != 8 || c.mask != 7 {
		t.Fatalf("shards = %d mask = %d", len(c.shards), c.mask)
	}
	// Tiny caches still hold at least one entry per shard.
	c = newCache(1, 16)
	for _, s := range c.shards {
		if s.cap != 1 {
			t.Fatalf("per-shard cap = %d", s.cap)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%100)
				if v, ok := c.get(k); ok {
					if string(v.body) != k {
						t.Errorf("corrupt value for %s: %q", k, v.body)
						return
					}
				} else {
					c.put(k, cached{status: 200, body: []byte(k)}, c.generation())
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 3)
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.allow() {
		t.Fatal("allowed beyond burst")
	}
	// Simulate the passage of 150ms: at 10 tokens/s that refills 1.5
	// tokens — exactly one more request.
	b.mu.Lock()
	b.last = b.last.Add(-150 * time.Millisecond)
	b.mu.Unlock()
	if !b.allow() {
		t.Fatal("refilled token denied")
	}
	if b.allow() {
		t.Fatal("half a token should not admit")
	}

	// Refill never exceeds burst.
	b.mu.Lock()
	b.last = b.last.Add(-time.Hour)
	b.mu.Unlock()
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("post-idle token %d denied", i)
		}
	}
	if b.allow() {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	if b := newTokenBucket(5, 0); b.burst != 5 {
		t.Fatalf("default burst = %v, want rate", b.burst)
	}
	if b := newTokenBucket(0.1, 0); b.burst != 1 {
		t.Fatalf("sub-1 rate burst = %v, want 1", b.burst)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})

	const n = 10
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		val, shared := g.do("k", func() cached {
			execs.Add(1)
			close(started)
			<-block
			return cached{status: 200, body: []byte("once")}
		})
		if shared || string(val.body) != "once" {
			t.Errorf("leader: shared=%v val=%q", shared, val.body)
		}
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared := g.do("k", func() cached {
				execs.Add(1)
				return cached{status: 200, body: []byte("again")}
			})
			if shared {
				sharedCount.Add(1)
			}
			if string(val.body) != "once" && string(val.body) != "again" {
				t.Errorf("bad value %q", val.body)
			}
		}()
	}
	// Let the followers reach the flight, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	// Everyone who joined while the leader was blocked shared its result;
	// stragglers re-execute (the key is gone), which is correct — the
	// response cache above makes that case rare.
	if execs.Load()+sharedCount.Load() != n {
		t.Fatalf("execs=%d shared=%d, want sum %d", execs.Load(), sharedCount.Load(), n)
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no follower coalesced despite blocked leader")
	}
}

func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var wg sync.WaitGroup
	var execs atomic.Int64
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			val, shared := g.do(key, func() cached {
				execs.Add(1)
				return cached{status: 200, body: []byte(key)}
			})
			if shared || string(val.body) != key {
				t.Errorf("%s: shared=%v val=%q", key, shared, val.body)
			}
		}(i)
	}
	wg.Wait()
	if execs.Load() != 20 {
		t.Fatalf("execs = %d, want 20 (distinct keys must not coalesce)", execs.Load())
	}
}

func TestFnvShardSpread(t *testing.T) {
	// Sanity: request-like keys spread across shards rather than piling
	// onto one (a weak hash here would serialize the whole cache).
	c := newCache(1024, 16)
	counts := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("domain /v1/domain/site%04d.com", i)
		counts[fnv64a(k)&c.mask]++
	}
	if len(counts) < 12 {
		t.Fatalf("keys landed on only %d/16 shards", len(counts))
	}
	for shard, n := range counts {
		if n > 250 {
			t.Fatalf("shard %d got %d/1000 keys", shard, n)
		}
	}
}
