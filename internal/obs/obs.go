// Package obs is the observability substrate for the measurement pipeline:
// a dependency-free metrics core (atomic counters, gauges, and fixed-bucket
// latency histograms with quantile estimation, grouped in a concurrent
// Registry with labeled children), a log/slog-based structured logging
// setup, and an HTTP exposition server publishing Prometheus-text
// /metrics, expvar-style /debug/vars, and net/http/pprof profiles.
//
// The paper's measurement platform (§3.1, Fig 1) is a long-running
// three-stage system — zone acquisition, worker-cloud resolution, storage
// — whose operators trust it because every stage exposes counters and
// latency distributions. This package gives the reproduction the same
// substrate: each hot layer (dnsclient, dnsserver, transport, measure,
// store, experiment) registers its metrics on the process-wide Default
// registry at package init, and binaries opt into exposition with a
// -metrics-addr flag.
//
// Recording is wait-free (a single atomic op per counter/gauge update,
// two per histogram observation) so instrumentation never perturbs the
// measured semantics; mode-equivalence tests assert byte-identical rows
// with instrumentation compiled in.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters are normally obtained from a Registry so they are
// exposed on /metrics.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits so
// utilizations and rates fit alongside integral levels.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
	kindWindowCounter
	kindWindowHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec, kindWindowCounter:
		// Windowed counters age out old buckets, so the exposed
		// per-window totals can go down: a gauge, not a counter.
		return "gauge"
	case kindHistogram, kindHistogramVec, kindWindowHistogram:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered metric family.
type entry struct {
	name string
	help string
	kind metricKind
	m    any
}

// Registry groups named metrics for exposition. All methods are safe for
// concurrent use; registration is idempotent (asking for an existing name
// returns the existing metric) but re-registering a name as a different
// kind panics, as that is a programming error.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // registration order, for stable exposition
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry instrumented packages
// register on at init.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register returns the existing entry for name or creates one with make.
func (r *Registry) register(name, help string, kind metricKind, mk func() any) any {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e.m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e.m
	}
	m := mk()
	r.entries[name] = &entry{name: name, help: help, kind: kind, m: m}
	r.order = append(r.order, name)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) a histogram. bounds are the ascending
// bucket upper bounds in seconds (or any unit); nil uses DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func() any { return newHistogram(bounds) }).(*Histogram)
}

// CounterVec registers (or fetches) a family of counters keyed by one
// label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, help, kindCounterVec, func() any {
		return &CounterVec{label: label, children: make(map[string]*Counter)}
	}).(*CounterVec)
}

// GaugeVec registers (or fetches) a family of gauges keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return r.register(name, help, kindGaugeVec, func() any {
		return &GaugeVec{label: label, children: make(map[string]*Gauge)}
	}).(*GaugeVec)
}

// HistogramVec registers (or fetches) a family of histograms keyed by one
// label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return r.register(name, help, kindHistogramVec, func() any {
		return &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	}).(*HistogramVec)
}

// WindowCounter registers (or fetches) a rolling windowed counter; its
// trailing-window totals are exposed as gauges with a window label. Zero
// step/span use DefaultWindowStep / SlowWindow.
func (r *Registry) WindowCounter(name, help string, step, span time.Duration) *WindowedCounter {
	return r.register(name, help, kindWindowCounter, func() any {
		return NewWindowedCounter(step, span, nil)
	}).(*WindowedCounter)
}

// WindowHistogram registers (or fetches) a rolling windowed histogram;
// the trailing fast/slow windows are exposed as histogram series with a
// window label. Nil bounds use DefBuckets.
func (r *Registry) WindowHistogram(name, help string, bounds []float64, step, span time.Duration) *WindowedHistogram {
	return r.register(name, help, kindWindowHistogram, func() any {
		return NewWindowedHistogram(bounds, step, span, nil)
	}).(*WindowedHistogram)
}

// RegisterWindowCounter adopts an already-constructed windowed counter
// (e.g. one built with an injected clock) under name. If the name is
// already registered the existing counter wins and is returned, so
// concurrent components share one series.
func (r *Registry) RegisterWindowCounter(name, help string, w *WindowedCounter) *WindowedCounter {
	return r.register(name, help, kindWindowCounter, func() any { return w }).(*WindowedCounter)
}

// RegisterWindowHistogram adopts an already-constructed windowed
// histogram under name; an existing registration wins and is returned.
func (r *Registry) RegisterWindowHistogram(name, help string, w *WindowedHistogram) *WindowedHistogram {
	return r.register(name, help, kindWindowHistogram, func() any { return w }).(*WindowedHistogram)
}

// Lookup returns the registered metric (a *Counter, *Gauge, *Histogram,
// a windowed type, or vec) by name.
func (r *Registry) Lookup(name string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.m, true
}

// Names lists the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// CounterVec is a family of counters distinguished by one label value
// (e.g. dns_client_rcode_total{rcode="NXDOMAIN"}).
type CounterVec struct {
	mu       sync.RWMutex
	label    string
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

func (v *CounterVec) sortedValues() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.children))
	for val := range v.children {
		out = append(out, val)
	}
	sort.Strings(out)
	return out
}

// GaugeVec is a family of gauges distinguished by one label value.
type GaugeVec struct {
	mu       sync.RWMutex
	label    string
	children map[string]*Gauge
}

// With returns the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g
	}
	g = &Gauge{}
	v.children[value] = g
	return g
}

func (v *GaugeVec) sortedValues() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.children))
	for val := range v.children {
		out = append(out, val)
	}
	sort.Strings(out)
	return out
}

// HistogramVec is a family of histograms distinguished by one label value
// (e.g. measure_stage_seconds{stage="resolution"}).
type HistogramVec struct {
	mu       sync.RWMutex
	label    string
	bounds   []float64
	children map[string]*Histogram
}

// With returns the child histogram for the label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h = newHistogram(v.bounds)
	v.children[value] = h
	return h
}

func (v *HistogramVec) sortedValues() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.children))
	for val := range v.children {
		out = append(out, val)
	}
	sort.Strings(out)
	return out
}
