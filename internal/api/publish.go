package api

// Publishing a new index generation onto a live server. The swap itself
// is one atomic pointer store — in-flight requests finish against the
// snapshot they resolved — and the response cache is then invalidated
// *precisely*: only keys whose answers a delta could have changed are
// swept, so a day landing in the feed does not cold-start the cache for
// every other day and domain.
//
// Per route, a delta for days D and domains S invalidates:
//
//   - domain: keys naming a domain in S (including cached 404s for
//     domains that just gained their first detection);
//   - series: every key — the §4.2 smoothing is global over each
//     provider's series, so any new day perturbs every smoothed value;
//   - day:    keys naming a day in D (including cached 404s for a day
//     that just became indexed);
//   - stats:  nothing — stats responses are volatile and never cached.
//
// Keys that fail to parse back into a domain or day are swept
// conservatively.

import (
	"net/url"
	"strings"

	"dpsadopt/internal/simtime"
)

// Freshness is the live-follow digest embedded in /v1/stats when the
// server is tailing a feed (see SetFreshnessFunc).
type Freshness struct {
	// Following is the feed target (coordination directory or dataset
	// file) and Mode how it is tailed ("coord" or "dataset").
	Following string `json:"following"`
	Mode      string `json:"mode"`
	// Epoch is the served index's version (one per applied delta).
	Epoch uint64 `json:"epoch"`
	// Partitions counts (source, day) partitions applied since start;
	// Lag counts partitions committed upstream but not yet applied;
	// Skipped counts partitions abandoned as damaged (quarantined).
	Partitions int `json:"partitions_applied"`
	Lag        int `json:"lag_partitions"`
	Skipped    int `json:"skipped_partitions"`
	// LastApply is when the newest delta was published (RFC 3339; empty
	// until the first apply).
	LastApply string `json:"last_apply,omitempty"`
}

// SetFreshnessFunc installs the callback /v1/stats uses to report
// live-follow freshness. fn must be safe for concurrent use.
func (s *Server) SetFreshnessFunc(fn func() *Freshness) { s.freshFn.Store(fn) }

// Index returns the currently served index snapshot.
func (s *Server) Index() *Index { return s.idx.Load() }

// Publish atomically swaps the serving index and invalidates exactly
// the cache keys delta touches. A nil delta (initial load, or a full
// rebuild) flushes the whole cache. The old index remains valid for
// requests that already resolved it.
func (s *Server) Publish(idx *Index, delta *Delta) {
	s.idx.Store(idx)
	mIndexSwaps.Inc()
	mIndexEpoch.Set(float64(idx.Epoch()))
	if s.cache == nil {
		return
	}
	var dropped int
	if delta == nil {
		dropped = s.cache.sweep(func(string) bool { return true })
	} else {
		days := make(map[simtime.Day]bool, len(delta.Days))
		for _, d := range delta.Days {
			days[d] = true
		}
		dropped = s.cache.sweep(func(key string) bool {
			return deltaTouchesKey(delta, days, key)
		})
	}
	mCacheInvalidated.Add(int64(dropped))
}

// deltaTouchesKey decides whether one cache key ("route URI") could
// answer differently under the delta. Unparseable keys report true.
func deltaTouchesKey(delta *Delta, days map[simtime.Day]bool, key string) bool {
	route, uri, ok := strings.Cut(key, " ")
	if !ok {
		return true
	}
	switch route {
	case "series":
		return true
	case "domain":
		raw, ok := pathArg(uri, "/v1/domain/")
		if !ok {
			return true
		}
		name, err := url.PathUnescape(raw)
		if err != nil {
			return true
		}
		// Normalize exactly as handleDomain does before its lookup.
		return delta.Domains[strings.ToLower(strings.TrimSuffix(name, "."))]
	case "day":
		raw, ok := pathArg(uri, "/v1/day/")
		if !ok {
			return true
		}
		d, err := simtime.Parse(raw)
		if err != nil {
			return true
		}
		return days[d]
	default:
		// stats is volatile and never cached; an unknown route has no
		// known shape — sweep it to stay correct.
		return route != "stats"
	}
}

// pathArg extracts the single path argument of a route URI: the segment
// after prefix, with any query string stripped.
func pathArg(uri, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(uri, prefix)
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}
