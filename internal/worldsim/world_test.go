package worldsim

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"dpsadopt/internal/bgp"
	"dpsadopt/internal/ipam"
	"dpsadopt/internal/simtime"
)

// testWorld builds a small world (scale 1:20000) once per test binary.
var testWorldCache *World

func getWorld(t testing.TB) *World {
	t.Helper()
	if testWorldCache == nil {
		w, err := New(DefaultConfig(20000))
		if err != nil {
			t.Fatal(err)
		}
		testWorldCache = w
	}
	return testWorldCache
}

func TestWorldSizes(t *testing.T) {
	w := getWorld(t)
	s := w.Stats()
	// 140M/20000 = 7000 at start; observed over period slightly higher.
	if s.ByTLD["com"] < 5000 || s.ByTLD["com"] > 8000 {
		t.Errorf("com domains = %d", s.ByTLD["com"])
	}
	if s.ByTLD["nl"] < 250 || s.ByTLD["nl"] > 350 {
		t.Errorf("nl domains = %d", s.ByTLD["nl"])
	}
	if s.Customers == 0 || s.OnDemand == 0 {
		t.Errorf("customers = %d, ondemand = %d", s.Customers, s.OnDemand)
	}
	// gTLD active counts: start ≈ 7000, end ≈ 7610 (1.087×).
	start, end := 0, 0
	for _, tld := range GTLDs() {
		start += w.TLDs[tld].ActiveCount(0)
		end += w.TLDs[tld].ActiveCount(549)
	}
	ratio := float64(end) / float64(start)
	if ratio < 1.06 || ratio > 1.12 {
		t.Errorf("namespace expansion = %.3f (start %d, end %d), want ≈1.087", ratio, start, end)
	}
}

func TestDeterministicBuild(t *testing.T) {
	cfg := DefaultConfig(50000)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("domain counts differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for i := range a.Domains {
		da, db := a.Domains[i], b.Domains[i]
		if da.Name != db.Name || da.Operator != db.Operator || (da.Cust == nil) != (db.Cust == nil) {
			t.Fatalf("domain %d differs: %+v vs %+v", i, da, db)
		}
	}
	// Spot-check states match.
	for _, day := range []simtime.Day{0, 100, 400} {
		for i := 0; i < len(a.Domains); i += 97 {
			sa, sb := a.StateFor(a.Domains[i], day), b.StateFor(b.Domains[i], day)
			if sa.WWWCNAME != sb.WWWCNAME || len(sa.ApexA) != len(sb.ApexA) {
				t.Fatalf("state differs for %s day %v", a.Domains[i].Name, day)
			}
		}
	}
}

func findCustomer(w *World, provider int, profile Profile, onDemand bool) *Domain {
	for _, d := range w.Domains {
		if c := d.Cust; c != nil && c.Provider == provider && c.Profile == profile && c.OnDemand == onDemand && d.TLD != "nl" {
			if !onDemand && c.Sub.Start < w.Cfg.Window.Start && c.Sub.End > w.Cfg.Window.End {
				return d
			}
			if onDemand && len(c.Peaks) >= 3 &&
				d.Life.Start < c.Peaks[0].Start && d.Life.End > c.Peaks[0].End {
				return d
			}
		}
	}
	return nil
}

func TestStateCloudFlareNSProxied(t *testing.T) {
	w := getWorld(t)
	d := findCustomer(w, CloudFlare, ProfileNSProxied, false)
	if d == nil {
		t.Fatal("no CloudFlare NS-proxied customer in world")
	}
	st := w.StateFor(d, 100)
	if !st.Exists || len(st.NSHosts) == 0 {
		t.Fatalf("state = %+v", st)
	}
	for _, ns := range st.NSHosts {
		if !hasSuffix(ns, ".ns.cloudflare.com") {
			t.Errorf("NS host %q not under cloudflare.com", ns)
		}
	}
	// Address must be CloudFlare-announced.
	rib := w.RIBForDay(100)
	origins, _, ok := rib.Origins(st.ApexA[0])
	if !ok || origins[0] != 13335 {
		t.Errorf("apex origin = %v (%v)", origins, ok)
	}
}

func TestStateIncapsulaCNAME(t *testing.T) {
	w := getWorld(t)
	d := findCustomer(w, Incapsula, ProfileCNAME, false)
	if d == nil {
		t.Fatal("no Incapsula CNAME customer")
	}
	st := w.StateFor(d, 100)
	if !hasSuffix(st.WWWCNAME, ".incapdns.net") {
		t.Errorf("CNAME = %q", st.WWWCNAME)
	}
	rib := w.RIBForDay(100)
	origins, _, _ := rib.Origins(st.ApexA[0])
	if len(origins) == 0 || origins[0] != 19551 {
		t.Errorf("origin = %v", origins)
	}
	// NS must NOT be Incapsula's (no delegation).
	for _, ns := range st.NSHosts {
		if hasSuffix(ns, ".incapsecuredns.net") {
			t.Errorf("unexpected delegation: %q", ns)
		}
	}
}

func TestStateVerisignNSOnly(t *testing.T) {
	w := getWorld(t)
	d := findCustomer(w, Verisign, ProfileNSOnly, false)
	if d == nil {
		t.Fatal("no Verisign NS-only customer")
	}
	st := w.StateFor(d, 100)
	found := false
	for _, ns := range st.NSHosts {
		if hasSuffix(ns, ".verisigndns.com") {
			found = true
		}
	}
	if !found {
		t.Errorf("NS hosts = %v", st.NSHosts)
	}
	// Addresses stay on the customer's own hosting: NOT Verisign ASes.
	rib := w.RIBForDay(100)
	origins, _, ok := rib.Origins(st.ApexA[0])
	if !ok {
		t.Fatal("no route for NS-only customer address")
	}
	for _, o := range origins {
		if o == 26415 || o == 30060 {
			t.Errorf("NS-only customer routed to Verisign: %v", origins)
		}
	}
}

func TestStateOnDemandFlips(t *testing.T) {
	w := getWorld(t)
	d := findCustomer(w, Incapsula, ProfileA, true)
	if d == nil {
		// fall back to any provider's on-demand A customer
		for pi := 0; pi < NumProviders && d == nil; pi++ {
			d = findCustomer(w, pi, ProfileA, true)
		}
	}
	if d == nil {
		t.Fatal("no on-demand A customer")
	}
	c := d.Cust
	peak := c.Peaks[0]
	inPeak := w.StateFor(d, peak.Start)
	cloud := w.Providers[c.Provider].CloudAddr(0, 0)
	_ = cloud
	outside := w.StateFor(d, peak.End)
	if inPeak.ApexA[0] == outside.ApexA[0] {
		t.Errorf("on-demand A customer address did not flip: %v", inPeak.ApexA[0])
	}
	// "a domain switches back and forth between two IP addresses over
	// time of which the prior does not and the latter does reference a
	// DPS" (§3.4).
	rib := w.RIBForDay(peak.Start)
	origins, _, _ := rib.Origins(inPeak.ApexA[0])
	providerASNs := map[bgp.ASN]bool{}
	for _, as := range w.Providers[c.Provider].Spec.ASes {
		providerASNs[as.ASN] = true
	}
	if len(origins) == 0 || !providerASNs[origins[0]] {
		t.Errorf("peak origin = %v, want one of %v", origins, providerASNs)
	}
}

func TestWixMarch2015Peak(t *testing.T) {
	w := getWorld(t)
	peak := simtime.FromDate(2015, time.March, 5)
	quiet := simtime.FromDate(2015, time.April, 10)
	var wixDomain *Domain
	for _, d := range w.Domains {
		if d.Operator == OpWix && d.OpIdx == 0 {
			wixDomain = d
			break
		}
	}
	if wixDomain == nil {
		t.Fatal("no Wix domain")
	}
	// Quiet day: CNAME to amazonaws.com, routed to AWS.
	st := w.StateFor(wixDomain, quiet)
	if !hasSuffix(st.WWWCNAME, ".amazonaws.com") {
		t.Errorf("quiet CNAME = %q", st.WWWCNAME)
	}
	rib := w.RIBForDay(quiet)
	if o, _, _ := rib.Origins(st.ApexA[0]); len(o) == 0 || o[0] != 14618 {
		t.Errorf("quiet origin = %v", o)
	}
	// Peak day: no CNAME, A record in Wix space announced by Incapsula.
	st = w.StateFor(wixDomain, peak)
	if st.WWWCNAME != "" {
		t.Errorf("peak still has CNAME %q", st.WWWCNAME)
	}
	rib = w.RIBForDay(peak)
	if o, _, _ := rib.Origins(st.ApexA[0]); len(o) == 0 || o[0] != 19551 {
		t.Errorf("peak origin = %v", o)
	}
	// NS stays Wix's own throughout.
	if !hasSuffix(st.NSHosts[0], ".wixdns.net") {
		t.Errorf("NS = %v", st.NSHosts)
	}
}

func TestWixF5OpposingSwing(t *testing.T) {
	w := getWorld(t)
	var d *Domain
	for _, dd := range w.Domains {
		if dd.Operator == OpWixF5 && dd.OpIdx == 0 {
			d = dd
			break
		}
	}
	if d == nil {
		t.Fatal("no Wix-F5 domain")
	}
	quiet := simtime.FromDate(2015, time.April, 10)
	peak := simtime.FromDate(2015, time.March, 5)
	stQ := w.StateFor(d, quiet)
	stP := w.StateFor(d, peak)
	// Addresses unchanged (BGP diversion).
	if stQ.ApexA[0] != stP.ApexA[0] {
		t.Errorf("BGP flip changed the address: %v vs %v", stQ.ApexA[0], stP.ApexA[0])
	}
	if o, _, _ := w.RIBForDay(quiet).Origins(stQ.ApexA[0]); len(o) == 0 || o[0] != 55002 {
		t.Errorf("quiet origin = %v, want F5", o)
	}
	if o, _, _ := w.RIBForDay(peak).Origins(stP.ApexA[0]); len(o) == 0 || o[0] != 19551 {
		t.Errorf("peak origin = %v, want Incapsula", o)
	}
}

func TestSedoOutage(t *testing.T) {
	w := getWorld(t)
	outage := simtime.FromDate(2015, time.November, 22)
	var d *Domain
	for _, dd := range w.Domains {
		if dd.Operator == OpSedo {
			d = dd
			break
		}
	}
	if d == nil {
		t.Fatal("no Sedo domain")
	}
	if st := w.StateFor(d, outage); !st.Unmeasurable {
		t.Error("Sedo domain measurable on outage day")
	}
	st := w.StateFor(d, outage+1)
	if st.Unmeasurable || !st.Exists {
		t.Error("Sedo domain should be back the next day")
	}
	// Normally an always-on Akamai customer.
	if o, _, _ := w.RIBForDay(outage + 1).Origins(st.ApexA[0]); len(o) == 0 || o[0] != 20940 {
		t.Errorf("Sedo baseline origin = %v, want Akamai", o)
	}
	if !hasSuffix(st.NSHosts[0], ".sedoparking.com") {
		t.Errorf("NS = %v", st.NSHosts)
	}
}

func TestFabulousTermination(t *testing.T) {
	w := getWorld(t)
	before := simtime.FromDate(2016, time.February, 1)
	after := simtime.FromDate(2016, time.February, 20)
	var d *Domain
	for _, dd := range w.Domains {
		if dd.Operator == OpFabulous {
			d = dd
			break
		}
	}
	if d == nil {
		t.Fatal("no Fabulous domain")
	}
	stB := w.StateFor(d, before)
	if o, _, _ := w.RIBForDay(before).Origins(stB.ApexA[0]); len(o) == 0 || o[0] != 3561 {
		t.Errorf("before origin = %v, want CenturyLink AS3561", o)
	}
	stA := w.StateFor(d, after)
	if o, _, _ := w.RIBForDay(after).Origins(stA.ApexA[0]); len(o) == 0 || o[0] != 24940 {
		t.Errorf("after origin = %v, want Fabulous", o)
	}
}

func TestNamecheapEpisode(t *testing.T) {
	w := getWorld(t)
	during := simtime.FromDate(2016, time.February, 10)
	var d *Domain
	for _, dd := range w.Domains {
		if dd.Operator == OpNamecheap && dd.OpIdx == 0 {
			d = dd
			break
		}
	}
	if d == nil {
		t.Fatal("no Namecheap domain")
	}
	st := w.StateFor(d, during)
	// NS stays Namecheap's registrar-servers.com but addresses are
	// CloudFlare-announced.
	if !hasSuffix(st.NSHosts[0], ".registrar-servers.com") {
		t.Errorf("NS = %v", st.NSHosts)
	}
	if o, _, _ := w.RIBForDay(during).Origins(st.ApexA[0]); len(o) == 0 || o[0] != 13335 {
		t.Errorf("episode origin = %v, want CloudFlare", o)
	}
}

func TestAlexaList(t *testing.T) {
	w := getWorld(t)
	day := w.Cfg.NLWindow.Start
	l1 := w.AlexaList(day)
	l2 := w.AlexaList(day)
	if len(l1) == 0 {
		t.Fatal("empty Alexa list")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("AlexaList not deterministic per day")
		}
	}
	next := w.AlexaList(day + 1)
	same := 0
	set := map[int]bool{}
	for _, i := range l1 {
		set[i] = true
	}
	for _, i := range next {
		if set[i] {
			same++
		}
	}
	if same == len(l1) {
		t.Error("Alexa tail never rotates")
	}
	if same < len(l1)*6/10 {
		t.Errorf("Alexa core unstable: %d/%d shared", same, len(l1))
	}
}

func TestAnnounceRangeExactCover(t *testing.T) {
	rib := bgp.NewRIB()
	block := netip.MustParsePrefix("10.50.0.0/18")
	announceRange(rib, block, 0, 550, 1111)
	announceRange(rib, block, 550, int(ipam.HostCount(block)), 2222)
	for _, tc := range []struct {
		n    uint64
		want bgp.ASN
	}{{0, 1111}, {549, 1111}, {550, 2222}, {551, 2222}, {16383, 2222}} {
		a, err := ipam.NthAddr(block, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		o, _, ok := rib.Origins(a)
		if !ok || o[0] != tc.want {
			t.Errorf("addr %d: origins %v, want %v", tc.n, o, tc.want)
		}
	}
}

func TestRegistrySeedsDiscovery(t *testing.T) {
	w := getWorld(t)
	// Every provider's ASes must be findable by the provider name — the
	// seed step of §3.3 — except Prolexic (AS32787), whose AS name
	// deliberately omits "Akamai" so discovery must recover it from SLD
	// co-occurrence.
	for i := range ProviderSpecs {
		spec := &ProviderSpecs[i]
		found := w.Registry.FindByName(spec.Name)
		want := len(spec.ASes)
		if i == Akamai {
			want--
		}
		if len(found) != want {
			t.Errorf("%s: found %v, want %d ASes", spec.Name, found, want)
		}
	}
}

func TestOnDemandPeakCounts(t *testing.T) {
	w := getWorld(t)
	for _, d := range w.Domains {
		if c := d.Cust; c != nil && c.OnDemand {
			if len(c.Peaks) < 3 {
				t.Fatalf("on-demand customer %s has %d peaks", d.Name, len(c.Peaks))
			}
			for i := 1; i < len(c.Peaks); i++ {
				if c.Peaks[i].Start < c.Peaks[i-1].End {
					t.Fatalf("overlapping peaks for %s", d.Name)
				}
			}
		}
	}
}

func TestNonexistentDomainState(t *testing.T) {
	w := getWorld(t)
	for _, d := range w.Domains {
		if d.Life.Start > 10 {
			if st := w.StateFor(d, 0); st.Exists {
				t.Fatalf("%s exists before registration", d.Name)
			}
			break
		}
	}
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func TestZoneFileRoundTrip(t *testing.T) {
	w := getWorld(t)
	var buf strings.Builder
	if err := w.WriteZoneFile("com", 100, &buf); err != nil {
		t.Fatal(err)
	}
	origin, names, err := ZoneFileDomains(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if origin != "com" {
		t.Errorf("origin = %q", origin)
	}
	// Every active .com domain is delegated exactly once.
	want := 0
	for _, d := range w.Domains {
		if d.TLD == "com" && d.Life.Contains(100) {
			want++
		}
	}
	if len(names) != want {
		t.Errorf("zone file delegates %d SLDs, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate delegation %s", n)
		}
		seen[n] = true
	}
	// Unknown TLD errors.
	if err := w.WriteZoneFile("xyz", 100, &buf); err == nil {
		t.Error("unknown TLD accepted")
	}
	// Sedo outage day: delegations still present (registry is fine, the
	// operator's servers are down).
	var sb strings.Builder
	outage := simtime.FromDate(2015, time.November, 22)
	if err := w.WriteZoneFile("com", outage, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sedoparking.com") {
		t.Error("outage day zone file lost Sedo delegations")
	}
}

func TestDualStackState(t *testing.T) {
	w := getWorld(t)
	day := simtime.Day(100)
	rib := w.RIBForDay(day)
	dualSeen, v4Only := 0, 0
	for _, d := range w.Domains {
		st := w.StateFor(d, day)
		if !st.Exists || st.Unmeasurable {
			continue
		}
		if len(st.ApexAAAA) > 0 {
			dualSeen++
			a6 := st.ApexAAAA[0]
			if !a6.Is6() || a6.Is4In6() {
				t.Fatalf("%s: AAAA %v not IPv6", d.Name, a6)
			}
			// Every published v6 address is routed, and for cloud-diverted
			// customers it originates at the same provider as the v4.
			o6, _, ok6 := rib.Origins(a6)
			o4, _, ok4 := rib.Origins(st.ApexA[0])
			if !ok6 || !ok4 {
				t.Fatalf("%s: unrouted address (v4 ok=%v, v6 ok=%v)", d.Name, ok4, ok6)
			}
			if c := d.Cust; c != nil && !c.OnDemand && c.Profile != ProfileBGP && c.Profile != ProfileNSOnly {
				if o6[0] != o4[0] {
					t.Errorf("%s: v4 origin %v != v6 origin %v", d.Name, o4, o6)
				}
			}
		} else {
			v4Only++
		}
	}
	if dualSeen == 0 {
		t.Fatal("no dual-stacked domains")
	}
	frac := float64(dualSeen) / float64(dualSeen+v4Only)
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("dual-stack share = %.3f, want ≈0.2 of eligible", frac)
	}
}
