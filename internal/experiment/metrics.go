package experiment

import "dpsadopt/internal/obs"

// Run-level progress metrics. A 550-day reproduction is a long-running
// job; these gauges make an in-flight run legible from /metrics without
// attaching a callback.
var (
	mDaysTotal = obs.Default().Gauge("experiment_days_total",
		"days in the configured run window")
	mDaysCompleted = obs.Default().Gauge("experiment_days_completed",
		"days measured and aggregated so far")
	mRowsSeen = obs.Default().Counter("experiment_rows_total",
		"rows folded into the aggregation across the run")
	mDetected = obs.Default().Gauge("experiment_detected_domains",
		"gTLD domains using any DPS on the most recent measured day")
	mDegradedDays = obs.Default().Counter("experiment_degraded_days_total",
		"wire days committed above the resolution failure threshold")
	mQueriesLost = obs.Default().Counter("experiment_queries_lost_total",
		"wire query attempts that expired unanswered, across the run")
	mFailureRate = obs.Default().Gauge("experiment_day_failure_rate",
		"resolution failure rate of the most recent measured day")
	// Rolling per-day wall time: the aging counterpart of the
	// cumulative gauges above. A slowdown mid-run (e.g. an injected
	// outage window forcing retries) shows up in the 5m/1h quantiles
	// and then decays, instead of being diluted into a run-wide mean.
	// Day bounds reuse the measure-stage scale: milliseconds for small
	// worlds up to minutes for the full namespace.
	mDayWindow = obs.Default().WindowHistogram("experiment_day_window_seconds",
		"rolling wall time per measured day over 5m and 1h windows",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
			1, 2.5, 5, 10, 30, 60, 120, 300}, 0, 0)
)
