package api

import "dpsadopt/internal/obs"

// Serving-path metrics, registered on the process-wide registry like
// every other instrumented layer. The registry's vecs carry one label,
// so the {route, code} pair is packed into a single route_code value
// ("domain:200").
var (
	mRequests = obs.Default().CounterVec("api_requests_total",
		"API requests by route and status code (route_code = route:code)", "route_code")
	mLatency = obs.Default().HistogramVec("api_request_seconds",
		"end-to-end request latency by route, admission included", "route", nil)
	mInflight = obs.Default().Gauge("api_inflight_requests",
		"requests currently inside the concurrency gate")
	mCacheHits = obs.Default().Counter("api_cache_hits_total",
		"requests answered from the sharded response cache")
	mCacheMisses = obs.Default().Counter("api_cache_misses_total",
		"requests that missed the response cache")
	mCacheEvictions = obs.Default().Counter("api_cache_evictions_total",
		"responses evicted from the cache under capacity pressure")
	mCoalesced = obs.Default().Counter("api_coalesced_total",
		"cache misses that shared another request's in-flight index walk")
	mRateLimited = obs.Default().Counter("api_rate_limited_total",
		"requests shed by the token bucket (429)")
	mShed = obs.Default().Counter("api_shed_total",
		"requests shed by the concurrency gate or deadline (503)")
	mIndexDomains = obs.Default().Gauge("api_index_domains",
		"detected domains resident in the read index")
	mIndexDays = obs.Default().Gauge("api_index_days",
		"measured days resident in the read index")
	mIndexBuildSeconds = obs.Default().Gauge("api_index_build_seconds",
		"wall time spent building the read index at load")
	mIndexSwaps = obs.Default().Counter("api_index_swaps_total",
		"index generations published onto the serving pointer")
	mIndexEpoch = obs.Default().Gauge("api_index_epoch",
		"epoch of the currently served index (0 = initial build)")
	mCacheInvalidated = obs.Default().Counter("api_cache_invalidated_total",
		"cache entries removed by delta-targeted invalidation sweeps")
	mCacheStaleFills = obs.Default().Counter("api_cache_stale_fills_total",
		"cache fills rejected because an index publish fenced them off")
)
