package trace

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsadopt/internal/obs"
)

func TestSpanNesting(t *testing.T) {
	tr := New(Config{Sample: 1})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day", Str("day", "100"))
	ctx2, stage := StartSpan(ctx, "measure.stage2")
	_, leaf := StartSpan(ctx2, "dnsclient.resolve", Str("name", "examp.le"))
	leaf.End()
	stage.End()
	root.End()

	got := tr.Ring().Recent(0)
	if len(got) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(got))
	}
	spans := got[0].Spans
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	// Spans land in end order: leaf, stage, root.
	if spans[2].Name != "experiment.day" || spans[2].Parent != 0 {
		t.Errorf("root = %q parent %v, want experiment.day with no parent", spans[2].Name, spans[2].Parent)
	}
	if spans[1].Parent != spans[2].ID {
		t.Errorf("stage parent = %v, want root %v", spans[1].Parent, spans[2].ID)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("leaf parent = %v, want stage %v", spans[0].Parent, spans[1].ID)
	}
	for _, sp := range spans {
		if sp.Trace != got[0].ID {
			t.Errorf("span %s carries trace %v, want %v", sp.Name, sp.Trace, got[0].ID)
		}
	}
	if got[0].Root().Name != "experiment.day" {
		t.Errorf("Root() = %q", got[0].Root().Name)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{})
	_, root := tr.StartRoot(context.Background(), "r")
	root.End()
	root.End()
	if n := tr.Ring().Len(); n != 1 {
		t.Fatalf("double End filed %d traces, want 1", n)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	if tr.Enabled() || tr.SampleName("a.b") || tr.Ring() != nil || tr.Close() != nil {
		t.Fatal("nil tracer methods not inert")
	}
	ctx2, child := StartSpan(ctx, "y")
	if child != nil || ctx2 != ctx {
		t.Fatal("StartSpan on span-less context not inert")
	}
	// Every nil-span method must be a no-op, not a panic.
	child.SetAttr(Str("k", "v"))
	child.End()
	if child.TraceID() != 0 || child.Tracer() != nil {
		t.Fatal("nil span accessors not zero")
	}
}

func TestSampleNameDeterministic(t *testing.T) {
	tr := New(Config{Sample: 0.5})
	names := []string{"a.example", "b.example", "c.example", "d.example", "e.example", "f.example", "g.example", "h.example"}
	first := make(map[string]bool)
	for _, n := range names {
		first[n] = tr.SampleName(n)
	}
	for i := 0; i < 100; i++ {
		for _, n := range names {
			if tr.SampleName(n) != first[n] {
				t.Fatalf("SampleName(%q) flapped", n)
			}
		}
	}
	if !New(Config{Sample: 1}).SampleName("any.name") {
		t.Error("rate 1 must sample everything")
	}
	if New(Config{Sample: 0}).SampleName("any.name") {
		t.Error("rate 0 must sample nothing")
	}
}

func TestSampleRateRoughlyHonoured(t *testing.T) {
	tr := New(Config{Sample: 0.25})
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if tr.SampleName("dom" + string(rune('a'+i%26)) + strings.Repeat("x", i%17) + ".example") {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.15 || frac > 0.35 {
		t.Errorf("sampled fraction %.3f, want ~0.25", frac)
	}
}

func TestForDomainSuppression(t *testing.T) {
	tr := New(Config{Sample: 0})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day")
	dctx := ForDomain(ctx, "unsampled.example")
	if sp := SpanFromContext(dctx); sp != nil {
		t.Fatal("unsampled domain context still carries a span")
	}
	_, child := StartSpan(dctx, "dnsclient.resolve")
	child.End() // must be a no-op nil span
	root.End()
	got := tr.Ring().Recent(1)
	if len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("suppressed subtree leaked spans: %+v", got)
	}

	// A sampled name keeps the span intact.
	tr2 := New(Config{Sample: 1})
	ctx2, root2 := tr2.StartRoot(context.Background(), "experiment.day")
	if SpanFromContext(ForDomain(ctx2, "sampled.example")) == nil {
		t.Fatal("sampled domain lost its span")
	}
	root2.End()
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{ID: TraceID(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Recent(0)
	want := []TraceID{5, 4, 3} // newest first, 1 and 2 evicted
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Errorf("Recent[%d] = %v, want %v", i, tr.ID, want[i])
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != 5 {
		t.Errorf("Recent(2) = %+v", got)
	}
}

func TestSlowSpanLogged(t *testing.T) {
	var buf bytes.Buffer
	old := obs.Logger()
	obs.SetLogger(obs.NewLogger(&buf, slog.LevelInfo, false))
	defer obs.SetLogger(old)

	tr := New(Config{Slow: time.Microsecond})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day")
	_, child := StartSpan(ctx, "dnsclient.resolve", Str("name", "slow.example"))
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	out := buf.String()
	if !strings.Contains(out, "slow span") {
		t.Fatalf("no slow-span log line in:\n%s", out)
	}
	if !strings.Contains(out, "experiment.day") || !strings.Contains(out, "dnsclient.resolve") {
		t.Errorf("slow-span log lacks full path:\n%s", out)
	}
	if !strings.Contains(out, root.TraceID().String()) {
		t.Errorf("slow-span log lacks trace id %s:\n%s", root.TraceID(), out)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Sample: 1, RingSize: 8})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, sp := StartSpan(ctx, "dnsclient.resolve")
				sp.SetAttr(Int("j", int64(j)))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	got := tr.Ring().Recent(1)
	if len(got) != 1 || len(got[0].Spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(got[0].Spans), 8*50+1)
	}
}

func TestDefaultTracer(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	tr := New(Config{Sample: 1})
	SetDefault(tr)
	if Default() != tr {
		t.Fatal("Default did not return the installed tracer")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
}
