// discovery runs the paper's §3.3 reference-discovery procedure: starting
// from nothing but AS-to-name data, one day of measurements, and active
// apex probes, it reconstructs each provider's Table 2 row — AS numbers,
// CNAME SLDs, NS SLDs — and compares against ground truth. It also shows
// why the filters matter, by printing the third-party SLDs (wixdns.net,
// sedoparking.com, ...) that raw co-occurrence would have swept in.
//
//	go run ./examples/discovery
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"strings"

	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	world, err := worldsim.New(worldsim.DefaultConfig(4000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("world:", world.Stats())

	// Measure one quiet day (no third-party anomaly in flight).
	day := simtime.FromDate(2015, 7, 25)
	st := store.New()
	pipeline := measure.New(world, st, measure.Config{Mode: measure.ModeDirect, Workers: 8})
	if err := pipeline.RunDay(context.Background(), day); err != nil {
		log.Fatal(err)
	}

	entries, err := pfx2as.Parse(strings.NewReader(world.RIBForDay(day).Snapshot()))
	if err != nil {
		log.Fatal(err)
	}
	table := pfx2as.NewWalk(entries)
	probe := func(sld string) (netip.Addr, bool) { return world.ProbeApex(sld, day) }

	truth := core.MustGroundTruth()
	fmt.Printf("\ndiscovering references from AS-to-name seeds (%s):\n\n", day)
	exact := 0
	for i := range truth.Providers {
		want := truth.Providers[i]
		got, err := core.Discover(st, worldsim.GTLDs(), day, world.Registry, want.Name, table, probe,
			core.DiscoveryConfig{MinSupport: 1, MinASSupport: 1})
		if err != nil {
			log.Fatal(err)
		}
		match := "EXACT  "
		if got.String() != want.String() {
			match = "PARTIAL"
		} else {
			exact++
		}
		fmt.Printf("[%s] %s\n", match, got)
	}
	fmt.Printf("\n%d/%d provider rows recovered exactly\n", exact, len(truth.Providers))

	// Show the counter-factual: the SLDs most frequent among
	// Incapsula-routed domains on a peak day would include Wix's.
	peak := simtime.FromDate(2015, 3, 5)
	if err := pipeline.RunDay(context.Background(), peak); err != nil {
		log.Fatal(err)
	}
	peakTable := tableFor(world, peak)
	got, err := core.Discover(st, worldsim.GTLDs(), peak, world.Registry, "Incapsula", peakTable,
		func(sld string) (netip.Addr, bool) { return world.ProbeApex(sld, peak) },
		core.DiscoveryConfig{MinSupport: 1, MinASSupport: 1, MinSpecificity: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun instead on the Wix peak day (%s) with a lax specificity filter:\n  %s\n", peak, got)
	fmt.Println("  — third-party SLDs leak in exactly as §3.3's manual pruning anticipates")
}

func tableFor(world *worldsim.World, day simtime.Day) pfx2as.Table {
	entries, err := pfx2as.Parse(strings.NewReader(world.RIBForDay(day).Snapshot()))
	if err != nil {
		log.Fatal(err)
	}
	return pfx2as.NewWalk(entries)
}
