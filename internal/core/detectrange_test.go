package core

import (
	"context"
	"testing"

	"dpsadopt/internal/obs"
)

// TestDetectRangeStats checks the stage-timing summary: stats account
// for every partition and row, the stage clocks are self-consistent,
// and utilization lands in (0, 1].
func TestDetectRangeStats(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	parts := Partitions(s)
	dets, st := DetectRangeStats(context.Background(), s, parts, refs, 2)
	if len(dets) != len(parts) {
		t.Fatalf("%d results for %d partitions", len(dets), len(parts))
	}
	if st.Partitions != len(parts) {
		t.Errorf("stats.Partitions = %d, want %d", st.Partitions, len(parts))
	}
	var rows int64
	for _, det := range dets {
		rows += int64(det.Rows)
	}
	if st.Rows != rows {
		t.Errorf("stats.Rows = %d, want %d", st.Rows, rows)
	}
	if st.Workers != 2 {
		t.Errorf("stats.Workers = %d, want 2", st.Workers)
	}
	if st.Wall <= 0 || st.Scan <= 0 {
		t.Errorf("non-positive clocks: wall=%v scan=%v", st.Wall, st.Scan)
	}
	if st.Busy() != st.Scan+st.Merge {
		t.Errorf("Busy() = %v, want scan+merge = %v", st.Busy(), st.Scan+st.Merge)
	}
	// Busy time cannot exceed pool capacity; utilization is a fraction.
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0, 1]", u)
	}
	if pps := st.PartitionsPerSec(); pps <= 0 {
		t.Errorf("partitions/sec = %v", pps)
	}
}

// TestDetectRangeStatsWorkerClamp: worker counts beyond the partition
// count are clamped, and the clamped pool still produces full stats
// (the ISSUE's workers > partitions case).
func TestDetectRangeStatsWorkerClamp(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	parts := Partitions(s)
	dets, st := DetectRangeStats(context.Background(), s, parts, refs, len(parts)*8)
	if st.Workers != len(parts) {
		t.Errorf("workers = %d, want clamp to %d partitions", st.Workers, len(parts))
	}
	for i, det := range dets {
		if det == nil {
			t.Fatalf("nil detection for %v", parts[i])
		}
	}
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0, 1]", u)
	}
}

// TestDetectRangeStatsEmpty: no partitions, zero stats, no divide-by-
// zero in the derived ratios.
func TestDetectRangeStatsEmpty(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	dets, st := DetectRangeStats(context.Background(), s, nil, refs, 4)
	if len(dets) != 0 || st.Partitions != 0 {
		t.Fatalf("empty input produced %d dets, stats %+v", len(dets), st)
	}
	if st.Utilization() != 0 || st.PartitionsPerSec() != 0 {
		t.Errorf("zero stats produced ratios: util=%v pps=%v", st.Utilization(), st.PartitionsPerSec())
	}
}

// TestRangeStatsAdd: accumulation folds counts and clocks and keeps the
// max worker count (per-day passes reuse one pool size).
func TestRangeStatsAdd(t *testing.T) {
	a := RangeStats{Partitions: 2, Rows: 10, Workers: 2, Wall: 100, Scan: 50, Merge: 20, QueueWait: 5, Barrier: 3}
	b := RangeStats{Partitions: 3, Rows: 20, Workers: 4, Wall: 200, Scan: 90, Merge: 30, QueueWait: 7, Barrier: 9}
	a.Add(b)
	if a.Partitions != 5 || a.Rows != 30 || a.Workers != 4 || a.Wall != 300 {
		t.Errorf("Add mismatch: %+v", a)
	}
	if a.Scan != 140 || a.Merge != 50 || a.QueueWait != 12 || a.Barrier != 12 {
		t.Errorf("Add clock mismatch: %+v", a)
	}
}

// TestDetectStageMetrics: one DetectRange pass populates every stage
// child of detect_stage_seconds and sets the utilization gauge.
func TestDetectStageMetrics(t *testing.T) {
	_, s := measuredWorld(t)
	refs := MustGroundTruth()
	parts := Partitions(s)

	before := map[string]uint64{}
	for _, stage := range []string{"queue_wait", "scan", "merge", "barrier"} {
		before[stage] = mDetectStage.With(stage).Count()
	}
	_, st := DetectRangeStats(context.Background(), s, parts, refs, 2)
	for _, stage := range []string{"queue_wait", "scan", "merge", "barrier"} {
		if got := mDetectStage.With(stage).Count(); got <= before[stage] {
			t.Errorf("detect_stage_seconds{stage=%q} count did not advance (%d -> %d)", stage, before[stage], got)
		}
	}
	m, ok := obs.Default().Lookup("detect_worker_utilization")
	if !ok {
		t.Fatal("detect_worker_utilization not registered")
	}
	if got := m.(*obs.Gauge).Value(); got != st.Utilization() {
		t.Errorf("utilization gauge = %v, want %v", got, st.Utilization())
	}
}
