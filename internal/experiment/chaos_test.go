package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dpsadopt/internal/simtime"
)

// TestDegradedAccountingDeterministic is the reproducibility guarantee:
// two runs with the same fault scenario and seed must produce
// byte-identical per-day accounting — every query, loss and give-up in
// the same place — regardless of worker scheduling.
func TestDegradedAccountingDeterministic(t *testing.T) {
	run := func() []byte {
		r, err := New(Config{
			Scale: 400000, Workers: 4, Days: 4,
			Wire: true, FaultScenario: "flaky-1pct", FaultSeed: 7,
			WireTimeout: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		acct := r.Accounting()
		if len(acct) != 4 {
			t.Fatalf("accounting rows = %d, want 4", len(acct))
		}
		var queries, lost int64
		for _, a := range acct {
			queries += a.Queries
			lost += a.Lost
		}
		if queries == 0 {
			t.Fatal("no queries accounted: wire mode did not run")
		}
		if lost == 0 {
			t.Fatal("no losses accounted: the 1% scenario injected nothing")
		}
		b, err := json.Marshal(acct)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("accounting differs between identically-seeded runs:\n%s\n%s", a, b)
	}
}

// TestChaosDegradedDayRecovery closes the loop of the robustness story:
// a dead-day scenario strikes a mid-run window, those days commit as
// degraded (visibly damaged raw counts), and the Fig 5 growth pipeline
// interpolates across the degraded mask so the trend survives the outage.
func TestChaosDegradedDayRecovery(t *testing.T) {
	var start simtime.Day
	badIdx := func(d simtime.Day) int { return int(d - start) }
	const badLo, badHi = 6, 11 // [badLo, badHi) are struck days
	r, err := New(Config{
		Scale: 1000000, Workers: 8, Days: 16,
		Wire: true, FaultScenario: "dead-day", FaultSeed: 7,
		FaultDays:   func(d simtime.Day) bool { i := badIdx(d); return i >= badLo && i < badHi },
		WireTimeout: 10, WireRetries: 1, WireRetryBudget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	start = r.Window().Start
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Exactly the struck days are committed degraded.
	for _, a := range r.Accounting() {
		bad := badIdx(a.Day) >= badLo && badIdx(a.Day) < badHi
		if a.Degraded != bad {
			t.Errorf("day %s (idx %d): degraded = %v, failure rate %.3f", a.Day, badIdx(a.Day), a.Degraded, a.FailureRate)
		}
		if bad && a.FailureRate <= r.Cfg.FailureThreshold {
			t.Errorf("struck day %s: failure rate %.3f not above threshold", a.Day, a.FailureRate)
		}
		if !bad && a.Lost != 0 {
			t.Errorf("quiet day %s lost %d queries", a.Day, a.Lost)
		}
	}
	if got := len(r.DegradedDays()); got != badHi-badLo {
		t.Fatalf("degraded days = %d, want %d", got, badHi-badLo)
	}

	// The raw namespace counts are visibly damaged on struck days...
	gtlds := []string{"com", "net", "org"}
	goodMeasured := r.Agg.SumMeasured(gtlds, start)
	badMeasured := r.Agg.SumMeasured(gtlds, start+badLo+2)
	if goodMeasured == 0 {
		t.Fatal("no domains measured on a quiet day")
	}
	if badMeasured >= goodMeasured*9/10 {
		t.Fatalf("struck day measured %d of %d domains: dead-day scenario did no damage", badMeasured, goodMeasured)
	}

	// ...but the smoothed, mask-interpolated expansion trend stays flat:
	// the outage does not read as namespace collapse.
	g := r.Figure5()
	if len(g.Expansion) == 0 {
		t.Fatal("no expansion series")
	}
	for i, v := range g.Expansion {
		if v < 0.9 || v > 1.1 {
			t.Errorf("expansion[%d] = %.3f: degraded window leaked into the smoothed trend", i, v)
		}
	}
}
