// Package core implements the paper's methodology (§3.3–§3.4): deriving
// DDoS-protection-service use from stored DNS measurements. Given the
// per-provider reference identities (AS numbers, CNAME second-level
// domains, NS second-level domains — Table 2), detection classifies every
// measured domain on every day by which references it exhibits; the
// discovery procedure reconstructs those identities from the measurement
// data itself, starting from AS-to-name seeds.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Method is a bitmask of reference kinds a domain exhibits toward a
// provider (§3.3: ASN, CNAME, and NS references).
type Method uint8

// Reference kinds.
const (
	RefAS Method = 1 << iota
	RefCNAME
	RefNS
)

// Has reports whether all bits of m2 are set.
func (m Method) Has(m2 Method) bool { return m&m2 == m2 }

// String renders e.g. "AS+CNAME".
func (m Method) String() string {
	var parts []string
	if m.Has(RefAS) {
		parts = append(parts, "AS")
	}
	if m.Has(RefCNAME) {
		parts = append(parts, "CNAME")
	}
	if m.Has(RefNS) {
		parts = append(parts, "NS")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ProviderRefs is one provider's reference identity (a Table 2 row).
type ProviderRefs struct {
	Name      string
	ASNs      []uint32
	CNAMESLDs []string
	NSSLDs    []string
}

// normalize sorts the reference lists for stable comparison.
func (p *ProviderRefs) normalize() {
	sort.Slice(p.ASNs, func(i, j int) bool { return p.ASNs[i] < p.ASNs[j] })
	sort.Strings(p.CNAMESLDs)
	sort.Strings(p.NSSLDs)
}

// String renders the row in Table 2 shape.
func (p ProviderRefs) String() string {
	asns := make([]string, len(p.ASNs))
	for i, a := range p.ASNs {
		asns[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("%-12s AS:%s CNAME:%s NS:%s",
		p.Name, strings.Join(asns, ","), strings.Join(p.CNAMESLDs, ","), strings.Join(p.NSSLDs, ","))
}

// References is the full provider reference database with lookup indexes.
type References struct {
	Providers []ProviderRefs

	byASN   map[uint32]int
	byCNAME map[string]int
	byNS    map[string]int
}

// NewReferences builds the indexes for a set of provider rows. Reference
// values must not collide across providers.
func NewReferences(provs []ProviderRefs) (*References, error) {
	r := &References{
		Providers: provs,
		byASN:     make(map[uint32]int),
		byCNAME:   make(map[string]int),
		byNS:      make(map[string]int),
	}
	for i := range r.Providers {
		r.Providers[i].normalize()
		p := &r.Providers[i]
		for _, a := range p.ASNs {
			if prev, dup := r.byASN[a]; dup && prev != i {
				return nil, fmt.Errorf("core: ASN %d claimed by %s and %s", a, r.Providers[prev].Name, p.Name)
			}
			r.byASN[a] = i
		}
		for _, s := range p.CNAMESLDs {
			if prev, dup := r.byCNAME[s]; dup && prev != i {
				return nil, fmt.Errorf("core: CNAME SLD %s claimed twice", s)
			}
			r.byCNAME[s] = i
		}
		for _, s := range p.NSSLDs {
			if prev, dup := r.byNS[s]; dup && prev != i {
				return nil, fmt.Errorf("core: NS SLD %s claimed twice", s)
			}
			r.byNS[s] = i
		}
	}
	return r, nil
}

// NumProviders returns the number of providers in the table.
func (r *References) NumProviders() int { return len(r.Providers) }

// ProviderIndex finds a provider by name.
func (r *References) ProviderIndex(name string) (int, bool) {
	for i := range r.Providers {
		if r.Providers[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// MatchASN returns the provider owning an origin AS.
func (r *References) MatchASN(asn uint32) (int, bool) {
	i, ok := r.byASN[asn]
	return i, ok
}

// MatchCNAME returns the provider owning a CNAME target's SLD.
func (r *References) MatchCNAME(target string) (int, bool) {
	i, ok := r.byCNAME[SLD(target)]
	return i, ok
}

// MatchNS returns the provider owning an NS host's SLD.
func (r *References) MatchNS(host string) (int, bool) {
	i, ok := r.byNS[SLD(host)]
	return i, ok
}
