package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Clock is an injectable time source for the windowed types. Production
// code leaves it nil (time.Now); tests drive it forward explicitly so
// bucket-rotation boundaries are exercised without wall-clock flakiness.
// Times must be after the Unix epoch.
type Clock func() time.Time

// Standard evaluation windows for the SLO engine (Google SRE-style
// multiwindow burn alerting: a fast window catches new fires, a slow
// window filters flapping).
const (
	FastWindow = 5 * time.Minute
	SlowWindow = time.Hour

	// DefaultWindowStep is the bucket width of the slot ring: windows
	// are resolved to this granularity, so a "5m" read actually covers
	// the last 30 buckets including the current partial one.
	DefaultWindowStep = 10 * time.Second
)

// Sentinel epochs for ring slots. Real epochs are UnixNano/step ticks of
// post-1970 clocks, so large negative values can never collide.
const (
	epochEmpty   = math.MinInt64     // slot never written
	epochClaimed = math.MinInt64 + 1 // slot mid-reset by a writer
)

// windowRing holds the geometry shared by WindowedCounter and
// WindowedHistogram: a ring of nslots buckets, each step wide, indexed by
// tick = UnixNano/step. A slot is valid for exactly one tick; the writer
// that first touches a recycled slot CASes its epoch to epochClaimed,
// zeroes it, then publishes the new tick. Readers merge only slots whose
// epoch matches the tick they expect and re-check the epoch after
// reading, so a concurrent recycle at worst drops that slot from one
// read instead of corrupting it.
type windowRing struct {
	step   int64 // bucket width in nanoseconds
	nslots int64
	clock  Clock
}

func (r *windowRing) init(step, span time.Duration, clock Clock) {
	if step <= 0 {
		step = DefaultWindowStep
	}
	if span <= 0 {
		span = SlowWindow
	}
	if clock == nil {
		clock = time.Now
	}
	n := int64(span / step)
	if n < 2 {
		n = 2
	}
	r.step = int64(step)
	r.nslots = n
	r.clock = clock
}

func (r *windowRing) tick(t time.Time) int64 { return t.UnixNano() / r.step }

// idx maps a tick to its slot, tolerating pre-epoch clocks.
func (r *windowRing) idx(tick int64) int {
	i := int(tick % r.nslots)
	if i < 0 {
		i += int(r.nslots)
	}
	return i
}

// ticksFor converts a window to a bucket count, clamped to [1, nslots].
func (r *windowRing) ticksFor(window time.Duration) int64 {
	k := int64(window) / r.step
	if k < 1 {
		k = 1
	}
	if k > r.nslots {
		k = r.nslots
	}
	return k
}

// Step returns the bucket width.
func (r *windowRing) Step() time.Duration { return time.Duration(r.step) }

// Span returns the longest window the ring can answer.
func (r *windowRing) Span() time.Duration { return time.Duration(r.step * r.nslots) }

// WindowedCounter counts events per fixed-duration bucket in a ring, so
// totals and rates over the trailing window (up to the ring span) can be
// read at any time. The hot path is one atomic add when the slot is
// current; recycling a slot costs one CAS. Unlike Counter it is not
// monotonic from a reader's perspective: old buckets age out.
type WindowedCounter struct {
	ring  windowRing
	slots []counterSlot
}

type counterSlot struct {
	epoch atomic.Int64
	n     atomic.Int64
}

// NewWindowedCounter creates a windowed counter with the given bucket
// step and total span (zero values use DefaultWindowStep / SlowWindow);
// nil clock uses time.Now.
func NewWindowedCounter(step, span time.Duration, clock Clock) *WindowedCounter {
	w := &WindowedCounter{}
	w.ring.init(step, span, clock)
	w.slots = make([]counterSlot, w.ring.nslots)
	for i := range w.slots {
		w.slots[i].epoch.Store(epochEmpty)
	}
	return w
}

// Step returns the bucket width.
func (w *WindowedCounter) Step() time.Duration { return w.ring.Step() }

// Span returns the longest answerable window.
func (w *WindowedCounter) Span() time.Duration { return w.ring.Span() }

// Add records n events now.
func (w *WindowedCounter) Add(n int64) { w.AddAt(w.ring.clock(), n) }

// AddAt records n events at time t (the injectable-clock form).
func (w *WindowedCounter) AddAt(t time.Time, n int64) {
	tick := w.ring.tick(t)
	s := &w.slots[w.ring.idx(tick)]
	for {
		switch e := s.epoch.Load(); {
		case e == tick:
			s.n.Add(n)
			return
		case e == epochClaimed:
			// Another writer is resetting this slot; retry.
		case e > tick:
			// The ring already advanced past this write's bucket
			// (a stale-clock or very slow writer): drop it.
			return
		default:
			if s.epoch.CompareAndSwap(e, epochClaimed) {
				s.n.Store(n)
				s.epoch.Store(tick)
				return
			}
		}
	}
}

// Total sums the trailing window (clamped to the ring span), including
// the current partial bucket.
func (w *WindowedCounter) Total(window time.Duration) int64 {
	return w.TotalAt(w.ring.clock(), window)
}

// TotalAt is Total evaluated as of time t.
func (w *WindowedCounter) TotalAt(t time.Time, window time.Duration) int64 {
	now := w.ring.tick(t)
	var sum int64
	for tk := now - w.ring.ticksFor(window) + 1; tk <= now; tk++ {
		s := &w.slots[w.ring.idx(tk)]
		if s.epoch.Load() != tk {
			continue
		}
		v := s.n.Load()
		if s.epoch.Load() != tk {
			continue // recycled mid-read
		}
		sum += v
	}
	return sum
}

// Rate returns events per second over the trailing window.
func (w *WindowedCounter) Rate(window time.Duration) float64 {
	return w.RateAt(w.ring.clock(), window)
}

// RateAt is Rate evaluated as of time t.
func (w *WindowedCounter) RateAt(t time.Time, window time.Duration) float64 {
	sec := (time.Duration(w.ring.ticksFor(window)) * w.ring.Step()).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(w.TotalAt(t, window)) / sec
}

// WindowedHistogram is a fixed-bucket histogram per ring slot: Observe
// lands in the current slot, and Merged folds the trailing window's
// slots into one WindowSnapshot for quantile and threshold queries. It
// shares bucket semantics (and DefBuckets) with Histogram but ages out
// old observations instead of accumulating forever.
type WindowedHistogram struct {
	ring   windowRing
	bounds []float64
	slots  []histSlot
}

type histSlot struct {
	epoch   atomic.Int64
	count   atomic.Uint64
	sumBits atomic.Uint64
	counts  []atomic.Uint64 // len(bounds)+1, last is overflow
}

// NewWindowedHistogram creates a windowed histogram; nil bounds use
// DefBuckets, zero step/span use DefaultWindowStep / SlowWindow, nil
// clock uses time.Now.
func NewWindowedHistogram(bounds []float64, step, span time.Duration, clock Clock) *WindowedHistogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	w := &WindowedHistogram{bounds: b}
	w.ring.init(step, span, clock)
	w.slots = make([]histSlot, w.ring.nslots)
	for i := range w.slots {
		w.slots[i].epoch.Store(epochEmpty)
		w.slots[i].counts = make([]atomic.Uint64, len(b)+1)
	}
	return w
}

// Step returns the bucket width.
func (w *WindowedHistogram) Step() time.Duration { return w.ring.Step() }

// Span returns the longest answerable window.
func (w *WindowedHistogram) Span() time.Duration { return w.ring.Span() }

// Bounds returns the value-bucket upper bounds (excluding +Inf).
func (w *WindowedHistogram) Bounds() []float64 { return append([]float64(nil), w.bounds...) }

// Observe records one value now.
func (w *WindowedHistogram) Observe(v float64) { w.ObserveAt(w.ring.clock(), v) }

// ObserveAt records one value at time t (the injectable-clock form).
func (w *WindowedHistogram) ObserveAt(t time.Time, v float64) {
	tick := w.ring.tick(t)
	s := &w.slots[w.ring.idx(tick)]
	for {
		e := s.epoch.Load()
		if e == tick {
			break
		}
		if e == epochClaimed {
			continue // another writer is resetting; wait for publish
		}
		if e > tick {
			return // ring advanced past this bucket
		}
		if s.epoch.CompareAndSwap(e, epochClaimed) {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.count.Store(0)
			s.sumBits.Store(0)
			s.epoch.Store(tick)
			break
		}
	}
	s.counts[bucketIndex(w.bounds, v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Merged folds the trailing window into one snapshot.
func (w *WindowedHistogram) Merged(window time.Duration) WindowSnapshot {
	return w.MergedAt(w.ring.clock(), window)
}

// MergedAt is Merged evaluated as of time t.
func (w *WindowedHistogram) MergedAt(t time.Time, window time.Duration) WindowSnapshot {
	now := w.ring.tick(t)
	k := w.ring.ticksFor(window)
	snap := WindowSnapshot{
		Window: time.Duration(k) * w.ring.Step(),
		Bounds: w.bounds,
		Counts: make([]uint64, len(w.bounds)+1),
	}
	tmp := make([]uint64, len(w.bounds)+1)
	for tk := now - k + 1; tk <= now; tk++ {
		s := &w.slots[w.ring.idx(tk)]
		if s.epoch.Load() != tk {
			continue
		}
		for i := range s.counts {
			tmp[i] = s.counts[i].Load()
		}
		count := s.count.Load()
		sum := math.Float64frombits(s.sumBits.Load())
		if s.epoch.Load() != tk {
			continue // recycled mid-read; drop this slot
		}
		for i, c := range tmp {
			snap.Counts[i] += c
		}
		snap.Count += count
		snap.Sum += sum
	}
	return snap
}

// WindowSnapshot is a merged read of a windowed histogram: per-bucket
// counts over the effective window, plus total count and sum. It is a
// plain value — safe to keep, compare, or serve — and answers quantile
// and threshold queries against the merged distribution.
type WindowSnapshot struct {
	Window time.Duration `json:"-"`
	Bounds []float64     `json:"-"`
	Counts []uint64      `json:"-"`
	Count  uint64        `json:"count"`
	Sum    float64       `json:"sum"`
}

// Quantile estimates the q-quantile of the merged window (same
// interpolation semantics as Histogram.Quantile; 0 when empty).
func (s WindowSnapshot) Quantile(q float64) float64 {
	return quantileFromCounts(s.Bounds, s.Counts, q)
}

// Mean returns the average observed value (0 when empty).
func (s WindowSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// GoodCount returns how many observations were <= threshold, along with
// the effective threshold used: fixed buckets cannot resolve arbitrary
// cutoffs, so the threshold snaps UP to the smallest bucket bound >= it
// (lenient — borderline observations count as good). A threshold beyond
// the largest finite bound counts every non-overflow observation and
// reports that largest bound.
func (s WindowSnapshot) GoodCount(threshold float64) (good uint64, effective float64) {
	i := bucketIndex(s.Bounds, threshold)
	if i >= len(s.Bounds) {
		i = len(s.Bounds) - 1
	}
	if i < 0 {
		return 0, threshold
	}
	for j := 0; j <= i; j++ {
		good += s.Counts[j]
	}
	return good, s.Bounds[i]
}

// bucketIndex returns the bucket an observation of v lands in: the first
// bound >= v, or len(bounds) for the overflow bucket.
func bucketIndex(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// quantileFromCounts estimates the q-quantile from per-bucket counts
// (len(bounds)+1, last overflow), interpolating linearly within the
// located bucket; empty counts return 0 and overflow ranks saturate at
// the largest finite bound.
func quantileFromCounts(bounds []float64, counts []uint64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: saturate at the largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}
