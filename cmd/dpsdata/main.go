// Command dpsdata inspects measurement dataset files written by
// cmd/dpsmeasure -out (the .dpsa binary archive): per-source statistics,
// row dumps, per-day DPS detection counts, and grep-style filtering.
//
// Usage:
//
//	dpsdata -data FILE                  # Table 1-style statistics
//	dpsdata -data FILE -dump com/0      # dump a partition (source/dayIndex)
//	dpsdata -data FILE -detect          # per-day per-provider counts
//	dpsdata -data FILE -grep cloudflare # rows whose strings match
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

func main() {
	var (
		data   = flag.String("data", "", "dataset file (.dpsa)")
		dump   = flag.String("dump", "", "partition to dump as source/day (day = index into the source's day list)")
		detect = flag.Bool("detect", false, "run Table 2 detection per stored day")
		grep   = flag.String("grep", "", "print rows whose NS/CNAME strings contain this substring")
		limit  = flag.Int("limit", 20, "max rows for -dump/-grep")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "dpsdata: -data FILE required")
		os.Exit(2)
	}
	s, err := store.Load(*data)
	if err != nil {
		fatal(err)
	}

	switch {
	case *dump != "":
		source, day, err := parsePartition(s, *dump)
		if err != nil {
			fatal(err)
		}
		n := 0
		s.ForEachRow(source, day, func(r store.Row) {
			if n >= *limit {
				return
			}
			n++
			printRow(r)
		})
	case *detect:
		refs := core.MustGroundTruth()
		for _, src := range s.Sources() {
			for _, day := range s.Days(src) {
				det := core.DetectDay(s, src, day, refs)
				fmt.Printf("%s %s: measured=%d any=%d", src, day, det.DomainsMeasured, det.CountAny())
				for p := range refs.Providers {
					if c := det.Count(p); c > 0 {
						fmt.Printf(" %s=%d", refs.Providers[p].Name, c)
					}
				}
				fmt.Println()
			}
		}
	case *grep != "":
		n := 0
		for _, src := range s.Sources() {
			for _, day := range s.Days(src) {
				s.ForEachRow(src, day, func(r store.Row) {
					if n >= *limit || !strings.Contains(r.Str, *grep) {
						return
					}
					n++
					fmt.Printf("%s %s: ", src, day)
					printRow(r)
				})
			}
		}
	default:
		fmt.Printf("%-8s %6s %10s %12s %14s\n", "source", "days", "#SLDs", "#DPs", "size(flate)")
		for _, src := range s.Sources() {
			st := s.SourceStats(src)
			fmt.Printf("%-8s %6d %10d %12d %13dB\n", src, st.Days, st.UniqueSLDs, st.DataPoints, st.CompressedBytes)
		}
	}
}

func parsePartition(s *store.Store, spec string) (string, simtime.Day, error) {
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("dpsdata: -dump wants source/dayIndex")
	}
	days := s.Days(parts[0])
	if len(days) == 0 {
		return "", 0, fmt.Errorf("dpsdata: no data for source %q", parts[0])
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil || idx < 0 || idx >= len(days) {
		return "", 0, fmt.Errorf("dpsdata: day index out of range [0,%d)", len(days))
	}
	return parts[0], days[idx], nil
}

func printRow(r store.Row) {
	if r.Str != "" {
		fmt.Printf("%-24s %-10s %s\n", r.Domain, r.Kind, r.Str)
	} else {
		fmt.Printf("%-24s %-10s %-18v AS%v\n", r.Domain, r.Kind, r.Addr, r.ASNs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsdata:", err)
	os.Exit(1)
}
