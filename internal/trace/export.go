package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// Exporter receives completed traces. Export is called with the
// tracer's lock held, so implementations need no extra synchronisation
// against other Export/Close calls from the same tracer.
type Exporter interface {
	Export(t *Trace)
	Close() error
}

// ---- JSONL ----

// jsonlSpan is the on-disk shape of one span: one JSON object per line,
// grep- and jq-friendly, streamed as traces complete.
type jsonlSpan struct {
	Trace   string  `json:"trace"`
	Span    string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartUS int64   `json:"start_us"` // µs since the Unix epoch
	DurUS   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// JSONL streams one JSON object per span to w as traces complete.
type JSONL struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewJSONL creates a JSONL exporter over w. If w is an io.Closer it is
// closed by Close.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	e := &JSONL{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// Export implements Exporter.
func (e *JSONL) Export(t *Trace) {
	for _, sp := range t.Spans {
		rec := jsonlSpan{
			Trace:   sp.Trace.String(),
			Span:    sp.ID.String(),
			Name:    sp.Name,
			StartUS: sp.Start.UnixMicro(),
			DurUS:   float64(sp.Duration) / float64(time.Microsecond),
			Attrs:   sp.Attrs,
		}
		if sp.Parent != 0 {
			rec.Parent = sp.Parent.String()
		}
		_ = e.enc.Encode(rec)
	}
}

// Close flushes buffered lines and closes the underlying file.
func (e *JSONL) Close() error {
	err := e.w.Flush()
	if e.c != nil {
		if cerr := e.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ---- Chrome trace_event ----

// chromeEvent is one complete ("X") event of the Chrome trace_event
// format, the JSON-object flavour with a traceEvents array, loadable in
// about:tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // µs since the first event
	Dur  float64           `json:"dur"` // µs
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Chrome accumulates spans and writes one trace_event JSON document on
// Close. Spans are laid out on synthetic threads (tid) by interval
// nesting, so concurrent worker subtrees render side by side instead of
// overlapping on one row.
type Chrome struct {
	w      io.WriteCloser
	events []chromeEvent
	lanes  []laneState
	base   time.Time
}

// laneState is the open-interval stack of one synthetic thread.
type laneState struct {
	open []time.Time // end times of currently open enclosing spans
}

// NewChrome creates a Chrome trace_event exporter writing to w on Close.
func NewChrome(w io.WriteCloser) *Chrome { return &Chrome{w: w} }

// NewChromeFile creates a Chrome exporter writing to the named file.
func NewChromeFile(path string) (*Chrome, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewChrome(f), nil
}

// Export implements Exporter.
func (c *Chrome) Export(t *Trace) {
	spans := append([]SpanRecord(nil), t.Spans...)
	// Lay out by start time; longer spans first at equal starts so a
	// parent precedes its children in lane assignment.
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Duration > spans[j].Duration
	})
	if c.base.IsZero() && len(spans) > 0 {
		c.base = spans[0].Start
	}
	for _, sp := range spans {
		tid := c.assignLane(sp.Start, sp.Start.Add(sp.Duration))
		args := map[string]string{
			"trace": sp.Trace.String(),
			"span":  sp.ID.String(),
		}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent.String()
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		c.events = append(c.events, chromeEvent{
			Name: sp.Name,
			Cat:  "dps",
			Ph:   "X",
			TS:   float64(sp.Start.Sub(c.base)) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
}

// assignLane finds the lowest synthetic thread on which [start,end)
// either nests inside the innermost open interval or starts after every
// open interval has closed — the invariant the trace viewer's stacking
// algorithm expects of events sharing a tid.
func (c *Chrome) assignLane(start, end time.Time) int {
	for i := range c.lanes {
		l := &c.lanes[i]
		// Close intervals that ended at or before this span starts.
		for len(l.open) > 0 && !l.open[len(l.open)-1].After(start) {
			l.open = l.open[:len(l.open)-1]
		}
		if len(l.open) == 0 || !end.After(l.open[len(l.open)-1]) {
			l.open = append(l.open, end)
			return i
		}
	}
	c.lanes = append(c.lanes, laneState{open: []time.Time{end}})
	return len(c.lanes) - 1
}

// Close writes the accumulated trace_event document and closes the file.
func (c *Chrome) Close() error {
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(c.w)
	err := enc.Encode(doc)
	if cerr := c.w.Close(); err == nil {
		err = cerr
	}
	return err
}
