package measure

import "dpsadopt/internal/obs"

// Stage bucket bounds: day stages run milliseconds (small worlds) to
// minutes (full namespace), much wider than query latencies.
var stageBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Pipeline metrics, labeled by the paper's Fig 1 stage names: Stage I
// zone acquisition, Stage II worker-cloud resolution, Stage III storage.
var (
	mStageSeconds = obs.Default().HistogramVec("measure_stage_seconds",
		"wall time per pipeline stage per day", "stage", stageBuckets)
	mWorkersActive = obs.Default().Gauge("measure_workers_active",
		"worker goroutines currently measuring a task chunk")
	mDomains = obs.Default().Counter("measure_domains_total",
		"domain measurement tasks completed")
	mDays = obs.Default().Counter("measure_days_total",
		"measurement days completed")
	mDomainsPerSec = obs.Default().Gauge("measure_domains_per_second",
		"throughput of the most recently completed day")
)

const (
	stageZoneAcquisition = "zone_acquisition"
	stageResolution      = "resolution"
	stageStorage         = "storage"
)
