// Package experiment orchestrates full paper reproductions: it streams
// the daily measurement of a generated world through detection and
// aggregation, accounting Table 1 statistics on the fly and dropping raw
// partitions so that a 550-day full-namespace run fits in memory. Each
// table and figure of the paper has a regeneration method here; the
// report package renders the returned structures.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/chaos"
	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

// Config sizes a reproduction run.
type Config struct {
	// Scale is the world scale divisor (1000 = the paper at 1:1000).
	Scale int
	// Workers is the measurement worker count.
	Workers int
	// DetectWorkers bounds the per-day detection fan-out across source
	// partitions (0 = GOMAXPROCS). Detection of a day's sources is
	// independent, so the streaming runner classifies them in parallel
	// and folds the results in source order.
	DetectWorkers int
	// Days truncates the run to the first N days of the window (0 = the
	// full 550 days), for quick runs and benchmarks.
	Days int
	// KeepStore retains raw partitions instead of dropping them after
	// aggregation (needed when callers want to re-scan; costs memory).
	KeepStore bool
	// Wire measures over the transport network (measure.ModeWire) instead
	// of deriving records in process — required for fault injection, since
	// only wire days have datagrams to lose.
	Wire bool
	// WireNetwork, when set, supplies the base per-day transport for wire
	// mode (defaults to a fresh day-seeded in-memory network). A fault
	// scenario wraps whatever this returns.
	WireNetwork func(day simtime.Day) transport.Network
	// WireTimeout (milliseconds), WireRetries and WireRetryBudget tune the
	// wire-mode resolvers; zero keeps the dnsclient defaults. Chaos runs
	// lower the timeout so injected losses cost milliseconds, not seconds.
	WireTimeout     int
	WireRetries     int
	WireRetryBudget int
	// FaultScenario names a chaos scenario (chaos.ScenarioNames) injected
	// into every wire day; empty runs fault-free. Requires Wire.
	FaultScenario string
	// FaultSeed fixes the fault pattern: the same scenario and seed inject
	// the same faults, making degraded-day accounting reproducible.
	FaultSeed int64
	// FaultDays, when set, limits injection to days where it returns true
	// (e.g. a mid-run outage window); nil injects on every day.
	FaultDays func(day simtime.Day) bool
	// FailureThreshold is the resolution failure rate above which a day is
	// committed as degraded (default 0.05).
	FailureThreshold float64
	// OnProgress, when set, receives (day index, total days). It is kept
	// for existing callers; new code should prefer OnDayProgress, which
	// carries the full per-day observation.
	OnProgress func(done, total int)
	// OnDayProgress, when set, receives the obs-aware per-day progress
	// event after each measured day (in addition to OnProgress).
	OnDayProgress func(DayProgress)
}

// DayProgress describes one completed measurement day of a run; the same
// numbers are exported as experiment_* gauges on the default obs
// registry.
type DayProgress struct {
	// Done/Total index the day within the run window.
	Done, Total int
	// Day is the simulated date just measured.
	Day simtime.Day
	// Rows is the number of rows the day contributed across sources.
	Rows int64
	// Detected is the number of gTLD domains using any DPS on this day.
	Detected int
	// Net is the wire-mode network accounting (zero for direct mode).
	Net measure.NetStats
	// Degraded reports whether the day was committed as degraded.
	Degraded bool
}

// DayAccounting is one row of the run's degraded-day ledger: the paper's
// pipeline had to commit partial measurement days and remember which ones
// they were (§4.2); this is that memory, per day.
type DayAccounting struct {
	Day simtime.Day
	// Queries/Lost/GaveUp/Resolutions mirror measure.NetStats.
	Queries     int64
	Lost        int64
	Resolutions int64
	GaveUp      int64
	// FailureRate is GaveUp/Resolutions.
	FailureRate float64
	// Degraded marks the day as committed above the failure threshold.
	Degraded bool
}

// SourceStats accumulates one Table 1 row.
type SourceStats struct {
	Source          string
	FirstDay        simtime.Day
	Days            int
	UniqueSLDs      int
	DataPoints      int64
	CompressedBytes int64

	unique map[uint32]bool
}

// Runner drives a reproduction.
type Runner struct {
	Cfg   Config
	World *worldsim.World
	Refs  *core.References
	Store *store.Store
	Agg   *analysis.Aggregator

	pipeline    *measure.Pipeline
	stats       map[string]*SourceStats
	window      simtime.Range
	ran         bool
	accounting  []DayAccounting
	detectStats core.RangeStats
}

// New builds a runner over a freshly generated world.
func New(cfg Config) (*Runner, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.FaultScenario != "" && !cfg.Wire {
		return nil, fmt.Errorf("experiment: fault scenario %q requires Wire mode (direct days have no datagrams to lose)", cfg.FaultScenario)
	}
	w, err := worldsim.New(worldsim.DefaultConfig(cfg.Scale))
	if err != nil {
		return nil, err
	}
	refs, err := core.GroundTruth()
	if err != nil {
		return nil, err
	}
	s := store.New()
	r := &Runner{
		Cfg:   cfg,
		World: w,
		Refs:  refs,
		Store: s,
		Agg:   analysis.NewAggregator(refs, s, worldsim.GTLDs()),
		stats: make(map[string]*SourceStats),
	}
	mcfg := measure.Config{Mode: measure.ModeDirect, Workers: cfg.Workers}
	if cfg.Wire {
		mcfg.Mode = measure.ModeWire
		mcfg.Timeout = cfg.WireTimeout
		mcfg.Retries = cfg.WireRetries
		mcfg.RetryBudget = cfg.WireRetryBudget
		if err := r.wireFaults(&mcfg); err != nil {
			return nil, err
		}
	}
	r.pipeline = measure.New(w, s, mcfg)
	r.window = w.Cfg.Window
	if cfg.Days > 0 && cfg.Days < r.window.Len() {
		r.window.End = r.window.Start + simtime.Day(cfg.Days)
	}
	return r, nil
}

// DefaultFailureThreshold is the resolution failure rate above which a
// wire day is committed as degraded.
const DefaultFailureThreshold = 0.05

// wireFaults wires the chaos scenario (if any) into the measurement
// config: the network wrapper per day, root-server protection, and the
// server-side injector on every authoritative.
func (r *Runner) wireFaults(mcfg *measure.Config) error {
	cfg := r.Cfg
	var faultCfg chaos.Config
	if cfg.FaultScenario != "" {
		var err error
		faultCfg, err = chaos.Scenario(cfg.FaultScenario)
		if err != nil {
			return err
		}
	}
	faultsOn := func(day simtime.Day) bool {
		if cfg.FaultScenario == "" {
			return false
		}
		return cfg.FaultDays == nil || cfg.FaultDays(day)
	}
	base := cfg.WireNetwork
	if base == nil {
		base = func(day simtime.Day) transport.Network {
			return transport.NewMem(int64(day) ^ 0x3f3f)
		}
	}
	// Per-day seeds keep days' fault patterns independent while the whole
	// run stays a pure function of (scenario, FaultSeed).
	daySeed := func(day simtime.Day) int64 { return cfg.FaultSeed + int64(day)*1_000_003 }
	mcfg.WireNetwork = func(day simtime.Day) transport.Network {
		n := base(day)
		if faultsOn(day) && faultCfg.Active() {
			return chaos.Wrap(n, faultCfg, daySeed(day))
		}
		return n
	}
	mcfg.OnWire = func(day simtime.Day, wire *worldsim.Wire, network transport.Network) {
		if cn, ok := network.(*chaos.Network); ok {
			// A blackholed root would sever the namespace at its first
			// hop; the scenarios model degraded days, not a dead Internet.
			for _, root := range wire.Roots {
				cn.Protect(root.Addr())
			}
		}
		if faultsOn(day) && faultCfg.ServerActive() {
			wire.SetFaults(chaos.NewServerFaults(faultCfg, daySeed(day)))
		}
	}
	return nil
}

// Accounting returns the per-day network ledger of a completed wire run:
// one row per measured day, in day order, with degraded days marked.
func (r *Runner) Accounting() []DayAccounting { return r.accounting }

// DegradedDays returns the days committed as degraded.
func (r *Runner) DegradedDays() []simtime.Day { return r.Agg.DegradedDays() }

// Window returns the days actually run.
func (r *Runner) Window() simtime.Range { return r.window }

// Run executes the streaming measurement + analysis pass. The context
// cancels the run between (and, in wire mode, inside) days; each day is
// traced as an `experiment.day` root span on the process tracer when one
// is installed (trace.SetDefault).
func (r *Runner) Run(ctx context.Context) error {
	if r.ran {
		return fmt.Errorf("experiment: Run called twice")
	}
	r.ran = true
	total := r.window.Len()
	mDaysTotal.Set(float64(total))
	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		day := r.window.Start + simtime.Day(i)
		dayStart := time.Now()
		dctx, sp := trace.Default().StartRoot(ctx, "experiment.day",
			trace.Str("day", day.String()),
			trace.Int("index", int64(i+1)), trace.Int("total", int64(total)))
		if err := r.pipeline.RunDay(dctx, day); err != nil {
			sp.SetAttr(trace.Str("error", err.Error()))
			sp.End()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// A cancelled day is incomplete: drop its partial
				// partitions so the surviving store and accounting hold
				// only fully committed days.
				for _, src := range r.Store.Sources() {
					r.Store.DropDay(src, day)
				}
			}
			return fmt.Errorf("experiment: day %s: %w", day, err)
		}
		var dayRows int64
		var parts []core.Partition
		for _, src := range r.Store.Sources() {
			rows, bytes, ids := r.Store.DayStats(src, day)
			if rows == 0 {
				continue
			}
			dayRows += int64(rows)
			st := r.stats[src]
			if st == nil {
				st = &SourceStats{Source: src, FirstDay: day, unique: make(map[uint32]bool)}
				r.stats[src] = st
			}
			st.Days++
			st.DataPoints += int64(rows)
			st.CompressedBytes += bytes
			for _, id := range ids {
				st.unique[id] = true
			}
			parts = append(parts, core.Partition{Source: src, Day: day})
		}
		// One parallel detection pass over the day's source partitions;
		// results fold in source order so aggregation stays deterministic.
		dets, rst := core.DetectRangeStats(dctx, r.Store, parts, r.Refs, r.Cfg.DetectWorkers)
		r.detectStats.Add(rst)
		for pi, det := range dets {
			if det == nil {
				continue // cancelled mid-day; ctx.Err() surfaces next loop
			}
			if err := r.Agg.AddDetections(det); err != nil {
				return err
			}
			if !r.Cfg.KeepStore {
				r.Store.DropDay(parts[pi].Source, day)
			}
		}
		detected := r.Agg.SumAny(worldsim.GTLDs(), day)
		net := r.pipeline.LastNetStats()
		acct := DayAccounting{
			Day: day, Queries: net.Queries, Lost: net.Lost,
			Resolutions: net.Resolutions, GaveUp: net.GaveUp,
			FailureRate: net.FailureRate(),
		}
		if r.Cfg.Wire && acct.FailureRate > r.Cfg.FailureThreshold {
			// The day is kept — partial data still feeds the aggregates,
			// as the paper's pipeline kept partial days — but committed as
			// degraded so the growth analysis interpolates across it.
			acct.Degraded = true
			r.Agg.MarkDegraded(day)
			mDegradedDays.Inc()
			sp.SetAttr(trace.Str("degraded", "true"))
		}
		r.accounting = append(r.accounting, acct)
		sp.SetAttr(trace.Int("rows", dayRows), trace.Int("detected", int64(detected)))
		sp.End()
		mDaysCompleted.Set(float64(i + 1))
		mDayWindow.Observe(time.Since(dayStart).Seconds())
		mRowsSeen.Add(dayRows)
		mDetected.Set(float64(detected))
		mQueriesLost.Add(net.Lost)
		mFailureRate.Set(acct.FailureRate)
		if r.Cfg.OnProgress != nil {
			r.Cfg.OnProgress(i+1, total)
		}
		if r.Cfg.OnDayProgress != nil {
			r.Cfg.OnDayProgress(DayProgress{
				Done: i + 1, Total: total, Day: day,
				Rows: dayRows, Detected: detected,
				Net: net, Degraded: acct.Degraded,
			})
		}
	}
	for _, st := range r.stats {
		st.UniqueSLDs = len(st.unique)
	}
	if ds := r.detectStats; ds.Partitions > 0 {
		obs.Logger().Info("detection fan-out",
			"partitions", ds.Partitions, "rows", ds.Rows, "workers", ds.Workers,
			"partitions_per_sec", fmt.Sprintf("%.0f", ds.PartitionsPerSec()),
			"utilization", fmt.Sprintf("%.2f", ds.Utilization()),
			"scan", ds.Scan.Round(time.Millisecond).String(),
			"merge", ds.Merge.Round(time.Millisecond).String(),
			"barrier", ds.Barrier.Round(time.Millisecond).String())
	}
	return nil
}

// DetectStats returns the run's accumulated DetectRange stage timing —
// the per-core efficiency ledger of the streaming detection passes.
func (r *Runner) DetectStats() core.RangeStats { return r.detectStats }

// MaterializeDay re-measures one day into a fresh store (the world is
// deterministic, so any day can be reproduced after the streaming pass).
func (r *Runner) MaterializeDay(day simtime.Day) (*store.Store, error) {
	tmp := store.New()
	p := measure.New(r.World, tmp, measure.Config{Mode: measure.ModeDirect, Workers: r.Cfg.Workers})
	if err := p.RunDay(context.Background(), day); err != nil {
		return nil, err
	}
	return tmp, nil
}

// ---- Table 1 ----

// Table1 returns the accumulated data-set statistics, in the paper's
// source order.
func (r *Runner) Table1() []SourceStats {
	order := []string{"com", "net", "org", "nl", measure.SourceAlexa}
	var out []SourceStats
	for _, src := range order {
		if st := r.stats[src]; st != nil {
			out = append(out, *st)
		}
	}
	return out
}

// ---- Table 2 ----

// Table2Result pairs the discovered reference rows with ground truth.
type Table2Result struct {
	Discovered []core.ProviderRefs
	Truth      []core.ProviderRefs
	// Exact reports per provider whether discovery matched ground truth
	// exactly.
	Exact []bool
}

// Table2 runs the §3.3 discovery procedure on a materialized quiet day.
func (r *Runner) Table2(day simtime.Day) (*Table2Result, error) {
	tmp, err := r.MaterializeDay(day)
	if err != nil {
		return nil, err
	}
	entries, err := pfx2as.Parse(strings.NewReader(r.World.RIBForDay(day).Snapshot()))
	if err != nil {
		return nil, err
	}
	table := pfx2as.NewWalk(entries)
	probe := func(sld string) (netip.Addr, bool) { return r.World.ProbeApex(sld, day) }
	res := &Table2Result{}
	for i := range r.Refs.Providers {
		truth := r.Refs.Providers[i]
		// MinSupport 1 compensates the scale divisor: Incapsula's NS
		// delegation is used by only ~0.02% of its customers (tens of
		// domains at paper scale), which a 1:1000 world shrinks to a
		// single domain. The probe filter keeps single-bearer SLDs from
		// qualifying unless their own apex is hosted by the provider.
		got, err := core.Discover(tmp, worldsim.GTLDs(), day, r.World.Registry, truth.Name, table, probe,
			core.DiscoveryConfig{MinSupport: 1, MinASSupport: 2})
		if err != nil {
			return nil, err
		}
		res.Discovered = append(res.Discovered, got)
		res.Truth = append(res.Truth, truth)
		res.Exact = append(res.Exact, refEqual(got, truth))
	}
	return res, nil
}

func refEqual(a, b core.ProviderRefs) bool {
	if len(a.ASNs) != len(b.ASNs) || len(a.CNAMESLDs) != len(b.CNAMESLDs) || len(a.NSSLDs) != len(b.NSSLDs) {
		return false
	}
	for i := range a.ASNs {
		if a.ASNs[i] != b.ASNs[i] {
			return false
		}
	}
	for i := range a.CNAMESLDs {
		if a.CNAMESLDs[i] != b.CNAMESLDs[i] {
			return false
		}
	}
	for i := range a.NSSLDs {
		if a.NSSLDs[i] != b.NSSLDs[i] {
			return false
		}
	}
	return true
}

// ---- Figures ----

// Series is a generic named day series.
type Series struct {
	Name string
	Days []simtime.Day
	Vals []float64
}

// Figure2 returns the daily DPS-use counts per gTLD plus the combined
// series.
func (r *Runner) Figure2() []Series {
	days := r.Agg.Days("com")
	var out []Series
	for _, tld := range worldsim.GTLDs() {
		s := Series{Name: tld, Days: days}
		for _, d := range days {
			s.Vals = append(s.Vals, float64(r.Agg.SumAny([]string{tld}, d)))
		}
		out = append(out, s)
	}
	comb := Series{Name: "combined", Days: days}
	for _, d := range days {
		comb.Vals = append(comb.Vals, float64(r.Agg.SumAny(worldsim.GTLDs(), d)))
	}
	out = append(out, comb)
	return out
}

// Figure3Panel is one provider's panel: total use plus the per-method
// breakdown.
type Figure3Panel struct {
	Provider string
	Days     []simtime.Day
	Total    []float64
	AS       []float64
	CNAME    []float64
	NS       []float64
}

// Figure3 returns the nine per-provider panels.
func (r *Runner) Figure3() []Figure3Panel {
	days := r.Agg.Days("com")
	g := worldsim.GTLDs()
	var out []Figure3Panel
	for p := range r.Refs.Providers {
		panel := Figure3Panel{Provider: r.Refs.Providers[p].Name, Days: days}
		for _, d := range days {
			panel.Total = append(panel.Total, float64(r.Agg.SumProvider(g, p, d)))
			panel.AS = append(panel.AS, float64(r.Agg.SumMethod(g, p, 0, d)))
			panel.CNAME = append(panel.CNAME, float64(r.Agg.SumMethod(g, p, 1, d)))
			panel.NS = append(panel.NS, float64(r.Agg.SumMethod(g, p, 2, d)))
		}
		out = append(out, panel)
	}
	return out
}

// Figure4Result holds the two Fig 4 distributions.
type Figure4Result struct {
	Namespace map[string]float64
	DPSUse    map[string]float64
}

// Figure4 returns the namespace and DPS-use shares per gTLD.
func (r *Runner) Figure4() Figure4Result {
	ns, dps := r.Agg.Distribution(worldsim.GTLDs())
	return Figure4Result{Namespace: ns, DPSUse: dps}
}

// Figure5 returns the combined gTLD growth trend.
func (r *Runner) Figure5() analysis.GrowthResult {
	return r.Agg.Growth(worldsim.GTLDs())
}

// Figure6Result holds the .nl and Alexa trends.
type Figure6Result struct {
	NL    analysis.GrowthResult
	Alexa analysis.GrowthResult
}

// Figure6 returns the .nl and Alexa growth trends (their windows start
// later; series are relative to their own first day).
func (r *Runner) Figure6() Figure6Result {
	var out Figure6Result
	if len(r.Agg.Days("nl")) > 0 {
		out.NL = r.Agg.Growth([]string{"nl"})
	}
	if len(r.Agg.Days(measure.SourceAlexa)) > 0 {
		out.Alexa = r.Agg.Growth([]string{measure.SourceAlexa})
	}
	return out
}

// Figure7Panel is one provider's flux plot.
type Figure7Panel struct {
	Provider string
	Bins     []analysis.FluxBin
}

// Figure7 returns the per-provider two-week flux panels.
func (r *Runner) Figure7() []Figure7Panel {
	var out []Figure7Panel
	for p := range r.Refs.Providers {
		out = append(out, Figure7Panel{
			Provider: r.Refs.Providers[p].Name,
			Bins:     r.Agg.Flux(p, r.window, 14),
		})
	}
	return out
}

// Figure8Panel is one provider's peak-duration CDF.
type Figure8Panel struct {
	Provider string
	Stats    analysis.PeakStats
	P80      int
}

// Figure8 returns the per-provider on-demand peak-duration panels
// (domains with ≥3 peaks, as in §4.4.3).
func (r *Runner) Figure8() []Figure8Panel {
	var out []Figure8Panel
	for p := range r.Refs.Providers {
		st := r.Agg.OnDemandPeaks(p, 3)
		out = append(out, Figure8Panel{
			Provider: r.Refs.Providers[p].Name,
			Stats:    st,
			P80:      st.P(0.8),
		})
	}
	return out
}

// AnomalyReport is one attributed swing (§4.4.1).
type AnomalyReport struct {
	Provider    string
	Attribution analysis.Attribution
}

// Anomalies finds each provider's largest day-over-day swing and
// attributes it to the third party whose NS SLD the changed domains
// share. Attribution re-materializes the two days involved.
func (r *Runner) Anomalies(perProvider int) ([]AnomalyReport, error) {
	var out []AnomalyReport
	g := worldsim.GTLDs()
	for p := range r.Refs.Providers {
		swings := r.Agg.LargestSwings(g, p, perProvider)
		for _, sw := range swings {
			days := r.Agg.Days("com")
			prev := sw.Day - 1
			for i, d := range days {
				if d == sw.Day && i > 0 {
					prev = days[i-1]
				}
			}
			tmp := store.New()
			pipe := measure.New(r.World, tmp, measure.Config{Mode: measure.ModeDirect, Workers: r.Cfg.Workers})
			if err := pipe.RunDay(context.Background(), prev); err != nil {
				return nil, err
			}
			if err := pipe.RunDay(context.Background(), sw.Day); err != nil {
				return nil, err
			}
			tmpAgg := analysis.NewAggregator(r.Refs, tmp, nil)
			if err := tmpAgg.Run(g); err != nil {
				return nil, err
			}
			att := tmpAgg.Attribute(g, p, sw.Day)
			out = append(out, AnomalyReport{Provider: r.Refs.Providers[p].Name, Attribution: att})
		}
	}
	return out, nil
}

// ClassificationRow summarises §3.4 for one provider: how its detected
// domains split across use classes over the run window.
type ClassificationRow struct {
	Provider string
	AlwaysOn int
	OnDemand int
	Single   int
	Other    int
}

// Classification tabulates the always-on/on-demand split per provider.
func (r *Runner) Classification() []ClassificationRow {
	var out []ClassificationRow
	for p := range r.Refs.Providers {
		row := ClassificationRow{Provider: r.Refs.Providers[p].Name}
		for _, dom := range r.Agg.Detected(p) {
			switch r.Agg.Classify(p, dom, r.window) {
			case analysis.ClassAlwaysOn:
				row.AlwaysOn++
			case analysis.ClassOnDemand:
				row.OnDemand++
			case analysis.ClassSingle:
				row.Single++
			default:
				row.Other++
			}
		}
		out = append(out, row)
	}
	return out
}
