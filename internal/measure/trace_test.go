package measure

import (
	"context"
	"errors"
	"testing"

	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
)

// TestWireModeTraceNesting is the end-to-end tracing check: a wire-mode
// day run under a sampling tracer must produce the full span chain
// experiment.day → measure.stage2 → dnsclient.resolve → transport.send
// for at least one domain, with correct parent links, plus the stage 1
// and stage 3 spans.
func TestWireModeTraceNesting(t *testing.T) {
	w := tinyWorld(t)
	tr := trace.New(trace.Config{Sample: 1})

	s := store.New()
	p := New(w, s, Config{Mode: ModeWire, Workers: 4, Timeout: 250, Retries: 3})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day", trace.Str("day", "100"))
	if err := p.RunDay(ctx, 100); err != nil {
		t.Fatal(err)
	}
	root.End()

	traces := tr.Ring().Recent(1)
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans
	byID := make(map[trace.SpanID]trace.SpanRecord, len(spans))
	count := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	for _, name := range []string{"measure.stage1", "measure.wirebuild", "measure.stage2", "measure.stage3", "dnsclient.resolve", "transport.send"} {
		if count[name] == 0 {
			t.Errorf("no %s span recorded (have %v)", name, count)
		}
	}

	// Walk one transport.send leaf up to the root and verify the chain.
	verified := false
	for _, sp := range spans {
		if sp.Name != "transport.send" {
			continue
		}
		path := []string{sp.Name}
		cur := sp
		for cur.Parent != 0 {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s has unknown parent %v", cur.Name, cur.Parent)
			}
			path = append(path, parent.Name)
			cur = parent
		}
		want := []string{"transport.send", "dnsclient.resolve", "measure.stage2", "experiment.day"}
		if len(path) == len(want) {
			ok := true
			for i := range want {
				if path[i] != want[i] {
					ok = false
					break
				}
			}
			if ok {
				verified = true
				break
			}
		}
	}
	if !verified {
		t.Error("no transport.send span chains up through dnsclient.resolve and measure.stage2 to experiment.day")
	}
}

// TestForDomainSampling verifies a zero sampling rate records the
// day-level spans but no per-domain subtree.
func TestForDomainSampling(t *testing.T) {
	w := tinyWorld(t)
	tr := trace.New(trace.Config{Sample: 0})
	s := store.New()
	p := New(w, s, Config{Mode: ModeWire, Workers: 4, Timeout: 250, Retries: 3})
	ctx, root := tr.StartRoot(context.Background(), "experiment.day")
	if err := p.RunDay(ctx, 100); err != nil {
		t.Fatal(err)
	}
	root.End()
	traces := tr.Ring().Recent(1)
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	for _, sp := range traces[0].Spans {
		if sp.Name == "dnsclient.resolve" || sp.Name == "transport.send" {
			t.Fatalf("unsampled run recorded per-domain span %s", sp.Name)
		}
		if sp.Name == "measure.stage2" {
			continue
		}
	}
}

// TestRunDayCancelled verifies cancellation surfaces as
// context.Canceled and leaves previously committed days intact.
func TestRunDayCancelled(t *testing.T) {
	w := midWorld(t)
	s := store.New()
	p := New(w, s, Config{Mode: ModeDirect, Workers: 2})
	if err := p.RunDay(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunDay(ctx, 101); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunDay on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := s.Days("com"); len(got) != 1 || got[0] != simtime.Day(100) {
		t.Errorf("committed days disturbed by cancelled run: %v", got)
	}
}
