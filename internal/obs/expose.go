package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order with sorted
// label values, so scrapes and test assertions are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	entries := make([]*entry, 0, len(names))
	for _, n := range names {
		entries = append(entries, r.entries[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
		switch m := e.m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", e.name, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatFloat(m.Value()))
		case *Histogram:
			writeHistogram(&b, e.name, "", m)
		case *CounterVec:
			for _, val := range m.sortedValues() {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", e.name, m.label, escapeLabel(val), m.With(val).Value())
			}
		case *GaugeVec:
			for _, val := range m.sortedValues() {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", e.name, m.label, escapeLabel(val), formatFloat(m.With(val).Value()))
			}
		case *HistogramVec:
			for _, val := range m.sortedValues() {
				writeHistogram(&b, e.name, fmt.Sprintf("%s=%q,", m.label, escapeLabel(val)), m.With(val))
			}
		case *WindowedCounter:
			for _, wd := range exposeWindows(m.Span()) {
				fmt.Fprintf(&b, "%s{window=%q} %d\n", e.name, wd.label, m.Total(wd.d))
			}
		case *WindowedHistogram:
			for _, wd := range exposeWindows(m.Span()) {
				s := m.Merged(wd.d)
				writeHistogramSeries(&b, e.name, fmt.Sprintf("window=%q,", wd.label), s.Bounds, s.Counts, s.Count, s.Sum, nil)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exposeWindow pairs a window label with its duration for exposition.
type exposeWindow struct {
	label string
	d     time.Duration
}

// exposeWindows lists the standard windows a ring of the given span can
// answer; rings narrower than FastWindow expose their full span.
func exposeWindows(span time.Duration) []exposeWindow {
	out := make([]exposeWindow, 0, 2)
	if FastWindow <= span {
		out = append(out, exposeWindow{"5m", FastWindow})
	}
	if SlowWindow <= span {
		out = append(out, exposeWindow{"1h", SlowWindow})
	}
	if len(out) == 0 {
		out = append(out, exposeWindow{span.String(), span})
	}
	return out
}

// writeHistogram emits the _bucket/_sum/_count series for one histogram;
// labelPrefix is either empty or `label="value",` for vec children.
// Buckets with an exemplar carry it as an OpenMetrics exemplar suffix
// (`# {trace_id="..."} value`), linking the bucket to the trace of its
// slowest observation.
func writeHistogram(b *strings.Builder, name, labelPrefix string, h *Histogram) {
	writeHistogramSeries(b, name, labelPrefix, h.bounds, h.BucketCounts(), h.Count(), h.Sum(), h.Exemplars())
}

// writeHistogramSeries renders the series from raw bucket data, so both
// cumulative histograms and merged window snapshots share one emitter;
// exemplars may be nil.
func writeHistogramSeries(b *strings.Builder, name, labelPrefix string, bounds []float64, counts []uint64, count uint64, sum float64, exemplars []*Exemplar) {
	ex := func(i int) string {
		if exemplars == nil {
			return ""
		}
		return exemplarSuffix(exemplars[i])
	}
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d%s\n", name, labelPrefix, formatFloat(bound), cum, ex(i))
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d%s\n", name, labelPrefix, cum, ex(len(bounds)))
	if labelPrefix == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(sum))
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	} else {
		lp := strings.TrimSuffix(labelPrefix, ",")
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, lp, formatFloat(sum))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, lp, count)
	}
}

func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// HistogramSnapshot summarises one histogram for machine consumption.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed
// by metric name; vec children use `name{label="value"}` keys. It
// marshals cleanly to JSON, which is what the bench harness persists as
// a perf trajectory (BENCH_obs.json).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Histogram returns a histogram summary from the snapshot (zero when
// absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Snapshot captures every registered metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	entries := make([]*entry, 0, len(names))
	for _, n := range names {
		entries = append(entries, r.entries[n])
	}
	r.mu.RUnlock()

	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range entries {
		switch m := e.m.(type) {
		case *Counter:
			snap.Counters[e.name] = m.Value()
		case *Gauge:
			snap.Gauges[e.name] = m.Value()
		case *Histogram:
			snap.Histograms[e.name] = histSnap(m)
		case *CounterVec:
			for _, val := range m.sortedValues() {
				snap.Counters[childKey(e.name, m.label, val)] = m.With(val).Value()
			}
		case *GaugeVec:
			for _, val := range m.sortedValues() {
				snap.Gauges[childKey(e.name, m.label, val)] = m.With(val).Value()
			}
		case *HistogramVec:
			for _, val := range m.sortedValues() {
				snap.Histograms[childKey(e.name, m.label, val)] = histSnap(m.With(val))
			}
		case *WindowedCounter:
			for _, wd := range exposeWindows(m.Span()) {
				snap.Gauges[childKey(e.name, "window", wd.label)] = float64(m.Total(wd.d))
			}
		case *WindowedHistogram:
			for _, wd := range exposeWindows(m.Span()) {
				s := m.Merged(wd.d)
				snap.Histograms[childKey(e.name, "window", wd.label)] = HistogramSnapshot{
					Count: s.Count,
					Sum:   s.Sum,
					P50:   s.Quantile(0.50),
					P90:   s.Quantile(0.90),
					P99:   s.Quantile(0.99),
				}
			}
		}
	}
	return snap
}

func childKey(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}

func histSnap(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
