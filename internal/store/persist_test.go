package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dpsadopt/internal/simtime"
)

func populatedStore() *Store {
	s := New()
	for day := simtime.Day(0); day < 3; day++ {
		w := s.NewWriter("com", day)
		w.AddAddr("foo.com", KindApexA, addr("10.0.0.1"), []uint32{13335})
		w.AddAddr("foo.com", KindApexAAAA, addr("2001:db8::7"), []uint32{13335})
		w.AddStr("foo.com", KindNS, "kate.ns.cloudflare.com")
		w.AddStr("bar.com", KindWWWCNAME, "bar.incapdns.net")
		w.AddAddr("bar.com", KindWWWA, addr("10.8.0.4"), []uint32{19551, 55002})
		w.Commit()
	}
	w := s.NewWriter("nl", 10)
	w.AddStr("x.nl", KindNS, "ns1.hostco1.net")
	w.Commit()
	return s
}

func rowsOf(s *Store, source string, day simtime.Day) []Row {
	var out []Row
	s.ForEachRow(source, day, func(r Row) {
		r.ASNs = append([]uint32(nil), r.ASNs...)
		out = append(out, r)
	})
	return out
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sources(), s.Sources()) {
		t.Fatalf("sources = %v", got.Sources())
	}
	for _, src := range s.Sources() {
		if !reflect.DeepEqual(got.Days(src), s.Days(src)) {
			t.Fatalf("%s days = %v", src, got.Days(src))
		}
		for _, day := range s.Days(src) {
			want := rowsOf(s, src, day)
			have := rowsOf(got, src, day)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("%s day %v rows differ:\nwant %+v\ngot  %+v", src, day, want, have)
			}
		}
	}
	// Statistics agree too.
	ws, gs := s.SourceStats("com"), got.SourceStats("com")
	if ws.DataPoints != gs.DataPoints || ws.UniqueSLDs != gs.UniqueSLDs {
		t.Errorf("stats differ: %+v vs %+v", ws, gs)
	}
}

// legacyV2File rewrites a saved v4 file into the version 2 format:
// strip the trailing directory + footer and patch the version field
// (partition bytes are identical across versions).
func legacyV2File(t *testing.T, s *Store) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "v4.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data[len(data)-4:]); got != dirMagic {
		t.Fatalf("footer magic = %q", got)
	}
	dirOff := binary.LittleEndian.Uint64(data[len(data)-footerSizeV4 : len(data)-footerSizeV4+8])
	legacy := append([]byte(nil), data[:dirOff]...)
	binary.LittleEndian.PutUint32(legacy[4:], 2)
	out := filepath.Join(dir, "v2.dpsa")
	if err := os.WriteFile(out, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDirectory(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	dir, err := Directory(path)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, src := range s.Sources() {
		want += len(s.Days(src))
	}
	if len(dir) != want {
		t.Fatalf("directory has %d entries, want %d", len(dir), want)
	}
	for _, ent := range dir {
		if got := len(rowsOf(s, ent.Source, ent.Day)); got != ent.Rows {
			t.Errorf("%s/%v: directory says %d rows, store has %d", ent.Source, ent.Day, ent.Rows, got)
		}
	}
}

func TestDirectoryLegacy(t *testing.T) {
	path := legacyV2File(t, populatedStore())
	if _, err := Directory(path); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("err = %v, want ErrNoDirectory", err)
	}
}

func TestLoadPartition(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			part, err := LoadPartition(path, src, day)
			if err != nil {
				t.Fatal(err)
			}
			if got := part.Sources(); len(got) != 1 || got[0] != src {
				t.Fatalf("sources = %v, want [%s]", got, src)
			}
			if got := part.Days(src); len(got) != 1 || got[0] != day {
				t.Fatalf("days = %v, want [%v]", got, day)
			}
			if want, have := rowsOf(s, src, day), rowsOf(part, src, day); !reflect.DeepEqual(want, have) {
				t.Fatalf("%s/%v rows differ:\nwant %+v\ngot  %+v", src, day, want, have)
			}
		}
	}
	if _, err := LoadPartition(path, "com", 99); err == nil {
		t.Fatal("missing partition accepted")
	}
	if _, err := LoadPartition(path, "org", 0); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestLoadPartitionsBatch(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	dir, err := Directory(path)
	if err != nil {
		t.Fatal(err)
	}
	// All partitions in one pass: contents identical to the source store.
	keys := make([]PartitionKey, 0, len(dir))
	for _, ent := range dir {
		keys = append(keys, ent.Key())
	}
	got, err := LoadPartitions(path, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if want, have := rowsOf(s, k.Source, k.Day), rowsOf(got, k.Source, k.Day); !reflect.DeepEqual(want, have) {
			t.Fatalf("%s rows differ:\nwant %+v\ngot  %+v", k, want, have)
		}
	}
	// A subset loads only the subset.
	sub, err := LoadPartitions(path, keys[:1])
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, src := range sub.Sources() {
		total += len(sub.Days(src))
	}
	if total != 1 {
		t.Fatalf("subset load holds %d partitions, want 1", total)
	}
	// A missing key fails the whole batch with a descriptive error.
	if _, err := LoadPartitions(path, []PartitionKey{keys[0], {"org", 99}}); err == nil {
		t.Fatal("missing partition accepted in batch")
	}
	// The keyed index agrees with the listing.
	byKey := IndexDirectory(dir)
	if len(byKey) != len(dir) {
		t.Fatalf("IndexDirectory has %d entries, want %d", len(byKey), len(dir))
	}
	for _, ent := range dir {
		if byKey[ent.Key()].Rows != ent.Rows {
			t.Fatalf("keyed entry %s disagrees with listing", ent.Key())
		}
	}
}

func TestLoadPartitionLegacyFallback(t *testing.T) {
	s := populatedStore()
	path := legacyV2File(t, s)
	// Full decode still works on v2 bytes...
	full, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Sources(), s.Sources()) {
		t.Fatalf("sources = %v", full.Sources())
	}
	// ...and LoadPartition falls back to it transparently.
	part, err := LoadPartition(path, "nl", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := part.Sources(); len(got) != 1 || got[0] != "nl" {
		t.Fatalf("sources = %v, want [nl]", got)
	}
	if want, have := rowsOf(s, "nl", 10), rowsOf(part, "nl", 10); !reflect.DeepEqual(want, have) {
		t.Fatalf("rows differ:\nwant %+v\ngot  %+v", want, have)
	}
	if _, err := LoadPartition(path, "com", 99); err == nil {
		t.Fatal("missing partition accepted on legacy file")
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := populatedStore()
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.dpsa"), filepath.Join(dir, "b.dpsa")
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("two saves of the same store produced different bytes")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty.dpsa": {},
		"short.dpsa": []byte("DP"),
		"magic.dpsa": []byte("NOPE\x00\x00\x00\x00"),
		"ver.dpsa":   []byte("DPSA\xff\x00\x00\x00"),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.dpsa")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 3} {
		trunc := filepath.Join(t.TempDir(), "trunc.dpsa")
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(trunc); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadValidatesBlocks(t *testing.T) {
	// Flip bytes in a saved file; Load must never panic.
	s := populatedStore()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		p := filepath.Join(t.TempDir(), "mut.dpsa")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Load(p)
		if err != nil || st == nil {
			continue // rejected: fine
		}
		// Accepted: scanning must still be safe.
		for _, src := range st.Sources() {
			for _, day := range st.Days(src) {
				st.ForEachRow(src, day, func(Row) {})
			}
		}
	}
}
