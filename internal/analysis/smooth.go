package analysis

import (
	"sort"

	"dpsadopt/internal/simtime"
)

// This file implements the growth analysis of §4.2: "we do not count
// anomalous peaks and troughs. We smooth shorter and smaller anomalies
// out by taking the median reference count over a time window of several
// weeks, while the large anomalies are cleaned manually." The manual step
// is replaced by an automatic despike pass against a wide rolling *lower
// quantile*: third-party anomalies are overwhelmingly upward (cohorts
// switch protection on), and in anomaly-dense stretches they can occupy
// more than half of any window — which defeats a median baseline — so the
// baseline tracks the 30th percentile instead, which survives up to ~70%
// anomaly density while following genuine slow growth. Values deviating
// from the baseline by more than a relative threshold are replaced by it
// (peaks and one-day troughs alike); permanent level shifts move the
// quantile with them and are preserved, as the paper's Fig 5 preserves
// the March 2016 dip. A conventional narrow median window then smooths
// what remains.

// Default smoothing parameters (days / quantile / fraction).
const (
	DefaultDespikeWindow   = 151
	DefaultMedianWindow    = 21
	DefaultDespikeFraction = 0.05
	baselineQuantile       = 0.30
)

// RollingQuantile returns the centred rolling q-quantile of vals with the
// given odd window (even windows are widened by one). Edges use the
// available partial window.
func RollingQuantile(vals []float64, window int, q float64) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	half := window / 2
	out := make([]float64, len(vals))
	buf := make([]float64, 0, window)
	for i := range vals {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(vals) {
			hi = len(vals)
		}
		buf = append(buf[:0], vals[lo:hi]...)
		sort.Float64s(buf)
		n := len(buf)
		k := int(q * float64(n-1))
		out[i] = buf[k]
	}
	return out
}

// MedianWindow returns the centred rolling median of vals.
func MedianWindow(vals []float64, window int) []float64 {
	return RollingQuantile(vals, window, 0.5)
}

// Despike replaces values deviating from the wide rolling baseline (the
// 30th percentile, robust against anomaly-dense stretches) by more than
// frac (relative) with that baseline — the automated stand-in for the
// paper's manual cleaning of large anomalies.
func Despike(vals []float64, window int, frac float64) []float64 {
	base := RollingQuantile(vals, window, baselineQuantile)
	out := make([]float64, len(vals))
	for i, v := range vals {
		b := base[i]
		dev := v - b
		if dev < 0 {
			dev = -dev
		}
		if b > 0 && dev > frac*b {
			out[i] = b
		} else {
			out[i] = v
		}
	}
	return out
}

// Smooth applies the full §4.2 pipeline: despike against the wide median,
// then smooth with the narrow median window.
func Smooth(vals []float64) []float64 {
	return MedianWindow(Despike(vals, DefaultDespikeWindow, DefaultDespikeFraction), DefaultMedianWindow)
}

// Relative normalises a series to its first element (the paper's
// "relative to the start of our data set").
func Relative(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 || vals[0] == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / vals[0]
	}
	return out
}

// GrowthResult is the Fig 5 / Fig 6 material for one source set.
type GrowthResult struct {
	Days []simtime.Day
	// Adoption is the smoothed DPS-use series relative to day 0.
	Adoption []float64
	// Expansion is the smoothed namespace series relative to day 0.
	Expansion []float64
}

// AdoptionGrowth is the final/initial ratio of the adoption series.
func (g GrowthResult) AdoptionGrowth() float64 {
	if len(g.Adoption) == 0 {
		return 0
	}
	return g.Adoption[len(g.Adoption)-1]
}

// ExpansionGrowth is the final/initial ratio of the namespace series.
func (g GrowthResult) ExpansionGrowth() float64 {
	if len(g.Expansion) == 0 {
		return 0
	}
	return g.Expansion[len(g.Expansion)-1]
}

// Growth computes the §4.2 trend for a set of sources (combined): the
// smoothed, anomaly-cleaned, normalised DPS-use series against the
// namespace expansion.
func (a *Aggregator) Growth(sources []string) GrowthResult {
	days := a.Days(sources[0])
	var g GrowthResult
	if len(days) == 0 {
		return g
	}
	g.Days = days
	use := make([]float64, len(days))
	measured := make([]float64, len(days))
	for i, d := range days {
		use[i] = float64(a.SumAny(sources, d))
		measured[i] = float64(a.SumMeasured(sources, d))
	}
	mask := a.degradedMask(days)
	g.Adoption = Relative(SmoothMasked(use, mask))
	g.Expansion = Relative(SmoothMasked(measured, mask))
	return g
}

// ProviderGrowth computes the smoothed relative series for one provider
// (the per-provider contributions called out in §4.2).
func (a *Aggregator) ProviderGrowth(sources []string, p int) GrowthResult {
	days := a.Days(sources[0])
	var g GrowthResult
	if len(days) == 0 {
		return g
	}
	g.Days = days
	use := make([]float64, len(days))
	for i, d := range days {
		use[i] = float64(a.SumProvider(sources, p, d))
	}
	g.Adoption = Relative(SmoothMasked(use, a.degradedMask(days)))
	return g
}
