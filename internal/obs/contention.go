package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Contention profiling control. The runtime's mutex and block profilers
// are free when off and cheap when sampled; every obs-serving binary
// exposes them behind the same pair of flags (-prof-mutex, -prof-block)
// so a contended run can be diagnosed without a rebuild:
//
//	-prof-mutex 5    sample 1/5 of contended mutex events
//	-prof-block 1000 sample blocking events lasting >= 1000ns
//
// /debug/contention summarises the top contended sites as JSON; the full
// profiles remain available in pprof form at /debug/pprof/mutex and
// /debug/pprof/block.

// profiling state mirrored for the summary endpoint (the runtime offers
// a getter only for the mutex fraction).
var (
	mutexFraction atomic.Int64
	blockRate     atomic.Int64
)

// SetContentionProfiling enables (or, with zeros, disables) runtime
// mutex and block profiling. mutexFrac is the reciprocal sampling rate
// of contended mutex events (runtime.SetMutexProfileFraction); blockNS
// samples blocking events lasting at least that many nanoseconds
// (runtime.SetBlockProfileRate). Negative values leave the respective
// profiler untouched.
func SetContentionProfiling(mutexFrac, blockNS int) {
	if mutexFrac >= 0 {
		runtime.SetMutexProfileFraction(mutexFrac)
		mutexFraction.Store(int64(mutexFrac))
	}
	if blockNS >= 0 {
		runtime.SetBlockProfileRate(blockNS)
		blockRate.Store(int64(blockNS))
	}
}

// ContentionSite is one contended stack in the /debug/contention summary.
type ContentionSite struct {
	// Site is the deepest non-runtime frame — where the contended lock
	// lives in application code.
	Site string `json:"site"`
	// Stack is the frames from Site outward (capped for readability).
	Stack []string `json:"stack"`
	// Count is how many sampled events hit this stack.
	Count int64 `json:"count"`
	// Cycles is the sampled wait time in CPU cycles (the runtime's
	// native unit; comparable across sites within one process).
	Cycles int64 `json:"cycles"`
	// SharePct is Cycles as a percentage of the profile's total.
	SharePct float64 `json:"share_pct"`
}

// ContentionSummary is the /debug/contention response body.
type ContentionSummary struct {
	MutexFraction int              `json:"mutex_fraction"` // 0 = off
	BlockRateNS   int              `json:"block_rate_ns"`  // 0 = off
	Mutex         []ContentionSite `json:"mutex"`
	Block         []ContentionSite `json:"block"`
}

// ContentionHandler serves the /debug/contention summary: the top-N
// (default 10, ?n=) mutex- and block-profile stacks by sampled wait
// cycles. With profiling off the lists are empty and the rates report 0,
// so the endpoint is always safe to scrape.
func ContentionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
			n = v
		}
		sum := ContentionSummary{
			MutexFraction: int(mutexFraction.Load()),
			BlockRateNS:   int(blockRate.Load()),
			Mutex:         topContention(runtime.MutexProfile, n),
			Block:         topContention(runtime.BlockProfile, n),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	})
}

// topContention snapshots one of the runtime's contention profiles
// (runtime.MutexProfile or runtime.BlockProfile) and returns the top n
// stacks by cycles.
func topContention(profile func([]runtime.BlockProfileRecord) (int, bool), n int) []ContentionSite {
	recs := make([]runtime.BlockProfileRecord, 64)
	for {
		cnt, ok := profile(recs)
		if ok {
			recs = recs[:cnt]
			break
		}
		recs = make([]runtime.BlockProfileRecord, cnt+cnt/2+8)
	}
	var total int64
	for i := range recs {
		total += recs[i].Cycles
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Cycles > recs[j].Cycles })
	if len(recs) > n {
		recs = recs[:n]
	}
	out := make([]ContentionSite, 0, len(recs))
	for i := range recs {
		site := ContentionSite{Count: recs[i].Count, Cycles: recs[i].Cycles}
		if total > 0 {
			site.SharePct = float64(recs[i].Cycles) / float64(total) * 100
		}
		site.Site, site.Stack = symbolize(recs[i].Stack())
		out = append(out, site)
	}
	return out
}

// symbolize renders a profile stack: every frame as "func file:line"
// (capped at 6), and the site as the deepest frame outside the runtime
// and sync packages — the application code holding the lock.
func symbolize(pcs []uintptr) (site string, stack []string) {
	frames := runtime.CallersFrames(pcs)
	for len(stack) < 6 {
		f, more := frames.Next()
		if f.Function == "" {
			if !more {
				break
			}
			continue
		}
		short := f.Function
		if i := strings.LastIndexByte(short, '/'); i >= 0 {
			short = short[i+1:]
		}
		line := short + " " + trimPath(f.File) + ":" + strconv.Itoa(f.Line)
		stack = append(stack, line)
		if site == "" && !strings.HasPrefix(short, "runtime.") && !strings.HasPrefix(short, "sync.") {
			site = line
		}
		if !more {
			break
		}
	}
	if site == "" && len(stack) > 0 {
		site = stack[0]
	}
	return site, stack
}

// trimPath keeps the last two path elements of a source file, enough to
// identify it without the build machine's GOPATH noise.
func trimPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return p
	}
	j := strings.LastIndexByte(p[:i], '/')
	if j < 0 {
		return p
	}
	return p[j+1:]
}
