// Command dpsapi serves detection queries over a measurement dataset
// written by cmd/dpsmeasure -out (the .dpsa archive):
//
//	GET /v1/domain/{name}           full detection history of one domain
//	GET /v1/provider/{name}/series  daily use counts, raw + smoothed
//	GET /v1/day/{date}              per-provider totals for one day
//	GET /v1/stats                   dataset + index summary
//
// The same listener also exposes /metrics (Prometheus text, including
// the go_*/process_* runtime gauges and build_info), expvar /debug/vars,
// pprof profiles and the /debug/contention JSON summary; -prof-mutex and
// -prof-block arm the runtime's contention profilers behind the latter
// two. The query observatory adds /debug/slo (rolling-window SLO burn
// scorecard), /debug/slowlog (N slowest requests per route), and
// /debug/topk (heavy-hitter domains and providers); its final scorecard
// is logged on drain. Admission control is layered: -qps
// rate-limits with a token bucket (429 beyond it), -max-inflight bounds
// concurrency (503 when the gate stays full past the deadline), and
// -timeout caps every request. SIGINT/SIGTERM drain gracefully: the
// listener closes, in-flight requests finish (up to -drain), then the
// process exits.
//
// With -follow the server goes live: it tails a feed of committed
// (source, day) partitions — a dpscoord coordination directory (the
// journal is the change feed) or a growing .dpsa re-saved atomically —
// verifies each partition, detects it, and folds it into the serving
// index via a copy-on-write delta publish with precise cache
// invalidation. -data becomes optional: a follower may boot from an
// empty index and converge on the feed. /v1/stats reports freshness
// (mode, epoch, lag, skips) while following.
//
// Usage:
//
//	dpsapi -data world.dpsa [-addr :8080] [-qps 0] [-max-inflight 256]
//	       [-timeout 2s] [-cache 4096] [-drain 5s] [-quiet] [-log-json]
//	       [-prof-mutex 5] [-prof-block 0]
//	dpsapi -follow coorddir/ [-data world.dpsa] [-poll 500ms]
//	       [-follow-cursor auto|off|PATH] [...]
//
// While following, the follower persists a restart cursor (journal
// offset + applied-partition snapshot, -follow-cursor, default "auto")
// so a restarted process resumes the feed instead of re-detecting the
// whole history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpsadopt/internal/api"
	"dpsadopt/internal/core"
	"dpsadopt/internal/follow"
	"dpsadopt/internal/obs"
	"dpsadopt/internal/store"
)

func main() {
	var (
		data         = flag.String("data", "", "dataset file (.dpsa) to serve (required unless -follow)")
		followTgt    = flag.String("follow", "", "live feed to tail: a dpscoord directory or a growing .dpsa")
		poll         = flag.Duration("poll", 500*time.Millisecond, "feed polling interval (with -follow)")
		followWk     = flag.Int("follow-workers", 4, "catch-up detection workers (with -follow)")
		followCursor = flag.String("follow-cursor", "auto", "restart cursor path for -follow (\"auto\" = derive from target, \"off\" = disabled)")
		addr         = flag.String("addr", ":8080", "listen address for /v1 and /metrics")
		qps          = flag.Float64("qps", 0, "admitted requests per second (0 = unlimited)")
		burst        = flag.Int("burst", 0, "token bucket depth (default: qps)")
		maxInflight  = flag.Int("max-inflight", 256, "max concurrently handled requests")
		timeout      = flag.Duration("timeout", 2*time.Second, "per-request deadline")
		cacheSize    = flag.Int("cache", 4096, "response cache entries (negative = disabled)")
		drain        = flag.Duration("drain", 5*time.Second, "graceful shutdown deadline")
		quiet        = flag.Bool("quiet", false, "suppress progress logging (warnings still shown)")
		logJSON      = flag.Bool("log-json", false, "emit structured logs as JSON")

		profMutex = flag.Int("prof-mutex", 0, "mutex profiling fraction (runtime.SetMutexProfileFraction; 0 = off); served at /debug/pprof/mutex and /debug/contention")
		profBlock = flag.Int("prof-block", 0, "block profiling rate in ns (runtime.SetBlockProfileRate; 0 = off); served at /debug/pprof/block and /debug/contention")
	)
	flag.Parse()
	obs.SetContentionProfiling(*profMutex, *profBlock)
	if *data == "" && *followTgt == "" {
		fmt.Fprintln(os.Stderr, "dpsapi: -data FILE required (or -follow TARGET)")
		os.Exit(2)
	}

	if *logJSON {
		obs.SetLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, true))
	}
	if *quiet {
		obs.SetQuiet()
	}
	log := obs.Logger()

	// Boot: the -data file streams through store.Open + api.NewIndexReader
	// — partitions are pread, detected, and released one at a time, so
	// peak memory is bounded by the detection pool, not the dataset. A
	// follower may start with nothing — an absent or omitted data file
	// serves an empty index that converges on the feed.
	t0 := time.Now()
	refs := core.MustGroundTruth()
	var idx *api.Index
	var bootKeys []store.PartitionKey
	if *data != "" {
		r, err := store.Open(*data)
		switch {
		case errors.Is(err, os.ErrNotExist) && *followTgt != "":
			log.Info("data file absent; starting empty and following", "path", *data)
			idx = api.NewIndex(store.New(), refs)
		case err != nil:
			fatal(err)
		default:
			built, berr := api.NewIndexReader(r, refs)
			failed := make(map[store.PartitionKey]bool)
			var ibe *api.IndexBuildError
			if errors.As(berr, &ibe) {
				log.Warn("index built degraded; unreadable partitions skipped",
					"path", *data, "skipped", len(ibe.Failed), "detail", ibe.Error())
				for _, pf := range ibe.Failed {
					failed[store.PartitionKey{Source: pf.Source, Day: pf.Day}] = true
				}
			} else if berr != nil {
				fatal(berr)
			}
			idx = built
			// Seed only the partitions that actually made it into the
			// index: a follower re-detects (or skips) the failures.
			for _, k := range r.Keys() {
				if !failed[k] {
					bootKeys = append(bootKeys, k)
				}
			}
			info := r.Info()
			r.Close()
			log.Info("dataset opened (streaming)", "path", *data,
				"version", info.Version, "partitions", info.Partitions, "rows", info.Rows,
				"file_bytes", info.FileBytes,
				"elapsed", time.Since(t0).Round(time.Millisecond).String())
		}
	} else {
		log.Info("no -data; booting empty index from feed", "follow", *followTgt)
		idx = api.NewIndex(store.New(), refs)
	}
	st := idx.Stats()
	partitions, buildTime := idx.BuildStats()
	dst := idx.DetectStats()
	log.Info("index built",
		"domains", st.DomainsDetected, "days", st.DaysIndexed,
		"sources", st.Sources, "partitions", partitions,
		"elapsed", buildTime.Round(time.Millisecond).String(),
		"partitions_per_sec", fmt.Sprintf("%.1f", dst.PartitionsPerSec()),
		"workers", dst.Workers,
		"utilization", fmt.Sprintf("%.3f", dst.Utilization()),
		"scan", dst.Scan.Round(time.Millisecond).String(),
		"merge", dst.Merge.Round(time.Millisecond).String(),
		"barrier", dst.Barrier.Round(time.Millisecond).String())

	srv := api.NewServer(idx, api.Config{
		QPS:          *qps,
		Burst:        *burst,
		MaxInflight:  *maxInflight,
		Timeout:      *timeout,
		CacheEntries: *cacheSize,
	})
	// Live follow: tail the feed into the serving index for the process
	// lifetime. The follower is seeded with the boot store's partitions
	// so catch-up starts at the first partition the index has not seen.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var followDone chan struct{}
	if *followTgt != "" {
		cursor := *followCursor
		if cursor == "off" {
			cursor = ""
		}
		fl, err := follow.New(follow.Config{
			Target:     *followTgt,
			Refs:       refs,
			Sink:       srv,
			Poll:       *poll,
			Workers:    *followWk,
			CursorPath: cursor,
		})
		if err != nil {
			fatal(err)
		}
		fl.Seed(bootKeys)
		srv.SetFreshnessFunc(fl.Freshness)
		followDone = make(chan struct{})
		go func() {
			defer close(followDone)
			_ = fl.Run(ctx) // returns only on ctx cancellation
		}()
		log.Info("following feed", "target", *followTgt, "mode", string(fl.Mode()), "poll", poll.String())
	}

	// The query observatory re-evaluates its SLO scorecard periodically,
	// keeping the slo_* gauges fresh and logging status transitions.
	stopEval := srv.Observatory().StartEvaluator(10 * time.Second)
	defer stopEval()
	// One listener for everything: the API routes share the mux with
	// /metrics, /debug/vars, /debug/pprof and /debug/contention so
	// operators scrape the serving-path counters from the same port they
	// query. The runtime collector keeps the go_*/process_* gauges (GC
	// pause, sched latency, heap, RSS) current for the process lifetime.
	rc := obs.StartRuntimeCollector(obs.Default(), 0)
	defer rc.Close()
	mux := obs.NewMux(obs.Default())
	srv.Register(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Info("serving", "addr", ln.Addr().String(),
		"routes", "/v1/domain/{name} /v1/provider/{name}/series /v1/day/{date} /v1/stats /metrics /debug/slo /debug/slowlog /debug/topk")

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		log.Info("signal received; draining", "deadline", drain.String())
		if followDone != nil {
			<-followDone // follower sees the same ctx; wait out any in-flight apply
		}
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Warn("drain incomplete, closing", "err", err)
			_ = httpSrv.Close()
		}
		logFinalScorecard(log, srv.Observatory())
		log.Info("drained; bye")
	}
}

// logFinalScorecard leaves a one-line SLO record when the process exits,
// so even short-lived runs document how they served.
func logFinalScorecard(log *slog.Logger, o *obs.Observatory) {
	if o == nil {
		return
	}
	sc := o.Publish()
	ok, warn, breach := sc.CountStatus()
	worst, burn := sc.Worst()
	log.Info("final slo scorecard",
		"objectives", len(sc.Objectives), "ok", ok, "warn", warn, "breach", breach,
		"worst", worst, "worst_burn", fmt.Sprintf("%.2f", burn))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsapi:", err)
	os.Exit(1)
}
