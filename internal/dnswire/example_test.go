package dnswire_test

import (
	"fmt"
	"net/netip"

	"dpsadopt/internal/dnswire"
)

// ExampleMessage shows a query/response round trip through the wire
// format, mirroring the paper's Section 2 CNAME example.
func ExampleMessage() {
	query := dnswire.NewQuery(7, "www.examp.le", dnswire.TypeA)
	wire, _ := query.Pack()

	// The authoritative side decodes, answers, and re-encodes.
	decoded, _ := dnswire.Unpack(wire)
	resp := decoded.Reply()
	resp.Flags.Authoritative = true
	resp.Answers = []dnswire.RR{
		{Name: "www.examp.le", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.CNAME{Target: "foob.ar"}},
		{Name: "foob.ar", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.A{Addr: netip.MustParseAddr("10.0.0.2")}},
	}
	respWire, _ := resp.Pack()

	back, _ := dnswire.Unpack(respWire)
	for _, rr := range back.Answers {
		fmt.Println(rr)
	}
	// Output:
	// www.examp.le 300 IN CNAME foob.ar
	// foob.ar 60 IN A 10.0.0.2
}

// ExampleCanonicalName shows name normalisation.
func ExampleCanonicalName() {
	n, _ := dnswire.CanonicalName("WWW.Example.COM.")
	fmt.Println(n)
	fmt.Println(dnswire.Parent(n))
	fmt.Println(dnswire.IsSubdomain(n, "example.com"))
	// Output:
	// www.example.com
	// example.com
	// true
}
