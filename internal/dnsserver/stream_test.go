package dnsserver

import (
	"net/netip"
	"testing"

	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/dnszone"
	"dpsadopt/internal/transport"
)

func startStreamServer(t *testing.T) (*transport.Mem, netip.AddrPort) {
	t.Helper()
	network := transport.NewMem(41)
	s := New()
	s.AddZone(testZone())
	run, err := Start(s, network, "10.0.0.3")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { run.Stop() })
	stream, err := StartStream(s, network, "10.0.0.3")
	if err != nil || stream == nil {
		t.Fatalf("StartStream: %v", err)
	}
	t.Cleanup(func() { stream.Stop() })
	return network, netip.MustParseAddrPort("10.0.0.3:53")
}

func TestStreamQuery(t *testing.T) {
	network, server := startStreamServer(t)
	conn, err := network.DialStream(netip.MustParseAddr("10.9.0.7"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(77, "www.examp.le", dnswire.TypeA)
	wire, _ := q.Pack()
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.ReadFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || len(resp.Answers) != 1 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestStreamGarbageDropsConnection(t *testing.T) {
	network, server := startStreamServer(t)
	conn, err := network.DialStream(netip.MustParseAddr("10.9.0.8"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A framed blob that is not a DNS message: the server closes.
	if err := dnswire.WriteFramed(conn, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := dnswire.ReadFramed(conn); err == nil {
		t.Error("expected closed connection after garbage")
	}
}

func TestAXFRServerSide(t *testing.T) {
	network, server := startStreamServer(t)
	conn, err := network.DialStream(netip.MustParseAddr("10.9.0.9"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(5, "examp.le", dnswire.TypeAXFR)
	wire, _ := q.Pack()
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.ReadFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Flags.RCode != dnswire.RCodeNoError || len(resp.Answers) < 3 {
		t.Fatalf("axfr resp = %+v", resp)
	}
	if resp.Answers[0].Type != dnswire.TypeSOA || resp.Answers[len(resp.Answers)-1].Type != dnswire.TypeSOA {
		t.Error("transfer not SOA-delimited")
	}
}

func TestAXFRRefusedForUnknownZone(t *testing.T) {
	network, server := startStreamServer(t)
	conn, err := network.DialStream(netip.MustParseAddr("10.9.0.10"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(6, "foreign.test", dnswire.TypeAXFR)
	wire, _ := q.Pack()
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.ReadFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := dnswire.Unpack(msg)
	if resp.Flags.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.Flags.RCode)
	}
}

func TestAXFRServFailWithoutSOA(t *testing.T) {
	network := transport.NewMem(43)
	s := New()
	z := dnszone.MustNew("nosoa.test")
	z.MustAdd(dnswire.RR{Name: "nosoa.test", Type: dnswire.TypeNS, TTL: 1, Data: dnswire.NS{Host: "ns.nosoa.test"}})
	s.AddZone(z)
	stream, err := StartStream(s, network, "10.0.0.4")
	if err != nil || stream == nil {
		t.Fatalf("StartStream: %v", err)
	}
	defer stream.Stop()
	conn, err := network.DialStream(netip.MustParseAddr("10.9.0.11"), netip.MustParseAddrPort("10.0.0.4:53"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(8, "nosoa.test", dnswire.TypeAXFR)
	wire, _ := q.Pack()
	if err := dnswire.WriteFramed(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.ReadFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := dnswire.Unpack(msg)
	if resp.Flags.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.Flags.RCode)
	}
}
