// Package pfx2as implements the Routeviews Prefix-to-AS mapping used to
// supplement every measured IP address with its origin AS (paper §3.2):
// "The origin AS of the most-specific prefix in which an address was
// contained at measurement time is determined on the basis of the
// Routeviews Prefix-to-AS mappings (pfx2as) data set."
//
// Three lookup structures are provided. Walk (per-prefix-length hash
// probing) is the default; Scan (linear with best-match tracking) and
// Search (sorted-interval binary search with backward scan) exist as
// ablation baselines benchmarked in the repository root.
package pfx2as

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Origins is the origin-AS set of a prefix; multi-origin (MOAS) prefixes
// carry more than one entry.
type Origins []uint32

// Entry is one mapping line: a prefix and its origin set.
type Entry struct {
	Prefix  netip.Prefix
	Origins Origins
}

// Table answers most-specific-prefix origin lookups.
type Table interface {
	// Lookup returns the origin set of the most specific prefix
	// containing addr, with ok=false when uncovered.
	Lookup(addr netip.Addr) (Origins, bool)
	// Len returns the number of entries.
	Len() int
}

// Parse reads the Routeviews pfx2as text format: three tab-separated
// fields per line — prefix address, prefix length, origin ASNs joined by
// '_' (MOAS) or ',' (AS sets); both separators are accepted and merged.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("pfx2as: line %d: %d fields", line, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %w", line, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil || bits < 0 || bits > addr.BitLen() {
			return nil, fmt.Errorf("pfx2as: line %d: bad length %q", line, fields[1])
		}
		var origins Origins
		for _, part := range strings.FieldsFunc(fields[2], func(r rune) bool { return r == '_' || r == ',' }) {
			asn, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("pfx2as: line %d: bad ASN %q", line, part)
			}
			origins = append(origins, uint32(asn))
		}
		if len(origins) == 0 {
			return nil, fmt.Errorf("pfx2as: line %d: no origins", line)
		}
		out = append(out, Entry{Prefix: netip.PrefixFrom(addr, bits).Masked(), Origins: origins})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Walk is the default Table: entries are bucketed per prefix length and a
// lookup probes only the lengths present, most specific first.
type Walk struct {
	entries map[netip.Prefix]Origins
	lens4   [33]bool
	lens6   [129]bool
	n       int
}

// NewWalk builds a Walk table from entries; later duplicates of the same
// prefix replace earlier ones.
func NewWalk(entries []Entry) *Walk {
	w := &Walk{entries: make(map[netip.Prefix]Origins, len(entries))}
	for _, e := range entries {
		if _, dup := w.entries[e.Prefix]; !dup {
			w.n++
		}
		w.entries[e.Prefix] = e.Origins
		if e.Prefix.Addr().Is4() {
			w.lens4[e.Prefix.Bits()] = true
		} else {
			w.lens6[e.Prefix.Bits()] = true
		}
	}
	return w
}

// Lookup implements Table.
func (w *Walk) Lookup(addr netip.Addr) (Origins, bool) {
	maxBits := 32
	lens := w.lens4[:]
	if !addr.Is4() {
		maxBits = 128
		lens = w.lens6[:]
	}
	for bits := maxBits; bits >= 0; bits-- {
		if !lens[bits] {
			continue
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if o, ok := w.entries[p]; ok {
			return o, true
		}
	}
	return nil, false
}

// Len implements Table.
func (w *Walk) Len() int { return w.n }

// Scan is the naive baseline: a linear pass tracking the longest match.
type Scan struct {
	entries []Entry
}

// NewScan builds a Scan table.
func NewScan(entries []Entry) *Scan {
	return &Scan{entries: append([]Entry(nil), entries...)}
}

// Lookup implements Table.
func (s *Scan) Lookup(addr netip.Addr) (Origins, bool) {
	best := -1
	var out Origins
	for _, e := range s.entries {
		if e.Prefix.Contains(addr) && e.Prefix.Bits() > best {
			best = e.Prefix.Bits()
			out = e.Origins
		}
	}
	return out, best >= 0
}

// Len implements Table.
func (s *Scan) Len() int { return len(s.entries) }

// Search keeps IPv4 entries sorted by (network address, length) and
// answers lookups with a binary search followed by a bounded backward scan
// over candidate covering prefixes. IPv6 entries fall back to an embedded
// Walk table.
type Search struct {
	v4   []searchEntry
	walk *Walk // IPv6 fallback
	n    int
	// maxSize is the address-span of the coarsest IPv4 prefix present
	// (1 << (32 - minBits)); it bounds the backward scan.
	maxSize uint64
}

type searchEntry struct {
	start   uint32 // network address
	bits    int
	origins Origins
}

// NewSearch builds a Search table.
func NewSearch(entries []Entry) *Search {
	s := &Search{n: len(entries)}
	var v6 []Entry
	for _, e := range entries {
		if e.Prefix.Addr().Is4() {
			b := e.Prefix.Masked().Addr().As4()
			s.v4 = append(s.v4, searchEntry{
				start:   uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
				bits:    e.Prefix.Bits(),
				origins: e.Origins,
			})
		} else {
			v6 = append(v6, e)
		}
	}
	sort.Slice(s.v4, func(i, j int) bool {
		if s.v4[i].start != s.v4[j].start {
			return s.v4[i].start < s.v4[j].start
		}
		return s.v4[i].bits < s.v4[j].bits
	})
	minBits := 32
	for _, e := range s.v4 {
		if e.bits < minBits {
			minBits = e.bits
		}
	}
	s.maxSize = uint64(1) << (32 - minBits)
	s.walk = NewWalk(v6)
	return s
}

// Lookup implements Table.
func (s *Search) Lookup(addr netip.Addr) (Origins, bool) {
	if !addr.Is4() {
		return s.walk.Lookup(addr)
	}
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	// First entry with start > v; candidates are at i-1 and before.
	i := sort.Search(len(s.v4), func(i int) bool { return s.v4[i].start > v })
	best := -1
	var out Origins
	for j := i - 1; j >= 0; j-- {
		e := s.v4[j]
		size := uint64(1) << (32 - e.bits)
		if uint64(e.start)+size <= uint64(v) {
			// This entry ends before v, but a coarser prefix further
			// left may still cover it. Earlier entries start at or
			// before e.start, so once even the coarsest prefix length
			// present in the table could not stretch from here to v,
			// nothing earlier can cover v either.
			if uint64(e.start)+s.maxSize <= uint64(v) {
				break
			}
			continue
		}
		if e.bits > best {
			best = e.bits
			out = e.origins
		}
		if best == 32 {
			break
		}
	}
	return out, best >= 0
}

// Len implements Table.
func (s *Search) Len() int { return s.n }
