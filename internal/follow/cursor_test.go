package follow

import (
	"os"
	"path/filepath"
	"testing"

	"dpsadopt/internal/api"
	"dpsadopt/internal/core"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
)

// TestFollowCursorSeededRestart is the satellite's happy path: a
// follower that drained a coord feed saves its cursor; a restarted
// follower whose boot index already holds everything (dpsapi reboots
// from -data) restores the cursor, resumes the journal at the saved
// offset, and re-detects nothing.
func TestFollowCursorSeededRestart(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com", "net"}, 3)

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f1, err := New(Config{Target: dir, Refs: refs, Sink: srv, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	assembled := runCoordinator(t, dir, refs, parts)
	drain(t, f1)
	if st := f1.Status(); st.Applied != len(parts) {
		t.Fatalf("first instance: %+v", st)
	}
	cursor := filepath.Join(dir, "follower.cursor.json")
	if _, err := os.Stat(cursor); err != nil {
		t.Fatalf("CursorAuto wrote no cursor: %v", err)
	}
	wantOff, wantSeq := f1.reader.Offset()

	// Restart, seeded the way dpsapi seeds after booting from a dataset.
	var keys []store.PartitionKey
	for _, p := range parts {
		keys = append(keys, store.PartitionKey{Source: p.Source, Day: p.Day})
	}
	srv2 := api.NewServer(api.NewIndex(assembled, refs), api.Config{ObservatoryOff: true})
	f2, err := New(Config{Target: dir, Refs: refs, Sink: srv2, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	f2.Seed(keys)
	if n, err := f2.Poll(t.Context()); n != 0 || err != nil {
		t.Fatalf("restarted poll: n=%d err=%v", n, err)
	}
	// The journal reader sits exactly where the previous instance
	// stopped — history before the cursor was never re-read.
	if off, seq := f2.reader.Offset(); off != wantOff || seq != wantSeq {
		t.Fatalf("reader at (%d, %d), want resumed (%d, %d)", off, seq, wantOff, wantSeq)
	}
	if st := f2.Status(); st.Applied != 0 || st.Lag != 0 {
		t.Fatalf("restarted status: %+v", st)
	}
}

// TestFollowCursorUnseededRestart: restarted with an empty boot index
// (no -data on reboot), the cursor's applied partitions are requeued
// from their recorded spools and re-detected — the index converges
// without waiting for the journal to be replayed by a coordinator.
func TestFollowCursorUnseededRestart(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com"}, 3)

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f1, err := New(Config{Target: dir, Refs: refs, Sink: srv, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	assembled := runCoordinator(t, dir, refs, parts)
	drain(t, f1)

	srv2 := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f2, err := New(Config{Target: dir, Refs: refs, Sink: srv2, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, f2)
	if st := f2.Status(); st.Applied != len(parts) {
		t.Fatalf("unseeded restart applied %d, want %d: %+v", st.Applied, len(parts), st)
	}
	assertSameView(t, api.NewIndex(assembled, refs), srv2.Index())
}

// TestFollowCursorSkippedPersists: a permanently skipped partition
// (damaged spool) stays skipped across restarts instead of being
// re-attempted and re-skipped on every boot.
func TestFollowCursorSkippedPersists(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com"}, 3)
	runCoordinator(t, dir, refs, parts)
	victim := filepath.Join(dir, "spool", "com."+simtime.Day(1).String()+".dpsa")
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f1, err := New(Config{Target: dir, Refs: refs, Sink: srv, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, f1)
	if st := f1.Status(); st.Applied != 2 || st.Skipped != 1 {
		t.Fatalf("first instance: %+v", st)
	}

	srv2 := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f2, err := New(Config{Target: dir, Refs: refs, Sink: srv2, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, f2)
	st := f2.Status()
	if st.Skipped != 1 {
		t.Fatalf("skip not restored: %+v", st)
	}
	if st.Applied != 2 {
		t.Fatalf("intact partitions not re-applied: %+v", st)
	}
}

// TestFollowCursorDisabledByDefault: without CursorPath nothing is
// written next to the target — the pre-cursor contract that the
// follower touches only its own state holds.
func TestFollowCursorDisabledByDefault(t *testing.T) {
	refs := core.MustGroundTruth()
	dir := t.TempDir()
	parts := coordParts([]string{"com"}, 2)
	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: dir, Refs: refs, Sink: srv})
	if err != nil {
		t.Fatal(err)
	}
	runCoordinator(t, dir, refs, parts)
	drain(t, f)
	if _, err := os.Stat(filepath.Join(dir, "follower.cursor.json")); !os.IsNotExist(err) {
		t.Fatal("cursor written despite CursorPath being unset")
	}
}

// TestFollowCursorDatasetMode: in dataset mode the cursor derives its
// path from the target file and round-trips the skip set; a mode
// mismatch (coord cursor fed to a dataset follower) is ignored.
func TestFollowCursorDatasetMode(t *testing.T) {
	refs := core.MustGroundTruth()
	path := filepath.Join(t.TempDir(), "data.dpsa")
	all := store.New()
	all.Absorb(synthPart(t, refs, "com", 0))
	if err := all.Save(path); err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(api.NewIndex(store.New(), refs), api.Config{ObservatoryOff: true})
	f, err := New(Config{Target: path, Refs: refs, Sink: srv, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, f)
	if _, err := os.Stat(path + ".cursor.json"); err != nil {
		t.Fatalf("dataset-mode cursor missing: %v", err)
	}

	// A coord-mode cursor at the same path must be ignored, not crash
	// or corrupt state.
	if err := os.WriteFile(path+".cursor.json", []byte(`{"mode":"coord","journal_offset":999,"journal_seq":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := New(Config{Target: path, Refs: refs, Sink: srv, CursorPath: CursorAuto})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f2.Poll(t.Context()); err != nil {
		t.Fatalf("poll with mismatched cursor: n=%d err=%v", n, err)
	}
}
