package experiment

import (
	"context"
	"errors"
	"testing"

	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
)

// shortRun executes a 160-day run at coarse scale, covering the March 2015
// Wix/Incapsula peak. Cached across tests.
var cachedRunner *Runner

func shortRun(t testing.TB) *Runner {
	t.Helper()
	if cachedRunner != nil {
		return cachedRunner
	}
	r, err := New(Config{Scale: 20000, Workers: 4, Days: 160})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cachedRunner = r
	return r
}

func TestRunnerTable1(t *testing.T) {
	r := shortRun(t)
	rows := r.Table1()
	if len(rows) != 3 { // nl/alexa windows not reached in 160 days
		t.Fatalf("table 1 rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Days != 160 {
			t.Errorf("%s days = %d", row.Source, row.Days)
		}
		if row.DataPoints == 0 || row.UniqueSLDs == 0 || row.CompressedBytes == 0 {
			t.Errorf("%s stats empty: %+v", row.Source, row)
		}
		// Unique SLDs over the window exceed any single day's population.
		if int64(row.UniqueSLDs) > row.DataPoints {
			t.Errorf("%s: more SLDs than data points", row.Source)
		}
	}
	if rows[0].Source != "com" || rows[0].UniqueSLDs < rows[1].UniqueSLDs {
		t.Errorf("com should lead: %+v", rows[:2])
	}
}

func TestRunnerFigure2PeakVisible(t *testing.T) {
	r := shortRun(t)
	series := r.Figure2()
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	comb := series[3]
	if comb.Name != "combined" {
		t.Fatal("last series not combined")
	}
	peakDay := simtime.FromDate(2015, 3, 5)
	quietIdx, peakIdx := -1, -1
	for i, d := range comb.Days {
		if d == peakDay {
			peakIdx = i
		}
		if d == peakDay+30 {
			quietIdx = i
		}
	}
	if peakIdx < 0 || quietIdx < 0 {
		t.Fatal("days missing")
	}
	if comb.Vals[peakIdx] <= comb.Vals[quietIdx]*1.1 {
		t.Errorf("no March 2015 peak: peak %v quiet %v", comb.Vals[peakIdx], comb.Vals[quietIdx])
	}
	// The com series must dominate net and org (Fig 4 distribution).
	for i, d := range comb.Days {
		_ = d
		if series[0].Vals[i] < series[1].Vals[i] || series[0].Vals[i] < series[2].Vals[i] {
			t.Fatalf("com not dominant at index %d", i)
		}
	}
}

func TestRunnerFigure3Incapsula(t *testing.T) {
	r := shortRun(t)
	panels := r.Figure3()
	if len(panels) != 9 {
		t.Fatalf("panels = %d", len(panels))
	}
	var inc *Figure3Panel
	for i := range panels {
		if panels[i].Provider == "Incapsula" {
			inc = &panels[i]
		}
	}
	if inc == nil {
		t.Fatal("no Incapsula panel")
	}
	// At the Wix peak the AS line rises with the total while CNAME stays
	// flat (diverted Wix domains reference by AS only).
	peakDay := simtime.FromDate(2015, 3, 5)
	var peakI, quietI int
	for i, d := range inc.Days {
		if d == peakDay {
			peakI = i
		}
		if d == peakDay+30 {
			quietI = i
		}
	}
	if inc.AS[peakI] <= inc.AS[quietI] {
		t.Errorf("Incapsula AS line flat at peak: %v vs %v", inc.AS[peakI], inc.AS[quietI])
	}
	if inc.CNAME[peakI] > inc.CNAME[quietI]*1.5 {
		t.Errorf("Incapsula CNAME line spiked: %v vs %v", inc.CNAME[peakI], inc.CNAME[quietI])
	}
}

func TestRunnerFigure4(t *testing.T) {
	r := shortRun(t)
	f4 := r.Figure4()
	if f4.Namespace["com"] < 0.78 || f4.Namespace["com"] > 0.87 {
		t.Errorf("com namespace share = %.4f, want ≈0.8247", f4.Namespace["com"])
	}
	if f4.DPSUse["com"] < f4.Namespace["com"] {
		t.Errorf("DPS use should skew toward com: %.4f vs %.4f", f4.DPSUse["com"], f4.Namespace["com"])
	}
	sum := f4.DPSUse["com"] + f4.DPSUse["net"] + f4.DPSUse["org"]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("DPS shares sum = %v", sum)
	}
}

func TestRunnerFigure7And8(t *testing.T) {
	r := shortRun(t)
	f7 := r.Figure7()
	if len(f7) != 9 {
		t.Fatalf("f7 panels = %d", len(f7))
	}
	// Incapsula: the March peak contributes influx in an early bin.
	var inc Figure7Panel
	for _, p := range f7 {
		if p.Provider == "Incapsula" {
			inc = p
		}
	}
	influx := 0
	for _, b := range inc.Bins {
		influx += b.In
	}
	if influx == 0 {
		t.Error("no Incapsula influx despite Wix peak")
	}
	f8 := r.Figure8()
	if len(f8) != 9 {
		t.Fatalf("f8 panels = %d", len(f8))
	}
	// 160 days suffice for short-cycle on-demand customers (e.g.
	// Neustar/Level 3 with 4-day p80) to show ≥3 peaks.
	total := 0
	for _, p := range f8 {
		total += p.Stats.Domains
	}
	if total == 0 {
		t.Error("no on-demand domains found across providers")
	}
}

func TestRunnerAnomalyAttribution(t *testing.T) {
	r := shortRun(t)
	reports, err := r.Anomalies(1)
	if err != nil {
		t.Fatal(err)
	}
	var inc *AnomalyReport
	for i := range reports {
		if reports[i].Provider == "Incapsula" {
			inc = &reports[i]
		}
	}
	if inc == nil {
		t.Fatal("no Incapsula anomaly")
	}
	if len(inc.Attribution.Shared) == 0 || inc.Attribution.Shared[0].SLD != "wixdns.net" {
		t.Errorf("Incapsula anomaly not traced to Wix: %+v", inc.Attribution.Shared)
	}
	if inc.Attribution.Shared[0].Fraction < 0.9 {
		t.Errorf("weak attribution: %+v", inc.Attribution.Shared[0])
	}
}

func TestRunnerTable2Discovery(t *testing.T) {
	r := shortRun(t)
	// 2015-07-25 is quiet (no third-party episode in flight).
	res, err := r.Table2(simtime.FromDate(2015, 7, 25))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discovered) != 9 {
		t.Fatalf("rows = %d", len(res.Discovered))
	}
	// At this coarse scale small reference populations (like Incapsula's
	// 0.02% NS-delegation share) fall below MinSupport; CloudFlare must
	// still be recovered exactly, and Incapsula's AS + CNAME identity
	// too. The scale-1000 run in EXPERIMENTS.md recovers all rows.
	for i, row := range res.Discovered {
		switch row.Name {
		case "CloudFlare":
			if !res.Exact[i] {
				t.Errorf("CloudFlare not exactly recovered: %+v vs %+v", row, res.Truth[i])
			}
		case "Incapsula":
			if len(row.ASNs) != 1 || row.ASNs[0] != 19551 || len(row.CNAMESLDs) != 1 || row.CNAMESLDs[0] != "incapdns.net" {
				t.Errorf("Incapsula AS/CNAME wrong: %+v", row)
			}
		}
	}
}

func TestRunnerRejectsDoubleRun(t *testing.T) {
	r := shortRun(t)
	if err := r.Run(context.Background()); err == nil {
		t.Error("second Run accepted")
	}
}

func TestRunnerKeepStore(t *testing.T) {
	r, err := New(Config{Scale: 200000, Workers: 2, Days: 3, KeepStore: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(r.Store.Days("com")) != 3 {
		t.Errorf("store days = %v", r.Store.Days("com"))
	}
	// Without KeepStore the partitions are dropped.
	r2, err := New(Config{Scale: 200000, Workers: 2, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(r2.Store.Days("com")) != 0 {
		t.Error("partitions not dropped in streaming mode")
	}
	// Stats survive the drop.
	if rows := r2.Table1(); len(rows) == 0 || rows[0].DataPoints == 0 {
		t.Error("stats lost")
	}
	_ = measure.SourceAlexa
}

func TestRunnerClassification(t *testing.T) {
	r := shortRun(t)
	rows := r.Classification()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	totalAlways := 0
	for _, row := range rows {
		totalAlways += row.AlwaysOn
	}
	if totalAlways == 0 {
		t.Error("no always-on domains classified")
	}
}

// TestRunnerFullWindowTiny runs all 550 days at a very coarse scale,
// exercising the .nl and Alexa windows that the 160-day short run never
// reaches.
func TestRunnerFullWindowTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full window")
	}
	r, err := New(Config{Scale: 100_000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rows := r.Table1()
	if len(rows) != 5 {
		t.Fatalf("table 1 rows = %d, want 5 (com/net/org/nl/alexa)", len(rows))
	}
	for _, row := range rows {
		wantDays := 550
		if row.Source == "nl" || row.Source == "alexa" {
			wantDays = 184
		}
		if row.Days != wantDays {
			t.Errorf("%s days = %d, want %d", row.Source, row.Days, wantDays)
		}
	}
	f6 := r.Figure6()
	if len(f6.NL.Days) != 184 || len(f6.Alexa.Days) != 184 {
		t.Fatalf("fig 6 days: nl=%d alexa=%d", len(f6.NL.Days), len(f6.Alexa.Days))
	}
	// At 1:100000 the scaled .nl DPS population can round to zero; the
	// growth is then 0 by convention. Anything else must be sane.
	if g := f6.NL.AdoptionGrowth(); g != 0 && (g < 0.9 || g > 1.6) {
		t.Errorf("nl adoption growth = %.3f", g)
	}
	g5 := r.Figure5()
	if g := g5.ExpansionGrowth(); g < 1.05 || g > 1.13 {
		t.Errorf("expansion growth = %.3f, want ≈1.09", g)
	}
	if g := g5.AdoptionGrowth(); g < 1.0 || g > 1.6 {
		t.Errorf("adoption growth = %.3f (coarse scale tolerance)", g)
	}
}

// TestRunnerCancellationDropsPartialDay: a SIGTERM-style cancellation
// mid-run surfaces a wrapped context error, keeps the accounting ledger
// for the days that committed, and leaves no partial-day partitions in
// the store.
func TestRunnerCancellationDropsPartialDay(t *testing.T) {
	r, err := New(Config{Scale: 200000, Workers: 2, Days: 6, KeepStore: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	committed := 0
	r.Cfg.OnProgress = func(done, total int) {
		committed = done
		if done == 2 {
			cancel()
		}
	}
	err = r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want wrapped context.Canceled", err)
	}
	if committed == 0 || committed >= 6 {
		t.Fatalf("committed %d days before cancel, want partial progress", committed)
	}
	if got := len(r.Accounting()); got != committed {
		t.Fatalf("accounting has %d rows, want %d (committed days only)", got, committed)
	}
	// No partition survives past the last committed day.
	lastCommitted := r.Window().Start + simtime.Day(committed) - 1
	for _, src := range r.Store.Sources() {
		for _, day := range r.Store.Days(src) {
			if day > lastCommitted {
				t.Errorf("%s/%s: partial-day partition survived cancellation", src, day)
			}
		}
	}
}
