package simtime

import (
	"testing"
	"time"
)

func TestDayConversions(t *testing.T) {
	if Day(0).String() != "2015-03-01" {
		t.Errorf("Day 0 = %s", Day(0))
	}
	if Day(4).String() != "2015-03-05" {
		t.Errorf("Day 4 = %s", Day(4)) // the paper's 1.1M-domain peak
	}
	if got := FromDate(2016, time.August, 31); got != 549 {
		t.Errorf("2016-08-31 = day %d, want 549", got)
	}
	if got := FromDate(2016, time.March, 1); got != 366 {
		t.Errorf("2016-03-01 = day %d, want 366 (2016 is a leap year)", got)
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("2015-11-22")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2015-11-22" {
		t.Errorf("round trip = %s", d)
	}
	if _, err := Parse("not-a-date"); err == nil {
		t.Error("bad date accepted")
	}
}

func TestRange(t *testing.T) {
	r := Range{Start: 10, End: 20}
	if !r.Contains(10) || r.Contains(20) || !r.Contains(19) || r.Contains(9) {
		t.Error("Contains wrong at boundaries")
	}
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	if (Range{Start: 5, End: 5}).Len() != 0 {
		t.Error("empty range Len != 0")
	}
	if (Range{Start: 9, End: 2}).Len() != 0 {
		t.Error("inverted range Len != 0")
	}
}
