package coord

// The journal doubles as a change feed: every state transition of every
// partition is one appended line, so a process that remembers its byte
// offset and the last sequence number it saw can discover newly
// committed partitions without talking to the coordinator at all. That
// is exactly what the follower tier (internal/follow) does — it tails
// journal.jsonl read-only while a live coordinator appends to it.
//
// The reader must never mutate the file: torn tails belong to the
// coordinator's own replay (openJournal truncates them); a follower
// simply stops in front of a torn or still-being-written line and picks
// it up on the next poll once the append completes.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dpsadopt/internal/simtime"
)

// Exported journal record types, for consumers of the feed.
const (
	RecAdd     = recAdd
	RecLease   = recLease
	RecCommit  = recCommit
	RecRequeue = recRequeue
	RecFail    = recFail
)

// Record is one journal entry as seen through the feed. Commit records
// carry the spool path of the committed partition.
type Record struct {
	Seq     uint64
	Type    string
	Source  string
	Day     simtime.Day
	Lease   uint64
	Attempt int
	Spool   string
	Err     string
}

// Partition returns the (source, day) the record is about.
func (r Record) Partition() Partition { return Partition{Source: r.Source, Day: r.Day} }

// JournalPath is the journal file under a coordination directory.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// JournalReader incrementally tails a coordination journal. It is
// strictly read-only and tail-safe: a torn or in-flight final line is
// left in place (never truncated, never delivered) until a later call
// finds it completed. Not safe for concurrent use.
type JournalReader struct {
	path string
	off  int64  // byte offset just past the last delivered record
	seq  uint64 // sequence number of the last delivered record
}

// NewJournalReader tails the journal of the coordination directory dir.
// The journal need not exist yet; Next returns nothing until it does.
func NewJournalReader(dir string) *JournalReader {
	return &JournalReader{path: JournalPath(dir)}
}

// Next returns the records appended since the previous call, in order.
// It stops (without error) at a torn tail or a sequence discontinuity —
// both mean "the rest isn't durable yet". If the file shrank below the
// reader's offset (journal replaced by a fresh run), the reader resets
// and re-delivers from the start; consumers must dedupe by partition.
func (r *JournalReader) Next() ([]Record, error) {
	data, err := os.ReadFile(r.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("coord: read journal feed: %w", err)
	}
	if int64(len(data)) < r.off {
		r.off, r.seq = 0, 0
	}
	recs, good, _ := scanJournal(data[r.off:], r.seq)
	r.off += int64(good)
	if len(recs) == 0 {
		return nil, nil
	}
	r.seq = recs[len(recs)-1].Seq
	out := make([]Record, len(recs))
	for i, rec := range recs {
		out[i] = Record{
			Seq:     rec.Seq,
			Type:    rec.Type,
			Source:  rec.Source,
			Day:     simtime.Day(rec.Day),
			Lease:   rec.Lease,
			Attempt: rec.Attempt,
			Spool:   rec.Spool,
			Err:     rec.Err,
		}
	}
	return out, nil
}

// Offset reports the reader's position: the byte offset and sequence
// number of the last delivered record (both zero before any delivery).
func (r *JournalReader) Offset() (off int64, seq uint64) { return r.off, r.seq }

// Resume restores a position previously reported by Offset — the
// restart cursor: a follower that persisted (off, seq) resumes the feed
// without re-reading history. The position is validated eagerly against
// the journal on disk (the prefix up to off must scan cleanly from
// sequence 1 and end exactly at seq), so a journal that was replaced,
// truncated, or diverged since the cursor was written is detected now
// rather than wedging Next at a phantom torn tail forever. Returns
// false — reader unmoved, still at the start — when the cursor does not
// match.
func (r *JournalReader) Resume(off int64, seq uint64) bool {
	if off <= 0 || seq == 0 {
		return false
	}
	data, err := os.ReadFile(r.path)
	if err != nil || int64(len(data)) < off {
		return false
	}
	recs, good, _ := scanJournal(data[:off], 0)
	if int64(good) != off || len(recs) == 0 || recs[len(recs)-1].Seq != seq {
		return false
	}
	r.off, r.seq = off, seq
	return true
}

// ReplayLedger folds a record stream into per-partition statuses — the
// same state machine the coordinator runs on restart, minus the
// conservative requeue of orphaned leases (a leased partition is
// reported as leased: that is what the journal says, and for a ledger
// dump the literal truth is more useful than the recovery action).
// Statuses come back in (source, day) order.
func ReplayLedger(recs []Record) []PartitionStatus {
	type state struct {
		PartitionStatus
		day simtime.Day
	}
	parts := make(map[Partition]*state)
	var order []Partition
	for _, rec := range recs {
		p := rec.Partition()
		st := parts[p]
		if st == nil {
			st = &state{
				PartitionStatus: PartitionStatus{
					Source: p.Source,
					Day:    p.Day.String(),
					State:  StatePending,
				},
				day: p.Day,
			}
			parts[p] = st
			order = append(order, p)
		}
		switch rec.Type {
		case RecAdd:
			// registration only
		case RecLease:
			st.State = StateLeased
			st.Attempts = rec.Attempt
		case RecCommit:
			st.State = StateCommitted
			st.Spool = rec.Spool
			st.Err = ""
		case RecRequeue:
			st.State = StatePending
			if rec.Attempt > st.Attempts {
				st.Attempts = rec.Attempt
			}
			st.Err = rec.Err
		case RecFail:
			st.State = StateFailed
			if rec.Attempt > st.Attempts {
				st.Attempts = rec.Attempt
			}
			st.Err = rec.Err
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Day < b.Day
	})
	out := make([]PartitionStatus, 0, len(order))
	for _, p := range order {
		out = append(out, parts[p].PartitionStatus)
	}
	return out
}
