package api

import (
	"dpsadopt/internal/obs"
)

// Default latency objectives per route, in seconds. The domain route is
// the pure-index hot path (sub-millisecond when cached); series and day
// aggregate more data; stats renders live process state on every call.
var defaultLatencySLOs = []struct {
	route     string
	threshold float64
}{
	{"domain", 0.005},
	{"series", 0.010},
	{"day", 0.010},
	{"stats", 0.025},
}

// DefaultSLOs returns the serving tier's stock objectives: 99.9%
// availability per route, plus a per-route p-latency target (99% of
// requests under the route's threshold, e.g. /v1/domain under 5ms).
func DefaultSLOs() []obs.Objective {
	out := make([]obs.Objective, 0, 2*len(defaultLatencySLOs))
	for _, l := range defaultLatencySLOs {
		out = append(out, obs.Objective{
			Name:   l.route + "-availability",
			Route:  l.route,
			Kind:   obs.KindAvailability,
			Target: 0.999,
		})
	}
	for _, l := range defaultLatencySLOs {
		out = append(out, obs.Objective{
			Name:             l.route + "-latency",
			Route:            l.route,
			Kind:             obs.KindLatency,
			Target:           0.99,
			LatencyThreshold: l.threshold,
		})
	}
	return out
}

// newDefaultObservatory builds the observatory a server uses when the
// config supplies none: stock SLOs, default windows, and per-route
// window series + slo_* gauges exposed on the process-wide registry.
// Registration is idempotent, so multiple servers in one process share
// the same underlying series.
func newDefaultObservatory() *obs.Observatory {
	return obs.NewObservatory(obs.ObservatoryConfig{
		SLOs:               DefaultSLOs(),
		Registry:           obs.Default(),
		WindowMetricPrefix: "api_request_window",
	})
}
