# Developer entry points. `make check` is the tier-1 verification going
# forward: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test test-race bench

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
