package obs

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning 100µs (an in-memory exchange) to 10s (a retry storm against a
// lossy wire network).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations in fixed buckets and supports quantile
// estimation by linear interpolation within the located bucket. Observe
// is wait-free; Quantile and the exposition helpers take a consistent-
// enough snapshot by loading each bucket once (monotone counters make
// minor skew harmless).
//
// Each bucket can additionally carry an exemplar: the trace ID of the
// slowest observation that landed in it (see ObserveExemplar), linking
// the aggregate latency distribution back to request-scoped traces.
type Histogram struct {
	bounds    []float64       // ascending upper bounds; +Inf is implicit
	counts    []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	count     atomic.Uint64
	sumBits   atomic.Uint64 // float64 bits of the running sum
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace it came from.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// NewHistogram creates a standalone histogram (not attached to a
// registry); nil bounds use DefBuckets.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveN records n observations of value v in one wait-free update —
// the bulk-transfer path the runtime collector uses to fold
// runtime/metrics bucket deltas into a registry histogram without n
// individual Observe calls.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[bucketIndex(h.bounds, v)].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// keeps it as the bucket's exemplar if it is the slowest observation the
// bucket has seen — so every bucket points at the trace of its worst
// case. Lock-free: a racing slower observation wins the CAS retry.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := bucketIndex(h.bounds, v)
	nw := &Exemplar{Value: v, TraceID: traceID}
	for {
		old := h.exemplars[i].Load()
		if old != nil && old.Value >= v {
			return
		}
		if h.exemplars[i].CompareAndSwap(old, nw) {
			return
		}
	}
}

// Exemplars returns the per-bucket exemplars, index-aligned with
// BucketCounts (the final element is the overflow bucket); buckets with
// no exemplar are nil.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts; the final
// element is the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) assuming observations
// are uniform within each bucket. With no observations it returns 0; the
// estimate for ranks landing in the overflow bucket is the largest finite
// bound (the histogram cannot resolve beyond it).
func (h *Histogram) Quantile(q float64) float64 {
	return quantileFromCounts(h.bounds, h.BucketCounts(), q)
}
