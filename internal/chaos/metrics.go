package chaos

import "dpsadopt/internal/obs"

// Injected faults, labeled by kind, on the process-wide registry: a chaos
// run must be able to show on /metrics exactly how much havoc it caused,
// so degraded measurement days can be correlated with injected faults.
var (
	mInjected = obs.Default().CounterVec("chaos_injected_total",
		"faults injected, by kind (loss, duplicate, reorder, delay, spike, blackhole, servfail, slow, truncate, server_drop)",
		"kind")
)
