package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
)

// Partition names one (source, day) detection unit.
type Partition struct {
	Source string
	Day    simtime.Day
}

// Partitions enumerates every stored (source, day) partition in
// (source, day) order — the natural input to DetectRange.
func Partitions(s *store.Store) []Partition {
	var out []Partition
	for _, src := range s.Sources() {
		for _, day := range s.Days(src) {
			out = append(out, Partition{Source: src, Day: day})
		}
	}
	return out
}

// DetectRange classifies a set of partitions with a bounded worker pool
// and returns the detections in input order. Workers share the store,
// the references, and the per-dictionary ID matcher; partitions are
// independent, so throughput scales with the worker count until the
// memory bus saturates. workers <= 0 uses GOMAXPROCS. A cancelled
// context stops the pool early; unprocessed slots are nil.
//
// Every consumer of multi-partition detection — the streaming
// experiment runner, Aggregator.Run, the dpsapi index build — funnels
// through here, so the fan-out and its metrics live in one place.
func DetectRange(ctx context.Context, s *store.Store, parts []Partition, refs *References, workers int) []*DayDetections {
	out := make([]*DayDetections, len(parts))
	if len(parts) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	// Warm the matcher binding once so workers contend only on its
	// read-mostly internals, not on creation.
	refs.ForDict(s.Dict())
	mDetectWorkers.Add(float64(workers))
	defer mDetectWorkers.Add(-float64(workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				pt := parts[i]
				_, sp := trace.StartSpan(ctx, "core.detect",
					trace.Str("source", pt.Source), trace.Str("day", pt.Day.String()))
				start := time.Now()
				det := DetectDay(s, pt.Source, pt.Day, refs)
				elapsed := time.Since(start).Seconds()
				mDetectPartitions.Inc()
				mDetectRows.Add(int64(det.Rows))
				mDetectSeconds.Observe(elapsed)
				if elapsed > 0 {
					mDetectRowRate.Observe(float64(det.Rows) / elapsed)
				}
				sp.SetAttr(trace.Int("rows", int64(det.Rows)),
					trace.Int("detected", int64(det.CountAny())))
				sp.End()
				out[i] = det
			}
		}()
	}
	wg.Wait()
	return out
}
