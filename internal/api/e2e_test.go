package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sort"
	"testing"

	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

// TestEndToEnd is the full loop the binaries perform: measure a small
// world (direct mode), save the .dpsa archive, reload it, serve it, and
// cross-check every API answer against core.DetectDay run independently
// on the reloaded store.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e measurement in -short mode")
	}
	w, err := worldsim.New(worldsim.DefaultConfig(50_000))
	if err != nil {
		t.Fatal(err)
	}
	ms := store.New()
	p := measure.New(w, ms, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	const nDays = 3
	for day := simtime.Day(0); day < nDays; day++ {
		if err := p.RunDay(context.Background(), day); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "e2e.dpsa")
	if err := ms.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	refs := core.MustGroundTruth()
	srv := NewServer(NewIndex(s, refs), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Independent ground truth: detection straight off the reloaded
	// store, merged across sources exactly as §4.1 counts (a domain once
	// per day no matter how many source lists carry it).
	np := refs.NumProviders()
	type dayTruth struct {
		measured int64
		perProv  []map[string]core.Method // [p] domain → methods
	}
	daySet := make(map[simtime.Day]bool)
	for _, src := range s.Sources() {
		for _, d := range s.Days(src) {
			daySet[d] = true
		}
	}
	var days []simtime.Day
	for d := range daySet {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	truth := make(map[simtime.Day]*dayTruth)
	for _, day := range days {
		dt := &dayTruth{perProv: make([]map[string]core.Method, np)}
		for p := range dt.perProv {
			dt.perProv[p] = make(map[string]core.Method)
		}
		for _, src := range s.Sources() {
			det := core.DetectDay(s, src, day, refs)
			dt.measured += int64(det.DomainsMeasured)
			for p := 0; p < np; p++ {
				det.MergeAny(p, dt.perProv[p])
			}
		}
		truth[day] = dt
	}

	fetch := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if v != nil && resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, v); err != nil {
				t.Fatalf("%s: bad JSON %q: %v", path, body, err)
			}
		}
		return resp.StatusCode
	}

	// /v1/day: per-provider totals, measured and any-use counts.
	detectedSomething := false
	for _, day := range days {
		dt := truth[day]
		var got DayInfo
		if code := fetch("/v1/day/"+day.String(), &got); code != http.StatusOK {
			t.Fatalf("day %s: status %d", day, code)
		}
		if got.Measured != dt.measured {
			t.Errorf("day %s: measured = %d, want %d", day, got.Measured, dt.measured)
		}
		anySet := make(map[string]bool)
		for p := 0; p < np; p++ {
			name := refs.Providers[p].Name
			if got.Providers[name] != int64(len(dt.perProv[p])) {
				t.Errorf("day %s %s: count = %d, want %d",
					day, name, got.Providers[name], len(dt.perProv[p]))
			}
			for dom := range dt.perProv[p] {
				anySet[dom] = true
				detectedSomething = true
			}
		}
		if got.AnyUse != int64(len(anySet)) {
			t.Errorf("day %s: any-use = %d, want %d", day, got.AnyUse, len(anySet))
		}
	}
	if !detectedSomething {
		t.Fatal("world produced no detections; e2e proves nothing")
	}

	// /v1/provider/{name}/series: raw counts per day.
	for p := 0; p < np; p++ {
		name := refs.Providers[p].Name
		var got ProviderSeries
		if code := fetch("/v1/provider/"+url.PathEscape(name)+"/series", &got); code != http.StatusOK {
			t.Fatalf("series %s: status %d", name, code)
		}
		if len(got.Raw) != len(days) {
			t.Fatalf("series %s: %d days, want %d", name, len(got.Raw), len(days))
		}
		for i, day := range days {
			if got.Raw[i] != int64(len(truth[day].perProv[p])) {
				t.Errorf("series %s day %s: %d, want %d",
					name, day, got.Raw[i], len(truth[day].perProv[p]))
			}
		}
	}

	// /v1/domain: reconstruct each detected domain's (provider → day set)
	// from the truth maps and demand the served intervals cover exactly
	// those days.
	type domProv struct {
		dom string
		p   int
	}
	expectDays := make(map[domProv]map[simtime.Day]bool)
	for _, day := range days {
		for p := 0; p < np; p++ {
			for dom := range truth[day].perProv[p] {
				k := domProv{dom, p}
				if expectDays[k] == nil {
					expectDays[k] = make(map[simtime.Day]bool)
				}
				expectDays[k][day] = true
			}
		}
	}
	byDomain := make(map[string][]domProv)
	for k := range expectDays {
		byDomain[k.dom] = append(byDomain[k.dom], k)
	}
	checked := 0
	for dom, keys := range byDomain {
		if checked >= 25 {
			break
		}
		checked++
		var got DomainHistory
		if code := fetch("/v1/domain/"+dom, &got); code != http.StatusOK {
			t.Fatalf("domain %s: status %d", dom, code)
		}
		if len(got.Providers) != len(keys) {
			t.Errorf("domain %s: %d providers served, want %d", dom, len(got.Providers), len(keys))
			continue
		}
		allDays := make(map[simtime.Day]bool)
		for _, pu := range got.Providers {
			pi, ok := refs.ProviderIndex(pu.Provider)
			if !ok {
				t.Fatalf("domain %s: unknown provider %q served", dom, pu.Provider)
			}
			want := expectDays[domProv{dom, pi}]
			servedDays := make(map[simtime.Day]bool)
			for _, iv := range pu.Intervals {
				from, err1 := simtime.Parse(iv.From)
				to, err2 := simtime.Parse(iv.To)
				if err1 != nil || err2 != nil {
					t.Fatalf("domain %s: unparseable interval %+v", dom, iv)
				}
				for d := from; d <= to; d++ {
					if daySet[d] {
						servedDays[d] = true
					}
				}
			}
			for d := range servedDays {
				allDays[d] = true
			}
			if fmt.Sprint(sortedDays(servedDays)) != fmt.Sprint(sortedDays(want)) {
				t.Errorf("domain %s provider %s: served days %v, want %v",
					dom, pu.Provider, sortedDays(servedDays), sortedDays(want))
			}
			if pu.Days != len(want) {
				t.Errorf("domain %s provider %s: days = %d, want %d", dom, pu.Provider, pu.Days, len(want))
			}
		}
		if got.Days != len(allDays) {
			t.Errorf("domain %s: days_detected = %d, want %d", dom, got.Days, len(allDays))
		}
	}
	t.Logf("e2e: %d domains cross-checked over %d days", checked, len(days))

	// A never-measured domain is a clean 404.
	if code := fetch("/v1/domain/never-seen.example", nil); code != http.StatusNotFound {
		t.Errorf("absent domain: status %d, want 404", code)
	}

	// /v1/stats agrees with the index's own accounting.
	var st Stats
	if code := fetch("/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.DaysIndexed != len(days) || st.DomainsDetected != len(byDomain) {
		t.Errorf("stats = %+v; want %d days, %d domains", st, len(days), len(byDomain))
	}
}

func sortedDays(m map[simtime.Day]bool) []simtime.Day {
	out := make([]simtime.Day, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
