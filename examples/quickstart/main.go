// Quickstart: generate a small synthetic Internet, run one day of the
// active DNS measurement pipeline, and detect which domains divert
// traffic to a DDoS protection service — the core loop of the paper in
// under a hundred lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dpsadopt/internal/analysis"
	"dpsadopt/internal/core"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func main() {
	// A 1:200000-scale world: a few hundred domains, nine DPS providers
	// with the paper's exact Table 2 identities, third-party operators,
	// and BGP announcements.
	world, err := worldsim.New(worldsim.DefaultConfig(200_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated world:", world.Stats())

	// Measure day 0 (2015-03-01): apex and www of every registered
	// domain, A/NS/CNAME, with origin-AS supplementation from the day's
	// pfx2as snapshot.
	st := store.New()
	pipeline := measure.New(world, st, measure.Config{Mode: measure.ModeDirect, Workers: 4})
	day := world.Cfg.Window.Start
	if err := pipeline.RunDay(context.Background(), day); err != nil {
		log.Fatal(err)
	}
	for _, src := range st.Sources() {
		s := st.SourceStats(src)
		fmt.Printf("measured .%s: %d domains, %d data points\n", src, s.UniqueSLDs, s.DataPoints)
	}

	// Detect DPS use against the ground-truth reference table (Table 2).
	refs := core.MustGroundTruth()
	agg := analysis.NewAggregator(refs, st, worldsim.GTLDs())
	if err := agg.Run(worldsim.GTLDs()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDPS use on %s:\n", day)
	for p := range refs.Providers {
		n := agg.SumProvider(worldsim.GTLDs(), p, day)
		if n == 0 {
			continue
		}
		as := agg.SumMethod(worldsim.GTLDs(), p, 0, day)
		cname := agg.SumMethod(worldsim.GTLDs(), p, 1, day)
		ns := agg.SumMethod(worldsim.GTLDs(), p, 2, day)
		fmt.Printf("  %-12s %4d domains (AS:%d CNAME:%d NS:%d)\n", refs.Providers[p].Name, n, as, cname, ns)
	}
	fmt.Printf("  any provider: %d of %d measured domains\n",
		agg.SumAny(worldsim.GTLDs(), day), agg.SumMeasured(worldsim.GTLDs(), day))
}
