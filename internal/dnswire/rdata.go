package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Implementations encode
// themselves into wire format (compressing embedded names where RFC 1035
// permits) and render presentation format via String.
type RData interface {
	fmt.Stringer
	appendRData(buf []byte, comp *compMap) ([]byte, error)
}

// ErrBadRData reports malformed RDATA encountered during decoding.
var ErrBadRData = errors.New("dnswire: malformed RDATA")

// A is the RDATA of an A record (RFC 1035 §3.4.1).
type A struct {
	Addr netip.Addr // must be IPv4
}

func (a A) appendRData(buf []byte, _ *compMap) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record address %v is not IPv4", a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

// String renders the address in dotted-quad form.
func (a A) String() string { return a.Addr.String() }

// AAAA is the RDATA of an AAAA record (RFC 3596).
type AAAA struct {
	Addr netip.Addr // must be IPv6
}

func (a AAAA) appendRData(buf []byte, _ *compMap) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

// String renders the address in RFC 5952 form.
func (a AAAA) String() string { return a.Addr.String() }

// CNAME is the RDATA of a CNAME record: the canonical name of the alias.
type CNAME struct {
	Target string
}

func (c CNAME) appendRData(buf []byte, comp *compMap) ([]byte, error) {
	return comp.appendName(buf, c.Target)
}

// String returns the target name.
func (c CNAME) String() string { return c.Target }

// NS is the RDATA of an NS record: the host name of an authoritative server.
type NS struct {
	Host string
}

func (n NS) appendRData(buf []byte, comp *compMap) ([]byte, error) {
	return comp.appendName(buf, n.Host)
}

// String returns the name server host name.
func (n NS) String() string { return n.Host }

// PTR is the RDATA of a PTR record.
type PTR struct {
	Target string
}

func (p PTR) appendRData(buf []byte, comp *compMap) ([]byte, error) {
	return comp.appendName(buf, p.Target)
}

// String returns the pointer target.
func (p PTR) String() string { return p.Target }

// MX is the RDATA of an MX record.
type MX struct {
	Preference uint16
	Host       string
}

func (m MX) appendRData(buf []byte, comp *compMap) ([]byte, error) {
	buf = be16(buf, m.Preference)
	return comp.appendName(buf, m.Host)
}

// String renders "preference host".
func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, m.Host) }

// SOA is the RDATA of an SOA record (RFC 1035 §3.3.13).
type SOA struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (s SOA) appendRData(buf []byte, comp *compMap) ([]byte, error) {
	var err error
	if buf, err = comp.appendName(buf, s.MName); err != nil {
		return nil, err
	}
	if buf, err = comp.appendName(buf, s.RName); err != nil {
		return nil, err
	}
	buf = be32(buf, s.Serial)
	buf = be32(buf, s.Refresh)
	buf = be32(buf, s.Retry)
	buf = be32(buf, s.Expire)
	buf = be32(buf, s.Minimum)
	return buf, nil
}

// String renders the SOA fields in zone-file order.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT is the RDATA of a TXT record: one or more character strings.
type TXT struct {
	Strings []string
}

func (t TXT) appendRData(buf []byte, _ *compMap) ([]byte, error) {
	if len(t.Strings) == 0 {
		// RFC 1035 requires at least one (possibly empty) string.
		return append(buf, 0), nil
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// String renders each string quoted.
func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// OPT is the RDATA of an EDNS0 OPT pseudo-record (RFC 6891). Only the
// payload-size negotiation carried in the record's class field matters to
// this system; options are kept opaque.
type OPT struct {
	Options []byte
}

func (o OPT) appendRData(buf []byte, _ *compMap) ([]byte, error) {
	return append(buf, o.Options...), nil
}

// String renders the raw option bytes length.
func (o OPT) String() string { return fmt.Sprintf("OPT(%d bytes)", len(o.Options)) }

// Raw carries RDATA of types this package does not model.
type Raw struct {
	Bytes []byte
}

func (r Raw) appendRData(buf []byte, _ *compMap) ([]byte, error) {
	return append(buf, r.Bytes...), nil
}

// String renders the byte length.
func (r Raw) String() string { return fmt.Sprintf("\\# %d", len(r.Bytes)) }

func unpackRData(t Type, msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("%w: A RDATA length %d", ErrBadRData, rdlen)
		}
		return A{Addr: netip.AddrFrom4([4]byte(msg[off:end]))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("%w: AAAA RDATA length %d", ErrBadRData, rdlen)
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(msg[off:end]))}, nil
	case TypeCNAME:
		name, n, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("%w: CNAME trailing bytes", ErrBadRData)
		}
		return CNAME{Target: name}, nil
	case TypeNS:
		name, n, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("%w: NS trailing bytes", ErrBadRData)
		}
		return NS{Host: name}, nil
	case TypePTR:
		name, n, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("%w: PTR trailing bytes", ErrBadRData)
		}
		return PTR{Target: name}, nil
	case TypeMX:
		if rdlen < 3 {
			return nil, fmt.Errorf("%w: MX RDATA length %d", ErrBadRData, rdlen)
		}
		pref := uint16(msg[off])<<8 | uint16(msg[off+1])
		name, n, err := unpackName(msg, off+2)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("%w: MX trailing bytes", ErrBadRData)
		}
		return MX{Preference: pref, Host: name}, nil
	case TypeSOA:
		var s SOA
		var err error
		var n int
		if s.MName, n, err = unpackName(msg, off); err != nil {
			return nil, err
		}
		if s.RName, n, err = unpackName(msg, n); err != nil {
			return nil, err
		}
		if n+20 != end {
			return nil, fmt.Errorf("%w: SOA numeric fields", ErrBadRData)
		}
		s.Serial = beU32(msg[n:])
		s.Refresh = beU32(msg[n+4:])
		s.Retry = beU32(msg[n+8:])
		s.Expire = beU32(msg[n+12:])
		s.Minimum = beU32(msg[n+16:])
		return s, nil
	case TypeTXT:
		var t TXT
		for p := off; p < end; {
			l := int(msg[p])
			p++
			if p+l > end {
				return nil, fmt.Errorf("%w: TXT string overruns RDATA", ErrBadRData)
			}
			t.Strings = append(t.Strings, string(msg[p:p+l]))
			p += l
		}
		return t, nil
	case TypeOPT:
		return OPT{Options: append([]byte(nil), msg[off:end]...)}, nil
	default:
		return Raw{Bytes: append([]byte(nil), msg[off:end]...)}, nil
	}
}

func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
