// Package measure reimplements the paper's active DNS measurement system
// (§3.1, Fig 1) against the simulated Internet: Stage I acquires the day's
// domain lists from the TLD namespace models (the "zone file download"),
// Stage II fans the lists over a worker cloud that queries A, AAAA, NS and
// CNAME for the apex and www labels of every domain, and Stage III stores
// all answer-section fields, supplemented with origin-AS numbers from the
// day's pfx2as snapshot (§3.2).
//
// Two fidelity modes share the same storage schema. ModeWire drives real
// DNS messages through resolvers against authoritative servers built by
// worldsim.BuildWire — byte-level fidelity, used by tests and examples.
// ModeDirect derives the identical records from the world model in
// process, which makes 550-day full-namespace runs tractable; the
// equivalence of both modes is asserted by TestModesEquivalent.
package measure

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"dpsadopt/internal/dnsclient"
	"dpsadopt/internal/dnswire"
	"dpsadopt/internal/pfx2as"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/trace"
	"dpsadopt/internal/transport"
	"dpsadopt/internal/worldsim"
)

// Mode selects the measurement fidelity.
type Mode int

// Measurement modes.
const (
	// ModeDirect derives records from the world model in process.
	ModeDirect Mode = iota
	// ModeWire resolves every query over the transport network.
	ModeWire
)

// SourceAlexa is the store source name for the popularity-list
// measurements; TLD sources use their labels ("com", "net", ...).
const SourceAlexa = "alexa"

// Config tunes the pipeline.
type Config struct {
	Mode    Mode
	Workers int
	// Timeout/Retries/RetryBudget apply to wire-mode resolvers
	// (0 = dnsclient default).
	Timeout     int // milliseconds
	Retries     int
	RetryBudget int
	// WireNetwork, when set, supplies the transport for each wire-mode
	// day (e.g. transport.NewMappedUDP to measure over kernel sockets,
	// or a chaos.Wrap for fault injection); by default each day gets a
	// fresh in-memory network.
	WireNetwork func(day simtime.Day) transport.Network
	// OnWire, when set, is invoked after a wire-mode day's authoritative
	// world is built and before resolution starts — the hook point for
	// installing server-side fault injectors or protecting root addresses
	// on a chaos transport.
	OnWire func(day simtime.Day, wire *worldsim.Wire, network transport.Network)
	// StageIZoneFiles, when true, derives the daily TLD domain lists by
	// rendering and parsing the registry zone files instead of reading
	// the world model — the literal Stage I of Fig 1. Slower; used by
	// fidelity tests and demos.
	StageIZoneFiles bool
	// OnDay, when set, receives per-day progress.
	OnDay func(day simtime.Day, rows int)
}

// NetStats is the per-day network-health accounting of a wire-mode day:
// how hard the resolvers had to work and how often they failed. The
// experiment layer compares FailureRate against its degraded-day
// threshold when committing the day.
type NetStats struct {
	// Queries counts query datagrams sent (UDP and TCP).
	Queries int64
	// Lost counts attempts that expired without a response.
	Lost int64
	// Resolutions counts Resolve calls.
	Resolutions int64
	// GaveUp counts resolutions that returned an error — lost data points.
	GaveUp int64
}

// FailureRate is the fraction of resolutions that gave up entirely.
func (s NetStats) FailureRate() float64 {
	if s.Resolutions == 0 {
		return 0
	}
	return float64(s.GaveUp) / float64(s.Resolutions)
}

// LossRate is the fraction of query attempts that went unanswered.
func (s NetStats) LossRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Queries)
}

// add folds one worker resolver's counters in.
func (s *NetStats) add(r *dnsclient.Resolver) {
	s.Queries += r.QueriesSent()
	s.Lost += r.TimeoutsSeen()
	s.Resolutions += r.Resolutions()
	s.GaveUp += r.GiveUps()
}

// Pipeline measures a world into a store.
type Pipeline struct {
	World *worldsim.World
	Store *store.Store
	Cfg   Config

	queriesSent int64
	dayNet      NetStats
}

// New creates a pipeline.
func New(w *worldsim.World, s *store.Store, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	return &Pipeline{World: w, Store: s, Cfg: cfg}
}

// QueriesSent reports wire-mode query datagrams sent so far.
func (p *Pipeline) QueriesSent() int64 { return p.queriesSent }

// LastNetStats reports the network accounting of the most recently
// completed wire-mode day (zero for direct mode).
func (p *Pipeline) LastNetStats() NetStats { return p.dayNet }

// task is one domain to measure into one source partition.
type task struct {
	dom *worldsim.Domain
}

// stageOneLists assembles the day's measurement lists per source — the
// zone-file acquisition step.
func (p *Pipeline) stageOneLists(day simtime.Day) map[string][]task {
	lists := make(map[string][]task)
	w := p.World
	if p.Cfg.StageIZoneFiles {
		// Literal Stage I: render each TLD's registry zone file and parse
		// the delegations back out.
		for tld := range w.TLDs {
			var window simtime.Range
			if tld == "nl" {
				window = w.Cfg.NLWindow
			} else {
				window = w.Cfg.Window
			}
			if !window.Contains(day) {
				continue
			}
			var buf strings.Builder
			if err := w.WriteZoneFile(tld, day, &buf); err != nil {
				continue
			}
			_, names, err := worldsim.ZoneFileDomains(strings.NewReader(buf.String()))
			if err != nil {
				continue
			}
			for _, name := range names {
				if d, ok := w.DomainByName(name); ok {
					lists[tld] = append(lists[tld], task{dom: d})
				}
			}
		}
	} else {
		// The world's flat domain table is TLD-ordered and carries
		// lifetimes; one scan assembles every TLD's list.
		for _, d := range w.Domains {
			var window simtime.Range
			if d.TLD == "nl" {
				window = w.Cfg.NLWindow
			} else {
				window = w.Cfg.Window
			}
			if !window.Contains(day) || !d.Life.Contains(day) {
				continue
			}
			lists[d.TLD] = append(lists[d.TLD], task{dom: d})
		}
	}
	if w.Cfg.NLWindow.Contains(day) {
		for _, idx := range w.AlexaList(day) {
			d := w.Domains[idx]
			if d.Life.Contains(day) {
				lists[SourceAlexa] = append(lists[SourceAlexa], task{dom: d})
			}
		}
	}
	return lists
}

// RunDay measures one day into the store. The context carries
// cancellation (a cancelled day stops between domains and returns the
// context's error; committed partitions are kept) and the active trace
// span: stage spans (`measure.stage1/2/3`) nest under whatever day-level
// span the caller opened.
func (p *Pipeline) RunDay(ctx context.Context, day simtime.Day) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dayStart := time.Now()
	_, sp1 := trace.StartSpan(ctx, "measure.stage1", trace.Str("day", day.String()))
	lists := p.stageOneLists(day)
	sp1.SetAttr(trace.Int("sources", int64(len(lists))))
	sp1.End()
	mStageSeconds.With(stageZoneAcquisition).Observe(time.Since(dayStart).Seconds())
	if len(lists) == 0 {
		return nil
	}
	// The day's pfx2as snapshot, via the textual Routeviews format, as
	// the paper's Stage III does.
	rib := p.World.RIBForDay(day)
	entries, err := pfx2as.Parse(strings.NewReader(rib.Snapshot()))
	if err != nil {
		return fmt.Errorf("measure: pfx2as snapshot: %w", err)
	}
	table := pfx2as.NewWalk(entries)

	var wire *worldsim.Wire
	var network transport.Network
	p.dayNet = NetStats{}
	if p.Cfg.Mode == ModeWire {
		if p.Cfg.WireNetwork != nil {
			network = p.Cfg.WireNetwork(day)
		} else {
			network = transport.NewMem(int64(day) ^ 0x3f3f)
		}
		_, spw := trace.StartSpan(ctx, "measure.wirebuild")
		wire, err = p.World.BuildWire(day, network)
		spw.End()
		if err != nil {
			return fmt.Errorf("measure: wire build: %w", err)
		}
		defer wire.Close()
		if p.Cfg.OnWire != nil {
			p.Cfg.OnWire(day, wire, network)
		}
	}

	resStart := time.Now()
	rows := 0
	domains := 0
	// Sources run in sorted order: map order would make wire-mode flow
	// identities (ephemeral ports) differ between runs, breaking the
	// reproducibility of fault accounting.
	sources := make([]string, 0, len(lists))
	for source := range lists {
		sources = append(sources, source)
	}
	sort.Strings(sources)
	for _, source := range sources {
		tasks := lists[source]
		sctx, sp2 := trace.StartSpan(ctx, "measure.stage2",
			trace.Str("source", source), trace.Int("domains", int64(len(tasks))))
		n, err := p.runSource(sctx, day, source, tasks, table, wire, network)
		sp2.SetAttr(trace.Int("rows", int64(n)))
		sp2.End()
		if err != nil {
			return err
		}
		rows += n
		domains += len(tasks)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	mStageSeconds.With(stageResolution).Observe(time.Since(resStart).Seconds())
	mDomains.Add(int64(domains))
	mDays.Inc()
	if elapsed := time.Since(dayStart).Seconds(); elapsed > 0 {
		mDomainsPerSec.Set(float64(domains) / elapsed)
	}
	if p.Cfg.OnDay != nil {
		p.Cfg.OnDay(day, rows)
	}
	return nil
}

// DaySources lists the sources that have a non-empty measurement list
// on the given day, sorted — the partition axis the coordination plane
// leases over.
func (p *Pipeline) DaySources(day simtime.Day) []string {
	lists := p.stageOneLists(day)
	out := make([]string, 0, len(lists))
	for source, tasks := range lists {
		if len(tasks) > 0 {
			out = append(out, source)
		}
	}
	sort.Strings(out)
	return out
}

// RunPartition measures exactly one (source, day) partition into the
// store — the unit of work leased by the coordination plane. It is the
// single-source slice of RunDay: the same Stage I list, the same pfx2as
// snapshot, the same worker fan-out, so measuring a day partition by
// partition yields the same rows as RunDay (asserted by
// TestRunPartitionEquivalent).
func (p *Pipeline) RunPartition(ctx context.Context, source string, day simtime.Day) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, sp1 := trace.StartSpan(ctx, "measure.stage1",
		trace.Str("day", day.String()), trace.Str("source", source))
	lists := p.stageOneLists(day)
	sp1.End()
	tasks := lists[source]
	if len(tasks) == 0 {
		return fmt.Errorf("measure: no partition %s/%s", source, day)
	}
	rib := p.World.RIBForDay(day)
	entries, err := pfx2as.Parse(strings.NewReader(rib.Snapshot()))
	if err != nil {
		return fmt.Errorf("measure: pfx2as snapshot: %w", err)
	}
	table := pfx2as.NewWalk(entries)

	var wire *worldsim.Wire
	var network transport.Network
	if p.Cfg.Mode == ModeWire {
		if p.Cfg.WireNetwork != nil {
			network = p.Cfg.WireNetwork(day)
		} else {
			network = transport.NewMem(int64(day) ^ 0x3f3f)
		}
		_, spw := trace.StartSpan(ctx, "measure.wirebuild")
		wire, err = p.World.BuildWire(day, network)
		spw.End()
		if err != nil {
			return fmt.Errorf("measure: wire build: %w", err)
		}
		defer wire.Close()
		if p.Cfg.OnWire != nil {
			p.Cfg.OnWire(day, wire, network)
		}
	}

	sctx, sp2 := trace.StartSpan(ctx, "measure.stage2",
		trace.Str("source", source), trace.Int("domains", int64(len(tasks))))
	n, err := p.runSource(sctx, day, source, tasks, table, wire, network)
	sp2.SetAttr(trace.Int("rows", int64(n)))
	sp2.End()
	if err != nil {
		return err
	}
	mDomains.Add(int64(len(tasks)))
	return nil
}

// RunRange measures every day in [r.Start, r.End).
func (p *Pipeline) RunRange(ctx context.Context, r simtime.Range) error {
	for day := r.Start; day < r.End; day++ {
		if err := p.RunDay(ctx, day); err != nil {
			return fmt.Errorf("measure: day %s: %w", day, err)
		}
	}
	return nil
}

// runSource measures one source's task list with the worker cloud.
func (p *Pipeline) runSource(ctx context.Context, day simtime.Day, source string, tasks []task, table pfx2as.Table, wire *worldsim.Wire, network transport.Network) (int, error) {
	workers := p.Cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers == 0 {
		return 0, nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	var firstErr error
	chunk := (len(tasks) + workers - 1) / workers
	// Wire-mode resolvers are created sequentially before the workers
	// start: concurrent dials would race for ephemeral ports and give
	// flows run-dependent identities, breaking reproducible fault
	// accounting.
	resolvers := make([]*dnsclient.Resolver, workers)
	if p.Cfg.Mode == ModeWire {
		for wi := 0; wi < workers; wi++ {
			local := netip.AddrFrom4([4]byte{10, 200, byte(wi >> 8), byte(wi)})
			r, err := dnsclient.NewResolver(network, local, wire.Roots, int64(day)*1000+int64(wi))
			if err != nil {
				for _, prev := range resolvers[:wi] {
					prev.Close()
				}
				return 0, err
			}
			if p.Cfg.Timeout > 0 {
				r.Timeout = time.Duration(p.Cfg.Timeout) * time.Millisecond
			}
			if p.Cfg.Retries > 0 {
				r.Retries = p.Cfg.Retries
			}
			if p.Cfg.RetryBudget > 0 {
				r.RetryBudget = p.Cfg.RetryBudget
			}
			resolvers[wi] = r
		}
	}
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > len(tasks) {
			hi = len(tasks)
		}
		if lo >= hi {
			if resolvers[wi] != nil {
				resolvers[wi].Close()
			}
			continue
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			mWorkersActive.Inc()
			defer mWorkersActive.Dec()
			writer := p.Store.NewWriter(source, day)
			resolver := resolvers[wi]
			if resolver != nil {
				defer resolver.Close()
			}
			n := 0
			for _, t := range tasks[lo:hi] {
				if ctx.Err() != nil {
					break // cancelled: commit what this worker has
				}
				resolveStart := time.Now()
				if p.Cfg.Mode == ModeDirect {
					n += p.measureDirect(writer, t.dom, day, table)
				} else {
					// Per-domain sampling: only sampled domains carry
					// the active span into the resolver.
					n += p.measureWire(trace.ForDomain(ctx, t.dom.Name), writer, resolver, t.dom, table)
				}
				mResolveWindow.Observe(time.Since(resolveStart).Seconds())
			}
			commitStart := time.Now()
			_, sp3 := trace.StartSpan(ctx, "measure.stage3",
				trace.Str("source", source), trace.Int("rows", int64(n)))
			writer.Commit()
			sp3.End()
			mStageSeconds.With(stageStorage).Observe(time.Since(commitStart).Seconds())
			mu.Lock()
			total += n
			if resolver != nil {
				p.queriesSent += resolver.QueriesSent()
				p.dayNet.add(resolver)
			}
			mu.Unlock()
		}(wi, lo, hi)
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return total, firstErr
}

// measureDirect emits the rows for one domain from the world model.
func (p *Pipeline) measureDirect(w *store.Writer, d *worldsim.Domain, day simtime.Day, table pfx2as.Table) int {
	st := p.World.StateFor(d, day)
	if !st.Exists || st.Unmeasurable {
		return 0
	}
	before := w.Rows()
	for _, a := range st.ApexA {
		w.AddAddr(d.Name, store.KindApexA, a, lookupASNs(table, a))
	}
	for _, a := range st.ApexAAAA {
		w.AddAddr(d.Name, store.KindApexAAAA, a, lookupASNs(table, a))
	}
	if st.WWWCNAME != "" {
		w.AddStr(d.Name, store.KindWWWCNAME, st.WWWCNAME)
	}
	for _, a := range st.WWWA {
		w.AddAddr(d.Name, store.KindWWWA, a, lookupASNs(table, a))
	}
	for _, a := range st.WWWAAAA {
		w.AddAddr(d.Name, store.KindWWWAAAA, a, lookupASNs(table, a))
	}
	for _, ns := range st.NSHosts {
		w.AddStr(d.Name, store.KindNS, ns)
	}
	return w.Rows() - before
}

// measureWire resolves the domain's records over the network and emits
// the same row shapes as measureDirect.
func (p *Pipeline) measureWire(ctx context.Context, w *store.Writer, r *dnsclient.Resolver, d *worldsim.Domain, table pfx2as.Table) int {
	before := w.Rows()
	name := d.Name
	if res, err := r.Resolve(ctx, name, dnswire.TypeA); err == nil {
		for _, rr := range res.Records {
			if a, ok := rr.Data.(dnswire.A); ok {
				w.AddAddr(name, store.KindApexA, a.Addr, lookupASNs(table, a.Addr))
			}
		}
	}
	if res, err := r.Resolve(ctx, name, dnswire.TypeAAAA); err == nil {
		for _, rr := range res.Records {
			if a, ok := rr.Data.(dnswire.AAAA); ok {
				w.AddAddr(name, store.KindApexAAAA, a.Addr, lookupASNs(table, a.Addr))
			}
		}
	}
	if res, err := r.Resolve(ctx, name, dnswire.TypeNS); err == nil {
		for _, rr := range res.Records {
			if ns, ok := rr.Data.(dnswire.NS); ok {
				w.AddStr(name, store.KindNS, ns.Host)
			}
		}
	}
	if res, err := r.Resolve(ctx, "www."+name, dnswire.TypeA); err == nil {
		for _, rr := range res.Records {
			switch data := rr.Data.(type) {
			case dnswire.CNAME:
				w.AddStr(name, store.KindWWWCNAME, data.Target)
			case dnswire.A:
				w.AddAddr(name, store.KindWWWA, data.Addr, lookupASNs(table, data.Addr))
			}
		}
	}
	if res, err := r.Resolve(ctx, "www."+name, dnswire.TypeAAAA); err == nil {
		for _, rr := range res.Records {
			if a, ok := rr.Data.(dnswire.AAAA); ok {
				w.AddAddr(name, store.KindWWWAAAA, a.Addr, lookupASNs(table, a.Addr))
			}
		}
	}
	return w.Rows() - before
}

func lookupASNs(table pfx2as.Table, a netip.Addr) []uint32 {
	origins, ok := table.Lookup(a)
	if !ok {
		return nil
	}
	return origins
}
