package dnszone

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"dpsadopt/internal/dnswire"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// exampleZone builds the zone from the paper's Section 2 examples:
// examp.le with a www CNAME into a DPS domain, plus a delegated child.
func exampleZone(t testing.TB) *Zone {
	z := MustNew("examp.le")
	z.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeSOA, TTL: 3600, Data: dnswire.SOA{
		MName: "ns.registr.ar", RName: "hostmaster.examp.le",
		Serial: 2015030500, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeNS, TTL: 3600, Data: dnswire.NS{Host: "ns.registr.ar"}})
	z.MustAdd(dnswire.RR{Name: "examp.le", Type: dnswire.TypeA, TTL: 300, Data: dnswire.A{Addr: addr("10.0.0.1")}})
	z.MustAdd(dnswire.RR{Name: "www.examp.le", Type: dnswire.TypeCNAME, TTL: 300, Data: dnswire.CNAME{Target: "foob.ar"}})
	z.MustAdd(dnswire.RR{Name: "mail.examp.le", Type: dnswire.TypeA, TTL: 300, Data: dnswire.A{Addr: addr("10.0.0.9")}})
	z.MustAdd(dnswire.RR{Name: "alias.examp.le", Type: dnswire.TypeCNAME, TTL: 300, Data: dnswire.CNAME{Target: "mail.examp.le"}})
	// Delegated child zone.
	z.MustAdd(dnswire.RR{Name: "child.examp.le", Type: dnswire.TypeNS, TTL: 3600, Data: dnswire.NS{Host: "ns1.child.examp.le"}})
	z.MustAdd(dnswire.RR{Name: "ns1.child.examp.le", Type: dnswire.TypeA, TTL: 3600, Data: dnswire.A{Addr: addr("10.0.0.53")}})
	return z
}

func TestLookupPositive(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("examp.le", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNoError || !res.Authoritative || res.Delegated {
		t.Fatalf("bad result: %+v", res)
	}
	if len(res.Answer) != 1 || res.Answer[0].Data.String() != "10.0.0.1" {
		t.Errorf("answer = %v", res.Answer)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type != dnswire.TypeNS {
		t.Errorf("authority = %v", res.Authority)
	}
}

func TestLookupCNAMEToExternal(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("www.examp.le", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", res.RCode)
	}
	if len(res.Answer) != 1 {
		t.Fatalf("answer = %v", res.Answer)
	}
	cn, ok := res.Answer[0].Data.(dnswire.CNAME)
	if !ok || cn.Target != "foob.ar" {
		t.Errorf("expected CNAME foob.ar, got %v", res.Answer[0])
	}
}

func TestLookupCNAMEChainInZone(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("alias.examp.le", dnswire.TypeA)
	if len(res.Answer) != 2 {
		t.Fatalf("expected CNAME + A, got %v", res.Answer)
	}
	if res.Answer[0].Type != dnswire.TypeCNAME || res.Answer[1].Type != dnswire.TypeA {
		t.Errorf("chain order wrong: %v", res.Answer)
	}
	if res.Answer[1].Data.String() != "10.0.0.9" {
		t.Errorf("final address = %v", res.Answer[1])
	}
}

func TestLookupCNAMEQueryForCNAMEItself(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("www.examp.le", dnswire.TypeCNAME)
	if len(res.Answer) != 1 || res.Answer[0].Type != dnswire.TypeCNAME {
		t.Errorf("answer = %v", res.Answer)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("nope.examp.le", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", res.RCode)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", res.Authority)
	}
}

func TestLookupNoData(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("mail.examp.le", dnswire.TypeAAAA)
	if res.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v, want NOERROR", res.RCode)
	}
	if len(res.Answer) != 0 {
		t.Errorf("answer = %v, want empty", res.Answer)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", res.Authority)
	}
}

func TestLookupReferral(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("www.child.examp.le", dnswire.TypeA)
	if !res.Delegated || res.Authoritative {
		t.Fatalf("expected referral, got %+v", res)
	}
	if len(res.Authority) != 1 || res.Authority[0].Name != "child.examp.le" {
		t.Errorf("authority = %v", res.Authority)
	}
	if len(res.Additional) != 1 || res.Additional[0].Data.String() != "10.0.0.53" {
		t.Errorf("glue = %v", res.Additional)
	}
}

func TestLookupOutOfZone(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("other.example", dnswire.TypeA)
	if res.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", res.RCode)
	}
}

func TestLookupANY(t *testing.T) {
	z := exampleZone(t)
	res := z.Lookup("examp.le", dnswire.TypeANY)
	if len(res.Answer) < 3 {
		t.Errorf("ANY answer = %v", res.Answer)
	}
}

func TestCNAMELoopBounded(t *testing.T) {
	z := MustNew("loop.test")
	z.MustAdd(dnswire.RR{Name: "a.loop.test", Type: dnswire.TypeCNAME, TTL: 1, Data: dnswire.CNAME{Target: "b.loop.test"}})
	z.MustAdd(dnswire.RR{Name: "b.loop.test", Type: dnswire.TypeCNAME, TTL: 1, Data: dnswire.CNAME{Target: "a.loop.test"}})
	res := z.Lookup("a.loop.test", dnswire.TypeA) // must terminate
	if len(res.Answer) == 0 {
		t.Error("expected partial chain answer")
	}
	if len(res.Answer) > 2*maxCNAMEChain+2 {
		t.Errorf("chain not bounded: %d records", len(res.Answer))
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := MustNew("examp.le")
	err := z.Add(dnswire.RR{Name: "other.test", Type: dnswire.TypeA, Data: dnswire.A{Addr: addr("10.0.0.1")}})
	if err == nil {
		t.Error("out-of-zone add accepted")
	}
}

func TestAddDeduplicates(t *testing.T) {
	z := MustNew("examp.le")
	rr := dnswire.RR{Name: "examp.le", Type: dnswire.TypeA, TTL: 60, Data: dnswire.A{Addr: addr("10.0.0.1")}}
	z.MustAdd(rr)
	z.MustAdd(rr)
	if got := len(z.Get("examp.le", dnswire.TypeA)); got != 1 {
		t.Errorf("len = %d, want 1 (dedup)", got)
	}
}

func TestSetRRSetReplaces(t *testing.T) {
	z := exampleZone(t)
	err := z.SetRRSet("examp.le", dnswire.TypeA, []dnswire.RR{
		{TTL: 60, Data: dnswire.A{Addr: addr("203.0.113.5")}},
		{TTL: 60, Data: dnswire.A{Addr: addr("203.0.113.6")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := z.Get("examp.le", dnswire.TypeA)
	if len(got) != 2 || got[0].Name != "examp.le" || got[0].Class != dnswire.ClassIN {
		t.Errorf("got %v", got)
	}
	if err := z.SetRRSet("examp.le", dnswire.TypeA, nil); err != nil {
		t.Fatal(err)
	}
	if z.Get("examp.le", dnswire.TypeA) != nil {
		t.Error("empty SetRRSet did not clear")
	}
}

func TestRemoveClearsDelegation(t *testing.T) {
	z := exampleZone(t)
	z.Remove("child.examp.le", dnswire.TypeNS)
	res := z.Lookup("www.child.examp.le", dnswire.TypeA)
	if res.Delegated {
		t.Error("delegation survived NS removal")
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestRemoveName(t *testing.T) {
	z := exampleZone(t)
	z.RemoveName("mail.examp.le")
	if z.HasName("mail.examp.le") {
		t.Error("name survived RemoveName")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	z := exampleZone(t)
	c := z.Clone()
	z.RemoveName("mail.examp.le")
	if !c.HasName("mail.examp.le") {
		t.Error("clone shares record map with original")
	}
	if c.Len() == z.Len() {
		t.Error("expected differing lengths after mutation")
	}
}

func TestZoneTextRoundTrip(t *testing.T) {
	z := exampleZone(t)
	text := z.Text()
	z2, err := ParseText(strings.NewReader(text), "")
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if z2.Origin != "examp.le" {
		t.Errorf("origin = %q", z2.Origin)
	}
	if z2.Len() != z.Len() {
		t.Errorf("round trip record count %d, want %d\n%s", z2.Len(), z.Len(), text)
	}
	res := z2.Lookup("alias.examp.le", dnswire.TypeA)
	if len(res.Answer) != 2 {
		t.Errorf("parsed zone lookup broken: %v", res.Answer)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"examp.le 300 IN A 10.0.0.1",             // record before $ORIGIN
		"$ORIGIN examp.le\nfoo 300 IN A",         // missing rdata
		"$ORIGIN examp.le\nfoo bar IN A 1.2.3.4", // bad TTL
		"$ORIGIN examp.le\nfoo.examp.le 300 CH A 1.2.3.4",
		"$ORIGIN examp.le\nfoo.examp.le 300 IN A not-an-ip",
		"$ORIGIN",
	}
	for i, c := range cases {
		if _, err := ParseText(strings.NewReader(c), ""); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
}

func TestParseTextComments(t *testing.T) {
	text := "# leading comment\n$ORIGIN t.est\nt.est 300 IN A 10.0.0.1 ; trailing\n\n"
	z, err := ParseText(strings.NewReader(text), "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 1 {
		t.Errorf("len = %d", z.Len())
	}
}

func TestConcurrentReaders(t *testing.T) {
	z := exampleZone(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				_ = z.Lookup("alias.examp.le", dnswire.TypeA)
				_ = z.Lookup("www.child.examp.le", dnswire.TypeA)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_ = z.SetRRSet("flap.examp.le", dnswire.TypeA, []dnswire.RR{{TTL: 1, Data: dnswire.A{Addr: addr("10.9.9.9")}}})
		z.Remove("flap.examp.le", dnswire.TypeA)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// TestLookupNeverPanics throws random names and types at a populated zone;
// every result must satisfy the basic RFC 1034 invariants.
func TestLookupNeverPanics(t *testing.T) {
	z := exampleZone(t)
	r := rand.New(rand.NewSource(7))
	labels := []string{"www", "mail", "alias", "child", "nope", "a", "examp", "le", "ns1", "*"}
	types := []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS, dnswire.TypeCNAME, dnswire.TypeSOA, dnswire.TypeANY, dnswire.Type(250)}
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(4)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = labels[r.Intn(len(labels))]
		}
		name := strings.Join(parts, ".")
		res := z.Lookup(name, types[r.Intn(len(types))])
		switch res.RCode {
		case dnswire.RCodeNXDomain:
			if len(res.Answer) != 0 && res.Answer[0].Type != dnswire.TypeCNAME {
				t.Fatalf("%s: NXDOMAIN with non-CNAME answers", name)
			}
		case dnswire.RCodeNoError:
			if res.Delegated && res.Authoritative {
				t.Fatalf("%s: delegated AND authoritative", name)
			}
		case dnswire.RCodeRefused, dnswire.RCodeFormErr:
			// Out of zone or invalid name: fine.
		default:
			t.Fatalf("%s: unexpected rcode %v", name, res.RCode)
		}
	}
}

func TestWildcardSynthesis(t *testing.T) {
	// A parking zone: *.park.test answers every subdomain.
	z := MustNew("park.test")
	z.MustAdd(dnswire.RR{Name: "park.test", Type: dnswire.TypeSOA, TTL: 1, Data: dnswire.SOA{MName: "ns.park.test", RName: "h.park.test", Serial: 1}})
	z.MustAdd(dnswire.RR{Name: "*.park.test", Type: dnswire.TypeA, TTL: 60, Data: dnswire.A{Addr: addr("198.51.100.7")}})
	z.MustAdd(dnswire.RR{Name: "real.park.test", Type: dnswire.TypeA, TTL: 60, Data: dnswire.A{Addr: addr("198.51.100.8")}})

	// Synthesis: the answer's owner is the query name.
	res := z.Lookup("anything.park.test", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Answer[0].Name != "anything.park.test" || res.Answer[0].Data.String() != "198.51.100.7" {
		t.Errorf("answer = %v", res.Answer[0])
	}
	// Existing names win over the wildcard.
	res = z.Lookup("real.park.test", dnswire.TypeA)
	if res.Answer[0].Data.String() != "198.51.100.8" {
		t.Errorf("explicit record lost to wildcard: %v", res.Answer)
	}
	// Wildcard NODATA: the name is covered but the type is absent.
	res = z.Lookup("anything.park.test", dnswire.TypeAAAA)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 0 {
		t.Errorf("wildcard NODATA = %+v", res)
	}
	// An existing closer encloser without a wildcard blocks synthesis:
	// sub.real.park.test must be NXDOMAIN (real.park.test exists).
	res = z.Lookup("sub.real.park.test", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("closer-encloser rule broken: %+v", res)
	}
	// Deep names are still covered when the intermediate does not exist.
	res = z.Lookup("a.b.park.test", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 1 {
		t.Errorf("deep wildcard = %+v", res)
	}
	// The apex is not covered by its own child wildcard.
	res = z.Lookup("park.test", dnswire.TypeA)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 0 {
		t.Errorf("apex synthesized: %+v", res)
	}
}
