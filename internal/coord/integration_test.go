package coord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"dpsadopt/internal/chaos"
	"dpsadopt/internal/measure"
	"dpsadopt/internal/simtime"
	"dpsadopt/internal/store"
	"dpsadopt/internal/worldsim"
)

func rowKeys(s *store.Store, source string, day simtime.Day) []string {
	var keys []string
	s.ForEachRow(source, day, func(r store.Row) {
		asns := append([]uint32(nil), r.ASNs...)
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		keys = append(keys, fmt.Sprintf("%s|%v|%v|%s|%v", r.Domain, r.Kind, r.Addr, r.Str, asns))
	})
	sort.Strings(keys)
	return keys
}

// TestCoordinatorMeasureIntegration is the end-to-end exactly-once
// check of the acceptance criterion: a coordinator with 3 workers runs
// the real measure pipeline partition by partition under the seeded
// worker-crash scenario (with coordinator restarts riding along), and
// the assembled dataset is row-for-row identical to a single-process
// RunDay reference — every (source, day) exactly once, no partition
// lost to a crash, none double-committed.
func TestCoordinatorMeasureIntegration(t *testing.T) {
	world, err := worldsim.New(worldsim.DefaultConfig(400_000))
	if err != nil {
		t.Fatal(err)
	}
	const days = 4
	start := world.Cfg.Window.Start

	// Reference: the classic single-process measurement of the same days.
	ref := store.New()
	refPipe := measure.New(world, ref, measure.Config{Mode: measure.ModeDirect, Workers: 2})
	var parts []Partition
	for d := 0; d < days; d++ {
		day := start + simtime.Day(d)
		if err := refPipe.RunDay(context.Background(), day); err != nil {
			t.Fatal(err)
		}
		for _, src := range refPipe.DaySources(day) {
			parts = append(parts, Partition{Source: src, Day: day})
		}
	}

	// Coordinated run: each work call measures one partition into a
	// fresh spool store via the same pipeline. Parallelism comes from
	// the coordinator's workers, so the inner pipeline runs single-
	// threaded.
	work := func(ctx context.Context, p Partition, attempt int) (*store.Store, error) {
		s := store.New()
		pipe := measure.New(world, s, measure.Config{Mode: measure.ModeDirect, Workers: 1})
		if err := pipe.RunPartition(ctx, p.Source, p.Day); err != nil {
			return nil, err
		}
		return s, nil
	}
	sc, err := chaos.Scenario("worker-crash")
	if err != nil {
		t.Fatal(err)
	}
	// coord-restart rides along so the journal replay path runs too.
	sc.CoordRestart = 0.1
	cfg := Config{
		Dir:            t.TempDir(),
		Workers:        3,
		LeaseTTL:       200 * time.Millisecond,
		HeartbeatEvery: 40 * time.Millisecond,
		MaxAttempts:    10,
		RetryBackoff:   5 * time.Millisecond,
		Work:           work,
		Faults:         chaos.NewCoordFaults(sc, 42),
		Seed:           42,
	}
	var c *Coordinator
	for restarts := 0; ; restarts++ {
		if restarts > 30 {
			t.Fatal("coordinator did not settle within 30 restarts")
		}
		c, err = New(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		err = c.Run(context.Background())
		if errors.Is(err, ErrRestart) {
			continue
		}
		if err != nil {
			t.Fatalf("Run: %v (stats %+v)", err, c.Stats())
		}
		break
	}

	stats := c.Stats()
	if stats.Committed != len(parts) {
		t.Fatalf("committed %d of %d partitions: %+v", stats.Committed, len(parts), stats)
	}
	crashed := 0
	for _, row := range c.Ledger() {
		if row.State != StateCommitted {
			t.Fatalf("ledger row not committed: %+v", row)
		}
		if row.Attempts > 1 {
			crashed++
		}
	}
	if crashed == 0 {
		t.Error("worker-crash scenario burned no retries — chaos not exercised")
	}

	assembled, damaged, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) != 0 {
		t.Fatalf("unexpected spool damage: %+v", damaged)
	}
	for _, p := range parts {
		want := rowKeys(ref, p.Source, p.Day)
		got := rowKeys(assembled, p.Source, p.Day)
		if len(want) == 0 {
			t.Fatalf("%s: reference partition empty", p)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows assembled, reference has %d (duplicate or lost commit)", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d differs:\nwant %s\ngot  %s", p, i, want[i], got[i])
			}
		}
	}
}
