package core

import "strings"

// multiLabelSuffixes lists public suffixes that span two labels, so that
// SLD("www.example.co.uk") is "example.co.uk" rather than "co.uk". The
// table covers the suffixes a gTLD/.nl-centred measurement encounters in
// CNAME and NS targets; everything else falls back to the last-two-labels
// rule, which is exact for all the reference SLDs in Table 2.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true, "net.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "or.jp": true, "ne.jp": true, "ac.jp": true,
	"com.br": true, "net.br": true, "org.br": true,
	"co.za": true, "org.za": true,
	"com.cn": true, "net.cn": true, "org.cn": true,
	"com.mx": true, "com.ar": true, "com.tr": true, "com.tw": true,
	"co.in": true, "co.nz": true, "co.kr": true,
}

// SLD extracts the second-level domain of a canonical name: the label
// directly below the public suffix, with the suffix attached
// ("x.y.edgekey.net" → "edgekey.net", "a.b.co.uk" → "b.co.uk"). Names at
// or above the public suffix are returned unchanged; a single trailing
// root dot is stripped first. The result is always a substring of the
// input — SLD never allocates, which matters because the discovery
// procedure and the ID-matcher cache both call it per stored value.
func SLD(name string) string {
	name = strings.TrimSuffix(name, ".")
	last := strings.LastIndexByte(name, '.')
	if last < 0 {
		return name
	}
	second := strings.LastIndexByte(name[:last], '.')
	if second < 0 {
		return name
	}
	if multiLabelSuffixes[name[second+1:]] {
		third := strings.LastIndexByte(name[:second], '.')
		if third < 0 {
			return name
		}
		return name[third+1:]
	}
	return name[second+1:]
}
