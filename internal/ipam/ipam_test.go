package ipam

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestNthAddr(t *testing.T) {
	a, err := NthAddr(pfx("10.0.0.0/24"), 0)
	if err != nil || a != netip.MustParseAddr("10.0.0.0") {
		t.Errorf("NthAddr 0 = %v, %v", a, err)
	}
	a, err = NthAddr(pfx("10.0.0.0/24"), 255)
	if err != nil || a != netip.MustParseAddr("10.0.0.255") {
		t.Errorf("NthAddr 255 = %v, %v", a, err)
	}
	if _, err = NthAddr(pfx("10.0.0.0/24"), 256); err == nil {
		t.Error("NthAddr out of range accepted")
	}
	a, err = NthAddr(pfx("10.0.0.0/16"), 256)
	if err != nil || a != netip.MustParseAddr("10.0.1.0") {
		t.Errorf("NthAddr /16 = %v, %v", a, err)
	}
	if _, err := NthAddr(netip.MustParsePrefix("2001:db8::/64"), 0); err == nil {
		t.Error("IPv6 accepted")
	}
}

func TestNthSubnet(t *testing.T) {
	p, err := NthSubnet(pfx("10.0.0.0/16"), 24, 3)
	if err != nil || p != pfx("10.0.3.0/24") {
		t.Errorf("NthSubnet = %v, %v", p, err)
	}
	if _, err := NthSubnet(pfx("10.0.0.0/16"), 24, 256); err == nil {
		t.Error("out-of-range subnet accepted")
	}
	if _, err := NthSubnet(pfx("10.0.0.0/16"), 8, 0); err == nil {
		t.Error("supernet carve accepted")
	}
	if got := SubnetCount(pfx("10.0.0.0/16"), 24); got != 256 {
		t.Errorf("SubnetCount = %d", got)
	}
}

func TestPoolAlloc(t *testing.T) {
	p := MustPool("192.0.2.0/30")
	want := []string{"192.0.2.0", "192.0.2.1", "192.0.2.2", "192.0.2.3"}
	for i, w := range want {
		a, err := p.Alloc()
		if err != nil || a.String() != w {
			t.Errorf("alloc %d = %v, %v; want %s", i, a, err, w)
		}
	}
	if _, err := p.Alloc(); err == nil {
		t.Error("alloc past exhaustion accepted")
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d", p.Remaining())
	}
}

func TestPoolAllocSubnet(t *testing.T) {
	p := MustPool("10.0.0.0/16")
	// One host alloc, then a /24: the /24 must be aligned past the host.
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	sub, err := p.AllocSubnet(24)
	if err != nil || sub != pfx("10.0.1.0/24") {
		t.Errorf("AllocSubnet = %v, %v", sub, err)
	}
	sub2, err := p.AllocSubnet(24)
	if err != nil || sub2 != pfx("10.0.2.0/24") {
		t.Errorf("second AllocSubnet = %v, %v", sub2, err)
	}
	a, err := p.Alloc()
	if err != nil || a != netip.MustParseAddr("10.0.3.0") {
		t.Errorf("host after subnets = %v, %v", a, err)
	}
}

func TestPoolDeterministic(t *testing.T) {
	p1, p2 := MustPool("10.1.0.0/24"), MustPool("10.1.0.0/24")
	for i := 0; i < 10; i++ {
		a1, _ := p1.Alloc()
		a2, _ := p2.Alloc()
		if a1 != a2 {
			t.Fatalf("allocation %d diverged: %v vs %v", i, a1, a2)
		}
	}
}

func TestMaskBitsFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{1, 32}, {2, 31}, {3, 30}, {4, 30}, {5, 29}, {256, 24}, {257, 23}, {1 << 16, 16}}
	for _, c := range cases {
		if got := MaskBitsFor(c.n); got != c.want {
			t.Errorf("MaskBitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNth6Addr(t *testing.T) {
	p := netip.MustParsePrefix("2001:db8:1::/48")
	a, err := Nth6Addr(p, 0)
	if err != nil || a != netip.MustParseAddr("2001:db8:1::") {
		t.Errorf("Nth6Addr 0 = %v, %v", a, err)
	}
	a, err = Nth6Addr(p, 257)
	if err != nil || a != netip.MustParseAddr("2001:db8:1::101") {
		t.Errorf("Nth6Addr 257 = %v, %v", a, err)
	}
	if _, err := Nth6Addr(netip.MustParsePrefix("10.0.0.0/8"), 0); err == nil {
		t.Error("IPv4 accepted")
	}
	if _, err := Nth6Addr(netip.MustParsePrefix("2001:db8::/96"), 0); err == nil {
		t.Error("/96 accepted")
	}
}

func TestPool6AllocSubnet(t *testing.T) {
	p := MustPool6("2001:db8::/32")
	s1, err := p.AllocSubnet(48)
	if err != nil || s1 != netip.MustParsePrefix("2001:db8::/48") {
		t.Errorf("s1 = %v, %v", s1, err)
	}
	s2, err := p.AllocSubnet(48)
	if err != nil || s2 != netip.MustParsePrefix("2001:db8:1::/48") {
		t.Errorf("s2 = %v, %v", s2, err)
	}
	if _, err := p.AllocSubnet(32); err == nil {
		t.Error("supernet carve accepted")
	}
	if _, err := p.AllocSubnet(96); err == nil {
		t.Error("/96 accepted")
	}
}
